(* Benchmark harness: one Bechamel micro-benchmark per paper table /
   figure (measuring the kernel that experiment exercises), followed by
   the full experiment reproductions from {!Experiments}.

   Usage:
     dune exec bench/main.exe                  # micro + metrics + all experiments
     dune exec bench/main.exe -- fig9b table3  # selected experiments
     dune exec bench/main.exe -- micro         # micro-benchmarks only
     dune exec bench/main.exe -- metrics       # per-pass executor metrics only
     dune exec bench/main.exe -- speedup       # multicore domain-pool speedup
     ORION_BENCH_SCALE=2 dune exec bench/main.exe   # larger datasets *)

open Bechamel
open Toolkit
open Orion_apps

(* ------------------------------------------------------------------ *)
(* Micro-benchmark kernels (one per table/figure)                      *)
(* ------------------------------------------------------------------ *)

let mf_data =
  lazy
    (Orion_data.Ratings.generate ~num_users:200 ~num_items:150
       ~num_ratings:5000 ())

let lda_corpus =
  lazy
    (Orion_data.Corpus.generate ~num_docs:100 ~vocab_size:120 ~avg_doc_len:25
       ~num_topics_truth:5 ())

(* Table 2 / Fig 6: parse + analyze the SGD MF script *)
let bench_analysis =
  Test.make ~name:"table2_static_analysis"
    (Staged.stage (fun () ->
         let program = Orion.Parser.parse_program Sgd_mf.script in
         let loop = List.hd (Orion.Refs.find_parallel_loops program) in
         let info =
           Orion.Refs.analyze_loop
             ~dist_vars:[ "ratings"; "W"; "H" ]
             ~buffered_arrays:[] ~iter_space_ndims:2 loop
         in
         ignore (Orion.Depanalysis.analyze info)))

(* Fig 9a/9b: the SGD MF loop-body kernel (per 1000 ratings) *)
let bench_mf_kernel =
  lazy
    (let data = Lazy.force mf_data in
     let model =
       Sgd_mf.init_model ~rank:16 ~num_users:data.num_users
         ~num_items:data.num_items ()
     in
     let entries = Orion.Dist_array.entries data.ratings in
     Test.make ~name:"fig9_mf_body_1k"
       (Staged.stage (fun () ->
            for i = 0 to 999 do
              let key, v = entries.(i mod Array.length entries) in
              Sgd_mf.body model ~step_size:0.005 ~worker:0 ~key ~value:v
            done)))

(* Fig 9c / 10c / 11: the LDA Gibbs-sampling kernel (per 100 tokens) *)
let bench_lda_kernel =
  lazy
    (let corpus = Lazy.force lda_corpus in
     let model = Lda.init_model ~num_topics:20 ~corpus () in
     let entries = Orion.Dist_array.entries corpus.tokens in
     Test.make ~name:"fig9c_lda_body_100"
       (Staged.stage (fun () ->
            for i = 0 to 99 do
              let key, v = entries.(i mod Array.length entries) in
              Lda.body model ~worker:0 ~key ~value:v
            done)))

(* Table 3 / Fig 8: schedule construction for the 2D unordered plan *)
let bench_schedule =
  lazy
    (let data = Lazy.force mf_data in
     Test.make ~name:"table3_partition_2d"
       (Staged.stage (fun () ->
            ignore
              (Orion.Schedule.partition_2d ~shuffle_seed:17 data.ratings
                 ~space_dim:0 ~time_dim:1 ~space_parts:8 ~time_parts:16))))

(* Fig 10: one managed-communication round on a parameter server *)
let bench_cm_round =
  lazy
    (let cluster =
       Orion.Cluster.create ~num_machines:2 ~workers_per_machine:2
         ~cost:Orion.Cost_model.default ()
     in
     let ps =
       Orion.Param_server.create ~cluster ~name:"w" ~size:10_000
         ~init:(fun _ -> 0.0)
     in
     let rng = Orion_data.Rng.create 3 in
     Test.make ~name:"fig10_cm_round"
       (Staged.stage (fun () ->
            for _ = 1 to 200 do
              Orion.Param_server.update ps
                ~worker:(Orion_data.Rng.int rng 4)
                (Orion_data.Rng.int rng 10_000)
                (Orion_data.Rng.float rng)
            done;
            ignore
              (Orion.Param_server.communicate_round ps
                 ~budget_bytes_per_worker:2000.0))))

(* Fig 12: bandwidth recorder ingestion *)
let bench_recorder =
  Test.make ~name:"fig12_recorder"
    (Staged.stage (fun () ->
         let r = Orion_sim.Recorder.create () in
         for i = 0 to 99 do
           Orion_sim.Recorder.record r
             ~start_sec:(float_of_int i *. 0.13)
             ~duration_sec:0.4 ~bytes:1e5
         done))

(* Fig 13: the TF-style dense minibatch gradient kernel *)
let bench_tf_minibatch =
  lazy
    (let data = Lazy.force mf_data in
     Test.make ~name:"fig13_tf_minibatch"
       (Staged.stage (fun () ->
            ignore
              (Orion_baselines.Tf_mf.train
                 ~config:
                   {
                     Orion_baselines.Tf_mf.default_config with
                     rank = 8;
                     minibatch = 2500;
                     epochs = 1;
                   }
                 ~data ()))))

(* §6.3: synthesizing + running the prefetch slice for one sample *)
let bench_prefetch =
  lazy
    (let program = Orion.Parser.parse_program Slr.script in
     let body, key_var, value_var =
       match Orion.Refs.find_parallel_loops program with
       | { Orion.Ast.sk = Orion.Ast.For { kind = Each_loop { key; value; _ }; body; _ }; _ }
         :: _ ->
           (body, key, value)
       | _ -> assert false
     in
     let generated, _ =
       Orion.Prefetch.synthesize
         ~dist_vars:[ "w"; "w_buf"; "samples" ]
         ~targets:[ "w" ] body
     in
     let session =
       Orion.create_session ~num_machines:1 ~workers_per_machine:1 ()
     in
     let sample =
       Orion_data.Sparse_features.
         {
           label = 1.0;
           features = Array.init 20 (fun i -> i * 3);
           values = Array.make 20 1.0;
         }
     in
     Test.make ~name:"s6.3_prefetch_slice"
       (Staged.stage (fun () ->
            ignore
              (Orion.run_prefetch_program session ~generated ~key_var
                 ~value_var ~key:[| 0 |]
                 ~value:(Orion_data.Sparse_features.sample_to_value sample)
                 ~bindings:[ ("step_size", Orion.Value.Vfloat 0.1) ]))))

let micro_tests () =
  Test.make_grouped ~name:"orion"
    [
      bench_analysis;
      Lazy.force bench_mf_kernel;
      Lazy.force bench_lda_kernel;
      Lazy.force bench_schedule;
      Lazy.force bench_cm_round;
      bench_recorder;
      Lazy.force bench_tf_minibatch;
      Lazy.force bench_prefetch;
    ]

let run_micro () =
  print_endline "Micro-benchmarks (Bechamel; one kernel per table/figure)";
  print_endline "=========================================================";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> Printf.printf "%-40s %14.1f ns/run\n" name est
      | Some [] | None -> Printf.printf "%-40s %14s\n" name "n/a")
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Per-pass executor metrics: SGD MF under every strategy, with the
   trace-derived straggler ratio / barrier-wait fraction / bytes by
   DistArray printed per pass                                          *)
(* ------------------------------------------------------------------ *)

let run_metrics () =
  print_endline "\nPer-pass executor metrics (SGD MF under every strategy)";
  print_endline "=======================================================";
  let data = Lazy.force mf_data in
  let machines = 4 and wpm = 2 in
  let rank = 16 in
  let passes = 3 in
  let strategies =
    [ "serial"; "1d"; "2d-ordered"; "2d-unordered"; "time-major" ]
  in
  List.iter
    (fun strat ->
      let cluster =
        Orion.Cluster.create ~num_machines:machines ~workers_per_machine:wpm
          ~cost:Orion.Cost_model.default ()
      in
      let workers = Orion.Cluster.num_workers cluster in
      let model =
        Sgd_mf.init_model ~rank ~num_users:data.num_users
          ~num_items:data.num_items ()
      in
      let body ~worker ~key ~value =
        Sgd_mf.body model ~step_size:0.005 ~worker ~key ~value
      in
      let compute = Orion.Executor.Per_entry (4e-8 *. float_of_int rank) in
      let h_bytes =
        float_of_int (rank * data.num_items) *. 8.0 /. float_of_int workers
      in
      let run_pass =
        match strat with
        | "serial" ->
            fun () ->
              ignore (Orion.Executor.run_serial cluster ~compute data.ratings body)
        | "1d" ->
            let s =
              Orion.Schedule.partition_1d data.ratings ~space_dim:0
                ~space_parts:workers
            in
            fun () -> ignore (Orion.Executor.run_1d cluster ~compute s body)
        | "2d-ordered" ->
            let s =
              Orion.Schedule.partition_2d data.ratings ~space_dim:0 ~time_dim:1
                ~space_parts:workers ~time_parts:workers
            in
            fun () ->
              ignore
                (Orion.Executor.run_2d_ordered cluster ~compute
                   ~rotated_label:"H" ~rotated_bytes_per_partition:h_bytes s
                   body)
        | "2d-unordered" ->
            let depth = 2 in
            let s =
              Orion.Schedule.partition_2d data.ratings ~space_dim:0 ~time_dim:1
                ~space_parts:workers ~time_parts:(workers * depth)
            in
            fun () ->
              ignore
                (Orion.Executor.run_2d_unordered cluster ~compute
                   ~pipeline_depth:depth ~rotated_label:"H"
                   ~rotated_bytes_per_partition:(h_bytes /. float_of_int depth)
                   s body)
        | _ (* time-major *) ->
            let s =
              Orion.Schedule.partition_unimodular data.ratings
                ~matrix:[| [| 1; 1 |]; [| 0; 1 |] |]
                ~space_parts:workers ~time_parts:0
            in
            fun () ->
              ignore
                (Orion.Executor.run_time_major cluster ~compute ~comm_label:"H"
                   ~comm_bytes_per_step:(h_bytes /. 16.0) s body)
      in
      Printf.printf "\n%s:\n" strat;
      for pass = 1 to passes do
        let since = Orion.Cluster.now cluster in
        run_pass ();
        Printf.printf "  pass %d | %s\n" pass
          (Orion.Metrics.summary (Orion.Cluster.metrics ~since cluster))
      done)
    strategies

(* ------------------------------------------------------------------ *)
(* Multicore speedup: every registered app on the domain pool at
   increasing domain counts, results checked against the simulated
   execution of the same schedule; JSON lands in BENCH_parallel.json   *)

let run_speedup () =
  print_endline "\nDomain-pool speedup (self-relative, vs simulated results)";
  print_endline "=========================================================";
  Printf.printf "available cores: %d\n" (Domain.recommended_domain_count ());
  let scale =
    match Sys.getenv_opt "ORION_BENCH_SCALE" with
    | Some s -> ( try float_of_string s with _ -> 1.0)
    | None -> 1.0
  in
  ignore (Bench.run ~mode:`Speedup ~scale ~out:"BENCH_parallel.json" ())

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
      run_micro ();
      run_metrics ();
      Experiments.all ()
  | [ "micro" ] -> run_micro ()
  | [ "metrics" ] -> run_metrics ()
  | [ "speedup" ] -> run_speedup ()
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name Experiments.registry with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %S; available: %s\n" name
                (String.concat ", " (List.map fst Experiments.registry)))
        names
