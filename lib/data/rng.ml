(** Deterministic random number generation for synthetic datasets
    (splitmix64; independent of OCaml's global [Random] state so
    experiments are reproducible across runs and machines). *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let state t = t.state
let set_state t s = t.state <- s

let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* mix seed and index through one extra splitmix64 scramble so nearby
   (seed, index) pairs land on unrelated streams *)
let split ~seed ~index =
  let t = { state = Int64.of_int seed } in
  let a = next t in
  let t2 = { state = Int64.logxor a (Int64.of_int ((index * 0x9E3779B9) lxor 0x5DEECE66D)) } in
  let b = next t2 in
  { state = b }

(** uniform float in [0, 1) *)
let float t =
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits /. 9007199254740992.0

(** uniform int in [0, bound) *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive"
  else int_of_float (float t *. float_of_int bound)

(** standard normal (Box–Muller) *)
let gaussian t =
  let u1 = Float.max (float t) 1e-300 in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(** Zipf-distributed rank in [0, n): P(k) ∝ 1/(k+1)^s, via precomputed
    CDF + binary search. *)
type zipf = { cdf : float array }

let zipf_create ~n ~s =
  let weights = Array.init n (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  { cdf }

let zipf_draw t z =
  let u = float t in
  let n = Array.length z.cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

(** a random permutation of [0, n) *)
let permutation t n =
  let p = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- tmp
  done;
  p
