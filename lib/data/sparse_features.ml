(** Synthetic high-dimensional sparse classification data (the
    "kdd_like" dataset for sparse logistic regression).

    KDD Cup 2010 (Algebra) has ~8.4M samples over ~20M binary features
    with extreme sparsity and Zipf feature popularity.  We plant a
    sparse ground-truth weight vector, draw each sample's active
    features Zipf-skewed, and label by the noisy sign of the margin —
    so SLR has signal to learn and logistic loss decreases. *)

open Orion_dsm

type sample = {
  label : float;  (** 0.0 or 1.0 *)
  features : int array;  (** active feature indices, ascending *)
  values : float array;  (** feature values (1.0 for binary data) *)
}

type t = {
  samples : sample Dist_array.t;  (** 1-D, one entry per sample *)
  num_samples : int;
  num_features : int;
  avg_nnz : float;
}

let generate ?(seed = 777) ~num_samples ~num_features ~nnz_per_sample
    ?(feature_skew = 1.1) ?(noise = 0.05) () =
  let rng = Rng.create seed in
  let zipf = Rng.zipf_create ~n:num_features ~s:feature_skew in
  let perm = Rng.permutation rng num_features in
  (* sparse ground truth: ~20% of features carry signal *)
  let truth =
    Array.init num_features (fun _ ->
        if Rng.float rng < 0.2 then Rng.gaussian rng else 0.0)
  in
  let total_nnz = ref 0 in
  let entries =
    List.init num_samples (fun s ->
        let n = max 2 (nnz_per_sample / 2) + Rng.int rng nnz_per_sample in
        let set = Hashtbl.create n in
        while Hashtbl.length set < n do
          Hashtbl.replace set perm.(Rng.zipf_draw rng zipf) ()
        done;
        let features =
          Hashtbl.fold (fun f () acc -> f :: acc) set []
          |> List.sort compare |> Array.of_list
        in
        let values = Array.make (Array.length features) 1.0 in
        let margin =
          Array.fold_left (fun acc f -> acc +. truth.(f)) 0.0 features
        in
        let label =
          if margin +. (noise *. Rng.gaussian rng) > 0.0 then 1.0 else 0.0
        in
        total_nnz := !total_nnz + Array.length features;
        ([| s |], { label; features; values }))
  in
  let samples =
    Dist_array.of_entries ~name:"samples" ~dims:[| num_samples |]
      ~default:{ label = 0.0; features = [||]; values = [||] }
      entries
  in
  {
    samples;
    num_samples;
    num_features;
    avg_nnz = float_of_int !total_nnz /. float_of_int num_samples;
  }

(* the shared body of [generate] and [generate_skewed]: draw each
   sample's active-feature set Zipf-skewed with a caller-chosen
   per-sample nnz *)
let generate_with_nnz ~seed ~num_samples ~num_features ~nnz_of_sample
    ~feature_skew ~noise () =
  let rng = Rng.create seed in
  let zipf = Rng.zipf_create ~n:num_features ~s:feature_skew in
  let perm = Rng.permutation rng num_features in
  let truth =
    Array.init num_features (fun _ ->
        if Rng.float rng < 0.2 then Rng.gaussian rng else 0.0)
  in
  let total_nnz = ref 0 in
  let entries =
    List.init num_samples (fun s ->
        let n = min (num_features - 1) (nnz_of_sample rng s) in
        let set = Hashtbl.create n in
        while Hashtbl.length set < n do
          Hashtbl.replace set perm.(Rng.zipf_draw rng zipf) ()
        done;
        let features =
          Hashtbl.fold (fun f () acc -> f :: acc) set []
          |> List.sort compare |> Array.of_list
        in
        let values = Array.make (Array.length features) 1.0 in
        let margin =
          Array.fold_left (fun acc f -> acc +. truth.(f)) 0.0 features
        in
        let label =
          if margin +. (noise *. Rng.gaussian rng) > 0.0 then 1.0 else 0.0
        in
        total_nnz := !total_nnz + Array.length features;
        ([| s |], { label; features; values }))
  in
  let samples =
    Dist_array.of_entries ~name:"samples" ~dims:[| num_samples |]
      ~default:{ label = 0.0; features = [||]; values = [||] }
      entries
  in
  {
    samples;
    num_samples;
    num_features;
    avg_nnz = float_of_int !total_nnz /. float_of_int num_samples;
  }

(** Length-skewed variant: per-sample nnz follows a Zipf-like power
    law [max_nnz / (s + 1)^alpha], front-loaded (sample 0 is heaviest).
    One sample = one iteration-space entry, so a count-balanced space
    partition over samples is even in entries but badly uneven in
    work — the workload the measurement-driven re-planner targets. *)
let generate_skewed ?(seed = 777) ~num_samples ~num_features ~max_nnz
    ?(alpha = 1.0) ?(feature_skew = 1.1) ?(noise = 0.05) () =
  (* decay with rank *fraction*, not absolute rank: the head:tail
     density ratio (up to 20^alpha, floored at 4 nonzeros) survives any
     dataset scale, so count-balanced partitions stay work-imbalanced *)
  let n = float_of_int (max 1 num_samples) in
  let nnz_of_sample _rng s =
    let rank = 1.0 +. (19.0 *. float_of_int s /. n) in
    max 4 (int_of_float (float_of_int max_nnz /. (rank ** alpha)))
  in
  generate_with_nnz ~seed ~num_samples ~num_features ~nnz_of_sample
    ~feature_skew ~noise ()

let kdd_like ?(scale = 1.0) () =
  generate
    ~num_samples:(max 64 (int_of_float (2_000.0 *. scale)))
    ~num_features:(max 128 (int_of_float (20_000.0 *. scale)))
    ~nnz_per_sample:20 ()

(** Convert a sample to an interpreter value: a tuple
    [(label, feature_indices, feature_values)] with 1-based indices, as
    the SLR OrionScript program expects. *)
let sample_to_value (s : sample) : Orion_lang.Value.t =
  Orion_lang.Value.(
    Vtuple
      [
        Vfloat s.label;
        Vvec (Array.map (fun f -> float_of_int (f + 1)) s.features);
        Vvec s.values;
      ])
