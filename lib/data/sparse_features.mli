(** Synthetic high-dimensional sparse classification data (the
    "kdd_like" proxy for SLR): a planted sparse weight vector, Zipf
    feature popularity, labels from the noisy margin sign. *)

type sample = {
  label : float;  (** 0.0 or 1.0 *)
  features : int array;  (** active feature indices, ascending *)
  values : float array;
}

type t = {
  samples : sample Orion_dsm.Dist_array.t;  (** 1-D, one entry per sample *)
  num_samples : int;
  num_features : int;
  avg_nnz : float;
}

val generate :
  ?seed:int ->
  num_samples:int ->
  num_features:int ->
  nnz_per_sample:int ->
  ?feature_skew:float ->
  ?noise:float ->
  unit ->
  t

(** Length-skewed variant: per-sample nnz decays Zipf-like with the
    sample's {e rank fraction}, [max_nnz / (1 + 19 s/n)^alpha] (clamped
    to [4, num_features - 1]), so the head of the sample range is up to
    [20^alpha] times denser than the tail at {e every} dataset scale.
    Entry counts stay one per sample, so count-balanced space
    partitions over samples are even in entries but skewed in work —
    the workload profile-guided re-planning targets. *)
val generate_skewed :
  ?seed:int ->
  num_samples:int ->
  num_features:int ->
  max_nnz:int ->
  ?alpha:float ->
  ?feature_skew:float ->
  ?noise:float ->
  unit ->
  t

val kdd_like : ?scale:float -> unit -> t

(** Interpreter value [(label, 1-based indices, values)] for the SLR
    OrionScript program. *)
val sample_to_value : sample -> Orion_lang.Value.t
