(** Deterministic random number generation for synthetic datasets
    (splitmix64, independent of OCaml's global [Random]). *)

type t

val create : int -> t
val next : t -> int64

(** The full generator state (splitmix64 keeps all of it in one
    [int64]); [state]/[set_state] round-trip it through checkpoints. *)
val state : t -> int64

val set_state : t -> int64 -> unit

(** A generator whose seed is a strong mix of [t]'s original seed and
    [index] — the per-shard streams of [Orion_store]: shard [k]'s
    stream is a pure function of (seed, k), independent of whether any
    other shard was generated. *)
val split : seed:int -> index:int -> t

(** Uniform in [0, 1). *)
val float : t -> float

(** Uniform in [0, bound); [bound] must be positive. *)
val int : t -> int -> int

(** Standard normal (Box–Muller). *)
val gaussian : t -> float

(** Zipf-distributed ranks: P(k) ∝ 1/(k+1)^s. *)
type zipf

val zipf_create : n:int -> s:float -> zipf
val zipf_draw : t -> zipf -> int

(** A random permutation of [0, n). *)
val permutation : t -> int -> int array
