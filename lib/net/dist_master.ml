(** The distributed master driver behind
    [Orion.Engine.run ~mode:(`Distributed _)].

    The master analyzes and compiles the loop exactly as the simulated
    and domain-pool paths do, spawns one worker process per space
    partition (fork for in-tree tests, exec of [orion_worker] for the
    CLI), runs the startup protocol in a deterministic order
    (per-worker: Hello → Plan → Listening → Prefetch_request →
    Partition_ship → Prefetch_response; then one Peers broadcast), and
    supervises execution with a select-based readiness loop plus
    non-blocking [waitpid] and a hard deadline — a worker crash, broken
    socket, or hang surfaces as a structured
    {!Orion.Engine.Distributed_error}, never as a hang.

    Its own instance stays untouched while the workers run; the final
    state is assembled purely from the wire: every worker's own-block
    write journal applied in (pass, natural-order) order — a valid
    serialization of the happens-before order, so non-buffered arrays
    reproduce the serial result bitwise — then buffered-array shadows
    merged in ascending rank order ([+=] of nonzero entries, exactly
    the domain pool's shadow merge), cross-checked against each
    worker's reported accumulator totals. *)

module Dist_array = Orion_dsm.Dist_array
module Partitioner = Orion_dsm.Partitioner
module Plan = Orion_analysis.Plan
module Schedule = Orion_runtime.Schedule
module Domain_exec = Orion_runtime.Domain_exec
module Trace = Orion_sim.Trace
module Cluster = Orion_sim.Cluster
module Telemetry = Orion_obs.Telemetry

type spawn = [ `Fork | `Exec of string ]

let spawn_env = "ORION_DIST_SPAWN"  (* "fork" or "exec:<path>" *)
let worker_exe_env = "ORION_WORKER_EXE"
let timeout_env = Dist_worker.timeout_env
let comms_env = "ORION_COMMS"  (* default --comms when none is given *)

let master_timeout () =
  match Sys.getenv_opt timeout_env with
  | Some s -> ( match float_of_string_opt s with Some f -> f | None -> 120.0)
  | None -> 120.0

(** Pick how to start workers: [ORION_DIST_SPAWN] override, then
    [ORION_WORKER_EXE], then the [orion_worker] executable next to the
    running binary, else fork this very process (always available — the
    in-tree tests and any host linking [orion_net] rely on it). *)
let default_spawn () : spawn =
  match Sys.getenv_opt spawn_env with
  | Some "fork" -> `Fork
  | Some s
    when String.length s > 5 && String.sub s 0 5 = "exec:"
         && Sys.file_exists (String.sub s 5 (String.length s - 5)) ->
      `Exec (String.sub s 5 (String.length s - 5))
  | _ -> (
      match Sys.getenv_opt worker_exe_env with
      | Some path when Sys.file_exists path -> `Exec path
      | _ ->
          let sibling =
            Filename.concat
              (Filename.dirname Sys.executable_name)
              "orion_worker.exe"
          in
          if Sys.file_exists sibling then `Exec sibling else `Fork)

let err ?rank fmt =
  Printf.ksprintf
    (fun s ->
      raise
        (Orion.Engine.Distributed_error { de_rank = rank; de_reason = s }))
    fmt

let status_reason = function
  | Unix.WEXITED c -> Printf.sprintf "worker exited with code %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "worker killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "worker stopped by signal %d" s

(* ------------------------------------------------------------------ *)
(* Worker process management                                           *)
(* ------------------------------------------------------------------ *)

let spawn_worker (spawn : spawn) ~(materialize : Dist_worker.materialize)
    ~(listener : Transport.listener) ~rank ~master_addr : int =
  match spawn with
  | `Exec path ->
      Unix.create_process path
        [| path; "--rank"; string_of_int rank; "--master"; master_addr |]
        Unix.stdin Unix.stdout Unix.stderr
  | `Fork -> (
      match Unix.fork () with
      | 0 ->
          (* the child must not touch the master's listener or buffers;
             _exit skips at_exit / flushing inherited channels *)
          (try Unix.close listener.Transport.lfd with Unix.Unix_error _ -> ());
          let code =
            try
              Dist_worker.connect_and_serve ~materialize ~rank ~master_addr;
              0
            with _ -> 2
          in
          Unix._exit code
      | pid -> pid)

(** Terminate every still-running worker: SIGTERM, a short grace
    period, then SIGKILL; reap all of them. *)
let kill_workers (pids : (int * int) list) =
  let alive (_, pid) =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ -> true
    | _ -> false
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> false
  in
  let rec reap deadline remaining =
    match List.filter alive remaining with
    | [] -> []
    | remaining when Unix.gettimeofday () < deadline ->
        Unix.sleepf 0.02;
        reap deadline remaining
    | remaining -> remaining
  in
  let term = List.filter alive pids in
  List.iter
    (fun (_, pid) -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
    term;
  let stubborn = reap (Unix.gettimeofday () +. 2.0) term in
  List.iter
    (fun (_, pid) ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    stubborn

(* ------------------------------------------------------------------ *)
(* The master protocol                                                 *)
(* ------------------------------------------------------------------ *)

type worker_state = {
  mutable st_conn : Transport.conn option;
  mutable st_addr : string option;  (** from Listening *)
  mutable st_prefetch : string list option;  (** from Prefetch_request *)
  mutable st_report : Wire.block_writes list option;
  mutable st_flush : Wire.part list option;
  mutable st_totals : (string * float) list option;
  mutable st_done : Wire.worker_stats option;
}

let run ~(materialize : Dist_worker.materialize) ?spawn ?comms
    (session : Orion.session) (inst : Orion.App.instance) ~procs
    ~(transport : Orion.Engine.transport) ~passes ~pipeline_depth ~scale
    ~telemetry ?(checkpoint : (int * Orion.Engine.checkpoint_sink) option)
    ?(replanner : Orion.Engine.replanner option) () : Orion.Engine.report =
  if procs < 1 then err "procs must be >= 1, got %d" procs;
  (* the re-planner decides from shipped block costs *)
  let telemetry = telemetry || replanner <> None in
  (* explicit argument, then the environment (which exec'd/forked
     workers of nested tools inherit), then auto *)
  let comms_str =
    match comms with
    | Some c -> c
    | None -> Option.value (Sys.getenv_opt comms_env) ~default:"auto"
  in
  let comms_spec =
    match Policy.spec_of_string comms_str with
    | Ok spec -> spec
    | Error e -> err "bad comms policy: %s" e
  in
  let comms_str = Policy.spec_to_string comms_spec in
  (* a worker dying mid-run must surface as EPIPE on our next send to
     it (handled by the supervision loop), not kill the master *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let cluster_workers = Cluster.num_workers session.Orion.cluster in
  if cluster_workers <> procs then
    err
      "distributed instances must be built with num_machines = procs and \
       workers_per_machine = 1 (procs = %d, session has %d workers)"
      procs cluster_workers;
  let t0 = Unix.gettimeofday () in
  let w0 = Orion_obs.Clock.now () in
  let deadline = t0 +. master_timeout () in
  let plan = Orion.analyze_loop session inst.Orion.App.inst_loop in
  let compiled =
    Orion.compile session ~plan ~iter:inst.Orion.App.inst_iter
      ?pipeline_depth ()
  in
  let sched = compiled.Orion.schedule in
  let sp = sched.Schedule.space_parts and tp = sched.Schedule.time_parts in
  let model =
    Domain_exec.model_of_plan plan ~pipeline_depth:compiled.Orion.pipeline_depth
      ~sp ~tp
  in
  let fingerprint = Schedule.fingerprint sched in
  (* the partitioner may produce fewer space partitions than requested
     workers on tiny data; spawn exactly one worker per partition *)
  let nw = sp in
  (* -- adaptive re-planning ------------------------------------------
     A [Repartition] ships the new cut plus the fingerprint of the
     master's rebuilt schedule.  Only space-boundary re-balancing is
     honored distributed: tp and the model pin the happens-before edges
     and the (pass, natural-order) final assembly, so they never change
     mid-run. *)
  let rebuild_schedule new_boundaries =
    match plan.Plan.strategy with
    | Plan.One_d { space_dim } ->
        Some
          (Schedule.partition_1d_with ~shuffle_seed:17
             inst.Orion.App.inst_iter ~space_dim
             ~space_boundaries:new_boundaries)
    | Plan.Data_parallel ->
        Some
          (Schedule.partition_1d_with ~shuffle_seed:17
             inst.Orion.App.inst_iter ~space_dim:0
             ~space_boundaries:new_boundaries)
    | Plan.Two_d { space_dim; time_dim } ->
        Some
          (Schedule.partition_2d_with ~shuffle_seed:17
             inst.Orion.App.inst_iter ~space_dim ~time_dim
             ~space_boundaries:new_boundaries ~time_parts:tp)
    | Plan.Two_d_unimodular _ -> None
  in
  (* ranks whose pass-N telemetry has arrived; the directive broadcasts
     once all [nw] have reported *)
  let tel_ranks : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  (* (pass, natural-order position) ordering shared by pass-boundary
     checkpoints and the final assembly *)
  let order = Domain_exec.natural_order model ~sp ~tp in
  let pos = Hashtbl.create (sp * tp) in
  Array.iteri (fun i (s, t) -> Hashtbl.replace pos ((s * tp) + t) i) order;
  (* -- pass-boundary checkpoint assembly ----------------------------
     When a checkpoint sink is registered, workers ship a Pass_report
     after every pass barrier.  The master folds them into shadow
     copies of the model arrays — never its own instance, which the
     final assembly owns — applying each pass's writes in natural block
     order (as the final assembly would), and keeping each rank's
     latest cumulative buffered shadows.  When every rank has reported
     a pass, the boundary state is complete and the sink fires. *)
  let ck_copies : (string, float Dist_array.t) Hashtbl.t = Hashtbl.create 8 in
  if checkpoint <> None then
    List.iter
      (fun (n, a) ->
        Hashtbl.replace ck_copies n
          (Dist_array.of_partition (Dist_array.to_partition a)))
      inst.Orion.App.inst_arrays;
  let ck_pending :
      (int, Wire.block_writes list option array * Wire.part list option array)
      Hashtbl.t =
    Hashtbl.create 8
  in
  let ck_latest_shadows : Wire.part list array = Array.make nw [] in
  let ck_next = ref 0 in
  let note_pass_report ~rank ~pass entries parts =
    match checkpoint with
    | None -> ()
    | Some (every, sink) ->
        let slot =
          match Hashtbl.find_opt ck_pending pass with
          | Some s -> s
          | None ->
              let s = (Array.make nw None, Array.make nw None) in
              Hashtbl.replace ck_pending pass s;
              s
        in
        (fst slot).(rank) <- Some entries;
        (snd slot).(rank) <- Some parts;
        let rec drain () =
          match Hashtbl.find_opt ck_pending !ck_next with
          | Some (es, ps) when Array.for_all Option.is_some es ->
              let pass = !ck_next in
              Hashtbl.remove ck_pending pass;
              incr ck_next;
              let all =
                Array.to_list es
                |> List.concat_map (fun o -> Option.value o ~default:[])
                |> List.sort
                     (fun (a : Wire.block_writes) (b : Wire.block_writes) ->
                       compare
                         (Hashtbl.find pos a.bw_block)
                         (Hashtbl.find pos b.bw_block))
              in
              List.iter
                (fun (bw : Wire.block_writes) ->
                  Array.iter
                    (fun (w : Wire.write) ->
                      match Hashtbl.find_opt ck_copies w.w_array with
                      | Some arr -> Dist_array.set arr w.w_key w.w_value
                      | None -> ())
                    bw.bw_writes)
                all;
              Array.iteri
                (fun r p ->
                  match p with
                  | Some parts -> ck_latest_shadows.(r) <- parts
                  | None -> ())
                ps;
              if every > 0 && (pass + 1) mod every = 0 then begin
                let view =
                  List.map
                    (fun (name, arr) ->
                      if List.mem name inst.Orion.App.inst_buffered then begin
                        (* base (untouched on the master) + every rank's
                           cumulative shadow, in rank order — the same
                           merge the end of the run performs *)
                        let copy =
                          Dist_array.of_partition (Dist_array.to_partition arr)
                        in
                        Array.iter
                          (fun parts ->
                            List.iter
                              (fun (part : Wire.part) ->
                                if part.Dist_array.pt_array = name then
                                  Array.iter
                                    (fun (lin, v) ->
                                      Dist_array.update copy
                                        (Dist_array.delinearize copy lin)
                                        (fun x -> x +. v))
                                    part.Dist_array.pt_entries)
                              parts)
                          ck_latest_shadows;
                        (name, copy)
                      end
                      else
                        ( name,
                          Option.value
                            (Hashtbl.find_opt ck_copies name)
                            ~default:arr ))
                    inst.Orion.App.inst_arrays
                in
                sink ~pass_done:(pass + 1) view
              end;
              drain ()
          | _ -> ()
        in
        drain ()
  in
  let like : Transport.addr =
    match transport with
    | `Unix -> `Unix ""
    | `Tcp -> `Tcp ("127.0.0.1", 0)
  in
  let listener = Transport.listen (Transport.fresh_addr ~like) in
  let master_addr = Transport.addr_to_string listener.Transport.laddr in
  let spawn = match spawn with Some s -> s | None -> default_spawn () in
  let trace = session.Orion.cluster.Cluster.trace in
  (* One telemetry shard per rank.  Workers record spans on their own
     monotonic clocks and ship them per pass with their absolute epoch;
     the shared per-machine monotonic origin makes
     [offset = worker_epoch - master_epoch] exact, so the merged
     timeline is one consistent multi-process view. *)
  let mtel = Telemetry.create ~enabled:telemetry ~workers:nw () in
  (* per-pass [(start, finish)] on the master's telemetry clock, as the
     union of the aligned worker windows *)
  let pass_windows : (int, float * float) Hashtbl.t = Hashtbl.create 8 in
  let bytes_by_array : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let bytes_full_by_array : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let policy_by_array : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let bump tbl name bytes =
    Hashtbl.replace tbl name
      (bytes +. Option.value (Hashtbl.find_opt tbl name) ~default:0.0)
  in
  let account name bytes = bump bytes_by_array name bytes in
  let account_full name bytes = bump bytes_full_by_array name bytes in
  let states =
    Array.init nw (fun _ ->
        {
          st_conn = None;
          st_addr = None;
          st_prefetch = None;
          st_report = None;
          st_flush = None;
          st_totals = None;
          st_done = None;
        })
  in
  let pids =
    List.init nw (fun rank ->
        (rank, spawn_worker spawn ~materialize ~listener ~rank ~master_addr))
  in
  let cleanup () =
    Array.iter
      (fun st ->
        match st.st_conn with
        | Some c -> Transport.close_conn c
        | None -> ())
      states;
    Transport.close_listener listener;
    kill_workers pids
  in
  let fail_cleanup ?rank fmt =
    Printf.ksprintf
      (fun s ->
        cleanup ();
        raise
          (Orion.Engine.Distributed_error { de_rank = rank; de_reason = s }))
      fmt
  in
  try
    (* raises if any child already died with a nonzero status.  A
       suddenly-dead worker (signal, [_exit]) makes its peers die of
       collateral damage moments later through the guarded
       uncaught-exception path (exit code 2); when both corpses are on
       the floor, blame the sudden death, whatever the reap order —
       and when only guarded corpses are visible, wait briefly for the
       root cause to become reapable *)
    let monitor_children () =
      let reap_dead () =
        List.filter_map
          (fun (rank, pid) ->
            if states.(rank).st_done <> None then None
            else
              match Unix.waitpid [ Unix.WNOHANG ] pid with
              | 0, _ -> None
              | _, Unix.WEXITED 0 -> None
              | _, status -> Some (rank, status)
              | exception Unix.Unix_error (Unix.ECHILD, _, _) -> None)
          pids
      in
      let guarded = function Unix.WEXITED 2 -> true | _ -> false in
      match reap_dead () with
      | [] -> ()
      | dead ->
          let rec settle tries dead =
            if tries = 0 || List.exists (fun (_, st) -> not (guarded st)) dead
            then dead
            else begin
              Unix.sleepf 0.05;
              settle (tries - 1) (dead @ reap_dead ())
            end
          in
          let dead = settle 20 dead in
          let rank, status =
            match List.find_opt (fun (_, st) -> not (guarded st)) dead with
            | Some root -> root
            | None -> List.hd dead
          in
          fail_cleanup ~rank "%s" (status_reason status)
    in
    (* a worker (other than [except]) that already died abnormally — the
       root cause to prefer when another rank merely reports collateral *)
    let abnormal_exit ~except =
      List.find_map
        (fun (r, pid) ->
          if r = except || states.(r).st_done <> None then None
          else
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ -> None
            | _, Unix.WEXITED 0 -> None
            | _, status -> Some (r, status)
            | exception Unix.Unix_error (Unix.ECHILD, _, _) -> None)
        pids
    in
    (* a peer's collateral complaint can arrive before the crasher's
       exit status is reapable; poll briefly before giving up on
       finding a root cause *)
    let abnormal_exit_wait ~except =
      let rec go tries =
        match abnormal_exit ~except with
        | Some _ as r -> r
        | None when tries > 0 ->
            Unix.sleepf 0.05;
            go (tries - 1)
        | None -> None
      in
      go 20
    in
    let check_deadline what =
      if Unix.gettimeofday () > deadline then
        fail_cleanup "timed out waiting for %s (%.0fs)" what
          (master_timeout ())
    in
    (* -- accept + hello --------------------------------------------- *)
    let connected = ref 0 in
    while !connected < nw do
      monitor_children ();
      check_deadline "worker connections";
      match Unix.select [ listener.Transport.lfd ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ -> (
          let c = Transport.accept listener in
          match Transport.recv c with
          | Some (Wire.Hello { h_rank; h_pid = _; h_version })
            when h_version = Wire.version
                 && h_rank >= 0 && h_rank < nw
                 && states.(h_rank).st_conn = None ->
              states.(h_rank).st_conn <- Some c;
              incr connected
          | Some (Wire.Hello { h_rank; h_version; _ }) ->
              fail_cleanup ~rank:h_rank
                "bad hello (rank %d, protocol version %d, expected %d)"
                h_rank h_version Wire.version
          | Some m -> fail_cleanup "expected hello, got %s" (Wire.tag m)
          | None -> fail_cleanup "worker closed during handshake")
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    let conn rank =
      match states.(rank).st_conn with
      | Some c -> c
      | None -> fail_cleanup ~rank "no connection"
    in
    (* -- plan ------------------------------------------------------- *)
    for rank = 0 to nw - 1 do
      Transport.send (conn rank)
        (Wire.Plan
           {
             p_app = inst.Orion.App.inst_name;
             p_scale = scale;
             p_num_machines = session.Orion.cluster.Cluster.num_machines;
             p_workers_per_machine =
               session.Orion.cluster.Cluster.workers_per_machine;
             p_rank = rank;
             p_procs = nw;
             p_passes = passes;
             p_pipeline_depth = pipeline_depth;
             p_sp = sp;
             p_tp = tp;
             p_model = model;
             p_fingerprint = fingerprint;
             p_telemetry = telemetry;
             p_report_passes = checkpoint <> None;
             p_comms = comms_str;
             p_adapt = replanner <> None;
           })
    done;
    (* -- partition shipping + prefetch serving ---------------------- *)
    let boundaries = sched.Schedule.space_boundaries in
    let parts_for rank =
      List.filter_map
        (fun (name, arr) ->
          if List.mem name inst.Orion.App.inst_buffered then None
          else
            match List.assoc_opt name plan.Plan.placements with
            | Some (Plan.Local_partitioned { array_dim }) ->
                Some
                  (Dist_array.to_partition
                     ~select:(fun key _ ->
                       Partitioner.part_of ~boundaries key.(array_dim) = rank)
                     arr)
            | Some (Plan.Rotated _ | Plan.Replicated) ->
                Some (Dist_array.to_partition arr)
            | Some Plan.Server | None -> None)
        inst.Orion.App.inst_arrays
    in
    let ship_parts rank (msg : Wire.part_payload list -> Wire.msg) parts =
      (* the policy picks the encoding (raw Marshal under [full], the
         packed sparse index/value codec otherwise); both the encoded
         bytes and the full-policy equivalent are accounted *)
      let payloads, accounts = Policy.prepare_parts comms_spec parts in
      let t_send = Unix.gettimeofday () in
      Transport.send (conn rank) (msg payloads);
      let elapsed = Unix.gettimeofday () -. t_send in
      List.iter
        (fun (name, bytes, full) ->
          account name bytes;
          account_full name full;
          Trace.add trace ~label:("net:" ^ name) ~bytes ~worker:rank
            ~category:Trace.Transfer
            ~start_sec:(t_send -. t0)
            ~duration_sec:(elapsed /. float_of_int (max 1 (List.length parts))))
        accounts
    in
    let handshake = Event_loop.create () in
    for rank = 0 to nw - 1 do
      Event_loop.add handshake rank (conn rank)
    done;
    let ready rank =
      states.(rank).st_addr <> None && states.(rank).st_prefetch <> None
    in
    while not (Array.for_all (fun st -> st.st_prefetch <> None) states) do
      monitor_children ();
      check_deadline "worker startup";
      List.iter
        (function
          | Event_loop.Message (rank, Wire.Listening { l_addr; _ }) ->
              states.(rank).st_addr <- Some l_addr
          | Event_loop.Message (rank, Wire.Prefetch_request { pr_arrays; _ })
            ->
              states.(rank).st_prefetch <- Some pr_arrays;
              if not (ready rank) then
                fail_cleanup ~rank "prefetch request before listening";
              (* Listening is guaranteed first on this FIFO channel, so
                 the rank is fully announced: ship its partitions, then
                 serve the prefetch *)
              ship_parts rank
                (fun parts -> Wire.Partition_ship parts)
                (parts_for rank);
              ship_parts rank
                (fun parts -> Wire.Prefetch_response parts)
                (List.filter_map
                   (fun name ->
                     match
                       List.assoc_opt name inst.Orion.App.inst_arrays
                     with
                     | Some arr -> Some (Dist_array.to_partition arr)
                     | None -> None)
                   pr_arrays)
          | Event_loop.Message (rank, Wire.Fatal { f_reason; _ }) ->
              fail_cleanup ~rank "%s" f_reason
          | Event_loop.Message (rank, m) ->
              fail_cleanup ~rank "unexpected %s during startup" (Wire.tag m)
          | Event_loop.Closed rank ->
              fail_cleanup ~rank "worker disconnected during startup")
        (Event_loop.poll handshake ~timeout:0.1)
    done;
    let peers =
      Array.init nw (fun rank ->
          match states.(rank).st_addr with
          | Some a -> a
          | None -> fail_cleanup ~rank "no peer address")
    in
    for rank = 0 to nw - 1 do
      Transport.send (conn rank) (Wire.Peers peers)
    done;
    (* -- supervise execution ---------------------------------------- *)
    while not (Array.for_all (fun st -> st.st_done <> None) states) do
      monitor_children ();
      check_deadline "workers to finish";
      List.iter
        (function
          | Event_loop.Message (rank, Wire.Block_report { br_entries; _ }) ->
              states.(rank).st_report <- Some br_entries
          | Event_loop.Message (rank, Wire.Buffer_flush { bf_parts; _ }) ->
              states.(rank).st_flush <- Some bf_parts
          | Event_loop.Message (rank, Wire.Acc_merge { am_totals; _ }) ->
              states.(rank).st_totals <- Some am_totals
          | Event_loop.Message
              ( rank,
                Wire.Pass_telemetry
                  {
                    pt_epoch;
                    pt_pass;
                    pt_window = pw0, pw1;
                    pt_dropped;
                    pt_spans;
                    pt_costs;
                    _;
                  } ) ->
              if telemetry then begin
                let offset = pt_epoch -. Telemetry.epoch mtel in
                Telemetry.import_spans mtel ~shard:rank ~offset pt_spans;
                Telemetry.import_costs mtel ~shard:rank pt_costs;
                Telemetry.note_dropped mtel ~shard:rank pt_dropped;
                let s = pw0 +. offset and f = pw1 +. offset in
                Hashtbl.replace pass_windows pt_pass
                  (match Hashtbl.find_opt pass_windows pt_pass with
                  | Some (s0, f0) -> (Float.min s0 s, Float.max f0 f)
                  | None -> (s, f));
                (* adaptive: once every rank's pass costs are in,
                   decide and broadcast the directive the workers are
                   gated on *)
                match replanner with
                | Some f when pt_pass < passes - 1 ->
                    Hashtbl.replace tel_ranks (pt_pass, rank) ();
                    let all_in = ref true in
                    for r = 0 to nw - 1 do
                      if not (Hashtbl.mem tel_ranks (pt_pass, r)) then
                        all_in := false
                    done;
                    if !all_in then begin
                      let costs =
                        Telemetry.block_costs_for_pass mtel ~pass:pt_pass
                      in
                      let directive =
                        match f ~pass:pt_pass ~costs with
                        | Some
                            { Orion.Engine.rp_space_boundaries = Some sb; _ }
                          -> (
                            match rebuild_schedule sb with
                            | Some ns ->
                                Wire.Repartition
                                  {
                                    rp_pass = pt_pass;
                                    rp_boundaries = sb;
                                    rp_fingerprint = Schedule.fingerprint ns;
                                  }
                            | None -> Wire.Continue { c_pass = pt_pass })
                        | Some _ | None -> Wire.Continue { c_pass = pt_pass }
                      in
                      for r = 0 to nw - 1 do
                        Transport.send (conn r) directive
                      done
                    end
                | _ -> ()
              end
          | Event_loop.Message
              (rank, Wire.Pass_report { pp_pass; pp_entries; pp_buffered; _ })
            ->
              note_pass_report ~rank ~pass:pp_pass pp_entries pp_buffered
          | Event_loop.Message (rank, Wire.Done stats) ->
              if
                states.(rank).st_report = None
                || states.(rank).st_flush = None
                || states.(rank).st_totals = None
              then fail_cleanup ~rank "done before final reports";
              states.(rank).st_done <- Some stats
          | Event_loop.Message (rank, Wire.Fatal { f_reason; _ }) ->
              (* a crashed worker makes its peers complain about closed
                 sockets; blame the crash, not the collateral *)
              (match abnormal_exit_wait ~except:rank with
              | Some (r, status) -> fail_cleanup ~rank:r "%s" (status_reason status)
              | None -> fail_cleanup ~rank "%s" f_reason)
          | Event_loop.Message (rank, m) ->
              fail_cleanup ~rank "unexpected %s during execution" (Wire.tag m)
          | Event_loop.Closed rank ->
              (* give the exit status a moment to become reapable so the
                 error names the real cause (e.g. the injected abort) *)
              let _, pid = List.nth pids rank in
              let rec status tries =
                match Unix.waitpid [ Unix.WNOHANG ] pid with
                | 0, _ when tries > 0 ->
                    Unix.sleepf 0.05;
                    status (tries - 1)
                | 0, _ -> None
                | _, st -> Some st
                | exception Unix.Unix_error (Unix.ECHILD, _, _) -> None
              in
              (match status 20 with
              | Some st -> fail_cleanup ~rank "%s" (status_reason st)
              | None -> (
                  match abnormal_exit_wait ~except:rank with
                  | Some (r, st) -> fail_cleanup ~rank:r "%s" (status_reason st)
                  | None -> fail_cleanup ~rank "worker socket closed mid-run")))
        (Event_loop.poll handshake ~timeout:0.1)
    done;
    (* -- orderly shutdown ------------------------------------------- *)
    for rank = 0 to nw - 1 do
      Transport.send (conn rank) Wire.Shutdown
    done;
    Array.iter
      (fun st ->
        match st.st_conn with
        | Some c -> Transport.close_conn c
        | None -> ())
      states;
    Transport.close_listener listener;
    List.iter
      (fun (rank, pid) ->
        let rec reap deadline =
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ when Unix.gettimeofday () < deadline ->
              Unix.sleepf 0.01;
              reap deadline
          | 0, _ ->
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (Unix.waitpid [] pid)
          | _, Unix.WEXITED 0 -> ()
          | _, status -> err ~rank "%s after completion" (status_reason status)
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
        in
        reap (Unix.gettimeofday () +. 5.0))
      pids;
    (* -- assemble final state --------------------------------------- *)
    let arr_tbl : (string, float Dist_array.t) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (n, a) -> Hashtbl.replace arr_tbl n a)
      inst.Orion.App.inst_arrays;
    (* non-buffered writes: apply every worker's journal in (pass,
       natural-order) order — a serialization of the happens-before
       order, reproducing the serial element values bitwise *)
    let all_blocks =
      Array.to_list states
      |> List.concat_map (fun st -> Option.value st.st_report ~default:[])
      |> List.sort
           (fun (a : Wire.block_writes) (b : Wire.block_writes) ->
             compare
               (a.bw_pass, Hashtbl.find pos a.bw_block)
               (b.bw_pass, Hashtbl.find pos b.bw_block))
    in
    List.iter
      (fun (bw : Wire.block_writes) ->
        Array.iter
          (fun (w : Wire.write) ->
            match Hashtbl.find_opt arr_tbl w.w_array with
            | Some arr -> Dist_array.set arr w.w_key w.w_value
            | None -> err "block report writes unknown array %S" w.w_array)
          bw.bw_writes)
      all_blocks;
    (* buffered arrays: merge shadows in ascending rank order, exactly
       the domain pool's deterministic shadow merge *)
    Array.iteri
      (fun rank st ->
        let parts = Option.value st.st_flush ~default:[] in
        let totals = Option.value st.st_totals ~default:[] in
        List.iter
          (fun (part : Wire.part) ->
            let name = part.Dist_array.pt_array in
            (match Hashtbl.find_opt arr_tbl name with
            | Some arr ->
                Array.iter
                  (fun (lin, v) ->
                    Dist_array.update arr (Dist_array.delinearize arr lin)
                      (fun x -> x +. v))
                  part.Dist_array.pt_entries
            | None -> err "buffer flush for unknown array %S" name);
            let flushed_total =
              Array.fold_left
                (fun acc (_, v) -> acc +. v)
                0.0 part.Dist_array.pt_entries
            in
            let bytes = float_of_int (Dist_array.partition_size_bytes part) in
            account name bytes;
            (* buffer flushes are always raw Marshal — actual = full *)
            account_full name bytes;
            Trace.add trace ~label:("net:" ^ name) ~bytes ~worker:rank
              ~category:Trace.Transfer
              ~start_sec:(Unix.gettimeofday () -. t0)
              ~duration_sec:0.0;
            (* the worker computed its accumulator total over the same
               entries in the same order: must match bitwise *)
            match List.assoc_opt name totals with
            | Some reported when reported = flushed_total -> ()
            | Some reported ->
                err ~rank
                  "accumulator total mismatch for %S: reported %h, flushed %h"
                  name reported flushed_total
            | None -> err ~rank "no accumulator total for %S" name)
          parts)
      states;
    (* token traffic, as reported per worker *)
    Array.iteri
      (fun rank st ->
        match st.st_done with
        | Some stats ->
            List.iter
              (fun (name, bytes) ->
                account name bytes;
                Trace.add trace ~label:("net:" ^ name) ~bytes ~worker:rank
                  ~category:Trace.Transfer
                  ~start_sec:(Unix.gettimeofday () -. t0)
                  ~duration_sec:0.0)
              stats.Wire.ws_bytes_by_array;
            List.iter
              (fun (name, bytes) -> account_full name bytes)
              stats.Wire.ws_bytes_full_by_array;
            List.iter
              (fun (name, label) -> Hashtbl.replace policy_by_array name label)
              stats.Wire.ws_policy_by_array
        | None -> ())
      states;
    let stats rank =
      match states.(rank).st_done with
      | Some s -> s
      | None -> err ~rank "missing worker stats"
    in
    let sum f =
      let acc = ref 0 in
      for rank = 0 to nw - 1 do
        acc := !acc + f (stats rank)
      done;
      !acc
    in
    let sorted_bindings tbl =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
    in
    let bytes_list = sorted_bindings bytes_by_array in
    let bytes_full_list = sorted_bindings bytes_full_by_array in
    {
      Orion.Engine.ep_app = inst.Orion.App.inst_name;
      ep_mode = `Distributed { Orion.Engine.procs; transport };
      ep_strategy = Plan.strategy_to_string plan.Plan.strategy;
      ep_model = Domain_exec.model_to_string model;
      ep_domains = nw;
      ep_space_parts = sp;
      ep_time_parts = tp;
      ep_entries = sum (fun s -> s.Wire.ws_entries);
      ep_blocks = sum (fun s -> s.Wire.ws_blocks);
      ep_steals = 0;
      (* workers compile their own kernels (falling back per-worker if a
         body is unsupported); report the master-side switch *)
      ep_compiled = Orion.Compile.enabled ();
      ep_wall_seconds = Orion_obs.Clock.elapsed w0;
      ep_sim_time = 0.0;
      ep_bytes_shipped = List.fold_left (fun acc (_, b) -> acc +. b) 0.0 bytes_list;
      ep_bytes_by_array = bytes_list;
      ep_comms = comms_str;
      ep_bytes_full =
        List.fold_left (fun acc (_, b) -> acc +. b) 0.0 bytes_full_list;
      ep_policy_by_array = sorted_bindings policy_by_array;
      ep_telemetry =
        (if telemetry then
           let windows =
             Hashtbl.fold
               (fun pass (s, f) acc -> (pass, s, f) :: acc)
               pass_windows []
             |> List.sort compare
           in
           let comms =
             {
               Telemetry.cs_policy = comms_str;
               cs_bytes_shipped =
                 List.fold_left (fun acc (_, b) -> acc +. b) 0.0 bytes_list;
               cs_bytes_full =
                 List.fold_left
                   (fun acc (_, b) -> acc +. b)
                   0.0 bytes_full_list;
               cs_by_array = sorted_bindings policy_by_array;
             }
           in
           Some (Telemetry.summarize mtel ~mode:"distributed" ~comms ~windows ())
         else None);
    }
  with
  | Orion.Engine.Distributed_error _ as e -> raise e
  | e ->
      cleanup ();
      raise
        (Orion.Engine.Distributed_error
           { de_rank = None; de_reason = Printexc.to_string e })

(** Install {!run} as [Orion.Engine]'s distributed runner. *)
let install ~(materialize : Dist_worker.materialize) =
  Orion.Engine.distributed_runner :=
    Some
      (fun session inst ~procs ~transport ~passes ~pipeline_depth ~scale
           ~telemetry ~comms ~checkpoint ~replanner ->
        run ~materialize ?comms session inst ~procs ~transport ~passes
          ~pipeline_depth ~scale ~telemetry ?checkpoint ?replanner ())
