(** The distributed worker runtime ([orion-worker]): one OS process per
    space partition, executing its slice of the compiled schedule under
    the {e same} happens-before edges the domain pool and the race
    checker model ({!Orion_runtime.Domain_exec.block_edges}).

    A worker never receives code: it rebuilds the app instance
    deterministically from the registry ([materialize]) — host builtins
    are closures and cannot travel over the wire — then verifies its
    independently compiled schedule against the master's by structural
    fingerprint.  DistArray {e contents} do travel: every placed
    non-buffered array is zeroed locally and refilled from the wire
    (partition ship for local/rotated/replicated placements, a bulk
    prefetch for server-hosted ones), so the shipping path is
    load-bearing, not decorative.

    During execution the worker journals every non-buffered DistArray
    element write (via the interpreter's access hook, in execution
    order).  Each cross-worker happens-before edge [src → dst] is
    realized as a {!Wire.Rotation_token} carrying {e all} block write
    logs this worker knows and the destination has not seen — its own
    and relayed ones — so a receiver learns everything that
    happens-before the sending block, even transitively through ranks
    that never touched the data.  Incoming writes are applied
    last-writer-wins by (pass, natural-order position of the writing
    block): all writers of one element are happens-before-ordered and
    natural order linearizes happens-before, so this is exact no matter
    how tokens from different peers interleave.  A pass ends with an
    all-to-all {!Wire.Pass_sync} barrier flushing the rest.  Blocks
    that wrote nothing still send tokens — edge satisfaction is tracked
    by token arrival, not by journal content.

    Buffered arrays get a local zero shadow (exactly the domain pool's
    per-domain shadows); the nonzero entries are flushed to the master
    at the end and merged in rank order. *)

open Orion_lang
module Dist_array = Orion_dsm.Dist_array
module Plan = Orion_analysis.Plan
module Schedule = Orion_runtime.Schedule
module Domain_exec = Orion_runtime.Domain_exec
module Telemetry = Orion_obs.Telemetry

type materialize =
  string ->
  scale:float ->
  num_machines:int ->
  workers_per_machine:int ->
  Orion.App.instance option

exception Worker_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Worker_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Environment knobs                                                   *)
(* ------------------------------------------------------------------ *)

let timeout_env = "ORION_DIST_TIMEOUT"
let abort_rank_env = "ORION_DIST_ABORT_RANK"
let abort_after_env = "ORION_DIST_ABORT_AFTER"

let deadline_seconds () =
  match Sys.getenv_opt timeout_env with
  | Some s -> ( match float_of_string_opt s with Some f -> f | None -> 300.0)
  | None -> 300.0

(** Fault injection for the failure-path tests: the designated rank
    calls [Unix._exit 13] just before executing its [n]-th block. *)
let abort_spec () =
  match Sys.getenv_opt abort_rank_env with
  | None -> None
  | Some r -> (
      match int_of_string_opt r with
      | None -> None
      | Some rank ->
          let after =
            match Sys.getenv_opt abort_after_env with
            | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 1)
            | None -> 1
          in
          Some (rank, after))

let abort_exit_code = 13

(* ------------------------------------------------------------------ *)
(* Deadline-bounded blocking receives                                  *)
(* ------------------------------------------------------------------ *)

let rec wait_readable fd ~deadline ~what =
  let timeout = deadline -. Unix.gettimeofday () in
  if timeout <= 0.0 then fail "timed out waiting for %s" what;
  match Unix.select [ fd ] [] [] (Float.min timeout 0.5) with
  | [], _, _ -> wait_readable fd ~deadline ~what
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      wait_readable fd ~deadline ~what

let recv_with_deadline (c : Transport.conn) ~deadline ~what : Wire.msg =
  wait_readable (Transport.fd c) ~deadline ~what;
  match Transport.recv c with
  | Some m -> m
  | None -> fail "connection closed while waiting for %s" what

let accept_with_deadline (l : Transport.listener) ~deadline ~what :
    Transport.conn =
  wait_readable l.Transport.lfd ~deadline ~what;
  Transport.accept l

(* ------------------------------------------------------------------ *)
(* Concrete-subscript expansion (as lib/verify's access log does)      *)
(* ------------------------------------------------------------------ *)

let expand_keys (dims : int array) (subs : Value.concrete_sub array) :
    int array list =
  let all_points =
    Array.for_all (function Value.Cpoint _ -> true | _ -> false) subs
  in
  if all_points then
    [ Array.map (function Value.Cpoint p -> p | _ -> 0) subs ]
  else
    let expand_sub dim = function
      | Value.Cpoint p -> [ p ]
      | Value.Crange (a, b) -> List.init (max 0 (b - a + 1)) (fun k -> a + k)
      | Value.Call_dim -> List.init dim Fun.id
    in
    let rec cart i =
      if i >= Array.length subs then [ [] ]
      else
        let tails = cart (i + 1) in
        List.concat_map
          (fun p -> List.map (fun tl -> p :: tl) tails)
          (expand_sub dims.(i) subs.(i))
    in
    List.map Array.of_list (cart 0)

(* ------------------------------------------------------------------ *)
(* The worker protocol                                                 *)
(* ------------------------------------------------------------------ *)

let serve (master : Transport.conn) ~(materialize : materialize) ~rank
    ~(like : Transport.addr) : unit =
  let deadline = Unix.gettimeofday () +. deadline_seconds () in
  let recv_master what = recv_with_deadline master ~deadline ~what in
  (* -- plan ------------------------------------------------------- *)
  let p =
    match recv_master "plan" with
    | Wire.Plan p -> p
    | m -> fail "expected plan, got %s" (Wire.tag m)
  in
  let comms =
    match Policy.spec_of_string p.p_comms with
    | Ok spec -> spec
    | Error e -> fail "bad comms policy in plan: %s" e
  in
  let inst =
    match
      materialize p.p_app ~scale:p.p_scale ~num_machines:p.p_num_machines
        ~workers_per_machine:p.p_workers_per_machine
    with
    | Some i -> i
    | None -> fail "unknown app %S" p.p_app
  in
  let session = inst.Orion.App.inst_session in
  let plan = Orion.analyze_loop session inst.Orion.App.inst_loop in
  let compiled =
    Orion.compile session ~plan ~iter:inst.Orion.App.inst_iter
      ?pipeline_depth:p.p_pipeline_depth ()
  in
  (* re-planning swaps the schedule at pass boundaries; sp / tp / model
     never change mid-run (the master's final assembly depends on them) *)
  let sched = ref compiled.Orion.schedule in
  let sp = !sched.Schedule.space_parts
  and tp = !sched.Schedule.time_parts in
  let model =
    Domain_exec.model_of_plan plan ~pipeline_depth:compiled.Orion.pipeline_depth
      ~sp ~tp
  in
  if sp <> p.p_sp || tp <> p.p_tp then
    fail "schedule shape mismatch: worker %dx%d, master %dx%d" sp tp p.p_sp
      p.p_tp;
  if model <> p.p_model then
    fail "execution model mismatch: worker %s, master %s"
      (Domain_exec.model_to_string model)
      (Domain_exec.model_to_string p.p_model);
  if Schedule.fingerprint !sched <> p.p_fingerprint then
    fail "schedule fingerprint mismatch (nondeterministic compile?)";
  (* rebuild under a re-balanced space cut, with [Orion.compile]'s
     shuffle seed so master and workers fingerprint identically *)
  let rebuild_schedule new_boundaries =
    match plan.Plan.strategy with
    | Plan.One_d { space_dim } ->
        Schedule.partition_1d_with ~shuffle_seed:17
          inst.Orion.App.inst_iter ~space_dim
          ~space_boundaries:new_boundaries
    | Plan.Data_parallel ->
        Schedule.partition_1d_with ~shuffle_seed:17
          inst.Orion.App.inst_iter ~space_dim:0
          ~space_boundaries:new_boundaries
    | Plan.Two_d { space_dim; time_dim } ->
        Schedule.partition_2d_with ~shuffle_seed:17
          inst.Orion.App.inst_iter ~space_dim ~time_dim
          ~space_boundaries:new_boundaries ~time_parts:tp
    | Plan.Two_d_unimodular _ ->
        fail "repartition is unsupported for unimodular schedules"
  in
  if rank < 0 || rank >= sp then fail "rank %d out of range (sp = %d)" rank sp;
  if p.p_procs <> sp then
    fail "worker count %d does not match space partitions %d" p.p_procs sp;
  if p.p_adapt && not p.p_telemetry then
    fail "adaptive re-planning requires telemetry (the master decides \
          from shipped block costs)";
  (* -- telemetry ----------------------------------------------------
     One local shard (this process is one worker).  Spans are recorded
     on this process's monotonic clock and drained to the master after
     every pass, together with the absolute epoch that lets the master
     align them onto its own timeline. *)
  let tel = Telemetry.create ~enabled:p.p_telemetry ~workers:1 () in
  let tel_on = p.p_telemetry in
  let tel_now () = if tel_on then Telemetry.now tel else 0.0 in
  let tel_span ~category ~label ~bytes ~start =
    if tel_on then
      Telemetry.span tel ~shard:0 ~worker:rank ~category ~label ~bytes ~start
        ~finish:(tel_now ())
  in
  (* -- own listener + prefetch request ----------------------------- *)
  let listener = Transport.listen (Transport.fresh_addr ~like) in
  Transport.send master
    (Wire.Listening
       {
         l_rank = rank;
         l_addr = Transport.addr_to_string listener.Transport.laddr;
       });
  let arrays = inst.Orion.App.inst_arrays in
  let buffered = inst.Orion.App.inst_buffered in
  let arr_tbl : (string, float Dist_array.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun (n, a) -> Hashtbl.replace arr_tbl n a) arrays;
  let placement name = List.assoc_opt name plan.Plan.placements in
  (* arrays whose contents the wire is responsible for *)
  let managed name =
    (not (List.mem name buffered)) && placement name <> None
  in
  let prefetch_names =
    List.filter_map
      (fun (n, _) ->
        if managed n && placement n = Some Plan.Server then Some n else None)
      arrays
  in
  (* always sent, possibly empty, so the master's serving path is
     exercised every run *)
  Transport.send master
    (Wire.Prefetch_request { pr_rank = rank; pr_arrays = prefetch_names });
  (* -- receive array contents ------------------------------------- *)
  (* zero every managed array first: its initial contents must arrive
     over the wire, which makes partition shipping load-bearing *)
  List.iter
    (fun (n, a) ->
      if managed n then
        Array.iter
          (fun (key, _) -> Dist_array.set a key 0.0)
          (Dist_array.entries a))
    arrays;
  let apply_parts what payloads =
    List.iter
      (fun (part : Wire.part) ->
        match Hashtbl.find_opt arr_tbl part.Dist_array.pt_array with
        | Some a -> Dist_array.apply_partition a part
        | None -> fail "%s for unknown array %S" what part.Dist_array.pt_array)
      (Policy.decode_parts payloads)
  in
  (match recv_master "partition ship" with
  | Wire.Partition_ship parts -> apply_parts "partition ship" parts
  | m -> fail "expected partition-ship, got %s" (Wire.tag m));
  (match recv_master "prefetch response" with
  | Wire.Prefetch_response parts -> apply_parts "prefetch response" parts
  | m -> fail "expected prefetch-response, got %s" (Wire.tag m));
  let peer_addrs =
    match recv_master "peers" with
    | Wire.Peers a -> a
    | m -> fail "expected peers, got %s" (Wire.tag m)
  in
  if Array.length peer_addrs <> sp then
    fail "peers table has %d entries, expected %d" (Array.length peer_addrs) sp;
  (* -- peer mesh: rank a connects to rank b iff a < b --------------- *)
  let peers : Transport.conn option array = Array.make sp None in
  let peer q =
    match peers.(q) with
    | Some c -> c
    | None -> fail "no connection to peer %d" q
  in
  let loop = Event_loop.create () in
  for b = rank + 1 to sp - 1 do
    let c = Transport.connect (Transport.addr_of_string peer_addrs.(b)) in
    Transport.send c
      (Wire.Peer_hello { ph_rank = rank; ph_version = Wire.version });
    peers.(b) <- Some c;
    Event_loop.add loop b c
  done;
  for _ = 1 to rank do
    let c = accept_with_deadline listener ~deadline ~what:"peer mesh" in
    match recv_with_deadline c ~deadline ~what:"peer hello" with
    | Wire.Peer_hello { ph_rank = a; ph_version } ->
        if ph_version <> Wire.version then
          fail
            "peer %d speaks wire protocol version %d, this worker speaks %d \
             (mixed builds?)"
            a ph_version Wire.version;
        peers.(a) <- Some c;
        Event_loop.add loop a c
    | m -> fail "expected peer-hello, got %s" (Wire.tag m)
  done;
  (* -- shadows for buffered arrays (as Engine.make_shadows) --------- *)
  let env = inst.Orion.App.inst_env in
  let shadows =
    List.filter_map
      (fun (name, arr) ->
        if List.mem name buffered then begin
          let shadow =
            Dist_array.fill_dense ~name ~dims:(Dist_array.dims arr) 0.0
          in
          Interp.set_var env name
            (Value.Vextern (Dist_array.to_extern shadow));
          Some (name, shadow)
        end
        else None)
      arrays
  in
  (* -- compiled kernel ----------------------------------------------
     Compiled once, after the shadow rebinding (the kernel captures
     env's current array bindings).  The write-journal hook installed
     below is checked dynamically inside the kernel, so every DistArray
     access still routes through the boxed, hook-calling path while the
     journal is attached — the journal sees exactly what it would see
     under the interpreter. *)
  let kernel = Orion.Engine.compile_kernel inst env in
  let exec_entry ~key ~value =
    match kernel with
    | Some k -> Orion.Compile.run k ~key ~value
    | None ->
        Interp.eval_body_for env ~key_var:inst.Orion.App.inst_key_var
          ~value_var:inst.Orion.App.inst_value_var ~key ~value
          inst.Orion.App.inst_body
  in
  (* -- write journal ------------------------------------------------ *)
  let order = Domain_exec.natural_order model ~sp ~tp in
  let natpos : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri (fun i (s, t) -> Hashtbl.replace natpos ((s * tp) + t) i) order;
  let pos blk = try Hashtbl.find natpos blk with Not_found -> max_int in
  (* Version of the last write applied to each element, as
     (pass, natural-order position of the writing block).  The analysis
     guarantees all writers of one element are happens-before-ordered,
     and natural order linearizes happens-before, so last-writer-wins by
     version applies remote writes correctly regardless of the order
     tokens from different peers arrive in. *)
  let versions : (string * int array, int * int) Hashtbl.t =
    Hashtbl.create 256
  in
  let apply_write ~version (w : Wire.write) =
    match Hashtbl.find_opt arr_tbl w.w_array with
    | None -> ()
    | Some arr ->
        let stale =
          match Hashtbl.find_opt versions (w.w_array, w.w_key) with
          | Some v -> v > version
          | None -> false
        in
        if not stale then begin
          Hashtbl.replace versions (w.w_array, w.w_key) version;
          Dist_array.set arr w.w_key w.w_value
        end
  in
  let cur_version = ref (0, 0) in
  let current : Wire.write list ref = ref [] (* newest first *) in
  env.Interp.on_array_access <-
    Some
      (fun ex ~write subs ->
        if write then
          match Hashtbl.find_opt arr_tbl ex.Value.ex_name with
          | Some arr when not (List.mem ex.Value.ex_name buffered) ->
              (* the hook fires after the write: [get] reads the
                 just-written value *)
              List.iter
                (fun key ->
                  Hashtbl.replace versions (ex.Value.ex_name, key)
                    !cur_version;
                  current :=
                    {
                      Wire.w_array = ex.Value.ex_name;
                      w_key = key;
                      w_value = Dist_array.get arr key;
                    }
                    :: !current)
                (expand_keys ex.Value.ex_dims subs)
          | _ -> ());
  (* -- happens-before bookkeeping ----------------------------------- *)
  let owner blk = blk / tp in
  let incoming : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let outgoing : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (src, dst) ->
      if owner src <> owner dst then begin
        if owner dst = rank then
          Hashtbl.replace incoming dst
            (src :: Option.value (Hashtbl.find_opt incoming dst) ~default:[]);
        if owner src = rank then
          Hashtbl.replace outgoing src
            (dst :: Option.value (Hashtbl.find_opt outgoing src) ~default:[])
      end)
    (Domain_exec.block_edges model ~sp ~tp);
  let tokens : (int * int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let syncs : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let known : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  (* Everything this worker knows (own blocks and received ones), in
     the order learned.  Tokens relay the whole unseen suffix, not just
     own writes: a receiver thereby learns everything that
     happens-before the sending block, even transitively through ranks
     that never touched the data ([known] dedups the echoes). *)
  let own : Wire.block_writes list ref = ref [] (* newest first *) in
  let known_log : Wire.block_writes list ref = ref [] (* newest first *) in
  let klen = ref 0 in
  let learn (bw : Wire.block_writes) =
    if not (Hashtbl.mem known (bw.bw_pass, bw.bw_block)) then begin
      Hashtbl.replace known (bw.bw_pass, bw.bw_block) ();
      known_log := bw :: !known_log;
      incr klen
    end;
    (* apply unconditionally, not only on first sight: a lossy policy's
       pass-sync flush re-delivers residual writes for blocks learned
       earlier, and last-writer-wins application is idempotent *)
    let version = (bw.bw_pass, pos bw.bw_block) in
    Array.iter (apply_write ~version) bw.bw_writes
  in
  let apply_entries entries = List.iter learn entries in
  (* -- communication policy ----------------------------------------- *)
  let linearize name key =
    match Hashtbl.find_opt arr_tbl name with
    | Some a -> Dist_array.linearize a key
    | None -> fail "journaled write to unknown array %S" name
  in
  let delinearize name lin =
    match Hashtbl.find_opt arr_tbl name with
    | Some a -> Dist_array.delinearize a lin
    | None -> fail "packed payload for unknown array %S" name
  in
  let sender = Policy.sender comms ~peers:sp ~linearize ~pos in
  (* migration shipments, keyed (pass, sending rank) *)
  let reparts : (int * int, Wire.part list) Hashtbl.t = Hashtbl.create 16 in
  let handle = function
    | Event_loop.Message (_, Wire.Rotation_token { rt_pass; rt_src; rt_dst; rt_entries })
      ->
        apply_entries (Policy.decode_entries ~delinearize rt_entries);
        Hashtbl.replace tokens (rt_pass, rt_src, rt_dst) ()
    | Event_loop.Message (_, Wire.Pass_sync { ps_pass; ps_rank; ps_entries }) ->
        apply_entries (Policy.decode_entries ~delinearize ps_entries);
        Hashtbl.replace syncs (ps_pass, ps_rank) ()
    | Event_loop.Message (_, Wire.Repart_ship { rs_pass; rs_rank; rs_parts })
      ->
        Hashtbl.replace reparts (rs_pass, rs_rank) rs_parts
    | Event_loop.Message (q, m) ->
        fail "unexpected %s from peer %d" (Wire.tag m) q
    | Event_loop.Closed q -> fail "peer %d closed its connection mid-run" q
  in
  let wait_for pred what =
    let rec go () =
      if not (pred ()) then begin
        if Unix.gettimeofday () > deadline then
          fail "timed out waiting for %s" what;
        List.iter handle (Event_loop.poll loop ~timeout:0.1);
        go ()
      end
    in
    go ()
  in
  (* Peer sends must drain while writing: two peers pushing multi-MB
     frames at each other with both socket buffers full would block in
     plain [Transport.send] forever.  [handle] never sends, so pumping
     the event loop from inside a send cannot reenter. *)
  let send_peer q m =
    Transport.send_draining (peer q) m ~drain:(fun () ->
        if Unix.gettimeofday () > deadline then
          fail "timed out sending %s to peer %d" (Wire.tag m) q;
        List.iter handle (Event_loop.poll loop ~timeout:0.05))
  in
  (* per-peer cursor into [known_log]; entries the peer authored itself
     are filtered out of the payload (it has them by construction).
     The comms policy then decides what actually goes on the wire:
     [prepare_payload] returns the encoded payload plus its actual
     bytes (which label the telemetry Transfer span around the send),
     accumulating both the actual and the full-policy-equivalent bytes
     per array for the final stats. *)
  let sent_upto = Array.make sp 0 in
  let bytes_by_array : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let bytes_full_by_array : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let fresh_entries q =
    let n = !klen - sent_upto.(q) in
    sent_upto.(q) <- !klen;
    let rec take k l =
      if k = 0 then []
      else match l with [] -> [] | x :: tl -> x :: take (k - 1) tl
    in
    List.filter
      (fun (bw : Wire.block_writes) -> owner bw.bw_block <> q)
      (List.rev (take n !known_log))
  in
  let prepare_payload q ~sync =
    let payload, accounts =
      Policy.prepare sender ~peer:q ~sync (fresh_entries q)
    in
    let bytes = ref 0.0 in
    List.iter
      (fun (name, actual, full) ->
        bytes := !bytes +. actual;
        let bump tbl v =
          Hashtbl.replace tbl name
            (v +. Option.value (Hashtbl.find_opt tbl name) ~default:0.0)
        in
        bump bytes_by_array actual;
        bump bytes_full_by_array full)
      accounts;
    (payload, !bytes)
  in
  (* -- live partition migration (adaptive re-planning) ---------------
     At a pass barrier all journal traffic for the finished pass has
     been applied, so each rank's locally-partitioned regions are
     authoritative.  Ownership follows the space cut: entries moving
     from this rank's old region into peer [q]'s new region ship to
     [q]; a shipment goes to {e every} peer (possibly empty) because
     arrival itself is the synchronization.  Early next-pass tokens
     from faster peers only carry writes of non-locally-partitioned
     arrays, so applying shipments after them cannot lose a write. *)
  let migrate ~pass ~new_boundaries ~fingerprint =
    let old_boundaries = !sched.Schedule.space_boundaries in
    let migrating =
      List.filter_map
        (fun (name, arr) ->
          if List.mem name buffered then None
          else
            match placement name with
            | Some (Plan.Local_partitioned { array_dim }) ->
                Some (name, arr, array_dim)
            | _ -> None)
        arrays
    in
    for q = 0 to sp - 1 do
      if q <> rank then begin
        let parts =
          List.map
            (fun (_, arr, array_dim) ->
              Dist_array.to_partition
                ~select:(fun key _ ->
                  let d = key.(array_dim) in
                  Orion_dsm.Partitioner.part_of ~boundaries:old_boundaries d
                  = rank
                  && Orion_dsm.Partitioner.part_of ~boundaries:new_boundaries
                       d
                     = q)
                arr)
            migrating
        in
        let bytes =
          List.fold_left
            (fun acc part ->
              acc +. float_of_int (Dist_array.partition_size_bytes part))
            0.0 parts
        in
        List.iter
          (fun (part : Wire.part) ->
            let name = part.Dist_array.pt_array in
            let b = float_of_int (Dist_array.partition_size_bytes part) in
            let bump tbl =
              Hashtbl.replace tbl name
                (b +. Option.value (Hashtbl.find_opt tbl name) ~default:0.0)
            in
            (* migration ships raw partitions — actual = full *)
            bump bytes_by_array;
            bump bytes_full_by_array)
          parts;
        let send_start = tel_now () in
        send_peer q
          (Wire.Repart_ship { rs_pass = pass; rs_rank = rank; rs_parts = parts });
        tel_span ~category:Orion_obs.Trace.Transfer
          ~label:(Printf.sprintf "repart->%d" q)
          ~bytes ~start:send_start
      end
    done;
    let wait_start = tel_now () in
    wait_for
      (fun () ->
        let ok = ref true in
        for q = 0 to sp - 1 do
          if q <> rank && not (Hashtbl.mem reparts (pass, q)) then ok := false
        done;
        !ok)
      (Printf.sprintf "repartition shipments for pass %d" pass);
    tel_span ~category:Orion_obs.Trace.Barrier_wait ~label:"repart-wait"
      ~bytes:0.0 ~start:wait_start;
    for q = 0 to sp - 1 do
      if q <> rank then
        List.iter
          (fun (part : Wire.part) ->
            match Hashtbl.find_opt arr_tbl part.Dist_array.pt_array with
            | Some a -> Dist_array.apply_partition a part
            | None ->
                fail "repartition ship for unknown array %S"
                  part.Dist_array.pt_array)
          (Option.value (Hashtbl.find_opt reparts (pass, q)) ~default:[])
    done;
    let ns = rebuild_schedule new_boundaries in
    if ns.Schedule.space_parts <> sp || ns.Schedule.time_parts <> tp then
      fail "re-planned schedule changed shape: %dx%d, expected %dx%d"
        ns.Schedule.space_parts ns.Schedule.time_parts sp tp;
    if Schedule.fingerprint ns <> fingerprint then
      fail "re-planned schedule fingerprint mismatch";
    sched := ns
  in
  (* -- execute ------------------------------------------------------ *)
  let abort = abort_spec () in
  let blocks_done = ref 0 and entries_done = ref 0 in
  let t0 = Orion_obs.Clock.now () in
  for pass = 0 to p.p_passes - 1 do
    let pass_start = tel_now () in
    (* refresh the policy's per-array stats once per pass (not per
       token): density decides the packed key encoding, and the
       per-pass byte budget resets here *)
    Policy.note_pass sender
      (List.filter_map
         (fun (n, a) ->
           if List.mem n buffered then None else Some (n, Dist_array.stats a))
         arrays);
    Array.iter
      (fun (s, t) ->
        if s = rank then begin
          let blk = (s * tp) + t in
          (match abort with
          | Some (r, after) when r = rank && !blocks_done >= after ->
              (* injected fault: die abruptly, skipping all cleanup *)
              Unix._exit abort_exit_code
          | _ -> ());
          let need =
            Option.value (Hashtbl.find_opt incoming blk) ~default:[]
          in
          let wait_start = tel_now () in
          wait_for
            (fun () ->
              List.for_all
                (fun src -> Hashtbl.mem tokens (pass, src, blk))
                need)
            (Printf.sprintf "tokens for block %d of pass %d" blk pass);
          tel_span ~category:Orion_obs.Trace.Idle ~label:"wait-tokens"
            ~bytes:0.0 ~start:wait_start;
          current := [];
          cur_version := (pass, pos blk);
          let b = !sched.Schedule.blocks.(s).(t) in
          let blk_start = tel_now () in
          Array.iter
            (fun (key, value) ->
              exec_entry ~key ~value;
              incr entries_done)
            b.Schedule.entries;
          if tel_on then
            Telemetry.block tel ~shard:0 ~worker:rank ~pass ~space:s ~time:t
              ~start:blk_start ~finish:(tel_now ())
              ~entries:(Array.length b.Schedule.entries);
          incr blocks_done;
          Hashtbl.replace known (pass, blk) ();
          let bw =
            {
              Wire.bw_pass = pass;
              bw_block = blk;
              bw_writes = Array.of_list (List.rev !current);
            }
          in
          own := bw :: !own;
          known_log := bw :: !known_log;
          incr klen;
          match Hashtbl.find_opt outgoing blk with
          | None -> ()
          | Some dsts ->
              List.iter
                (fun dst ->
                  let q = owner dst in
                  let payload, bytes = prepare_payload q ~sync:false in
                  let send_start = tel_now () in
                  send_peer q
                    (Wire.Rotation_token
                       {
                         rt_pass = pass;
                         rt_src = blk;
                         rt_dst = dst;
                         rt_entries = payload;
                       });
                  tel_span ~category:Orion_obs.Trace.Transfer
                    ~label:(Printf.sprintf "token->%d" q)
                    ~bytes ~start:send_start)
                (List.sort_uniq compare dsts)
        end)
      order;
    (* pass barrier: flush the journal all-to-all so pass + 1 starts
       from globally consistent DistArray state *)
    for q = 0 to sp - 1 do
      if q <> rank then begin
        (* the barrier flush bypasses ranking and budgets and folds in
           every residual held for this peer, so pass + 1 starts from
           globally consistent state under every policy *)
        let payload, bytes = prepare_payload q ~sync:true in
        let send_start = tel_now () in
        send_peer q
          (Wire.Pass_sync
             { ps_pass = pass; ps_rank = rank; ps_entries = payload });
        tel_span ~category:Orion_obs.Trace.Transfer
          ~label:(Printf.sprintf "sync->%d" q)
          ~bytes ~start:send_start
      end
    done;
    let barrier_start = tel_now () in
    wait_for
      (fun () ->
        let ok = ref true in
        for q = 0 to sp - 1 do
          if q <> rank && not (Hashtbl.mem syncs (pass, q)) then ok := false
        done;
        !ok)
      (Printf.sprintf "pass %d barrier" pass);
    tel_span ~category:Orion_obs.Trace.Barrier_wait ~label:"pass-sync"
      ~bytes:0.0 ~start:barrier_start;
    (* ship this pass's telemetry shard to the master: spans on the
       worker's clock plus the absolute epoch the master aligns with *)
    if tel_on then begin
      let spans, costs, dropped = Telemetry.drain tel ~shard:0 in
      Transport.send master
        (Wire.Pass_telemetry
           {
             pt_rank = rank;
             pt_pass = pass;
             pt_epoch = Telemetry.epoch tel;
             pt_window = (pass_start, tel_now ());
             pt_dropped = dropped;
             pt_spans = spans;
             pt_costs = costs;
           })
    end;
    (* ship the pass-boundary state for master-side checkpoints: this
       pass's own writes plus the cumulative buffered shadows *)
    if p.p_report_passes then begin
      let entries =
        List.filter
          (fun (bw : Wire.block_writes) -> bw.bw_pass = pass)
          (List.rev !own)
      in
      let parts =
        List.map
          (fun (_, shadow) ->
            Dist_array.to_partition ~select:(fun _ v -> v <> 0.0) shadow)
          shadows
      in
      Transport.send master
        (Wire.Pass_report
           {
             pp_rank = rank;
             pp_pass = pass;
             pp_entries = entries;
             pp_buffered = parts;
           })
    end;
    (* adaptive runs gate every pass boundary but the last on the
       master's directive: it needs all ranks' shipped block costs
       before it can decide, and a [Repartition] must be fully applied
       before any rank starts the next pass's blocks *)
    if p.p_adapt && pass < p.p_passes - 1 then begin
      let gate_start = tel_now () in
      (match recv_master "re-plan directive" with
      | Wire.Continue { c_pass } ->
          if c_pass <> pass then
            fail "continue for pass %d at the pass-%d boundary" c_pass pass
      | Wire.Repartition { rp_pass; rp_boundaries; rp_fingerprint } ->
          if rp_pass <> pass then
            fail "repartition for pass %d at the pass-%d boundary" rp_pass
              pass;
          migrate ~pass ~new_boundaries:rp_boundaries
            ~fingerprint:rp_fingerprint
      | m -> fail "expected re-plan directive, got %s" (Wire.tag m));
      tel_span ~category:Orion_obs.Trace.Barrier_wait ~label:"replan-gate"
        ~bytes:0.0 ~start:gate_start
    end
  done;
  (* leak loop locals back into the env, as the interpreter would *)
  Option.iter Orion.Compile.flush_locals kernel;
  let wall = Orion_obs.Clock.elapsed t0 in
  (* -- final reports ------------------------------------------------ *)
  Transport.send master
    (Wire.Block_report { br_rank = rank; br_entries = List.rev !own });
  let flush_parts, totals =
    List.fold_left
      (fun (parts, totals) (name, shadow) ->
        let part = Dist_array.to_partition ~select:(fun _ v -> v <> 0.0) shadow in
        let total =
          Array.fold_left
            (fun acc (_, v) -> acc +. v)
            0.0 part.Dist_array.pt_entries
        in
        (part :: parts, (name, total) :: totals))
      ([], []) shadows
  in
  Transport.send master
    (Wire.Buffer_flush { bf_rank = rank; bf_parts = List.rev flush_parts });
  Transport.send master
    (Wire.Acc_merge { am_rank = rank; am_totals = List.rev totals });
  let bytes_sent =
    Array.fold_left
      (fun acc c ->
        match c with Some c -> acc +. c.Transport.bytes_out | None -> acc)
      0.0 peers
  in
  let sorted_bindings tbl =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  Transport.send master
    (Wire.Done
       {
         ws_rank = rank;
         ws_blocks = !blocks_done;
         ws_entries = !entries_done;
         ws_wall_seconds = wall;
         ws_bytes_sent = bytes_sent;
         ws_bytes_by_array = sorted_bindings bytes_by_array;
         ws_bytes_full_by_array = sorted_bindings bytes_full_by_array;
         ws_policy_by_array = Policy.decisions sender;
       });
  (* keep peer connections open until the master confirms every worker
     is done — closing earlier would surface as a peer failure there *)
  (match recv_master "shutdown" with
  | Wire.Shutdown -> ()
  | m -> fail "expected shutdown, got %s" (Wire.tag m));
  Array.iter (function Some c -> Transport.close_conn c | None -> ()) peers;
  Transport.close_listener listener

(** Connect to the master, run the whole worker protocol, and return on
    a clean shutdown.  Any failure is reported to the master as a
    {!Wire.Fatal} before re-raising. *)
let connect_and_serve ~(materialize : materialize) ~rank ~master_addr : unit =
  (* a dead peer must surface as an EPIPE exception (and so the guarded
     Fatal path below), not kill the worker silently via SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let like = Transport.addr_of_string master_addr in
  let master = Transport.connect like in
  Transport.send master
    (Wire.Hello
       { h_rank = rank; h_pid = Unix.getpid (); h_version = Wire.version });
  match serve master ~materialize ~rank ~like with
  | () -> Transport.close_conn master
  | exception e ->
      let reason =
        match e with Worker_error s -> s | e -> Printexc.to_string e
      in
      (try Transport.send master (Wire.Fatal { f_rank = rank; f_reason = reason })
       with _ -> ());
      Transport.close_conn master;
      raise e
