(** Pluggable communication policies: see [policy.mli] for the model.

    Layout of the packed codecs (all integers are unsigned LEB128
    varints, float values are 8 little-endian bytes of IEEE-754 bits,
    so round trips are bitwise):

    {v
    entries  := ngroups group*
    group    := namelen name pass block nwrites keymode keys valmode values
    part     := namelen name ndims dim* default sparse keymode nentries
                keys valmode values
    keys     := k0 delta*                     (keymode 0: sparse)
              | nruns (gap len)*              (keymode 1: dense runs)
    values   := bits*                         (valmode 0: raw)
              | nruns (count bits)*           (valmode 1: RLE)
    v}

    Keys are ascending linearized (row-major) element indices; both
    ends rebuild identical arrays from the same registry, so indices
    agree across processes. *)

module Dist_array = Orion_dsm.Dist_array

type spec = Auto | Full | Delta | Topk of int | Budget of float

let spec_to_string = function
  | Auto -> "auto"
  | Full -> "full"
  | Delta -> "delta"
  | Topk k -> Printf.sprintf "topk:%d" k
  | Budget b -> Printf.sprintf "budget:%.0f" b

let usage = "expected full | delta | topk:K | budget:BYTES | auto"

let spec_of_string s =
  let s = String.trim (String.lowercase_ascii s) in
  match s with
  | "" | "auto" -> Ok Auto
  | "full" -> Ok Full
  | "delta" -> Ok Delta
  | _ -> (
      match String.index_opt s ':' with
      | Some i -> (
          let head = String.sub s 0 i
          and arg = String.sub s (i + 1) (String.length s - i - 1) in
          match head with
          | "topk" -> (
              match int_of_string_opt arg with
              | Some k when k > 0 -> Ok (Topk k)
              | _ -> Error (Printf.sprintf "bad top-k count %S: %s" arg usage))
          | "budget" -> (
              match float_of_string_opt arg with
              | Some b when b > 0.0 -> Ok (Budget b)
              | _ ->
                  Error (Printf.sprintf "bad byte budget %S: %s" arg usage))
          | _ -> Error (Printf.sprintf "unknown comms policy %S: %s" s usage))
      | None -> Error (Printf.sprintf "unknown comms policy %S: %s" s usage))

let spec_of_string_exn s =
  match spec_of_string s with Ok p -> p | Error e -> invalid_arg e

(* ------------------------------------------------------------------ *)
(* Varints and float bits                                              *)
(* ------------------------------------------------------------------ *)

let put_varint buf n =
  if n < 0 then invalid_arg "Policy: negative varint";
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let varint_len n =
  let rec go n acc = if n < 0x80 then acc else go (n lsr 7) (acc + 1) in
  go (max 0 n) 1

let get_varint bytes pos =
  let n = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !pos >= Bytes.length bytes then failwith "Policy: truncated varint";
    let b = Char.code (Bytes.get bytes !pos) in
    incr pos;
    n := !n lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue := false
  done;
  !n

let put_float buf v =
  let bits = Int64.bits_of_float v in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

let get_float bytes pos =
  if !pos + 8 > Bytes.length bytes then failwith "Policy: truncated float";
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor !bits
        (Int64.shift_left
           (Int64.of_int (Char.code (Bytes.get bytes (!pos + i))))
           (8 * i))
  done;
  pos := !pos + 8;
  Int64.float_of_bits !bits

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let get_string bytes pos =
  let n = get_varint bytes pos in
  if !pos + n > Bytes.length bytes then failwith "Policy: truncated string";
  let s = Bytes.sub_string bytes !pos n in
  pos := !pos + n;
  s

(* ------------------------------------------------------------------ *)
(* Key and value sections                                              *)
(* ------------------------------------------------------------------ *)

(* [keys] ascending and distinct. *)
let put_keys buf ~(mode : [ `Sparse | `Dense ]) (keys : int array) =
  match mode with
  | `Sparse ->
      Buffer.add_char buf '\000';
      Array.iteri
        (fun i k -> put_varint buf (if i = 0 then k else k - keys.(i - 1) - 1))
        keys
  | `Dense ->
      (* runs of consecutive keys: (gap from previous run's end, length) *)
      Buffer.add_char buf '\001';
      let runs = ref [] in
      Array.iter
        (fun k ->
          match !runs with
          | (start, len) :: tl when k = start + len -> runs := (start, len + 1) :: tl
          | _ -> runs := (k, 1) :: !runs)
        keys;
      let runs = List.rev !runs in
      put_varint buf (List.length runs);
      let prev_end = ref (-1) in
      List.iter
        (fun (start, len) ->
          put_varint buf (start - !prev_end - 1);
          put_varint buf len;
          prev_end := start + len - 1)
        runs

let get_keys bytes pos ~n =
  match Char.code (Bytes.get bytes !pos) with
  | 0 ->
      incr pos;
      let keys = Array.make n 0 in
      let prev = ref (-1) in
      for i = 0 to n - 1 do
        let d = get_varint bytes pos in
        keys.(i) <- (if i = 0 then d else !prev + 1 + d);
        prev := keys.(i)
      done;
      keys
  | 1 ->
      incr pos;
      let nruns = get_varint bytes pos in
      let keys = Array.make n 0 in
      let i = ref 0 and prev_end = ref (-1) in
      for _ = 1 to nruns do
        let gap = get_varint bytes pos in
        let len = get_varint bytes pos in
        let start = !prev_end + 1 + gap in
        for j = 0 to len - 1 do
          if !i >= n then failwith "Policy: key runs overflow count";
          keys.(!i) <- start + j;
          incr i
        done;
        prev_end := start + len - 1
      done;
      if !i <> n then failwith "Policy: key runs underflow count";
      keys
  | _ -> failwith "Policy: bad key mode"

(* Raw or RLE, whichever is smaller for these values. *)
let put_values buf (values : float array) =
  let n = Array.length values in
  let runs = ref [] in
  Array.iter
    (fun v ->
      match !runs with
      | (v0, c) :: tl when Int64.bits_of_float v0 = Int64.bits_of_float v ->
          runs := (v0, c + 1) :: tl
      | _ -> runs := (v, 1) :: !runs)
    values;
  let runs = List.rev !runs in
  let rle_size =
    List.fold_left (fun acc (_, c) -> acc + varint_len c + 8) (varint_len (List.length runs)) runs
  in
  if rle_size < n * 8 then begin
    Buffer.add_char buf '\001';
    put_varint buf (List.length runs);
    List.iter
      (fun (v, c) ->
        put_varint buf c;
        put_float buf v)
      runs
  end
  else begin
    Buffer.add_char buf '\000';
    Array.iter (put_float buf) values
  end

let get_values bytes pos ~n =
  match Char.code (Bytes.get bytes !pos) with
  | 0 ->
      incr pos;
      Array.init n (fun _ -> get_float bytes pos)
  | 1 ->
      incr pos;
      let nruns = get_varint bytes pos in
      let values = Array.make n 0.0 in
      let i = ref 0 in
      for _ = 1 to nruns do
        let c = get_varint bytes pos in
        let v = get_float bytes pos in
        for _ = 1 to c do
          if !i >= n then failwith "Policy: value runs overflow count";
          values.(!i) <- v;
          incr i
        done
      done;
      if !i <> n then failwith "Policy: value runs underflow count";
      values
  | _ -> failwith "Policy: bad value mode"

(* ------------------------------------------------------------------ *)
(* Partition codec                                                     *)
(* ------------------------------------------------------------------ *)

let encode_part ~mode (p : Wire.part) : bytes =
  let buf = Buffer.create 256 in
  put_string buf p.Dist_array.pt_array;
  put_varint buf (Array.length p.Dist_array.pt_dims);
  Array.iter (put_varint buf) p.Dist_array.pt_dims;
  put_float buf p.Dist_array.pt_default;
  Buffer.add_char buf (if p.Dist_array.pt_sparse then '\001' else '\000');
  let n = Array.length p.Dist_array.pt_entries in
  put_varint buf n;
  if n > 0 then begin
    put_keys buf ~mode (Array.map fst p.Dist_array.pt_entries);
    put_values buf (Array.map snd p.Dist_array.pt_entries)
  end;
  Buffer.to_bytes buf

let decode_part (b : bytes) : Wire.part =
  let pos = ref 0 in
  let name = get_string b pos in
  let ndims = get_varint b pos in
  let dims = Array.init ndims (fun _ -> get_varint b pos) in
  let default = get_float b pos in
  let sparse = Char.code (Bytes.get b !pos) = 1 in
  incr pos;
  let n = get_varint b pos in
  let entries =
    if n = 0 then [||]
    else
      let keys = get_keys b pos ~n in
      let values = get_values b pos ~n in
      Array.init n (fun i -> (keys.(i), values.(i)))
  in
  {
    Dist_array.pt_array = name;
    pt_dims = dims;
    pt_default = default;
    pt_sparse = sparse;
    pt_entries = entries;
  }

let part_mode (p : Wire.part) : [ `Sparse | `Dense ] =
  let cells = Array.fold_left (fun a d -> a * d) 1 p.Dist_array.pt_dims in
  let cells = if Array.length p.Dist_array.pt_dims = 0 then 0 else cells in
  if
    cells > 0
    && float_of_int (Array.length p.Dist_array.pt_entries)
       /. float_of_int cells
       >= 0.5
  then `Dense
  else `Sparse

let prepare_parts spec (parts : Wire.part list) :
    Wire.part_payload list * (string * float * float) list =
  let accounts = ref [] in
  let payloads =
    List.map
      (fun (p : Wire.part) ->
        let full = float_of_int (Dist_array.partition_size_bytes p) in
        match spec with
        | Full ->
            accounts := (p.Dist_array.pt_array, full, full) :: !accounts;
            Wire.Part p
        | Auto | Delta | Topk _ | Budget _ ->
            let b = encode_part ~mode:(part_mode p) p in
            accounts :=
              (p.Dist_array.pt_array, float_of_int (Bytes.length b), full)
              :: !accounts;
            Wire.Packed_part b)
      parts
  in
  (payloads, List.rev !accounts)

let decode_parts (payloads : Wire.part_payload list) : Wire.part list =
  List.map
    (function Wire.Part p -> p | Wire.Packed_part b -> decode_part b)
    payloads

(* ------------------------------------------------------------------ *)
(* Journal-entry codec                                                 *)
(* ------------------------------------------------------------------ *)

(* One encode group: the deduplicated writes of one (pass, block) to
   one array, ascending by linearized key. *)
type group = {
  g_array : string;
  g_pass : int;
  g_block : int;
  g_keys : int array;  (** linearized, ascending *)
  g_values : float array;
}

let encode_groups ~(mode_for : string -> [ `Sparse | `Dense ])
    (groups : group list) : bytes * (string * float) list =
  let buf = Buffer.create 512 in
  put_varint buf (List.length groups);
  let per_array = Hashtbl.create 8 in
  List.iter
    (fun g ->
      let before = Buffer.length buf in
      put_string buf g.g_array;
      put_varint buf g.g_pass;
      put_varint buf g.g_block;
      put_varint buf (Array.length g.g_keys);
      put_keys buf ~mode:(mode_for g.g_array) g.g_keys;
      put_values buf g.g_values;
      let sz = float_of_int (Buffer.length buf - before) in
      Hashtbl.replace per_array g.g_array
        (sz +. Option.value (Hashtbl.find_opt per_array g.g_array) ~default:0.0))
    groups;
  ( Buffer.to_bytes buf,
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_array []) )

let decode_groups ~(delinearize : string -> int -> int array) (b : bytes) :
    Wire.block_writes list =
  let pos = ref 0 in
  let ngroups = get_varint b pos in
  let groups =
    List.init ngroups (fun _ ->
        let name = get_string b pos in
        let pass = get_varint b pos in
        let block = get_varint b pos in
        let n = get_varint b pos in
        let keys = if n = 0 then [||] else get_keys b pos ~n in
        let values = if n = 0 then [||] else get_values b pos ~n in
        let writes =
          Array.init n (fun i ->
              {
                Wire.w_array = name;
                w_key = delinearize name keys.(i);
                w_value = values.(i);
              })
        in
        (pass, block, writes))
  in
  (* merge adjacent groups of the same (pass, block) — the encoder
     emits one group per array, but the receiver must see one
     [block_writes] per block so relay (keyed by block) stays whole *)
  List.fold_left
    (fun acc (pass, block, writes) ->
      match acc with
      | { Wire.bw_pass; bw_block; bw_writes } :: tl
        when bw_pass = pass && bw_block = block ->
          { Wire.bw_pass; bw_block; bw_writes = Array.append bw_writes writes }
          :: tl
      | _ -> { Wire.bw_pass = pass; bw_block = block; bw_writes = writes } :: acc)
    [] groups
  |> List.rev

let decode_entries ~delinearize = function
  | Wire.Entries l -> l
  | Wire.Packed_entries b -> decode_groups ~delinearize b

(* ------------------------------------------------------------------ *)
(* The sender: dedup, ranking, residual carryover, budgets             *)
(* ------------------------------------------------------------------ *)

(* A deduplicated candidate write. *)
type cand = {
  c_array : string;
  c_lin : int;
  c_value : float;
  c_pass : int;
  c_block : int;
  c_vpos : int;  (** natural-order position of [c_block] *)
}

type sender = {
  s_spec : spec;
  s_linearize : string -> int array -> int;
  s_pos : int -> int;
  (* per-peer: last value shipped per (array, linearized key) — the
     baseline the top-k magnitude ranking measures change against *)
  s_shipped : (string * int, float) Hashtbl.t array;
  (* per-peer suppressed residuals, merged into the next send *)
  s_residuals : (string * int, cand) Hashtbl.t array;
  (* per-array key-encoding decision, refreshed once per pass *)
  s_modes : (string, [ `Sparse | `Dense ]) Hashtbl.t;
  mutable s_budget_left : float;  (** per-pass, [Budget] only *)
}

let sender spec ~peers ~linearize ~pos =
  {
    s_spec = spec;
    s_linearize = linearize;
    s_pos = pos;
    s_shipped = Array.init peers (fun _ -> Hashtbl.create 64);
    s_residuals = Array.init peers (fun _ -> Hashtbl.create 16);
    s_modes = Hashtbl.create 8;
    s_budget_left = (match spec with Budget b -> b | _ -> infinity);
  }

let mode_label = function `Sparse -> "sparse" | `Dense -> "dense"

let spec_label = function
  | Auto -> "delta"
  | Full -> "full"
  | Delta -> "delta"
  | Topk _ -> "topk"
  | Budget _ -> "budget"

let note_pass s stats =
  (match s.s_spec with
  | Budget b -> s.s_budget_left <- b
  | _ -> ());
  match s.s_spec with
  | Full ->
      (* nothing to decide, but remember the array names so the
         per-array policy report covers [full] runs too *)
      List.iter
        (fun (name, _) -> Hashtbl.replace s.s_modes name `Sparse)
        stats
  | Delta ->
      (* fixed sparse index/value encoding for every array *)
      List.iter
        (fun (name, _) -> Hashtbl.replace s.s_modes name `Sparse)
        stats
  | Auto | Topk _ | Budget _ ->
      (* density-driven: run-length keys pay off once most cells are
         populated; index/value wins below that *)
      List.iter
        (fun (name, (st : Dist_array.stats)) ->
          Hashtbl.replace s.s_modes name
            (if st.Dist_array.st_density >= 0.5 then `Dense else `Sparse))
        stats

let decisions s =
  let label mode =
    match s.s_spec with
    (* no encode decision under [full]; everything is Marshal *)
    | Full -> spec_label s.s_spec
    | _ -> spec_label s.s_spec ^ "+" ^ mode_label mode
  in
  Hashtbl.fold (fun name mode acc -> (name, label mode) :: acc) s.s_modes []
  |> List.sort compare

let mode_for s name =
  Option.value (Hashtbl.find_opt s.s_modes name) ~default:`Sparse

(* The [full] policy's cost of one write: the per-write Marshal size
   the v3 runtime charged (and still charges under [full]). *)
let full_write_bytes (w : Wire.write) =
  float_of_int (Bytes.length (Marshal.to_bytes (w.w_key, w.w_value) []))

let full_bytes_by_array (entries : Wire.block_writes list) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (bw : Wire.block_writes) ->
      Array.iter
        (fun (w : Wire.write) ->
          Hashtbl.replace tbl w.Wire.w_array
            (full_write_bytes w
            +. Option.value (Hashtbl.find_opt tbl w.Wire.w_array) ~default:0.0))
        bw.bw_writes)
    entries;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* Estimated packed cost of one candidate, used by the budget
   admission check (the exact size is only known after encoding). *)
let est_cand_bytes (c : cand) = float_of_int (varint_len c.c_lin + 9)

let prepare s ~peer ~sync (entries : Wire.block_writes list) :
    Wire.entries_payload * (string * float * float) list =
  let full = full_bytes_by_array entries in
  match s.s_spec with
  | Full ->
      (Wire.Entries entries, List.map (fun (n, b) -> (n, b, b)) full)
  | _ ->
      (* -- dedup to the newest write per (array, element) ----------- *)
      let cands : (string * int, cand) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (bw : Wire.block_writes) ->
          Array.iter
            (fun (w : Wire.write) ->
              let lin = s.s_linearize w.Wire.w_array w.Wire.w_key in
              let c =
                {
                  c_array = w.Wire.w_array;
                  c_lin = lin;
                  c_value = w.Wire.w_value;
                  c_pass = bw.bw_pass;
                  c_block = bw.bw_block;
                  c_vpos = s.s_pos bw.bw_block;
                }
              in
              match Hashtbl.find_opt cands (c.c_array, lin) with
              | Some prev
                when (prev.c_pass, prev.c_vpos) > (c.c_pass, c.c_vpos) ->
                  ()
              | _ -> Hashtbl.replace cands (c.c_array, lin) c)
            bw.bw_writes)
        entries;
      (* -- fold in this peer's residuals at the pass barrier -------- *)
      let residuals = s.s_residuals.(peer) in
      if sync then begin
        Hashtbl.iter
          (fun key (r : cand) ->
            match Hashtbl.find_opt cands key with
            | Some c when (c.c_pass, c.c_vpos) >= (r.c_pass, r.c_vpos) -> ()
            | _ -> Hashtbl.replace cands key r)
          residuals;
        Hashtbl.reset residuals
      end;
      let all = Hashtbl.fold (fun _ c acc -> c :: acc) cands [] in
      (* -- rank and select under the policy ------------------------- *)
      let shipped = s.s_shipped.(peer) in
      let kept, suppressed =
        let lossless l = (l, []) in
        if sync then lossless all
        else
          match s.s_spec with
          | Full | Auto | Delta -> lossless all
          | Topk k ->
              let ranked =
                List.sort
                  (fun a b ->
                    let mag c =
                      match Hashtbl.find_opt shipped (c.c_array, c.c_lin) with
                      | Some prev -> Float.abs (c.c_value -. prev)
                      | None -> Float.abs c.c_value
                    in
                    compare
                      (-.mag a, a.c_array, a.c_lin)
                      (-.mag b, b.c_array, b.c_lin))
                  all
              in
              let rec split i acc = function
                | [] -> (List.rev acc, [])
                | l when i >= k -> (List.rev acc, l)
                | c :: tl -> split (i + 1) (c :: acc) tl
              in
              split 0 [] ranked
          | Budget _ ->
              let ranked =
                List.sort
                  (fun a b ->
                    let mag c =
                      match Hashtbl.find_opt shipped (c.c_array, c.c_lin) with
                      | Some prev -> Float.abs (c.c_value -. prev)
                      | None -> Float.abs c.c_value
                    in
                    compare
                      (-.mag a, a.c_array, a.c_lin)
                      (-.mag b, b.c_array, b.c_lin))
                  all
              in
              let kept = ref [] and dropped = ref [] in
              List.iter
                (fun c ->
                  let cost = est_cand_bytes c in
                  if cost <= s.s_budget_left then begin
                    s.s_budget_left <- s.s_budget_left -. cost;
                    kept := c :: !kept
                  end
                  else dropped := c :: !dropped)
                ranked;
              (List.rev !kept, List.rev !dropped)
      in
      (* -- carry suppressed writes as residuals; note kept ones ----- *)
      List.iter
        (fun (c : cand) ->
          let key = (c.c_array, c.c_lin) in
          match Hashtbl.find_opt residuals key with
          | Some prev when (prev.c_pass, prev.c_vpos) > (c.c_pass, c.c_vpos) ->
              ()
          | _ -> Hashtbl.replace residuals key c)
        suppressed;
      List.iter
        (fun (c : cand) ->
          let key = (c.c_array, c.c_lin) in
          Hashtbl.replace shipped key c.c_value;
          (* a kept write supersedes any older residual for the cell *)
          match Hashtbl.find_opt residuals key with
          | Some prev when (c.c_pass, c.c_vpos) >= (prev.c_pass, prev.c_vpos)
            ->
              Hashtbl.remove residuals key
          | _ -> ())
        kept;
      (* -- group by (pass, block, array), ascending ----------------- *)
      let sorted =
        List.sort
          (fun a b ->
            compare
              (a.c_pass, a.c_vpos, a.c_array, a.c_lin)
              (b.c_pass, b.c_vpos, b.c_array, b.c_lin))
          kept
      in
      let groups =
        List.fold_left
          (fun acc c ->
            match acc with
            | (p, blk, name, cs) :: tl
              when p = c.c_pass && blk = c.c_block && name = c.c_array ->
                (p, blk, name, c :: cs) :: tl
            | _ -> (c.c_pass, c.c_block, c.c_array, [ c ]) :: acc)
          [] sorted
        |> List.rev_map (fun (p, blk, name, cs) ->
               let cs = Array.of_list (List.rev cs) in
               {
                 g_array = name;
                 g_pass = p;
                 g_block = blk;
                 g_keys = Array.map (fun c -> c.c_lin) cs;
                 g_values = Array.map (fun c -> c.c_value) cs;
               })
        |> List.rev
      in
      let bytes, per_array = encode_groups ~mode_for:(mode_for s) groups in
      let actual name =
        Option.value (List.assoc_opt name per_array) ~default:0.0
      in
      (* every array that had traffic (kept or not) appears in the
         accounting, so the full-policy baseline stays comparable *)
      let names =
        List.sort_uniq compare
          (List.map fst full @ List.map fst per_array)
      in
      let accounts =
        List.map
          (fun n ->
            (n, actual n, Option.value (List.assoc_opt n full) ~default:0.0))
          names
      in
      (Wire.Packed_entries bytes, accounts)
