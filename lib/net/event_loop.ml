(** A small poll-style readiness loop over framed connections, shared
    by the master (tags = worker ranks) and the workers (tags = peer
    ranks).  Each {!poll} waits for readability with [Unix.select],
    then reads at most one message per ready connection; a peer close
    surfaces as {!Closed} and drops the connection from the set. *)

type 'a t = { mutable items : ('a * Transport.conn) list }

type 'a event =
  | Message of 'a * Wire.msg
  | Closed of 'a  (** EOF or a read error; the conn has been removed *)

let create () = { items = [] }
let add t tag conn = t.items <- t.items @ [ (tag, conn) ]

let remove t conn =
  t.items <- List.filter (fun (_, c) -> c != conn) t.items

let conns t = t.items

(** Wait up to [timeout] seconds, then drain one message from every
    readable connection.  Returns [[]] on timeout or an empty set. *)
let poll (t : 'a t) ~(timeout : float) : 'a event list =
  match t.items with
  | [] ->
      if timeout > 0.0 then Unix.sleepf timeout;
      []
  | items ->
      let fds = List.map (fun (_, c) -> Transport.fd c) items in
      let readable =
        match Unix.select fds [] [] timeout with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      List.concat_map
        (fun (tag, c) ->
          if not (List.mem (Transport.fd c) readable) then []
          else
            (* recv_step, not a blocking recv: a large frame may span
               many polls, and blocking here mid-frame can deadlock
               against a peer that is itself draining mid-send *)
            match Transport.recv_step c with
            | `Msg m -> [ Message (tag, m) ]
            | `Pending -> []
            | `Eof | (exception _) ->
                remove t c;
                Transport.close_conn c;
                [ Closed tag ])
        items
