(** Length-prefixed binary framing over a file descriptor: every frame
    is a 4-byte big-endian payload length followed by the payload.
    Reads and writes handle partial I/O and [EINTR]; a clean EOF at a
    frame boundary is [None], an EOF mid-frame is an error (the peer
    died between the header and the payload). *)

exception Frame_error of string

(* generous ceiling so a corrupted header fails fast instead of
   attempting a multi-gigabyte allocation *)
let max_frame_bytes = 256 * 1024 * 1024

let rec really_write fd buf ofs len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf ofs len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    really_write fd buf (ofs + n) (len - n)
  end

(* [false] iff EOF arrived before the first byte; EOF after a partial
   read raises.  Waits out EWOULDBLOCK so reads keep frame-blocking
   semantics even while the fd is temporarily non-blocking (a peer
   mid-[Transport.send_draining] polls its event loop with writes in
   flight). *)
let really_read fd buf ofs len =
  let rec wait () =
    match Unix.select [ fd ] [] [] (-1.0) with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  let rec go ofs len =
    if len = 0 then true
    else
      match Unix.read fd buf ofs len with
      | 0 ->
          if ofs = 0 then false
          else raise (Frame_error "unexpected EOF inside a frame")
      | n -> go (ofs + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs len
      | exception
          Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
          wait ();
          go ofs len
  in
  go ofs len

let write_frame fd (payload : bytes) =
  let len = Bytes.length payload in
  if len > max_frame_bytes then
    raise (Frame_error (Printf.sprintf "frame too large: %d bytes" len));
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int len);
  really_write fd hdr 0 4;
  really_write fd payload 0 len

let read_frame fd : bytes option =
  let hdr = Bytes.create 4 in
  if not (really_read fd hdr 0 4) then None
  else begin
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > max_frame_bytes then
      raise (Frame_error (Printf.sprintf "bad frame length: %d" len));
    let payload = Bytes.create len in
    if len > 0 && not (really_read fd payload 0 len) then
      raise (Frame_error "unexpected EOF inside a frame");
    Some payload
  end
