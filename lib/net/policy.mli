(** Pluggable communication policies for the distributed runtime.

    How rotation tokens, pass syncs, partition ships and prefetch
    responses are encoded and filtered is a policy {e value}, selected
    at runtime ([--comms], [ORION_COMMS]) and carried to every worker
    in the {!Wire.plan} — not a format baked into the protocol:

    - [full] — ship every journaled write, [Marshal]-encoded: the
      v3-era behavior, and the byte-accounting baseline.
    - [delta] — deduplicate each payload to the newest write per
      (array, element) before encoding (receivers apply
      last-writer-wins, so intermediate values are dead weight), and
      use the packed codec below.  Bitwise-equal to [full]: the
      receiver's post-payload state is identical.
    - [topk:K] — [delta], then keep only the [K] writes with the
      largest change since this peer last saw the element; the rest
      become per-peer residuals merged into the next send (the
      Bösen-style managed-communication rule, promoted from the
      [lib/baselines] simulation to the real socket runtime).
    - [budget:BYTES] — [topk] under a per-worker per-pass byte budget
      instead of a fixed count.
    - [auto] (default) — [delta] semantics with the per-array key
      encoding chosen from observed {!Orion_dsm.Dist_array.stats}
      density (sparse index/value for low-density arrays, run-length
      keys for dense ones), refreshed once per pass.

    Every policy flushes {e all} residuals in the {!Wire.Pass_sync}
    barrier, so pass boundaries are globally consistent and lossy
    policies trade only mid-pass staleness for bandwidth.  Suppression
    never loses final state: the master assembles results from each
    worker's own-block journal, which is always exact.

    The packed codec is sparse index/value: per (array, pass, block)
    group, ascending linearized keys as varint deltas (or run-length
    ranges for dense arrays), IEEE float bits raw or run-length
    encoded, whichever is smaller.  Decoding is exact (float bits are
    preserved). *)

module Dist_array = Orion_dsm.Dist_array

(** A parsed [--comms] spec. *)
type spec = Auto | Full | Delta | Topk of int | Budget of float

val spec_to_string : spec -> string

(** Parse ["auto" | "full" | "delta" | "topk:K" | "budget:BYTES"].
    [Error] carries a usage message naming the bad input. *)
val spec_of_string : string -> (spec, string) result

(** [spec_of_string] or [invalid_arg]. *)
val spec_of_string_exn : string -> spec

(** {1 Worker side: filtering + encoding journal traffic} *)

(** Per-worker sender state: per-peer last-shipped element values (the
    ranking input), per-peer suppressed residuals, the per-pass byte
    budget, and the per-array encode decisions. *)
type sender

(** [linearize name key] maps a structured key of array [name] to its
    row-major index (both ends of the wire rebuild identical arrays,
    so indices agree); [pos blk] is the natural-order position of
    block [blk], the version component last-writer-wins ordering uses. *)
val sender :
  spec ->
  peers:int ->
  linearize:(string -> int array -> int) ->
  pos:(int -> int) ->
  sender

(** Refresh the per-array encode decisions from stats sampled at a
    pass boundary (once per pass, not per token) and reset the pass
    byte budget. *)
val note_pass : sender -> (string * Dist_array.stats) list -> unit

(** The per-array encode decision labels settled on so far (for
    reporting), sorted by array name. *)
val decisions : sender -> (string * string) list

(** Filter + encode one payload for [peer].  Returns the wire payload
    plus per-array (actual bytes as encoded, bytes the [full] policy
    would have spent).  [sync] marks the pass-barrier flush: ranking
    and budgets are bypassed and all residuals held for [peer] are
    folded in and cleared. *)
val prepare :
  sender ->
  peer:int ->
  sync:bool ->
  Wire.block_writes list ->
  Wire.entries_payload * (string * float * float) list

(** {1 Receiver side} *)

(** Decode a payload back to block write logs (groups in ascending
    (pass, natural-order) order; exact float bits).  [delinearize name
    lin] maps a row-major index of array [name] back to a structured
    key. *)
val decode_entries :
  delinearize:(string -> int -> int array) ->
  Wire.entries_payload ->
  Wire.block_writes list

(** {1 Partition ships and prefetches (master side)} *)

(** Encode partitions for the wire under [spec]: [full] ships raw
    [Marshal] partitions; every other policy uses the packed codec
    with the key mode chosen per partition from its observed density.
    Returns the payloads plus per-array (actual bytes, [full]-policy
    bytes). *)
val prepare_parts :
  spec ->
  Wire.part list ->
  Wire.part_payload list * (string * float * float) list

val decode_parts : Wire.part_payload list -> Wire.part list

(** Exact packed-partition round trip building blocks (exposed for the
    QCheck codec properties). *)
val encode_part : mode:[ `Sparse | `Dense ] -> Wire.part -> bytes

val decode_part : bytes -> Wire.part
