(** Length-prefixed binary framing: 4-byte big-endian payload length,
    then the payload.  Partial-I/O- and [EINTR]-safe. *)

exception Frame_error of string

val max_frame_bytes : int

(** Write one complete frame (header + payload). *)
val write_frame : Unix.file_descr -> bytes -> unit

(** Read one complete frame; [None] on a clean EOF at a frame boundary.
    @raise Frame_error on EOF mid-frame or a corrupt length. *)
val read_frame : Unix.file_descr -> bytes option
