(** Socket transport for the distributed runtime: Unix-domain or
    loopback TCP, framed {!Wire} messages, per-connection byte
    counters.  Addresses print as ["unix:/path"] / ["tcp:host:port"] so
    they can travel inside protocol messages and CLI flags. *)

type addr = [ `Unix of string | `Tcp of string * int ]

let addr_to_string = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let addr_of_string s : addr =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      `Unix (String.sub s (i + 1) (String.length s - i - 1))
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | Some j ->
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          `Tcp (host, int_of_string port)
      | None -> invalid_arg ("bad tcp address: " ^ s))
  | _ -> invalid_arg ("bad transport address: " ^ s)

type conn = {
  fd : Unix.file_descr;
  mutable bytes_out : float;
  mutable bytes_in : float;
  mutable closed : bool;
}

type listener = { lfd : Unix.file_descr; laddr : addr }

let fd c = c.fd

let sockaddr_of_addr = function
  | `Unix path -> Unix.ADDR_UNIX path
  | `Tcp (host, port) ->
      Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let wrap fd = { fd; bytes_out = 0.0; bytes_in = 0.0; closed = false }

let listen (addr : addr) : listener =
  let domain =
    match addr with `Unix _ -> Unix.PF_UNIX | `Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | `Unix _ -> ()
  | `Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  Unix.bind fd (sockaddr_of_addr addr);
  (* backlog ≥ any worker count we spawn: the full mesh parks pending
     connects here while peers finish their own handshakes *)
  Unix.listen fd 64;
  let laddr =
    match addr with
    | `Unix _ -> addr
    | `Tcp (host, _) -> (
        (* recover the kernel-chosen port when binding port 0 *)
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> `Tcp (host, port)
        | _ -> addr)
  in
  { lfd = fd; laddr }

let accept (l : listener) : conn =
  let rec go () =
    match Unix.accept l.lfd with
    | fd, _ -> wrap fd
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(** Connect, retrying while the listener is not up yet (the master
    spawns workers before they listen, and peers mesh-connect in
    arbitrary order). *)
let connect ?(retries = 200) ?(retry_delay = 0.025) (addr : addr) : conn =
  let domain =
    match addr with `Unix _ -> Unix.PF_UNIX | `Tcp _ -> Unix.PF_INET
  in
  let rec go attempt =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd (sockaddr_of_addr addr) with
    | () -> wrap fd
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EINTR), _, _)
      when attempt < retries ->
        Unix.close fd;
        Unix.sleepf retry_delay;
        go (attempt + 1)
    | exception e ->
        Unix.close fd;
        raise e
  in
  go 0

let send (c : conn) (m : Wire.msg) =
  let payload = Wire.to_bytes m in
  Frame.write_frame c.fd payload;
  c.bytes_out <- c.bytes_out +. float_of_int (Bytes.length payload + 4)

(** [None] on a clean EOF (peer closed the connection). *)
let recv (c : conn) : Wire.msg option =
  match Frame.read_frame c.fd with
  | None -> None
  | Some payload ->
      c.bytes_in <- c.bytes_in +. float_of_int (Bytes.length payload + 4);
      Some (Wire.of_bytes payload)

let close_conn (c : conn) =
  if not c.closed then begin
    c.closed <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let close_listener (l : listener) =
  (try Unix.close l.lfd with Unix.Unix_error _ -> ());
  match l.laddr with
  | `Unix path -> ( try Sys.remove path with Sys_error _ -> ())
  | `Tcp _ -> ()

(** A fresh address of the same kind as [like], for a new listener:
    a unique temp-dir socket path, or loopback TCP with a
    kernel-chosen port. *)
let fresh_addr ~(like : addr) : addr =
  match like with
  | `Tcp _ -> `Tcp ("127.0.0.1", 0)
  | `Unix _ ->
      let path =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "orion-%d-%x.sock" (Unix.getpid ())
             (Hashtbl.hash (Unix.gettimeofday ())))
      in
      (try Sys.remove path with Sys_error _ -> ());
      `Unix path
