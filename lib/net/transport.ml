(** Socket transport for the distributed runtime: Unix-domain or
    loopback TCP, framed {!Wire} messages, per-connection byte
    counters.  Addresses print as ["unix:/path"] / ["tcp:host:port"] so
    they can travel inside protocol messages and CLI flags. *)

type addr = [ `Unix of string | `Tcp of string * int ]

let addr_to_string = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let addr_of_string s : addr =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      `Unix (String.sub s (i + 1) (String.length s - i - 1))
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | Some j ->
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          `Tcp (host, int_of_string port)
      | None -> invalid_arg ("bad tcp address: " ^ s))
  | _ -> invalid_arg ("bad transport address: " ^ s)

type conn = {
  fd : Unix.file_descr;
  mutable bytes_out : float;
  mutable bytes_in : float;
  mutable closed : bool;
  (* incremental read state ({!recv_step}): the frame header or payload
     being filled, how much of it has arrived, and which of the two it
     is.  Lets the event loop make partial progress on a large frame
     without blocking — required to break symmetric send deadlocks. *)
  mutable rbuf : bytes;
  mutable rgot : int;
  mutable rhdr : bool;
  (* current O_NONBLOCK state, tracked here because Unix exposes no
     getter; {!send_draining} and {!recv_step} toggle it cooperatively *)
  mutable nb : bool;
}

type listener = { lfd : Unix.file_descr; laddr : addr }

let fd c = c.fd

let sockaddr_of_addr = function
  | `Unix path -> Unix.ADDR_UNIX path
  | `Tcp (host, port) ->
      Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let wrap fd =
  {
    fd;
    bytes_out = 0.0;
    bytes_in = 0.0;
    closed = false;
    rbuf = Bytes.create 4;
    rgot = 0;
    rhdr = true;
    nb = false;
  }

let set_nb c b =
  if c.nb <> b then begin
    (try (if b then Unix.set_nonblock else Unix.clear_nonblock) c.fd
     with Unix.Unix_error _ -> ());
    c.nb <- b
  end

let listen (addr : addr) : listener =
  let domain =
    match addr with `Unix _ -> Unix.PF_UNIX | `Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | `Unix _ -> ()
  | `Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  Unix.bind fd (sockaddr_of_addr addr);
  (* backlog ≥ any worker count we spawn: the full mesh parks pending
     connects here while peers finish their own handshakes *)
  Unix.listen fd 64;
  let laddr =
    match addr with
    | `Unix _ -> addr
    | `Tcp (host, _) -> (
        (* recover the kernel-chosen port when binding port 0 *)
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> `Tcp (host, port)
        | _ -> addr)
  in
  { lfd = fd; laddr }

let accept (l : listener) : conn =
  let rec go () =
    match Unix.accept l.lfd with
    | fd, _ -> wrap fd
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(** Connect, retrying while the listener is not up yet (the master
    spawns workers before they listen, and peers mesh-connect in
    arbitrary order). *)
let connect ?(retries = 200) ?(retry_delay = 0.025) (addr : addr) : conn =
  let domain =
    match addr with `Unix _ -> Unix.PF_UNIX | `Tcp _ -> Unix.PF_INET
  in
  let rec go attempt =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd (sockaddr_of_addr addr) with
    | () -> wrap fd
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EINTR), _, _)
      when attempt < retries ->
        Unix.close fd;
        Unix.sleepf retry_delay;
        go (attempt + 1)
    | exception e ->
        Unix.close fd;
        raise e
  in
  go 0

let send (c : conn) (m : Wire.msg) =
  let payload = Wire.to_bytes m in
  Frame.write_frame c.fd payload;
  c.bytes_out <- c.bytes_out +. float_of_int (Bytes.length payload + 4)

(** [send] for symmetric mesh traffic: write non-blocking and call
    [drain] whenever the kernel buffer is full.  Two peers blocking in
    plain [send] to each other with both socket buffers full deadlock —
    neither ever reads; [drain] (which should pump the caller's event
    loop) lets the opposite direction empty so both writes complete. *)
let send_draining (c : conn) (m : Wire.msg) ~(drain : unit -> unit) =
  let payload = Wire.to_bytes m in
  let len = Bytes.length payload in
  if len > Frame.max_frame_bytes then
    raise
      (Frame.Frame_error (Printf.sprintf "frame too large: %d bytes" len));
  let total = len + 4 in
  let buf = Bytes.create total in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit payload 0 buf 4 len;
  set_nb c true;
  Fun.protect
    ~finally:(fun () -> set_nb c false)
    (fun () ->
      let ofs = ref 0 in
      while !ofs < total do
        (* single_write, not write: Unix.write loops over internal
           chunks and on EAGAIN loses how many it already sent, which
           would desync the frame stream on retry *)
        match Unix.single_write c.fd buf !ofs (total - !ofs) with
        | n -> ofs := !ofs + n
        | exception
            Unix.Unix_error
              ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
            drain ()
      done);
  c.bytes_out <- c.bytes_out +. float_of_int total

(** One non-blocking receive step: consume whatever bytes the kernel
    has buffered, return [`Msg] once a whole frame has accumulated
    (across any number of calls), [`Pending] when more bytes are still
    in flight, [`Eof] on a clean close at a frame boundary.  An EOF
    mid-frame raises {!Frame.Frame_error}.  This is what lets an event
    loop stay responsive while a peer trickles a multi-megabyte frame —
    and, symmetrically, what lets {!send_draining}'s drain callback
    free the peer's send buffer without committing to a full blocking
    frame read. *)
let recv_step (c : conn) : [ `Msg of Wire.msg | `Pending | `Eof ] =
  let was = c.nb in
  set_nb c true;
  Fun.protect
    ~finally:(fun () -> set_nb c was)
    (fun () ->
      let rec fill () =
        let want = Bytes.length c.rbuf - c.rgot in
        if want = 0 then complete ()
        else
          match Unix.read c.fd c.rbuf c.rgot want with
          | 0 ->
              if c.rhdr && c.rgot = 0 then `Eof
              else raise (Frame.Frame_error "unexpected EOF inside a frame")
          | n ->
              c.rgot <- c.rgot + n;
              fill ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ()
          | exception
              Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
              `Pending
      and complete () =
        if c.rhdr then begin
          let len = Int32.to_int (Bytes.get_int32_be c.rbuf 0) in
          if len < 0 || len > Frame.max_frame_bytes then
            raise
              (Frame.Frame_error (Printf.sprintf "bad frame length: %d" len));
          c.rhdr <- false;
          c.rbuf <- Bytes.create len;
          c.rgot <- 0;
          complete_or_fill ()
        end
        else begin
          let payload = c.rbuf in
          c.rhdr <- true;
          c.rbuf <- Bytes.create 4;
          c.rgot <- 0;
          c.bytes_in <-
            c.bytes_in +. float_of_int (Bytes.length payload + 4);
          `Msg (Wire.of_bytes payload)
        end
      and complete_or_fill () =
        if Bytes.length c.rbuf = c.rgot then complete () else fill ()
      in
      fill ())

(** [None] on a clean EOF (peer closed the connection).  Blocking, but
    built on the same incremental state as {!recv_step} so the two can
    interleave on one connection. *)
let recv (c : conn) : Wire.msg option =
  let rec wait () =
    match Unix.select [ c.fd ] [] [] (-1.0) with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  let rec go () =
    match recv_step c with
    | `Msg m -> Some m
    | `Eof -> None
    | `Pending ->
        wait ();
        go ()
  in
  go ()

let close_conn (c : conn) =
  if not c.closed then begin
    c.closed <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let close_listener (l : listener) =
  (try Unix.close l.lfd with Unix.Unix_error _ -> ());
  match l.laddr with
  | `Unix path -> ( try Sys.remove path with Sys_error _ -> ())
  | `Tcp _ -> ()

(** A fresh address of the same kind as [like], for a new listener:
    a unique temp-dir socket path, or loopback TCP with a
    kernel-chosen port. *)
let fresh_addr ~(like : addr) : addr =
  match like with
  | `Tcp _ -> `Tcp ("127.0.0.1", 0)
  | `Unix _ ->
      let path =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "orion-%d-%x.sock" (Unix.getpid ())
             (Hashtbl.hash (Unix.gettimeofday ())))
      in
      (try Sys.remove path with Sys_error _ -> ());
      `Unix path
