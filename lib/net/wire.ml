(** The typed master ↔ worker / worker ↔ worker protocol.  Messages are
    plain (closure-free) OCaml values encoded with [Marshal] inside a
    {!Frame}; both ends are always the same binary built from the same
    sources, which is the one regime where [Marshal] is sound.  A
    [version] field in the handshake catches accidental mixes.

    Protocol outline (master-centric):

    {v
    worker → master   Hello
    master → worker   Plan                 (app name, shape, model, fp)
    worker → master   Listening            (the worker's own peer addr)
    worker → master   Prefetch_request     (Server-placed arrays)
    master → worker   Partition_ship       (local / rotated / replicated)
    master → worker   Prefetch_response
    master → worker   Peers                (addr per rank)
    worker ↔ worker   Peer_hello, Rotation_token, Pass_sync
    worker → master   Pass_telemetry       (per-pass spans + block costs)
    master → worker   Continue | Repartition   (adaptive runs, per pass)
    worker ↔ worker   Repart_ship          (migrating partitions)
    worker → master   Block_report, Buffer_flush, Acc_merge, Done
    master → worker   Shutdown
    any    → master   Fatal
    v} *)

(* v2: plan carries [p_telemetry]; workers ship [Pass_telemetry]
   v3: plan carries [p_report_passes]; workers ship [Pass_report] after
       each pass barrier so the master can checkpoint pass boundaries
   v4: communication policies ([Policy]) — plan carries [p_comms];
       rotation tokens, pass syncs, partition ships and prefetch
       responses carry policy-encoded payload variants; [Peer_hello]
       carries the protocol version so peers negotiate explicitly
   v5: profile-guided re-planning — plan carries [p_adapt]; adaptive
       workers gate each pass boundary on a master directive
       ([Continue] or [Repartition]); a [Repartition] re-balances the
       space cut from measured block costs, workers migrating
       locally-partitioned array regions peer-to-peer ([Repart_ship])
       and re-verifying the rebuilt schedule by fingerprint *)
let version = 5

(** One journaled DistArray element write, in execution order. *)
type write = { w_array : string; w_key : int array; w_value : float }

(** The write log of one executed schedule block.  [bw_block] is the
    block id [s * tp + t] — the same ids {!Orion_runtime.Domain_exec}
    uses for its happens-before edges. *)
type block_writes = {
  bw_pass : int;
  bw_block : int;
  bw_writes : write array;
}

(** Journal entries as a comms policy put them on the wire: either the
    raw block logs ([Marshal]; the [full] policy) or the [Policy] codec
    (deduplicated, sparse index/value, varint/RLE). *)
type entries_payload =
  | Entries of block_writes list
  | Packed_entries of bytes

type worker_stats = {
  ws_rank : int;
  ws_blocks : int;
  ws_entries : int;
  ws_wall_seconds : float;
  ws_bytes_sent : float;  (** wire bytes this worker sent to peers *)
  ws_bytes_by_array : (string * float) list;
      (** journal bytes shipped to peers, per DistArray, as encoded by
          the active comms policy *)
  ws_bytes_full_by_array : (string * float) list;
      (** what the same journal traffic would have cost under the
          [full] policy (per-write [Marshal]) — the before side of the
          bytes-saved accounting *)
  ws_policy_by_array : (string * string) list;
      (** the per-DistArray encode decision the policy settled on *)
}

type part = float Orion_dsm.Dist_array.partition

(** A shipped partition: raw ([Marshal]; the [full] policy) or the
    [Policy] sparse index/value codec. *)
type part_payload = Part of part | Packed_part of bytes

(** The full run description a worker needs to rebuild and verify its
    slice (a named record so workers can pass it around whole). *)
type plan = {
  p_app : string;
  p_scale : float;
  p_num_machines : int;
  p_workers_per_machine : int;
  p_rank : int;
  p_procs : int;  (** workers actually spawned (= space partitions) *)
  p_passes : int;
  p_pipeline_depth : int option;
  p_sp : int;
  p_tp : int;
  p_model : Orion_runtime.Domain_exec.model;
  p_fingerprint : int;
      (** {!Orion_runtime.Schedule.fingerprint} of the master's
          schedule; the worker must compile an identical one *)
  p_telemetry : bool;
      (** record wall-clock telemetry and ship {!Pass_telemetry}
          messages after each pass *)
  p_report_passes : bool;
      (** ship a {!Pass_report} after each pass barrier so the master
          can assemble pass-boundary checkpoints *)
  p_comms : string;
      (** the communication policy spec ([Policy.spec_of_string]) every
          worker must apply to its peer traffic *)
  p_adapt : bool;
      (** adaptive re-planning: after every pass but the last, wait at
          the barrier for the master's [Continue] / [Repartition]
          directive instead of free-running (implies [p_telemetry] —
          the re-planner feeds on shipped block costs) *)
}

type msg =
  | Hello of { h_rank : int; h_pid : int; h_version : int }
  | Plan of plan
  | Listening of { l_rank : int; l_addr : string }
  | Prefetch_request of { pr_rank : int; pr_arrays : string list }
  | Partition_ship of part_payload list
  | Prefetch_response of part_payload list
  | Peers of string array  (** peer address, indexed by rank *)
  | Peer_hello of { ph_rank : int; ph_version : int }
      (** the connecting worker's rank and protocol version; the
          accepting worker refuses a mismatched peer with a clear
          error instead of relying on implicit [Marshal]
          compatibility *)
  | Rotation_token of {
      rt_pass : int;
      rt_src : int;  (** source block id (just executed on the sender) *)
      rt_dst : int;  (** destination block id (waiting on the receiver) *)
      rt_entries : entries_payload;
          (** the sender's journal entries this receiver has not seen
              yet (per-peer cursor; FIFO channels make the receiver's
              knowledge happens-before-closed), encoded and possibly
              filtered by the active comms policy *)
    }
  | Pass_sync of {
      ps_pass : int;
      ps_rank : int;
      ps_entries : entries_payload;
    }
      (** all-to-all barrier at the end of each pass, flushing the
          remaining journal entries {e and} every residual the policy
          suppressed mid-pass (pass boundaries are globally
          consistent under every policy) *)
  | Pass_telemetry of {
      pt_rank : int;
      pt_pass : int;
      pt_epoch : float;
          (** the worker telemetry's absolute monotonic epoch; the
              master aligns shipped span timestamps onto its own clock
              with [offset = pt_epoch - master_epoch] (the monotonic
              origin is shared by all processes on one machine) *)
      pt_window : float * float;
          (** the pass's [(start, finish)] on the worker's clock *)
      pt_dropped : int;
      pt_spans : Orion_obs.Trace.span array;
      pt_costs : Orion_obs.Telemetry.block_cost list;
    }
      (** the worker's telemetry shard for one pass, drained and
          shipped to the master right after the pass barrier *)
  | Pass_report of {
      pp_rank : int;
      pp_pass : int;
      pp_entries : block_writes list;
          (** this worker's own-block write log for the pass just
              finished (the master applies them in natural block
              order, so checkpoints match an uninterrupted run) *)
      pp_buffered : part list;
          (** the {e cumulative} nonzero entries of each buffered
              array's local shadow at this boundary (shadows persist
              across passes, so later reports supersede earlier) *)
    }
  | Continue of { c_pass : int }
      (** adaptive runs: the master saw every rank's pass-[c_pass]
          telemetry and keeps the current schedule — proceed *)
  | Repartition of {
      rp_pass : int;  (** the pass just finished *)
      rp_boundaries : int array;
          (** the new space cut (same number of partitions; re-balanced
              from measured per-block seconds) *)
      rp_fingerprint : int;
          (** {!Orion_runtime.Schedule.fingerprint} of the master's
              rebuilt schedule; every worker must rebuild an identical
              one before executing another pass *)
    }
      (** adaptive runs: adopt a re-balanced space cut for the
          remaining passes.  Workers migrate the locally-partitioned
          array regions whose ownership moves ({!Repart_ship},
          all-to-all), rebuild their schedules under the new
          boundaries, and re-verify by fingerprint *)
  | Repart_ship of {
      rs_pass : int;
      rs_rank : int;  (** sending rank *)
      rs_parts : part list;
          (** entries of each locally-partitioned array moving from the
              sender's old region into the receiver's new region (may
              be empty — arrival itself is the synchronization) *)
    }
  | Block_report of { br_rank : int; br_entries : block_writes list }
      (** the worker's complete own-block write log, all passes *)
  | Buffer_flush of { bf_rank : int; bf_parts : part list }
      (** nonzero entries of each buffered array's local shadow *)
  | Acc_merge of { am_rank : int; am_totals : (string * float) list }
      (** per buffered array, the sum of the flushed shadow entries —
          the master cross-checks them against the received partitions *)
  | Done of worker_stats
  | Fatal of { f_rank : int; f_reason : string }
  | Shutdown

let tag = function
  | Hello _ -> "hello"
  | Plan _ -> "plan"
  | Listening _ -> "listening"
  | Prefetch_request _ -> "prefetch-request"
  | Partition_ship _ -> "partition-ship"
  | Prefetch_response _ -> "prefetch-response"
  | Peers _ -> "peers"
  | Peer_hello _ -> "peer-hello"
  | Rotation_token _ -> "rotation-token"
  | Pass_sync _ -> "pass-sync"
  | Pass_telemetry _ -> "pass-telemetry"
  | Pass_report _ -> "pass-report"
  | Continue _ -> "continue"
  | Repartition _ -> "repartition"
  | Repart_ship _ -> "repart-ship"
  | Block_report _ -> "block-report"
  | Buffer_flush _ -> "buffer-flush"
  | Acc_merge _ -> "acc-merge"
  | Done _ -> "done"
  | Fatal _ -> "fatal"
  | Shutdown -> "shutdown"

let to_bytes (m : msg) = Marshal.to_bytes m []
let of_bytes (b : bytes) : msg = Marshal.from_bytes b 0
