(** Feed shard directories into the in-memory dataset types that the
    apps train on, without ever materializing the record stream: each
    record goes from the shard reader straight into the target
    [Dist_array] (sparse inserts / sample slots), so peak memory is the
    final array, not array + records.

    Each loader checks the directory's schema ({!Gen.schema_of_spec})
    and reads the dataset dimensions from the shard metadata, so a
    directory is self-describing — callers pass only the path. *)

(** [ratings dir] loads a ["ratings-v1"] dataset into
    {!Orion_data.Ratings.t}.
    @raise Shard.Corrupt on schema mismatch or damaged shards *)
val ratings : string -> Orion_data.Ratings.t

(** [features dir] loads a ["features-v1"] dataset into
    {!Orion_data.Sparse_features.t}. *)
val features : string -> Orion_data.Sparse_features.t

(** [corpus dir] loads a ["corpus-v1"] dataset into
    {!Orion_data.Corpus.t}. *)
val corpus : string -> Orion_data.Corpus.t

(** Total record count across a dataset directory (headers only, O(1)
    per shard). *)
val dataset_count : string -> int

(** Metadata lookup across a dataset's shard-0 header. *)
val meta_int : string -> string -> int
