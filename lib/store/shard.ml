(* The versioned binary shard container; see shard.mli for the layout.
   Everything little-endian; the CRC covers every byte before the
   footer so header corruption is caught too. *)

let version = 1
let extension = ".orshard"
let magic = "ORSH"
let footer_magic = "OREN"
let footer_len = 4 + 8 + 4

(* a record length beyond this is framing garbage, not data *)
let max_record_len = 1 lsl 30

exception Corrupt of { path : string; offset : int; reason : string }

let corrupt path offset fmt =
  Printf.ksprintf (fun reason -> raise (Corrupt { path; offset; reason })) fmt

type header = {
  h_schema : string;
  h_shard : int;
  h_num_shards : int;
  h_seed : int;
  h_count : int;
  h_meta : (string * string) list;
}

let shard_path ~dir i = Filename.concat dir (Printf.sprintf "shard-%04d%s" i extension)

let list_shards dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f extension)
  |> List.sort compare
  |> List.map (Filename.concat dir)

(* ------------------------------------------------------------------ *)
(* Primitive encoders (into a Buffer)                                  *)
(* ------------------------------------------------------------------ *)

let buf_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Shard: u32 out of range";
  Buffer.add_int32_le b (Int32.of_int v)

let buf_i64 b v = Buffer.add_int64_le b (Int64.of_int v)

let buf_str b s =
  buf_u32 b (String.length s);
  Buffer.add_string b s

let encode_header ~schema ~shard ~num_shards ~seed ~meta =
  let b = Buffer.create 128 in
  buf_str b schema;
  buf_u32 b shard;
  buf_u32 b num_shards;
  buf_i64 b seed;
  buf_u32 b (List.length meta);
  List.iter
    (fun (k, v) ->
      buf_str b k;
      buf_str b v)
    meta;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = {
  w_path : string;
  w_tmp : string;
  w_oc : out_channel;
  w_crc : Crc32.t;
  mutable w_count : int;
  mutable w_open : bool;
  w_header : header;  (* h_count patched at close *)
}

let create_writer ~path ~schema ~shard ~num_shards ~seed ?(meta = []) () =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  let crc = Crc32.create () in
  let put s =
    output_string oc s;
    Crc32.update_string crc s
  in
  put magic;
  let b = Buffer.create 16 in
  buf_u32 b version;
  let hdr = encode_header ~schema ~shard ~num_shards ~seed ~meta in
  buf_u32 b (String.length hdr);
  put (Buffer.contents b);
  put hdr;
  {
    w_path = path;
    w_tmp = tmp;
    w_oc = oc;
    w_crc = crc;
    w_count = 0;
    w_open = true;
    w_header =
      {
        h_schema = schema;
        h_shard = shard;
        h_num_shards = num_shards;
        h_seed = seed;
        h_count = 0;
        h_meta = meta;
      };
  }

let write_record w (payload : bytes) =
  if not w.w_open then invalid_arg "Shard.write_record: writer is closed";
  if Bytes.length payload > max_record_len then
    invalid_arg "Shard.write_record: record too large";
  let b = Buffer.create 4 in
  buf_u32 b (Bytes.length payload);
  let len = Buffer.contents b in
  output_string w.w_oc len;
  Crc32.update_string w.w_crc len;
  output_bytes w.w_oc payload;
  Crc32.update w.w_crc payload ~pos:0 ~len:(Bytes.length payload);
  w.w_count <- w.w_count + 1

let close_writer w =
  if not w.w_open then invalid_arg "Shard.close_writer: writer is closed";
  w.w_open <- false;
  (* footer is outside the CRC (it contains the CRC) *)
  let b = Buffer.create footer_len in
  Buffer.add_string b footer_magic;
  buf_i64 b w.w_count;
  Buffer.add_int32_le b (Crc32.value w.w_crc);
  output_string w.w_oc (Buffer.contents b);
  close_out w.w_oc;
  Sys.rename w.w_tmp w.w_path;
  { w.w_header with h_count = w.w_count }

let discard_writer w =
  if w.w_open then begin
    w.w_open <- false;
    close_out_noerr w.w_oc;
    try Sys.remove w.w_tmp with Sys_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type cursor = { c_path : string; c_ic : in_channel; mutable c_off : int }

let read_exact c n what =
  let b = Bytes.create n in
  (try really_input c.c_ic b 0 n
   with End_of_file ->
     corrupt c.c_path c.c_off "truncated while reading %s (wanted %d bytes)"
       what n);
  c.c_off <- c.c_off + n;
  b

let get_i64 c what = Int64.to_int (Bytes.get_int64_le (read_exact c 8 what) 0)

(* parse magic + version + header; leaves the cursor at the first
   record.  [crc] (when given) accumulates the raw bytes read. *)
let parse_front ?crc c =
  let feed b =
    match crc with
    | Some t -> Crc32.update t b ~pos:0 ~len:(Bytes.length b)
    | None -> ()
  in
  let m = read_exact c 4 "magic" in
  feed m;
  if Bytes.to_string m <> magic then
    corrupt c.c_path 0 "bad magic %S (not a shard file)" (Bytes.to_string m);
  let vb = read_exact c 4 "version" in
  feed vb;
  let v = Int32.to_int (Bytes.get_int32_le vb 0) in
  if v <> version then
    corrupt c.c_path 4 "unsupported container version %d (expected %d)" v
      version;
  let lb = read_exact c 4 "header length" in
  feed lb;
  let hlen = Int32.to_int (Bytes.get_int32_le lb 0) in
  if hlen < 0 || hlen > max_record_len then
    corrupt c.c_path 8 "implausible header length %d" hlen;
  let hdr_bytes = read_exact c hlen "header" in
  feed hdr_bytes;
  (* decode the header payload from its own mini-cursor *)
  let off = ref 0 in
  let base = c.c_off - hlen in
  let take n what =
    if !off + n > hlen then
      corrupt c.c_path (base + !off) "truncated header while reading %s" what;
    let p = !off in
    off := !off + n;
    p
  in
  let u32 what =
    let p = take 4 what in
    Int32.to_int (Bytes.get_int32_le hdr_bytes p) land 0xFFFFFFFF
  in
  let i64 what =
    let p = take 8 what in
    Int64.to_int (Bytes.get_int64_le hdr_bytes p)
  in
  let str what =
    let n = u32 what in
    let p = take n what in
    Bytes.sub_string hdr_bytes p n
  in
  let schema = str "schema" in
  let shard = u32 "shard index" in
  let num_shards = u32 "shard count" in
  let seed = i64 "seed" in
  let nmeta = u32 "metadata count" in
  (* explicit lets: tuple components evaluate right-to-left, which
     would read the value bytes before the key bytes *)
  let meta =
    List.init nmeta (fun _ ->
        let k = str "metadata key" in
        let v = str "metadata value" in
        (k, v))
  in
  {
    h_schema = schema;
    h_shard = shard;
    h_num_shards = num_shards;
    h_seed = seed;
    h_count = 0;
    h_meta = meta;
  }

let with_file path f =
  let ic = try open_in_bin path with Sys_error e -> corrupt path 0 "%s" e in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

let parse_footer path ic =
  let len = in_channel_length ic in
  if len < footer_len then corrupt path len "file too short for a footer";
  seek_in ic (len - footer_len);
  let c = { c_path = path; c_ic = ic; c_off = len - footer_len } in
  let m = read_exact c 4 "footer magic" in
  if Bytes.to_string m <> footer_magic then
    corrupt path (len - footer_len)
      "bad footer magic %S (shard truncated or still being written)"
      (Bytes.to_string m);
  let count = get_i64 c "footer record count" in
  let crc = Bytes.get_int32_le (read_exact c 4 "footer CRC") 0 in
  (count, crc, len - footer_len)

let read_header path =
  with_file path (fun ic ->
      let c = { c_path = path; c_ic = ic; c_off = 0 } in
      let h = parse_front c in
      let count, _crc, _ = parse_footer path ic in
      { h with h_count = count })

let fold path ~init ~f =
  with_file path (fun ic ->
      let count, want_crc, body_end = parse_footer path ic in
      seek_in ic 0;
      let c = { c_path = path; c_ic = ic; c_off = 0 } in
      let crc = Crc32.create () in
      let _h = parse_front ~crc c in
      let acc = ref init in
      let seen = ref 0 in
      while c.c_off < body_end do
        let off0 = c.c_off in
        let lb = read_exact c 4 "record length" in
        Crc32.update crc lb ~pos:0 ~len:4;
        let n = Int32.to_int (Bytes.get_int32_le lb 0) land 0xFFFFFFFF in
        if n > max_record_len then
          corrupt path off0 "implausible record length %d" n;
        if c.c_off + n > body_end then
          corrupt path off0
            "record of %d bytes runs past the footer (truncated shard?)" n;
        let payload = read_exact c n "record payload" in
        Crc32.update crc payload ~pos:0 ~len:n;
        acc := f !acc payload;
        incr seen
      done;
      if !seen <> count then
        corrupt path body_end "footer promises %d records, found %d" count
          !seen;
      let got = Crc32.value crc in
      if got <> want_crc then
        corrupt path body_end "CRC mismatch (stored %08lx, computed %08lx)"
          want_crc got;
      !acc)

let iter path ~f = fold path ~init:() ~f:(fun () r -> f r)

let dataset_headers dir =
  let paths = list_shards dir in
  if paths = [] then corrupt dir 0 "no %s shards in directory" extension;
  let headers = List.map read_header paths in
  let h0 = List.hd headers in
  List.iteri
    (fun i h ->
      if h.h_shard <> i then
        corrupt dir 0 "expected shard index %d, found %d (missing shard?)" i
          h.h_shard;
      if h.h_num_shards <> List.length headers then
        corrupt dir 0 "shard %d expects %d shards, directory has %d" i
          h.h_num_shards (List.length headers);
      if h.h_schema <> h0.h_schema then
        corrupt dir 0 "shard %d schema %S disagrees with shard 0's %S" i
          h.h_schema h0.h_schema;
      if h.h_seed <> h0.h_seed then
        corrupt dir 0 "shard %d seed %d disagrees with shard 0's %d" i h.h_seed
          h0.h_seed)
    headers;
  headers

let fold_dir dir ~init ~f =
  let paths = list_shards dir in
  if paths = [] then corrupt dir 0 "no %s shards in directory" extension;
  List.fold_left (fun acc p -> fold p ~init:acc ~f) init paths
