(* Checkpoint files: a small CRC-framed Marshal payload.  The arrays
   inside are already bytes (partition codec), so Marshal here only
   frames strings/ints — float bits never pass through a decimal
   printer. *)

module Dist_array = Orion_dsm.Dist_array

let version = 1
let extension = ".orck"
let magic = "ORCK"

exception Corrupt of { path : string; reason : string }

let corrupt path fmt =
  Printf.ksprintf (fun reason -> raise (Corrupt { path; reason })) fmt

type snapshot = {
  ck_app : string;
  ck_scale : float;
  ck_pass : int;
  ck_total_passes : int;
  ck_rng : int64;
  ck_arrays : (string * bytes) list;
}

let snapshot ~app ~scale ~pass ~total_passes ~rng arrays =
  {
    ck_app = app;
    ck_scale = scale;
    ck_pass = pass;
    ck_total_passes = total_passes;
    ck_rng = rng;
    ck_arrays =
      List.map
        (fun (name, arr) ->
          (name, Dist_array.partition_to_bytes (Dist_array.to_partition arr)))
        arrays;
  }

let path_of_pass ~dir pass =
  Filename.concat dir (Printf.sprintf "pass-%04d%s" pass extension)

let save ~dir s =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = path_of_pass ~dir s.ck_pass in
  let payload = Marshal.to_bytes s [] in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      let b = Buffer.create 8 in
      Buffer.add_int32_le b (Int32.of_int version);
      Buffer.add_int32_le b (Crc32.digest payload);
      output_string oc (Buffer.contents b);
      output_bytes oc payload);
  Sys.rename tmp path;
  path

let load path =
  let ic = try open_in_bin path with Sys_error e -> corrupt path "%s" e in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      if len < 12 then corrupt path "too short to be a checkpoint";
      let head = Bytes.create 12 in
      (try really_input ic head 0 12
       with End_of_file -> corrupt path "truncated frame");
      if Bytes.sub_string head 0 4 <> magic then
        corrupt path "bad magic (not a checkpoint file)";
      let v = Int32.to_int (Bytes.get_int32_le head 4) in
      if v <> version then
        corrupt path "unsupported checkpoint version %d (expected %d)" v version;
      let want_crc = Bytes.get_int32_le head 8 in
      let payload = Bytes.create (len - 12) in
      (try really_input ic payload 0 (len - 12)
       with End_of_file -> corrupt path "truncated payload");
      if Crc32.digest payload <> want_crc then
        corrupt path "CRC mismatch (damaged checkpoint)";
      (Marshal.from_bytes payload 0 : snapshot))

let latest dir =
  if not (Sys.file_exists dir) then None
  else
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f extension)
      |> List.sort compare
    in
    match List.rev files with
    | [] -> None
    | f :: _ ->
        let path = Filename.concat dir f in
        Some (path, load path)

let restore s arrays =
  List.iter
    (fun (name, bytes) ->
      match List.assoc_opt name arrays with
      | Some arr ->
          Dist_array.apply_partition arr (Dist_array.partition_of_bytes bytes)
      | None ->
          corrupt ("checkpoint:" ^ s.ck_app)
            "snapshot array %S has no matching array in the instance" name)
    s.ck_arrays
