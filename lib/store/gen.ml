(* Streaming generators: records go straight from the per-shard RNG
   stream into the shard writer.  See gen.mli for the determinism
   contract. *)

module Rng = Orion_data.Rng

type spec =
  | Ratings of {
      num_users : int;
      num_items : int;
      num_ratings : int;
      skew : float;
      rank : int;
      noise : float;
    }
  | Features of {
      num_samples : int;
      num_features : int;
      nnz_per_sample : int;
      skew : float;
      noise : float;
    }
  | Corpus of {
      num_docs : int;
      vocab_size : int;
      avg_doc_len : int;
      num_topics : int;
      skew : float;
    }

let movielens_spec ?(scale = 1.0) () =
  let s n = max 4 (int_of_float (float_of_int n *. scale)) in
  Ratings
    {
      num_users = s 69_878;
      num_items = s 10_677;
      num_ratings = s 10_000_054;
      skew = 1.1;
      rank = 4;
      noise = 0.1;
    }

let kdd_spec ?(scale = 1.0) () =
  let s n = max 4 (int_of_float (float_of_int n *. scale)) in
  Features
    {
      num_samples = s 8_400_000;
      num_features = s 1_000_000;
      nnz_per_sample = 20;
      skew = 1.1;
      noise = 0.05;
    }

let nytimes_spec ?(scale = 1.0) () =
  let s n = max 4 (int_of_float (float_of_int n *. scale)) in
  Corpus
    {
      num_docs = s 299_752;
      vocab_size = s 101_636;
      avg_doc_len = 20;
      num_topics = 20;
      skew = 1.05;
    }

let schema_of_spec = function
  | Ratings _ -> "ratings-v1"
  | Features _ -> "features-v1"
  | Corpus _ -> "corpus-v1"

let spec_kind = function
  | Ratings _ -> "ratings"
  | Features _ -> "features"
  | Corpus _ -> "corpus"

(* ------------------------------------------------------------------ *)
(* Record codecs                                                       *)
(* ------------------------------------------------------------------ *)

let bad path what =
  raise (Shard.Corrupt { path; offset = 0; reason = "undecodable " ^ what ^ " record" })

type rating = { r_user : int; r_item : int; r_value : float }

let encode_rating r =
  let b = Bytes.create 16 in
  Bytes.set_int32_le b 0 (Int32.of_int r.r_user);
  Bytes.set_int32_le b 4 (Int32.of_int r.r_item);
  Bytes.set_int64_le b 8 (Int64.bits_of_float r.r_value);
  b

let decode_rating ~path b =
  if Bytes.length b <> 16 then bad path "rating";
  {
    r_user = Int32.to_int (Bytes.get_int32_le b 0);
    r_item = Int32.to_int (Bytes.get_int32_le b 4);
    r_value = Int64.float_of_bits (Bytes.get_int64_le b 8);
  }

type sample = {
  fs_index : int;
  fs_label : float;
  fs_features : int array;
  fs_values : float array;
}

let encode_sample s =
  let n = Array.length s.fs_features in
  if n <> Array.length s.fs_values then
    invalid_arg "encode_sample: features/values length mismatch";
  let b = Bytes.create (16 + (12 * n)) in
  Bytes.set_int32_le b 0 (Int32.of_int s.fs_index);
  Bytes.set_int64_le b 4 (Int64.bits_of_float s.fs_label);
  Bytes.set_int32_le b 12 (Int32.of_int n);
  Array.iteri
    (fun k f ->
      Bytes.set_int32_le b (16 + (12 * k)) (Int32.of_int f);
      Bytes.set_int64_le b (16 + (12 * k) + 4)
        (Int64.bits_of_float s.fs_values.(k)))
    s.fs_features;
  b

let decode_sample ~path b =
  if Bytes.length b < 16 then bad path "sample";
  let n = Int32.to_int (Bytes.get_int32_le b 12) in
  if n < 0 || Bytes.length b <> 16 + (12 * n) then bad path "sample";
  {
    fs_index = Int32.to_int (Bytes.get_int32_le b 0);
    fs_label = Int64.float_of_bits (Bytes.get_int64_le b 4);
    fs_features =
      Array.init n (fun k -> Int32.to_int (Bytes.get_int32_le b (16 + (12 * k))));
    fs_values =
      Array.init n (fun k ->
          Int64.float_of_bits (Bytes.get_int64_le b (16 + (12 * k) + 4)));
  }

type token = { tk_doc : int; tk_word : int; tk_count : float }

let encode_token t =
  let b = Bytes.create 16 in
  Bytes.set_int32_le b 0 (Int32.of_int t.tk_doc);
  Bytes.set_int32_le b 4 (Int32.of_int t.tk_word);
  Bytes.set_int64_le b 8 (Int64.bits_of_float t.tk_count);
  b

let decode_token ~path b =
  if Bytes.length b <> 16 then bad path "token";
  {
    tk_doc = Int32.to_int (Bytes.get_int32_le b 0);
    tk_word = Int32.to_int (Bytes.get_int32_le b 4);
    tk_count = Int64.float_of_bits (Bytes.get_int64_le b 8);
  }

(* ------------------------------------------------------------------ *)
(* Stateless planted structure                                         *)
(* ------------------------------------------------------------------ *)

(* A deterministic standard normal / uniform that is a pure function of
   (seed, index): the planted model (factor matrices, ground-truth
   weights) is never materialized, so generator memory stays bounded by
   the Zipf CDFs, not by users x rank tables. *)
let hash_gaussian ~seed ~index = Rng.gaussian (Rng.split ~seed ~index)
let hash_uniform ~seed ~index = Rng.float (Rng.split ~seed ~index)

(* ------------------------------------------------------------------ *)
(* Shard ranges                                                        *)
(* ------------------------------------------------------------------ *)

(* split [total] items over [shards] shards: shard k owns the
   contiguous range [base, base + size) *)
let shard_range ~total ~shards ~shard =
  let per = (total + shards - 1) / shards in
  let base = min total (shard * per) in
  let size = min per (total - base) in
  (base, size)

let meta_int k v = (k, string_of_int v)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let generate_shard ~dir ~seed ~shards ~shard:k spec =
  if k < 0 || k >= shards then invalid_arg "Gen.generate_shard: bad shard index";
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Shard.shard_path ~dir k in
  let schema = schema_of_spec spec in
  (* shard k's stream depends only on (seed, k) *)
  let rng = Rng.split ~seed ~index:k in
  match spec with
  | Ratings { num_users; num_items; num_ratings; skew; rank; noise } ->
      let base, size = shard_range ~total:num_ratings ~shards ~shard:k in
      let w =
        Shard.create_writer ~path ~schema ~shard:k ~num_shards:shards ~seed
          ~meta:
            [
              meta_int "num_users" num_users;
              meta_int "num_items" num_items;
              meta_int "num_ratings" num_ratings;
              meta_int "base" base;
            ]
          ()
      in
      Fun.protect
        ~finally:(fun () -> Shard.discard_writer w)
        (fun () ->
          let user_zipf = Rng.zipf_create ~n:num_users ~s:skew in
          let item_zipf = Rng.zipf_create ~n:num_items ~s:skew in
          let scale = 1.0 /. sqrt (float_of_int rank) in
          for _ = 1 to size do
            let u = Rng.zipf_draw rng user_zipf in
            let i = Rng.zipf_draw rng item_zipf in
            (* planted low-rank value: factors are pure hashes of
               (seed, row/column), never stored *)
            let v = ref 0.0 in
            for r = 0 to rank - 1 do
              v :=
                !v
                +. hash_gaussian ~seed:(seed lxor 0x5EED1) ~index:((r * num_users) + u)
                   *. hash_gaussian ~seed:(seed lxor 0x5EED2) ~index:((r * num_items) + i)
            done;
            let value = (scale *. !v) +. (noise *. Rng.gaussian rng) in
            Shard.write_record w
              (encode_rating { r_user = u; r_item = i; r_value = value })
          done;
          Shard.close_writer w)
  | Features { num_samples; num_features; nnz_per_sample; skew; noise } ->
      let base, size = shard_range ~total:num_samples ~shards ~shard:k in
      let w =
        Shard.create_writer ~path ~schema ~shard:k ~num_shards:shards ~seed
          ~meta:
            [
              meta_int "num_samples" num_samples;
              meta_int "num_features" num_features;
              meta_int "base" base;
            ]
          ()
      in
      Fun.protect
        ~finally:(fun () -> Shard.discard_writer w)
        (fun () ->
          let zipf = Rng.zipf_create ~n:num_features ~s:skew in
          (* sparse ground truth, stateless: ~20% of features carry a
             hashed gaussian weight *)
          let truth f =
            if hash_uniform ~seed:(seed lxor 0x7EE7) ~index:f < 0.2 then
              hash_gaussian ~seed:(seed lxor 0x7EE8) ~index:f
            else 0.0
          in
          for s = base to base + size - 1 do
            let n = max 2 (nnz_per_sample / 2) + Rng.int rng nnz_per_sample in
            let set = Hashtbl.create n in
            (* cap the dedup loop on tiny feature spaces *)
            let attempts = ref 0 in
            while Hashtbl.length set < n && !attempts < n * 20 do
              Hashtbl.replace set (Rng.zipf_draw rng zipf) ();
              incr attempts
            done;
            let features =
              Hashtbl.fold (fun f () acc -> f :: acc) set []
              |> List.sort compare |> Array.of_list
            in
            let values = Array.make (Array.length features) 1.0 in
            let margin =
              Array.fold_left (fun acc f -> acc +. truth f) 0.0 features
            in
            let label =
              if margin +. (noise *. Rng.gaussian rng) > 0.0 then 1.0 else 0.0
            in
            Shard.write_record w
              (encode_sample
                 {
                   fs_index = s;
                   fs_label = label;
                   fs_features = features;
                   fs_values = values;
                 })
          done;
          Shard.close_writer w)
  | Corpus { num_docs; vocab_size; avg_doc_len; num_topics; skew } ->
      let base, size = shard_range ~total:num_docs ~shards ~shard:k in
      let w =
        Shard.create_writer ~path ~schema ~shard:k ~num_shards:shards ~seed
          ~meta:
            [
              meta_int "num_docs" num_docs;
              meta_int "vocab_size" vocab_size;
              meta_int "num_topics" num_topics;
              meta_int "base" base;
            ]
          ()
      in
      Fun.protect
        ~finally:(fun () -> Shard.discard_writer w)
        (fun () ->
          let word_zipf = Rng.zipf_create ~n:vocab_size ~s:skew in
          let topic_offset t = t * vocab_size / num_topics in
          for d = base to base + size - 1 do
            (* one small per-document count table; emitted and dropped
               before the next document *)
            let counts = Hashtbl.create 32 in
            let ntopics = 1 + Rng.int rng 3 in
            let topics = Array.init ntopics (fun _ -> Rng.int rng num_topics) in
            let len = max 4 (avg_doc_len / 2) + Rng.int rng avg_doc_len in
            for _ = 1 to len do
              let topic = topics.(Rng.int rng ntopics) in
              let word =
                (Rng.zipf_draw rng word_zipf + topic_offset topic) mod vocab_size
              in
              Hashtbl.replace counts word
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts word))
            done;
            (* ascending word order: the record stream is deterministic *)
            Hashtbl.fold (fun wd c acc -> (wd, c) :: acc) counts []
            |> List.sort compare
            |> List.iter (fun (wd, c) ->
                   Shard.write_record w
                     (encode_token
                        { tk_doc = d; tk_word = wd; tk_count = float_of_int c }))
          done;
          Shard.close_writer w)

let generate ~dir ~seed ~shards spec =
  List.init shards (fun k -> generate_shard ~dir ~seed ~shards ~shard:k spec)
