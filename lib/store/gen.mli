(** Streaming synthetic dataset generators at MovieLens/Netflix scale.

    Each generator writes a dataset as binary shards ({!Shard}) in
    bounded memory: records stream straight from the RNG to the shard
    writer, and the only O(dataset) state is the Zipf CDF over
    users/items/features — never the records themselves, so a 10M+
    rating dataset generates in a few dozen MB of heap.

    Generation is deterministic per (seed, shard): shard [k]'s record
    stream is drawn from [Orion_data.Rng.split ~seed ~index:k], so
    generating shard [k] alone produces bit-identical records to
    generating the whole dataset — shards can be (re)built
    independently, in any order, on any machine. *)

(** What to generate.  Sizes are in records / samples / documents;
    [skew] is the Zipf exponent driving the popularity imbalance that
    stresses the histogram-balanced partitioner. *)
type spec =
  | Ratings of {
      num_users : int;
      num_items : int;
      num_ratings : int;
      skew : float;
      rank : int;  (** planted low-rank structure (stateless factors) *)
      noise : float;
    }
  | Features of {
      num_samples : int;
      num_features : int;
      nnz_per_sample : int;
      skew : float;
      noise : float;
    }
  | Corpus of {
      num_docs : int;
      vocab_size : int;
      avg_doc_len : int;
      num_topics : int;
      skew : float;
    }

(** MovieLens-10M-shaped default: ~10M Zipf-skewed ratings over ~70k
    users x ~10k items, scaled by [scale]. *)
val movielens_spec : ?scale:float -> unit -> spec

val kdd_spec : ?scale:float -> unit -> spec
val nytimes_spec : ?scale:float -> unit -> spec

(** The shard schema string a spec writes ("ratings-v1", "features-v1",
    "corpus-v1"). *)
val schema_of_spec : spec -> string

val spec_kind : spec -> string

(** {1 Record codecs} (fixed little-endian layouts, bitwise stable) *)

type rating = { r_user : int; r_item : int; r_value : float }

val encode_rating : rating -> bytes
val decode_rating : path:string -> bytes -> rating

type sample = {
  fs_index : int;  (** global sample index *)
  fs_label : float;
  fs_features : int array;  (** ascending *)
  fs_values : float array;
}

val encode_sample : sample -> bytes
val decode_sample : path:string -> bytes -> sample

type token = { tk_doc : int; tk_word : int; tk_count : float }

val encode_token : token -> bytes
val decode_token : path:string -> bytes -> token

(** {1 Generation} *)

(** Generate the [shard]-th of [shards] shards of [spec] into [dir]
    (created if missing), streaming; returns the sealed header. *)
val generate_shard :
  dir:string -> seed:int -> shards:int -> shard:int -> spec -> Shard.header

(** All shards, in order; returns the headers. *)
val generate : dir:string -> seed:int -> shards:int -> spec -> Shard.header list
