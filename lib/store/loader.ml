(* Shard directory -> in-memory dataset, streaming: records are
   inserted into the target Dist_array as they come off the reader. *)

open Orion_dsm

let check_schema dir want headers =
  match headers with
  | [] -> raise (Shard.Corrupt { path = dir; offset = 0; reason = "empty dataset" })
  | h :: _ ->
      if h.Shard.h_schema <> want then
        raise
          (Shard.Corrupt
             {
               path = dir;
               offset = 0;
               reason =
                 Printf.sprintf "schema %S where %S was expected" h.Shard.h_schema
                   want;
             });
      h

let meta_int dir key =
  let h = List.hd (Shard.dataset_headers dir) in
  match List.assoc_opt key h.Shard.h_meta with
  | Some v -> (
      match int_of_string_opt v with
      | Some n -> n
      | None ->
          raise
            (Shard.Corrupt
               {
                 path = dir;
                 offset = 0;
                 reason = Printf.sprintf "metadata %S is not an integer: %S" key v;
               }))
  | None ->
      raise
        (Shard.Corrupt
           {
             path = dir;
             offset = 0;
             reason = Printf.sprintf "missing metadata key %S" key;
           })

let dataset_count dir =
  Shard.dataset_headers dir
  |> List.fold_left (fun acc h -> acc + h.Shard.h_count) 0

let header_int h dir key =
  match List.assoc_opt key h.Shard.h_meta with
  | Some v -> int_of_string v
  | None ->
      raise
        (Shard.Corrupt
           {
             path = dir;
             offset = 0;
             reason = Printf.sprintf "missing metadata key %S" key;
           })

let ratings dir =
  let headers = Shard.dataset_headers dir in
  let h0 = check_schema dir "ratings-v1" headers in
  let num_users = header_int h0 dir "num_users" in
  let num_items = header_int h0 dir "num_items" in
  let arr =
    Dist_array.create_sparse ~name:"ratings" ~dims:[| num_users; num_items |]
      ~default:0.0
  in
  let count = ref 0 in
  List.iteri
    (fun i _ ->
      let path = Shard.shard_path ~dir i in
      Shard.iter path ~f:(fun b ->
          let r = Gen.decode_rating ~path b in
          Dist_array.set arr [| r.Gen.r_user; r.Gen.r_item |] r.Gen.r_value;
          incr count))
    headers;
  {
    Orion_data.Ratings.ratings = arr;
    num_users;
    num_items;
    (* duplicate (user, item) draws overwrite, so the live entry count
       can be below the record count *)
    num_ratings = Dist_array.count arr;
    rank_truth = 0;
  }

let features dir =
  let headers = Shard.dataset_headers dir in
  let h0 = check_schema dir "features-v1" headers in
  let num_samples = header_int h0 dir "num_samples" in
  let num_features = header_int h0 dir "num_features" in
  let empty =
    { Orion_data.Sparse_features.label = 0.0; features = [||]; values = [||] }
  in
  let arr =
    Dist_array.create_sparse ~name:"samples" ~dims:[| num_samples |]
      ~default:empty
  in
  let nnz = ref 0 in
  List.iteri
    (fun i _ ->
      let path = Shard.shard_path ~dir i in
      Shard.iter path ~f:(fun b ->
          let s = Gen.decode_sample ~path b in
          nnz := !nnz + Array.length s.Gen.fs_features;
          Dist_array.set arr [| s.Gen.fs_index |]
            {
              Orion_data.Sparse_features.label = s.Gen.fs_label;
              features = s.Gen.fs_features;
              values = s.Gen.fs_values;
            }))
    headers;
  let stored = max 1 (Dist_array.count arr) in
  {
    Orion_data.Sparse_features.samples = arr;
    num_samples;
    num_features;
    avg_nnz = float_of_int !nnz /. float_of_int stored;
  }

let corpus dir =
  let headers = Shard.dataset_headers dir in
  let h0 = check_schema dir "corpus-v1" headers in
  let num_docs = header_int h0 dir "num_docs" in
  let vocab_size = header_int h0 dir "vocab_size" in
  let num_topics = header_int h0 dir "num_topics" in
  let arr =
    Dist_array.create_sparse ~name:"tokens" ~dims:[| num_docs; vocab_size |]
      ~default:0.0
  in
  let tokens = ref 0 in
  List.iteri
    (fun i _ ->
      let path = Shard.shard_path ~dir i in
      Shard.iter path ~f:(fun b ->
          let t = Gen.decode_token ~path b in
          tokens := !tokens + int_of_float t.Gen.tk_count;
          Dist_array.set arr [| t.Gen.tk_doc; t.Gen.tk_word |] t.Gen.tk_count))
    headers;
  {
    Orion_data.Corpus.tokens = arr;
    num_docs;
    vocab_size;
    num_tokens = !tokens;
    num_topics_truth = num_topics;
  }
