(** Checkpoint / restore of training state at pass boundaries.

    A checkpoint captures everything needed to resume a run and reach a
    final state bitwise-identical to the uninterrupted one: the app name
    and scale (to rebuild the instance deterministically), how many
    passes were completed out of how many, the interpreter RNG state at
    the pass boundary, and every model [Dist_array] serialized through
    the same partition codec the distributed runtime ships — Marshal
    round-trips float bits exactly.

    On disk a checkpoint is ["ORCK" magic, u32 version, u32 CRC of the
    payload, payload], written to a temp file and renamed into place, so
    a crash mid-save never leaves a valid-looking checkpoint.  Files are
    named [pass-<n>.orck]; {!latest} picks the highest pass. *)

val version : int

val extension : string
(** [".orck"] *)

exception Corrupt of { path : string; reason : string }

type snapshot = {
  ck_app : string;  (** app name, for {!Orion_apps} materialization *)
  ck_scale : float;
  ck_pass : int;  (** passes completed when this snapshot was taken *)
  ck_total_passes : int;
  ck_rng : int64;  (** interpreter RNG state at the boundary *)
  ck_arrays : (string * bytes) list;
      (** array name -> serialized {!Orion_dsm.Dist_array.partition} *)
}

(** Serialize [arrays] (the instance's model arrays) into a snapshot. *)
val snapshot :
  app:string ->
  scale:float ->
  pass:int ->
  total_passes:int ->
  rng:int64 ->
  (string * float Orion_dsm.Dist_array.t) list ->
  snapshot

(** [save ~dir s] writes [dir/pass-<n>.orck] atomically (creating
    [dir] if missing) and returns the path. *)
val save : dir:string -> snapshot -> string

(** Load and verify one checkpoint file.
    @raise Corrupt on bad magic, version, or CRC *)
val load : string -> snapshot

(** The highest-pass checkpoint in [dir], if any. *)
val latest : string -> (string * snapshot) option

(** Write the snapshot's array contents back into a freshly built
    instance's arrays (matched by name; arrays absent from the snapshot
    are left untouched).
    @raise Corrupt when a snapshot array has no target *)
val restore :
  snapshot -> (string * float Orion_dsm.Dist_array.t) list -> unit
