(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), computed incrementally
    so shard writers and readers can checksum streams without buffering
    them.  Self-contained — no external compression library. *)

type t

(** A fresh accumulator (initial remainder [0xFFFFFFFF]). *)
val create : unit -> t

(** Fold [len] bytes of [b] starting at [pos] into the checksum. *)
val update : t -> bytes -> pos:int -> len:int -> unit

val update_string : t -> string -> unit

(** The finalized checksum of everything folded in so far (does not
    invalidate [t]; more updates may follow). *)
val value : t -> int32

(** One-shot checksum of a whole byte string. *)
val digest : bytes -> int32
