(** The versioned binary shard container — the unit of Orion's
    out-of-core data path.

    A dataset is a directory of shards ([shard-0000.orshard], ...).
    Each shard is self-describing:

    {v
    "ORSH"  magic                                   4 bytes
    u32     container version (= 1)
    u32     header length
            header: schema string, shard index, shard count, seed,
            (key, value) metadata pairs
    ...     records, each u32 length-prefixed
    "OREN"  footer magic                            4 bytes
    u64     record count
    u32     CRC-32 of every byte before the footer
    v}

    All integers are little-endian.  Writers stream records through a
    running CRC and only rename the file into place on [close_writer],
    so a crashed generation never leaves a valid-looking shard; readers
    stream records back without buffering the shard and verify count
    and CRC at the end.  Every decode failure raises {!Corrupt} with
    the byte offset where the file stopped making sense. *)

(** The container version this library writes and reads. *)
val version : int

val extension : string
(** [".orshard"] *)

(** A positioned corruption report: [path] stopped being a valid shard
    at byte [offset]. *)
exception Corrupt of { path : string; offset : int; reason : string }

type header = {
  h_schema : string;  (** record schema, e.g. ["ratings-v1"] *)
  h_shard : int;  (** this shard's index in the dataset *)
  h_num_shards : int;
  h_seed : int;  (** dataset seed (generation is per (seed, shard)) *)
  h_count : int;  (** records in this shard (from the footer) *)
  h_meta : (string * string) list;  (** schema-specific, e.g. dims *)
}

(** [shard-<index padded to 4>.orshard] under [dir]. *)
val shard_path : dir:string -> int -> string

(** The shard files of a dataset directory, in index order. *)
val list_shards : string -> string list

(** {1 Writing} *)

type writer

(** Open [path ^ ".tmp"] for streaming writes.  [close_writer] seals
    the footer and renames over [path]. *)
val create_writer :
  path:string ->
  schema:string ->
  shard:int ->
  num_shards:int ->
  seed:int ->
  ?meta:(string * string) list ->
  unit ->
  writer

val write_record : writer -> bytes -> unit

(** Seal and atomically publish the shard; returns its header
    (including the final record count). *)
val close_writer : writer -> header

(** Abandon the writer, deleting the temporary file. *)
val discard_writer : writer -> unit

(** {1 Reading} *)

(** Header and footer only (O(1) in the shard size); verifies magics
    and the footer's presence, not the CRC. *)
val read_header : string -> header

(** Stream every record through [f] in write order, then verify record
    count and CRC.
    @raise Corrupt on truncation, bad framing, count or CRC mismatch *)
val fold : string -> init:'a -> f:('a -> bytes -> 'a) -> 'a

val iter : string -> f:(bytes -> unit) -> unit

(** [fold] over every shard of a dataset directory, in shard order. *)
val fold_dir : string -> init:'a -> f:('a -> bytes -> 'a) -> 'a

(** Headers of every shard in a dataset directory, in shard order.
    @raise Corrupt when the directory holds no shards, an index is
    missing, or shards disagree on schema / seed / shard count *)
val dataset_headers : string -> header list
