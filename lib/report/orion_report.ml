(** One versioned JSON envelope for every machine-readable report Orion
    emits ([orion explain --json], [orion verify --json], executor
    metrics, [orion bench --mode speedup]).

    Downstream tooling parses a single shape:

    {v {"schema_version": 1, "kind": "<emitter>", "payload": {...}} v}

    and dispatches on [kind].  [schema_version] is bumped whenever any
    payload changes incompatibly, so consumers can fail fast instead of
    mis-parsing.  The [json] type here is the one JSON builder shared by
    all emitters (this library sits below every other Orion library). *)

let schema_version = 1

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let rec to_buf b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
      (* integer-valued floats keep a ".0" so they stay visibly floats;
         non-finite floats are not valid JSON numbers, so encode them as
         strings *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.1f" f)
      else if Float.is_finite f then
        Buffer.add_string b (Printf.sprintf "%.17g" f)
      else Buffer.add_string b (Printf.sprintf "\"%s\"" (Float.to_string f))
  | Str s ->
      Buffer.add_char b '"';
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string b "\\\""
          | '\\' -> Buffer.add_string b "\\\\"
          | '\n' -> Buffer.add_string b "\\n"
          | c when Char.code c < 0x20 ->
              Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char b c)
        s;
      Buffer.add_char b '"'
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          to_buf b v)
        l;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          to_buf b (Str k);
          Buffer.add_char b ':';
          to_buf b v)
        fields;
      Buffer.add_char b '}'

let json_to_string j =
  let b = Buffer.create 1024 in
  to_buf b j;
  Buffer.contents b

(* convenience constructors used by several emitters *)
let ints a = List (List.map (fun i -> Int i) (Array.to_list a))
let strs l = List (List.map (fun s -> Str s) l)

(** Wrap a payload in the versioned envelope. *)
let envelope ~kind payload =
  Obj
    [
      ("schema_version", Int schema_version);
      ("kind", Str kind);
      ("payload", payload);
    ]

(** [envelope] rendered to a string — what the [--json] flags print. *)
let emit ~kind payload = json_to_string (envelope ~kind payload)
