(** The versioned JSON envelope shared by every Orion report emitter
    (explain / verify / metrics / bench): one [json] builder, one
    [{"schema_version"; "kind"; "payload"}] shape. *)

(** Bumped on any incompatible payload change. *)
val schema_version : int

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

val json_to_string : json -> string

(** An int array as a JSON list. *)
val ints : int array -> json

(** A string list as a JSON list. *)
val strs : string list -> json

(** Wrap a payload: [{"schema_version": v, "kind": kind, "payload": p}]. *)
val envelope : kind:string -> json -> json

(** [envelope] rendered to a string — what the [--json] flags print. *)
val emit : kind:string -> json -> string
