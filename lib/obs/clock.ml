(** Monotonic wall clock (seconds since an arbitrary origin, usually
    boot).  All real-runtime telemetry spans and every [wall_seconds]
    measurement use this instead of [Unix.gettimeofday], which can step
    backwards under NTP adjustment and corrupt span durations and
    speedups.  On one machine the origin is shared by every process, so
    cross-process timestamps can be aligned by a plain offset. *)

external now : unit -> float = "orion_obs_monotonic_seconds"

(** Elapsed seconds since [t0] (a value previously returned by
    {!now}); never negative. *)
let elapsed t0 = Float.max 0.0 (now () -. t0)
