(** Per-pass aggregates over a {!Trace}: per-worker busy time,
    straggler ratio, barrier-wait fraction, communication/computation
    overlap, and bytes grouped by label (DistArray). *)

type t = {
  window_start : float;
  window_end : float;
  busy_per_worker : float array;  (** Compute + Marshal + Transfer *)
  compute_sec : float;
  marshal_sec : float;
  transfer_sec : float;
  barrier_wait_sec : float;
  idle_sec : float;
  straggler_ratio : float;
      (** max busy / mean busy over workers (1.0 when balanced or when
          nothing ran) *)
  barrier_wait_fraction : float;
      (** barrier-wait time / total span time (busy + waiting) *)
  comm_compute_overlap : float;
      (** fraction of transfer-interval time (union over workers)
          overlapped by some compute interval; 0 when no transfers *)
  bytes_by_label : (string * float) list;  (** largest first *)
  total_bytes : float;
}

(** Aggregate the spans starting inside [\[since, until)] — capture
    [Cluster.now] (sim) or the telemetry clock (real runs) at the pass
    boundaries to scope metrics to one pass. *)
val of_trace : ?since:float -> ?until:float -> num_workers:int -> Trace.t -> t

(** One-line human summary. *)
val summary : t -> string

val csv_header : string
val csv_row : t -> string

(** The metrics as an {!Orion_report} payload (no envelope). *)
val to_json_value : t -> Orion_report.json

(** The metrics in the versioned {!Orion_report} JSON envelope
    (kind ["metrics"]). *)
val to_json : t -> string
