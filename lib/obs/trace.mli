(** Span-based worker-timeline tracer: per-worker spans tagged with a
    category, emitted by the simulated cluster primitives (virtual
    time) and by the real runtimes (monotonic wall-clock time, see
    {!Telemetry}).  Export as Chrome [trace_event] JSON
    (chrome://tracing / Perfetto) or CSV; {!Metrics} derives per-pass
    aggregates. *)

type category = Compute | Marshal | Transfer | Barrier_wait | Idle

val category_to_string : category -> string

type span = {
  worker : int;
  category : category;
  label : string;  (** "" means "just the category" *)
  start_sec : float;
  duration_sec : float;
  bytes : float;  (** 0 for non-communication spans *)
}

type t

(** [max_spans] bounds memory on long runs (default 500k spans); spans
    beyond it are counted in {!dropped} but not stored. *)
val create : ?enabled:bool -> ?max_spans:int -> unit -> t

val set_enabled : t -> bool -> unit
val length : t -> int
val dropped : t -> int

(** Fold extra drops into the count (used when merging shard traces:
    the merged trace must not under-report what its shards dropped). *)
val add_dropped : t -> int -> unit

(** Record one span.  Zero-duration spans carrying no bytes are elided;
    so is everything while disabled. *)
val add :
  ?label:string ->
  ?bytes:float ->
  t ->
  worker:int ->
  category:category ->
  start_sec:float ->
  duration_sec:float ->
  unit

(** {!add}, from an existing span record (shard merging, wire import). *)
val add_span : t -> span -> unit

val iter : (span -> unit) -> t -> unit
val spans : t -> span array
val reset : t -> unit

(** Chrome trace-event JSON; [pid_of_worker] groups workers into
    process lanes (the cluster's machine mapping, or the distributed
    rank map).  The top level carries [schema_version] / [kind] /
    [dropped] plus any [extra] pairs alongside [traceEvents] — extra
    metadata keys that viewers ignore and tooling can key on. *)
val to_chrome_json :
  ?pid_of_worker:(int -> int) ->
  ?extra:(string * Orion_report.json) list ->
  t ->
  string

val csv_header : string

(** CSV with leading [# schema_version N] and [# dropped N] comment
    lines, then {!csv_header}, then one row per span. *)
val to_csv : t -> string
