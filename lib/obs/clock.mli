(** Monotonic wall clock for telemetry spans and [wall_seconds]
    measurements ([CLOCK_MONOTONIC]; never steps backwards, shared
    across processes on one machine). *)

val now : unit -> float
(** Seconds since an arbitrary fixed origin (usually boot). *)

val elapsed : float -> float
(** [elapsed t0] is seconds since [t0] (a prior {!now}); never
    negative. *)
