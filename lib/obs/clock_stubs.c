/* Monotonic clock for wall-clock telemetry spans.
 *
 * CLOCK_MONOTONIC never steps backwards (gettimeofday can, under NTP
 * adjustment), and on one machine it is shared by every process since
 * boot, which is what lets the distributed master align worker span
 * timestamps by a plain epoch offset. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value orion_obs_monotonic_seconds(value unit)
{
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
  /* no monotonic clock: degrade to wall time rather than fail */
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
  }
}
