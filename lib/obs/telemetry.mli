(** Wall-clock telemetry for the real runtimes: lock-free
    single-writer-per-shard span recording ({!Clock} monotonic seconds
    relative to a run [epoch]), a measured per-block cost table keyed
    [(pass, space, time)], deterministic shard merging, and per-pass
    {!Metrics} summaries.  The distributed master aligns spans shipped
    by worker processes using the absolute epochs (shared monotonic
    origin per machine). *)

type block_cost = {
  bc_pass : int;
  bc_space : int;  (** space-partition index sp *)
  bc_time : int;  (** time-partition index t *)
  bc_seconds : float;
  bc_entries : int;
}

type t

(** One shard per worker; when [enabled] is false every recording call
    is a no-op that never reads the clock. *)
val create : ?enabled:bool -> workers:int -> unit -> t

(** A shared always-off instance (for default arguments). *)
val disabled : t

val enabled : t -> bool

(** Absolute monotonic time at {!create} — ship this with spans so
    another process can align them (see {!import_spans}). *)
val epoch : t -> float

val workers : t -> int

(** Seconds since [epoch].  Guard calls with {!enabled}. *)
val now : t -> float

(** ["p<pass>/t<time>/sp<space>"] — the block span label. *)
val block_label : pass:int -> time:int -> space:int -> string

(** Record one span into the caller's own [shard]. *)
val span :
  ?label:string ->
  ?bytes:float ->
  t ->
  shard:int ->
  worker:int ->
  category:Trace.category ->
  start:float ->
  finish:float ->
  unit

(** Record a block execution: a Compute span labeled {!block_label}
    plus a measured-cost table entry. *)
val block :
  t ->
  shard:int ->
  worker:int ->
  pass:int ->
  space:int ->
  time:int ->
  start:float ->
  finish:float ->
  entries:int ->
  unit

(** Hand out everything [shard] recorded since the last [drain]
    (spans, costs, new drops) and clear it — the worker side of
    per-pass shipping.  Single-writer: only the owning worker may
    call it. *)
val drain : t -> shard:int -> Trace.span array * block_cost list * int

(** Splice spans recorded by another process into [shard], shifting
    each start by [offset = sender_epoch -. epoch t]. *)
val import_spans : t -> shard:int -> offset:float -> Trace.span array -> unit

val import_costs : t -> shard:int -> block_cost list -> unit
val note_dropped : t -> shard:int -> int -> unit

(** All shards merged into one fresh trace, in shard order (drop
    counts summed) — deterministic for a fixed set of spans. *)
val merged_trace : t -> Trace.t

val dropped : t -> int

(** Measured cost per block, summed across shards, sorted by
    [(pass, space, time)] — future input to measurement-driven
    re-planning. *)
val block_costs : t -> block_cost list

(** Only the entries measured during [pass] — what the adaptive
    re-planner consumes at the pass-N boundary (earlier passes may
    have run under different partitions). *)
val block_costs_for_pass : t -> pass:int -> block_cost list

(** What the run's communication policy did to the wire: the policy
    name, actual bytes shipped vs the [full]-policy equivalent of the
    same traffic, and the per-array encode decisions. *)
type comms_summary = {
  cs_policy : string;
  cs_bytes_shipped : float;
  cs_bytes_full : float;
  cs_by_array : (string * string) list;
}

type summary = {
  sm_mode : string;  (** "parallel" or "distributed" *)
  sm_workers : int;
  sm_trace : Trace.t;  (** merged timeline, shard order *)
  sm_dropped : int;
  sm_pass_metrics : (int * Metrics.t) list;  (** one per pass window *)
  sm_block_costs : block_cost list;
  sm_overall : Metrics.t;
  sm_comms : comms_summary option;  (** distributed runs only *)
}

(** Fold a finished run into a summary; [windows] lists each pass's
    [(pass, start, finish)] on the telemetry clock; [comms] attaches
    the communication-policy byte accounting (distributed runs). *)
val summarize :
  t ->
  mode:string ->
  ?comms:comms_summary ->
  windows:(int * float * float) list ->
  unit ->
  summary

val block_cost_json : block_cost -> Orion_report.json

(** The summary as an {!Orion_report} payload (kind ["telemetry"]
    when enveloped). *)
val summary_json : summary -> Orion_report.json

(** Chrome trace-event JSON for the merged timeline with metrics and
    block costs embedded as top-level metadata. *)
val to_chrome_json : ?pid_of_worker:(int -> int) -> summary -> string

(** [ORION_TELEMETRY] environment variable; off only when ["0"]. *)
val default_enabled : unit -> bool
