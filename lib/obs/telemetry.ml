(** Wall-clock telemetry for the real runtimes (domain pool and
    distributed workers).

    The recording side follows the same single-writer-shard discipline
    as the loop profiler: a telemetry value owns one {e shard} per
    worker (domain or distributed rank), and each worker appends spans
    and block costs only to its own shard — no locks, no contention on
    the hot path, and recording is a no-op (without even reading the
    clock) when telemetry is disabled.  After the run the shards are
    merged deterministically, in shard order, into one timeline.

    Timestamps are {!Clock} (monotonic) seconds relative to the
    telemetry [epoch], the absolute monotonic time at {!create}.
    Shipping the absolute epoch is what lets the distributed master
    align spans recorded by other processes: on one machine every
    process shares the monotonic origin, so a worker's span at relative
    time [x] lands on the master timeline at
    [x + (worker_epoch - master_epoch)] — see {!import_spans}.

    Besides raw spans, each shard accumulates a measured per-block cost
    table keyed [(pass, space, time)] — the empirical counterpart of
    the cost model behind [Plan.decide], and the intended input for
    future measurement-driven re-planning. *)

type block_cost = {
  bc_pass : int;
  bc_space : int;  (** space-partition index sp *)
  bc_time : int;  (** time-partition index t *)
  bc_seconds : float;
  bc_entries : int;
}

type shard = {
  sh_trace : Trace.t;
  sh_costs : (int * int * int, float ref * int ref) Hashtbl.t;
      (** (pass, space, time) -> (seconds, entries), owned by one worker *)
  mutable sh_cursor : int;  (** first span not yet drained *)
  mutable sh_dropped_drained : int;  (** drops already handed out by drain *)
}

type t = {
  enabled : bool;
  epoch : float;  (** absolute {!Clock.now} at creation *)
  shards : shard array;
}

let create ?(enabled = true) ~workers () =
  {
    enabled;
    epoch = (if enabled then Clock.now () else 0.0);
    shards =
      Array.init (max workers 1) (fun _ ->
          {
            sh_trace = Trace.create ~enabled ();
            sh_costs = Hashtbl.create 64;
            sh_cursor = 0;
            sh_dropped_drained = 0;
          });
  }

let disabled = create ~enabled:false ~workers:1 ()
let enabled t = t.enabled
let epoch t = t.epoch
let workers t = Array.length t.shards

(** Current time on the telemetry clock (seconds since [epoch]).  Only
    meaningful while enabled; callers must guard with {!enabled} so the
    disabled path never even reads the clock. *)
let now t = if t.enabled then Clock.now () -. t.epoch else 0.0

(** [pass]/[time]/[space] tag rendered as a span label ("p0/t3/sp2"). *)
let block_label ~pass ~time ~space = Printf.sprintf "p%d/t%d/sp%d" pass time space

(** Record one span into [shard] (must be the caller's own shard). *)
let span ?label ?bytes t ~shard ~worker ~category ~start ~finish =
  if t.enabled then
    Trace.add ?label ?bytes t.shards.(shard).sh_trace ~worker ~category
      ~start_sec:start ~duration_sec:(finish -. start)

(** Record a block execution: a Compute span labeled with the block's
    [(pass, t, sp)] tag plus an entry in the measured-cost table. *)
let block t ~shard ~worker ~pass ~space ~time ~start ~finish ~entries =
  if t.enabled then begin
    let sh = t.shards.(shard) in
    Trace.add ~label:(block_label ~pass ~time ~space) sh.sh_trace ~worker
      ~category:Trace.Compute ~start_sec:start ~duration_sec:(finish -. start);
    let key = (pass, space, time) in
    match Hashtbl.find_opt sh.sh_costs key with
    | Some (sec, n) ->
        sec := !sec +. (finish -. start);
        n := !n + entries
    | None -> Hashtbl.add sh.sh_costs key (ref (finish -. start), ref entries)
  end

(* ------------------------------------------------------------------ *)
(* Merging and importing                                               *)
(* ------------------------------------------------------------------ *)

let shard_costs sh =
  Hashtbl.fold
    (fun (bc_pass, bc_space, bc_time) (sec, n) acc ->
      { bc_pass; bc_space; bc_time; bc_seconds = !sec; bc_entries = !n } :: acc)
    sh.sh_costs []

(** Worker side of distributed shipping: hand out everything [shard]
    recorded since the previous [drain] — spans past the cursor, the
    whole cost table, and any new drop count — then advance the cursor
    and clear the costs.  Single-writer safe when the owning worker
    calls it between passes. *)
let drain t ~shard =
  let sh = t.shards.(shard) in
  let all = Trace.spans sh.sh_trace in
  let fresh = Array.sub all sh.sh_cursor (Array.length all - sh.sh_cursor) in
  sh.sh_cursor <- Array.length all;
  let costs = shard_costs sh in
  Hashtbl.reset sh.sh_costs;
  let dropped = Trace.dropped sh.sh_trace - sh.sh_dropped_drained in
  sh.sh_dropped_drained <- Trace.dropped sh.sh_trace;
  (fresh, costs, dropped)

(** Master side: splice spans another process recorded into [shard],
    shifting each onto this telemetry's clock.  [offset] is
    [sender_epoch -. epoch t] — valid because the monotonic origin is
    shared by all processes on one machine. *)
let import_spans t ~shard ~offset spans =
  if t.enabled then
    Array.iter
      (fun (s : Trace.span) ->
        Trace.add_span t.shards.(shard).sh_trace
          { s with Trace.start_sec = s.Trace.start_sec +. offset })
      spans

let import_costs t ~shard costs =
  if t.enabled then
    let sh = t.shards.(shard) in
    List.iter
      (fun c ->
        let key = (c.bc_pass, c.bc_space, c.bc_time) in
        match Hashtbl.find_opt sh.sh_costs key with
        | Some (sec, n) ->
            sec := !sec +. c.bc_seconds;
            n := !n + c.bc_entries
        | None ->
            Hashtbl.add sh.sh_costs key (ref c.bc_seconds, ref c.bc_entries))
      costs

let note_dropped t ~shard n =
  if n > 0 then Trace.add_dropped t.shards.(shard).sh_trace n

(** All shards merged, in shard order, into one fresh trace (with the
    shards' drop counts summed) — deterministic for a fixed set of
    recorded spans. *)
let merged_trace t =
  let total = Array.fold_left (fun a sh -> a + Trace.length sh.sh_trace) 0 t.shards in
  let merged = Trace.create ~max_spans:(max total 1) () in
  Array.iter
    (fun sh ->
      Trace.iter (Trace.add_span merged) sh.sh_trace;
      Trace.add_dropped merged (Trace.dropped sh.sh_trace))
    t.shards;
  merged

let dropped t =
  Array.fold_left (fun a sh -> a + Trace.dropped sh.sh_trace) 0 t.shards

(** Measured cost per block, summed across shards, sorted by
    [(pass, space, time)]. *)
let block_costs t =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun sh ->
      List.iter
        (fun c ->
          let key = (c.bc_pass, c.bc_space, c.bc_time) in
          match Hashtbl.find_opt tbl key with
          | Some (sec, n) ->
              sec := !sec +. c.bc_seconds;
              n := !n + c.bc_entries
          | None -> Hashtbl.add tbl key (ref c.bc_seconds, ref c.bc_entries))
        (shard_costs sh))
    t.shards;
  Hashtbl.fold
    (fun (bc_pass, bc_space, bc_time) (sec, n) acc ->
      { bc_pass; bc_space; bc_time; bc_seconds = !sec; bc_entries = !n } :: acc)
    tbl []
  |> List.sort (fun a b ->
         compare (a.bc_pass, a.bc_space, a.bc_time)
           (b.bc_pass, b.bc_space, b.bc_time))

(** The per-pass view of {!block_costs}: only entries measured during
    [pass], so re-planning after pass N consumes exactly pass-N
    measurements (earlier passes ran under possibly different
    partitions and would skew the calibration). *)
let block_costs_for_pass t ~pass =
  List.filter (fun c -> c.bc_pass = pass) (block_costs t)

(* ------------------------------------------------------------------ *)
(* Summaries                                                           *)
(* ------------------------------------------------------------------ *)

(** What the run's communication policy did to the wire: the policy
    name, actual bytes shipped vs the [full]-policy equivalent of the
    same traffic, and the per-array encode decisions. *)
type comms_summary = {
  cs_policy : string;
  cs_bytes_shipped : float;
  cs_bytes_full : float;
  cs_by_array : (string * string) list;
}

type summary = {
  sm_mode : string;  (** "parallel" or "distributed" *)
  sm_workers : int;
  sm_trace : Trace.t;  (** merged timeline, shard order *)
  sm_dropped : int;
  sm_pass_metrics : (int * Metrics.t) list;  (** one per pass window *)
  sm_block_costs : block_cost list;
  sm_overall : Metrics.t;
  sm_comms : comms_summary option;  (** distributed runs only *)
}

(** Fold a finished run into a summary.  [windows] gives each pass's
    [(pass, start, finish)] on the telemetry clock; pass metrics are
    scoped to those windows, [sm_overall] covers the whole trace. *)
let summarize t ~mode ?comms ~windows () =
  let trace = merged_trace t in
  let num_workers = workers t in
  {
    sm_mode = mode;
    sm_workers = num_workers;
    sm_trace = trace;
    sm_dropped = dropped t;
    sm_pass_metrics =
      List.map
        (fun (pass, start, finish) ->
          (pass, Metrics.of_trace ~since:start ~until:finish ~num_workers trace))
        windows;
    sm_block_costs = block_costs t;
    sm_overall = Metrics.of_trace ~num_workers trace;
    sm_comms = comms;
  }

let comms_summary_json cs : Orion_report.json =
  Orion_report.Obj
    [
      ("policy", Orion_report.Str cs.cs_policy);
      ("bytes_shipped", Orion_report.Float cs.cs_bytes_shipped);
      ("bytes_full", Orion_report.Float cs.cs_bytes_full);
      ( "savings_fraction",
        Orion_report.Float
          (if cs.cs_bytes_full > 0.0 then
             1.0 -. (cs.cs_bytes_shipped /. cs.cs_bytes_full)
           else 0.0) );
      ( "by_array",
        Orion_report.Obj
          (List.map
             (fun (name, label) -> (name, Orion_report.Str label))
             cs.cs_by_array) );
    ]

let block_cost_json c : Orion_report.json =
  Orion_report.Obj
    [
      ("pass", Orion_report.Int c.bc_pass);
      ("space", Orion_report.Int c.bc_space);
      ("time", Orion_report.Int c.bc_time);
      ("seconds", Orion_report.Float c.bc_seconds);
      ("entries", Orion_report.Int c.bc_entries);
    ]

(** The summary as an {!Orion_report} payload (kind ["telemetry"] when
    enveloped): mode, workers, drop count, overall and per-pass
    metrics, and the measured block-cost table. *)
let summary_json sm : Orion_report.json =
  Orion_report.Obj
    [
      ("mode", Orion_report.Str sm.sm_mode);
      ("workers", Orion_report.Int sm.sm_workers);
      ("spans", Orion_report.Int (Trace.length sm.sm_trace));
      ("dropped", Orion_report.Int sm.sm_dropped);
      ("overall", Metrics.to_json_value sm.sm_overall);
      ( "per_pass",
        Orion_report.List
          (List.map
             (fun (pass, m) ->
               Orion_report.Obj
                 [
                   ("pass", Orion_report.Int pass);
                   ("metrics", Metrics.to_json_value m);
                 ])
             sm.sm_pass_metrics) );
      ( "block_costs",
        Orion_report.List (List.map block_cost_json sm.sm_block_costs) );
      ( "comms",
        match sm.sm_comms with
        | Some cs -> comms_summary_json cs
        | None -> Orion_report.Null );
    ]

(** Chrome trace-event JSON for the merged timeline, with the metrics
    and block costs embedded as extra top-level metadata (so one file
    both loads in a viewer and carries the aggregates). *)
let to_chrome_json ?pid_of_worker sm =
  Trace.to_chrome_json ?pid_of_worker
    ~extra:
      [
        ("mode", Orion_report.Str sm.sm_mode);
        ("workers", Orion_report.Int sm.sm_workers);
        ("overall", Metrics.to_json_value sm.sm_overall);
        ( "per_pass",
          Orion_report.List
            (List.map
               (fun (pass, m) ->
                 Orion_report.Obj
                   [
                     ("pass", Orion_report.Int pass);
                     ("metrics", Metrics.to_json_value m);
                   ])
               sm.sm_pass_metrics) );
        ( "block_costs",
          Orion_report.List (List.map block_cost_json sm.sm_block_costs) );
      ]
    sm.sm_trace

(** Default on/off: the [ORION_TELEMETRY] environment variable, off
    only when set to ["0"] (recording is cheap; the span buffers are
    the only cost). *)
let default_enabled () =
  match Sys.getenv_opt "ORION_TELEMETRY" with Some "0" -> false | _ -> true
