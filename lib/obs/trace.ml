(** Span-based worker-timeline tracer — the backend-neutral span store
    shared by the simulated cluster and the real runtimes.

    Every charge to a worker's clock (and some things that do not
    occupy the clock, such as background transfers) can be recorded as
    a *span*: a worker, a category, a half-open time interval, an
    optional label (e.g. the block's space/time indices or the
    DistArray being shipped) and an optional byte count.  The time axis
    is whatever the producer charges: the simulated cluster records
    {e virtual} seconds, the domain pool and the distributed runtime
    record {e monotonic wall-clock} seconds ({!Clock}) relative to a
    run epoch.  {!Metrics} derives per-pass aggregates either way, and
    the exporters below produce Chrome [trace_event] JSON (loadable in
    chrome://tracing / Perfetto) and CSV.

    Spans are stored in a flat growable buffer capped at [max_spans]
    (default 500k) so that long benchmark runs cannot exhaust memory;
    once the cap is hit further spans are counted in [dropped] but not
    stored.  Every export carries the drop count (["dropped"] in the
    Chrome JSON, a [# dropped N] comment in the CSV) so a truncated
    trace is never silently read as complete. *)

type category = Compute | Marshal | Transfer | Barrier_wait | Idle

let category_to_string = function
  | Compute -> "compute"
  | Marshal -> "marshal"
  | Transfer -> "transfer"
  | Barrier_wait -> "barrier_wait"
  | Idle -> "idle"

type span = {
  worker : int;
  category : category;
  label : string;  (** "" means "just the category" *)
  start_sec : float;
  duration_sec : float;
  bytes : float;  (** 0 for non-communication spans *)
}

type t = {
  mutable spans : span array;
  mutable len : int;
  mutable dropped : int;
  mutable enabled : bool;
  max_spans : int;
}

let dummy =
  {
    worker = 0;
    category = Idle;
    label = "";
    start_sec = 0.0;
    duration_sec = 0.0;
    bytes = 0.0;
  }

let create ?(enabled = true) ?(max_spans = 500_000) () =
  { spans = Array.make 256 dummy; len = 0; dropped = 0; enabled; max_spans }

let set_enabled t enabled = t.enabled <- enabled
let length t = t.len
let dropped t = t.dropped
let add_dropped t n = t.dropped <- t.dropped + n

let add_span t (s : span) =
  if t.enabled && (s.duration_sec > 0.0 || s.bytes > 0.0) then
    if t.len >= t.max_spans then t.dropped <- t.dropped + 1
    else begin
      if t.len >= Array.length t.spans then begin
        let spans =
          Array.make (min t.max_spans (2 * Array.length t.spans)) dummy
        in
        Array.blit t.spans 0 spans 0 t.len;
        t.spans <- spans
      end;
      t.spans.(t.len) <- s;
      t.len <- t.len + 1
    end

(** Record one span.  Zero-length spans carrying no bytes are elided;
    so is everything while the tracer is disabled. *)
let add ?(label = "") ?(bytes = 0.0) t ~worker ~category ~start_sec
    ~duration_sec =
  add_span t { worker; category; label; start_sec; duration_sec; bytes }

let iter f t =
  for i = 0 to t.len - 1 do
    f t.spans.(i)
  done

let spans t = Array.sub t.spans 0 t.len

let reset t =
  t.len <- 0;
  t.dropped <- 0

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let span_name s =
  if s.label = "" then category_to_string s.category else s.label

(* minimal JSON string escaping: labels are program-generated but may
   contain user-chosen DistArray names *)
let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** Chrome [trace_event] JSON ("X" complete events; seconds become
    microseconds).  [pid_of_worker] groups workers into processes —
    pass the cluster's machine mapping (or the distributed rank map) to
    get one process lane per machine.  [extra] key/value pairs join
    [schema_version] / [kind] / [dropped] as top-level metadata —
    legal trace_event keys that viewers ignore and tooling can key
    on. *)
let to_chrome_json ?(pid_of_worker = fun _ -> 0) ?(extra = []) t =
  let b = Buffer.create (64 * t.len) in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema_version\":%d,\"kind\":\"trace\",\"dropped\":%d,\
        \"displayTimeUnit\":\"ms\""
       Orion_report.schema_version t.dropped);
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (Printf.sprintf ",\"%s\":%s" (escape k) (Orion_report.json_to_string v)))
    extra;
  Buffer.add_string b ",\"traceEvents\":[";
  let first = ref true in
  iter
    (fun s ->
      if not !first then Buffer.add_char b ',';
      first := false;
      Buffer.add_string b
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\
            \"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"bytes\":%.0f}}"
           (escape (span_name s))
           (category_to_string s.category)
           (s.start_sec *. 1e6) (s.duration_sec *. 1e6)
           (pid_of_worker s.worker) s.worker s.bytes))
    t;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let csv_header = "worker,category,label,start_sec,duration_sec,bytes"

let to_csv t =
  let b = Buffer.create (48 * t.len) in
  Buffer.add_string b
    (Printf.sprintf "# schema_version %d\n" Orion_report.schema_version);
  Buffer.add_string b (Printf.sprintf "# dropped %d\n" t.dropped);
  Buffer.add_string b csv_header;
  Buffer.add_char b '\n';
  iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "%d,%s,%s,%.9f,%.9f,%.0f\n" s.worker
           (category_to_string s.category)
           (String.map (fun c -> if c = ',' then ';' else c) s.label)
           s.start_sec s.duration_sec s.bytes))
    t;
  Buffer.contents b
