(** Per-pass aggregates derived from a {!Trace} (the Fig. 7/8/11/12
    style breakdowns: where does each worker's time go, who straggles,
    how much communication hides behind computation, and which
    DistArray the bytes belong to).

    "Busy" time is Compute + Marshal + Transfer; Barrier_wait and Idle
    are waiting.  All aggregates are computed over the spans that start
    inside [\[since, until)], so callers can scope them to one data
    pass — capture [Cluster.now] (sim) or the telemetry clock (real
    runs) at the pass boundaries. *)

type t = {
  window_start : float;
  window_end : float;
  busy_per_worker : float array;
  compute_sec : float;
  marshal_sec : float;
  transfer_sec : float;
  barrier_wait_sec : float;
  idle_sec : float;
  straggler_ratio : float;
      (** max over workers of busy time / mean busy time (1.0 when
          perfectly balanced or when nothing ran) *)
  barrier_wait_fraction : float;
      (** barrier-wait time / total span time (busy + waiting) *)
  comm_compute_overlap : float;
      (** fraction of transfer-interval time (union over workers)
          overlapped by some compute interval; 0 when no transfers *)
  bytes_by_label : (string * float) list;
      (** communication bytes grouped by span label (e.g. per rotated
          DistArray or parameter server), largest first *)
  total_bytes : float;
}

(* interval-union length plus two-list intersection, both on merged
   (sorted, disjoint) interval lists *)
let merge_intervals l =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) l in
  let rec go acc = function
    | [] -> List.rev acc
    | (s, e) :: rest -> (
        match acc with
        | (ps, pe) :: tail when s <= pe -> go ((ps, max pe e) :: tail) rest
        | _ -> go ((s, e) :: acc) rest)
  in
  go [] sorted

let union_length l =
  List.fold_left (fun acc (s, e) -> acc +. (e -. s)) 0.0 (merge_intervals l)

let intersection_length a b =
  let a = merge_intervals a and b = merge_intervals b in
  let rec go acc a b =
    match (a, b) with
    | [], _ | _, [] -> acc
    | (sa, ea) :: ra, (sb, eb) :: rb ->
        let lo = max sa sb and hi = min ea eb in
        let acc = if hi > lo then acc +. (hi -. lo) else acc in
        if ea < eb then go acc ra b else go acc a rb
  in
  go 0.0 a b

let of_trace ?(since = 0.0) ?(until = infinity) ~num_workers trace =
  let busy = Array.make (max num_workers 1) 0.0 in
  let compute_sec = ref 0.0
  and marshal_sec = ref 0.0
  and transfer_sec = ref 0.0
  and barrier_wait_sec = ref 0.0
  and idle_sec = ref 0.0 in
  let window_start = ref infinity and window_end = ref since in
  let compute_ivals = ref [] and transfer_ivals = ref [] in
  let bytes_tbl : (string, float ref) Hashtbl.t = Hashtbl.create 16 in
  let total_bytes = ref 0.0 in
  Trace.iter
    (fun s ->
      if s.Trace.start_sec >= since && s.Trace.start_sec < until then begin
        let finish = s.Trace.start_sec +. s.Trace.duration_sec in
        window_start := min !window_start s.Trace.start_sec;
        window_end := max !window_end finish;
        let d = s.Trace.duration_sec in
        (match s.Trace.category with
        | Trace.Compute ->
            compute_sec := !compute_sec +. d;
            compute_ivals := (s.Trace.start_sec, finish) :: !compute_ivals
        | Trace.Marshal -> marshal_sec := !marshal_sec +. d
        | Trace.Transfer ->
            transfer_sec := !transfer_sec +. d;
            transfer_ivals := (s.Trace.start_sec, finish) :: !transfer_ivals
        | Trace.Barrier_wait -> barrier_wait_sec := !barrier_wait_sec +. d
        | Trace.Idle -> idle_sec := !idle_sec +. d);
        (match s.Trace.category with
        | Trace.Compute | Trace.Marshal | Trace.Transfer ->
            if s.Trace.worker < Array.length busy then
              busy.(s.Trace.worker) <- busy.(s.Trace.worker) +. d
        | Trace.Barrier_wait | Trace.Idle -> ());
        if s.Trace.bytes > 0.0 then begin
          total_bytes := !total_bytes +. s.Trace.bytes;
          let key = if s.Trace.label = "" then "(unlabeled)" else s.Trace.label in
          match Hashtbl.find_opt bytes_tbl key with
          | Some r -> r := !r +. s.Trace.bytes
          | None -> Hashtbl.add bytes_tbl key (ref s.Trace.bytes)
        end
      end)
    trace;
  let total_busy = Array.fold_left ( +. ) 0.0 busy in
  let mean_busy = total_busy /. float_of_int (Array.length busy) in
  let max_busy = Array.fold_left max 0.0 busy in
  let straggler_ratio = if mean_busy > 0.0 then max_busy /. mean_busy else 1.0 in
  let span_total =
    total_busy +. !barrier_wait_sec +. !idle_sec
  in
  let barrier_wait_fraction =
    if span_total > 0.0 then !barrier_wait_sec /. span_total else 0.0
  in
  let comm_compute_overlap =
    let tr = union_length !transfer_ivals in
    if tr > 0.0 then intersection_length !transfer_ivals !compute_ivals /. tr
    else 0.0
  in
  let bytes_by_label =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) bytes_tbl []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  {
    window_start = (if !window_start = infinity then since else !window_start);
    window_end = !window_end;
    busy_per_worker = busy;
    compute_sec = !compute_sec;
    marshal_sec = !marshal_sec;
    transfer_sec = !transfer_sec;
    barrier_wait_sec = !barrier_wait_sec;
    idle_sec = !idle_sec;
    straggler_ratio;
    barrier_wait_fraction;
    comm_compute_overlap;
    bytes_by_label;
    total_bytes = !total_bytes;
  }

let bytes_pretty b =
  if b >= 1e9 then Printf.sprintf "%.2fGB" (b /. 1e9)
  else if b >= 1e6 then Printf.sprintf "%.2fMB" (b /. 1e6)
  else if b >= 1e3 then Printf.sprintf "%.1fkB" (b /. 1e3)
  else Printf.sprintf "%.0fB" b

(** One-line human summary (what the bench harness prints per pass). *)
let summary t =
  let arrays =
    match t.bytes_by_label with
    | [] -> "none"
    | l ->
        String.concat ", "
          (List.map (fun (name, b) -> name ^ " " ^ bytes_pretty b) l)
  in
  Printf.sprintf
    "straggler %.3f | barrier-wait %4.1f%% | comm/compute overlap %4.1f%% | \
     bytes: %s"
    t.straggler_ratio
    (100.0 *. t.barrier_wait_fraction)
    (100.0 *. t.comm_compute_overlap)
    arrays

let csv_header =
  "window_start,window_end,compute_sec,marshal_sec,transfer_sec,\
   barrier_wait_sec,idle_sec,straggler_ratio,barrier_wait_fraction,\
   comm_compute_overlap,total_bytes"

let csv_row t =
  Printf.sprintf "%.9f,%.9f,%.9f,%.9f,%.9f,%.9f,%.9f,%.6f,%.6f,%.6f,%.0f"
    t.window_start t.window_end t.compute_sec t.marshal_sec t.transfer_sec
    t.barrier_wait_sec t.idle_sec t.straggler_ratio t.barrier_wait_fraction
    t.comm_compute_overlap t.total_bytes

(* the metrics as an Orion_report payload (kind "metrics" when enveloped) *)
let to_json_value t : Orion_report.json =
  Orion_report.Obj
    [
      ("window_start", Orion_report.Float t.window_start);
      ("window_end", Orion_report.Float t.window_end);
      ( "busy_per_worker",
        Orion_report.List
          (Array.to_list
             (Array.map (fun s -> Orion_report.Float s) t.busy_per_worker)) );
      ("compute_sec", Orion_report.Float t.compute_sec);
      ("marshal_sec", Orion_report.Float t.marshal_sec);
      ("transfer_sec", Orion_report.Float t.transfer_sec);
      ("barrier_wait_sec", Orion_report.Float t.barrier_wait_sec);
      ("idle_sec", Orion_report.Float t.idle_sec);
      ("straggler_ratio", Orion_report.Float t.straggler_ratio);
      ("barrier_wait_fraction", Orion_report.Float t.barrier_wait_fraction);
      ("comm_compute_overlap", Orion_report.Float t.comm_compute_overlap);
      ( "bytes_by_label",
        Orion_report.Obj
          (List.map
             (fun (name, b) -> (name, Orion_report.Float b))
             t.bytes_by_label) );
      ("total_bytes", Orion_report.Float t.total_bytes);
    ]

(** The metrics in the versioned JSON envelope (kind ["metrics"]). *)
let to_json t = Orion_report.emit ~kind:"metrics" (to_json_value t)
