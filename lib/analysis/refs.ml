(** DistArray reference extraction from a parallel for-loop body
    (the "Statically analyze the loop code" step of paper Fig. 6).

    Produces, for a loop [for (key, value) in iter_space], the list of
    static DistArray references with abstract subscripts, the inherited
    driver variables, and the set of runtime-tainted variables (values
    derived from the loop's value variable or from DistArray reads —
    subscripts built from these cannot be captured statically). *)

open Orion_lang

type ref_info = {
  array : string;
  subs : Subscript.t array;
  is_write : bool;
  all_static : bool;
      (** every subscript is a loop-index-plus-constant, a constant, or
          a full range — i.e. dependence is captured exactly *)
}

type loop_info = {
  iter_space : string;
  key_var : string;
  value_var : string;
  ordered : bool;
  ndims : int;  (** iteration-space dimensionality *)
  refs : ref_info list;
  inherited : string list;
  runtime_vars : string list;
  buffered_arrays : string list;
      (** DistArray names the program declared as written through
          DistArray Buffers — their writes are exempt from analysis *)
}

let ref_to_string r =
  Printf.sprintf "%s%s[%s]"
    (if r.is_write then "write " else "read ")
    r.array
    (String.concat ", "
       (Array.to_list (Array.map Subscript.to_string r.subs)))

(* ------------------------------------------------------------------ *)
(* Taint analysis                                                      *)
(* ------------------------------------------------------------------ *)

(* A variable is runtime-tainted if its value may depend on the loop's
   value variable or on data read from a DistArray.  Fixpoint over the
   body handles loops and order-independence. *)

let expr_reads_distarray dist_vars e =
  Ast.fold_expr
    (fun acc e ->
      acc
      ||
      match e with
      | Ast.Index (Var d, _) -> List.mem d dist_vars
      | _ -> false)
    false e

let expr_mentions vars e =
  List.exists (fun v -> List.mem v vars) (Ast.expr_vars e)

let compute_tainted ~dist_vars ~seeds body =
  let tainted = ref seeds in
  let add v = if not (List.mem v !tainted) then tainted := v :: !tainted in
  let expr_tainted e =
    expr_mentions !tainted e || expr_reads_distarray dist_vars e
  in
  let sub_tainted = function
    | Ast.Sub_all -> false
    | Ast.Sub_expr e -> expr_tainted e
    | Ast.Sub_range (lo, hi) -> expr_tainted lo || expr_tainted hi
  in
  let changed = ref true in
  let rec scan_block ~ctrl_tainted block =
    List.iter (scan_stmt ~ctrl_tainted) block
  and scan_stmt ~ctrl_tainted stmt =
    let taint_lhs = function
      | Ast.Lvar v ->
          if not (List.mem v !tainted) then (
            add v;
            changed := true)
      | Ast.Lindex _ -> ()
    in
    match stmt.Ast.sk with
    | Ast.Assign (lhs, e) ->
        if ctrl_tainted || expr_tainted e then taint_lhs lhs
    | Ast.Op_assign (_, lhs, e) ->
        let lhs_reads_tainted =
          match lhs with
          | Ast.Lvar v -> List.mem v !tainted
          | Ast.Lindex (v, subs) ->
              List.mem v dist_vars || List.mem v !tainted
              || List.exists sub_tainted subs
        in
        if ctrl_tainted || lhs_reads_tainted || expr_tainted e then
          taint_lhs lhs
    | Ast.If (cond, then_b, else_b) ->
        let ct = ctrl_tainted || expr_tainted cond in
        scan_block ~ctrl_tainted:ct then_b;
        scan_block ~ctrl_tainted:ct else_b
    | Ast.While (cond, body) ->
        scan_block ~ctrl_tainted:(ctrl_tainted || expr_tainted cond) body
    | Ast.For { kind; body; _ } ->
        let ct =
          ctrl_tainted
          ||
          match kind with
          | Ast.Range_loop { lo; hi; _ } -> expr_tainted lo || expr_tainted hi
          | Ast.Each_loop { arr; _ } -> List.mem arr dist_vars
        in
        (match kind with
        | Ast.Range_loop { var; _ } -> if ct then add var
        | Ast.Each_loop { key; value; _ } ->
            (* iterating a DistArray yields runtime values *)
            add key;
            add value);
        scan_block ~ctrl_tainted:ct body
    | Ast.Expr_stmt _ | Ast.Break | Ast.Continue -> ()
  in
  while !changed do
    changed := false;
    scan_block ~ctrl_tainted:false body
  done;
  List.sort String.compare !tainted

let compute_runtime_vars ~dist_vars ~value_var body =
  compute_tainted ~dist_vars ~seeds:[ value_var ] body

(* ------------------------------------------------------------------ *)
(* Reference collection                                                *)
(* ------------------------------------------------------------------ *)

let collect_refs ~dist_vars ~(ctx : Subscript.ctx) body =
  let refs = ref [] in
  let sub_reads_distarray = function
    | Ast.Sub_all -> false
    | Ast.Sub_expr e -> expr_reads_distarray dist_vars e
    | Ast.Sub_range (lo, hi) ->
        expr_reads_distarray dist_vars lo || expr_reads_distarray dist_vars hi
  in
  let add array subs ~is_write =
    let abstract = Array.of_list (List.map (Subscript.classify ctx) subs) in
    let all_static =
      List.for_all
        (fun s ->
          Subscript.expr_is_static ctx s && not (sub_reads_distarray s))
        subs
    in
    refs := { array; subs = abstract; is_write; all_static } :: !refs
  in
  let rec scan_expr e =
    match e with
    | Ast.Index (Var d, subs) when List.mem d dist_vars ->
        add d subs ~is_write:false;
        List.iter scan_sub subs
    | Ast.Index (base, subs) ->
        scan_expr base;
        List.iter scan_sub subs
    | Ast.Binop (_, a, b) ->
        scan_expr a;
        scan_expr b
    | Ast.Unop (_, a) -> scan_expr a
    | Ast.Call (_, args) -> List.iter scan_expr args
    | Ast.Tuple es -> List.iter scan_expr es
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.String_lit _
    | Ast.Var _ ->
        ()
  and scan_sub = function
    | Ast.Sub_all -> ()
    | Ast.Sub_expr e -> scan_expr e
    | Ast.Sub_range (lo, hi) ->
        scan_expr lo;
        scan_expr hi
  in
  let scan_lhs ~also_read = function
    | Ast.Lvar _ -> ()
    | Ast.Lindex (d, subs) ->
        if List.mem d dist_vars then (
          add d subs ~is_write:true;
          if also_read then add d subs ~is_write:false);
        List.iter scan_sub subs
  in
  let rec scan_block block = List.iter scan_stmt block
  and scan_stmt stmt =
    match stmt.Ast.sk with
    | Ast.Assign (lhs, e) ->
        scan_lhs ~also_read:false lhs;
        scan_expr e
    | Ast.Op_assign (_, lhs, e) ->
        scan_lhs ~also_read:true lhs;
        scan_expr e
    | Ast.If (cond, then_b, else_b) ->
        scan_expr cond;
        scan_block then_b;
        scan_block else_b
    | Ast.While (cond, body) ->
        scan_expr cond;
        scan_block body
    | Ast.For { kind; body; _ } ->
        (match kind with
        | Ast.Range_loop { lo; hi; _ } ->
            scan_expr lo;
            scan_expr hi
        | Ast.Each_loop _ -> ());
        scan_block body
    | Ast.Expr_stmt e -> scan_expr e
    | Ast.Break | Ast.Continue -> ()
  in
  scan_block body;
  List.rev !refs

(* ------------------------------------------------------------------ *)
(* Inherited variables                                                 *)
(* ------------------------------------------------------------------ *)

let inherited_vars ~dist_vars ~key_var ~value_var body =
  let mentioned =
    Ast.fold_stmts
      (fun acc stmt ->
        let exprs =
          match stmt.Ast.sk with
          | Ast.Assign (lhs, e) | Ast.Op_assign (_, lhs, e) ->
              let lhs_vars =
                match lhs with
                | Ast.Lvar v -> [ v ]
                | Ast.Lindex (v, subs) ->
                    v
                    :: List.concat_map
                         (function
                           | Ast.Sub_all -> []
                           | Ast.Sub_expr e -> Ast.expr_vars e
                           | Ast.Sub_range (a, b) ->
                               Ast.expr_vars a @ Ast.expr_vars b)
                         subs
              in
              lhs_vars @ Ast.expr_vars e
          | Ast.If (c, _, _) | Ast.While (c, _) | Ast.Expr_stmt c ->
              Ast.expr_vars c
          | Ast.For { kind = Ast.Range_loop { lo; hi; _ }; _ } ->
              Ast.expr_vars lo @ Ast.expr_vars hi
          | Ast.For { kind = Ast.Each_loop { arr; _ }; _ } -> [ arr ]
          | Ast.Break | Ast.Continue -> []
        in
        exprs @ acc)
      [] body
    |> List.sort_uniq String.compare
  in
  let local = key_var :: value_var :: Ast.assigned_names body in
  List.filter
    (fun v -> (not (List.mem v local)) && not (List.mem v dist_vars))
    mentioned

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

exception Not_a_parallel_loop of string

(** Analyze a parallel for-loop statement.  [dist_vars] names the
    variables bound to DistArrays in the driver, [buffered_arrays] the
    subset written through DistArray Buffers (their writes are exempt
    from dependence analysis, §3.3), and [iter_space_ndims] gives the
    dimensionality of the iteration-space DistArray (known at JIT time
    because the DistArray has been materialized). *)
let analyze_loop ~dist_vars ~buffered_arrays ~iter_space_ndims stmt =
  match stmt.Ast.sk with
  | Ast.For { kind = Ast.Each_loop { key; value; arr }; body; parallel } ->
      let ordered =
        match parallel with
        | Some { Ast.ordered } -> ordered
        | None -> raise (Not_a_parallel_loop "loop lacks @parallel_for")
      in
      let runtime_vars = compute_runtime_vars ~dist_vars ~value_var:value body in
      let ctx = { Subscript.key_var = key; runtime_vars } in
      let refs = collect_refs ~dist_vars ~ctx body in
      let inherited = inherited_vars ~dist_vars ~key_var:key ~value_var:value body in
      {
        iter_space = arr;
        key_var = key;
        value_var = value;
        ordered;
        ndims = iter_space_ndims;
        refs;
        inherited;
        runtime_vars;
        buffered_arrays;
      }
  | Ast.For { kind = Ast.Range_loop _; _ } ->
      raise
        (Not_a_parallel_loop
           "@parallel_for requires iteration over a DistArray")
  | _ -> raise (Not_a_parallel_loop "not a for-loop")

(** Find the [n]-th parallel for-loop in a program (top-level or nested). *)
let find_parallel_loops program =
  Ast.fold_stmts
    (fun acc stmt ->
      match stmt.Ast.sk with
      | Ast.For { parallel = Some _; _ } -> stmt :: acc
      | _ -> acc)
    [] program
  |> List.rev
