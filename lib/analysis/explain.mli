(** Rendering analysis provenance — the full "why" behind a {!Plan.t}:
    per-reference-pair dependence provenance (Algorithm 2) and the
    strategy decision tree (§4.3), as human-readable text or JSON.
    Backs the [orion explain] subcommand. *)

(** Full text report: the {!Plan.explain} panel followed by the
    dependence provenance and the strategy decision tree. *)
val pp_report : Format.formatter -> Plan.t -> unit

val report_to_string : Plan.t -> string

(** The report as an {!Orion_report} payload (no envelope). *)
val to_json_value : Plan.t -> Orion_report.json

(** The same report as a machine-readable JSON object (single line),
    wrapped in the versioned {!Orion_report} envelope
    (kind ["explain"]). *)
val to_json : Plan.t -> string
