(** Parallelization strategy decision and DistArray placement
    (paper §4.3–4.4). *)

type strategy =
  | One_d of { space_dim : int }
  | Two_d of { space_dim : int; time_dim : int }
  | Two_d_unimodular of {
      matrix : Unimodular.matrix;
      inverse : Unimodular.matrix;
      space_dim : int;  (** in the transformed space *)
      time_dim : int;
    }
  | Data_parallel
      (** no dependence-preserving partitioning; conflicting writes
          must go through DistArray Buffers *)

type placement =
  | Local_partitioned of { array_dim : int }
      (** aligned with the space dimension: all accesses local *)
  | Rotated of { array_dim : int }
      (** aligned with the time dimension: partitions rotate *)
  | Replicated  (** read-only: broadcast once *)
  | Server  (** random access served by server processes *)

(** One costed strategy candidate considered by {!decide}. *)
type candidate = {
  cand_strategy : strategy;
  cand_placements : (string * placement * float) list;
      (** placement with its per-array communication cost *)
  cand_cost : float;
  cand_chosen : bool;
}

(** Why the unimodular step did or did not fire. *)
type unimodular_outcome =
  | Uni_not_attempted  (** a 1D/2D candidate already existed *)
  | Uni_applied of { matrix : Unimodular.matrix }
  | Uni_rejected_ndims of { matrix : Unimodular.matrix }
      (** a transform exists but the space has < 2 dims *)
  | Uni_inapplicable of { blocker : Depvec.t option }
      (** some vector contains -inf or ∞ (paper §4.3 applicability) *)
  | Uni_search_failed  (** applicable, but no skewing basis was found *)

(** The strategy decision tree recorded by {!decide}: every candidate
    considered with its cost, every rejected partitioning dimension
    with the dependence vector that killed it, and the unimodular
    outcome. *)
type provenance = {
  considered : candidate list;
  rejected_1d : (int * Depvec.t) list;
  rejected_2d : ((int * int) * Depvec.t) list;
  unimodular : unimodular_outcome;
}

type t = {
  strategy : strategy;
  ordered : bool;
  placements : (string * placement) list;
  dep_vectors : Depvec.t list;
  per_array_deps : (string * Depvec.t list) list;
  prefetch_arrays : string list;
      (** server arrays with runtime-dependent subscripts — candidates
          for synthesized bulk prefetching *)
  requires_buffers : string list;
      (** on a [Data_parallel] fallback: arrays whose statically
          uncapturable writes must be buffered *)
  estimated_comm_cost : float;
  loop : Refs.loop_info;
  provenance : provenance;
  dep_trace : Depanalysis.trace;
      (** per-reference-pair provenance from Algorithm 2 *)
}

val strategy_to_string : strategy -> string
val placement_to_string : placement -> string

(** Per-array access summaries feeding the placement decision. *)
type array_summary = {
  name : string;
  keyed_by : (int * int) list;  (** (iteration dim, array position) *)
  read_only : bool;
  all_static : bool;
  size : float;
}

val summarize_arrays :
  Refs.loop_info -> array_dims:(string -> int array option) -> array_summary list

(** Decide the parallelization: 1D and 2D candidates are costed by the
    communication heuristic (rotate the smaller array, serve what
    cannot be partitioned); otherwise try a unimodular transformation;
    otherwise fall back to data parallelism. *)
val decide :
  Refs.loop_info ->
  array_dims:(string -> int array option) ->
  iter_count:float ->
  t

(** Human-readable report (the paper's Fig. 6 panel). *)
val explain : Format.formatter -> t -> unit

val explain_to_string : t -> string
