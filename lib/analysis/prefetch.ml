(** Bulk-prefetch synthesis (paper §4.4).

    For DistArrays served by server processes, Orion synthesizes a
    function that executes the loop body's subscript computations —
    with proper control flow and ordering — but *records* DistArray
    subscripts instead of reading elements and computing.  Subscripts
    that depend on values read from DistArrays are not recorded
    (computing them would itself require remote access); the runtime
    falls back to on-demand fetches for those.

    The synthesized program calls the host builtins
    - [__record(name, s1, ..., sn)] for each recordable read,
    - [__all()] / [__range(lo, hi)] as subscript markers,
    which the DSM layer interprets to build per-iteration prefetch
    index lists. *)

open Orion_lang

let record_fn = "__record"
let all_fn = "__all"
let range_fn = "__range"

type stats = { mutable recorded : int; mutable skipped : int }

(* ------------------------------------------------------------------ *)

let expr_reads_distarray dist_vars e =
  Ast.fold_expr
    (fun acc e ->
      acc
      ||
      match e with
      | Ast.Index (Var d, _) -> List.mem d dist_vars
      | _ -> false)
    false e

let expr_tainted ~dist_vars ~tainted e =
  List.exists (fun v -> List.mem v tainted) (Ast.expr_vars e)
  || expr_reads_distarray dist_vars e

let sub_tainted ~dist_vars ~tainted = function
  | Ast.Sub_all -> false
  | Ast.Sub_expr e -> expr_tainted ~dist_vars ~tainted e
  | Ast.Sub_range (lo, hi) ->
      expr_tainted ~dist_vars ~tainted lo
      || expr_tainted ~dist_vars ~tainted hi

let sub_to_marker_expr = function
  | Ast.Sub_expr e -> e
  | Ast.Sub_all -> Ast.Call (all_fn, [])
  | Ast.Sub_range (lo, hi) -> Ast.Call (range_fn, [ lo; hi ])

(* ------------------------------------------------------------------ *)

(** Synthesize the prefetch program for [body].

    [targets] are the server-hosted DistArrays whose reads should be
    recorded; [dist_vars] all DistArray variables in scope (reads of
    any of them taint subscript values).  Returns the generated block
    together with counts of recorded/skipped target reads. *)
let synthesize ~dist_vars ~targets body : Ast.block * stats =
  (* vars whose value may depend on a DistArray read *)
  let tainted = Refs.compute_tainted ~dist_vars ~seeds:[] body in
  let stats = { recorded = 0; skipped = 0 } in
  let tainted_e e = expr_tainted ~dist_vars ~tainted e in
  let tainted_s s = sub_tainted ~dist_vars ~tainted s in
  (* Collect record statements for every recordable target read inside
     an expression, in evaluation order, recursing into subscripts. *)
  let rec records_of_expr e : Ast.stmt list =
    match e with
    | Ast.Index (Var d, subs) when List.mem d targets ->
        let inner = List.concat_map records_of_sub subs in
        if List.exists tainted_s subs then (
          stats.skipped <- stats.skipped + 1;
          inner)
        else (
          stats.recorded <- stats.recorded + 1;
          inner
          @ [
              Ast.mk
                (Ast.Expr_stmt
                   (Ast.Call
                      ( record_fn,
                        Ast.String_lit d :: List.map sub_to_marker_expr subs )));
            ])
    | Ast.Index (base, subs) ->
        records_of_expr base @ List.concat_map records_of_sub subs
    | Ast.Binop (_, a, b) -> records_of_expr a @ records_of_expr b
    | Ast.Unop (_, a) -> records_of_expr a
    | Ast.Call (_, args) -> List.concat_map records_of_expr args
    | Ast.Tuple es -> List.concat_map records_of_expr es
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.String_lit _
    | Ast.Var _ ->
        []
  and records_of_sub = function
    | Ast.Sub_all -> []
    | Ast.Sub_expr e -> records_of_expr e
    | Ast.Sub_range (lo, hi) -> records_of_expr lo @ records_of_expr hi
  in
  let records_of_lhs = function
    | Ast.Lvar _ -> []
    | Ast.Lindex (d, subs) ->
        (* subscripts of a write are evaluated; reads nested in them are
           reads, and the written array's own elements are prefetched
           too when it is a target (read-modify-write apply needs the
           current value) *)
        records_of_expr (Ast.Index (Var d, subs))
  in
  let rec transform_block block = List.concat_map transform_stmt block
  and transform_stmt stmt : Ast.stmt list =
    let pos = stmt.Ast.spos in
    match stmt.Ast.sk with
    | Ast.Assign (lhs, e) -> (
        let recs = records_of_lhs lhs @ records_of_expr e in
        match lhs with
        | Ast.Lvar v
          when (not (List.mem v tainted)) && not (tainted_e e) ->
            (* pure scalar computation: replay it for later subscripts *)
            recs @ [ stmt ]
        | Ast.Lvar _ | Ast.Lindex _ -> recs)
    | Ast.Op_assign (op, lhs, e) -> (
        let recs = records_of_lhs lhs @ records_of_expr e in
        match lhs with
        | Ast.Lvar v
          when (not (List.mem v tainted)) && not (tainted_e e) ->
            recs @ [ Ast.mk ~pos (Ast.Op_assign (op, lhs, e)) ]
        | Ast.Lvar _ | Ast.Lindex _ -> recs)
    | Ast.If (cond, then_b, else_b) ->
        let then_t = transform_block then_b in
        let else_t = transform_block else_b in
        if tainted_e cond then
          (* branch cannot be determined without remote reads:
             over-approximate by recording both sides (extra prefetched
             values are harmless) *)
          records_of_expr cond @ then_t @ else_t
        else if then_t = [] && else_t = [] then []
        else [ Ast.mk ~pos (Ast.If (cond, then_t, else_t)) ]
    | Ast.While (cond, body) ->
        let body_t = transform_block body in
        if tainted_e cond then
          (* cannot bound the iteration count: fall back to on-demand
             fetches for reads inside (under-prefetching is safe) *)
          []
        else if body_t = [] then []
        else [ Ast.mk ~pos (Ast.While (cond, body_t)) ]
    | Ast.For { kind = Ast.Range_loop { var; lo; hi }; body; _ } ->
        let body_t = transform_block body in
        if tainted_e lo || tainted_e hi || body_t = [] then []
        else
          [
            Ast.mk ~pos
              (Ast.For
                 {
                   kind = Ast.Range_loop { var; lo; hi };
                   body = body_t;
                   parallel = None;
                 });
          ]
    | Ast.For { kind = Ast.Each_loop _; _ } ->
        (* iterating a DistArray inside the body requires its data *)
        []
    | Ast.Expr_stmt e -> records_of_expr e
    | Ast.Break | Ast.Continue -> [ stmt ]
  in
  (transform_block body, stats)

(** Pretty-print the synthesized program (for the CLI and docs). *)
let to_string block = Pretty.program_to_string block
