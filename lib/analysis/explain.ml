(** Rendering analysis provenance — the full "why" behind a {!Plan.t}.

    {!Plan.explain} prints the paper's Fig. 6 panel (the decision);
    this module renders the evidence: every reference pair Algorithm 2
    visited with its refinement steps and outcome, and the strategy
    decision tree (candidates costed, partitioning dimensions rejected
    and by which vector, the unimodular outcome).  Both a human-readable
    text report and machine-readable JSON are provided; the [orion
    explain] subcommand exposes them. *)

(* ------------------------------------------------------------------ *)
(* JSON via the shared versioned report library                        *)
(* ------------------------------------------------------------------ *)

type json = Orion_report.json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list


(* ------------------------------------------------------------------ *)
(* JSON report                                                         *)
(* ------------------------------------------------------------------ *)

let json_of_depvec (d : Depvec.t) =
  List (Array.to_list (Array.map (fun e -> Str (Depvec.elt_to_string e)) d))

let json_of_ref (r : Refs.ref_info) =
  Obj
    [
      ("array", Str r.array);
      ("mode", Str (if r.is_write then "write" else "read"));
      ( "subscripts",
        List
          (Array.to_list
             (Array.map (fun s -> Str (Subscript.to_string s)) r.subs)) );
      ("all_static", Bool r.all_static);
    ]

let json_of_step (s : Depanalysis.refine_step) =
  match s with
  | Depanalysis.Refine { position; dim; distance } ->
      Obj
        [
          ("kind", Str "refine");
          ("position", Int (position + 1));
          ("dim", Int dim);
          ("distance", Int distance);
        ]
  | Depanalysis.Conflict { position; dim; prev; next } ->
      Obj
        [
          ("kind", Str "conflict");
          ("position", Int (position + 1));
          ("dim", Int dim);
          ("prev", Int prev);
          ("next", Int next);
        ]
  | Depanalysis.Const_unequal { position; left; right } ->
      Obj
        [
          ("kind", Str "const_unequal");
          ("position", Int (position + 1));
          ("left", Int left);
          ("right", Int right);
        ]
  | Depanalysis.No_constraint { position; why } ->
      Obj
        [
          ("kind", Str "no_constraint");
          ("position", Int (position + 1));
          ("why", Str why);
        ]

let json_of_pair (p : Depanalysis.pair_trace) =
  let outcome =
    match p.pt_outcome with
    | Depanalysis.Skipped reason ->
        Obj
          [
            ("kind", Str "skipped");
            ( "reason",
              Str
                (match reason with
                | Depanalysis.Read_read -> "read_read"
                | Depanalysis.Write_write_unordered -> "write_write_unordered")
            );
          ]
    | Depanalysis.Independent -> Obj [ ("kind", Str "independent") ]
    | Depanalysis.Self_dependence -> Obj [ ("kind", Str "self_dependence") ]
    | Depanalysis.Dependence { raw; vec; negated } ->
        Obj
          [
            ("kind", Str "dependence");
            ("raw", json_of_depvec raw);
            ("vector", json_of_depvec vec);
            ("negated", Bool negated);
          ]
  in
  Obj
    [
      ("array", Str p.pt_array);
      ("a", json_of_ref p.pt_a);
      ("b", json_of_ref p.pt_b);
      ("steps", List (List.map json_of_step p.pt_steps));
      ("outcome", outcome);
    ]

let json_of_matrix (m : Unimodular.matrix) =
  List
    (Array.to_list
       (Array.map (fun row -> List (Array.to_list (Array.map (fun v -> Int v) row))) m))

let json_of_strategy (s : Plan.strategy) =
  match s with
  | Plan.One_d { space_dim } ->
      Obj [ ("kind", Str "1d"); ("space_dim", Int space_dim) ]
  | Plan.Two_d { space_dim; time_dim } ->
      Obj
        [
          ("kind", Str "2d");
          ("space_dim", Int space_dim);
          ("time_dim", Int time_dim);
        ]
  | Plan.Two_d_unimodular { matrix; inverse; space_dim; time_dim } ->
      Obj
        [
          ("kind", Str "2d_unimodular");
          ("matrix", json_of_matrix matrix);
          ("inverse", json_of_matrix inverse);
          ("space_dim", Int space_dim);
          ("time_dim", Int time_dim);
        ]
  | Plan.Data_parallel -> Obj [ ("kind", Str "data_parallel") ]

let json_of_candidate (c : Plan.candidate) =
  Obj
    [
      ("strategy", json_of_strategy c.cand_strategy);
      ("label", Str (Plan.strategy_to_string c.cand_strategy));
      ("cost", Float c.cand_cost);
      ("chosen", Bool c.cand_chosen);
      ( "placements",
        List
          (List.map
             (fun (name, p, cost) ->
               Obj
                 [
                   ("array", Str name);
                   ("placement", Str (Plan.placement_to_string p));
                   ("comm_cost", Float cost);
                 ])
             c.cand_placements) );
    ]

let json_of_unimodular (u : Plan.unimodular_outcome) =
  match u with
  | Plan.Uni_not_attempted -> Obj [ ("kind", Str "not_attempted") ]
  | Plan.Uni_applied { matrix } ->
      Obj [ ("kind", Str "applied"); ("matrix", json_of_matrix matrix) ]
  | Plan.Uni_rejected_ndims { matrix } ->
      Obj [ ("kind", Str "rejected_ndims"); ("matrix", json_of_matrix matrix) ]
  | Plan.Uni_inapplicable { blocker } ->
      Obj
        [
          ("kind", Str "inapplicable");
          ( "blocker",
            match blocker with None -> Null | Some d -> json_of_depvec d );
        ]
  | Plan.Uni_search_failed -> Obj [ ("kind", Str "search_failed") ]

let to_json_value (plan : Plan.t) : json =
  let info = plan.loop in
  let prov = plan.provenance in
  let tr = plan.dep_trace in
  Obj
    [
      ( "loop",
        Obj
          [
            ("iter_space", Str info.iter_space);
            ("key_var", Str info.key_var);
            ("value_var", Str info.value_var);
            ("ordered", Bool info.ordered);
            ("ndims", Int info.ndims);
            ("refs", List (List.map json_of_ref info.refs));
            ("inherited", List (List.map (fun v -> Str v) info.inherited));
            ( "buffered_arrays",
              List (List.map (fun v -> Str v) info.buffered_arrays) );
          ] );
      ( "dependence",
        Obj
          [
            ("pairs", List (List.map json_of_pair tr.pairs));
            ( "dropped_writes",
              List
                (List.map
                   (fun (name, n) ->
                     Obj [ ("array", Str name); ("writes", Int n) ])
                   tr.dropped_writes) );
            ("vectors", List (List.map json_of_depvec plan.dep_vectors));
            ( "per_array",
              Obj
                (List.map
                   (fun (name, ds) -> (name, List (List.map json_of_depvec ds)))
                   plan.per_array_deps) );
          ] );
      ( "decision",
        Obj
          [
            ("candidates", List (List.map json_of_candidate prov.considered));
            ( "rejected_1d",
              List
                (List.map
                   (fun (dim, killer) ->
                     Obj [ ("dim", Int dim); ("killer", json_of_depvec killer) ])
                   prov.rejected_1d) );
            ( "rejected_2d",
              List
                (List.map
                   (fun ((i, j), killer) ->
                     Obj
                       [
                         ("dims", List [ Int i; Int j ]);
                         ("killer", json_of_depvec killer);
                       ])
                   prov.rejected_2d) );
            ("unimodular", json_of_unimodular prov.unimodular);
          ] );
      ( "plan",
        Obj
          [
            ("strategy", json_of_strategy plan.strategy);
            ("label", Str (Plan.strategy_to_string plan.strategy));
            ( "placements",
              Obj
                (List.map
                   (fun (name, p) -> (name, Str (Plan.placement_to_string p)))
                   plan.placements) );
            ( "prefetch_arrays",
              List (List.map (fun v -> Str v) plan.prefetch_arrays) );
            ( "requires_buffers",
              List (List.map (fun v -> Str v) plan.requires_buffers) );
            ("estimated_comm_cost", Float plan.estimated_comm_cost);
          ] );
    ]

let to_json plan = Orion_report.emit ~kind:"explain" (to_json_value plan)

(* ------------------------------------------------------------------ *)
(* Text report                                                         *)
(* ------------------------------------------------------------------ *)

let pp_pair fmt (p : Depanalysis.pair_trace) =
  Fmt.pf fmt "  %s  vs  %s@."
    (Refs.ref_to_string p.pt_a)
    (Refs.ref_to_string p.pt_b);
  List.iter
    (fun s ->
      Fmt.pf fmt "    %s@." (Depanalysis.refine_step_to_string s))
    p.pt_steps;
  match p.pt_outcome with
  | Depanalysis.Skipped reason ->
      Fmt.pf fmt "    => skipped: %s@."
        (Depanalysis.skip_reason_to_string reason)
  | Depanalysis.Independent -> Fmt.pf fmt "    => independent@."
  | Depanalysis.Self_dependence ->
      Fmt.pf fmt "    => same-iteration only (all-zero vector, dropped)@."
  | Depanalysis.Dependence { raw; vec; negated } ->
      if negated then
        Fmt.pf fmt "    => dependence %s (raw %s negated to be lex-positive)@."
          (Depvec.to_string vec) (Depvec.to_string raw)
      else Fmt.pf fmt "    => dependence %s@." (Depvec.to_string vec)

let pp_report fmt (plan : Plan.t) =
  let prov = plan.provenance in
  let tr = plan.dep_trace in
  (* the decision summary first (the Fig. 6 panel), then the evidence *)
  Plan.explain fmt plan;
  Fmt.pf fmt "@.Dependence provenance (Algorithm 2)@.";
  (match tr.dropped_writes with
  | [] -> ()
  | l ->
      List.iter
        (fun (name, n) ->
          Fmt.pf fmt "  %s: %d write reference(s) exempt (DistArray Buffer)@."
            name n)
        l);
  (match tr.pairs with
  | [] -> Fmt.pf fmt "  (no static DistArray reference pairs)@."
  | pairs -> List.iter (pp_pair fmt) pairs);
  Fmt.pf fmt "@.Strategy decision tree@.";
  (match prov.rejected_1d with
  | [] -> ()
  | l ->
      List.iter
        (fun (dim, killer) ->
          Fmt.pf fmt "  1D over dim %d rejected by %s@." dim
            (Depvec.to_string killer))
        l);
  (match prov.rejected_2d with
  | [] -> ()
  | l ->
      List.iter
        (fun ((i, j), killer) ->
          Fmt.pf fmt "  2D over dims (%d, %d) rejected by %s@." i j
            (Depvec.to_string killer))
        l);
  (match prov.considered with
  | [] -> Fmt.pf fmt "  no 1D/2D candidate survives the dependence vectors@."
  | cands ->
      List.iter
        (fun (c : Plan.candidate) ->
          Fmt.pf fmt "  candidate %s: cost %.1f%s@."
            (Plan.strategy_to_string c.cand_strategy)
            c.cand_cost
            (if c.cand_chosen then "  <= chosen (min cost, earliest wins ties)"
             else ""))
        cands);
  (match prov.unimodular with
  | Plan.Uni_not_attempted -> ()
  | Plan.Uni_applied { matrix } ->
      Fmt.pf fmt
        "  unimodular transform %s applied (dims sequenced along \
         transformed time dim 0)@."
        (Unimodular.matrix_to_string matrix)
  | Plan.Uni_rejected_ndims { matrix } ->
      Fmt.pf fmt
        "  unimodular transform %s found but iteration space has < 2 dims@."
        (Unimodular.matrix_to_string matrix)
  | Plan.Uni_inapplicable { blocker } ->
      Fmt.pf fmt "  unimodular transform inapplicable%s@."
        (match blocker with
        | Some d -> ": " ^ Depvec.to_string d ^ " contains -inf or inf"
        | None -> "")
  | Plan.Uni_search_failed ->
      Fmt.pf fmt "  unimodular transform applicable but no basis found@.")

let report_to_string plan = Fmt.str "%a" pp_report plan
