(** Computing dependence vectors — the paper's Algorithm 2.

    For each referenced DistArray, every unique pair of static references
    (including a write paired with itself) is tested:
    - read/read pairs carry no dependence;
    - write/write pairs are skipped when the loop is unordered;
    - otherwise a distance vector over the iteration space is built by
      refining an all-∞ vector with the constraints implied by matching
      subscript positions, or the pair is proven independent.

    [analyze_traced] additionally records, for every pair visited, the
    refinement steps taken and the outcome — the provenance rendered by
    {!Explain} and the [orion explain] subcommand. *)

type result = {
  per_array : (string * Depvec.t list) list;
      (** dependence vectors attributable to each DistArray *)
  all : Depvec.t list;  (** deduplicated union *)
}

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)
(* ------------------------------------------------------------------ *)

type refine_step =
  | Refine of { position : int; dim : int; distance : int }
      (** matching loop indices at [position] constrain dimension [dim]
          of the vector to exactly [distance] *)
  | Conflict of { position : int; dim : int; prev : int; next : int }
      (** contradictory distances for [dim] — the pair is independent *)
  | Const_unequal of { position : int; left : int; right : int }
      (** unequal constants can never alias — the pair is independent *)
  | No_constraint of { position : int; why : string }
      (** the position pair yields no refinement *)

type skip_reason = Read_read | Write_write_unordered

type pair_outcome =
  | Skipped of skip_reason
  | Independent  (** proven by a [Conflict] or [Const_unequal] step *)
  | Self_dependence
      (** the refined vector is all-zero: same iteration, not loop-carried *)
  | Dependence of { raw : Depvec.t; vec : Depvec.t; negated : bool }
      (** [vec] is [raw] corrected to be lexicographically positive *)

type pair_trace = {
  pt_array : string;
  pt_a : Refs.ref_info;
  pt_b : Refs.ref_info;
  pt_steps : refine_step list;
  pt_outcome : pair_outcome;
}

type trace = {
  pairs : pair_trace list;
  dropped_writes : (string * int) list;
      (** write references exempted per buffered DistArray (§3.3) *)
}

let skip_reason_to_string = function
  | Read_read -> "read/read pairs carry no dependence"
  | Write_write_unordered ->
      "write/write pairs are commutative in an unordered loop"

let refine_step_to_string = function
  | Refine { position; dim; distance } ->
      Printf.sprintf "position %d: matching loop index constrains dim %d to %d"
        (position + 1) dim distance
  | Conflict { position; dim; prev; next } ->
      Printf.sprintf
        "position %d: dim %d already constrained to %d, contradicts %d"
        (position + 1) dim prev next
  | Const_unequal { position; left; right } ->
      Printf.sprintf "position %d: constants %d <> %d never alias"
        (position + 1) left right
  | No_constraint { position; why } ->
      Printf.sprintf "position %d: no constraint (%s)" (position + 1) why

(* ------------------------------------------------------------------ *)

let dedup (dvecs : Depvec.t list) =
  List.fold_left
    (fun acc d -> if List.exists (Depvec.equal d) acc then acc else d :: acc)
    [] dvecs
  |> List.rev

(* Dependence test for one pair of references, recording refinement
   steps.  Returns the steps in visit order and the outcome. *)
let pair_dvec_traced ~ndims (a : Refs.ref_info) (b : Refs.ref_info) :
    refine_step list * pair_outcome =
  let dvec = Array.make ndims Depvec.Any in
  let independent = ref false in
  let steps = ref [] in
  let push s = steps := s :: !steps in
  let positions = min (Array.length a.subs) (Array.length b.subs) in
  for p = 0 to positions - 1 do
    if not !independent then
      match (a.subs.(p), b.subs.(p)) with
      | ( Subscript.Loop_index { dim = da; offset = ca },
          Subscript.Loop_index { dim = db; offset = cb } ) ->
          if da = db then (
            let dist = ca - cb in
            match dvec.(da) with
            | Depvec.Any ->
                dvec.(da) <- Depvec.Fin dist;
                push (Refine { position = p; dim = da; distance = dist })
            | Depvec.Fin prev when prev <> dist ->
                independent := true;
                push (Conflict { position = p; dim = da; prev; next = dist })
            | Depvec.Fin dist ->
                push (Refine { position = p; dim = da; distance = dist })
            | Depvec.Pos_inf | Depvec.Neg_inf ->
                (* cannot arise here: refinement only writes Fin *)
                ())
          else
            (* different loop index variables at the same position: the
               subscripts match only when those index values coincide —
               no distance constraint can be derived (paper: continue) *)
            push
              (No_constraint
                 { position = p; why = "different loop index dimensions" })
      | Subscript.Const ca, Subscript.Const cb ->
          if ca <> cb then (
            independent := true;
            push (Const_unequal { position = p; left = ca; right = cb }))
          else push (No_constraint { position = p; why = "equal constants" })
      | Subscript.Const _, Subscript.Loop_index _
      | Subscript.Loop_index _, Subscript.Const _ ->
          (* positions may always coincide: no refinement *)
          push
            (No_constraint
               { position = p; why = "constant vs loop index may coincide" })
      | (Subscript.Range_all | Subscript.Unknown), _
      | _, (Subscript.Range_all | Subscript.Unknown) ->
          push
            (No_constraint
               { position = p; why = "range or runtime subscript" })
  done;
  let steps = List.rev !steps in
  if !independent then (steps, Independent)
  else
    (* drop the self-dependence of an iteration on itself: an exact
       all-zero vector means "same iteration" *)
    let raw = Array.copy dvec in
    match Depvec.correct_positive dvec with
    | None -> (steps, Self_dependence)
    | Some vec ->
        (steps, Dependence { raw; vec; negated = not (Depvec.equal raw vec) })

(* Dependence test for one pair of references; [None] = independent. *)
let pair_dvec ~ndims (a : Refs.ref_info) (b : Refs.ref_info) : Depvec.t option
    =
  match pair_dvec_traced ~ndims a b with
  | _, Dependence { vec; _ } -> Some vec
  | _, (Independent | Self_dependence | Skipped _) -> None

(** All unique pairs of [refs], including a reference paired with
    itself when it is a write (two distinct iterations can both execute
    the same static write). *)
let reference_pairs refs =
  let arr = Array.of_list refs in
  let n = Array.length arr in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      if i <> j || arr.(i).Refs.is_write then
        pairs := (arr.(i), arr.(j)) :: !pairs
    done
  done;
  List.rev !pairs

let array_dvecs_traced ~array ~ndims ~unordered refs :
    Depvec.t list * pair_trace list =
  let traces =
    reference_pairs refs
    |> List.map (fun ((a : Refs.ref_info), (b : Refs.ref_info)) ->
           let pt_steps, pt_outcome =
             if (not a.is_write) && not b.is_write then
               ([], Skipped Read_read)
             else if unordered && a.is_write && b.is_write then
               ([], Skipped Write_write_unordered)
             else pair_dvec_traced ~ndims a b
           in
           { pt_array = array; pt_a = a; pt_b = b; pt_steps; pt_outcome })
  in
  let dvecs =
    List.filter_map
      (fun t ->
        match t.pt_outcome with
        | Dependence { vec; _ } -> Some vec
        | Skipped _ | Independent | Self_dependence -> None)
      traces
    |> dedup
  in
  (dvecs, traces)

(** Run Algorithm 2 over a whole loop, recording per-pair provenance.
    Writes to buffered DistArrays are exempt from analysis (paper §3.3):
    such arrays contribute only their read references. *)
let analyze_traced (info : Refs.loop_info) : result * trace =
  let ndims = info.ndims in
  let unordered = not info.ordered in
  let arrays =
    List.map (fun (r : Refs.ref_info) -> r.array) info.refs
    |> List.sort_uniq String.compare
  in
  let dropped_writes = ref [] in
  let per_array_traced =
    List.map
      (fun name ->
        let refs =
          List.filter (fun (r : Refs.ref_info) -> r.array = name) info.refs
        in
        let refs =
          if List.mem name info.buffered_arrays then (
            let writes =
              List.length (List.filter (fun (r : Refs.ref_info) -> r.is_write) refs)
            in
            if writes > 0 then
              dropped_writes := (name, writes) :: !dropped_writes;
            List.filter (fun (r : Refs.ref_info) -> not r.is_write) refs)
          else refs
        in
        (name, array_dvecs_traced ~array:name ~ndims ~unordered refs))
      arrays
  in
  let per_array =
    List.map (fun (name, (dvecs, _)) -> (name, dvecs)) per_array_traced
  in
  let all = dedup (List.concat_map snd per_array) in
  let pairs = List.concat_map (fun (_, (_, ts)) -> ts) per_array_traced in
  if Log.enabled Log.Debug then
    List.iter
      (fun (name, dvecs) ->
        Log.debug ~src:"depanalysis"
          ~kv:
            [
              ("array", name);
              ("vectors", Log.int (List.length dvecs));
              ( "vecs",
                String.concat " " (List.map Depvec.to_string dvecs) );
            ]
          "array analyzed")
      per_array;
  ( { per_array; all },
    { pairs; dropped_writes = List.rev !dropped_writes } )

(** Run Algorithm 2 over a whole loop (see [analyze_traced]). *)
let analyze (info : Refs.loop_info) : result = fst (analyze_traced info)
