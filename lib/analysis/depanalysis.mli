(** Computing dependence vectors — the paper's Algorithm 2. *)

type result = {
  per_array : (string * Depvec.t list) list;
  all : Depvec.t list;  (** deduplicated union *)
}

(** {1 Provenance}

    [analyze_traced] records, for every reference pair visited, the
    subscript refinement steps taken and the outcome.  This is the raw
    material for {!Explain} and [orion explain]. *)

type refine_step =
  | Refine of { position : int; dim : int; distance : int }
  | Conflict of { position : int; dim : int; prev : int; next : int }
  | Const_unequal of { position : int; left : int; right : int }
  | No_constraint of { position : int; why : string }

type skip_reason = Read_read | Write_write_unordered

type pair_outcome =
  | Skipped of skip_reason
  | Independent
  | Self_dependence
  | Dependence of { raw : Depvec.t; vec : Depvec.t; negated : bool }

type pair_trace = {
  pt_array : string;
  pt_a : Refs.ref_info;
  pt_b : Refs.ref_info;
  pt_steps : refine_step list;
  pt_outcome : pair_outcome;
}

type trace = {
  pairs : pair_trace list;
  dropped_writes : (string * int) list;
      (** write references exempted per buffered DistArray (§3.3) *)
}

val skip_reason_to_string : skip_reason -> string
val refine_step_to_string : refine_step -> string

(** Deduplicate a vector list (order-preserving). *)
val dedup : Depvec.t list -> Depvec.t list

(** Dependence test for one pair of references; [None] = independent
    or not loop-carried. *)
val pair_dvec : ndims:int -> Refs.ref_info -> Refs.ref_info -> Depvec.t option

(** Traced dependence test for one pair (no read/read or write/write
    skipping — that is the caller's context). *)
val pair_dvec_traced :
  ndims:int -> Refs.ref_info -> Refs.ref_info -> refine_step list * pair_outcome

(** Run Algorithm 2 over a loop: read/read pairs skipped, write/write
    pairs skipped for unordered loops, buffered arrays contribute only
    their reads. *)
val analyze : Refs.loop_info -> result

(** Like [analyze], also returning the per-pair provenance. *)
val analyze_traced : Refs.loop_info -> result * trace
