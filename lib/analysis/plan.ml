(** Parallelization strategy decision and DistArray placement
    (paper §4.3 "Parallelization and Scheduling" and §4.4 "Reducing
    Remote Random Access Overhead").

    The decision consumes the dependence vectors of a loop and produces
    a {!t}: how the iteration space is partitioned, how each accessed
    DistArray is placed (locally range-partitioned / rotated between
    workers / served by server processes / replicated), and which
    server-hosted arrays should be bulk-prefetched. *)

type strategy =
  | One_d of { space_dim : int }
  | Two_d of { space_dim : int; time_dim : int }
  | Two_d_unimodular of {
      matrix : Unimodular.matrix;  (** T: transformed = T · original *)
      inverse : Unimodular.matrix;
      space_dim : int;  (** dimension index in the *transformed* space *)
      time_dim : int;
    }
  | Data_parallel
      (** no dependence-preserving partitioning exists; all conflicting
          writes must go through DistArray Buffers *)

type placement =
  | Local_partitioned of { array_dim : int }
      (** range-partitioned along [array_dim], aligned with the space
          dimension: all accesses are local *)
  | Rotated of { array_dim : int }
      (** range-partitioned along [array_dim], aligned with the time
          dimension: partitions rotate between workers each time step *)
  | Replicated  (** read-only and small: broadcast once *)
  | Server  (** random access served by server processes *)

(** One costed strategy candidate considered by {!decide}. *)
type candidate = {
  cand_strategy : strategy;
  cand_placements : (string * placement * float) list;
      (** placement with its per-array communication cost *)
  cand_cost : float;
  cand_chosen : bool;
}

(** Why the unimodular step did or did not fire. *)
type unimodular_outcome =
  | Uni_not_attempted  (** a 1D/2D candidate already existed *)
  | Uni_applied of { matrix : Unimodular.matrix }
  | Uni_rejected_ndims of { matrix : Unimodular.matrix }
      (** a transform exists but the space has < 2 dims, so there is no
          separate time dimension to sequence *)
  | Uni_inapplicable of { blocker : Depvec.t option }
      (** some vector contains -inf or ∞ (paper §4.3 applicability) *)
  | Uni_search_failed  (** applicable, but no skewing basis was found *)

(** The strategy decision tree: every candidate considered with its
    cost, every rejected partitioning dimension with the dependence
    vector that killed it, and the unimodular outcome. *)
type provenance = {
  considered : candidate list;
  rejected_1d : (int * Depvec.t) list;
      (** dimension, first vector with a nonzero distance there *)
  rejected_2d : ((int * int) * Depvec.t) list;
      (** (i, j), first vector nonzero in both *)
  unimodular : unimodular_outcome;
}

type t = {
  strategy : strategy;
  ordered : bool;
  placements : (string * placement) list;
  dep_vectors : Depvec.t list;
  per_array_deps : (string * Depvec.t list) list;
  prefetch_arrays : string list;
      (** server arrays with runtime-dependent subscripts: candidates
          for synthesized bulk prefetching *)
  requires_buffers : string list;
      (** arrays with statically uncapturable writes that the program
          did not declare as buffered — the fallback to data
          parallelism is only sound once these go through buffers *)
  estimated_comm_cost : float;
      (** heuristic communicated-elements-per-pass estimate *)
  loop : Refs.loop_info;
  provenance : provenance;
  dep_trace : Depanalysis.trace;
      (** per-reference-pair provenance from Algorithm 2 *)
}

let strategy_to_string = function
  | One_d { space_dim } -> Printf.sprintf "1D (space dim %d)" space_dim
  | Two_d { space_dim; time_dim } ->
      Printf.sprintf "2D (space dim %d, time dim %d)" space_dim time_dim
  | Two_d_unimodular { matrix; space_dim; time_dim; _ } ->
      Printf.sprintf "2D w/ unimodular T=%s (space dim %d, time dim %d)"
        (Unimodular.matrix_to_string matrix)
        space_dim time_dim
  | Data_parallel -> "data parallelism (DistArray buffers)"

let placement_to_string = function
  | Local_partitioned { array_dim } ->
      Printf.sprintf "local, range-partitioned by dim %d" array_dim
  | Rotated { array_dim } ->
      Printf.sprintf "rotated, range-partitioned by dim %d" array_dim
  | Replicated -> "replicated (read-only)"
  | Server -> "server-hosted"

(* ------------------------------------------------------------------ *)
(* Array access summaries                                              *)
(* ------------------------------------------------------------------ *)

type array_summary = {
  name : string;
  keyed_by : (int * int) list;
      (** (iteration dim, array position) pairs such that *every*
          reference subscripts that position with that loop index *)
  read_only : bool;
  all_static : bool;
  size : float;  (** element count, from materialized dims *)
}

let summarize_arrays (info : Refs.loop_info) ~array_dims : array_summary list =
  let names =
    List.map (fun (r : Refs.ref_info) -> r.array) info.refs
    |> List.sort_uniq String.compare
  in
  List.map
    (fun name ->
      let refs =
        List.filter (fun (r : Refs.ref_info) -> r.array = name) info.refs
      in
      let npos =
        List.fold_left
          (fun acc (r : Refs.ref_info) -> max acc (Array.length r.subs))
          0 refs
      in
      let keyed_by =
        List.concat_map
          (fun pos ->
            let dims_at_pos =
              List.filter_map
                (fun (r : Refs.ref_info) ->
                  if pos < Array.length r.subs then
                    match r.subs.(pos) with
                    | Subscript.Loop_index { dim; _ } -> Some dim
                    | _ -> None
                  else None)
                refs
            in
            match dims_at_pos with
            | d :: _
              when List.length dims_at_pos = List.length refs
                   && List.for_all (Int.equal d) dims_at_pos ->
                [ (d, pos) ]
            | _ -> [])
          (List.init npos Fun.id)
      in
      let read_only =
        List.for_all (fun (r : Refs.ref_info) -> not r.is_write) refs
      in
      let all_static =
        List.for_all (fun (r : Refs.ref_info) -> r.all_static) refs
      in
      let size =
        match array_dims name with
        | Some dims ->
            Array.fold_left (fun acc d -> acc *. float_of_int d) 1.0 dims
        | None -> 1.0
      in
      { name; keyed_by; read_only; all_static; size })
    names

(* ------------------------------------------------------------------ *)
(* Placement + communication cost for a candidate partitioning         *)
(* ------------------------------------------------------------------ *)

(* [iter_count] estimates the number of loop iterations per pass (the
   iteration-space DistArray's entry count); used to price server
   round-trips for arrays with runtime-dependent subscripts. *)
let placements_for ~space_dim ~time_dim ~iter_count summaries =
  List.map
    (fun s ->
      let keyed d = List.assoc_opt d s.keyed_by in
      match keyed space_dim with
      | Some pos -> (s.name, Local_partitioned { array_dim = pos }, 0.0)
      | None -> (
          match Option.bind time_dim keyed with
          | Some pos ->
              (* the whole array crosses the network once per pass *)
              (s.name, Rotated { array_dim = pos }, s.size)
          | None ->
              if s.read_only && s.all_static then
                (s.name, Replicated, 0.0)
              else
                (* a server round-trip (read + write-back) per iteration *)
                (s.name, Server, 2.0 *. iter_count)))
    summaries

let cost_of placements =
  List.fold_left (fun acc (_, _, c) -> acc +. c) 0.0 placements

(* ------------------------------------------------------------------ *)
(* Decision                                                            *)
(* ------------------------------------------------------------------ *)

(** Decide the parallelization for an analyzed loop.

    [array_dims] supplies materialized DistArray dimensions (Orion JIT
    compiles after materialization, so sizes are known).  [iter_count]
    is the iteration-space entry count, used by the cost heuristic. *)
let decide (info : Refs.loop_info) ~array_dims ~iter_count : t =
  let dep, dep_trace = Depanalysis.analyze_traced info in
  let dvecs = dep.all in
  let summaries = summarize_arrays info ~array_dims in
  let non_buffered_nonstatic_writes =
    List.filter_map
      (fun (r : Refs.ref_info) ->
        if
          r.is_write
          && (not r.all_static)
          && not (List.mem r.array info.buffered_arrays)
        then Some r.array
        else None)
      info.refs
    |> List.sort_uniq String.compare
  in
  let prefetch_candidates placements =
    (* server arrays read with runtime-dependent subscripts; buffers
       are per-worker local instances, so they never need prefetching *)
    List.filter_map
      (fun (name, p, _) ->
        match p with
        | Server
          when (not (List.mem name info.buffered_arrays))
               && List.exists
                 (fun (r : Refs.ref_info) ->
                   r.array = name && (not r.is_write) && not r.all_static)
                 info.refs ->
            Some name
        | Server | Local_partitioned _ | Rotated _ | Replicated -> None)
      placements
  in
  let finish strategy placements ~provenance =
    let plan =
      {
        strategy;
        ordered = info.ordered;
        placements = List.map (fun (n, p, _) -> (n, p)) placements;
        dep_vectors = dvecs;
        per_array_deps = dep.per_array;
        prefetch_arrays = prefetch_candidates placements;
        requires_buffers =
          (* only the data-parallel fallback depends on buffering the
             statically-uncapturable writes; a dependence-preserving
             schedule already covers them conservatively *)
          (match strategy with
          | Data_parallel -> non_buffered_nonstatic_writes
          | One_d _ | Two_d _ | Two_d_unimodular _ -> []);
        estimated_comm_cost = cost_of placements;
        loop = info;
        provenance;
        dep_trace;
      }
    in
    Log.info ~src:"plan"
      ~kv:
        [
          ("loop", info.iter_space);
          ("strategy", strategy_to_string strategy);
          ("cost", Log.float plan.estimated_comm_cost);
          ("candidates", Log.int (List.length provenance.considered));
          ("vectors", Log.int (List.length dvecs));
        ]
      "strategy selected";
    plan
  in
  let ndims = info.ndims in
  let one_d_candidates = Depvec.candidate_1d_dims ~ndims dvecs in
  let two_d_candidates = Depvec.candidate_2d_pairs ~ndims dvecs in
  (* the decision tree: which dimensions were ruled out, and by which
     dependence vector *)
  let rejected_1d =
    List.filter_map
      (fun dim ->
        if List.mem dim one_d_candidates then None
        else
          List.find_opt
            (fun (d : Depvec.t) -> not (Depvec.is_zero_elt d.(dim)))
            dvecs
          |> Option.map (fun killer -> (dim, killer)))
      (List.init ndims Fun.id)
  in
  let rejected_2d =
    let dims = List.init ndims Fun.id in
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j ->
            if i >= j || List.mem (i, j) two_d_candidates then None
            else
              List.find_opt
                (fun (d : Depvec.t) ->
                  (not (Depvec.is_zero_elt d.(i)))
                  && not (Depvec.is_zero_elt d.(j)))
                dvecs
              |> Option.map (fun killer -> ((i, j), killer)))
          dims)
      dims
  in
  let candidates =
    List.map
      (fun dim ->
        let pl =
          placements_for ~space_dim:dim ~time_dim:None ~iter_count summaries
        in
        (One_d { space_dim = dim }, pl))
      one_d_candidates
    @ List.concat_map
        (fun (i, j) ->
          List.map
            (fun (s, t) ->
              let pl =
                placements_for ~space_dim:s ~time_dim:(Some t) ~iter_count
                  summaries
              in
              (Two_d { space_dim = s; time_dim = t }, pl))
            [ (i, j); (j, i) ])
        two_d_candidates
  in
  let considered ~chosen_idx =
    List.mapi
      (fun i (s, pl) ->
        {
          cand_strategy = s;
          cand_placements = pl;
          cand_cost = cost_of pl;
          cand_chosen = i = chosen_idx;
        })
      candidates
  in
  let provenance ~chosen_idx ~unimodular =
    { considered = considered ~chosen_idx; rejected_1d; rejected_2d; unimodular }
  in
  match candidates with
  | [] -> (
      let placements =
        (* after a unimodular transform (or in the data-parallel
           fallback), alignment with original array dimensions is lost:
           arrays are served or replicated *)
        placements_for ~space_dim:(-1) ~time_dim:None ~iter_count summaries
      in
      match Unimodular.find_transform ~ndims dvecs with
      | Some matrix when ndims >= 2 ->
          finish
            (Two_d_unimodular
               {
                 matrix;
                 inverse = Unimodular.inverse matrix;
                 time_dim = 0;
                 space_dim = 1;
               })
            placements
            ~provenance:
              (provenance ~chosen_idx:(-1)
                 ~unimodular:(Uni_applied { matrix }))
      | Some matrix ->
          finish Data_parallel placements
            ~provenance:
              (provenance ~chosen_idx:(-1)
                 ~unimodular:(Uni_rejected_ndims { matrix }))
      | None ->
          let unimodular =
            if Depvec.unimodular_applicable dvecs then Uni_search_failed
            else
              Uni_inapplicable
                {
                  blocker =
                    List.find_opt
                      (fun (d : Depvec.t) ->
                        Array.exists
                          (function
                            | Depvec.Neg_inf | Depvec.Any -> true
                            | Depvec.Fin _ | Depvec.Pos_inf -> false)
                          d)
                      dvecs;
                }
          in
          finish Data_parallel placements
            ~provenance:(provenance ~chosen_idx:(-1) ~unimodular))
  | first :: rest ->
      let best =
        List.fold_left
          (fun (best_i, best_s, best_pl, best_cost) (i, (s, pl)) ->
            let c = cost_of pl in
            (* strict < keeps the earliest candidate on ties; 1D
               candidates precede 2D ones, and fewer syncs win ties *)
            if c < best_cost then (i, s, pl, c)
            else (best_i, best_s, best_pl, best_cost))
          (let s, pl = first in
           (0, s, pl, cost_of pl))
          (List.mapi (fun i c -> (i + 1, c)) rest)
      in
      let chosen_idx, s, pl, _ = best in
      finish s pl
        ~provenance:(provenance ~chosen_idx ~unimodular:Uni_not_attempted)

(* ------------------------------------------------------------------ *)
(* Human-readable explanation (the paper's Fig. 6 panel)               *)
(* ------------------------------------------------------------------ *)

let explain fmt (plan : t) =
  let info = plan.loop in
  Fmt.pf fmt "Loop information@.";
  Fmt.pf fmt "  Iteration space: %s (%d dims)@." info.iter_space info.ndims;
  Fmt.pf fmt "  Loop index vector: %s@." info.key_var;
  Fmt.pf fmt "  Iteration ordering: %s@."
    (if info.ordered then "ordered" else "unordered");
  List.iter
    (fun r -> Fmt.pf fmt "  DistArray %s@." (Refs.ref_to_string r))
    info.refs;
  Fmt.pf fmt "  Inherited variables: %s@."
    (String.concat ", " info.inherited);
  (match info.buffered_arrays with
  | [] -> ()
  | bufs ->
      Fmt.pf fmt "  Buffered (writes exempt): %s@." (String.concat ", " bufs));
  Fmt.pf fmt "Dependence vectors@.";
  (match plan.dep_vectors with
  | [] -> Fmt.pf fmt "  (none — all iterations independent)@."
  | ds ->
      List.iter (fun d -> Fmt.pf fmt "  %s@." (Depvec.to_string d)) ds);
  Fmt.pf fmt "Strategy: %s@." (strategy_to_string plan.strategy);
  Fmt.pf fmt "Placements@.";
  List.iter
    (fun (name, p) ->
      Fmt.pf fmt "  %s: %s@." name (placement_to_string p))
    plan.placements;
  (match plan.prefetch_arrays with
  | [] -> ()
  | l -> Fmt.pf fmt "Bulk prefetch: %s@." (String.concat ", " l));
  match plan.requires_buffers with
  | [] -> ()
  | l ->
      Fmt.pf fmt
        "Warning: writes to %s cannot be captured statically; declare \
         DistArray Buffers to run data-parallel@."
        (String.concat ", " l)

let explain_to_string plan = Fmt.str "%a" explain plan
