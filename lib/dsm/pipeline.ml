(** Lazy DistArray creation pipelines (paper §3.1).

    Text-file loading and [map] operations are *recorded* rather than
    evaluated; [materialize] forces the chain, fusing the user-defined
    functions so no intermediate DistArray is allocated (the paper's
    RDD-inspired optimization).  Set operations that shuffle (group-by)
    are evaluated eagerly, as in the paper, so they live on
    {!Dist_array} directly. *)

type 'a source =
  | Text_file of {
      path : string;
      dims : int array;
      parse_line : string -> (int array * 'a) option;
    }
  | Entries of { dims : int array; entries : (int array * 'a) list }
  | Of_array of 'a Dist_array.t

(** A deferred DistArray of element type ['b], built from a source of
    element type ['a] and a fused transformation chain. *)
type ('a, 'b) t = {
  name : string;
  source : 'a source;
  fused : int array -> 'a -> 'b option;
      (** composed map/filter chain: [None] drops the entry *)
  mutable op_count : int;  (** number of recorded operations *)
}

let dims_of_source = function
  | Text_file { dims; _ } -> dims
  | Entries { dims; _ } -> dims
  | Of_array a -> Dist_array.dims a

(** Start a pipeline from a text file with a user-defined parser. *)
let text_file ~name ~dims ~parse_line path : ('a, 'a) t =
  {
    name;
    source = Text_file { path; dims; parse_line };
    fused = (fun _ v -> Some v);
    op_count = 0;
  }

(** Start a pipeline from in-memory entries. *)
let of_entries ~name ~dims entries : ('a, 'a) t =
  {
    name;
    source = Entries { dims; entries };
    fused = (fun _ v -> Some v);
    op_count = 0;
  }

(** Start a pipeline from an existing DistArray. *)
let of_dist_array (a : 'a Dist_array.t) : ('a, 'a) t =
  {
    name = Dist_array.name a;
    source = Of_array a;
    fused = (fun _ v -> Some v);
    op_count = 0;
  }

(** Record a value map (the paper's [Orion.map ... map_values=true]);
    lazy — fused into any previous operations. *)
let map ?name ~f (p : ('a, 'b) t) : ('a, 'c) t =
  {
    name = Option.value name ~default:p.name;
    source = p.source;
    fused = (fun key v -> Option.map (f key) (p.fused key v));
    op_count = p.op_count + 1;
  }

(** Record a filter; dropped entries never materialize. *)
let filter ?name ~f (p : ('a, 'b) t) : ('a, 'b) t =
  {
    p with
    name = Option.value name ~default:p.name;
    fused =
      (fun key v ->
        match p.fused key v with
        | Some v' when f key v' -> Some v'
        | Some _ | None -> None);
    op_count = p.op_count + 1;
  }

(** Number of recorded (fused) operations — observable laziness. *)
let recorded_ops p = p.op_count

(** Force the pipeline: a single pass over the source evaluates the
    whole fused chain into one DistArray. *)
let materialize ~default (p : ('a, 'b) t) : 'b Dist_array.t =
  let dims = dims_of_source p.source in
  (* validate keys against the declared dims here, where we can still
     name the pipeline and the offending key — a malformed input line
     would otherwise surface much later as an anonymous out-of-bounds
     inside Partitioner.histogram *)
  let key_to_string key =
    "("
    ^ String.concat ", " (Array.to_list (Array.map string_of_int key))
    ^ ")"
  in
  let dims_to_string dims =
    String.concat "x" (Array.to_list (Array.map string_of_int dims))
  in
  let check_key key =
    let ok =
      Array.length key = Array.length dims
      && Array.for_all2 (fun k d -> k >= 0 && k < d) key dims
    in
    if not ok then
      invalid_arg
        (Printf.sprintf
           "Pipeline.materialize(%s): key %s out of bounds for declared \
            dims %s"
           p.name (key_to_string key) (dims_to_string dims))
  in
  let collect push =
    match p.source with
    | Text_file { path; parse_line; _ } ->
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            try
              while true do
                let line = input_line ic in
                if String.trim line <> "" then
                  match parse_line line with
                  | Some (key, v) -> push key v
                  | None -> ()
              done
            with End_of_file -> ())
    | Entries { entries; _ } -> List.iter (fun (key, v) -> push key v) entries
    | Of_array a -> Dist_array.iter push a
  in
  let out = ref [] in
  collect (fun key v ->
      check_key key;
      match p.fused key v with
      | Some v' -> out := (key, v') :: !out
      | None -> ());
  Dist_array.of_entries ~name:p.name ~dims ~default (List.rev !out)
