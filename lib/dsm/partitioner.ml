(** Iteration-space and DistArray partitioning (paper §4.3).

    Range partitions along a dimension are described by a boundary
    array [b] of length [parts + 1]: partition [p] covers indices
    [b.(p) .. b.(p+1) - 1].  For skewed sparse data, boundaries are
    chosen from a histogram so partitions carry near-equal entry
    counts; DistArrays also support a [randomize] operation that
    shuffles indices along chosen dimensions. *)

type boundaries = int array

let equal_ranges ~dim_size ~parts : boundaries =
  (* never more partitions than indices, but at least one so an empty
     dimension still yields the valid (degenerate) cover [|0; 0|] *)
  let parts = max 1 (min parts dim_size) in
  Array.init (parts + 1) (fun p -> p * dim_size / parts)

(** Entry count at each index of dimension [dim]. *)
let histogram t ~dim =
  let counts = Array.make (Dist_array.dims t).(dim) 0 in
  Dist_array.iter (fun key _ -> counts.(key.(dim)) <- counts.(key.(dim)) + 1) t;
  counts

(** Boundaries such that each partition holds a near-equal share of the
    total count (greedy prefix cut). *)
let balanced_ranges ~counts ~parts : boundaries =
  let dim_size = Array.length counts in
  let parts = min parts dim_size in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then equal_ranges ~dim_size ~parts
  else begin
    let b = Array.make (parts + 1) dim_size in
    b.(0) <- 0;
    let acc = ref 0 in
    let next_part = ref 1 in
    for i = 0 to dim_size - 1 do
      acc := !acc + counts.(i);
      (* cut after index i once the running share reaches p/parts, but
         leave enough indices for the remaining partitions *)
      while
        !next_part < parts
        && !acc * parts >= total * !next_part
        && i + 1 <= dim_size - (parts - !next_part)
        && i + 1 > b.(!next_part - 1)
      do
        b.(!next_part) <- i + 1;
        incr next_part
      done
    done;
    (* any uncut boundaries collapse at the end *)
    for p = !next_part to parts - 1 do
      b.(p) <- max b.(p - 1) (dim_size - (parts - p))
    done;
    b
  end

(** Boundaries such that each partition holds a near-equal share of
    the total {e weight} (greedy prefix cut over floats).  The float
    analogue of {!balanced_ranges}: weights are typically measured
    per-index costs (count at the index × observed seconds per entry),
    so the cut equalizes predicted time instead of entry count. *)
let weighted_ranges ~(weights : float array) ~parts : boundaries =
  let dim_size = Array.length weights in
  let parts = min parts dim_size in
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 || not (Float.is_finite total) then
    equal_ranges ~dim_size ~parts
  else begin
    let b = Array.make (parts + 1) dim_size in
    b.(0) <- 0;
    let acc = ref 0.0 in
    let next_part = ref 1 in
    for i = 0 to dim_size - 1 do
      acc := !acc +. weights.(i);
      (* cut after index i once the running share reaches p/parts, but
         leave enough indices for the remaining partitions *)
      while
        !next_part < parts
        && !acc *. float_of_int parts >= total *. float_of_int !next_part
        && i + 1 <= dim_size - (parts - !next_part)
        && i + 1 > b.(!next_part - 1)
      do
        b.(!next_part) <- i + 1;
        incr next_part
      done
    done;
    (* any uncut boundaries collapse at the end *)
    for p = !next_part to parts - 1 do
      b.(p) <- max b.(p - 1) (dim_size - (parts - p))
    done;
    b
  end

(** Which partition an index belongs to (binary search). *)
let part_of ~(boundaries : boundaries) idx =
  let lo = ref 0 and hi = ref (Array.length boundaries - 1) in
  (* invariant: boundaries.(!lo) <= idx < boundaries.(!hi) *)
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if idx >= boundaries.(mid) then lo := mid else hi := mid
  done;
  !lo

let num_parts (boundaries : boundaries) = Array.length boundaries - 1

let part_sizes ~(boundaries : boundaries) ~counts =
  Array.init (num_parts boundaries) (fun p ->
      let acc = ref 0 in
      for i = boundaries.(p) to boundaries.(p + 1) - 1 do
        acc := !acc + counts.(i)
      done;
      !acc)

(* ------------------------------------------------------------------ *)
(* Randomize                                                           *)
(* ------------------------------------------------------------------ *)

(* deterministic shuffle (Fisher–Yates with splitmix-style LCG) *)
let permutation ~seed n =
  let state = ref (Int64.of_int (seed lxor 0x2545F491)) in
  let next_int bound =
    state := Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
    let v = Int64.to_int (Int64.shift_right_logical !state 17) in
    v mod bound
  in
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = next_int (i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  perm

(** Randomize a DistArray along [dims_to_shuffle]: returns the permuted
    array plus the permutation used per dimension, so the driver can
    co-permute aligned parameter arrays (paper §4.3 "Dealing with
    Skewed Data Distribution"). *)
let randomize ?(seed = 7) t ~dims_to_shuffle =
  let dims = Dist_array.dims t in
  let perms =
    Array.mapi
      (fun d size ->
        if List.mem d dims_to_shuffle then permutation ~seed:(seed + d) size
        else Array.init size Fun.id)
      dims
  in
  let remapped =
    Dist_array.fold
      (fun acc key v ->
        let key' = Array.mapi (fun d k -> perms.(d).(k)) key in
        (key', v) :: acc)
      [] t
  in
  let t' =
    Dist_array.of_entries
      ~name:(Dist_array.name t ^ "_rand")
      ~dims ~default:t.Dist_array.default remapped
  in
  (t', perms)
