(** Range partitioning for iteration spaces and DistArrays (§4.3):
    histogram-balanced boundaries for skewed data and the [randomize]
    operation. *)

(** Boundaries [b] of length [parts + 1]; partition [p] covers
    [b.(p) .. b.(p+1) - 1]. *)
type boundaries = int array

val equal_ranges : dim_size:int -> parts:int -> boundaries

(** Entry count at each index of dimension [dim]. *)
val histogram : 'a Dist_array.t -> dim:int -> int array

(** Boundaries giving near-equal entry counts per partition. *)
val balanced_ranges : counts:int array -> parts:int -> boundaries

(** Boundaries giving near-equal total weight per partition — the
    float analogue of {!balanced_ranges} for measured per-index costs.
    Falls back to {!equal_ranges} when the total weight is zero or not
    finite. *)
val weighted_ranges : weights:float array -> parts:int -> boundaries

(** Which partition an index belongs to (binary search). *)
val part_of : boundaries:boundaries -> int -> int

val num_parts : boundaries -> int
val part_sizes : boundaries:boundaries -> counts:int array -> int array

(** Deterministic permutation of [0, n). *)
val permutation : seed:int -> int -> int array

(** Randomize a DistArray along [dims_to_shuffle]; returns the permuted
    array and the per-dimension permutations (so aligned parameter
    arrays can be co-permuted). *)
val randomize :
  ?seed:int ->
  'a Dist_array.t ->
  dims_to_shuffle:int list ->
  'a Dist_array.t * int array array
