(** Lazy DistArray creation pipelines (paper §3.1): text-file loading
    and [map]/[filter] are recorded and fused; [materialize] forces the
    chain in a single pass with no intermediate allocation. *)

type ('a, 'b) t

val text_file :
  name:string ->
  dims:int array ->
  parse_line:(string -> (int array * 'a) option) ->
  string ->
  ('a, 'a) t

val of_entries : name:string -> dims:int array -> (int array * 'a) list -> ('a, 'a) t
val of_dist_array : 'a Dist_array.t -> ('a, 'a) t

(** Lazy per-entry map (receives the structured key). *)
val map : ?name:string -> f:(int array -> 'b -> 'c) -> ('a, 'b) t -> ('a, 'c) t

(** Lazy filter; dropped entries never materialize. *)
val filter : ?name:string -> f:(int array -> 'b -> bool) -> ('a, 'b) t -> ('a, 'b) t

(** Number of recorded (fused) operations. *)
val recorded_ops : ('a, 'b) t -> int

(** Force the chain into one DistArray (single pass over the source).

    @raise Invalid_argument if a source entry's key does not match the
    declared dims (wrong arity, negative, or out of range), naming the
    pipeline, the offending key and the dims — malformed input lines
    fail here rather than deep inside partitioning. *)
val materialize : default:'b -> ('a, 'b) t -> 'b Dist_array.t
