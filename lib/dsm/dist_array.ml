(** Distributed Arrays — Orion's DSM abstraction (paper §3.1).

    A DistArray is an N-dimensional matrix, dense or sparse, holding
    elements of any type.  It supports random access via point and set
    queries, iteration, map, and creation from text files with a
    user-defined parser.

    In this reproduction the storage lives in one process; *placement*
    (which partition lives on which simulated worker) is tracked by the
    runtime for communication accounting, exactly because the numerics
    of a serializable schedule do not depend on placement. *)

exception Out_of_bounds of string
exception Dimension_mismatch of string

type 'a storage =
  | Dense of 'a array  (** row-major *)
  | Sparse of {
      table : (int, 'a) Hashtbl.t;  (** linearized key -> value *)
      mutable sorted_keys : int array option;
          (** cache of keys in ascending order, for deterministic
              iteration; invalidated when a new key is inserted *)
    }

type 'a t = {
  name : string;
  dims : int array;
  strides : int array;
  storage : 'a storage;
  default : 'a;
}

(* ------------------------------------------------------------------ *)
(* Keys                                                                *)
(* ------------------------------------------------------------------ *)

let compute_strides dims =
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  strides

let total_size dims = Array.fold_left ( * ) 1 dims

let check_dims name dims =
  if Array.length dims = 0 then
    raise (Dimension_mismatch (name ^ ": zero-dimensional array"));
  Array.iter
    (fun d ->
      if d <= 0 then
        raise (Dimension_mismatch (name ^ ": nonpositive dimension")))
    dims;
  (* linearized keys must fit in an int *)
  let rec check acc = function
    | [] -> ()
    | d :: rest ->
        if acc > max_int / d then
          raise (Dimension_mismatch (name ^ ": dimensions overflow int keys"))
        else check (acc * d) rest
  in
  check 1 (Array.to_list dims)

let linearize t key =
  let n = Array.length t.dims in
  if Array.length key <> n then
    raise
      (Dimension_mismatch
         (Printf.sprintf "%s: key has %d dims, array has %d" t.name
            (Array.length key) n));
  let acc = ref 0 in
  for i = 0 to n - 1 do
    let k = key.(i) in
    if k < 0 || k >= t.dims.(i) then
      raise
        (Out_of_bounds
           (Printf.sprintf "%s: index %d out of bounds for dim %d (size %d)"
              t.name k i t.dims.(i)));
    acc := !acc + (k * t.strides.(i))
  done;
  !acc

let delinearize t lin =
  Array.mapi (fun i _ -> lin / t.strides.(i) mod t.dims.(i)) t.dims

(* ------------------------------------------------------------------ *)
(* Creation                                                            *)
(* ------------------------------------------------------------------ *)

(** Dense array initialized from the structured key. *)
let init_dense ~name ~dims ~f =
  check_dims name dims;
  let strides = compute_strides dims in
  let size = total_size dims in
  let delin lin = Array.mapi (fun i _ -> lin / strides.(i) mod dims.(i)) dims in
  let data = Array.init size (fun lin -> f (delin lin)) in
  { name; dims; strides; storage = Dense data; default = data.(0) }

let fill_dense ~name ~dims value =
  check_dims name dims;
  let strides = compute_strides dims in
  {
    name;
    dims;
    strides;
    storage = Dense (Array.make (total_size dims) value);
    default = value;
  }

let create_sparse ~name ~dims ~default =
  check_dims name dims;
  {
    name;
    dims;
    strides = compute_strides dims;
    storage = Sparse { table = Hashtbl.create 1024; sorted_keys = None };
    default;
  }

let of_entries ~name ~dims ~default entries =
  let t = create_sparse ~name ~dims ~default in
  (match t.storage with
  | Sparse s ->
      List.iter
        (fun (key, v) -> Hashtbl.replace s.table (linearize t key) v)
        entries
  | Dense _ -> assert false);
  t

(* ------------------------------------------------------------------ *)
(* Basic access                                                        *)
(* ------------------------------------------------------------------ *)

let name t = t.name
let dims t = t.dims
let ndims t = Array.length t.dims

let count t =
  match t.storage with
  | Dense d -> Array.length d
  | Sparse s -> Hashtbl.length s.table

let is_sparse t = match t.storage with Dense _ -> false | Sparse _ -> true

type stats = {
  st_cells : int;
  st_stored : int;
  st_nnz : int;
  st_density : float;
  st_sparse : bool;
}

(* One linear scan of the stored entries; callers (the distributed
   policy layer) are expected to take it once per pass, not per
   message.  [st_density] is nnz over the full cell count, guarded so
   zero-dimensional / empty arrays report 0 instead of dividing by
   zero. *)
let stats t =
  let cells = Array.fold_left (fun acc d -> acc * d) 1 t.dims in
  let cells = if Array.length t.dims = 0 then 0 else cells in
  let stored, nnz =
    match t.storage with
    | Dense d ->
        let nnz = ref 0 in
        Array.iter (fun v -> if v <> t.default then incr nnz) d;
        (Array.length d, !nnz)
    | Sparse s ->
        let nnz = ref 0 in
        Hashtbl.iter (fun _ v -> if v <> t.default then incr nnz) s.table;
        (Hashtbl.length s.table, !nnz)
  in
  {
    st_cells = cells;
    st_stored = stored;
    st_nnz = nnz;
    st_density =
      (if cells <= 0 then 0.0 else float_of_int nnz /. float_of_int cells);
    st_sparse = is_sparse t;
  }

(** Element count × 8 bytes: the communication size of a partition is
    derived from this (values are floats or similarly-sized scalars). *)
let bytes_per_element = 8.0

let size_bytes t = float_of_int (count t) *. bytes_per_element

let get t key =
  let lin = linearize t key in
  match t.storage with
  | Dense d -> d.(lin)
  | Sparse s -> ( match Hashtbl.find_opt s.table lin with Some v -> v | None -> t.default)

let get_opt t key =
  let lin = linearize t key in
  match t.storage with
  | Dense d -> Some d.(lin)
  | Sparse s -> Hashtbl.find_opt s.table lin

(* Concurrency contract (OCaml 5 domains, see [Orion.Engine]):
   disjoint-cell writes to [Dense] storage are plain disjoint field
   writes and race-free; [Hashtbl.replace] on an EXISTING sparse key
   mutates the bound cons cell in place and is likewise safe across
   distinct keys — but inserting a NEW key may resize the table, which
   is not.  [enter_parallel]/[exit_parallel] bracket parallel sections;
   inside one, a new-key sparse insert raises instead of corrupting the
   table (apps must pre-populate every sparse key they will write). *)
let parallel_mode = Atomic.make false
let enter_parallel () = Atomic.set parallel_mode true
let exit_parallel () = Atomic.set parallel_mode false

exception Parallel_sparse_insert of string

let check_sparse_insert t lin =
  if Atomic.get parallel_mode then
    raise
      (Parallel_sparse_insert
         (Printf.sprintf
            "DistArray %s: insert of new sparse key %d during a parallel \
             section (pre-populate sparse keys before running in parallel)"
            t.name lin))

let set t key v =
  let lin = linearize t key in
  match t.storage with
  | Dense d -> d.(lin) <- v
  | Sparse s ->
      if not (Hashtbl.mem s.table lin) then begin
        check_sparse_insert t lin;
        s.sorted_keys <- None
      end;
      Hashtbl.replace s.table lin v

let update t key f =
  let lin = linearize t key in
  match t.storage with
  | Dense d -> d.(lin) <- f d.(lin)
  | Sparse s ->
      let cur =
        match Hashtbl.find_opt s.table lin with
        | Some v -> v
        | None ->
            check_sparse_insert t lin;
            s.sorted_keys <- None;
            t.default
      in
      Hashtbl.replace s.table lin (f cur)

(* ------------------------------------------------------------------ *)
(* Iteration (deterministic order)                                     *)
(* ------------------------------------------------------------------ *)

let sorted_keys t =
  match t.storage with
  | Dense d -> Array.init (Array.length d) Fun.id
  | Sparse s -> (
      match s.sorted_keys with
      | Some k -> k
      | None ->
          let keys = Array.make (Hashtbl.length s.table) 0 in
          let i = ref 0 in
          Hashtbl.iter
            (fun k _ ->
              keys.(!i) <- k;
              incr i)
            s.table;
          Array.sort compare keys;
          s.sorted_keys <- Some keys;
          keys)

let value_of_lin t lin =
  match t.storage with
  | Dense d -> d.(lin)
  | Sparse s -> (
      match Hashtbl.find_opt s.table lin with Some v -> v | None -> t.default)

(** Iterate over stored entries in ascending key order (deterministic
    across runs, so serial executions are reproducible). *)
let iter f t =
  Array.iter (fun lin -> f (delinearize t lin) (value_of_lin t lin)) (sorted_keys t)

let fold f acc t =
  Array.fold_left
    (fun acc lin -> f acc (delinearize t lin) (value_of_lin t lin))
    acc (sorted_keys t)

(** Stored entries, ascending key order. *)
let entries t =
  Array.map (fun lin -> (delinearize t lin, value_of_lin t lin)) (sorted_keys t)

(* ------------------------------------------------------------------ *)
(* Transformations                                                     *)
(* ------------------------------------------------------------------ *)

let map ~name ~f t =
  match t.storage with
  | Dense d ->
      {
        t with
        name;
        storage = Dense (Array.map f d);
        default = f t.default;
      }
  | Sparse s ->
      let table = Hashtbl.create (Hashtbl.length s.table) in
      Hashtbl.iter (fun k v -> Hashtbl.replace table k (f v)) s.table;
      {
        t with
        name;
        storage = Sparse { table; sorted_keys = s.sorted_keys };
        default = f t.default;
      }

let map_entries ~name ~default ~f t =
  let acc = fold (fun acc key v -> (key, v) :: acc) [] t in
  of_entries ~name ~dims:t.dims ~default
    (List.rev_map (fun (key, v) -> (key, f key v)) acc)

(** Group stored entries by their index along [dim]; returns an
    association from the index value to that slice's entries (the
    paper's groupBy, evaluated eagerly). *)
let group_by ~dim t =
  let groups = Hashtbl.create 64 in
  iter
    (fun key v ->
      let g = key.(dim) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt groups g) in
      Hashtbl.replace groups g ((key, v) :: cur))
    t;
  Hashtbl.fold (fun g l acc -> (g, List.rev l) :: acc) groups []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Set queries on float arrays (for the interpreter and apps)          *)
(* ------------------------------------------------------------------ *)

(** Extract the 1-D slice of a float DistArray where exactly one
    subscript is a range/All and the rest are points, e.g. [W\[:, j\]]. *)
let slice_vec (t : float t) (subs : Orion_lang.Value.concrete_sub array) :
    float array =
  let n = Array.length t.dims in
  if Array.length subs <> n then
    raise (Dimension_mismatch (t.name ^ ": bad subscript arity"));
  let var_dim = ref (-1) in
  let lo = Array.make n 0 in
  let hi = Array.make n 0 in
  Array.iteri
    (fun i s ->
      match s with
      | Orion_lang.Value.Cpoint p ->
          lo.(i) <- p;
          hi.(i) <- p
      | Orion_lang.Value.Crange (a, b) ->
          if !var_dim >= 0 then
            raise (Dimension_mismatch (t.name ^ ": multiple range subscripts"));
          var_dim := i;
          lo.(i) <- a;
          hi.(i) <- b
      | Orion_lang.Value.Call_dim ->
          if !var_dim >= 0 then
            raise (Dimension_mismatch (t.name ^ ": multiple range subscripts"));
          var_dim := i;
          lo.(i) <- 0;
          hi.(i) <- t.dims.(i) - 1)
    subs;
  if !var_dim < 0 then [| get t lo |]
  else
    let d = !var_dim in
    Array.init
      (hi.(d) - lo.(d) + 1)
      (fun k ->
        let key = Array.copy lo in
        key.(d) <- lo.(d) + k;
        get t key)

let set_slice_vec (t : float t) (subs : Orion_lang.Value.concrete_sub array)
    (v : float array) =
  let n = Array.length t.dims in
  let var_dim = ref (-1) in
  let lo = Array.make n 0 in
  let hi = Array.make n 0 in
  Array.iteri
    (fun i s ->
      match s with
      | Orion_lang.Value.Cpoint p ->
          lo.(i) <- p;
          hi.(i) <- p
      | Orion_lang.Value.Crange (a, b) ->
          var_dim := i;
          lo.(i) <- a;
          hi.(i) <- b
      | Orion_lang.Value.Call_dim ->
          var_dim := i;
          lo.(i) <- 0;
          hi.(i) <- t.dims.(i) - 1)
    subs;
  if !var_dim < 0 then set t lo v.(0)
  else begin
    let d = !var_dim in
    let len = hi.(d) - lo.(d) + 1 in
    if Array.length v <> len then
      raise (Dimension_mismatch (t.name ^ ": slice length mismatch"));
    for k = 0 to len - 1 do
      let key = Array.copy lo in
      key.(d) <- lo.(d) + k;
      set t key v.(k)
    done
  end

(* ------------------------------------------------------------------ *)
(* Interpreter bridge                                                  *)
(* ------------------------------------------------------------------ *)

(** Expose a float DistArray to interpreted OrionScript code.  Optional
    [on_get]/[on_set] hooks let the runtime charge communication or
    record accesses.  When neither hook is supplied, the extern also
    carries {!Orion_lang.Value.fast_access} point accessors so compiled
    loop bodies bypass the boxed path entirely (a hooked extern must
    not, because the fast path would skip the hooks). *)
let to_extern ?on_get ?on_set (t : float t) : Orion_lang.Value.extern =
  let module V = Orion_lang.Value in
  let fast =
    match (on_get, on_set) with
    | None, None ->
        (* [get]/[set] linearize (and bounds-check) immediately and do
           not retain the key array, so callers may reuse a key buffer *)
        Some { V.fa_get = get t; fa_set = set t }
    | _ -> None
  in
  let on_get = Option.value on_get ~default:(fun _ -> ()) in
  let on_set = Option.value on_set ~default:(fun _ -> ()) in
  let all_points subs =
    Array.for_all (function V.Cpoint _ -> true | _ -> false) subs
  in
  {
    V.ex_name = t.name;
    ex_dims = t.dims;
    ex_get =
      (fun subs ->
        on_get subs;
        if all_points subs then
          V.Vfloat
            (get t (Array.map (function V.Cpoint p -> p | _ -> 0) subs))
        else V.Vvec (slice_vec t subs));
    ex_set =
      (fun subs v ->
        on_set subs;
        match v with
        | V.Vfloat f when all_points subs ->
            set t (Array.map (function V.Cpoint p -> p | _ -> 0) subs) f
        | V.Vint i when all_points subs ->
            set t
              (Array.map (function V.Cpoint p -> p | _ -> 0) subs)
              (float_of_int i)
        | _ -> set_slice_vec t subs (V.to_vec v));
    ex_iter = (fun f -> iter (fun key v -> f key (V.Vfloat v)) t);
    ex_count = (fun () -> count t);
    ex_fast = fast;
  }

(** Expose a sparse DistArray with arbitrary element type by converting
    values with [to_value] (iteration only — e.g. SLR samples). *)
let to_iter_extern ~to_value (t : 'a t) : Orion_lang.Value.extern =
  let module V = Orion_lang.Value in
  {
    V.ex_name = t.name;
    ex_dims = t.dims;
    ex_get = (fun _ -> raise (Out_of_bounds (t.name ^ ": iteration only")));
    ex_set = (fun _ _ -> raise (Out_of_bounds (t.name ^ ": iteration only")));
    ex_iter = (fun f -> iter (fun key v -> f key (to_value v)) t);
    ex_count = (fun () -> count t);
    ex_fast = None;
  }

(* ------------------------------------------------------------------ *)
(* Partition serialization                                             *)
(* ------------------------------------------------------------------ *)

(* One self-describing, wire/disk-safe slice of a DistArray.  This is
   the single serialized form shared by checkpointing and the
   distributed runtime (lib/net): entries are (linearized key, value)
   pairs in ascending key order, so round-tripping is deterministic and
   float values survive bitwise (Marshal writes their exact bits). *)
type 'a partition = {
  pt_array : string;  (** source DistArray name *)
  pt_dims : int array;
  pt_default : 'a;
  pt_sparse : bool;  (** storage kind of the source array *)
  pt_entries : (int * 'a) array;
      (** (linearized key, value), ascending key order *)
}

(** Serialize the entries of [t] selected by [select] (default: all
    stored entries; dense arrays store every cell) as a partition. *)
let to_partition ?select (t : 'a t) : 'a partition =
  let keep =
    match select with
    | None -> fun _ _ -> true
    | Some f -> fun lin v -> f (delinearize t lin) v
  in
  let out = ref [] in
  let n = ref 0 in
  Array.iter
    (fun lin ->
      let v = value_of_lin t lin in
      if keep lin v then begin
        out := (lin, v) :: !out;
        incr n
      end)
    (sorted_keys t);
  let entries = Array.make !n (0, t.default) in
  List.iteri (fun i e -> entries.(!n - 1 - i) <- e) !out;
  {
    pt_array = t.name;
    pt_dims = Array.copy t.dims;
    pt_default = t.default;
    pt_sparse = is_sparse t;
    pt_entries = entries;
  }

(** Write a partition's entries into [t] (point sets; sparse arrays may
    gain keys outside parallel sections).
    @raise Dimension_mismatch when names or dims disagree. *)
let apply_partition (t : 'a t) (p : 'a partition) =
  if p.pt_array <> t.name then
    raise
      (Dimension_mismatch
         (Printf.sprintf "apply_partition: partition of %s applied to %s"
            p.pt_array t.name));
  if p.pt_dims <> t.dims then
    raise
      (Dimension_mismatch
         (Printf.sprintf "%s: partition dims do not match array dims" t.name));
  Array.iter (fun (lin, v) -> set t (delinearize t lin) v) p.pt_entries

(** Materialize a fresh DistArray holding exactly a partition's
    entries, with the source's storage kind (dense cells missing from
    the partition hold [pt_default]). *)
let of_partition ?name (p : 'a partition) : 'a t =
  let name = Option.value name ~default:p.pt_array in
  let t =
    if p.pt_sparse then
      create_sparse ~name ~dims:(Array.copy p.pt_dims) ~default:p.pt_default
    else fill_dense ~name ~dims:(Array.copy p.pt_dims) p.pt_default
  in
  Array.iter (fun (lin, v) -> set t (delinearize t lin) v) p.pt_entries;
  t

let partition_to_bytes (p : 'a partition) : bytes = Marshal.to_bytes p []

let partition_of_bytes (b : bytes) : 'a partition =
  (Marshal.from_bytes b 0 : 'a partition)

(** Serialized size in bytes — the unit of the distributed runtime's
    per-array communication accounting. *)
let partition_size_bytes p = Bytes.length (partition_to_bytes p)

(* ------------------------------------------------------------------ *)
(* Text-file loading and checkpointing                                 *)
(* ------------------------------------------------------------------ *)

(** Load a sparse DistArray from a text file with a user-defined
    per-line parser (paper: [Orion.text_file(path, parse_line)]). *)
let text_file ~name ~dims ~default ~parse_line path =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match parse_line line with
         | Some (key, v) -> entries := (key, v) :: !entries
         | None -> ()
     done
   with End_of_file -> close_in ic);
  of_entries ~name ~dims ~default (List.rev !entries)

(** Checkpoint to disk (eagerly evaluated; paper §4.3 fault tolerance).
    The on-disk format is a whole-array {!partition}, the same
    serialization the distributed runtime ships over sockets. *)
let checkpoint t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Marshal.to_channel oc (to_partition t) [])

let restore ~name path : 'a t =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_partition ~name (Marshal.from_channel ic : 'a partition))
