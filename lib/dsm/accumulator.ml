(** Accumulators (paper §3.4).

    An accumulator variable has one instance per worker, retained
    across for-loop executions; the driver aggregates all instances
    with a user-defined commutative and associative operator and can
    reset them. *)

type 'a t = {
  name : string;
  init : 'a;
  instances : 'a array;  (** one per worker *)
}

let create ~name ~num_workers ~init =
  { name; init; instances = Array.make num_workers init }

let add t ~worker ~op v =
  t.instances.(worker) <- op t.instances.(worker) v

let set t ~worker v = t.instances.(worker) <- v

let get t ~worker = t.instances.(worker)

(** Aggregate all workers' instances with [op] (the paper's
    [Orion.get_aggregated_value]).  Pure aggregation; the runtime
    charges the all-reduce communication separately.

    Every per-worker instance already starts from [init], so the fold
    seeds from the instances themselves — seeding it with [init] again
    would count a non-neutral [init] (a sum seeded nonzero, a running
    max seeded with a floor) [num_workers + 1] times.  Callers should
    still pick [init] as the identity of [op] whenever more than one
    worker contributes, since each of the [num_workers] instances
    incorporates it once. *)
let aggregated t ~op =
  match Array.length t.instances with
  | 0 -> t.init
  | n ->
      let acc = ref t.instances.(0) in
      for w = 1 to n - 1 do
        acc := op !acc t.instances.(w)
      done;
      !acc

let reset t = Array.fill t.instances 0 (Array.length t.instances) t.init
