(** A Bösen-style parameter server (Wei et al., SoCC'15), used as the
    data-parallel baseline substrate and as the server tier for
    DistArrays that cannot be locality-partitioned.

    Parameters are a flat float vector sharded across server processes
    (one per machine).  Each worker holds a full local cache; reads hit
    the cache, writes accumulate per-worker deltas that are also folded
    into the worker's own cache (a worker always sees its own updates —
    SGD runs locally sequentially).  [sync] is the per-data-pass
    synchronization barrier: deltas are summed into the master copy and
    caches refresh.  [communicate_round] implements Bösen's managed
    communication: under a bandwidth budget, the largest-magnitude
    pending deltas are sent early and fresh values flow back. *)

type t = {
  name : string;
  cluster : Orion_sim.Cluster.t;
  master : float array;
  caches : float array array;  (** per-worker cached copy *)
  deltas : (int, float) Hashtbl.t array;  (** per-worker pending updates *)
  bytes_per_entry_up : float;  (** key + value *)
  bytes_per_entry_down : float;
}

let create ~cluster ~name ~size ~init =
  let master = Array.init size init in
  let workers = Orion_sim.Cluster.num_workers cluster in
  {
    name;
    cluster;
    master;
    caches = Array.init workers (fun _ -> Array.copy master);
    deltas = Array.init workers (fun _ -> Hashtbl.create 1024);
    bytes_per_entry_up = 12.0;
    bytes_per_entry_down = 12.0;
  }

let size t = Array.length t.master
let master t = t.master

(** Read parameter [i] from worker [w]'s cache. *)
let read t ~worker i = t.caches.(worker).(i)

(** Apply delta [u] to parameter [i] from worker [w]: visible to [w]
    immediately, to others only after communication. *)
let update t ~worker i u =
  t.caches.(worker).(i) <- t.caches.(worker).(i) +. u;
  let tbl = t.deltas.(worker) in
  (match Hashtbl.find_opt tbl i with
  | None -> Hashtbl.replace tbl i u
  | Some prev -> Hashtbl.replace tbl i (prev +. u));
  ()

let pending_updates t ~worker = Hashtbl.length t.deltas.(worker)

(* apply one worker's pending deltas to the master copy *)
let apply_deltas_to_master t ~worker =
  let items =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.deltas.(worker) []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter (fun (k, v) -> t.master.(k) <- t.master.(k) +. v) items;
  Hashtbl.reset t.deltas.(worker);
  List.length items

(** Per-pass synchronization: all workers push their deltas, the master
    aggregates, caches refresh.  [cache_entries] bounds the number of
    entries each worker re-fetches (defaults to the full model). *)
let sync ?cache_entries t =
  let cluster = t.cluster in
  let workers = Orion_sim.Cluster.num_workers cluster in
  let down_entries =
    float_of_int (Option.value cache_entries ~default:(size t))
  in
  (* communication: per-worker upload of pending deltas, then download
     of refreshed cache entries, modeled as an all-reduce-like phase *)
  let max_pending =
    let m = ref 0 in
    for w = 0 to workers - 1 do
      m := max !m (pending_updates t ~worker:w)
    done;
    !m
  in
  let bytes_per_worker =
    (float_of_int max_pending *. t.bytes_per_entry_up)
    +. (down_entries *. t.bytes_per_entry_down)
  in
  Orion_sim.Cluster.all_reduce cluster ~label:t.name ~bytes_per_worker;
  for w = 0 to workers - 1 do
    ignore (apply_deltas_to_master t ~worker:w)
  done;
  for w = 0 to workers - 1 do
    Array.blit t.master 0 t.caches.(w) 0 (size t)
  done

(** One managed-communication round (Bösen CM): each worker sends its
    [k] largest-magnitude pending deltas ([k] from the per-round byte
    budget), the master applies them, and fresh values for those
    entries propagate to all caches.  Returns the total bytes sent. *)
let communicate_round t ~budget_bytes_per_worker =
  let cluster = t.cluster in
  let workers = Orion_sim.Cluster.num_workers cluster in
  let per_entry = t.bytes_per_entry_up +. t.bytes_per_entry_down in
  let k = int_of_float (budget_bytes_per_worker /. per_entry) in
  if k <= 0 then 0.0
  else begin
    let touched = Hashtbl.create 1024 in
    let total_bytes = ref 0.0 in
    for w = 0 to workers - 1 do
      let items =
        Hashtbl.fold (fun i v acc -> (i, v) :: acc) t.deltas.(w) []
        |> List.sort (fun (_, a) (_, b) -> compare (abs_float b) (abs_float a))
      in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      let chosen = take k items in
      List.iter
        (fun (i, v) ->
          t.master.(i) <- t.master.(i) +. v;
          Hashtbl.remove t.deltas.(w) i;
          Hashtbl.replace touched i ())
        chosen;
      let bytes = float_of_int (List.length chosen) *. per_entry in
      total_bytes := !total_bytes +. bytes;
      (* early communication happens in the background; charge the
         network (recorder) and a small marshalling cost to the worker.
         The background transfer is traced without advancing the clock
         — it overlaps the worker's ongoing computation. *)
      Orion_sim.Cluster.compute_raw cluster ~worker:w
        ~category:Orion_sim.Trace.Marshal ~label:t.name
        (Orion_sim.Cost_model.marshal_time
           cluster.Orion_sim.Cluster.cost bytes);
      let transfer_sec =
        Orion_sim.Cost_model.transfer_time
          cluster.Orion_sim.Cluster.cost bytes
      in
      Orion_sim.Trace.add cluster.Orion_sim.Cluster.trace ~label:t.name
        ~bytes ~worker:w ~category:Orion_sim.Trace.Transfer
        ~start_sec:(Orion_sim.Cluster.clock cluster w)
        ~duration_sec:transfer_sec;
      Orion_sim.Recorder.record cluster.Orion_sim.Cluster.recorder
        ~start_sec:(Orion_sim.Cluster.clock cluster w)
        ~duration_sec:transfer_sec ~bytes
    done;
    (* fresh values flow back to every cache for the touched entries,
       preserving each worker's still-pending local deltas *)
    Hashtbl.iter
      (fun i () ->
        for w = 0 to workers - 1 do
          let pending =
            Option.value (Hashtbl.find_opt t.deltas.(w) i) ~default:0.0
          in
          t.caches.(w).(i) <- t.master.(i) +. pending
        done)
      touched;
    !total_bytes
  end

(** A server-side random access (no cache): charges a network round
    trip — the §6.3 no-prefetch path. *)
let random_access_read t ~worker i =
  let cluster = t.cluster in
  let lat = cluster.Orion_sim.Cluster.cost.network_latency_sec in
  Orion_sim.Cluster.compute_raw cluster ~worker
    ~category:Orion_sim.Trace.Idle ~label:t.name (2.0 *. lat);
  t.master.(i)

(** A bulk prefetch of [n] entries: one round trip plus streaming. *)
let bulk_fetch t ~worker ~n =
  let cluster = t.cluster in
  let bytes = float_of_int n *. t.bytes_per_entry_down in
  let cost = cluster.Orion_sim.Cluster.cost in
  let lat = cost.network_latency_sec in
  let transfer_sec = Orion_sim.Cost_model.transfer_time cost bytes in
  (* record the stream at its start (pre-advance clock), not after the
     round trip completed *)
  let start = Orion_sim.Cluster.clock cluster worker +. (2.0 *. lat) in
  Orion_sim.Recorder.record cluster.Orion_sim.Cluster.recorder
    ~start_sec:start ~duration_sec:transfer_sec ~bytes;
  Orion_sim.Cluster.compute_raw cluster ~worker
    ~category:Orion_sim.Trace.Transfer ~label:t.name ~bytes
    ((2.0 *. lat) +. transfer_sec);
  Orion_sim.Cluster.compute_raw cluster ~worker
    ~category:Orion_sim.Trace.Marshal ~label:t.name
    (Orion_sim.Cost_model.marshal_time cost bytes)
