(** Distributed Arrays — Orion's DSM abstraction (paper §3.1):
    N-dimensional dense or sparse matrices with point/set queries,
    deterministic iteration, map/group-by, text-file loading and
    checkpointing.

    Storage lives in one process; placement across simulated workers is
    tracked by the runtime for communication accounting (serializable
    schedules make the numerics placement-independent). *)

exception Out_of_bounds of string
exception Dimension_mismatch of string

type 'a storage =
  | Dense of 'a array  (** row-major *)
  | Sparse of {
      table : (int, 'a) Hashtbl.t;
      mutable sorted_keys : int array option;
    }

type 'a t = {
  name : string;
  dims : int array;
  strides : int array;
  storage : 'a storage;
  default : 'a;
}

(** {1 Keys} *)

(** Row-major linearization of a structured key.
    @raise Out_of_bounds / Dimension_mismatch on bad keys. *)
val linearize : 'a t -> int array -> int

val delinearize : 'a t -> int -> int array

(** {1 Creation} *)

(** Dense array initialized from the structured key. *)
val init_dense : name:string -> dims:int array -> f:(int array -> 'a) -> 'a t

val fill_dense : name:string -> dims:int array -> 'a -> 'a t
val create_sparse : name:string -> dims:int array -> default:'a -> 'a t
val of_entries :
  name:string -> dims:int array -> default:'a -> (int array * 'a) list -> 'a t

(** {1 Access} *)

val name : 'a t -> string
val dims : 'a t -> int array
val ndims : 'a t -> int

(** Stored entries (dense: every cell). *)
val count : 'a t -> int

val is_sparse : 'a t -> bool

(** Density / occupancy statistics, the input to the distributed
    communication-policy choice ([lib/net]'s [Policy]). *)
type stats = {
  st_cells : int;  (** product of [dims] (0 for zero-dim arrays) *)
  st_stored : int;  (** stored entries (dense: every cell) *)
  st_nnz : int;  (** stored entries whose value differs from default *)
  st_density : float;
      (** [nnz / cells]; 0 when the array has no cells (no division by
          zero on empty arrays) *)
  st_sparse : bool;
}

(** One linear scan of the stored entries.  Intended to be sampled
    once per pass, not per message. *)
val stats : 'a t -> stats

val bytes_per_element : float
val size_bytes : 'a t -> float

(** {1 Parallel sections}

    Disjoint-cell writes to dense storage (and to {e existing} sparse
    keys) are race-free across OCaml 5 domains; inserting a new sparse
    key may resize the hash table and is not.  [enter_parallel] arms a
    process-wide guard: while armed, a new-key sparse insert raises
    {!Parallel_sparse_insert} instead of corrupting the table.  Apps
    must pre-populate every sparse key they write in parallel. *)

exception Parallel_sparse_insert of string

val enter_parallel : unit -> unit
val exit_parallel : unit -> unit

val get : 'a t -> int array -> 'a
val get_opt : 'a t -> int array -> 'a option
val set : 'a t -> int array -> 'a -> unit
val update : 'a t -> int array -> ('a -> 'a) -> unit

(** {1 Iteration — ascending key order, deterministic across runs} *)

val sorted_keys : 'a t -> int array
val iter : (int array -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> int array -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val entries : 'a t -> (int array * 'a) array

(** {1 Transformations} *)

val map : name:string -> f:('a -> 'b) -> 'a t -> 'b t
val map_entries :
  name:string -> default:'b -> f:(int array -> 'a -> 'b) -> 'a t -> 'b t

(** Group stored entries by their index along [dim] (the paper's
    eagerly-evaluated groupBy). *)
val group_by : dim:int -> 'a t -> (int * (int array * 'a) list) list

(** {1 Set queries on float arrays} *)

(** Extract a 1-D slice where at most one subscript is a range. *)
val slice_vec : float t -> Orion_lang.Value.concrete_sub array -> float array

val set_slice_vec :
  float t -> Orion_lang.Value.concrete_sub array -> float array -> unit

(** {1 Interpreter bridge} *)

(** Expose a float DistArray to interpreted code; the hooks let the
    runtime charge or record accesses. *)
val to_extern :
  ?on_get:(Orion_lang.Value.concrete_sub array -> unit) ->
  ?on_set:(Orion_lang.Value.concrete_sub array -> unit) ->
  float t ->
  Orion_lang.Value.extern

(** Iteration-only extern for arbitrary element types. *)
val to_iter_extern :
  to_value:('a -> Orion_lang.Value.t) -> 'a t -> Orion_lang.Value.extern

(** {1 Partition serialization}

    The single serialized form of (a slice of) a DistArray, shared by
    checkpointing and the distributed runtime ([lib/net]): entries are
    (linearized key, value) pairs in ascending key order; [Marshal]
    preserves float bits exactly, so round trips are bitwise. *)

type 'a partition = {
  pt_array : string;  (** source DistArray name *)
  pt_dims : int array;
  pt_default : 'a;
  pt_sparse : bool;  (** storage kind of the source array *)
  pt_entries : (int * 'a) array;
      (** (linearized key, value), ascending key order *)
}

(** Entries of [t] selected by [select] (structured key, value; default
    all stored entries) as a partition. *)
val to_partition : ?select:(int array -> 'a -> bool) -> 'a t -> 'a partition

(** Write a partition's entries into an existing array.
    @raise Dimension_mismatch when names or dims disagree. *)
val apply_partition : 'a t -> 'a partition -> unit

(** A fresh DistArray holding exactly the partition's entries, with the
    source's storage kind. *)
val of_partition : ?name:string -> 'a partition -> 'a t

val partition_to_bytes : 'a partition -> bytes
val partition_of_bytes : bytes -> 'a partition

(** Serialized size — the unit of per-array communication accounting. *)
val partition_size_bytes : 'a partition -> int

(** {1 Text files and checkpointing} *)

(** Load a sparse DistArray with a user-defined per-line parser
    ([None] skips the line). *)
val text_file :
  name:string ->
  dims:int array ->
  default:'a ->
  parse_line:(string -> (int array * 'a) option) ->
  string ->
  'a t

(** Eagerly write to disk (paper §4.3 fault tolerance). *)
val checkpoint : 'a t -> string -> unit

val restore : name:string -> string -> 'a t
