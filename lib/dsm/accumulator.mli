(** Accumulators (paper §3.4): one instance per worker, retained across
    loop executions, aggregated with a user-defined commutative and
    associative operator. *)

type 'a t = {
  name : string;
  init : 'a;
  instances : 'a array;
}

val create : name:string -> num_workers:int -> init:'a -> 'a t
val add : 'a t -> worker:int -> op:('a -> 'a -> 'a) -> 'a -> unit
val set : 'a t -> worker:int -> 'a -> unit
val get : 'a t -> worker:int -> 'a

(** The paper's [Orion.get_aggregated_value]: folds the per-worker
    instances with [op].  Since every instance starts from [init],
    [init] itself is not folded in again; it should be the identity of
    [op] when more than one worker contributes (each instance
    incorporates it once). *)
val aggregated : 'a t -> op:('a -> 'a -> 'a) -> 'a

val reset : 'a t -> unit
