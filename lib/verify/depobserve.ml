(** Dynamic dependence reconstruction: turn an access log into observed
    flow / anti / output dependence edges over the loop iteration
    space.

    Mirroring Algorithm 2's skip rules, read/read pairs never produce
    edges, output (write/write) edges are produced only for [ordered]
    loops (unordered loops assume commutative updates, so write/write
    pairs are exempt from the static analysis too), and arrays written
    through DistArray Buffers are exempt entirely. *)

type kind = Flow | Anti | Output

let kind_to_string = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"

type edge = {
  e_array : string;
  e_kind : kind;
  e_key : int array;  (** witness element both iterations touch *)
  e_src : int array;  (** earlier iteration (serial order) *)
  e_dst : int array;  (** later iteration *)
}

(** Element-wise iteration distance [dst - src]; always
    lexicographically positive because the observation pass runs in
    ascending iteration order. *)
let distance e = Array.init (Array.length e.e_src) (fun i -> e.e_dst.(i) - e.e_src.(i))

let iter_key (a : int array) =
  String.concat "," (Array.to_list (Array.map string_of_int a))

(* per-element state while scanning the log *)
type cell = {
  mutable last_write : int array option;
  mutable reads_since : int array list;  (** distinct iterations, newest first *)
}

(** Reconstruct observed dependence edges from [log].  Edges are
    deduplicated on (array, kind, src, dst); each keeps one witness
    element key.  [skip_arrays] (buffered arrays) contribute nothing. *)
let edges ?(ordered = false) ?(skip_arrays = []) (log : Access_log.t) :
    edge list =
  let cells : (string, cell) Hashtbl.t = Hashtbl.create 1024 in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  let out = ref [] in
  let emit ~array ~kind ~key ~src ~dst =
    if src != dst && iter_key src <> iter_key dst then begin
      let id =
        Printf.sprintf "%s|%s|%s|%s" array (kind_to_string kind)
          (iter_key src) (iter_key dst)
      in
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        out :=
          { e_array = array; e_kind = kind; e_key = key; e_src = src; e_dst = dst }
          :: !out
      end
    end
  in
  Array.iter
    (fun (ev : Access_log.event) ->
      if not (List.mem ev.Access_log.ev_array skip_arrays) then begin
        let ck =
          ev.Access_log.ev_array ^ "@" ^ iter_key ev.Access_log.ev_key
        in
        let cell =
          match Hashtbl.find_opt cells ck with
          | Some c -> c
          | None ->
              let c = { last_write = None; reads_since = [] } in
              Hashtbl.add cells ck c;
              c
        in
        let array = ev.Access_log.ev_array in
        let key = ev.Access_log.ev_key in
        let iter = ev.Access_log.ev_iter in
        if ev.Access_log.ev_write then begin
          List.iter
            (fun r -> emit ~array ~kind:Anti ~key ~src:r ~dst:iter)
            cell.reads_since;
          (match cell.last_write with
          | Some w when ordered -> emit ~array ~kind:Output ~key ~src:w ~dst:iter
          | Some _ | None -> ());
          cell.last_write <- Some iter;
          cell.reads_since <- []
        end
        else begin
          (match cell.last_write with
          | Some w -> emit ~array ~kind:Flow ~key ~src:w ~dst:iter
          | None -> ());
          (* keep distinct iterations only: repeated reads of the same
             element by one iteration add nothing *)
          match cell.reads_since with
          | r :: _ when r == iter || iter_key r = iter_key iter -> ()
          | _ -> cell.reads_since <- iter :: cell.reads_since
        end
      end)
    (Access_log.events log);
  List.rev !out

(** Distinct observed distance vectors per array, each with a witness
    edge (the offending iteration pair to report on a miss). *)
let vectors_by_array (edges : edge list) : (string * (int array * edge) list) list
    =
  let tbl : (string, (int array * edge) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  List.iter
    (fun e ->
      let d = distance e in
      let entry =
        match Hashtbl.find_opt tbl e.e_array with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.add tbl e.e_array r;
            order := e.e_array :: !order;
            r
      in
      if not (List.exists (fun (d', _) -> d' = d) !entry) then
        entry := (d, e) :: !entry)
    edges;
  List.rev_map
    (fun name -> (name, List.rev !(Hashtbl.find tbl name)))
    !order

let edge_to_string e =
  Printf.sprintf "%s %s: (%s) -> (%s) at [%s], distance (%s)" e.e_array
    (kind_to_string e.e_kind) (iter_key e.e_src) (iter_key e.e_dst)
    (iter_key e.e_key)
    (iter_key (distance e))
