(** Dynamic dependence validation: observe every DistArray element
    access during a serial run, reconstruct the dependences that
    actually happened, and hold the static analysis and the generated
    schedule to them.

    Three layers, all reported per app:

    - {b soundness} — every observed dependence vector must be covered
      by a static vector from {!Orion_analysis.Depanalysis.analyze}
      (misses name the offending iteration pair and element);
    - {b races} — no observed dependence edge may connect blocks the
      schedule runs concurrently (or, for ordered loops, in reversed
      order);
    - {b differential} — the scheduled execution and an adversarial
      dependence-respecting reordering of it must produce element-wise
      equal model arrays (bitwise, or within the app's tolerance for
      buffered floating-point accumulation).

    Apps come from the {!Orion.App} registry (populated by
    {!Orion_apps.Registry}). *)

open Orion_lang
open Orion_dsm
module Buffer = Stdlib.Buffer  (* [open Orion_dsm] shadows it *)
module Plan = Orion_analysis.Plan
module Depvec = Orion_analysis.Depvec
module Schedule = Orion_runtime.Schedule
module Executor = Orion_runtime.Executor
module App = Orion.App
module Report = Orion.Report

(* ------------------------------------------------------------------ *)
(* Serial observation pass (run A)                                     *)
(* ------------------------------------------------------------------ *)

(** Execute the loop serially in ascending key order with the access
    log attached (this mutates the instance's arrays: the instance
    afterwards holds the canonical serial result). *)
let observe (inst : App.instance) : Access_log.t =
  let log = Access_log.create () in
  Access_log.attach log ~skip:[ inst.App.inst_iter_name ] inst.App.inst_env;
  Dist_array.iter
    (fun key value ->
      Access_log.set_iter log key;
      Interp.eval_body_for inst.App.inst_env ~key_var:inst.App.inst_key_var
        ~value_var:inst.App.inst_value_var ~key ~value inst.App.inst_body)
    inst.App.inst_iter;
  Access_log.detach inst.App.inst_env;
  log

(* ------------------------------------------------------------------ *)
(* Soundness: observed vectors vs static analysis                      *)
(* ------------------------------------------------------------------ *)

let covers_elt (e : Depvec.elt) (d : int) =
  match e with
  | Depvec.Fin k -> d = k
  | Depvec.Pos_inf -> d >= 1
  | Depvec.Neg_inf -> d <= -1
  | Depvec.Any -> true

(** Does static vector [vec] cover observed distance [dist]? *)
let covers (vec : Depvec.t) (dist : int array) =
  Array.length vec = Array.length dist
  && Array.for_all Fun.id (Array.mapi (fun i e -> covers_elt e dist.(i)) vec)

type miss = {
  m_array : string;
  m_kind : Depobserve.kind;
  m_distance : int array;
  m_edge : Depobserve.edge;  (** the offending iteration pair *)
  m_static : Depvec.t list;  (** the static vectors that failed to cover *)
}

let miss_to_string m =
  Printf.sprintf
    "%s: observed %s dependence (%s) -> (%s) at element [%s], distance (%s) \
     not covered by static {%s}"
    m.m_array
    (Depobserve.kind_to_string m.m_kind)
    (Depobserve.iter_key m.m_edge.Depobserve.e_src)
    (Depobserve.iter_key m.m_edge.Depobserve.e_dst)
    (Depobserve.iter_key m.m_edge.Depobserve.e_key)
    (Depobserve.iter_key m.m_distance)
    (String.concat "; " (List.map Depvec.to_string m.m_static))

(** Every observed distance vector not covered by any static vector of
    its array. *)
let soundness_misses ~(static : (string * Depvec.t list) list)
    (edges : Depobserve.edge list) : miss list =
  List.concat_map
    (fun (array, observed) ->
      let vecs =
        match List.assoc_opt array static with Some v -> v | None -> []
      in
      List.filter_map
        (fun (dist, (witness : Depobserve.edge)) ->
          if List.exists (fun v -> covers v dist) vecs then None
          else
            Some
              {
                m_array = array;
                m_kind = witness.Depobserve.e_kind;
                m_distance = dist;
                m_edge = witness;
                m_static = vecs;
              })
        observed)
    (Depobserve.vectors_by_array edges)

(* ------------------------------------------------------------------ *)
(* Differential comparison                                             *)
(* ------------------------------------------------------------------ *)

type diff_result = {
  d_array : string;
  d_cells : int;
  d_max_abs : float;
  d_max_rel : float;
  d_worst_key : int array option;
}

let diff_arrays name (a : float Dist_array.t) (b : float Dist_array.t) :
    diff_result =
  let keys : (string, int array) Hashtbl.t = Hashtbl.create 997 in
  let note arr =
    Array.iter
      (fun (k, _) -> Hashtbl.replace keys (Depobserve.iter_key k) k)
      (Dist_array.entries arr)
  in
  note a;
  note b;
  let r =
    ref { d_array = name; d_cells = 0; d_max_abs = 0.0; d_max_rel = 0.0; d_worst_key = None }
  in
  Hashtbl.iter
    (fun _ k ->
      let va = Dist_array.get a k and vb = Dist_array.get b k in
      let abs = Float.abs (va -. vb) in
      let rel = abs /. Float.max (Float.max (Float.abs va) (Float.abs vb)) 1e-12 in
      let cur = !r in
      r :=
        {
          cur with
          d_cells = cur.d_cells + 1;
          d_max_abs = Float.max cur.d_max_abs abs;
          d_max_rel = Float.max cur.d_max_rel rel;
          d_worst_key = (if abs > cur.d_max_abs then Some k else cur.d_worst_key);
        })
    keys;
  !r

let diff_ok ~tolerance d =
  match tolerance with
  | None -> d.d_max_abs = 0.0
  | Some tol -> d.d_max_rel <= tol

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type app_report = {
  r_app : string;
  r_strategy : string;
  r_model : string;
  r_ordered : bool;
  r_workers : int;
  r_space_parts : int;
  r_time_parts : int;
  r_events : int;
  r_edges : int;
  r_observed : (string * int array list) list;
  r_static : (string * string list) list;
  r_misses : miss list;
  r_violations : Race.violation list;
  r_diff : diff_result list;  (** scheduled vs adversarial witness *)
  r_serial_diff : diff_result list;  (** scheduled vs serial ascending *)
  r_tolerance : float option;
  r_passed : bool;
}

let take n l =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n l

let report_to_string (r : app_report) =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "orion verify: app=%s strategy=%s model=%s ordered=%b\n" r.r_app
    r.r_strategy r.r_model r.r_ordered;
  pf "  schedule: %d workers, %d space x %d time partitions\n" r.r_workers
    r.r_space_parts r.r_time_parts;
  pf "  access log: %d events, %d observed dependence edges\n" r.r_events
    r.r_edges;
  List.iter
    (fun (array, dists) ->
      let statics =
        match List.assoc_opt array r.r_static with
        | Some s -> String.concat " " s
        | None -> "-"
      in
      pf "  %s: observed distances {%s}, static {%s}\n" array
        (String.concat " "
           (List.map (fun d -> "(" ^ Depobserve.iter_key d ^ ")") (take 8 dists))
        ^ (if List.length dists > 8 then
             Printf.sprintf " +%d more" (List.length dists - 8)
           else "")
        )
        statics)
    r.r_observed;
  (match r.r_misses with
  | [] -> pf "  soundness: OK (every observed vector covered)\n"
  | misses ->
      pf "  soundness: FAIL (%d uncovered observed vectors)\n"
        (List.length misses);
      List.iter (fun m -> pf "    MISS %s\n" (miss_to_string m)) (take 8 misses);
      if List.length misses > 8 then
        pf "    ... and %d more\n" (List.length misses - 8));
  (match r.r_violations with
  | [] -> pf "  races: OK (no dependence edge runs concurrently)\n"
  | vs ->
      pf "  races: FAIL (%d violations)\n" (List.length vs);
      List.iter
        (fun v -> pf "    RACE %s\n" (Race.violation_to_string v))
        (take 8 vs);
      if List.length vs > 8 then pf "    ... and %d more\n" (List.length vs - 8));
  let tol_str =
    match r.r_tolerance with
    | None -> "exact"
    | Some t -> Printf.sprintf "rel tol %.1e" t
  in
  List.iter
    (fun d ->
      pf "  differential %s (scheduled vs witness, %s): max |delta| = %.3e%s\n"
        d.d_array tol_str d.d_max_abs
        (if diff_ok ~tolerance:r.r_tolerance d then "" else "  FAIL"))
    r.r_diff;
  List.iter
    (fun d ->
      pf "  info %s (scheduled vs serial ascending): max |delta| = %.3e\n"
        d.d_array d.d_max_abs)
    r.r_serial_diff;
  pf (if r.r_passed then "  PASS\n" else "  FAIL\n");
  Buffer.contents b

(* JSON via the shared versioned report library *)
let ints = Report.ints

let miss_json m =
  Report.Obj
    [
      ("array", Report.Str m.m_array);
      ("kind", Report.Str (Depobserve.kind_to_string m.m_kind));
      ("distance", ints m.m_distance);
      ("src_iteration", ints m.m_edge.Depobserve.e_src);
      ("dst_iteration", ints m.m_edge.Depobserve.e_dst);
      ("element", ints m.m_edge.Depobserve.e_key);
      ( "static",
        Report.List
          (List.map (fun v -> Report.Str (Depvec.to_string v)) m.m_static) );
    ]

let violation_json (v : Race.violation) =
  let e = v.Race.v_edge in
  Report.Obj
    [
      ("array", Report.Str e.Depobserve.e_array);
      ("kind", Report.Str (Depobserve.kind_to_string e.Depobserve.e_kind));
      ("element", ints e.Depobserve.e_key);
      ("src_iteration", ints e.Depobserve.e_src);
      ("dst_iteration", ints e.Depobserve.e_dst);
      ( "src_block",
        Report.List
          [
            Report.Int (fst v.Race.v_src_block);
            Report.Int (snd v.Race.v_src_block);
          ] );
      ( "dst_block",
        Report.List
          [
            Report.Int (fst v.Race.v_dst_block);
            Report.Int (snd v.Race.v_dst_block);
          ] );
      ("why", Report.Str (Race.why_to_string v.Race.v_why));
    ]

let diff_json d =
  Report.Obj
    [
      ("array", Report.Str d.d_array);
      ("cells", Report.Int d.d_cells);
      ("max_abs", Report.Float d.d_max_abs);
      ("max_rel", Report.Float d.d_max_rel);
      ( "worst_key",
        match d.d_worst_key with None -> Report.Null | Some k -> ints k );
    ]

let report_payload (r : app_report) : Report.json =
  Report.Obj
    [
      ("app", Report.Str r.r_app);
      ("strategy", Report.Str r.r_strategy);
      ("model", Report.Str r.r_model);
      ("ordered", Report.Bool r.r_ordered);
      ("workers", Report.Int r.r_workers);
      ("space_parts", Report.Int r.r_space_parts);
      ("time_parts", Report.Int r.r_time_parts);
      ("events", Report.Int r.r_events);
      ("edges", Report.Int r.r_edges);
      ( "observed",
        Report.Obj
          (List.map
             (fun (a, dists) -> (a, Report.List (List.map ints dists)))
             r.r_observed) );
      ( "static",
        Report.Obj
          (List.map
             (fun (a, vs) ->
               (a, Report.List (List.map (fun s -> Report.Str s) vs)))
             r.r_static) );
      ("misses", Report.List (List.map miss_json r.r_misses));
      ("violations", Report.List (List.map violation_json r.r_violations));
      ("differential", Report.List (List.map diff_json r.r_diff));
      ("serial_differential", Report.List (List.map diff_json r.r_serial_diff));
      ( "tolerance",
        match r.r_tolerance with None -> Report.Null | Some t -> Report.Float t
      );
      ("passed", Report.Bool r.r_passed);
    ]

let report_to_json (r : app_report) =
  Report.emit ~kind:"verify" (report_payload r)

(* ------------------------------------------------------------------ *)
(* The differential runner                                             *)
(* ------------------------------------------------------------------ *)

type schedule_override = Force_1d | Force_2d_ordered | Force_2d_unordered

let override_to_string = function
  | Force_1d -> "1d"
  | Force_2d_ordered -> "2d-ordered"
  | Force_2d_unordered -> "2d-unordered"

let interp_body (inst : App.instance) : Value.t Executor.body =
 fun ~worker:_ ~key ~value ->
  Interp.eval_body_for inst.App.inst_env ~key_var:inst.App.inst_key_var
    ~value_var:inst.App.inst_value_var ~key ~value inst.App.inst_body

(** Replay a schedule on a fresh instance in the given block order
    (block entries keep their scheduled within-block order). *)
let replay (inst : App.instance) (sched : Value.t Schedule.t)
    (order : (int * int) array) =
  let body = interp_body inst in
  Array.iter
    (fun (s, t) ->
      let blk = Schedule.block sched ~space:s ~time:t in
      Array.iter
        (fun (key, value) -> body ~worker:0 ~key ~value)
        blk.Schedule.entries)
    order

let forced_schedule ov (inst : App.instance) ~workers ~depth :
    (Value.t Schedule.t * Race.model * (App.instance -> unit), string) result =
  let iter = inst.App.inst_iter in
  let cluster (i : App.instance) = i.App.inst_session.Orion.cluster in
  match ov with
  | Force_1d ->
      let sched =
        Schedule.partition_1d ~shuffle_seed:17 iter ~space_dim:0
          ~space_parts:workers
      in
      Ok
        ( sched,
          Race.M_1d,
          fun i -> ignore (Executor.run_1d (cluster i) sched (interp_body i)) )
  | (Force_2d_ordered | Force_2d_unordered) when Dist_array.ndims iter < 2 ->
      Error
        (Printf.sprintf
           "--schedule %s needs a 2-D iteration space (%s is 1-D)"
           (override_to_string ov) (Dist_array.name iter))
  | Force_2d_ordered ->
      let sched =
        Schedule.partition_2d ~shuffle_seed:17 iter ~space_dim:0 ~time_dim:1
          ~space_parts:workers ~time_parts:workers
      in
      Ok
        ( sched,
          Race.M_2d_ordered,
          fun i ->
            ignore
              (Executor.run_2d_ordered (cluster i)
                 ~rotated_bytes_per_partition:0.0 sched (interp_body i)) )
  | Force_2d_unordered ->
      let sched =
        Schedule.partition_2d ~shuffle_seed:17 iter ~space_dim:0 ~time_dim:1
          ~space_parts:workers
          ~time_parts:(workers * depth)
      in
      let eff =
        Race.effective_depth ~pipeline_depth:depth
          ~sp:sched.Schedule.space_parts ~tp:sched.Schedule.time_parts
      in
      Ok
        ( sched,
          Race.M_2d_unordered { depth = eff },
          fun i ->
            ignore
              (Executor.run_2d_unordered (cluster i) ~pipeline_depth:depth
                 ~rotated_bytes_per_partition:0.0 sched (interp_body i)) )

(** Verify one built-in app end to end: serial observation + soundness
    check, scheduled execution + race check, adversarial-witness
    differential.  [schedule_override] replaces the planner's schedule
    with a forced one (to demonstrate race detection on wrong
    schedules). *)
let verify_app ?(num_machines = 2) ?(workers_per_machine = 2) ?pipeline_depth
    ?(scale = 1.0) ?schedule_override app : (app_report, string) result =
  Orion_apps.Registry.ensure ();
  match App.find app with
  | None ->
      Error
        (Printf.sprintf "unknown app %S (expected one of: %s)" app
           (String.concat " " (App.names ())))
  | Some a -> (
      let make () = a.App.app_make ~scale ~num_machines ~workers_per_machine () in
      (* run A: serial ascending observation *)
      let inst_a = make () in
      let log = observe inst_a in
      let plan =
        Orion.analyze_loop inst_a.App.inst_session inst_a.App.inst_loop
      in
      let ordered = plan.Plan.ordered in
      let edges =
        Depobserve.edges ~ordered ~skip_arrays:inst_a.App.inst_buffered log
      in
      let misses = soundness_misses ~static:plan.Plan.per_array_deps edges in
      (* run B: scheduled execution *)
      let inst_b = make () in
      let plan_b =
        Orion.analyze_loop inst_b.App.inst_session inst_b.App.inst_loop
      in
      let workers =
        Orion_sim.Cluster.num_workers inst_b.App.inst_session.Orion.cluster
      in
      let depth =
        Option.value pipeline_depth
          ~default:inst_b.App.inst_session.Orion.default_pipeline_depth
      in
      let sched_result =
        match schedule_override with
        | Some ov -> forced_schedule ov inst_b ~workers ~depth
        | None ->
            let compiled =
              Orion.compile inst_b.App.inst_session ~plan:plan_b
                ~iter:inst_b.App.inst_iter ?pipeline_depth ()
            in
            let sched = compiled.Orion.schedule in
            let model =
              Race.model_of_plan plan_b
                ~pipeline_depth:compiled.Orion.pipeline_depth
                ~sp:sched.Schedule.space_parts ~tp:sched.Schedule.time_parts
            in
            Ok
              ( sched,
                model,
                fun (i : App.instance) ->
                  ignore
                    (Orion.execute i.App.inst_session compiled
                       ~body:(interp_body i) ()) )
      in
      match sched_result with
      | Error e -> Error e
      | Ok (sched, model, run_scheduled) ->
          run_scheduled inst_b;
          let race = Race.build model ~workers sched in
          let violations = Race.check race ~ordered edges in
          (* run C: adversarial dependence-respecting witness replay of
             the same schedule object on a fresh instance *)
          let inst_c = make () in
          replay inst_c sched (Race.linearize race ~adversarial:true);
          let diffs other =
            List.map2
              (fun (name, arr_b) (_, arr_o) -> diff_arrays name arr_b arr_o)
              inst_b.App.inst_outputs other
          in
          let diff = diffs inst_c.App.inst_outputs in
          let serial_diff = diffs inst_a.App.inst_outputs in
          let tolerance = a.App.app_tolerance in
          let passed =
            misses = [] && violations = []
            && List.for_all (diff_ok ~tolerance) diff
          in
          Ok
            {
              r_app = app;
              r_strategy =
                (match schedule_override with
                | None -> Plan.strategy_to_string plan_b.Plan.strategy
                | Some ov -> "forced " ^ override_to_string ov);
              r_model = Race.model_to_string model;
              r_ordered = ordered;
              r_workers = workers;
              r_space_parts = sched.Schedule.space_parts;
              r_time_parts = sched.Schedule.time_parts;
              r_events = Access_log.length log;
              r_edges = List.length edges;
              r_observed =
                List.map
                  (fun (a, ds) -> (a, List.map fst ds))
                  (Depobserve.vectors_by_array edges);
              r_static =
                List.map
                  (fun (a, vs) -> (a, List.map Depvec.to_string vs))
                  plan.Plan.per_array_deps;
              r_misses = misses;
              r_violations = violations;
              r_diff = diff;
              r_serial_diff = serial_diff;
              r_tolerance = tolerance;
              r_passed = passed;
            })
