(** Element-granularity DistArray access log: the raw material for
    dynamic dependence reconstruction.  Filled by pointing
    {!Orion_lang.Interp}'s [on_array_access] hook at a log ({!attach})
    while the loop body runs serially. *)

type event = {
  ev_array : string;
  ev_key : int array;  (** element key, 0-based *)
  ev_write : bool;
  ev_iter : int array;  (** iteration vector of the accessing iteration *)
  ev_seq : int;  (** position in serial execution order *)
}

type t

val create : unit -> t

(** Set the iteration vector subsequent accesses belong to (call once
    per iteration before executing the body). *)
val set_iter : t -> int array -> unit

(** Record one access, expanding range / whole-dimension subscripts
    against [dims] to the individual element keys they cover. *)
val record :
  t ->
  array:string ->
  dims:int array ->
  write:bool ->
  Orion_lang.Value.concrete_sub array ->
  unit

val record_key : t -> array:string -> write:bool -> int array -> unit

(** [merge ~into src] appends [src]'s events after [into]'s,
    re-stamping [ev_seq].  A log is single-writer (recording takes no
    lock): give each domain its own shard and merge in domain order. *)
val merge : into:t -> t -> unit

(** Events in serial execution order. *)
val events : t -> event array

val length : t -> int

(** Install the log as [env]'s access hook; [skip] names arrays to
    leave out (e.g. the iteration space itself). *)
val attach : t -> ?skip:string list -> Orion_lang.Interp.env -> unit

val detach : Orion_lang.Interp.env -> unit
