(** Schedule race detection: replay a schedule's happens-before order
    against observed dependence edges. *)

(** Shared with {!Orion_runtime.Domain_exec}: the same happens-before
    order drives real multicore execution. *)
type model = Orion_runtime.Domain_exec.model =
  | M_1d  (** space partitions, one barrier at the end *)
  | M_2d_ordered  (** anti-diagonal wavefront, barrier per diagonal *)
  | M_2d_unordered of { depth : int }  (** pipelined partition rotation *)
  | M_time_major  (** unimodular time loop, barrier per time step *)

val model_to_string : model -> string

(** The executor's effective pipeline depth for an unordered-2D pass. *)
val effective_depth : pipeline_depth:int -> sp:int -> tp:int -> int

(** The execution model {!Orion.execute} uses for a plan's schedule. *)
val model_of_plan :
  Orion_analysis.Plan.t -> pipeline_depth:int -> sp:int -> tp:int -> model

type t = {
  model : model;
  workers : int;
  sp : int;
  tp : int;
  block_of : (string, int * int * int) Hashtbl.t;
      (** iteration key -> (space, time, position within block) *)
  hb : bool array array;  (** strict happens-before, transitively closed *)
  natural : (int * int) array;  (** the executor's block execution sequence *)
}

val build : model -> workers:int -> 'v Orion_runtime.Schedule.t -> t

val happens_before : t -> int * int -> int * int -> bool

type violation = {
  v_edge : Depobserve.edge;
  v_src_block : int * int;
  v_dst_block : int * int;
  v_why : [ `Concurrent | `Reversed | `Unscheduled ];
}

val why_to_string : [ `Concurrent | `Reversed | `Unscheduled ] -> string

(** Check observed dependence edges against the schedule.  Endpoints in
    happens-before-unrelated blocks race; for [ordered] loops, reversed
    execution order is also a violation. *)
val check : t -> ordered:bool -> Depobserve.edge list -> violation list

val violation_to_string : violation -> string

(** A block total order consistent with happens-before: the executor's
    own order ([adversarial:false]) or a maximally reordered witness
    ([adversarial:true]) for the differential runner. *)
val linearize : t -> adversarial:bool -> (int * int) array
