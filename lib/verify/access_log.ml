(** Element-granularity DistArray access log.

    The dynamic dependence validator runs a parallel loop's body
    serially, one iteration at a time, with {!Orion_lang.Interp}'s
    [on_array_access] hook pointed at {!record}.  Every element touched
    is logged with the full iteration vector that touched it; range and
    whole-dimension subscripts are expanded to the individual elements
    they cover, so the log is the ground truth the observed dependence
    edges are reconstructed from. *)

open Orion_lang

type event = {
  ev_array : string;
  ev_key : int array;  (** element key, 0-based *)
  ev_write : bool;
  ev_iter : int array;  (** iteration vector of the accessing iteration *)
  ev_seq : int;  (** position in serial execution order *)
}

type t = {
  mutable rev_events : event list;  (** newest first *)
  mutable seq : int;
  mutable current_iter : int array;
}
(** A log is SINGLE-WRITER: recording takes no lock, so it must only be
    attached to one interpreter environment (= one domain) at a time.
    A parallel pass gives each domain its own shard and combines them
    afterwards with {!merge} (dependence reconstruction still needs the
    serial observation pass, which is single-domain by construction). *)

let create () = { rev_events = []; seq = 0; current_iter = [||] }

(** Set the iteration vector that subsequent accesses belong to (called
    once per iteration by the serial observation pass). *)
let set_iter t iter = t.current_iter <- Array.copy iter

let record_key t ~array ~write key =
  t.rev_events <-
    {
      ev_array = array;
      ev_key = key;
      ev_write = write;
      ev_iter = t.current_iter;
      ev_seq = t.seq;
    }
    :: t.rev_events;
  t.seq <- t.seq + 1

(* expand a concrete subscript to the point indices it covers *)
let expand_sub dim = function
  | Value.Cpoint p -> [ p ]
  | Value.Crange (a, b) -> List.init (max 0 (b - a + 1)) (fun k -> a + k)
  | Value.Call_dim -> List.init dim Fun.id

(** Record one access with concrete subscripts, expanding ranges and
    whole-dimension subscripts against [dims] to element keys. *)
let record t ~array ~(dims : int array) ~write
    (subs : Value.concrete_sub array) =
  let all_points =
    Array.for_all (function Value.Cpoint _ -> true | _ -> false) subs
  in
  if all_points then
    record_key t ~array ~write
      (Array.map (function Value.Cpoint p -> p | _ -> 0) subs)
  else
    (* cartesian product of the expanded positions *)
    let rec cart i =
      if i >= Array.length subs then [ [] ]
      else
        let tails = cart (i + 1) in
        List.concat_map
          (fun p -> List.map (fun tl -> p :: tl) tails)
          (expand_sub dims.(i) subs.(i))
    in
    List.iter
      (fun key -> record_key t ~array ~write (Array.of_list key))
      (cart 0)

(** [merge ~into src] appends [src]'s events after [into]'s, re-stamping
    [ev_seq] to continue [into]'s sequence.  Merging domain shards in
    domain order is deterministic; cross-domain event order carries no
    happens-before meaning. *)
let merge ~into src =
  List.rev src.rev_events
  |> List.iter (fun ev ->
         into.rev_events <- { ev with ev_seq = into.seq } :: into.rev_events;
         into.seq <- into.seq + 1)

(** Events in serial execution order. *)
let events t = Array.of_list (List.rev t.rev_events)

let length t = t.seq

(** Install this log as [env]'s access hook.  [skip] names arrays to
    leave out of the log (e.g. the iteration-space array itself). *)
let attach t ?(skip = []) (env : Interp.env) =
  env.Interp.on_array_access <-
    Some
      (fun ex ~write csubs ->
        if not (List.mem ex.Value.ex_name skip) then
          record t ~array:ex.Value.ex_name ~dims:ex.Value.ex_dims ~write csubs)

let detach (env : Interp.env) = env.Interp.on_array_access <- None
