(** Dynamic dependence validation and schedule race detection: the
    library behind [orion verify]. *)

module Depvec = Orion_analysis.Depvec

(** {1 Serial observation} *)

(** Execute the loop serially in ascending key order with the access
    log attached (mutates the instance's arrays: afterwards they hold
    the canonical serial result). *)
val observe : Orion.App.instance -> Access_log.t

(** {1 Soundness} *)

val covers_elt : Depvec.elt -> int -> bool

(** Does a static dependence vector cover an observed distance? *)
val covers : Depvec.t -> int array -> bool

type miss = {
  m_array : string;
  m_kind : Depobserve.kind;
  m_distance : int array;
  m_edge : Depobserve.edge;  (** the offending iteration pair *)
  m_static : Depvec.t list;  (** the static vectors that failed to cover *)
}

val miss_to_string : miss -> string

(** Every observed distance vector not covered by any static vector of
    its array. *)
val soundness_misses :
  static:(string * Depvec.t list) list -> Depobserve.edge list -> miss list

(** {1 Differential comparison} *)

type diff_result = {
  d_array : string;
  d_cells : int;
  d_max_abs : float;
  d_max_rel : float;
  d_worst_key : int array option;
}

val diff_arrays :
  string ->
  float Orion_dsm.Dist_array.t ->
  float Orion_dsm.Dist_array.t ->
  diff_result

val diff_ok : tolerance:float option -> diff_result -> bool

(** {1 Reports} *)

type app_report = {
  r_app : string;
  r_strategy : string;
  r_model : string;
  r_ordered : bool;
  r_workers : int;
  r_space_parts : int;
  r_time_parts : int;
  r_events : int;
  r_edges : int;
  r_observed : (string * int array list) list;
  r_static : (string * string list) list;
  r_misses : miss list;
  r_violations : Race.violation list;
  r_diff : diff_result list;  (** scheduled vs adversarial witness *)
  r_serial_diff : diff_result list;  (** scheduled vs serial ascending *)
  r_tolerance : float option;
  r_passed : bool;
}

val report_to_string : app_report -> string

(** The report as an {!Orion.Report} payload / versioned JSON envelope
    (kind ["verify"]). *)
val report_payload : app_report -> Orion.Report.json

val report_to_json : app_report -> string

(** {1 The differential runner} *)

type schedule_override = Force_1d | Force_2d_ordered | Force_2d_unordered

val override_to_string : schedule_override -> string

(** Verify one built-in app (mf | slr | lda | gbt) end to end: serial
    observation + soundness check, scheduled execution + race check,
    adversarial-witness differential.  [schedule_override] replaces the
    planner's schedule with a forced one (to demonstrate race detection
    on wrong schedules). *)
val verify_app :
  ?num_machines:int ->
  ?workers_per_machine:int ->
  ?pipeline_depth:int ->
  ?scale:float ->
  ?schedule_override:schedule_override ->
  string ->
  (app_report, string) result
