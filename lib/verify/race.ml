(** Schedule race detection: replay a {!Orion_runtime.Schedule.t}
    against observed dependence edges.

    Each executor strategy induces a happens-before partial order over
    schedule blocks — per-worker program order plus the strategy's
    synchronization (barriers for 1D / ordered-2D / time-major;
    partition-rotation messages for unordered 2D, Fig. 8).  A
    dependence edge whose endpoints land in blocks unrelated by
    happens-before would race on a real cluster (the sequential
    simulator masks it); for ordered loops, an edge whose endpoints run
    in the wrong order additionally breaks the serial semantics. *)

(* The model type and its derivation live with the multicore executor
   (the same happens-before order drives real parallel execution); this
   module adds the worker-aware HB matrix and race checks on top. *)
type model = Orion_runtime.Domain_exec.model =
  | M_1d
  | M_2d_ordered
  | M_2d_unordered of { depth : int }
  | M_time_major

let model_to_string = Orion_runtime.Domain_exec.model_to_string
let effective_depth = Orion_runtime.Domain_exec.effective_depth
let model_of_plan = Orion_runtime.Domain_exec.model_of_plan

type t = {
  model : model;
  workers : int;
  sp : int;
  tp : int;
  block_of : (string, int * int * int) Hashtbl.t;
      (** iteration key -> (space, time, position within block) *)
  hb : bool array array;  (** strict happens-before, transitively closed *)
  natural : (int * int) array;  (** the executor's block execution sequence *)
}

let bid t ~s ~time = (s * t.tp) + time

let natural_order = Orion_runtime.Domain_exec.natural_order

(** Build the happens-before analysis of [sched] under [model] with
    [workers] simulated workers. *)
let build model ~workers (sched : 'v Orion_runtime.Schedule.t) : t =
  let sp = sched.Orion_runtime.Schedule.space_parts in
  let tp = sched.Orion_runtime.Schedule.time_parts in
  let n = sp * tp in
  let hb = Array.make_matrix n n false in
  let t =
    {
      model;
      workers;
      sp;
      tp;
      block_of = Hashtbl.create 1024;
      hb;
      natural = natural_order model ~sp ~tp;
    }
  in
  (* index every scheduled iteration *)
  Array.iteri
    (fun s row ->
      Array.iteri
        (fun time (b : 'v Orion_runtime.Schedule.block) ->
          Array.iteri
            (fun pos (key, _) ->
              Hashtbl.replace t.block_of (Depobserve.iter_key key)
                (s, time, pos))
            b.Orion_runtime.Schedule.entries)
        row)
    sched.Orion_runtime.Schedule.blocks;
  let worker_of s = s mod workers in
  let edge (s1, t1) (s2, t2) = hb.(bid t ~s:s1 ~time:t1).(bid t ~s:s2 ~time:t2) <- true in
  (match model with
  | M_1d ->
      (* same worker: blocks run back-to-back in ascending space order;
         cross-worker: nothing orders them before the final barrier *)
      for s1 = 0 to sp - 1 do
        for s2 = s1 + 1 to sp - 1 do
          if worker_of s1 = worker_of s2 then edge (s1, 0) (s2, 0)
        done
      done
  | M_2d_ordered ->
      (* a global barrier closes every anti-diagonal: g1 < g2 orders;
         within one step a worker holding several space partitions runs
         them sequentially *)
      for s1 = 0 to sp - 1 do
        for t1 = 0 to tp - 1 do
          for s2 = 0 to sp - 1 do
            for t2 = 0 to tp - 1 do
              let g1 = s1 + t1 and g2 = s2 + t2 in
              if g1 < g2 then edge (s1, t1) (s2, t2)
              else if g1 = g2 && s1 < s2 && worker_of s1 = worker_of s2 then
                edge (s1, t1) (s2, t2)
            done
          done
        done
      done
  | M_2d_unordered { depth } ->
      (* per-worker program order by (step, space); partition-rotation
         messages order each time partition's blocks in step order —
         block (s, t) before ((s-1) mod sp, t), which uses the shipped
         partition [depth] steps later.  Chaining in (step, s) order is
         identical to those rotation edges in the canonical
         tp = sp*depth layout and stays acyclic when the iteration
         space yields fewer time partitions (see
         {!Orion_runtime.Domain_exec.build_graph}). *)
      let step_of s time = (((time - (s * depth)) mod tp) + tp) mod tp in
      for s1 = 0 to sp - 1 do
        for t1 = 0 to tp - 1 do
          let k1 = step_of s1 t1 in
          for s2 = 0 to sp - 1 do
            for t2 = 0 to tp - 1 do
              if (s1, t1) <> (s2, t2) && worker_of s1 = worker_of s2 then begin
                let k2 = step_of s2 t2 in
                if k1 < k2 || (k1 = k2 && s1 < s2) then edge (s1, t1) (s2, t2)
              end
            done
          done
        done
      done;
      for t = 0 to tp - 1 do
        let blocks = Array.init sp (fun s -> (step_of s t, s)) in
        Array.sort compare blocks;
        for i = 0 to sp - 2 do
          let _, s1 = blocks.(i) and _, s2 = blocks.(i + 1) in
          edge (s1, t) (s2, t)
        done
      done
  | M_time_major ->
      (* a barrier closes every time partition *)
      for s1 = 0 to sp - 1 do
        for t1 = 0 to tp - 1 do
          for s2 = 0 to sp - 1 do
            for t2 = 0 to tp - 1 do
              if t1 < t2 then edge (s1, t1) (s2, t2)
              else if t1 = t2 && s1 < s2 && worker_of s1 = worker_of s2 then
                edge (s1, t1) (s2, t2)
            done
          done
        done
      done);
  (* transitive closure *)
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if hb.(i).(k) then
        for j = 0 to n - 1 do
          if hb.(k).(j) then hb.(i).(j) <- true
        done
    done
  done;
  t

let happens_before t (s1, t1) (s2, t2) =
  t.hb.(bid t ~s:s1 ~time:t1).(bid t ~s:s2 ~time:t2)

type violation = {
  v_edge : Depobserve.edge;
  v_src_block : int * int;
  v_dst_block : int * int;
  v_why : [ `Concurrent | `Reversed | `Unscheduled ];
}

let why_to_string = function
  | `Concurrent -> "concurrent"
  | `Reversed -> "reversed"
  | `Unscheduled -> "unscheduled"

(** Check every observed dependence edge against the schedule.  An edge
    whose endpoints are in happens-before-unrelated blocks is a race.
    For [ordered] loops the serial order must also be preserved:
    reversed block order — or reversed positions within one block — is
    a violation (for unordered loops any dependence-respecting total
    order is a valid serial order, so reversal is permitted). *)
let check t ~ordered (edges : Depobserve.edge list) : violation list =
  List.filter_map
    (fun (e : Depobserve.edge) ->
      let src = Hashtbl.find_opt t.block_of (Depobserve.iter_key e.Depobserve.e_src) in
      let dst = Hashtbl.find_opt t.block_of (Depobserve.iter_key e.Depobserve.e_dst) in
      match (src, dst) with
      | None, _ | _, None ->
          Some
            {
              v_edge = e;
              v_src_block = (-1, -1);
              v_dst_block = (-1, -1);
              v_why = `Unscheduled;
            }
      | Some (s1, t1, p1), Some (s2, t2, p2) ->
          let b1 = (s1, t1) and b2 = (s2, t2) in
          let mk why =
            Some { v_edge = e; v_src_block = b1; v_dst_block = b2; v_why = why }
          in
          if b1 = b2 then
            if ordered && p2 < p1 then mk `Reversed else None
          else if happens_before t b1 b2 then None
          else if happens_before t b2 b1 then
            if ordered then mk `Reversed else None
          else mk `Concurrent)
    edges

let violation_to_string v =
  Printf.sprintf "%s dependence %s: block (%d,%d) vs (%d,%d) %s"
    (Depobserve.kind_to_string v.v_edge.Depobserve.e_kind)
    (Depobserve.edge_to_string v.v_edge)
    (fst v.v_src_block) (snd v.v_src_block) (fst v.v_dst_block)
    (snd v.v_dst_block)
    (why_to_string v.v_why)

(** A total order on blocks consistent with happens-before.  With
    [adversarial] false this reproduces the executor's own sequence;
    with [adversarial] true, ready blocks are emitted in *reverse*
    executor order, maximally reordering happens-before-unrelated
    blocks — the witness serial order used by the differential runner
    (a racy schedule makes the two orders compute different results). *)
let linearize t ~adversarial : (int * int) array =
  let n = t.sp * t.tp in
  let rank = Array.make n 0 in
  Array.iteri
    (fun i (s, time) -> rank.(bid t ~s ~time) <- i)
    t.natural;
  let emitted = Array.make n false in
  let out = Array.make n (0, 0) in
  for i = 0 to n - 1 do
    let best = ref (-1) in
    for b = 0 to n - 1 do
      if not emitted.(b) then begin
        let ready = ref true in
        for p = 0 to n - 1 do
          if t.hb.(p).(b) && not emitted.(p) then ready := false
        done;
        if !ready then
          match !best with
          | -1 -> best := b
          | cur ->
              if
                (adversarial && rank.(b) > rank.(cur))
                || ((not adversarial) && rank.(b) < rank.(cur))
              then best := b
      end
    done;
    assert (!best >= 0);
    emitted.(!best) <- true;
    out.(i) <- (!best / t.tp, !best mod t.tp)
  done;
  out
