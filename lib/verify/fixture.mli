(** Small deterministic app instances for differential verification:
    real DistArrays, fully interpreted loop bodies, order-independent
    host builtins. *)

type instance = {
  session : Orion.session;
  env : Orion_lang.Interp.env;
  loop_stmt : Orion_lang.Ast.stmt;
  key_var : string;
  value_var : string;
  body : Orion_lang.Ast.block;
  iter : Orion_lang.Value.t Orion_dsm.Dist_array.t;
      (** iteration space carrying interpreter values *)
  iter_name : string;
  outputs : (string * float Orion_dsm.Dist_array.t) list;
      (** model arrays compared by the differential runner *)
  buffered : string list;  (** buffer-written arrays, dependence-exempt *)
}

type t = {
  fx_app : string;
  fx_tolerance : float option;
      (** [None]: scheduled and witness runs must agree bitwise *)
  fx_make : int -> int -> instance;
      (** [fx_make num_machines workers_per_machine] builds a fresh
          instance (identical initial state every call) *)
}

val all : t list
val find : string -> t option
val app_names : string list
