(** Dynamic dependence reconstruction from an access log: observed
    flow / anti / output dependence edges over the iteration space,
    mirroring Algorithm 2's skip rules (no read/read edges; output
    edges only for ordered loops; buffered arrays exempt). *)

type kind = Flow | Anti | Output

val kind_to_string : kind -> string

type edge = {
  e_array : string;
  e_kind : kind;
  e_key : int array;  (** witness element both iterations touch *)
  e_src : int array;  (** earlier iteration (serial order) *)
  e_dst : int array;  (** later iteration *)
}

(** Element-wise iteration distance [dst - src] (lexicographically
    positive: observation runs in ascending iteration order). *)
val distance : edge -> int array

val iter_key : int array -> string

(** Reconstruct the deduplicated observed edges.  [ordered] enables
    output (write/write) edges; [skip_arrays] lists buffered arrays. *)
val edges :
  ?ordered:bool -> ?skip_arrays:string list -> Access_log.t -> edge list

(** Distinct observed distance vectors per array, each with a witness
    edge. *)
val vectors_by_array : edge list -> (string * (int array * edge) list) list

val edge_to_string : edge -> string
