(** Structured event log for the Orion libraries.

    Leveled (debug < info < warn) key-value logging in logfmt style:

    {v orion level=info src=plan msg="strategy selected" strategy=2D v}

    Logging is off by default.  It is switched on by the [ORION_LOG]
    environment variable ([debug], [info] or [warn]) read at program
    start, or programmatically via {!set_level} (the CLI's [--log]
    flag).  Events below the enabled level are dropped before their
    key-value lists are formatted, so disabled call sites cost one
    branch. *)

type level = Debug | Info | Warn

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | _ -> None

let rank = function Debug -> 0 | Info -> 1 | Warn -> 2

(* [None] = logging disabled *)
let threshold : level option ref = ref None

let set_level l = threshold := l
let current_level () = !threshold

let init_from_env () =
  match Sys.getenv_opt "ORION_LOG" with
  | None -> ()
  | Some s -> (
      match level_of_string s with
      | Some _ as l -> threshold := l
      | None ->
          if String.trim s <> "" then
            Printf.eprintf
              "orion: ignoring ORION_LOG=%S (expected debug|info|warn)\n%!" s)

let () = init_from_env ()

let enabled l =
  match !threshold with None -> false | Some t -> rank l >= rank t

(* Output goes through a formatter so tests can capture it. *)
let out = ref Format.err_formatter
let set_formatter fmt = out := fmt

(* logfmt-style value: bare if it looks like a token, quoted otherwise *)
let needs_quoting s =
  s = ""
  || String.exists
       (fun c ->
         not
           ((c >= 'a' && c <= 'z')
           || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9')
           || c = '_' || c = '-' || c = '.' || c = '+' || c = ':' || c = ','
           || c = '(' || c = ')' || c = '/'))
       s

let pp_value fmt s =
  if needs_quoting s then Format.fprintf fmt "%S" s
  else Format.pp_print_string fmt s

let log level ~src ?(kv = []) msg =
  if enabled level then (
    let fmt = !out in
    Format.fprintf fmt "orion level=%s src=%s msg=%a"
      (level_to_string level) src pp_value msg;
    List.iter (fun (k, v) -> Format.fprintf fmt " %s=%a" k pp_value v) kv;
    Format.fprintf fmt "@.")

let debug ~src ?kv msg = log Debug ~src ?kv msg
let info ~src ?kv msg = log Info ~src ?kv msg
let warn ~src ?kv msg = log Warn ~src ?kv msg

(* Convenience value formatters for key-value pairs. *)
let int = string_of_int
let float f = Printf.sprintf "%g" f
let bool = string_of_bool
