(** Orion — automating dependence-aware parallelization of serial
    imperative ML programs on distributed shared memory.

    This is the public facade reproducing the system of Wei et al.
    (EuroSys'19).  A {!session} owns a simulated cluster and a registry
    of DistArrays.  Serial OrionScript programs are analyzed
    statically ({!analyze_script}); each [@parallel_for] loop receives
    a {!Plan.t} describing its parallelization (1D / 2D / 2D with
    unimodular transformation / data parallelism via buffers) and the
    placement of every accessed DistArray.  Loops are then executed —
    either fully interpreted ({!run_script}) or with native OCaml loop
    bodies standing in for the JIT-generated code ({!compile} /
    {!execute}) — under dependence-preserving schedules with the
    cluster charging virtual time.

    Re-exports: the submodules below are the supporting libraries. *)

module Ast = Orion_lang.Ast
module Parser = Orion_lang.Parser
module Pretty = Orion_lang.Pretty
module Interp = Orion_lang.Interp
module Value = Orion_lang.Value
module Check = Orion_lang.Check
module Compile = Orion_lang.Compile
module Subscript = Orion_analysis.Subscript
module Depvec = Orion_analysis.Depvec
module Depanalysis = Orion_analysis.Depanalysis
module Unimodular = Orion_analysis.Unimodular
module Plan = Orion_analysis.Plan
module Refs = Orion_analysis.Refs
module Prefetch = Orion_analysis.Prefetch
module Cost_model = Orion_sim.Cost_model
module Cluster = Orion_sim.Cluster
module Recorder = Orion_sim.Recorder
module Trace = Orion_sim.Trace
module Metrics = Orion_sim.Metrics
module Clock = Orion_obs.Clock
module Telemetry = Orion_obs.Telemetry
module Dist_array = Orion_dsm.Dist_array
module Partitioner = Orion_dsm.Partitioner
module Pipeline = Orion_dsm.Pipeline
module Dist_buffer = Orion_dsm.Buffer
module Accumulator = Orion_dsm.Accumulator
module Param_server = Orion_dsm.Param_server
module Schedule = Orion_runtime.Schedule
module Executor = Orion_runtime.Executor
module Domain_exec = Orion_runtime.Domain_exec
module Explain = Orion_analysis.Explain
module Profile = Orion_lang.Profile
module Log = Log
module Report = Orion_report

(* ------------------------------------------------------------------ *)
(* Session and registry                                                *)
(* ------------------------------------------------------------------ *)

(** How an iterable DistArray executes a compiled loop for interpreted
    bodies: captures the typed array, hiding its element type. *)
type runner =
  session ->
  Plan.t ->
  pipeline_depth:int ->
  (key:int array -> value:Value.t -> unit) ->
  Executor.pass_stats

and registered = {
  reg_name : string;
  reg_dims : int array;
  reg_size_bytes : float;
  reg_count : int;
  reg_buffered : bool;
  reg_extern : Value.extern option;
  reg_runner : runner option;
}

and session = {
  cluster : Cluster.t;
  mutable registry : registered list;
  mutable loop_cache : (Ast.stmt * Plan.t) list;
      (** memoized analysis per loop statement (the paper: macro
          expansion runs once even for loops inside driver loops) *)
  mutable default_pipeline_depth : int;
  mutable prefetch_recorded : (string * int array) list;
      (** most recent synthesized-prefetch recording, newest first *)
}

let create_session ?(cost = Cost_model.default) ?recorder ~num_machines
    ~workers_per_machine () =
  {
    cluster = Cluster.create ?recorder ~num_machines ~workers_per_machine ~cost ();
    registry = [];
    loop_cache = [];
    default_pipeline_depth = 2;
    prefetch_recorded = [];
  }

let find_registered session name =
  List.find_opt (fun r -> r.reg_name = name) session.registry

let dist_var_names session = List.map (fun r -> r.reg_name) session.registry

let buffered_names session =
  List.filter_map
    (fun r -> if r.reg_buffered then Some r.reg_name else None)
    session.registry

let array_dims_fn session name =
  Option.map (fun r -> r.reg_dims) (find_registered session name)

let register_meta session ~name ~dims ?(buffered = false) ?(count = 0) () =
  session.registry <-
    {
      reg_name = name;
      reg_dims = dims;
      reg_size_bytes =
        float_of_int (max count (Array.fold_left ( * ) 1 dims))
        *. Dist_array.bytes_per_element;
      reg_count = count;
      reg_buffered = buffered;
      reg_extern = None;
      reg_runner = None;
    }
    :: List.filter (fun r -> r.reg_name <> name) session.registry

(* ------------------------------------------------------------------ *)
(* Compilation: plan -> schedule -> executable                         *)
(* ------------------------------------------------------------------ *)

type 'v compiled = {
  plan : Plan.t;
  schedule : 'v Schedule.t;
  rotated_bytes_per_partition : float;
  pipeline_depth : int;
}

let rotated_bytes session (plan : Plan.t) ~time_parts =
  List.fold_left
    (fun acc (name, placement) ->
      match placement with
      | Plan.Rotated _ -> (
          match find_registered session name with
          | Some r -> acc +. (r.reg_size_bytes /. float_of_int time_parts)
          | None -> acc)
      | Plan.Local_partitioned _ | Plan.Replicated | Plan.Server -> acc)
    0.0 plan.placements

(** Build the static computation schedule for [plan] over iteration
    space [iter].  Space partitions = number of workers; time
    partitions = workers × [pipeline_depth] for unordered 2D loops
    (multiple time indices per worker enable pipelining, Fig. 8). *)
let compile session ~(plan : Plan.t) ~(iter : 'v Dist_array.t)
    ?pipeline_depth ?(shuffle_seed = Some 17) () : 'v compiled =
  let workers = Cluster.num_workers session.cluster in
  let depth =
    Option.value pipeline_depth ~default:session.default_pipeline_depth
  in
  let schedule, depth =
    match plan.strategy with
    | Plan.One_d { space_dim } ->
        (Schedule.partition_1d ?shuffle_seed iter ~space_dim ~space_parts:workers, 1)
    | Plan.Two_d { space_dim; time_dim } ->
        let depth = if plan.ordered then 1 else depth in
        ( Schedule.partition_2d ?shuffle_seed iter ~space_dim ~time_dim
            ~space_parts:workers ~time_parts:(workers * depth),
          depth )
    | Plan.Two_d_unimodular { matrix; _ } ->
        ( Schedule.partition_unimodular ?shuffle_seed iter ~matrix
            ~space_parts:workers ~time_parts:(workers * 4),
          1 )
    | Plan.Data_parallel ->
        (Schedule.partition_1d ?shuffle_seed iter ~space_dim:0 ~space_parts:workers, 1)
  in
  {
    plan;
    schedule;
    rotated_bytes_per_partition =
      rotated_bytes session plan ~time_parts:schedule.Schedule.time_parts;
    pipeline_depth = depth;
  }

(* trace spans for rotated transfers carry the rotated DistArrays'
   names, so per-array communication volume survives into the metrics *)
let rotated_label (plan : Plan.t) =
  match
    List.filter_map
      (fun (name, placement) ->
        match placement with
        | Plan.Rotated _ -> Some name
        | Plan.Local_partitioned _ | Plan.Replicated | Plan.Server -> None)
      plan.placements
  with
  | [] -> "rotated"
  | names -> String.concat "+" names

(** Execute a compiled loop with a native loop body. *)
let execute session (c : 'v compiled) ?(compute = Executor.Measured)
    ~(body : 'v Executor.body) () =
  let cluster = session.cluster in
  match c.plan.strategy with
  | Plan.One_d _ | Plan.Data_parallel ->
      Executor.run_1d cluster ~compute c.schedule body
  | Plan.Two_d _ ->
      if c.plan.ordered then
        Executor.run_2d_ordered cluster ~compute
          ~rotated_label:(rotated_label c.plan)
          ~rotated_bytes_per_partition:c.rotated_bytes_per_partition
          c.schedule body
      else
        Executor.run_2d_unordered cluster ~compute
          ~pipeline_depth:c.pipeline_depth
          ~rotated_label:(rotated_label c.plan)
          ~rotated_bytes_per_partition:c.rotated_bytes_per_partition
          c.schedule body
  | Plan.Two_d_unimodular _ ->
      Executor.run_time_major cluster ~compute
        ~comm_label:(rotated_label c.plan)
        ~comm_bytes_per_step:c.rotated_bytes_per_partition c.schedule body

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let make_runner (iter : 'v Dist_array.t) ~(to_value : 'v -> Value.t) : runner =
  (* memoize one schedule per plan (per loop statement) *)
  let cache : (Plan.t * 'v compiled) list ref = ref [] in
  fun session plan ~pipeline_depth body_fn ->
    let compiled =
      match List.assq_opt plan !cache with
      | Some c -> c
      | None ->
          let c = compile session ~plan ~iter ~pipeline_depth () in
          cache := (plan, c) :: !cache;
          c
    in
    let body ~worker:_ ~key ~value = body_fn ~key ~value:(to_value value) in
    execute session compiled ~body ()

(** Register a float DistArray: visible to interpreted programs (as a
    DSM extern) and to the analyzer (name, dims).  [buffered] marks it
    as written through a DistArray Buffer, exempting its writes from
    dependence analysis. *)
let register session ?(buffered = false) (arr : float Dist_array.t) =
  let name = Dist_array.name arr in
  session.registry <-
    {
      reg_name = name;
      reg_dims = Dist_array.dims arr;
      reg_size_bytes = Dist_array.size_bytes arr;
      reg_count = Dist_array.count arr;
      reg_buffered = buffered;
      reg_extern = Some (Dist_array.to_extern arr);
      reg_runner =
        Some (make_runner arr ~to_value:(fun v -> Value.Vfloat v));
    }
    :: List.filter (fun r -> r.reg_name <> name) session.registry

(** Register a DistArray with arbitrary element type for iteration only
    (e.g. an SLR sample array), with a conversion to interpreter
    values. *)
let register_iterable session (arr : 'v Dist_array.t)
    ~(to_value : 'v -> Value.t) =
  let name = Dist_array.name arr in
  session.registry <-
    {
      reg_name = name;
      reg_dims = Dist_array.dims arr;
      reg_size_bytes = Dist_array.size_bytes arr;
      reg_count = Dist_array.count arr;
      reg_buffered = false;
      reg_extern = Some (Dist_array.to_iter_extern ~to_value arr);
      reg_runner = Some (make_runner arr ~to_value);
    }
    :: List.filter (fun r -> r.reg_name <> name) session.registry

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

exception Analysis_error of string

(** Analyze one [@parallel_for] statement against the session registry. *)
let analyze_loop session (stmt : Ast.stmt) : Plan.t =
  match List.assq_opt stmt session.loop_cache with
  | Some plan -> plan
  | None ->
      let iter_name =
        match stmt.Ast.sk with
        | Ast.For { kind = Ast.Each_loop { arr; _ }; _ } -> arr
        | _ -> raise (Analysis_error "not a parallel for-loop")
      in
      let iter_reg =
        match find_registered session iter_name with
        | Some r -> r
        | None ->
            raise
              (Analysis_error
                 (Printf.sprintf "iteration space %s is not a registered \
                                  DistArray" iter_name))
      in
      let info =
        Refs.analyze_loop
          ~dist_vars:(dist_var_names session)
          ~buffered_arrays:(buffered_names session)
          ~iter_space_ndims:(Array.length iter_reg.reg_dims)
          stmt
      in
      let plan =
        Plan.decide info
          ~array_dims:(array_dims_fn session)
          ~iter_count:(float_of_int (max iter_reg.reg_count 1))
      in
      session.loop_cache <- (stmt, plan) :: session.loop_cache;
      plan

(** Analyze every [@parallel_for] loop in a script. *)
let analyze_script session src : Plan.t list =
  let program = Parser.parse_program src in
  List.map (analyze_loop session) (Refs.find_parallel_loops program)

(** Run the semantic checker on a script, treating the session's
    registered DistArrays as defined globals. *)
let check_script session src : Check.diagnostic list =
  Check.check_program ~globals:(dist_var_names session)
    (Parser.parse_program src)

(* ------------------------------------------------------------------ *)
(* Interpreted execution of whole driver programs                      *)
(* ------------------------------------------------------------------ *)

let concrete_sub_of_value (v : Value.t) : Value.concrete_sub =
  match v with
  | Value.Vint i -> Value.Cpoint (i - 1)
  | Value.Vstring "*" -> Value.Call_dim
  | Value.Vtuple [ Value.Vstring "range"; Value.Vint lo; Value.Vint hi ] ->
      Value.Crange (lo - 1, hi - 1)
  | _ -> raise (Analysis_error "bad prefetch subscript")

(* host builtins: prefetch recording markers and accumulator helpers *)
let host_builtins session env_ref name (args : Value.t list) =
  match (name, args) with
  | "__all", [] -> Some (Value.Vstring "*")
  | "__range", [ lo; hi ] ->
      Some (Value.Vtuple [ Value.Vstring "range"; lo; hi ])
  | "__record", Value.Vstring arr :: subs ->
      let csubs = List.map concrete_sub_of_value subs in
      (match find_registered session arr with
      | Some r ->
          (* expand to the point indices of the first dimension touched *)
          let points =
            List.mapi
              (fun i s ->
                match s with
                | Value.Cpoint p -> [ p ]
                | Value.Crange (a, b) -> List.init (b - a + 1) (fun k -> a + k)
                | Value.Call_dim -> List.init r.reg_dims.(i) Fun.id)
              csubs
          in
          (* record the cartesian key set (bounded by practicality) *)
          let rec cart = function
            | [] -> [ [] ]
            | d :: rest ->
                let tails = cart rest in
                List.concat_map (fun p -> List.map (fun t -> p :: t) tails) d
          in
          List.iter
            (fun key ->
              session.prefetch_recorded <-
                (arr, Array.of_list key) :: session.prefetch_recorded)
            (cart points)
      | None -> ());
      Some Value.Vunit
  | "get_aggregated_value", [ Value.Vstring var ] -> (
      match !env_ref with
      | Some env -> Some (Interp.get_var env var)
      | None -> None)
  | "reset_accumulator", [ Value.Vstring var ] -> (
      match !env_ref with
      | Some env ->
          Interp.set_var env var (Value.Vfloat 0.0);
          Some Value.Vunit
      | None -> None)
  | _ -> None

(** Run a whole OrionScript driver program: statements execute in the
    interpreter; [@parallel_for] loops are analyzed (once), compiled
    to a schedule, and executed on the simulated cluster.  Returns the
    final environment and the per-loop-execution statistics. *)
let run_script session ?(seed = 42) ?profile src =
  let program = Parser.parse_program src in
  let env_ref = ref None in
  let env =
    Interp.create_env ~seed ~host_call:(host_builtins session env_ref) ?profile
      ()
  in
  env_ref := Some env;
  (* bind registered DistArrays *)
  List.iter
    (fun r ->
      match r.reg_extern with
      | Some ex -> Interp.set_var env r.reg_name (Value.Vextern ex)
      | None -> ())
    session.registry;
  let stats = ref [] in
  env.Interp.on_parallel_for <-
    Some
      (fun env stmt ->
        match stmt.Ast.sk with
        | Ast.For { kind = Ast.Each_loop { key; value; arr }; body; _ } ->
            let plan = analyze_loop session stmt in
            let reg =
              match find_registered session arr with
              | Some r -> r
              | None -> raise (Analysis_error ("unknown DistArray " ^ arr))
            in
            let runner =
              match reg.reg_runner with
              | Some r -> r
              | None ->
                  raise (Analysis_error (arr ^ " is not iterable"))
            in
            let body_fn ~key:k ~value:v =
              Interp.eval_body_for env ~key_var:key ~value_var:value ~key:k
                ~value:v body
            in
            let s =
              runner session plan
                ~pipeline_depth:session.default_pipeline_depth body_fn
            in
            stats := s :: !stats
        | _ -> raise (Analysis_error "unexpected parallel statement"));
  Interp.run_program env program;
  (env, List.rev !stats)

(* ------------------------------------------------------------------ *)
(* Prefetch execution support                                          *)
(* ------------------------------------------------------------------ *)

(** Run the synthesized prefetch program for one iteration and return
    the recorded (array, key) accesses, newest-cleared each call. *)
let run_prefetch_program session ~(generated : Ast.block) ~key_var ~value_var
    ~key ~value ~bindings =
  session.prefetch_recorded <- [];
  let env_ref = ref None in
  let env =
    Interp.create_env ~host_call:(host_builtins session env_ref) ()
  in
  env_ref := Some env;
  List.iter (fun (k, v) -> Interp.set_var env k v) bindings;
  List.iter
    (fun r ->
      match r.reg_extern with
      | Some ex -> Interp.set_var env r.reg_name (Value.Vextern ex)
      | None -> ())
    session.registry;
  Interp.eval_body_for env ~key_var ~value_var ~key ~value generated;
  let recorded = List.rev session.prefetch_recorded in
  session.prefetch_recorded <- [];
  recorded

(* ------------------------------------------------------------------ *)
(* The application registry                                            *)
(* ------------------------------------------------------------------ *)

(** One registry for the built-in applications.  Everything that used
    to hand-wire mf|slr|lda|gbt — the CLI subcommands, the benchmark
    harness, the verification fixtures — resolves an {!App.t} here
    instead.  [Orion_apps.Registry] populates the registry; consumers
    call its [ensure] to force that module to link. *)
module App = struct
  (** A materialized app: a session with registered DistArrays, the
      parsed parallel loop, and interpreter plumbing to run its body.
      Every DistArray is real storage; host builtins are written to be
      order-independent across dependence-respecting serializations, so
      any two such executions agree (exactly, or to {!t.app_tolerance}
      for buffered floating-point accumulation). *)
  type instance = {
    inst_name : string;  (** registry name of the app this came from *)
    inst_session : session;
    inst_env : Interp.env;  (** the primary (serial-path) environment *)
    inst_make_env : unit -> Interp.env;
        (** a fresh environment over the {e same} DistArrays and host
            builtins — one per domain for parallel execution, because
            {!Interp.env} is single-writer *)
    inst_loop : Ast.stmt;
    inst_key_var : string;
    inst_value_var : string;
    inst_body : Ast.block;
    inst_iter : Value.t Dist_array.t;
        (** iteration space carrying interpreter values *)
    inst_iter_name : string;
    inst_outputs : (string * float Dist_array.t) list;
        (** model arrays compared by equality/differential checks *)
    inst_arrays : (string * float Dist_array.t) list;
        (** every float model DistArray by name — outputs and read-only
            inputs alike; the handles the distributed runtime ships as
            partitions, serves prefetches from, and applies write
            journals to *)
    inst_buffered : string list;
        (** buffer-written arrays, dependence-exempt; merged from
            per-domain shadows under parallel execution *)
  }

  type t = {
    app_name : string;
    app_description : string;
    app_script : string;  (** the OrionScript source fed to the analyzer *)
    app_tolerance : float option;
        (** [None]: independent dependence-respecting runs must agree
            bitwise; [Some rel]: within relative tolerance (buffered FP
            accumulation is order-sensitive in the last bits) *)
    app_make :
      ?scale:float -> num_machines:int -> workers_per_machine:int -> unit ->
      instance;
        (** build a fresh deterministic instance (identical initial
            state every call); [scale] enlarges the dataset for
            benchmarking *)
    app_register_meta : session -> unit;
        (** register the paper-scale array shapes (Table 2) so the
            analysis pipeline can run without materializing data *)
    app_loss : (instance -> float) option;
        (** training objective over the instance's current model state,
            for convergence benchmarking ([None]: no scalar loss) *)
    app_prepare_pass : (instance -> unit) option;
        (** fold buffered accumulators into the model between separate
            [Engine.run] calls (e.g. apply a gradient buffer and zero
            it) — only used by drivers that run pass-at-a-time, like
            the convergence bench; single-run equivalence paths never
            call it *)
  }

  let registered : t list ref = ref []

  (** Register (or replace, by name) an app, preserving first-come
      registry order. *)
  let register app =
    if List.exists (fun a -> a.app_name = app.app_name) !registered then
      registered :=
        List.map
          (fun a -> if a.app_name = app.app_name then app else a)
          !registered
    else registered := !registered @ [ app ]

  let all () = !registered
  let find name = List.find_opt (fun a -> a.app_name = name) !registered
  let names () = List.map (fun a -> a.app_name) !registered
end

(* ------------------------------------------------------------------ *)
(* The engine: one entry point over both execution substrates          *)
(* ------------------------------------------------------------------ *)

(** Unified execution entry point: run an app's parallel loop either on
    the simulated cluster ([`Sim], virtual time, sequential) or on a
    real OCaml 5 domain pool ([`Parallel n], wall-clock time,
    {!Domain_exec}).  Both modes execute the {e same} compiled schedule
    under the same happens-before order, so for serializable schedules
    their results are element-wise equal (up to the app's tolerance for
    buffered accumulation). *)
module Engine = struct
  type transport = [ `Unix | `Tcp ]

  type distributed = { procs : int; transport : transport }

  type mode = [ `Sim | `Parallel of int | `Distributed of distributed ]

  let transport_to_string = function `Unix -> "unix" | `Tcp -> "tcp"

  let mode_to_string = function
    | `Sim -> "sim"
    | `Parallel n -> Printf.sprintf "parallel(%d)" n
    | `Distributed { procs; transport } ->
        Printf.sprintf "distributed(%d,%s)" procs
          (transport_to_string transport)

  (** Structured failure of a distributed run: a worker crashed, a
      socket broke, the protocol was violated, or the deadline passed.
      [de_rank] is the offending worker when one is known. *)
  exception
    Distributed_error of { de_rank : int option; de_reason : string }

  let distributed_error_to_string = function
    | Distributed_error { de_rank = Some r; de_reason } ->
        Printf.sprintf "distributed run failed (worker %d): %s" r de_reason
    | Distributed_error { de_rank = None; de_reason } ->
        Printf.sprintf "distributed run failed: %s" de_reason
    | e -> Printexc.to_string e

  type report = {
    ep_app : string;
    ep_mode : mode;
    ep_strategy : string;
    ep_model : string;
    ep_domains : int;  (** 1 for [`Sim] *)
    ep_space_parts : int;
    ep_time_parts : int;
    ep_entries : int;
    ep_blocks : int;
    ep_steals : int;  (** 0 for [`Sim] *)
    ep_compiled : bool;
        (** loop bodies ran as {!Orion_lang.Compile} kernels rather than
            through the tree-walking interpreter ([`Sim] always
            interprets — it is the differential reference) *)
    ep_wall_seconds : float;  (** real elapsed time of the pass(es) *)
    ep_sim_time : float;  (** virtual cluster time ([`Sim] only) *)
    ep_bytes_shipped : float;
        (** wire bytes of serialized DistArray state ([`Distributed]
            only: partition ship + prefetch + tokens + flushes) *)
    ep_bytes_by_array : (string * float) list;
        (** [ep_bytes_shipped] broken down per DistArray *)
    ep_comms : string;
        (** the communication policy the run used ([`Distributed]
            only; ["local"] for [`Sim] / [`Parallel], which never
            touch the wire) *)
    ep_bytes_full : float;
        (** what the same traffic would have cost under the [full]
            policy — the before side of bytes-saved accounting
            ([`Distributed] only) *)
    ep_policy_by_array : (string * string) list;
        (** the per-DistArray encode decision the policy settled on
            (empty under [full] and for the local modes) *)
    ep_telemetry : Telemetry.summary option;
        (** wall-clock telemetry of the real run: merged span timeline,
            per-pass metrics, measured block costs ([None] for [`Sim] —
            its trace lives on the cluster — or when disabled) *)
  }

  let report_payload (r : report) : Report.json =
    Report.Obj
      [
        ("app", Report.Str r.ep_app);
        ("mode", Report.Str (mode_to_string r.ep_mode));
        ("strategy", Report.Str r.ep_strategy);
        ("model", Report.Str r.ep_model);
        ("domains", Report.Int r.ep_domains);
        ("space_parts", Report.Int r.ep_space_parts);
        ("time_parts", Report.Int r.ep_time_parts);
        ("entries", Report.Int r.ep_entries);
        ("blocks", Report.Int r.ep_blocks);
        ("steals", Report.Int r.ep_steals);
        ("compiled", Report.Bool r.ep_compiled);
        ("wall_seconds", Report.Float r.ep_wall_seconds);
        ("sim_time", Report.Float r.ep_sim_time);
        ("bytes_shipped", Report.Float r.ep_bytes_shipped);
        ( "bytes_by_array",
          Report.Obj
            (List.map
               (fun (name, b) -> (name, Report.Float b))
               r.ep_bytes_by_array) );
        ("comms", Report.Str r.ep_comms);
        ("bytes_full", Report.Float r.ep_bytes_full);
        ( "policy_by_array",
          Report.Obj
            (List.map
               (fun (name, label) -> (name, Report.Str label))
               r.ep_policy_by_array) );
        ( "telemetry",
          match r.ep_telemetry with
          | Some sm -> Telemetry.summary_json sm
          | None -> Report.Null );
      ]

  let interp_body env (inst : App.instance) ~key ~value =
    Interp.eval_body_for env ~key_var:inst.App.inst_key_var
      ~value_var:inst.App.inst_value_var ~key ~value inst.App.inst_body

  (** Compile [inst]'s loop body against [env] (call {e after} any
      shadow rebinding — the kernel captures the environment's current
      array bindings).  [None] when compilation is disabled
      ([ORION_NO_COMPILE]) or the body uses an unsupported construct;
      callers fall back to {!interp_body}. *)
  let compile_kernel (inst : App.instance) (env : Interp.env) :
      Compile.t option =
    if not (Compile.enabled ()) then None
    else begin
      (* the unboxed value slot is only sound if every iterated value
         is a float — scan the iteration space once *)
      let value_float = ref true in
      Dist_array.iter
        (fun _ v -> match v with Value.Vfloat _ -> () | _ -> value_float := false)
        inst.App.inst_iter;
      Compile.compile_body env ~value_float:!value_float
        ~key_var:inst.App.inst_key_var ~value_var:inst.App.inst_value_var
        inst.App.inst_body
    end

  (* Per-domain shadow for a buffered array: zero-filled same-shape
     dense storage rebound under the array's name in that domain's
     environment.  Buffered arrays are only ever combined with [+=]
     inside the loop and never read for their pre-pass value there, so
     accumulating into zeros and summing the shadows into the shared
     array afterwards (in fixed domain order) is equivalent to serial
     accumulation up to FP reassociation. *)
  let make_shadows (inst : App.instance) env =
    List.filter_map
      (fun (name, arr) ->
        if List.mem name inst.App.inst_buffered then begin
          let shadow =
            Dist_array.fill_dense ~name ~dims:(Dist_array.dims arr) 0.0
          in
          Interp.set_var env name
            (Value.Vextern (Dist_array.to_extern shadow));
          Some (name, arr, shadow)
        end
        else None)
      inst.App.inst_outputs

  let merge_shadows shadows =
    List.iter
      (fun (_, shared, shadow) ->
        Dist_array.iter
          (fun key v ->
            if v <> 0.0 then Dist_array.update shared key (fun x -> x +. v))
          shadow)
      shadows

  (** Called at pass boundaries with [pass_done] completed passes and
      the model arrays as they would stand if the run ended there
      (buffered arrays merged into temporary copies).  The sink decides
      what to persist — [lib/store]'s [Checkpoint] writes them to disk
      — so the core stays free of file-format dependencies. *)
  type checkpoint_sink =
    pass_done:int -> (string * float Dist_array.t) list -> unit

  (** One adaptive re-planning decision, produced by a {!replanner} at
      a pass boundary and applied before the next pass runs.  Any
      combination of the three knobs; [None] everywhere is a no-op.
      The engine applies the decision mechanically — validation
      (race-checking the candidate schedule, cost improvement) is the
      re-planner's job before it returns [Some]. *)
  type replan = {
    rp_space_boundaries : Partitioner.boundaries option;
        (** replace the space cut (e.g. weighted by measured per-block
            seconds instead of entry counts) *)
    rp_pipeline_depth : int option;  (** unordered-2D pipeline depth *)
    rp_strategy : Plan.strategy option;  (** switch strategies outright *)
    rp_reason : string;  (** for decision logs *)
  }

  (** Called after pass [pass] (0-based) completes, for every pass but
      the last, with that pass's measured block costs (empty when
      telemetry is unavailable, e.g. [`Sim] — scripted replays still
      work).  [Some] adopts the decision for all subsequent passes. *)
  type replanner =
    pass:int -> costs:Telemetry.block_cost list -> replan option

  (** The distributed master driver, installed by [lib/net]'s
      [Dist_master] (via [Orion_apps.Registry.ensure]) so the core
      library stays free of any socket/process dependency.  Receives
      the scale the instance was built with, because remote workers
      rebuild the instance from the app registry. *)
  type distributed_runner =
    session ->
    App.instance ->
    procs:int ->
    transport:transport ->
    passes:int ->
    pipeline_depth:int option ->
    scale:float ->
    telemetry:bool ->
    comms:string option ->
    checkpoint:(int * checkpoint_sink) option ->
    replanner:replanner option ->
    report

  let distributed_runner : distributed_runner option ref = ref None

  (* Rebuild plan/schedule/model for an adopted re-plan.  Strategy or
     depth switches recompile from scratch; explicit space boundaries
     then override the histogram-balanced cut (same shuffle seed as
     [compile]'s default, so independently rebuilt schedules
     fingerprint identically).  Unimodular schedules never re-balance:
     their time partitions are exact wavefronts. *)
  let apply_replan session ~(plan : Plan.t) ~iter ~depth (rp : replan) =
    let plan =
      match rp.rp_strategy with
      | Some s -> { plan with Plan.strategy = s }
      | None -> plan
    in
    let depth = Option.value rp.rp_pipeline_depth ~default:depth in
    let c = compile session ~plan ~iter ~pipeline_depth:depth () in
    let schedule =
      match (rp.rp_space_boundaries, plan.Plan.strategy) with
      | Some sb, Plan.One_d { space_dim } ->
          Schedule.partition_1d_with ~shuffle_seed:17 iter ~space_dim
            ~space_boundaries:sb
      | Some sb, Plan.Data_parallel ->
          Schedule.partition_1d_with ~shuffle_seed:17 iter ~space_dim:0
            ~space_boundaries:sb
      | Some sb, Plan.Two_d { space_dim; time_dim } ->
          Schedule.partition_2d_with ~shuffle_seed:17 iter ~space_dim
            ~time_dim ~space_boundaries:sb
            ~time_parts:c.schedule.Schedule.time_parts
      | (Some _ | None), _ -> c.schedule
    in
    let c = { c with schedule } in
    let sp = schedule.Schedule.space_parts
    and tp = schedule.Schedule.time_parts in
    let model =
      Domain_exec.model_of_plan plan ~pipeline_depth:c.pipeline_depth ~sp ~tp
    in
    (plan, c, model)

  (** Run [inst]'s parallel loop once under [mode].  [passes] repeats
      the pass (driver loops run several); the report aggregates all of
      them.  [scale] must echo the dataset scale [inst] was built with
      (only consulted by [`Distributed], whose workers rebuild the
      instance). *)
  let run (session : session) (inst : App.instance) ~(mode : mode)
      ?(passes = 1) ?pipeline_depth ?(scale = 1.0)
      ?(telemetry = Telemetry.default_enabled ()) ?comms ?checkpoint
      ?replanner () : report =
    (* re-planning feeds on measured block costs *)
    let telemetry = telemetry || Option.is_some replanner in
    let checkpoint_due pass_done =
      match checkpoint with
      | Some (every, _) when every > 0 -> pass_done mod every = 0
      | _ -> false
    in
    match mode with
    | `Distributed { procs; transport } -> (
        match !distributed_runner with
        | Some f ->
            f session inst ~procs ~transport ~passes ~pipeline_depth ~scale
              ~telemetry ~comms ~checkpoint ~replanner
        | None ->
            raise
              (Distributed_error
                 {
                   de_rank = None;
                   de_reason =
                     "no distributed runner installed (link orion_net and \
                      call Orion_apps.Registry.ensure ())";
                 }))
    | (`Sim | `Parallel _) as submode ->
    let plan0 = analyze_loop session inst.App.inst_loop in
    let compiled0 =
      compile session ~plan:plan0 ~iter:inst.App.inst_iter ?pipeline_depth ()
    in
    let model0 =
      Domain_exec.model_of_plan plan0
        ~pipeline_depth:compiled0.pipeline_depth
        ~sp:compiled0.schedule.Schedule.space_parts
        ~tp:compiled0.schedule.Schedule.time_parts
    in
    (* the current (plan, compiled, model) — an adopted re-plan swaps
       all three at a pass boundary *)
    let state = ref (plan0, compiled0, model0) in
    let consider_replan ~pass ~costs =
      match replanner with
      | None -> ()
      | Some f -> (
          match f ~pass ~costs with
          | None -> ()
          | Some rp ->
              let plan, c, _ = !state in
              state :=
                apply_replan session ~plan ~iter:inst.App.inst_iter
                  ~depth:c.pipeline_depth rp)
    in
    match submode with
    | `Sim ->
        let sim0 = Cluster.now session.cluster in
        let t0 = Clock.now () in
        let entries = ref 0 and blocks = ref 0 in
        for p = 1 to passes do
          let _, compiled, _ = !state in
          let body ~worker:_ ~key ~value =
            interp_body inst.App.inst_env inst ~key ~value
          in
          let st = execute session compiled ~body () in
          entries := !entries + st.Executor.entries_executed;
          blocks :=
            !blocks
            + (compiled.schedule.Schedule.space_parts
              * compiled.schedule.Schedule.time_parts);
          (* no wall-clock telemetry in virtual time: re-planning here
             only serves scripted replays, which ignore costs *)
          if p < passes then consider_replan ~pass:(p - 1) ~costs:[];
          (* sim arrays are live and serial — hand them over directly *)
          if checkpoint_due p then
            match checkpoint with
            | Some (_, sink) -> sink ~pass_done:p inst.App.inst_arrays
            | None -> ()
        done;
        let plan, compiled, model = !state in
        {
          ep_app = inst.App.inst_name;
          ep_mode = mode;
          ep_strategy = Plan.strategy_to_string plan.Plan.strategy;
          ep_model = Domain_exec.model_to_string model;
          ep_domains = 1;
          ep_space_parts = compiled.schedule.Schedule.space_parts;
          ep_time_parts = compiled.schedule.Schedule.time_parts;
          ep_entries = !entries;
          ep_blocks = !blocks;
          ep_steals = 0;
          ep_compiled = false;
          ep_wall_seconds = Clock.elapsed t0;
          ep_sim_time = Cluster.now session.cluster -. sim0;
          ep_bytes_shipped = 0.0;
          ep_bytes_by_array = [];
          ep_comms = "local";
          ep_bytes_full = 0.0;
          ep_policy_by_array = [];
          ep_telemetry = None;
        }
    | `Parallel domains ->
        let domains = max 1 domains in
        (* one environment per domain over the same shared DistArrays;
           buffered arrays get per-domain shadows *)
        let envs =
          Array.init domains (fun d ->
              if d = 0 then inst.App.inst_env else inst.App.inst_make_env ())
        in
        let shadows =
          Array.to_list (Array.map (fun env -> make_shadows inst env) envs)
        in
        (* compile each domain's loop body once, after the shadow
           rebinding above (the kernel captures env's array bindings);
           any domain that fails to compile interprets instead *)
        let kernels = Array.map (fun env -> compile_kernel inst env) envs in
        let bodies =
          Array.mapi
            (fun d env ->
              match kernels.(d) with
              | Some k -> fun ~key ~value -> Compile.run k ~key ~value
              | None -> fun ~key ~value -> interp_body env inst ~key ~value)
            envs
        in
        let tel = Telemetry.create ~enabled:telemetry ~workers:domains () in
        (* pass-boundary view of the model: shared arrays are live;
           buffered arrays become temporary copies with every domain's
           shadow merged in (domain order, matching the final merge) *)
        let checkpoint_view () =
          List.map
            (fun (name, arr) ->
              if List.mem name inst.App.inst_buffered then begin
                let copy =
                  Dist_array.of_partition (Dist_array.to_partition arr)
                in
                List.iter
                  (fun env_shadows ->
                    List.iter
                      (fun (n, _, shadow) ->
                        if n = name then
                          Dist_array.iter
                            (fun key v ->
                              if v <> 0.0 then
                                Dist_array.update copy key (fun x -> x +. v))
                            shadow)
                      env_shadows)
                  shadows;
                (name, copy)
              end
              else (name, arr))
            inst.App.inst_arrays
        in
        let windows = ref [] in
        let t0 = Clock.now () in
        let blocks = ref 0 and entries = ref 0 and steals = ref 0 in
        Dist_array.enter_parallel ();
        Fun.protect
          ~finally:(fun () -> Dist_array.exit_parallel ())
          (fun () ->
            for pass = 0 to passes - 1 do
              let _, compiled, model = !state in
              let w0 = if telemetry then Telemetry.now tel else 0.0 in
              let st =
                Domain_exec.run_schedule ~telemetry:tel ~pass ~domains ~model
                  compiled.schedule ~bodies
              in
              if telemetry then
                windows := (pass, w0, Telemetry.now tel) :: !windows;
              blocks := !blocks + st.Domain_exec.blocks_run;
              entries := !entries + st.Domain_exec.entries_run;
              steals := !steals + st.Domain_exec.steals;
              (* domains are joined between run_schedule calls, so the
                 boundary state is quiescent: safe to swap the schedule
                 (shards are never drained in parallel mode, so
                 per-pass costs stay readable here) *)
              if pass < passes - 1 then
                consider_replan ~pass
                  ~costs:
                    (if Telemetry.enabled tel then
                       Telemetry.block_costs_for_pass tel ~pass
                     else []);
              if checkpoint_due (pass + 1) then
                match checkpoint with
                | Some (_, sink) -> sink ~pass_done:(pass + 1) (checkpoint_view ())
                | None -> ()
            done);
        (* leak loop locals back into the envs, as the interpreter's
           per-iteration [set_var]s would have *)
        Array.iter
          (function Some k -> Compile.flush_locals k | None -> ())
          kernels;
        (* deterministic merge: domain 0's shadow first, then 1, ... *)
        List.iter merge_shadows shadows;
        (* rebind the shared buffered arrays in every env so a later
           serial pass (or another Engine.run) sees the merged state *)
        List.iteri
          (fun d env_shadows ->
            List.iter
              (fun (name, shared, _) ->
                Interp.set_var envs.(d) name
                  (Value.Vextern (Dist_array.to_extern shared)))
              env_shadows)
          shadows;
        let plan, compiled, model = !state in
        {
          ep_app = inst.App.inst_name;
          ep_mode = mode;
          ep_strategy = Plan.strategy_to_string plan.Plan.strategy;
          ep_model = Domain_exec.model_to_string model;
          ep_domains = domains;
          ep_space_parts = compiled.schedule.Schedule.space_parts;
          ep_time_parts = compiled.schedule.Schedule.time_parts;
          ep_entries = !entries;
          ep_blocks = !blocks;
          ep_steals = !steals;
          ep_compiled = Array.for_all Option.is_some kernels;
          ep_wall_seconds = Clock.elapsed t0;
          ep_sim_time = 0.0;
          ep_bytes_shipped = 0.0;
          ep_bytes_by_array = [];
          ep_comms = "local";
          ep_bytes_full = 0.0;
          ep_policy_by_array = [];
          ep_telemetry =
            (if telemetry then
               Some
                 (Telemetry.summarize tel ~mode:"parallel"
                    ~windows:(List.rev !windows) ())
             else None);
        }
end
