(** Structured event log for the Orion libraries.

    Leveled (debug < info < warn) key-value logging in logfmt style,
    written to [stderr] by default:

    {v orion level=info src=plan msg="strategy selected" strategy=2D v}

    Logging is disabled until a level is enabled via the [ORION_LOG]
    environment variable (read once at program start) or {!set_level}.
    Disabled call sites cost a single branch. *)

type level = Debug | Info | Warn

val level_to_string : level -> string

(** Parses ["debug"], ["info"], ["warn"]/["warning"] (any case). *)
val level_of_string : string -> level option

(** Enable events at [l] and above; [None] disables logging. *)
val set_level : level option -> unit

val current_level : unit -> level option

(** Re-read [ORION_LOG] (done automatically at module init). *)
val init_from_env : unit -> unit

(** [enabled l] is true when an event at level [l] would be emitted —
    use to guard expensive key-value construction. *)
val enabled : level -> bool

(** Redirect output (default [Format.err_formatter]); used by tests. *)
val set_formatter : Format.formatter -> unit

val debug : src:string -> ?kv:(string * string) list -> string -> unit
val info : src:string -> ?kv:(string * string) list -> string -> unit
val warn : src:string -> ?kv:(string * string) list -> string -> unit

(** Value formatters for key-value pairs. *)

val int : int -> string

val float : float -> string

val bool : bool -> string
