(** Orion — automating dependence-aware parallelization of serial
    imperative ML programs on distributed shared memory (Wei et al.,
    EuroSys'19).

    A {!session} owns a simulated cluster and a registry of DistArrays.
    Serial OrionScript programs are analyzed statically
    ({!analyze_script}); each [@parallel_for] loop receives a {!Plan.t}
    (1D / 2D / 2D-unimodular / data parallelism) with DistArray
    placements; loops execute either fully interpreted ({!run_script})
    or with native loop bodies ({!compile} / {!execute}) under
    dependence-preserving schedules, charging virtual time. *)

(** {1 Re-exported supporting libraries} *)

module Ast = Orion_lang.Ast
module Parser = Orion_lang.Parser
module Pretty = Orion_lang.Pretty
module Interp = Orion_lang.Interp
module Value = Orion_lang.Value
module Check = Orion_lang.Check
module Compile = Orion_lang.Compile
module Subscript = Orion_analysis.Subscript
module Depvec = Orion_analysis.Depvec
module Depanalysis = Orion_analysis.Depanalysis
module Unimodular = Orion_analysis.Unimodular
module Plan = Orion_analysis.Plan
module Refs = Orion_analysis.Refs
module Prefetch = Orion_analysis.Prefetch
module Cost_model = Orion_sim.Cost_model
module Cluster = Orion_sim.Cluster
module Recorder = Orion_sim.Recorder
module Trace = Orion_sim.Trace
module Metrics = Orion_sim.Metrics
module Clock = Orion_obs.Clock
module Telemetry = Orion_obs.Telemetry
module Dist_array = Orion_dsm.Dist_array
module Partitioner = Orion_dsm.Partitioner
module Pipeline = Orion_dsm.Pipeline
module Dist_buffer = Orion_dsm.Buffer
module Accumulator = Orion_dsm.Accumulator
module Param_server = Orion_dsm.Param_server
module Schedule = Orion_runtime.Schedule
module Executor = Orion_runtime.Executor
module Domain_exec = Orion_runtime.Domain_exec
module Explain = Orion_analysis.Explain
module Profile = Orion_lang.Profile
module Log = Log
module Report = Orion_report

(** {1 Sessions} *)

type runner =
  session ->
  Plan.t ->
  pipeline_depth:int ->
  (key:int array -> value:Value.t -> unit) ->
  Executor.pass_stats

and registered = {
  reg_name : string;
  reg_dims : int array;
  reg_size_bytes : float;
  reg_count : int;
  reg_buffered : bool;
  reg_extern : Value.extern option;
  reg_runner : runner option;
}

and session = {
  cluster : Cluster.t;
  mutable registry : registered list;
  mutable loop_cache : (Ast.stmt * Plan.t) list;
      (** analysis memoized per loop statement (macro expansion runs
          once, even for loops nested in driver loops) *)
  mutable default_pipeline_depth : int;
  mutable prefetch_recorded : (string * int array) list;
}

val create_session :
  ?cost:Cost_model.t ->
  ?recorder:Recorder.t ->
  num_machines:int ->
  workers_per_machine:int ->
  unit ->
  session

val find_registered : session -> string -> registered option
val dist_var_names : session -> string list
val buffered_names : session -> string list
val array_dims_fn : session -> string -> int array option

(** Declare a DistArray by name/shape only (native-body workflows where
    the actual storage is app-managed). *)
val register_meta :
  session ->
  name:string ->
  dims:int array ->
  ?buffered:bool ->
  ?count:int ->
  unit ->
  unit

(** Register a float DistArray: visible to interpreted programs and the
    analyzer.  [buffered] marks it as written through a DistArray
    Buffer (writes exempt from dependence analysis). *)
val register : session -> ?buffered:bool -> float Dist_array.t -> unit

(** Register a DistArray of arbitrary element type for iteration (e.g.
    SLR samples), with a conversion to interpreter values. *)
val register_iterable :
  session -> 'v Dist_array.t -> to_value:('v -> Value.t) -> unit

(** {1 Analysis} *)

exception Analysis_error of string

(** Analyze one [@parallel_for] statement (memoized per statement). *)
val analyze_loop : session -> Ast.stmt -> Plan.t

(** Analyze every [@parallel_for] loop in a script, in order. *)
val analyze_script : session -> string -> Plan.t list

(** Run the semantic checker with the registered DistArrays as
    globals. *)
val check_script : session -> string -> Check.diagnostic list

(** {1 Compilation and native execution} *)

type 'v compiled = {
  plan : Plan.t;
  schedule : 'v Schedule.t;
  rotated_bytes_per_partition : float;
  pipeline_depth : int;
}

(** Build the static computation schedule for [plan] over [iter]:
    space partitions = workers; time partitions = workers ×
    [pipeline_depth] for unordered 2D (Fig. 8); exact wavefronts for
    unimodular plans.  [shuffle_seed] randomizes within-block sample
    order (SGD practice); [None] keeps ascending key order. *)
val compile :
  session ->
  plan:Plan.t ->
  iter:'v Dist_array.t ->
  ?pipeline_depth:int ->
  ?shuffle_seed:int option ->
  unit ->
  'v compiled

(** Execute a compiled loop with a native body under the plan's
    executor (1D / ordered wavefront / unordered pipelined rotation /
    time-major). *)
val execute :
  session ->
  'v compiled ->
  ?compute:Executor.compute_cost ->
  body:'v Executor.body ->
  unit ->
  Executor.pass_stats

(** {1 Interpreted driver programs} *)

(** Run a whole OrionScript driver program: statements execute in the
    interpreter; [@parallel_for] loops are analyzed (once), compiled,
    and executed on the simulated cluster.  Host builtins provided:
    [get_aggregated_value], [reset_accumulator], and the prefetch
    markers.  Returns the final environment and per-loop-execution
    statistics. *)
val run_script :
  session ->
  ?seed:int ->
  ?profile:Profile.t ->
  string ->
  Interp.env * Executor.pass_stats list

(** {1 Prefetch execution} *)

(** Run a synthesized prefetch program ({!Prefetch.synthesize}) for one
    iteration; returns the recorded (array, 0-based key) accesses in
    order. *)
val run_prefetch_program :
  session ->
  generated:Ast.block ->
  key_var:string ->
  value_var:string ->
  key:int array ->
  value:Value.t ->
  bindings:(string * Value.t) list ->
  (string * int array) list

(** {1 Application registry}

    One registry for the built-in applications (mf, slr, lda, gbt).
    The CLI, benchmark harness, and verification suite all resolve apps
    here instead of hand-wiring their own copies.
    [Orion_apps.Registry.ensure ()] populates it. *)

module App : sig
  (** A materialized app: a session with registered DistArrays, the
      parsed parallel loop, and interpreter plumbing to run its body. *)
  type instance = {
    inst_name : string;  (** registry name of the app this came from *)
    inst_session : session;
    inst_env : Interp.env;  (** the primary (serial-path) environment *)
    inst_make_env : unit -> Interp.env;
        (** a fresh environment over the {e same} DistArrays and host
            builtins — one per domain for parallel execution, because
            {!Interp.env} is single-writer *)
    inst_loop : Ast.stmt;
    inst_key_var : string;
    inst_value_var : string;
    inst_body : Ast.block;
    inst_iter : Value.t Dist_array.t;
    inst_iter_name : string;
    inst_outputs : (string * float Dist_array.t) list;
        (** model arrays compared by equality/differential checks *)
    inst_arrays : (string * float Dist_array.t) list;
        (** every float model DistArray by name — outputs and read-only
            inputs alike; what the distributed runtime ships as
            partitions, serves prefetches from, and applies write
            journals to *)
    inst_buffered : string list;
        (** buffer-written arrays, dependence-exempt; merged from
            per-domain shadows under parallel execution *)
  }

  type t = {
    app_name : string;
    app_description : string;
    app_script : string;  (** the OrionScript source fed to the analyzer *)
    app_tolerance : float option;
        (** [None]: independent dependence-respecting runs must agree
            bitwise; [Some rel]: within relative tolerance (buffered FP
            accumulation is order-sensitive in the last bits) *)
    app_make :
      ?scale:float -> num_machines:int -> workers_per_machine:int -> unit ->
      instance;
        (** build a fresh deterministic instance (identical initial
            state every call); [scale] enlarges the dataset *)
    app_register_meta : session -> unit;
        (** register the paper-scale array shapes so the analysis
            pipeline can run without materializing data *)
    app_loss : (instance -> float) option;
        (** training objective over the instance's current model state,
            for convergence benchmarking ([None]: no scalar loss) *)
    app_prepare_pass : (instance -> unit) option;
        (** fold buffered accumulators into the model between separate
            [Engine.run] calls (e.g. apply a gradient buffer and zero
            it) — only used by pass-at-a-time drivers such as the
            convergence bench *)
  }

  (** Register (or replace, by name) an app. *)
  val register : t -> unit

  val all : unit -> t list
  val find : string -> t option
  val names : unit -> string list
end

(** {1 The engine}

    Unified execution entry point over both substrates: the simulated
    cluster ([`Sim], virtual time, sequential) and a real OCaml 5
    domain pool ([`Parallel n], wall clock, {!Domain_exec}).  Both
    execute the {e same} compiled schedule under the same
    happens-before order, so for serializable schedules their results
    are element-wise equal (up to the app's tolerance for buffered
    accumulation). *)

module Engine : sig
  type transport = [ `Unix | `Tcp ]

  type distributed = { procs : int; transport : transport }

  type mode = [ `Sim | `Parallel of int | `Distributed of distributed ]

  val transport_to_string : transport -> string
  val mode_to_string : mode -> string

  (** Structured failure of a distributed run: a worker crashed, a
      socket broke, the protocol was violated, or the deadline passed.
      [de_rank] names the offending worker when one is known. *)
  exception
    Distributed_error of { de_rank : int option; de_reason : string }

  val distributed_error_to_string : exn -> string

  type report = {
    ep_app : string;
    ep_mode : mode;
    ep_strategy : string;
    ep_model : string;
    ep_domains : int;  (** 1 for [`Sim] *)
    ep_space_parts : int;
    ep_time_parts : int;
    ep_entries : int;
    ep_blocks : int;
    ep_steals : int;  (** 0 for [`Sim] *)
    ep_compiled : bool;
        (** loop bodies ran as {!Orion_lang.Compile} kernels rather
            than through the tree-walking interpreter ([`Sim] always
            interprets — it is the differential reference) *)
    ep_wall_seconds : float;
    ep_sim_time : float;  (** virtual cluster time ([`Sim] only) *)
    ep_bytes_shipped : float;
        (** wire bytes of serialized DistArray state ([`Distributed]
            only: partition ship + prefetch + tokens + flushes) *)
    ep_bytes_by_array : (string * float) list;
        (** [ep_bytes_shipped] broken down per DistArray *)
    ep_comms : string;
        (** the communication policy the run used ([`Distributed]
            only; ["local"] for [`Sim] / [`Parallel]) *)
    ep_bytes_full : float;
        (** what the same traffic would have cost under the [full]
            policy ([`Distributed] only) *)
    ep_policy_by_array : (string * string) list;
        (** the per-DistArray encode decision the policy settled on
            (empty under [full] and for the local modes) *)
    ep_telemetry : Telemetry.summary option;
        (** wall-clock telemetry of the real run: merged span timeline,
            per-pass metrics, measured block costs ([None] for [`Sim] —
            its trace lives on the cluster — or when disabled) *)
  }

  val report_payload : report -> Report.json

  (** Compile [inst]'s loop body against [env] with {!Compile} (call
      {e after} any shadow rebinding — the kernel captures the
      environment's current array bindings).  [None] when compilation
      is disabled ([ORION_NO_COMPILE]) or the body uses an unsupported
      construct; callers fall back to the interpreter. *)
  val compile_kernel : App.instance -> Interp.env -> Compile.t option

  (** Called at pass boundaries — every [every] completed passes when
      [run] gets [~checkpoint:(every, sink)] — with the model arrays as
      they would stand if the run ended there: shared arrays live,
      buffered arrays merged into temporary copies.  The sink decides
      what to persist ([lib/store]'s [Checkpoint.save] writes them to
      disk), so the core stays free of file-format dependencies. *)
  type checkpoint_sink =
    pass_done:int -> (string * float Dist_array.t) list -> unit

  (** One adaptive re-planning decision, applied at a pass boundary for
      all subsequent passes.  Any combination of the three knobs;
      [None] everywhere is a no-op.  The engine applies the decision
      mechanically — validating the candidate schedule (race-checking
      it, requiring a predicted improvement) is the re-planner's job
      before it returns [Some]; [lib/tune] builds such re-planners. *)
  type replan = {
    rp_space_boundaries : Partitioner.boundaries option;
        (** replace the space cut (e.g. weighted by measured per-block
            seconds instead of entry counts) *)
    rp_pipeline_depth : int option;  (** unordered-2D pipeline depth *)
    rp_strategy : Plan.strategy option;  (** switch strategies outright *)
    rp_reason : string;  (** for decision logs *)
  }

  (** Called after pass [pass] (0-based) completes, for every pass but
      the last, with that pass's measured block costs (empty when
      wall-clock telemetry is unavailable, e.g. under [`Sim] — scripted
      replays still work). *)
  type replanner =
    pass:int -> costs:Telemetry.block_cost list -> replan option

  (** The distributed master driver, installed by [lib/net]'s
      [Dist_master] (via [Orion_apps.Registry.ensure ()]) so the core
      library stays free of socket/process dependencies. *)
  type distributed_runner =
    session ->
    App.instance ->
    procs:int ->
    transport:transport ->
    passes:int ->
    pipeline_depth:int option ->
    scale:float ->
    telemetry:bool ->
    comms:string option ->
    checkpoint:(int * checkpoint_sink) option ->
    replanner:replanner option ->
    report

  val distributed_runner : distributed_runner option ref

  (** Run [inst]'s parallel loop [passes] times under [mode], mutating
      its DistArrays in place.  [scale] must echo the dataset scale
      [inst] was built with (only consulted by [`Distributed], whose
      workers rebuild the instance from the app registry).
      [telemetry] (default {!Telemetry.default_enabled}) turns
      wall-clock span recording on for the real modes; the summary
      lands in [ep_telemetry].  [comms] selects the [`Distributed]
      communication policy ([Orion_net.Policy.spec_of_string] syntax:
      ["auto" | "full" | "delta" | "topk:K" | "budget:BYTES"]; default
      the [ORION_COMMS] environment variable, then ["auto"]).
      [checkpoint] registers a pass-boundary {!checkpoint_sink} invoked
      every [every] completed passes, in all three modes.
      [replanner] closes the measurement loop: it is consulted at every
      pass boundary with that pass's measured block costs and may adopt
      a new schedule for the remaining passes (telemetry is forced on
      when one is supplied; under [`Distributed] only space-boundary
      re-balancing is honored — partitions migrate between workers at
      the barrier).
      @raise Distributed_error when a [`Distributed] run fails. *)
  val run :
    session ->
    App.instance ->
    mode:mode ->
    ?passes:int ->
    ?pipeline_depth:int ->
    ?scale:float ->
    ?telemetry:bool ->
    ?comms:string ->
    ?checkpoint:int * checkpoint_sink ->
    ?replanner:replanner ->
    unit ->
    report
end
