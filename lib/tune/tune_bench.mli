(** Static-vs-adaptive benchmarking: run an app twice on the same real
    backend — once with the planner's static schedule, once with the
    measurement-driven {!Replanner} — then replay the adaptive run's
    adopted schedule sequence statically and check the results agree.
    [bench --mode tune] and [orion tune] are thin wrappers. *)

type mode = [ `Parallel of int | `Distributed of int * Orion.Engine.transport ]

type run_result = {
  tb_app : string;
  tb_mode : string;  (** ["parallel"] or ["distributed"] *)
  tb_workers : int;
  tb_passes : int;
  tb_static_wall : float;
  tb_adaptive_wall : float;
  tb_speedup : float;  (** static wall / adaptive wall *)
  tb_static_straggler : float;
  tb_adaptive_straggler : float;
  tb_static_crit : float;
      (** sum over passes of max per-partition block seconds: the
          parallel critical path.  Wall clock tracks it when each worker
          has a core of its own; on oversubscribed hosts wall collapses
          to total work and hides the re-balance, so both are reported *)
  tb_adaptive_crit : float;
  tb_crit_speedup : float;  (** static critical path / adaptive *)
  tb_static_pass_walls : (int * float) list;
  tb_adaptive_pass_walls : (int * float) list;
  tb_decisions : Replanner.decision list;  (** the adaptive run's log *)
  tb_adopted : int;
  tb_rejected : int;
  tb_adopted_unvalidated : int;
      (** adopted decisions that were not race-checker-clean — must be 0 *)
  tb_replay_equal : bool;
      (** adaptive final arrays match a static replay of the adopted
          schedule sequence (bitwise, or within the app's tolerance) *)
}

val result_json : run_result -> Orion.Report.json
val pp_result : Format.formatter -> run_result -> unit

(** One static + adaptive + replay comparison.  [num_machines] /
    [workers_per_machine] shape parallel instances; distributed
    instances are one worker per machine, as everywhere else. *)
val run_app :
  app:Orion.App.t ->
  mode:mode ->
  passes:int ->
  scale:float ->
  num_machines:int ->
  workers_per_machine:int ->
  ?comms:string ->
  unit ->
  run_result

val default_out : string

(** The [bench --mode tune] suite: every listed app on every parallel
    domain count > 1 and every distributed proc count > 1, written to
    [out] as a versioned [bench-tune] envelope with the uniform bench
    rows appended.  Default app: [slrskew] — the Zipf-skewed workload
    the re-planner exists for. *)
val run :
  ?apps:string list ->
  ?domains_list:int list ->
  ?procs_list:int list ->
  ?comms:string ->
  ?passes:int ->
  ?transport:Orion.Engine.transport ->
  scale:float ->
  out:string ->
  ?num_machines:int ->
  ?workers_per_machine:int ->
  ?print:bool ->
  unit ->
  Orion_apps.Bench.row list
