(** Re-planner factories for {!Orion.Engine.run}'s [?replanner] hook.

    {!make} builds the measurement-driven re-planner: at each pass
    boundary it folds the pass's block costs into a {!Cost_table},
    proposes a weighted-interval space cut ({!Orion.Partitioner.weighted_ranges}
    over measured per-entry rates), and adopts it only if (a) the
    predicted max-partition cost improves on the observed one by at
    least [margin] and (b) the candidate schedule passes the
    [lib/verify] race checker against serially observed dependence
    edges.  Rejected candidates are logged, never adopted.

    {!scripted} replays a fixed decision sequence — the bit-equality
    check re-runs an adaptive run's adopted schedule sequence statically
    and the two must agree. *)

type decision = {
  d_pass : int;  (** the pass boundary the decision was taken at *)
  d_adopted : bool;
  d_reason : string;
  d_boundaries : int array option;  (** the candidate space cut *)
  d_observed_max : float;  (** measured max-partition seconds *)
  d_predicted_max : float;  (** predicted max under the candidate cut *)
  d_race_checked : bool;
  d_race_violations : int;
  d_replan : Orion.Engine.replan option;  (** what was handed to the engine *)
}

val decision_to_string : decision -> string
val decision_json : decision -> Orion.Report.json

type t = {
  fn : Orion.Engine.replanner;
  log : unit -> decision list;  (** decisions in the order they were taken *)
  prepare : unit -> unit;
      (** force the one-time serial dependence observation now (it is
          otherwise lazy) — benchmarks call it before starting the
          clock so the race-check setup is not billed to the first
          adopted re-plan *)
}

(** Adopted (pass, replan) pairs from a finished run's log — feed to
    {!scripted} to replay the same schedule sequence statically. *)
val adopted : t -> (int * Orion.Engine.replan) list

(** The measurement-driven re-planner for one app instance.  [app],
    [scale], [num_machines] and [workers_per_machine] must match how
    [inst] was built: the race check serially observes a {e fresh}
    instance (once, lazily) because observation mutates its arrays.
    [margin] (default 0.1) is the minimum predicted improvement of the
    max-partition cost before a re-balance is worth a migration; a
    measured straggler ratio under [1 + 2 margin] also keeps the
    current cut (re-balancing noise is how adaptive schedulers
    thrash).  Each adoption escalates the effective margin by another
    [margin] — migrations have a real cost, so successive re-balances
    must clear an ever-higher bar and the cut converges instead of
    chasing noise. *)
val make :
  ?margin:float ->
  app:Orion.App.t ->
  inst:Orion.App.instance ->
  scale:float ->
  num_machines:int ->
  workers_per_machine:int ->
  unit ->
  t

(** Replay a fixed decision script: [(pass, replan)] applied at each
    listed pass boundary, everything else kept. *)
val scripted : (int * Orion.Engine.replan) list -> t
