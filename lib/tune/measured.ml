(* Side-by-side static vs measured candidate costing.  The static
   planner's candidate costs are communication heuristics in
   elements-moved units; here each candidate gets a calibrated cost in
   seconds: cand_cost * measured sec/entry (comm term) plus a compute
   term — observed max-partition seconds for the strategy that ran
   (its real imbalance), total/parts for the alternatives the static
   model assumes balanced.  A high measured straggler ratio can
   therefore flip the decision toward a candidate the static model
   ranked worse. *)

module Plan = Orion.Plan

type measured_candidate = {
  mc_candidate : Plan.candidate;
  mc_measured_cost : float;
  mc_measured_chosen : bool;
}

type report = {
  mr_app : string;
  mr_mode : string;
  mr_workers : int;
  mr_pass : int;
  mr_table : Cost_table.t;
  mr_candidates : measured_candidate list;
  mr_static_choice : string;
  mr_measured_choice : string;
  mr_flipped : bool;
}

let recost (table : Cost_table.t) (plan : Plan.t) =
  let parts = max 1 (Array.length table.Cost_table.ct_parts) in
  let costed =
    List.map
      (fun (c : Plan.candidate) ->
        let compute =
          if c.Plan.cand_chosen then table.Cost_table.ct_max_seconds
          else table.Cost_table.ct_total_seconds /. float_of_int parts
        in
        let comm = c.Plan.cand_cost *. table.Cost_table.ct_sec_per_entry in
        (c, compute +. comm))
      plan.Plan.provenance.Plan.considered
  in
  let best =
    List.fold_left
      (fun acc (_, cost) ->
        match acc with None -> Some cost | Some b -> Some (Float.min b cost))
      None costed
  in
  List.map
    (fun (c, cost) ->
      {
        mc_candidate = c;
        mc_measured_cost = cost;
        mc_measured_chosen = (match best with Some b -> cost <= b | None -> false);
      })
    costed

let choice_label pred candidates ~default =
  match List.find_opt pred candidates with
  | Some mc -> Plan.strategy_to_string mc.mc_candidate.Plan.cand_strategy
  | None -> default

let run_app ~name ~domains ~passes ~scale ~num_machines ~workers_per_machine =
  match Orion.App.find name with
  | None -> Error (Printf.sprintf "unknown app %S" name)
  | Some a -> (
      let inst =
        a.Orion.App.app_make ~scale ~num_machines ~workers_per_machine ()
      in
      let plan =
        Orion.analyze_loop inst.Orion.App.inst_session
          inst.Orion.App.inst_loop
      in
      let r =
        Orion.Engine.run inst.Orion.App.inst_session inst
          ~mode:(`Parallel domains) ~passes ~scale ~telemetry:true ()
      in
      match r.Orion.Engine.ep_telemetry with
      | None -> Error "run produced no telemetry"
      | Some sm -> (
          let pass = passes - 1 in
          match
            Cost_table.of_costs ~sp:r.Orion.Engine.ep_space_parts ~pass
              sm.Orion.Telemetry.sm_block_costs
          with
          | None -> Error "run produced no block-cost measurements"
          | Some table ->
              let candidates = recost table plan in
              let static_choice =
                choice_label
                  (fun mc -> mc.mc_candidate.Plan.cand_chosen)
                  candidates
                  ~default:(Plan.strategy_to_string plan.Plan.strategy)
              in
              let measured_choice =
                choice_label
                  (fun mc -> mc.mc_measured_chosen)
                  candidates ~default:static_choice
              in
              Ok
                {
                  mr_app = name;
                  mr_mode = Printf.sprintf "parallel (%d domains)" domains;
                  mr_workers = domains;
                  mr_pass = pass;
                  mr_table = table;
                  mr_candidates = candidates;
                  mr_static_choice = static_choice;
                  mr_measured_choice = measured_choice;
                  mr_flipped = static_choice <> measured_choice;
                }))

let pp_report fmt r =
  Fmt.pf fmt "=== measured decision tree: app %s, %s ===@." r.mr_app r.mr_mode;
  Cost_table.pp fmt r.mr_table;
  Fmt.pf fmt "@.candidates (static cost | measured, calibrated to seconds)@.";
  List.iter
    (fun mc ->
      Fmt.pf fmt "  %-24s static %8.1f%s | measured %.4f s%s@."
        (Plan.strategy_to_string mc.mc_candidate.Plan.cand_strategy)
        mc.mc_candidate.Plan.cand_cost
        (if mc.mc_candidate.Plan.cand_chosen then " <= static" else
           "          ")
        mc.mc_measured_cost
        (if mc.mc_measured_chosen then " <= measured" else ""))
    r.mr_candidates;
  if r.mr_flipped then
    Fmt.pf fmt
      "@.decision FLIPPED under measurement: static chose %s, measured \
       costs prefer %s@."
      r.mr_static_choice r.mr_measured_choice
  else
    Fmt.pf fmt "@.no flip: static and measured both choose %s@."
      r.mr_static_choice

let report_to_string r = Fmt.str "%a" pp_report r

let report_json r : Orion.Report.json =
  let open Orion.Report in
  Obj
    [
      ("app", Str r.mr_app);
      ("mode", Str r.mr_mode);
      ("workers", Int r.mr_workers);
      ("pass", Int r.mr_pass);
      ("table", Cost_table.to_json r.mr_table);
      ( "candidates",
        List
          (List.map
             (fun mc ->
               Obj
                 [
                   ( "strategy",
                     Str
                       (Plan.strategy_to_string
                          mc.mc_candidate.Plan.cand_strategy) );
                   ("static_cost", Float mc.mc_candidate.Plan.cand_cost);
                   ("static_chosen", Bool mc.mc_candidate.Plan.cand_chosen);
                   ("measured_cost_seconds", Float mc.mc_measured_cost);
                   ("measured_chosen", Bool mc.mc_measured_chosen);
                 ])
             r.mr_candidates) );
      ("static_choice", Str r.mr_static_choice);
      ("measured_choice", Str r.mr_measured_choice);
      ("flipped", Bool r.mr_flipped);
    ]
