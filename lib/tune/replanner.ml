(* The decision side of adaptive re-planning: measured per-partition
   rates -> weighted space cut -> improvement gate -> race-checker gate
   -> adopt.  The engine applies adopted decisions mechanically
   (Engine.apply_replan / the distributed Repartition directive); every
   gate lives here so an invalid or non-improving candidate can never
   reach an executor. *)

module Plan = Orion.Plan
module Schedule = Orion.Schedule
module Partitioner = Orion.Partitioner
module Race = Orion_verify.Race

type decision = {
  d_pass : int;
  d_adopted : bool;
  d_reason : string;
  d_boundaries : int array option;
  d_observed_max : float;
  d_predicted_max : float;
  d_race_checked : bool;
  d_race_violations : int;
  d_replan : Orion.Engine.replan option;
}

let decision_to_string d =
  Printf.sprintf "pass %d: %s — %s%s" d.d_pass
    (if d.d_adopted then "re-plan adopted" else "kept")
    d.d_reason
    (if d.d_race_checked then
       Printf.sprintf " (race check: %d violation(s))" d.d_race_violations
     else "")

let decision_json d : Orion.Report.json =
  let open Orion.Report in
  Obj
    [
      ("pass", Int d.d_pass);
      ("adopted", Bool d.d_adopted);
      ("reason", Str d.d_reason);
      ( "boundaries",
        match d.d_boundaries with
        | None -> Null
        | Some b -> List (Array.to_list (Array.map (fun v -> Int v) b)) );
      ("observed_max_seconds", Float d.d_observed_max);
      ("predicted_max_seconds", Float d.d_predicted_max);
      ("race_checked", Bool d.d_race_checked);
      ("race_violations", Int d.d_race_violations);
    ]

type t = {
  fn : Orion.Engine.replanner;
  log : unit -> decision list;
  prepare : unit -> unit;
}

let adopted t =
  List.filter_map
    (fun d ->
      match (d.d_adopted, d.d_replan) with
      | true, Some rp -> Some (d.d_pass, rp)
      | _ -> None)
    (t.log ())

let keep ~pass ~reason ?(observed = 0.0) ?(predicted = 0.0) ?boundaries
    ?(race_checked = false) ?(violations = 0) () =
  {
    d_pass = pass;
    d_adopted = false;
    d_reason = reason;
    d_boundaries = boundaries;
    d_observed_max = observed;
    d_predicted_max = predicted;
    d_race_checked = race_checked;
    d_race_violations = violations;
    d_replan = None;
  }

let make ?(margin = 0.1) ~(app : Orion.App.t) ~(inst : Orion.App.instance)
    ~scale ~num_machines ~workers_per_machine () =
  let plan = Orion.analyze_loop inst.Orion.App.inst_session inst.inst_loop in
  let compiled =
    Orion.compile inst.inst_session ~plan ~iter:inst.inst_iter ()
  in
  let sched0 = compiled.Orion.schedule in
  let sp = sched0.Schedule.space_parts
  and tp = sched0.Schedule.time_parts in
  let space_dim =
    match plan.Plan.strategy with
    | Plan.One_d { space_dim } -> Some space_dim
    | Plan.Two_d { space_dim; _ } -> Some space_dim
    | Plan.Data_parallel -> Some 0
    | Plan.Two_d_unimodular _ -> None
  in
  let counts =
    match space_dim with
    | Some d -> Partitioner.histogram inst.inst_iter ~dim:d
    | None -> [||]
  in
  (* serial observation runs once, on a fresh twin instance (it mutates
     the arrays it observes); the edges are keyed by iteration keys, so
     one observation validates every candidate cut of the same data *)
  let edges =
    lazy
      (let fresh =
         app.Orion.App.app_make ~scale ~num_machines ~workers_per_machine ()
       in
       let log = Orion_verify.Verify.observe fresh in
       Orion_verify.Depobserve.edges ~ordered:plan.Plan.ordered
         ~skip_arrays:fresh.Orion.App.inst_buffered log)
  in
  let cur = ref sched0.Schedule.space_boundaries in
  (* calibrated per-index seconds-per-entry estimates.  Each pass only
     measures partition totals, so each pass multiplicatively rescales
     the indices of each partition until the estimates reproduce the
     measurement (iterative proportional fitting); successive cuts
     measure different segments, so resolution accumulates and the
     weighted cut converges even when skew varies inside a partition *)
  let rates = Array.make (Array.length counts) 1.0 in
  let calibrate (table : Cost_table.t) =
    let b = !cur in
    for p = 0 to sp - 1 do
      let predicted = ref 0.0 in
      for i = b.(p) to b.(p + 1) - 1 do
        predicted := !predicted +. (float_of_int counts.(i) *. rates.(i))
      done;
      let observed = table.Cost_table.ct_parts.(p).Cost_table.pc_seconds in
      if !predicted > 0.0 && observed > 0.0 then begin
        let s = observed /. !predicted in
        for i = b.(p) to b.(p + 1) - 1 do
          rates.(i) <- rates.(i) *. s
        done
      end
    done
  in
  let decisions : decision list ref = ref [] in
  let note d = decisions := d :: !decisions in
  (* every adoption raises the bar for the next one: each migration has
     a real cost, so marginal (noise-level) re-balances must not keep
     firing once the cut is close to converged *)
  let n_adopted = ref 0 in
  let eff_margin () = margin *. (1.0 +. float_of_int !n_adopted) in
  let part_weight weights b p =
    let acc = ref 0.0 in
    for i = b.(p) to b.(p + 1) - 1 do
      acc := !acc +. weights.(i)
    done;
    !acc
  in
  let candidate_schedule nb =
    match plan.Plan.strategy with
    | Plan.One_d { space_dim } ->
        Some
          (Schedule.partition_1d_with ~shuffle_seed:17 inst.inst_iter
             ~space_dim ~space_boundaries:nb)
    | Plan.Data_parallel ->
        Some
          (Schedule.partition_1d_with ~shuffle_seed:17 inst.inst_iter
             ~space_dim:0 ~space_boundaries:nb)
    | Plan.Two_d { space_dim; time_dim } ->
        Some
          (Schedule.partition_2d_with ~shuffle_seed:17 inst.inst_iter
             ~space_dim ~time_dim ~space_boundaries:nb ~time_parts:tp)
    | Plan.Two_d_unimodular _ -> None
  in
  let fn ~pass ~costs =
    match space_dim with
    | None ->
        note (keep ~pass ~reason:"strategy exposes no re-balanceable space cut" ());
        None
    | Some _ -> (
        match Cost_table.of_costs ~sp ~pass costs with
        | None ->
            note (keep ~pass ~reason:"no block-cost measurements" ());
            None
        | Some table -> (
            calibrate table;
            let margin = eff_margin () in
            if table.Cost_table.ct_straggler < 1.0 +. (2.0 *. margin) then begin
              (* measured imbalance below the noise threshold: chasing
                 it is how adaptive schedulers thrash (the measurement
                 was still folded into the calibrated rates above) *)
              note
                (keep ~pass
                   ~reason:
                     (Printf.sprintf
                        "measured straggler %.2f below re-balance threshold \
                         %.2f"
                        table.Cost_table.ct_straggler
                        (1.0 +. (2.0 *. margin)))
                   ~observed:table.Cost_table.ct_max_seconds ());
              None
            end
            else
            let boundaries = !cur in
            let weights =
              Array.mapi (fun i c -> float_of_int c *. rates.(i)) counts
            in
            let nb = Partitioner.weighted_ranges ~weights ~parts:sp in
            if nb = boundaries then begin
              note
                (keep ~pass ~reason:"measured cut equals the current cut"
                   ~observed:table.Cost_table.ct_max_seconds ());
              None
            end
            else
              let predicted =
                let m = ref 0.0 in
                for p = 0 to sp - 1 do
                  m := Float.max !m (part_weight weights nb p)
                done;
                !m
              in
              let observed = table.Cost_table.ct_max_seconds in
              if predicted >= observed *. (1.0 -. margin) then begin
                note
                  (keep ~pass
                     ~reason:
                       (Printf.sprintf
                          "non-improving: predicted max %.4fs vs observed \
                           %.4fs (margin %.0f%%)"
                          predicted observed (100.0 *. margin))
                     ~observed ~predicted ~boundaries:nb ());
                None
              end
              else
                match candidate_schedule nb with
                | None ->
                    note (keep ~pass ~reason:"schedule rebuild unsupported" ());
                    None
                | Some sched -> (
                    let model =
                      Race.model_of_plan plan
                        ~pipeline_depth:compiled.Orion.pipeline_depth ~sp ~tp
                    in
                    let race = Race.build model ~workers:sp sched in
                    let violations =
                      Race.check race ~ordered:plan.Plan.ordered
                        (Lazy.force edges)
                    in
                    match violations with
                    | _ :: _ ->
                        note
                          (keep ~pass
                             ~reason:"candidate schedule rejected by the race checker"
                             ~observed ~predicted ~boundaries:nb
                             ~race_checked:true
                             ~violations:(List.length violations) ());
                        None
                    | [] ->
                        let reason =
                          Printf.sprintf
                            "weighted re-balance: observed max %.4fs -> \
                             predicted %.4fs (straggler %.2f)"
                            observed predicted table.Cost_table.ct_straggler
                        in
                        let rp =
                          {
                            Orion.Engine.rp_space_boundaries = Some nb;
                            rp_pipeline_depth = None;
                            rp_strategy = None;
                            rp_reason = reason;
                          }
                        in
                        cur := nb;
                        incr n_adopted;
                        note
                          {
                            d_pass = pass;
                            d_adopted = true;
                            d_reason = reason;
                            d_boundaries = Some nb;
                            d_observed_max = observed;
                            d_predicted_max = predicted;
                            d_race_checked = true;
                            d_race_violations = 0;
                            d_replan = Some rp;
                          };
                        Some rp)))
  in
  {
    fn;
    log = (fun () -> List.rev !decisions);
    prepare = (fun () -> ignore (Lazy.force edges));
  }

let scripted script =
  let decisions : decision list ref = ref [] in
  let fn ~pass ~costs =
    ignore costs;
    match List.assoc_opt pass script with
    | None -> None
    | Some rp ->
        decisions :=
          {
            d_pass = pass;
            d_adopted = true;
            d_reason = "scripted replay: " ^ rp.Orion.Engine.rp_reason;
            d_boundaries = rp.Orion.Engine.rp_space_boundaries;
            d_observed_max = 0.0;
            d_predicted_max = 0.0;
            d_race_checked = false;
            d_race_violations = 0;
            d_replan = Some rp;
          }
          :: !decisions;
        Some rp
  in
  { fn; log = (fun () -> List.rev !decisions); prepare = (fun () -> ()) }
