(** The "measured" decision-tree variant behind [orion explain
    --measured]: run an app briefly on a real backend, calibrate a
    {!Cost_table} from its block costs, re-cost every strategy
    candidate the static planner considered, and flag decisions that
    flip under measurement.

    Calibration: the static tree counts elements moved (communication
    units); the measured tree charges each such element the observed
    per-entry second rate and adds a measured compute term — the
    observed max-partition seconds for the strategy that actually ran
    (real skew included), the balanced ideal [total / parts] for the
    alternatives the static model assumed balanced. *)

type measured_candidate = {
  mc_candidate : Orion.Plan.candidate;
  mc_measured_cost : float;  (** calibrated cost, in seconds *)
  mc_measured_chosen : bool;
}

type report = {
  mr_app : string;
  mr_mode : string;  (** the backend that produced the measurements *)
  mr_workers : int;
  mr_pass : int;  (** the measured pass the table was built from *)
  mr_table : Cost_table.t;
  mr_candidates : measured_candidate list;
  mr_static_choice : string;
  mr_measured_choice : string;
  mr_flipped : bool;  (** measured choice differs from the static one *)
}

(** Re-cost a plan's candidates against a measured table. *)
val recost : Cost_table.t -> Orion.Plan.t -> measured_candidate list

(** Run [name] for [passes] on [`Parallel domains] with telemetry and
    build the measured report from the last pass's costs. *)
val run_app :
  name:string ->
  domains:int ->
  passes:int ->
  scale:float ->
  num_machines:int ->
  workers_per_machine:int ->
  (report, string) result

val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string
val report_json : report -> Orion.Report.json
