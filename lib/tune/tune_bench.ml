(* Static vs adaptive on the same backend, plus the equality story:
   an adaptive run is only trusted if a fresh static run replaying the
   same adopted schedule sequence (Replanner.scripted) lands on the
   same final arrays.  That separates "the re-planner helped" from
   "the migration changed the answer". *)

module App = Orion.App
module Engine = Orion.Engine
module Report = Orion.Report
module Bench = Orion_apps.Bench

type mode = [ `Parallel of int | `Distributed of int * Engine.transport ]

type run_result = {
  tb_app : string;
  tb_mode : string;
  tb_workers : int;
  tb_passes : int;
  tb_static_wall : float;
  tb_adaptive_wall : float;
  tb_speedup : float;
  tb_static_straggler : float;
  tb_adaptive_straggler : float;
  tb_static_crit : float;
  tb_adaptive_crit : float;
  tb_crit_speedup : float;
  tb_static_pass_walls : (int * float) list;
  tb_adaptive_pass_walls : (int * float) list;
  tb_decisions : Replanner.decision list;
  tb_adopted : int;
  tb_rejected : int;
  tb_adopted_unvalidated : int;
  tb_replay_equal : bool;
}

let straggler (r : Engine.report) =
  match r.Engine.ep_telemetry with
  | Some sm -> sm.Orion.Telemetry.sm_overall.Orion.Metrics.straggler_ratio
  | None -> 1.0

(* sum over passes of the max per-partition block compute: the
   parallel critical path.  Wall clock tracks it when every worker has
   its own core; on an oversubscribed host (CI runners, single-core
   containers) wall collapses to total work and hides what the
   re-balance bought, so the bench reports both *)
let critical_path (r : Engine.report) =
  match r.Engine.ep_telemetry with
  | None -> 0.0
  | Some sm ->
      let per_block = Hashtbl.create 64 in
      List.iter
        (fun (bc : Orion.Telemetry.block_cost) ->
          let key = (bc.Orion.Telemetry.bc_pass, bc.Orion.Telemetry.bc_space) in
          let prev = try Hashtbl.find per_block key with Not_found -> 0.0 in
          Hashtbl.replace per_block key
            (prev +. bc.Orion.Telemetry.bc_seconds))
        sm.Orion.Telemetry.sm_block_costs;
      let per_pass = Hashtbl.create 16 in
      Hashtbl.iter
        (fun (pass, _space) s ->
          let prev = try Hashtbl.find per_pass pass with Not_found -> 0.0 in
          Hashtbl.replace per_pass pass (Float.max prev s))
        per_block;
      Hashtbl.fold (fun _pass m acc -> acc +. m) per_pass 0.0

let pass_walls (r : Engine.report) =
  match r.Engine.ep_telemetry with
  | None -> []
  | Some sm ->
      List.map
        (fun (pass, (m : Orion.Metrics.t)) ->
          (pass, m.Orion.Metrics.window_end -. m.Orion.Metrics.window_start))
        sm.Orion.Telemetry.sm_pass_metrics

let outputs_equal ~tolerance (a : App.instance) (b : App.instance) =
  List.for_all
    (fun (name, arr) ->
      match List.assoc_opt name b.App.inst_outputs with
      | None -> false
      | Some other ->
          Orion_verify.Verify.diff_ok ~tolerance
            (Orion_verify.Verify.diff_arrays name arr other))
    a.App.inst_outputs

let run_app ~(app : App.t) ~(mode : mode) ~passes ~scale ~num_machines
    ~workers_per_machine ?comms () =
  let make, engine_mode, mode_str, workers =
    match mode with
    | `Parallel d ->
        ( (fun () -> app.App.app_make ~scale ~num_machines ~workers_per_machine ()),
          `Parallel d,
          "parallel",
          d )
    | `Distributed (procs, transport) ->
        ( (fun () ->
            app.App.app_make ~scale ~num_machines:procs
              ~workers_per_machine:1 ()),
          `Distributed { Engine.procs; transport },
          "distributed",
          procs )
  in
  let obs_machines, obs_wpm =
    match mode with
    | `Parallel _ -> (num_machines, workers_per_machine)
    | `Distributed (procs, _) -> (procs, 1)
  in
  (* static baseline *)
  let s_inst = make () in
  let s_report =
    Engine.run s_inst.App.inst_session s_inst ~mode:engine_mode ~passes
      ~scale ~telemetry:true ?comms ()
  in
  (* adaptive: measurement-driven re-planner *)
  let a_inst = make () in
  let rp =
    Replanner.make ~app ~inst:a_inst ~scale ~num_machines:obs_machines
      ~workers_per_machine:obs_wpm ()
  in
  (* the serial dependence observation validates candidates of every
     run of this app; do it before the clock starts *)
  rp.Replanner.prepare ();
  let a_report =
    Engine.run a_inst.App.inst_session a_inst ~mode:engine_mode ~passes
      ~scale ~telemetry:true ?comms ~replanner:rp.Replanner.fn ()
  in
  let decisions = rp.Replanner.log () in
  let adopted_script = Replanner.adopted rp in
  (* replay the adopted schedule sequence on a fresh instance; the
     adaptive run must be indistinguishable from this static-by-script
     run, bitwise or within the app's declared tolerance *)
  let r_inst = make () in
  let replay = Replanner.scripted adopted_script in
  let _ =
    Engine.run r_inst.App.inst_session r_inst ~mode:engine_mode ~passes
      ~scale ?comms ~replanner:replay.Replanner.fn ()
  in
  let equal =
    outputs_equal ~tolerance:app.App.app_tolerance a_inst r_inst
  in
  let adopted = List.filter (fun d -> d.Replanner.d_adopted) decisions in
  {
    tb_app = app.App.app_name;
    tb_mode = mode_str;
    tb_workers = workers;
    tb_passes = passes;
    tb_static_wall = s_report.Engine.ep_wall_seconds;
    tb_adaptive_wall = a_report.Engine.ep_wall_seconds;
    tb_speedup =
      (if a_report.Engine.ep_wall_seconds > 0.0 then
         s_report.Engine.ep_wall_seconds /. a_report.Engine.ep_wall_seconds
       else 1.0);
    tb_static_straggler = straggler s_report;
    tb_adaptive_straggler = straggler a_report;
    tb_static_crit = critical_path s_report;
    tb_adaptive_crit = critical_path a_report;
    tb_crit_speedup =
      (let a = critical_path a_report and s = critical_path s_report in
       if a > 0.0 then s /. a else 1.0);
    tb_static_pass_walls = pass_walls s_report;
    tb_adaptive_pass_walls = pass_walls a_report;
    tb_decisions = decisions;
    tb_adopted = List.length adopted;
    tb_rejected =
      List.length (List.filter (fun d -> not d.Replanner.d_adopted) decisions);
    tb_adopted_unvalidated =
      List.length
        (List.filter
           (fun d ->
             (not d.Replanner.d_race_checked)
             || d.Replanner.d_race_violations > 0)
           adopted);
    tb_replay_equal = equal;
  }

let result_json (r : run_result) : Report.json =
  let open Report in
  let walls l =
    List
      (List.map
         (fun (p, w) -> Obj [ ("pass", Int p); ("wall_seconds", Float w) ])
         l)
  in
  Obj
    [
      ("app", Str r.tb_app);
      ("mode", Str r.tb_mode);
      ("workers", Int r.tb_workers);
      ("passes", Int r.tb_passes);
      ("static_wall_seconds", Float r.tb_static_wall);
      ("adaptive_wall_seconds", Float r.tb_adaptive_wall);
      ("speedup", Float r.tb_speedup);
      ("static_straggler", Float r.tb_static_straggler);
      ("adaptive_straggler", Float r.tb_adaptive_straggler);
      ("static_critical_path_seconds", Float r.tb_static_crit);
      ("adaptive_critical_path_seconds", Float r.tb_adaptive_crit);
      ("critical_path_speedup", Float r.tb_crit_speedup);
      ("static_pass_walls", walls r.tb_static_pass_walls);
      ("adaptive_pass_walls", walls r.tb_adaptive_pass_walls);
      ("decisions", List (List.map Replanner.decision_json r.tb_decisions));
      ("adopted", Int r.tb_adopted);
      ("rejected", Int r.tb_rejected);
      ("adopted_unvalidated", Int r.tb_adopted_unvalidated);
      ("replay_equal", Bool r.tb_replay_equal);
    ]

let pp_result fmt r =
  Fmt.pf fmt
    "%-8s %-11s %d workers: static %.4f s (straggler %.2f) -> adaptive %.4f \
     s (straggler %.2f), %.2fx wall, %.2fx critical path (%.4f -> %.4f s)@."
    r.tb_app r.tb_mode r.tb_workers r.tb_static_wall r.tb_static_straggler
    r.tb_adaptive_wall r.tb_adaptive_straggler r.tb_speedup r.tb_crit_speedup
    r.tb_static_crit r.tb_adaptive_crit;
  List.iter
    (fun d -> Fmt.pf fmt "  %s@." (Replanner.decision_to_string d))
    r.tb_decisions;
  Fmt.pf fmt "  %d adopted / %d kept; replay of adopted sequence %s@."
    r.tb_adopted r.tb_rejected
    (if r.tb_replay_equal then "matches the adaptive run"
     else "DIVERGES from the adaptive run")

let default_out = "BENCH_tune.json"

let to_row (r : run_result) ~comms : Bench.row =
  {
    Bench.row_app = r.tb_app;
    row_mode = r.tb_mode;
    row_workers = r.tb_workers;
    row_comms = (if r.tb_mode = "distributed" then comms else "local");
    row_wall_seconds = r.tb_adaptive_wall;
    row_speedup = Some r.tb_speedup;
    row_loss = None;
    row_bytes_shipped = 0.0;
    row_bytes_full = 0.0;
    row_bytes_saved_fraction = 0.0;
    row_policy_by_array = [];
    row_ok = Some (r.tb_replay_equal && r.tb_adopted_unvalidated = 0);
  }

let run ?(apps = [ "slrskew" ]) ?(domains_list = [ 2 ]) ?(procs_list = [ 2 ])
    ?(comms = "auto") ?(passes = 3) ?(transport = `Unix) ~scale ~out
    ?(num_machines = 2) ?(workers_per_machine = 1) ?(print = true) () :
    Bench.row list =
  Orion_apps.Registry.ensure ();
  let selected =
    List.filter_map
      (fun n ->
        match App.find n with
        | Some a -> Some a
        | None ->
            Printf.eprintf "bench tune: unknown app %S (skipped)\n" n;
            None)
      apps
  in
  let modes : mode list =
    List.filter_map
      (fun d -> if d > 1 then Some (`Parallel d) else None)
      domains_list
    @ List.filter_map
        (fun p -> if p > 1 then Some (`Distributed (p, transport)) else None)
        procs_list
  in
  let results =
    List.concat_map
      (fun a ->
        List.map
          (fun mode ->
            let r =
              run_app ~app:a ~mode ~passes ~scale ~num_machines
                ~workers_per_machine ~comms ()
            in
            if print then print_string (Fmt.str "%a" pp_result r);
            r)
          modes)
      selected
  in
  let payload =
    Report.Obj
      [
        ("suite", Report.Str "tune");
        ("scale", Report.Float scale);
        ("passes", Report.Int passes);
        ("results", Report.List (List.map result_json results));
      ]
  in
  let rows = List.map (to_row ~comms) results in
  Bench.write_file out
    (Report.emit ~kind:"bench-tune" (Bench.with_rows payload rows));
  if print then Printf.printf "wrote %s\n" out;
  rows
