(* Calibrated per-partition costs from one pass's measured block
   costs.  The planner's static model charges every entry the same
   weight; the table records what each space partition actually cost,
   which is what the re-planner and the measured decision tree read. *)

module Telemetry = Orion.Telemetry

type partition_cost = {
  pc_space : int;
  pc_seconds : float;
  pc_entries : int;
  pc_sec_per_entry : float;
}

type t = {
  ct_pass : int;
  ct_parts : partition_cost array;
  ct_total_seconds : float;
  ct_max_seconds : float;
  ct_mean_seconds : float;
  ct_straggler : float;
  ct_sec_per_entry : float;
}

let of_costs ~sp ~pass (costs : Telemetry.block_cost list) =
  let seconds = Array.make sp 0.0 and entries = Array.make sp 0 in
  let seen = ref false in
  List.iter
    (fun (c : Telemetry.block_cost) ->
      if c.Telemetry.bc_pass = pass && c.Telemetry.bc_space >= 0
         && c.Telemetry.bc_space < sp
      then begin
        seen := true;
        seconds.(c.Telemetry.bc_space) <-
          seconds.(c.Telemetry.bc_space) +. c.Telemetry.bc_seconds;
        entries.(c.Telemetry.bc_space) <-
          entries.(c.Telemetry.bc_space) + c.Telemetry.bc_entries
      end)
    costs;
  if not !seen then None
  else begin
    let total = Array.fold_left ( +. ) 0.0 seconds in
    let total_entries = Array.fold_left ( + ) 0 entries in
    let global_rate =
      if total_entries > 0 then total /. float_of_int total_entries else 0.0
    in
    let parts =
      Array.init sp (fun p ->
          {
            pc_space = p;
            pc_seconds = seconds.(p);
            pc_entries = entries.(p);
            pc_sec_per_entry =
              (if entries.(p) > 0 then
                 seconds.(p) /. float_of_int entries.(p)
               else global_rate);
          })
    in
    let max_s = Array.fold_left (fun m p -> Float.max m p.pc_seconds) 0.0 parts in
    let mean = total /. float_of_int (max 1 sp) in
    Some
      {
        ct_pass = pass;
        ct_parts = parts;
        ct_total_seconds = total;
        ct_max_seconds = max_s;
        ct_mean_seconds = mean;
        ct_straggler = (if mean > 0.0 then max_s /. mean else 1.0);
        ct_sec_per_entry = global_rate;
      }
  end

let rate_at t ~boundaries i =
  let p = Orion.Partitioner.part_of ~boundaries i in
  if p >= 0 && p < Array.length t.ct_parts then
    t.ct_parts.(p).pc_sec_per_entry
  else t.ct_sec_per_entry

let pp fmt t =
  Fmt.pf fmt
    "pass %d: %.4f s measured compute, max partition %.4f s, straggler \
     %.2f, %.3g s/entry@."
    t.ct_pass t.ct_total_seconds t.ct_max_seconds t.ct_straggler
    t.ct_sec_per_entry;
  Array.iter
    (fun p ->
      Fmt.pf fmt "  sp%-2d %.4f s  (%d entries, %.3g s/entry)@." p.pc_space
        p.pc_seconds p.pc_entries p.pc_sec_per_entry)
    t.ct_parts

let to_string t = Fmt.str "%a" pp t

let to_json t : Orion.Report.json =
  let open Orion.Report in
  Obj
    [
      ("pass", Int t.ct_pass);
      ("total_seconds", Float t.ct_total_seconds);
      ("max_seconds", Float t.ct_max_seconds);
      ("straggler", Float t.ct_straggler);
      ("sec_per_entry", Float t.ct_sec_per_entry);
      ( "partitions",
        List
          (Array.to_list
             (Array.map
                (fun p ->
                  Obj
                    [
                      ("space", Int p.pc_space);
                      ("seconds", Float p.pc_seconds);
                      ("entries", Int p.pc_entries);
                      ("sec_per_entry", Float p.pc_sec_per_entry);
                    ])
                t.ct_parts)) );
    ]
