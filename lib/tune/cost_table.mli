(** The measurement side of adaptive re-planning: fold one pass's
    {!Orion.Telemetry.block_costs} into a calibrated per-space-partition
    cost table — observed seconds, entries, and seconds-per-entry
    replace the planner's static per-op weights. *)

type partition_cost = {
  pc_space : int;  (** space-partition index *)
  pc_seconds : float;  (** measured compute seconds, summed over time blocks *)
  pc_entries : int;
  pc_sec_per_entry : float;
      (** [pc_seconds / pc_entries]; the table-wide rate when the
          partition executed no entries *)
}

type t = {
  ct_pass : int;
  ct_parts : partition_cost array;  (** indexed by space partition *)
  ct_total_seconds : float;
  ct_max_seconds : float;
  ct_mean_seconds : float;
  ct_straggler : float;  (** max / mean partition seconds (1.0 if idle) *)
  ct_sec_per_entry : float;  (** total seconds / total entries *)
}

(** Aggregate the block costs measured during [pass] into [sp]
    per-space-partition rows (entries outside [pass] are ignored).
    [None] when nothing was measured — e.g. under [`Sim], which has no
    wall clock. *)
val of_costs : sp:int -> pass:int -> Orion.Telemetry.block_cost list -> t option

(** The measured seconds-per-entry rate of the partition holding
    index [i] of the space dimension under [boundaries]. *)
val rate_at : t -> boundaries:Orion.Partitioner.boundaries -> int -> float

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val to_json : t -> Orion.Report.json
