(** Sparse logistic regression runner — the bulk-prefetching experiment
    of §6.3 and the "SLR" rows of Table 2.

    The weight vector is server-hosted (its subscripts depend on each
    sample's nonzero features, so it cannot be locality-partitioned).
    Three access modes are compared:

    - [No_prefetch]: every weight read is a remote random access (a
      network round trip) — the paper measures 7682 s per pass;
    - [Prefetch]: Orion's *synthesized* prefetch program (a real slice
      of the loop body, executed in the interpreter) gathers each
      chunk's weight indices, which are fetched in bulk — 9.2 s;
    - [Prefetch_cached]: the gathered indices are cached across passes
      — 6.3 s. *)

open Orion_apps
open Orion_data

type access_mode = No_prefetch | Prefetch | Prefetch_cached

let mode_name = function
  | No_prefetch -> "no prefetch"
  | Prefetch -> "synthesized prefetch"
  | Prefetch_cached -> "prefetch w/ cached indices"

type config = {
  num_machines : int;
  workers_per_machine : int;
  step_size : float;
  adarev : bool;  (** server-side AdaRevision instead of plain SGD *)
  alpha : float;  (** AdaRev base rate *)
  epochs : int;
  per_sample_cost : float;
  mode : access_mode;
  cost : Orion.Cost_model.t;
}

let default_config =
  {
    num_machines = 1;
    workers_per_machine = 4;
    step_size = 0.05;
    adarev = false;
    alpha = 0.1;
    epochs = 3;
    per_sample_cost = 2e-6;
    mode = Prefetch;
    cost = Orion.Cost_model.julia_orion;
  }

type result = {
  trajectory : Trajectory.t;
  plan : Orion.Plan.t;
  seconds_per_pass : float array;
  prefetch_program : Orion.Ast.block;
}

let train ?(config = default_config) ~(data : Sparse_features.t) () =
  let session =
    Orion.create_session ~cost:config.cost ~num_machines:config.num_machines
      ~workers_per_machine:config.workers_per_machine ()
  in
  let cluster = session.Orion.cluster in
  let p = Orion.Cluster.num_workers cluster in
  let model = Slr.init_model ~num_features:data.num_features () in
  Slr.register_arrays session ~data model;
  let plan =
    match Orion.analyze_script session Slr.script with
    | pl :: _ -> pl
    | [] -> failwith "no parallel loop in SLR script"
  in
  (* synthesize the prefetch program from the loop body *)
  let loop_body, key_var, value_var =
    match Orion.Refs.find_parallel_loops (Orion.Parser.parse_program Slr.script) with
    | { Orion.Ast.sk = Orion.Ast.For { kind = Each_loop { key; value; _ }; body; _ }; _ } :: _ ->
        (body, key, value)
    | _ -> failwith "SLR loop not found"
  in
  let prefetch_program, _ =
    Orion.Prefetch.synthesize ~dist_vars:[ "w"; "w_buf"; "samples" ]
      ~targets:plan.Orion.Plan.prefetch_arrays loop_body
  in
  (* the weight vector lives on a parameter server *)
  let ps =
    Orion.Param_server.create ~cluster ~name:"w" ~size:data.num_features
      ~init:(fun _ -> 0.0)
  in
  (* AdaRevision state (server-side) with per-worker gradient buffers
     and accumulated-gradient snapshots *)
  let opt = Adarev.create ~size:data.num_features ~alpha:config.alpha in
  let p_workers = p in
  let ar_caches =
    Array.init p_workers (fun _ -> Array.make data.num_features 0.0)
  in
  let ar_grads : (int, float) Hashtbl.t array =
    Array.init p_workers (fun _ -> Hashtbl.create 512)
  in
  let ar_snaps =
    Array.init p_workers (fun _ -> Array.copy opt.Adarev.g_bck)
  in
  (* 1-D balanced shards over the samples *)
  let boundaries =
    Orion.Partitioner.equal_ranges ~dim_size:data.num_samples ~parts:p
  in
  let entries = Orion.Dist_array.entries data.samples in
  let shard w =
    Array.to_list entries
    |> List.filter (fun (key, _) ->
           Orion.Partitioner.part_of ~boundaries key.(0) = w)
  in
  let shards = Array.init p shard in
  let index_cache :
      (int, int list) Hashtbl.t (* sample -> weight indices *) =
    Hashtbl.create data.num_samples
  in
  let gather_indices_interpreted w (key, (s : Sparse_features.sample)) =
    (* run the synthesized program; charge its (real) execution time *)
    let t0 = Unix.gettimeofday () in
    let recorded =
      Orion.run_prefetch_program session ~generated:prefetch_program
        ~key_var ~value_var ~key
        ~value:(Sparse_features.sample_to_value s)
        ~bindings:[ ("step_size", Orion.Value.Vfloat config.step_size) ]
    in
    Orion.Cluster.compute cluster ~worker:w (Unix.gettimeofday () -. t0);
    List.map (fun (_, k) -> k.(0)) recorded
  in
  let pass_times = Array.make config.epochs 0.0 in
  let traj =
    ref
      (Trajectory.create
         ~system:(Printf.sprintf "Orion SLR (%s)" (mode_name config.mode))
         ~workload:"SLR")
  in
  traj :=
    Trajectory.add !traj ~time:0.0 ~iteration:0
      ~metric:(Slr.loss model data.samples);
  for e = 1 to config.epochs do
    let t_start = Orion.Cluster.now cluster in
    for w = 0 to p - 1 do
      (* fetch phase *)
      (match config.mode with
      | No_prefetch -> ()
      | Prefetch ->
          let unique = Hashtbl.create 1024 in
          List.iter
            (fun ((key, _) as entry) ->
              let idxs = gather_indices_interpreted w entry in
              Hashtbl.replace index_cache key.(0) idxs;
              List.iter (fun i -> Hashtbl.replace unique i ()) idxs)
            shards.(w);
          Orion.Param_server.bulk_fetch ps ~worker:w ~n:(Hashtbl.length unique)
      | Prefetch_cached ->
          let unique = Hashtbl.create 1024 in
          List.iter
            (fun (key, (s : Sparse_features.sample)) ->
              let idxs =
                match Hashtbl.find_opt index_cache key.(0) with
                | Some l -> l
                | None ->
                    let l = Array.to_list s.features in
                    Hashtbl.replace index_cache key.(0) l;
                    l
              in
              List.iter (fun i -> Hashtbl.replace unique i ()) idxs)
            shards.(w);
          Orion.Param_server.bulk_fetch ps ~worker:w ~n:(Hashtbl.length unique));
      (* compute phase *)
      List.iter
        (fun (_, (s : Sparse_features.sample)) ->
          (match config.mode with
          | No_prefetch ->
              (* each weight read is a remote random access *)
              Array.iter
                (fun f -> ignore (Orion.Param_server.random_access_read ps ~worker:w f))
                s.features
          | Prefetch | Prefetch_cached -> ());
          (if config.adarev then
             (* worker-local step with the snapshot statistic; the raw
                gradient travels to the server *)
             Slr.step
               ~read:(fun f -> ar_caches.(w).(f))
               ~update:(fun f grad ->
                 let eta =
                   config.alpha
                   /. sqrt (opt.Adarev.z_max.(f) +. (grad *. grad))
                 in
                 ar_caches.(w).(f) <- ar_caches.(w).(f) -. (eta *. grad);
                 match Hashtbl.find_opt ar_grads.(w) f with
                 | None -> Hashtbl.replace ar_grads.(w) f grad
                 | Some prev -> Hashtbl.replace ar_grads.(w) f (prev +. grad))
               s
           else
             Slr.step
               ~read:(fun f -> Orion.Param_server.read ps ~worker:w f)
               ~update:(fun f grad ->
                 Orion.Param_server.update ps ~worker:w f
                   (-.config.step_size *. grad))
               s);
          Orion.Cluster.compute cluster ~worker:w config.per_sample_cost)
        shards.(w)
    done;
    Orion.Param_server.sync ps ~cache_entries:(data.num_features / 4);
    if config.adarev then begin
      (* the server applies each worker's accumulated gradients with
         the delay-compensating rule, then refreshes caches *)
      Array.iteri
        (fun w tbl ->
          Hashtbl.fold (fun f g acc -> (f, g) :: acc) tbl []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
          |> List.iter (fun (f, g) ->
                 ignore
                   (Adarev.apply opt ~params:model.Slr.w ~i:f ~g
                      ~g_old:ar_snaps.(w).(f)));
          Hashtbl.reset tbl)
        ar_grads;
      Array.iteri
        (fun w cache ->
          Array.blit model.Slr.w 0 cache 0 data.num_features;
          Array.blit opt.Adarev.g_bck 0 ar_snaps.(w) 0 data.num_features)
        ar_caches
    end
    else
      (* expose the synced weights to the loss computation *)
      Array.blit (Orion.Param_server.master ps) 0 model.Slr.w 0
        data.num_features;
    pass_times.(e - 1) <- Orion.Cluster.now cluster -. t_start;
    traj :=
      Trajectory.add !traj
        ~time:(Orion.Cluster.now cluster)
        ~iteration:e
        ~metric:(Slr.loss model data.samples)
  done;
  {
    trajectory = !traj;
    plan;
    seconds_per_pass = pass_times;
    prefetch_program;
  }
