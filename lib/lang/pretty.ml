(** Pretty-printer for OrionScript.

    The output re-parses to an equal AST (a property the test suite
    checks), so it doubles as a formatter for generated programs such
    as the synthesized prefetch functions. *)

open Ast

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Pow -> "^"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let binop_prec = function
  | Or -> 2
  | And -> 3
  | Eq | Ne | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6
  | Pow -> 8

let rec pp_expr ?(prec = 0) fmt e =
  match e with
  | Int_lit n -> Fmt.int fmt n
  | Float_lit f ->
      (* Keep a decimal point so the literal re-lexes as a float. *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Fmt.pf fmt "%.1f" f
      else Fmt.pf fmt "%.17g" f
  | Bool_lit b -> Fmt.bool fmt b
  | String_lit s -> Fmt.pf fmt "%S" s
  | Var v -> Fmt.string fmt v
  | Index (base, subs) ->
      Fmt.pf fmt "%a[%a]" (pp_expr ~prec:9) base
        (Fmt.list ~sep:(Fmt.any ", ") pp_subscript)
        subs
  | Binop (op, a, b) ->
      let p = binop_prec op in
      let open_paren = p < prec in
      (* ^ is right-associative; everything else associates left *)
      let lp, rp = if op = Pow then (p + 1, p) else (p, p + 1) in
      if open_paren then Fmt.string fmt "(";
      Fmt.pf fmt "%a %s %a" (pp_expr ~prec:lp) a (binop_str op)
        (pp_expr ~prec:rp) b;
      if open_paren then Fmt.string fmt ")"
  | Unop (op, a) ->
      (* unary operators bind looser than ^ and indexing: parenthesize
         when they appear in those positions *)
      let open_paren = prec > 7 in
      if open_paren then Fmt.string fmt "(";
      Fmt.pf fmt "%s%a"
        (match op with Neg -> "-" | Not -> "!")
        (pp_expr ~prec:7) a;
      if open_paren then Fmt.string fmt ")"
  | Call (f, args) ->
      Fmt.pf fmt "%s(%a)" f
        (Fmt.list ~sep:(Fmt.any ", ") (pp_expr ~prec:0))
        args
  | Tuple es ->
      Fmt.pf fmt "(%a)" (Fmt.list ~sep:(Fmt.any ", ") (pp_expr ~prec:0)) es

and pp_subscript fmt = function
  | Sub_expr e -> pp_expr ~prec:0 fmt e
  | Sub_range (lo, hi) -> Fmt.pf fmt "%a:%a" (pp_expr ~prec:0) lo (pp_expr ~prec:0) hi
  | Sub_all -> Fmt.string fmt ":"

let pp_lvalue fmt = function
  | Lvar v -> Fmt.string fmt v
  | Lindex (v, subs) ->
      Fmt.pf fmt "%s[%a]" v (Fmt.list ~sep:(Fmt.any ", ") pp_subscript) subs

let rec pp_stmt ~indent fmt stmt =
  let pad = String.make indent ' ' in
  match stmt.sk with
  | Assign (lhs, e) -> Fmt.pf fmt "%s%a = %a" pad pp_lvalue lhs (pp_expr ~prec:0) e
  | Op_assign (op, lhs, e) ->
      Fmt.pf fmt "%s%a %s= %a" pad pp_lvalue lhs (binop_str op) (pp_expr ~prec:0) e
  | If (cond, then_b, else_b) ->
      Fmt.pf fmt "%sif %a\n%a" pad (pp_expr ~prec:0) cond (pp_block ~indent:(indent + 2))
        then_b;
      (match else_b with
      | [] -> ()
      | _ ->
          Fmt.pf fmt "%selse\n%a" pad (pp_block ~indent:(indent + 2)) else_b);
      Fmt.pf fmt "%send" pad
  | While (cond, body) ->
      Fmt.pf fmt "%swhile %a\n%a%send" pad (pp_expr ~prec:0) cond
        (pp_block ~indent:(indent + 2))
        body pad
  | For { kind; body; parallel } ->
      (match parallel with
      | Some { ordered = true } -> Fmt.pf fmt "%s@parallel_for ordered " pad
      | Some { ordered = false } -> Fmt.pf fmt "%s@parallel_for " pad
      | None -> Fmt.string fmt pad);
      (match kind with
      | Range_loop { var; lo; hi } ->
          Fmt.pf fmt "for %s = %a:%a\n" var (pp_expr ~prec:0) lo (pp_expr ~prec:0) hi
      | Each_loop { key; value; arr } ->
          Fmt.pf fmt "for (%s, %s) in %s\n" key value arr);
      Fmt.pf fmt "%a%send" (pp_block ~indent:(indent + 2)) body pad
  | Expr_stmt e -> Fmt.pf fmt "%s%a" pad (pp_expr ~prec:0) e
  | Break -> Fmt.pf fmt "%sbreak" pad
  | Continue -> Fmt.pf fmt "%scontinue" pad

and pp_block ~indent fmt block =
  List.iter (fun stmt -> Fmt.pf fmt "%a\n" (pp_stmt ~indent) stmt) block

let pp_program fmt program = pp_block ~indent:0 fmt program

let expr_to_string e = Fmt.str "%a" (pp_expr ~prec:0) e
let stmt_to_string s = Fmt.str "%a" (pp_stmt ~indent:0) s
let program_to_string p = Fmt.str "%a" pp_program p
