(** Tree-walking interpreter for OrionScript — the stand-in for Julia's
    JIT in the paper's prototype.  Distributed arrays appear only as
    {!Value.extern} handles installed in the environment by the host. *)

(** Raised on runtime failures (undefined variables, division by zero,
    unknown functions, …).  When the failure occurs while executing a
    statement with a known source position, the message is prefixed
    with the innermost statement's ["line:col: "]. *)
exception Runtime_error of string

exception Break_exc
exception Continue_exc

(** Deterministic splitmix64 RNG backing [rand]/[randn]. *)
module Rng : sig
  type t

  val create : int -> t
  val float : t -> float  (** uniform in [0, 1) *)
  val gaussian : t -> float  (** standard normal *)

  (** The full splitmix64 state, for checkpoint capture/restore. *)
  val state : t -> int64

  val set_state : t -> int64 -> unit
end

(** An interpreter environment is SINGLE-WRITER: [vars] is a plain
    Hashtbl that {!eval_body_for} mutates on every iteration, so an
    [env] must only ever be driven by one OCaml domain at a time.
    Parallel execution gives each domain its own [env] over the same
    shared DistArrays and host builtins (see [Orion.App.inst_make_env]).
    The [profile] field must likewise point at a per-domain
    {!Profile.t} shard (merge shards after the pass with
    {!Profile.merge}) — recording takes no lock. *)
type env = {
  vars : (string, Value.t) Hashtbl.t;
  rng : Rng.t;
  host_call : string -> Value.t list -> Value.t option;
      (** extra builtins supplied by the host; [None] = not handled *)
  mutable on_parallel_for : (env -> Ast.stmt -> unit) option;
      (** when set, [@parallel_for] statements are routed here (the
          distributed runtime) instead of executing serially *)
  mutable profile : Profile.t option;
      (** when set, statement execution times (by source line) and
          DistArray element accesses are recorded *)
  mutable on_array_access :
    (Value.extern -> write:bool -> Value.concrete_sub array -> unit) option;
      (** when set, called after every successful DistArray element
          access with the concrete (0-based) subscripts — the hook the
          dynamic dependence validator uses to build its access log *)
}

val create_env :
  ?seed:int ->
  ?host_call:(string -> Value.t list -> Value.t option) ->
  ?profile:Profile.t ->
  unit ->
  env

val set_var : env -> string -> Value.t -> unit

(** @raise Runtime_error if the variable is undefined. *)
val get_var : env -> string -> Value.t

val var_opt : env -> string -> Value.t option

(** Evaluate a binary operation on values (numeric promotion,
    element-wise vector arithmetic). *)
val eval_binop : Ast.binop -> Value.t -> Value.t -> Value.t

(** Evaluate a builtin (or host-supplied) function call on evaluated
    arguments — the single dispatch point {!Compile} devirtualizes
    against and falls back to. *)
val eval_builtin : env -> string -> Value.t list -> Value.t

(** Validate a 0-based inclusive vector range before slicing.
    @raise Runtime_error on an empty/reversed or out-of-bounds range. *)
val checked_vec_range : len:int -> lo:int -> hi:int -> unit

(** Is [msg] already prefixed with a ["line:col: "] position?  Used to
    keep the innermost statement's position when rewrapping errors. *)
val has_pos_prefix : string -> bool

val eval_expr : env -> Ast.expr -> Value.t
val exec_stmt : env -> Ast.stmt -> unit
val exec_block : env -> Ast.block -> unit

(** Run a whole program in [env]. *)
val run_program : env -> Ast.program -> unit

(** Execute the body of a parallel for-loop for one iteration: binds
    the loop's key and value variables, runs the body (this is the unit
    of work the distributed executor schedules). *)
val eval_body_for :
  env ->
  key_var:string ->
  value_var:string ->
  key:int array ->
  value:Value.t ->
  Ast.block ->
  unit
