(** Static semantic checks for OrionScript programs.

    The interpreter reports these problems at run time; checking them
    before JIT compilation gives the driver programmer compile-time
    feedback, like Julia's linting.  Checks:

    - use of a variable before any definition reaches it (an error when
      no path defines it, a warning when only some paths do);
    - [break]/[continue] outside any loop;
    - wrong arity for the built-in functions;
    - a [@parallel_for] nested inside another [@parallel_for]
      (unsupported by the runtime);
    - assignment to a parallel loop's key variable inside its body. *)

open Ast

type severity = Error | Warning

type diagnostic = { severity : severity; pos : Ast.pos option; message : string }

let errorf fmt =
  Printf.ksprintf (fun message -> { severity = Error; pos = None; message }) fmt

let warnf fmt =
  Printf.ksprintf (fun message -> { severity = Warning; pos = None; message }) fmt

let errors diags = List.filter (fun d -> d.severity = Error) diags

let diagnostic_to_string d =
  (match d.pos with
  | Some p when p.Ast.line > 0 -> Printf.sprintf "%d:%d: " p.Ast.line p.Ast.col
  | Some _ | None -> "")
  ^ (match d.severity with Error -> "error: " | Warning -> "warning: ")
  ^ d.message

(* arities of the built-ins the interpreter provides; [None] in the
   list means the name is variadic *)
let builtin_arities =
  [
    ("dot", [ 2 ]);
    ("norm", [ 1 ]);
    ("zeros", [ 1 ]);
    ("fill", [ 2 ]);
    ("length", [ 1 ]);
    ("size", [ 1; 2 ]);
    ("sum", [ 1 ]);
    ("abs", [ 1 ]);
    ("abs2", [ 1 ]);
    ("exp", [ 1 ]);
    ("log", [ 1 ]);
    ("sqrt", [ 1 ]);
    ("sigmoid", [ 1 ]);
    ("floor", [ 1 ]);
    ("ceil", [ 1 ]);
    ("round", [ 1 ]);
    ("float", [ 1 ]);
    ("int", [ 1 ]);
    ("min", [ 2 ]);
    ("max", [ 2 ]);
    ("rand", [ 0 ]);
    ("randn", [ 0; 1 ]);
    ("rand_int", [ 1 ]);
    ("get_aggregated_value", [ 1 ]);
    ("reset_accumulator", [ 1 ]);
  ]

(* A variable's definedness state along the current path. *)
module Env = Map.Make (String)

type defined = Definitely | Maybe

let join a b =
  match (a, b) with
  | Some Definitely, Some Definitely -> Some Definitely
  | None, None -> None
  | _ -> Some Maybe

let join_envs (a : defined Env.t) (b : defined Env.t) =
  Env.merge (fun _ va vb -> join va vb) a b

(** Check a program.  [globals] are names defined by the host (registered
    DistArrays, CLI bindings, ...). *)
let check_program ?(globals = []) (program : block) : diagnostic list =
  let diags = ref [] in
  (* position of the statement currently being checked; diagnostics
     raised while inside it are attributed to its line:col *)
  let cur_pos = ref None in
  let add d = diags := { d with pos = !cur_pos } :: !diags in
  let seen_undefined = Hashtbl.create 16 in
  let report_use env v =
    match Env.find_opt v env with
    | Some Definitely -> ()
    | (Some Maybe | None) when Hashtbl.mem seen_undefined v -> ()
    | Some Maybe ->
        Hashtbl.add seen_undefined v ();
        add (warnf "variable %s may be undefined on some paths" v)
    | None ->
        Hashtbl.add seen_undefined v ();
        add (errorf "variable %s is used before being defined" v)
  in
  let check_call name nargs =
    match List.assoc_opt name builtin_arities with
    | Some arities when not (List.mem nargs arities) ->
        add
          (errorf "%s expects %s argument(s), got %d" name
             (String.concat " or " (List.map string_of_int arities))
             nargs)
    | Some _ | None -> ()
  in
  let rec check_expr env e =
    match e with
    | Int_lit _ | Float_lit _ | Bool_lit _ | String_lit _ -> ()
    | Var v -> report_use env v
    | Index (base, subs) ->
        check_expr env base;
        List.iter (check_sub env) subs
    | Binop (_, a, b) ->
        check_expr env a;
        check_expr env b
    | Unop (_, a) -> check_expr env a
    | Call (name, args) ->
        check_call name (List.length args);
        List.iter (check_expr env) args
    | Tuple es -> List.iter (check_expr env) es
  and check_sub env = function
    | Sub_all -> ()
    | Sub_expr e -> check_expr env e
    | Sub_range (lo, hi) ->
        check_expr env lo;
        check_expr env hi
  in
  (* returns the environment after the statement *)
  let rec check_stmt ~in_loop ~parallel_keys env stmt =
    cur_pos := (if stmt.spos.line > 0 then Some stmt.spos else None);
    match stmt.sk with
    | Assign (lhs, e) ->
        check_expr env e;
        check_lhs ~parallel_keys env lhs
    | Op_assign (_, lhs, e) ->
        check_expr env e;
        (* an op-assign also reads the left-hand side *)
        (match lhs with
        | Lvar v -> report_use env v
        | Lindex (v, subs) ->
            report_use env v;
            List.iter (check_sub env) subs);
        check_lhs ~parallel_keys env lhs
    | If (cond, then_b, else_b) ->
        check_expr env cond;
        let env_t = check_block ~in_loop ~parallel_keys env then_b in
        let env_e = check_block ~in_loop ~parallel_keys env else_b in
        join_envs env_t env_e
    | While (cond, body) ->
        check_expr env cond;
        let env_body = check_block ~in_loop:true ~parallel_keys env body in
        (* the body may not run: definitions inside are Maybe *)
        join_envs env env_body
    | For { kind; body; parallel } ->
        let env_loop, parallel_keys =
          match kind with
          | Range_loop { var; lo; hi } ->
              check_expr env lo;
              check_expr env hi;
              (Env.add var Definitely env, parallel_keys)
          | Each_loop { key; value; arr } ->
              report_use env arr;
              (match parallel with
              | Some _ when parallel_keys <> [] ->
                  add
                    (errorf
                       "@parallel_for cannot be nested inside another \
                        @parallel_for")
              | Some _ | None -> ());
              ( Env.add key Definitely (Env.add value Definitely env),
                match parallel with
                | Some _ -> key :: parallel_keys
                | None -> parallel_keys )
        in
        let env_body =
          check_block ~in_loop:true ~parallel_keys env_loop body
        in
        join_envs env env_body
    | Expr_stmt e ->
        check_expr env e;
        env
    | Break | Continue ->
        if not in_loop then
          add
            (errorf "%s outside of a loop"
               (match stmt.sk with Break -> "break" | _ -> "continue"));
        env
  and check_lhs ~parallel_keys env lhs =
    match lhs with
    | Lvar v ->
        if List.mem v parallel_keys then
          add (warnf "assignment to parallel loop index variable %s" v);
        Env.add v Definitely env
    | Lindex (v, subs) ->
        report_use env v;
        List.iter (check_sub env) subs;
        env
  and check_block ~in_loop ~parallel_keys env block =
    List.fold_left (check_stmt ~in_loop ~parallel_keys) env block
  in
  let env0 =
    List.fold_left (fun e v -> Env.add v Definitely e) Env.empty globals
  in
  ignore (check_block ~in_loop:false ~parallel_keys:[] env0 program);
  List.rev !diags
