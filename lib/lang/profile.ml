(** OrionScript profiler: per-source-line hit counts and cumulative
    wall time, plus per-DistArray element read/write counters.

    The interpreter records into a [t] installed in its environment
    (see {!Interp.env}); attribution is by the source line stamped on
    each statement by the parser ({!Ast.pos}).  Line times are
    *inclusive*: a loop header accumulates the time of its whole body,
    like a sampling profiler's "total" column.

    A [t] is SINGLE-WRITER: recording takes no lock, so a parallel
    pass gives each domain its own shard and combines them afterwards
    with {!merge} (deterministic: plain counter addition).  Readers
    ([line_stats] etc.) are meant for after the pass. *)

type line_stat = { mutable hits : int; mutable seconds : float }
type array_stat = { mutable reads : int; mutable writes : int }

type t = {
  lines : (int, line_stat) Hashtbl.t;
  arrays : (string, array_stat) Hashtbl.t;
}

let create () = { lines = Hashtbl.create 64; arrays = Hashtbl.create 16 }

let reset t =
  Hashtbl.reset t.lines;
  Hashtbl.reset t.arrays

let line_stat t line =
  match Hashtbl.find_opt t.lines line with
  | Some s -> s
  | None ->
      let s = { hits = 0; seconds = 0.0 } in
      Hashtbl.add t.lines line s;
      s

let array_stat t name =
  match Hashtbl.find_opt t.arrays name with
  | Some s -> s
  | None ->
      let s = { reads = 0; writes = 0 } in
      Hashtbl.add t.arrays name s;
      s

let record_line t ~line ~seconds =
  let s = line_stat t line in
  s.hits <- s.hits + 1;
  s.seconds <- s.seconds +. seconds

let record_array_read t name =
  let s = array_stat t name in
  s.reads <- s.reads + 1

let record_array_write t name =
  let s = array_stat t name in
  s.writes <- s.writes + 1

let merge ~into src =
  (* Accumulate line stats in line order and array stats in name order
     so float addition sequencing is deterministic across runs. *)
  Hashtbl.fold (fun line s acc -> (line, s) :: acc) src.lines []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (line, (s : line_stat)) ->
         let d = line_stat into line in
         d.hits <- d.hits + s.hits;
         d.seconds <- d.seconds +. s.seconds);
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) src.arrays []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, (s : array_stat)) ->
         let d = array_stat into name in
         d.reads <- d.reads + s.reads;
         d.writes <- d.writes + s.writes)

let line_stats t =
  Hashtbl.fold (fun line s acc -> (line, s.hits, s.seconds) :: acc) t.lines []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let hot_lines t =
  Hashtbl.fold (fun line s acc -> (line, s.hits, s.seconds) :: acc) t.lines []
  |> List.sort (fun (la, ha, sa) (lb, hb, sb) ->
         (* hottest first; ties by hits, then line for determinism *)
         match compare sb sa with
         | 0 -> ( match compare hb ha with 0 -> compare la lb | c -> c)
         | c -> c)

let array_stats t =
  Hashtbl.fold (fun name s acc -> (name, s.reads, s.writes) :: acc) t.arrays []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let total_seconds t =
  Hashtbl.fold (fun _ s acc -> acc +. s.seconds) t.lines 0.0

let report ?src ?(limit = 20) t =
  let buf = Buffer.create 512 in
  let src_lines =
    match src with
    | None -> [||]
    | Some s -> Array.of_list (String.split_on_char '\n' s)
  in
  let source_of line =
    if line >= 1 && line <= Array.length src_lines then
      String.trim src_lines.(line - 1)
    else ""
  in
  (* Top-level statements nest their children's time, so a percentage
     column against the grand total would overcount; report raw seconds
     and leave interpretation to the (inclusive-time) header. *)
  Buffer.add_string buf
    "Hot lines (inclusive time; loop headers include their bodies):\n";
  Buffer.add_string buf "  line        hits     seconds  source\n";
  let rows = hot_lines t in
  let shown = ref 0 in
  List.iter
    (fun (line, hits, seconds) ->
      if !shown < limit then (
        incr shown;
        Buffer.add_string buf
          (Printf.sprintf "  %4d  %10d  %10.6f  %s\n" line hits seconds
             (source_of line))))
    rows;
  if List.length rows > limit then
    Buffer.add_string buf
      (Printf.sprintf "  ... %d more line(s)\n" (List.length rows - limit));
  (match array_stats t with
  | [] -> ()
  | stats ->
      Buffer.add_string buf "DistArray element accesses:\n";
      Buffer.add_string buf "  array                 reads      writes\n";
      List.iter
        (fun (name, reads, writes) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-16s %10d  %10d\n" name reads writes))
        stats);
  Buffer.contents buf
