(** Abstract syntax for OrionScript, the small Julia-flavoured imperative
    language that Orion programs are written in.

    A serial training program is a sequence of statements.  The statement
    of interest to the parallelizer is a [For] whose [parallel] field is
    set (the surface syntax is [@parallel_for for (key, v) in arr ... end]);
    its body is what the static dependence analysis inspects. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Pow
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
[@@deriving show { with_path = false }, eq]

type unop = Neg | Not [@@deriving show { with_path = false }, eq]

type expr =
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | String_lit of string
  | Var of string
  | Index of expr * subscript list  (** [e\[s1, ..., sn\]] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
  | Tuple of expr list

and subscript =
  | Sub_expr of expr  (** a point subscript *)
  | Sub_range of expr * expr  (** [lo:hi], inclusive *)
  | Sub_all  (** [:] — the whole dimension *)
[@@deriving show { with_path = false }, eq]

type lvalue =
  | Lvar of string
  | Lindex of string * subscript list
      (** only direct indexing of a named array can be assigned to *)
[@@deriving show { with_path = false }, eq]

(** The two loop forms: [for i = lo:hi] and [for (key, v) in arr]. *)
type loop_kind =
  | Range_loop of { var : string; lo : expr; hi : expr }
  | Each_loop of { key : string; value : string; arr : string }
[@@deriving show { with_path = false }, eq]

type parallel_spec = { ordered : bool }
[@@deriving show { with_path = false }, eq]

(** Source position of a statement (1-based; [dummy_pos] for synthesized
    code).  Positions are metadata: AST equality ignores them, so a
    pretty-printed program re-parses to an [equal] AST. *)
type pos = { line : int; col : int } [@@deriving show { with_path = false }]

let equal_pos (_ : pos) (_ : pos) = true
let dummy_pos = { line = 0; col = 0 }

type stmt = { sk : stmt_kind; spos : pos }

and stmt_kind =
  | Assign of lvalue * expr
  | Op_assign of binop * lvalue * expr  (** [+=], [-=], [*=], [/=] *)
  | If of expr * block * block
  | For of { kind : loop_kind; body : block; parallel : parallel_spec option }
  | While of expr * block
  | Expr_stmt of expr
  | Break
  | Continue

and block = stmt list [@@deriving show { with_path = false }, eq]

(** Wrap a statement kind with a source position (synthesized code omits
    [?pos] and gets [dummy_pos]). *)
let mk ?(pos = dummy_pos) sk = { sk; spos = pos }

type program = block [@@deriving show { with_path = false }, eq]

(** [fold_expr f acc e] folds [f] over [e] and all its sub-expressions,
    including expressions nested inside subscripts. *)
let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Int_lit _ | Float_lit _ | Bool_lit _ | String_lit _ | Var _ -> acc
  | Index (base, subs) ->
      let acc = fold_expr f acc base in
      List.fold_left (fold_subscript f) acc subs
  | Binop (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Unop (_, a) -> fold_expr f acc a
  | Call (_, args) -> List.fold_left (fold_expr f) acc args
  | Tuple es -> List.fold_left (fold_expr f) acc es

and fold_subscript f acc = function
  | Sub_expr e -> fold_expr f acc e
  | Sub_range (lo, hi) -> fold_expr f (fold_expr f acc lo) hi
  | Sub_all -> acc

(** Free variables read by an expression (variable occurrences, including
    array bases and subscript expressions). *)
let expr_vars e =
  fold_expr
    (fun acc e -> match e with Var v -> v :: acc | _ -> acc)
    [] e
  |> List.sort_uniq String.compare

(** [fold_stmts f acc block] folds [f] over every statement in [block],
    recursing into nested blocks. *)
let rec fold_stmts f acc block = List.fold_left (fold_stmt f) acc block

and fold_stmt f acc stmt =
  let acc = f acc stmt in
  match stmt.sk with
  | Assign _ | Op_assign _ | Expr_stmt _ | Break | Continue -> acc
  | If (_, then_b, else_b) -> fold_stmts f (fold_stmts f acc then_b) else_b
  | For { body; _ } -> fold_stmts f acc body
  | While (_, body) -> fold_stmts f acc body

(** Names assigned anywhere in a block (scalar variables and array bases). *)
let assigned_names block =
  fold_stmts
    (fun acc stmt ->
      match stmt.sk with
      | Assign (Lvar v, _) | Op_assign (_, Lvar v, _) -> v :: acc
      | Assign (Lindex (v, _), _) | Op_assign (_, Lindex (v, _), _) ->
          v :: acc
      | For { kind = Range_loop { var; _ }; _ } -> var :: acc
      | For { kind = Each_loop { key; value; _ }; _ } -> key :: value :: acc
      | If _ | While _ | Expr_stmt _ | Break | Continue -> acc)
    [] block
  |> List.sort_uniq String.compare
