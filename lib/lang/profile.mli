(** OrionScript profiler: per-source-line hit counts and cumulative
    wall time, plus per-DistArray element read/write counters.

    Install a [t] in an interpreter environment
    ([Interp.create_env ~profile:...]) and every executed statement is
    attributed to its source line.  Line times are {e inclusive}: a
    loop header accumulates the time spent in its whole body.

    A [t] is SINGLE-WRITER (recording takes no lock): a parallel pass
    gives each domain its own shard and combines them afterwards with
    {!merge}. *)

type t

val create : unit -> t
val reset : t -> unit

(** Called by the interpreter; also usable directly in tests. *)
val record_line : t -> line:int -> seconds:float -> unit

val record_array_read : t -> string -> unit
val record_array_write : t -> string -> unit

(** [merge ~into src] adds every counter in [src] into [into]
    (deterministically: lines in line order, arrays in name order).
    [src] is left untouched. *)
val merge : into:t -> t -> unit

(** [(line, hits, seconds)] sorted by line number. *)
val line_stats : t -> (int * int * float) list

(** [(line, hits, seconds)] sorted hottest-first (by seconds, then
    hits). *)
val hot_lines : t -> (int * int * float) list

(** [(array, reads, writes)] sorted by array name. *)
val array_stats : t -> (string * int * int) list

(** Sum of all per-line inclusive times (top-level statements nest
    their children, so this exceeds wall time). *)
val total_seconds : t -> float

(** Render the sorted hot-line table and the DistArray access counts.
    [src] (the program source) adds a source-text column; [limit]
    bounds the number of lines shown (default 20). *)
val report : ?src:string -> ?limit:int -> t -> string
