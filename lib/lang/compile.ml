(** One-time loop-body compiler for [@parallel_for] bodies.

    The tree-walking {!Interp} re-dispatches on the AST for every
    element of every pass; this module performs that dispatch {e once},
    turning the body into a tree of OCaml closures:

    - variables resolve to mutable {e slots} (array cells) instead of
      per-access hashtable lookups;
    - DistArray point subscripts resolve through the host's unboxed
      {!Value.fast_access} accessors (flat-offset get/set on the
      underlying float storage) with a reused key buffer, when no
      profile or access hook needs to observe the access;
    - a small static type inference (fixpoint over the body) finds
      scalar [int]/[float] expressions and compiles them unboxed;
    - builtins devirtualize to direct closures at compile time.

    Observational equivalence with {!Interp.eval_body_for} is the
    contract: same values bitwise, same exceptions with the same
    positioned messages, same RNG consumption order, and — whenever
    [env.profile] or [env.on_array_access] is set — the same records in
    the same order (every access site dynamically falls back to the
    boxed, hook-calling path when either is set, so one kernel serves
    both the multicore engine and the journaling distributed worker).

    Known (documented) semantic hole: globals are captured from
    [env.vars] once at compile time, so a host builtin that rebinds
    interpreter variables mid-loop would not be observed.  No host
    builtin does — they communicate through the DistArrays themselves —
    and [flush_locals] writes locals back after the loop, matching the
    interpreter's leaked bindings. *)

open Ast
open Value

let enabled () =
  match Sys.getenv_opt "ORION_NO_COMPILE" with
  | None | Some "" | Some "0" -> true
  | Some _ -> false

(* raised (at compile time only) on constructs whose semantics we
   cannot reproduce exactly; [compile_body] turns it into [None] *)
exception Unsupported

let infer_bug what =
  invalid_arg
    (Printf.sprintf
       "Orion compile: static type inference violated (%s) — run with \
        ORION_NO_COMPILE=1 and report this"
       what)

(* ------------------------------------------------------------------ *)
(* Slots and static types                                              *)
(* ------------------------------------------------------------------ *)

(* A tiny monotone lattice: Tbot (never assigned yet) ⊑ concrete type
   ⊑ Tany.  Soundness contract: if inference concludes Tint/Tfloat for
   an expression, every value it successfully evaluates to at run time
   is Vint/Vfloat. *)
type ty = Tbot | Tint | Tfloat | Tbool | Tvec | Tindex | Textern | Tany

let join a b =
  if a = b then a
  else match (a, b) with Tbot, x | x, Tbot -> x | _ -> Tany

let ty_of_value = function
  | Vint _ -> Tint
  | Vfloat _ -> Tfloat
  | Vbool _ -> Tbool
  | Vvec _ -> Tvec
  | Vindex _ -> Tindex
  | Vextern _ -> Textern
  | Vunit | Vstring _ | Vtuple _ -> Tany

type slot = {
  sl_name : string;
  sl_local : bool;  (** assigned somewhere in the body (or a loop var) *)
  mutable sl_v : Value.t;
  mutable sl_defined : bool;
  mutable sl_ty : ty;
}

let slot_get s =
  if s.sl_defined then s.sl_v
  else
    raise
      (Interp.Runtime_error
         (Printf.sprintf "undefined variable %s" s.sl_name))

let slot_set s v =
  s.sl_v <- v;
  s.sl_defined <- true

let slot_int s =
  match slot_get s with
  | Vint n -> n
  | _ -> infer_bug ("int slot " ^ s.sl_name)

let slot_float s =
  match slot_get s with
  | Vfloat f -> f
  | _ -> infer_bug ("float slot " ^ s.sl_name)

type ctx = { env : Interp.env; slots : (string, slot) Hashtbl.t }

let slot ctx name =
  match Hashtbl.find_opt ctx.slots name with
  | Some s -> s
  | None -> infer_bug ("unallocated slot " ^ name)

type t = {
  c_env : Interp.env;
  c_key : slot;
  c_value : slot;
  c_value_float : bool;
  c_body : (unit -> unit) array;
  c_locals : slot list;
}

(* ------------------------------------------------------------------ *)
(* Name collection                                                     *)
(* ------------------------------------------------------------------ *)

(* every variable the body reads or writes, including array bases,
   subscript expressions and loop variables *)
let referenced_names body =
  let names = ref [] in
  let add n = names := n :: !names in
  let expr e =
    ignore
      (Ast.fold_expr
         (fun () e -> match e with Var v -> add v | _ -> ())
         () e)
  in
  let sub s =
    ignore
      (Ast.fold_subscript
         (fun () e -> match e with Var v -> add v | _ -> ())
         () s)
  in
  ignore
    (Ast.fold_stmts
       (fun () stmt ->
         match stmt.sk with
         | Assign (Lvar v, e) -> add v; expr e
         | Assign (Lindex (v, subs), e) ->
             add v;
             List.iter sub subs;
             expr e
         | Op_assign (_, Lvar v, e) -> add v; expr e
         | Op_assign (_, Lindex (v, subs), e) ->
             add v;
             List.iter sub subs;
             expr e
         | If (c, _, _) -> expr c
         | While (c, _) -> expr c
         | For { kind = Range_loop { var; lo; hi }; _ } ->
             add var; expr lo; expr hi
         | For { kind = Each_loop { key; value; arr }; _ } ->
             add key; add value; add arr
         | Expr_stmt e -> expr e
         | Break | Continue -> ())
       () body);
  List.sort_uniq String.compare !names

(* ------------------------------------------------------------------ *)
(* Static type inference (fixpoint)                                    *)
(* ------------------------------------------------------------------ *)

let all_points subs = List.for_all (function Sub_expr _ -> true | _ -> false) subs

(* is [base[subs]] a point read of a compile-time-captured DistArray
   with an unboxed fast path?  (the only extern reads whose result type
   — Vfloat — is statically guaranteed; see {!Value.fast_access}) *)
let fast_extern_read ctx base subs =
  match base with
  | Var v -> (
      match Hashtbl.find_opt ctx.slots v with
      | Some s when (not s.sl_local) && s.sl_defined -> (
          match s.sl_v with
          | Vextern ex
            when all_points subs
                 && List.length subs = Array.length ex.ex_dims ->
              Option.map (fun fa -> (s, ex, fa)) ex.ex_fast
          | _ -> None)
      | _ -> None)
  | _ -> None

let rec infer ctx e : ty =
  match e with
  | Int_lit _ -> Tint
  | Float_lit _ -> Tfloat
  | Bool_lit _ -> Tbool
  | String_lit _ -> Tany
  | Var v -> (slot ctx v).sl_ty
  | Unop (Neg, a) -> (
      match infer ctx a with (Tint | Tfloat | Tbot) as t -> t | _ -> Tany)
  | Unop (Not, _) -> Tbool
  | Binop (op, a, b) -> infer_binop op (infer ctx a) (infer ctx b)
  | Call (f, args) -> infer_call ctx f (List.map (infer ctx) args)
  | Tuple _ -> Tany
  | Index (base, subs) -> (
      match fast_extern_read ctx base subs with
      | Some _ -> Tfloat
      | None -> (
          match (infer ctx base, subs) with
          | Tvec, [ Sub_expr _ ] -> Tfloat
          | Tvec, ([ Sub_all ] | [ Sub_range _ ]) -> Tvec
          | Tindex, [ Sub_expr _ ] -> Tint
          | _ -> Tany))

and infer_binop op ta tb =
  match op with
  | Add | Sub | Mul | Div | Mod -> (
      match (ta, tb) with
      | Tbot, _ | _, Tbot -> Tbot
      | Tint, Tint -> Tint
      | (Tint | Tfloat), (Tint | Tfloat) -> Tfloat
      | _ -> Tany)
  | Pow -> (
      match (ta, tb) with
      | Tbot, _ | _, Tbot -> Tbot
      | Tint, Tint -> Tany (* int^int is Vint only when the exponent ≥ 0 *)
      | (Tint | Tfloat), (Tint | Tfloat) -> Tfloat
      | _ -> Tany)
  | Eq | Ne | Lt | Le | Gt | Ge | And | Or -> Tbool

and infer_call _ctx f args =
  match (f, args) with
  | ("int" | "floor" | "ceil" | "round" | "rand_int"), [ _ ] -> Tint
  | "length", [ (Tvec | Tindex | Textern) ] -> Tint
  | "size", [ _; _ ] -> Tint
  | ("float" | "abs2" | "sigmoid" | "norm"), [ _ ] -> Tfloat
  | ("exp" | "log" | "sqrt"), _ -> Tfloat (* any arity: Vfloat or raise *)
  | "dot", [ _; _ ] -> Tfloat
  | "sum", [ Tvec ] -> Tfloat
  | "abs", [ Tint ] -> Tint
  | "abs", [ Tfloat ] -> Tfloat
  | ("min" | "max"), [ Tint; Tint ] -> Tint
  | ("min" | "max"), [ (Tint | Tfloat); (Tint | Tfloat) ] -> Tfloat
  | ("rand" | "randn"), [] -> Tfloat
  | "randn", [ _ ] -> Tvec
  | "zeros", [ _ ] -> Tvec
  | "fill", [ _; _ ] -> Tvec
  | _ -> Tany

(* one inference pass over the body; returns whether any slot widened *)
let infer_pass ctx body =
  let changed = ref false in
  let widen s t =
    let t' = join s.sl_ty t in
    if t' <> s.sl_ty then begin
      s.sl_ty <- t';
      changed := true
    end
  in
  let rec stmts b = List.iter stmt b
  and stmt st =
    match st.sk with
    | Assign (Lvar v, e) -> widen (slot ctx v) (infer ctx e)
    | Op_assign (op, Lvar v, e) ->
        let s = slot ctx v in
        widen s (infer_binop op s.sl_ty (infer ctx e))
    | Assign (Lindex _, _) | Op_assign (_, Lindex _, _) -> ()
    | If (_, t, f) -> stmts t; stmts f
    | While (_, b) -> stmts b
    | For { kind; body; _ } ->
        (match kind with
        | Range_loop { var; _ } -> widen (slot ctx var) Tint
        | Each_loop { key; value; _ } ->
            widen (slot ctx key) Tindex;
            (* ex_iter yields arbitrary Value.t *)
            widen (slot ctx value) Tany);
        stmts body
    | Expr_stmt _ | Break | Continue -> ()
  in
  stmts body;
  !changed

(* ------------------------------------------------------------------ *)
(* Compiled subscripts                                                 *)
(* ------------------------------------------------------------------ *)

(* a compiled subscript: closures produce 0-based concrete positions *)
type csub =
  | Kall
  | Kpoint of (unit -> int)
  | Krange of (unit -> int) * (unit -> int)

(* evaluate compiled subscripts to a FRESH concrete-subscript array
   (fresh because access hooks retain what they are handed), in
   left-to-right order with lo-before-hi, as the interpreter does *)
let eval_csubs (ks : csub array) : Value.concrete_sub array =
  let n = Array.length ks in
  let out = Array.make n Call_dim in
  for i = 0 to n - 1 do
    out.(i) <-
      (match ks.(i) with
      | Kall -> Call_dim
      | Kpoint f -> Cpoint (f ())
      | Krange (l, h) ->
          let lo = l () in
          Crange (lo, h ()))
  done;
  out

(* ------------------------------------------------------------------ *)
(* Shared runtime fragments (mirrors of the interpreter's dispatch)    *)
(* ------------------------------------------------------------------ *)

let read_extern env ex ks =
  (match env.Interp.profile with
  | Some p -> Profile.record_array_read p ex.ex_name
  | None -> ());
  let cs = eval_csubs ks in
  let r = ex.ex_get cs in
  (match env.Interp.on_array_access with
  | Some f -> f ex ~write:false cs
  | None -> ());
  r

let write_extern env ex ks v =
  (match env.Interp.profile with
  | Some p -> Profile.record_array_write p ex.ex_name
  | None -> ());
  let cs = eval_csubs ks in
  ex.ex_set cs v;
  match env.Interp.on_array_access with
  | Some f -> f ex ~write:true cs
  | None -> ()

let index_value env v (ks : csub array) =
  match v with
  | Vextern ex -> read_extern env ex ks
  | Vvec arr -> (
      match ks with
      | [| Kpoint f |] -> Vfloat arr.(f ())
      | [| Kall |] -> Vvec (Array.copy arr)
      | [| Krange (l, h) |] ->
          let lo = l () in
          let hi = h () in
          Interp.checked_vec_range ~len:(Array.length arr) ~lo ~hi;
          Vvec (Array.sub arr lo (hi - lo + 1))
      | _ -> raise (Interp.Runtime_error "vectors take exactly one subscript"))
  | Vindex idx -> (
      match ks with
      | [| Kpoint f |] -> Vint (idx.(f ()) + 1)
      | _ ->
          raise (Interp.Runtime_error "index vectors take one point subscript"))
  | Vtuple vs -> (
      match ks with
      | [| Kpoint f |] -> List.nth vs (f ())
      | _ -> raise (Interp.Runtime_error "tuples take one point subscript"))
  | v -> raise (Type_error ("cannot index a " ^ type_name v))

let assign_index_value env s (ks : csub array) v =
  match slot_get s with
  | Vextern ex -> write_extern env ex ks v
  | Vvec arr -> (
      match ks with
      | [| Kpoint f |] ->
          let i = f () in
          arr.(i) <- to_float v
      | [| Kall |] ->
          let src = to_vec v in
          if Array.length src <> Array.length arr then
            raise (Interp.Runtime_error "vector length mismatch in assignment")
          else Array.blit src 0 arr 0 (Array.length arr)
      | [| Krange (l, h) |] ->
          let lo = l () in
          let hi = h () in
          Interp.checked_vec_range ~len:(Array.length arr) ~lo ~hi;
          let src = to_vec v in
          if Array.length src <> hi - lo + 1 then
            raise (Interp.Runtime_error "vector length mismatch in assignment")
          else Array.blit src 0 arr lo (hi - lo + 1)
      | _ -> raise (Interp.Runtime_error "unsupported vector assignment"))
  | other -> raise (Type_error ("cannot assign into a " ^ type_name other))

(* hooks-off test: the fast unboxed paths are only legal when neither
   the profiler nor the access hook needs to observe the access *)
let no_hooks env =
  match (env.Interp.profile, env.Interp.on_array_access) with
  | None, None -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

(* unboxed scalar code *)
type num = I of (unit -> int) | F of (unit -> float)

let as_float = function F f -> f | I f -> fun () -> float_of_int (f ())

let rec compile_expr ctx (e : expr) : unit -> Value.t =
  match e with
  | Int_lit n ->
      let v = Vint n in
      fun () -> v
  | Float_lit f ->
      let v = Vfloat f in
      fun () -> v
  | Bool_lit b ->
      let v = Vbool b in
      fun () -> v
  | String_lit s ->
      let v = Vstring s in
      fun () -> v
  | Var v ->
      let s = slot ctx v in
      fun () -> slot_get s
  | Binop (And, a, b) ->
      let ca = compile_expr ctx a in
      let cb = compile_expr ctx b in
      fun () -> if to_bool (ca ()) then Vbool (to_bool (cb ())) else Vbool false
  | Binop (Or, a, b) ->
      let ca = compile_expr ctx a in
      let cb = compile_expr ctx b in
      fun () -> if to_bool (ca ()) then Vbool true else Vbool (to_bool (cb ()))
  | Binop (op, a, b) -> (
      match compile_num ctx ~fallback:false ~hookfree:false e with
      | Some (I f) -> fun () -> Vint (f ())
      | Some (F f) -> fun () -> Vfloat (f ())
      | None ->
          let ca = compile_expr ctx a in
          let cb = compile_expr ctx b in
          fun () ->
            let va = ca () in
            let vb = cb () in
            Interp.eval_binop op va vb)
  | Unop (Neg, a) ->
      let ca = compile_expr ctx a in
      fun () -> (
        match ca () with
        | Vint n -> Vint (-n)
        | Vfloat f -> Vfloat (-.f)
        | Vvec v -> Vvec (Array.map Float.neg v)
        | v -> raise (Type_error ("cannot negate " ^ type_name v)))
  | Unop (Not, a) ->
      let ca = compile_expr ctx a in
      fun () -> Vbool (not (to_bool (ca ())))
  | Tuple es ->
      let cs = List.map (compile_expr ctx) es in
      fun () -> Vtuple (eval_list cs)
  | Call (f, args) -> compile_call ctx f args
  | Index (base, subs) -> compile_index ctx base subs

and eval_list cs =
  match cs with
  | [] -> []
  | c :: tl ->
      let v = c () in
      v :: eval_list tl

(* ---- builtin devirtualization ------------------------------------ *)

and compile_call ctx f args : unit -> Value.t =
  let env = ctx.env in
  let cargs = List.map (compile_expr ctx) args in
  match (f, cargs) with
  | "int", [ c ] -> fun () -> Vint (to_int (c ()))
  | "float", [ c ] -> fun () -> Vfloat (to_float (c ()))
  | "exp", [ c ] -> fun () -> Vfloat (exp (to_float (c ())))
  | "log", [ c ] -> fun () -> Vfloat (log (to_float (c ())))
  | "sqrt", [ c ] -> fun () -> Vfloat (sqrt (to_float (c ())))
  | "sigmoid", [ c ] ->
      fun () ->
        let x = to_float (c ()) in
        Vfloat (1.0 /. (1.0 +. exp (-.x)))
  | "abs2", [ c ] ->
      fun () ->
        let x = to_float (c ()) in
        Vfloat (x *. x)
  | "abs", [ c ] ->
      fun () -> (
        match c () with
        | Vint n -> Vint (abs n)
        | v -> Vfloat (Float.abs (to_float v)))
  | "floor", [ c ] -> fun () -> Vint (int_of_float (Float.floor (to_float (c ()))))
  | "ceil", [ c ] -> fun () -> Vint (int_of_float (Float.ceil (to_float (c ()))))
  | "round", [ c ] -> fun () -> Vint (int_of_float (Float.round (to_float (c ()))))
  | "rand", [] -> fun () -> Vfloat (Interp.Rng.float env.Interp.rng)
  | "randn", [] -> fun () -> Vfloat (Interp.Rng.gaussian env.Interp.rng)
  | "rand_int", [ c ] ->
      fun () ->
        let n = to_int (c ()) in
        if n <= 0 then
          raise (Interp.Runtime_error "rand_int expects a positive bound")
        else Vint (int_of_float (Interp.Rng.float env.Interp.rng *. float_of_int n))
  | "min", [ a; b ] ->
      fun () ->
        let va = a () in
        let vb = b () in
        (match (va, vb) with
        | Vint x, Vint y -> Vint (min x y)
        | _ ->
            let x = to_float va in
            let y = to_float vb in
            Vfloat (Float.min x y))
  | "max", [ a; b ] ->
      fun () ->
        let va = a () in
        let vb = b () in
        (match (va, vb) with
        | Vint x, Vint y -> Vint (max x y)
        | _ ->
            let x = to_float va in
            let y = to_float vb in
            Vfloat (Float.max x y))
  | "dot", [ a; b ] ->
      fun () ->
        let va = a () in
        let vb = b () in
        let x = to_vec va in
        let y = to_vec vb in
        let acc = ref 0.0 in
        Array.iteri (fun i v -> acc := !acc +. (v *. y.(i))) x;
        Vfloat !acc
  | "norm", [ c ] ->
      fun () ->
        let x = to_vec (c ()) in
        Vfloat (sqrt (Array.fold_left (fun s v -> s +. (v *. v)) 0.0 x))
  | "zeros", [ c ] -> fun () -> Vvec (Array.make (to_int (c ())) 0.0)
  | "length", [ c ] ->
      fun () -> (
        match c () with
        | Vvec v -> Vint (Array.length v)
        | Vextern ex -> Vint (ex.ex_count ())
        | Vtuple vs -> Vint (List.length vs)
        | Vindex idx -> Vint (Array.length idx)
        | v -> Interp.eval_builtin env "length" [ v ])
  | _ ->
      (* everything else (size, sum, fill, println, host builtins, …)
         goes through the interpreter's single dispatch point with the
         same left-to-right argument order *)
      fun () -> Interp.eval_builtin env f (eval_list cargs)

(* ---- unboxed scalar compilation ----------------------------------- *)

(* [compile_num ctx ~fallback ~hookfree e] compiles [e] to an unboxed
   int/float closure when its static type allows.  [hookfree] kernels
   may skip profile/access-hook records (they only ever run under a
   dynamic no-hooks check); non-hookfree ones are valid anywhere.
   [fallback] permits wrapping the generic boxed closure when no
   structural specialization applies (must be [false] when called from
   [compile_expr] on the same node, to avoid mutual recursion). *)
and compile_num ctx ~fallback ~hookfree (e : expr) : num option =
  let num_arg a =
    (* an argument compiled unboxed-or-boxed, converted like [to_float] *)
    match compile_num ctx ~fallback:true ~hookfree a with
    | Some n -> as_float n
    | None ->
        let c = compile_expr ctx a in
        fun () -> to_float (c ())
  in
  match e with
  | Int_lit n -> Some (I (fun () -> n))
  | Float_lit f -> Some (F (fun () -> f))
  | Var v -> (
      let s = slot ctx v in
      match s.sl_ty with
      | Tint -> Some (I (fun () -> slot_int s))
      | Tfloat -> Some (F (fun () -> slot_float s))
      | _ -> None)
  | Unop (Neg, a) -> (
      match compile_num ctx ~fallback:true ~hookfree a with
      | Some (I f) -> Some (I (fun () -> -f ()))
      | Some (F f) -> Some (F (fun () -> -.(f ())))
      | None -> None)
  | Binop (op, a, b) -> (
      match
        ( compile_num ctx ~fallback:true ~hookfree a,
          compile_num ctx ~fallback:true ~hookfree b )
      with
      | Some na, Some nb -> compile_num_binop op na nb
      | _ -> None)
  | Call ("int", [ a ]) ->
      Some
        (I
           (match compile_num ctx ~fallback:true ~hookfree a with
           | Some (I f) -> f
           | Some (F f) ->
               fun () ->
                 let x = f () in
                 if Float.is_integer x then int_of_float x
                 else raise (Type_error "expected an int, got float")
           | None ->
               let c = compile_expr ctx a in
               fun () -> to_int (c ())))
  | Call ("float", [ a ]) -> Some (F (num_arg a))
  | Call ("exp", [ a ]) ->
      let f = num_arg a in
      Some (F (fun () -> exp (f ())))
  | Call ("log", [ a ]) ->
      let f = num_arg a in
      Some (F (fun () -> log (f ())))
  | Call ("sqrt", [ a ]) ->
      let f = num_arg a in
      Some (F (fun () -> sqrt (f ())))
  | Call ("sigmoid", [ a ]) ->
      let f = num_arg a in
      Some
        (F
           (fun () ->
             let x = f () in
             1.0 /. (1.0 +. exp (-.x))))
  | Call ("abs2", [ a ]) ->
      let f = num_arg a in
      Some
        (F
           (fun () ->
             let x = f () in
             x *. x))
  | Call ("abs", [ a ]) -> (
      match compile_num ctx ~fallback:true ~hookfree a with
      | Some (I f) -> Some (I (fun () -> abs (f ())))
      | Some (F f) -> Some (F (fun () -> Float.abs (f ())))
      | None -> None)
  | Call (("floor" | "ceil" | "round") as fn, [ a ]) ->
      let f = num_arg a in
      let op =
        match fn with
        | "floor" -> Float.floor
        | "ceil" -> Float.ceil
        | _ -> Float.round
      in
      Some (I (fun () -> int_of_float (op (f ()))))
  | Call ("rand", []) ->
      Some (F (fun () -> Interp.Rng.float ctx.env.Interp.rng))
  | Call ("randn", []) ->
      Some (F (fun () -> Interp.Rng.gaussian ctx.env.Interp.rng))
  | Call ("rand_int", [ a ]) ->
      let c =
        match compile_num ctx ~fallback:true ~hookfree a with
        | Some (I f) -> f
        | Some (F f) ->
            fun () ->
              let x = f () in
              if Float.is_integer x then int_of_float x
              else raise (Type_error "expected an int, got float")
        | None ->
            let g = compile_expr ctx a in
            fun () -> to_int (g ())
      in
      Some
        (I
           (fun () ->
             let n = c () in
             if n <= 0 then
               raise (Interp.Runtime_error "rand_int expects a positive bound")
             else
               int_of_float
                 (Interp.Rng.float ctx.env.Interp.rng *. float_of_int n)))
  | Call (("min" | "max") as fn, [ a; b ]) -> (
      match
        ( compile_num ctx ~fallback:true ~hookfree a,
          compile_num ctx ~fallback:true ~hookfree b )
      with
      | Some (I fa), Some (I fb) ->
          let op = if fn = "min" then min else max in
          Some
            (I
               (fun () ->
                 let x = fa () in
                 let y = fb () in
                 op x y))
      | Some na, Some nb ->
          let fa = as_float na and fb = as_float nb in
          let op = if fn = "min" then Float.min else Float.max in
          Some
            (F
               (fun () ->
                 let x = fa () in
                 let y = fb () in
                 op x y))
      | _ -> None)
  | Call ("dot", [ a; b ]) ->
      let ca = compile_expr ctx a in
      let cb = compile_expr ctx b in
      Some
        (F
           (fun () ->
             let va = ca () in
             let vb = cb () in
             let x = to_vec va in
             let y = to_vec vb in
             let acc = ref 0.0 in
             Array.iteri (fun i v -> acc := !acc +. (v *. y.(i))) x;
             !acc))
  | Call ("norm", [ a ]) ->
      let c = compile_expr ctx a in
      Some
        (F
           (fun () ->
             let x = to_vec (c ()) in
             sqrt (Array.fold_left (fun s v -> s +. (v *. v)) 0.0 x)))
  | Index (base, subs) when hookfree -> (
      match fast_extern_read ctx base subs with
      | Some (_, _, fa) ->
          let ps =
            Array.of_list
              (List.map
                 (function
                   | Sub_expr e -> compile_point ctx e
                   | _ -> assert false)
                 subs)
          in
          let n = Array.length ps in
          let buf = Array.make n 0 in
          Some
            (F
               (fun () ->
                 for i = 0 to n - 1 do
                   buf.(i) <- ps.(i) ()
                 done;
                 fa.fa_get buf))
      | None -> num_fallback ctx ~fallback e)
  | _ -> num_fallback ctx ~fallback e

and num_fallback ctx ~fallback e : num option =
  if not fallback then None
  else
    match infer ctx e with
    | Tint ->
        let c = compile_expr ctx e in
        Some
          (I
             (fun () ->
               match c () with
               | Vint n -> n
               | _ -> infer_bug "int expression"))
    | Tfloat ->
        let c = compile_expr ctx e in
        Some
          (F
             (fun () ->
               match c () with
               | Vfloat f -> f
               | _ -> infer_bug "float expression"))
    | _ -> None

and compile_num_binop op na nb : num option =
  let int_op iop =
    match (na, nb) with
    | I fa, I fb ->
        Some
          (I
             (fun () ->
               let x = fa () in
               let y = fb () in
               iop x y))
    | _ -> None
  in
  let float_op fop =
    let fa = as_float na and fb = as_float nb in
    Some
      (F
         (fun () ->
           let x = fa () in
           let y = fb () in
           fop x y))
  in
  let arith iop fop =
    match int_op iop with Some _ as r -> r | None -> float_op fop
  in
  match op with
  | Add -> arith ( + ) ( +. )
  | Sub -> arith ( - ) ( -. )
  | Mul -> arith ( * ) ( *. )
  | Div -> (
      match (na, nb) with
      | I fa, I fb ->
          Some
            (I
               (fun () ->
                 let x = fa () in
                 let y = fb () in
                 if y = 0 then raise (Interp.Runtime_error "division by zero")
                 else x / y))
      | _ -> float_op ( /. ))
  | Mod -> (
      match (na, nb) with
      | I fa, I fb ->
          Some
            (I
               (fun () ->
                 let x = fa () in
                 let y = fb () in
                 if y = 0 then raise (Interp.Runtime_error "mod by zero")
                 else ((x mod y) + y) mod y))
      | _ -> float_op Float.rem)
  | Pow -> (
      (* Vint ^ Vint is Vint only for non-negative exponents — a runtime
         property, so int^int stays on the generic path *)
      match (na, nb) with
      | I _, I _ -> None
      | _ -> float_op Float.pow)
  | Eq | Ne | Lt | Le | Gt | Ge | And | Or -> None

(* ---- subscripts --------------------------------------------------- *)

(* a point subscript as a 0-based int closure; [to_int]'s exact
   acceptance (integers and integer-valued floats) and error text *)
and compile_point ctx (e : expr) : unit -> int =
  match compile_num ctx ~fallback:true ~hookfree:false e with
  | Some (I f) -> fun () -> f () - 1
  | Some (F f) ->
      fun () ->
        let x = f () in
        if Float.is_integer x then int_of_float x - 1
        else raise (Type_error "expected an int, got float")
  | None ->
      let c = compile_expr ctx e in
      fun () -> to_int (c ()) - 1

and compile_csub ctx = function
  | Sub_all -> Kall
  | Sub_expr e -> Kpoint (compile_point ctx e)
  | Sub_range (lo, hi) -> Krange (compile_point ctx lo, compile_point ctx hi)

(* ---- indexing ----------------------------------------------------- *)

and compile_index ctx base subs : unit -> Value.t =
  let env = ctx.env in
  match fast_extern_read ctx base subs with
  | Some (s, _, fa) ->
      let ps =
        Array.of_list
          (List.map
             (function Sub_expr e -> compile_point ctx e | _ -> assert false)
             subs)
      in
      let n = Array.length ps in
      let buf = Array.make n 0 in
      let ks = Array.map (fun p -> Kpoint p) ps in
      fun () ->
        if no_hooks env then begin
          for i = 0 to n - 1 do
            buf.(i) <- ps.(i) ()
          done;
          Vfloat (fa.fa_get buf)
        end
        else index_value env (slot_get s) ks
  | None ->
      let cb = compile_expr ctx base in
      let ks = Array.of_list (List.map (compile_csub ctx) subs) in
      fun () ->
        let v = cb () in
        index_value env v ks

(* ------------------------------------------------------------------ *)
(* Statement compilation                                               *)
(* ------------------------------------------------------------------ *)

let is_arith = function Add | Sub | Mul | Div | Mod | Pow -> true | _ -> false

let arith_float_op = function
  | Add -> ( +. )
  | Sub -> ( -. )
  | Mul -> ( *. )
  | Div -> ( /. )
  | Mod -> Float.rem
  | Pow -> Float.pow
  | _ -> assert false

(* the fast-path pieces of an [Lindex] on a captured DistArray with
   point subscripts and an unboxed accessor *)
type fast_store = {
  fs_fa : Value.fast_access;
  fs_ps : (unit -> int) array;
  fs_buf : int array;
  fs_ks : csub array;
}

let fast_store ctx name subs =
  match fast_extern_read ctx (Var name) subs with
  | Some (_, _, fa) ->
      let ps =
        Array.of_list
          (List.map
             (function Sub_expr e -> compile_point ctx e | _ -> assert false)
             subs)
      in
      Some
        {
          fs_fa = fa;
          fs_ps = ps;
          fs_buf = Array.make (Array.length ps) 0;
          fs_ks = Array.map (fun p -> Kpoint p) ps;
        }
  | None -> None

let fill_buf fs =
  for i = 0 to Array.length fs.fs_ps - 1 do
    fs.fs_buf.(i) <- fs.fs_ps.(i) ()
  done

let rec compile_stmt ctx (stmt : stmt) : unit -> unit =
  let kind = compile_stmt_kind ctx stmt in
  let env = ctx.env in
  let pos = stmt.spos in
  fun () ->
    try
      match env.Interp.profile with
      | None -> kind ()
      | Some p ->
          let t0 = Unix.gettimeofday () in
          Fun.protect
            ~finally:(fun () ->
              Profile.record_line p ~line:pos.line
                ~seconds:(Unix.gettimeofday () -. t0))
            kind
    with
    | Interp.Runtime_error msg
      when pos.line > 0 && not (Interp.has_pos_prefix msg) ->
        raise
          (Interp.Runtime_error
             (Printf.sprintf "%d:%d: %s" pos.line pos.col msg))
    | Type_error msg when pos.line > 0 && not (Interp.has_pos_prefix msg) ->
        raise
          (Type_error (Printf.sprintf "%d:%d: %s" pos.line pos.col msg))

and compile_block ctx (b : block) : (unit -> unit) array =
  Array.of_list (List.map (compile_stmt ctx) b)

and run_block cb = Array.iter (fun f -> f ()) cb

and compile_stmt_kind ctx stmt : unit -> unit =
  let env = ctx.env in
  match stmt.sk with
  | Assign (Lvar v, e) ->
      let s = slot ctx v in
      let c = compile_expr ctx e in
      fun () -> slot_set s (c ())
  | Assign (Lindex (v, subs), e) -> compile_assign_index ctx v subs e
  | Op_assign (op, Lvar v, e) ->
      let s = slot ctx v in
      let c = compile_expr ctx e in
      fun () ->
        let cur = slot_get s in
        let rhs = c () in
        slot_set s (Interp.eval_binop op cur rhs)
  | Op_assign (op, Lindex (v, subs), e) ->
      compile_op_assign_index ctx op v subs e
  | If (c, then_b, else_b) ->
      let cc = compile_expr ctx c in
      let ct = compile_block ctx then_b in
      let cf = compile_block ctx else_b in
      fun () -> if to_bool (cc ()) then run_block ct else run_block cf
  | While (c, body) ->
      let cc = compile_expr ctx c in
      let cb = compile_block ctx body in
      fun () -> (
        try
          while to_bool (cc ()) do
            try run_block cb with Interp.Continue_exc -> ()
          done
        with Interp.Break_exc -> ())
  | For { parallel = Some _; _ } ->
      (* whether a nested @parallel_for runs serially or routes to the
         runtime handler depends on mutable env state — punt to the
         interpreter *)
      raise Unsupported
  | For { kind = Range_loop { var; lo; hi }; body; parallel = None } ->
      let s = slot ctx var in
      let clo = compile_loop_bound ctx lo in
      let chi = compile_loop_bound ctx hi in
      let cb = compile_block ctx body in
      fun () ->
        let l = clo () in
        let h = chi () in
        (try
           for i = l to h do
             slot_set s (Vint i);
             try run_block cb with Interp.Continue_exc -> ()
           done
         with Interp.Break_exc -> ())
  | For { kind = Each_loop { key; value; arr }; body; parallel = None } ->
      let sa = slot ctx arr in
      let sk = slot ctx key in
      let sv = slot ctx value in
      let cb = compile_block ctx body in
      fun () -> (
        match slot_get sa with
        | Vextern ex -> (
            try
              ex.ex_iter (fun idx v ->
                  (match env.Interp.profile with
                  | Some p -> Profile.record_array_read p ex.ex_name
                  | None -> ());
                  (match env.Interp.on_array_access with
                  | Some f ->
                      f ex ~write:false (Array.map (fun i -> Cpoint i) idx)
                  | None -> ());
                  slot_set sk (Vindex idx);
                  slot_set sv v;
                  try run_block cb with Interp.Continue_exc -> ())
            with Interp.Break_exc -> ())
        | v ->
            raise
              (Type_error
                 (Printf.sprintf "cannot iterate over %s (variable %s)"
                    (type_name v) arr)))
  | Expr_stmt e ->
      let c = compile_expr ctx e in
      fun () -> ignore (c ())
  | Break -> fun () -> raise Interp.Break_exc
  | Continue -> fun () -> raise Interp.Continue_exc

(* a 1-based loop bound, converted like [to_int] *)
and compile_loop_bound ctx e : unit -> int =
  match compile_num ctx ~fallback:true ~hookfree:false e with
  | Some (I f) -> f
  | Some (F f) ->
      fun () ->
        let x = f () in
        if Float.is_integer x then int_of_float x
        else raise (Type_error "expected an int, got float")
  | None ->
      let c = compile_expr ctx e in
      fun () -> to_int (c ())

(* A[i, j] = e
   interpreter order: RHS value; base lookup; profile write record;
   subscripts; store; access hook *)
and compile_assign_index ctx name subs e : unit -> unit =
  let env = ctx.env in
  let s = slot ctx name in
  let ce = compile_expr ctx e in
  match fast_store ctx name subs with
  | Some fs -> (
      let generic () =
        let v = ce () in
        assign_index_value env s fs.fs_ks v
      in
      (* statically-float RHS stores straight through the unboxed
         accessor; otherwise box, then pick the path per value *)
      match
        if infer ctx e = Tfloat then
          compile_num ctx ~fallback:true ~hookfree:true e
        else None
      with
      | Some (F fe) ->
          fun () ->
            if no_hooks env then begin
              let x = fe () in
              fill_buf fs;
              fs.fs_fa.fa_set fs.fs_buf x
            end
            else generic ()
      | _ ->
          fun () ->
            if no_hooks env then begin
              let v = ce () in
              match v with
              | Vfloat x ->
                  fill_buf fs;
                  fs.fs_fa.fa_set fs.fs_buf x
              | v ->
                  (* non-float store: the boxed setter owns the
                     conversion/error semantics *)
                  write_extern env
                    (match slot_get s with
                    | Vextern ex -> ex
                    | _ -> infer_bug "extern slot")
                    fs.fs_ks v
            end
            else generic ())
  | None ->
      let ks = Array.of_list (List.map (compile_csub ctx) subs) in
      fun () ->
        let v = ce () in
        assign_index_value env s ks v

(* A[i, j] op= e
   interpreter order: full read (record, subscripts #1, get, hook);
   RHS; combine; full write (record, subscripts #2, set, hook) — the
   subscripts are evaluated twice, and the compiled paths keep that *)
and compile_op_assign_index ctx op name subs e : unit -> unit =
  let env = ctx.env in
  let s = slot ctx name in
  let ce = compile_expr ctx e in
  let generic ks () =
    let cur = index_value env (slot_get s) ks in
    let rhs = ce () in
    let nv = Interp.eval_binop op cur rhs in
    assign_index_value env s ks nv
  in
  match fast_store ctx name subs with
  | Some fs -> (
      let rhs_ty = infer ctx e in
      match
        if is_arith op && (rhs_ty = Tint || rhs_ty = Tfloat) then
          compile_num ctx ~fallback:true ~hookfree:true e
        else None
      with
      | Some n ->
          let fe = as_float n in
          let fop = arith_float_op op in
          fun () ->
            if no_hooks env then begin
              fill_buf fs;
              let cur = fs.fs_fa.fa_get fs.fs_buf in
              let r = fe () in
              fill_buf fs;
              fs.fs_fa.fa_set fs.fs_buf (fop cur r)
            end
            else generic fs.fs_ks ()
      | None ->
          fun () ->
            if no_hooks env then begin
              fill_buf fs;
              let cur = fs.fs_fa.fa_get fs.fs_buf in
              let rhs = ce () in
              let nv = Interp.eval_binop op (Vfloat cur) rhs in
              fill_buf fs;
              match nv with
              | Vfloat x -> fs.fs_fa.fa_set fs.fs_buf x
              | nv ->
                  write_extern env
                    (match slot_get s with
                    | Vextern ex -> ex
                    | _ -> infer_bug "extern slot")
                    fs.fs_ks nv
            end
            else generic fs.fs_ks ())
  | None ->
      let ks = Array.of_list (List.map (compile_csub ctx) subs) in
      generic ks

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let compile_body (env : Interp.env) ?(value_float = false) ~key_var ~value_var
    (body : Ast.block) : t option =
  try
    let names = referenced_names body in
    let locals =
      List.sort_uniq String.compare
        (key_var :: value_var :: Ast.assigned_names body)
    in
    let ctx = { env; slots = Hashtbl.create 32 } in
    List.iter
      (fun name ->
        let captured = Hashtbl.find_opt env.Interp.vars name in
        let v, defined =
          match captured with Some v -> (v, true) | None -> (Vunit, false)
        in
        Hashtbl.replace ctx.slots name
          {
            sl_name = name;
            sl_local = List.mem name locals;
            sl_v = v;
            sl_defined = defined;
            sl_ty = (if defined then ty_of_value v else Tbot);
          })
      (List.sort_uniq String.compare (key_var :: value_var :: names));
    let sk = slot ctx key_var in
    let sv = slot ctx value_var in
    sk.sl_ty <- Tindex;
    sv.sl_ty <- (if value_float then Tfloat else Tany);
    (* fixpoint: join-only widening over a finite lattice terminates *)
    let guard = ref 0 in
    while infer_pass ctx body && !guard < 100 do
      incr guard
    done;
    let cbody = compile_block ctx body in
    let locals_slots = List.map (slot ctx) locals in
    Some
      {
        c_env = env;
        c_key = sk;
        c_value = sv;
        c_value_float = value_float;
        c_body = cbody;
        c_locals = locals_slots;
      }
  with Unsupported -> None

let run t ~key ~value =
  if t.c_value_float then (
    match value with
    | Vfloat _ -> ()
    | v ->
        invalid_arg
          (Printf.sprintf
             "Compile.run: kernel compiled with ~value_float:true got a %s \
              value"
             (type_name v)));
  slot_set t.c_key (Vindex key);
  slot_set t.c_value value;
  try run_block t.c_body with Interp.Continue_exc -> ()

let flush_locals t =
  List.iter
    (fun s ->
      if s.sl_defined then Hashtbl.replace t.c_env.Interp.vars s.sl_name s.sl_v)
    t.c_locals
