(** One-time loop-body compiler for [@parallel_for] bodies.

    [compile_body] lowers a body block to a closure kernel: variables
    resolve to mutable slots instead of per-access hashtable lookups,
    DistArray point subscripts resolve to the host's unboxed
    {!Value.fast_access} accessors when available, scalar floats run
    unboxed, and builtins devirtualize to direct OCaml closures.  The
    kernel is observationally identical to
    {!Interp.eval_body_for} — same values bitwise, same exceptions with
    the same positioned messages, same RNG consumption, same profile /
    access-hook callbacks in the same order — which the differential
    tests in [test_lang] check property-style.

    Compilation is conservative: any construct whose semantics the
    compiler cannot reproduce exactly (a nested [@parallel_for], a free
    variable missing from the environment) yields [None] and the caller
    falls back to the tree-walking interpreter. *)

type t

(** Compile [body] against [env]'s current bindings.  Globals (free
    variables already bound in [env], e.g. DistArray handles and
    hyper-parameters) are captured by reference at compile time; locals
    become slots private to the kernel.  [value_float] asserts every
    iterated value passed to {!run} will be [Vfloat] (enables the
    unboxed value slot).  Returns [None] when the body uses an
    unsupported construct. *)
val compile_body :
  Interp.env ->
  ?value_float:bool ->
  key_var:string ->
  value_var:string ->
  Ast.block ->
  t option

(** Run the kernel for one iteration — the compiled equivalent of
    {!Interp.eval_body_for}. *)
val run : t -> key:int array -> value:Value.t -> unit

(** Write the kernel's local slots back into the environment's
    variable table, so post-loop code observing leaked loop locals
    (as the interpreter leaks them) sees identical bindings. *)
val flush_locals : t -> unit

(** [false] iff the [ORION_NO_COMPILE] escape hatch is set (to anything
    but [""] or ["0"]). *)
val enabled : unit -> bool
