(** Recursive-descent parser for OrionScript.

    Statements are separated by newlines; blocks are terminated by the
    [end] keyword (Julia style).  Expression parsing uses precedence
    climbing.  Ranges ([lo:hi]) are only recognised in subscripts and
    in [for i = lo:hi] loop heads, matching the subset of Julia that
    Orion programs use. *)

open Ast

exception Parse_error of string * Lexer.pos

type state = { toks : Lexer.located array; mutable idx : int }

let peek st = st.toks.(st.idx)
let peek_tok st = (peek st).tok

let peek2_tok st =
  if st.idx + 1 < Array.length st.toks then st.toks.(st.idx + 1).tok
  else Lexer.EOF

let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let error st msg = raise (Parse_error (msg, (peek st).pos))

let expect st tok =
  if peek_tok st = tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (Lexer.token_name tok)
         (Lexer.token_name (peek_tok st)))

let rec skip_newlines st =
  if peek_tok st = Lexer.NEWLINE then (
    advance st;
    skip_newlines st)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let binop_of_token = function
  | Lexer.PLUS -> Some (Add, 5)
  | Lexer.MINUS -> Some (Sub, 5)
  | Lexer.STAR -> Some (Mul, 6)
  | Lexer.SLASH -> Some (Div, 6)
  | Lexer.PERCENT -> Some (Mod, 6)
  | Lexer.EQEQ -> Some (Eq, 4)
  | Lexer.NE -> Some (Ne, 4)
  | Lexer.LT -> Some (Lt, 4)
  | Lexer.LE -> Some (Le, 4)
  | Lexer.GT -> Some (Gt, 4)
  | Lexer.GE -> Some (Ge, 4)
  | Lexer.ANDAND -> Some (And, 3)
  | Lexer.OROR -> Some (Or, 2)
  | _ -> None

let rec parse_expr st = parse_binop st 2

and parse_binop st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_token (peek_tok st) with
    | Some (op, prec) when prec >= min_prec ->
        advance st;
        skip_newlines st;
        let rhs = parse_binop st (prec + 1) in
        loop (Binop (op, lhs, rhs))
    | Some _ | None -> lhs
  in
  loop lhs

and parse_unary st =
  match peek_tok st with
  | Lexer.MINUS ->
      advance st;
      Unop (Neg, parse_unary st)
  | Lexer.BANG ->
      advance st;
      Unop (Not, parse_unary st)
  | _ -> parse_power st

and parse_power st =
  let base = parse_postfix st in
  if peek_tok st = Lexer.CARET then (
    advance st;
    (* right-associative *)
    let exponent = parse_unary st in
    Binop (Pow, base, exponent))
  else base

and parse_postfix st =
  let base = parse_primary st in
  let rec loop base =
    match peek_tok st with
    | Lexer.LBRACKET ->
        advance st;
        skip_newlines st;
        let subs = parse_subscripts st in
        expect st Lexer.RBRACKET;
        loop (Index (base, subs))
    | _ -> base
  in
  loop base

and parse_subscripts st =
  let rec loop acc =
    let sub = parse_subscript st in
    skip_newlines st;
    if peek_tok st = Lexer.COMMA then (
      advance st;
      skip_newlines st;
      loop (sub :: acc))
    else List.rev (sub :: acc)
  in
  loop []

and parse_subscript st =
  if peek_tok st = Lexer.COLON then (
    advance st;
    Sub_all)
  else
    let e = parse_expr st in
    if peek_tok st = Lexer.COLON then (
      advance st;
      let hi = parse_expr st in
      Sub_range (e, hi))
    else Sub_expr e

and parse_primary st =
  match peek_tok st with
  | Lexer.INT n ->
      advance st;
      Int_lit n
  | Lexer.FLOAT f ->
      advance st;
      Float_lit f
  | Lexer.STRING s ->
      advance st;
      String_lit s
  | Lexer.KW_TRUE ->
      advance st;
      Bool_lit true
  | Lexer.KW_FALSE ->
      advance st;
      Bool_lit false
  | Lexer.IDENT name -> (
      advance st;
      match peek_tok st with
      | Lexer.LPAREN ->
          advance st;
          skip_newlines st;
          if peek_tok st = Lexer.RPAREN then (
            advance st;
            Call (name, []))
          else
            let args = parse_expr_list st in
            expect st Lexer.RPAREN;
            Call (name, args)
      | _ -> Var name)
  | Lexer.LPAREN ->
      advance st;
      skip_newlines st;
      let first = parse_expr st in
      skip_newlines st;
      if peek_tok st = Lexer.COMMA then (
        advance st;
        skip_newlines st;
        let rest = parse_expr_list st in
        expect st Lexer.RPAREN;
        Tuple (first :: rest))
      else (
        expect st Lexer.RPAREN;
        first)
  | other ->
      error st
        (Printf.sprintf "expected an expression, found %s"
           (Lexer.token_name other))

and parse_expr_list st =
  let rec loop acc =
    let e = parse_expr st in
    skip_newlines st;
    if peek_tok st = Lexer.COMMA then (
      advance st;
      skip_newlines st;
      loop (e :: acc))
    else List.rev (e :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let lvalue_of_expr st = function
  | Var v -> Lvar v
  | Index (Var v, subs) -> Lindex (v, subs)
  | _ -> error st "left-hand side of assignment must be a variable or index"

(* Source position of the next token, as the [Ast.pos] to stamp on the
   statement that starts there. *)
let here st =
  let p = (peek st).Lexer.pos in
  { Ast.line = p.Lexer.line; col = p.Lexer.col }

let rec parse_block st ~stop =
  skip_newlines st;
  let rec loop acc =
    let tok = peek_tok st in
    if List.mem tok stop then List.rev acc
    else if tok = Lexer.EOF then
      if stop = [ Lexer.EOF ] then List.rev acc
      else error st "unexpected end of input (missing 'end'?)"
    else
      let stmt = parse_stmt st in
      skip_newlines st;
      loop (stmt :: acc)
  in
  loop []

and parse_stmt st =
  let pos = here st in
  match peek_tok st with
  | Lexer.KW_IF -> parse_if st ~pos
  | Lexer.KW_WHILE ->
      advance st;
      let cond = parse_expr st in
      let body = parse_block st ~stop:[ Lexer.KW_END ] in
      expect st Lexer.KW_END;
      mk ~pos (While (cond, body))
  | Lexer.KW_FOR -> parse_for st ~pos ~parallel:None
  | Lexer.KW_PARALLEL_FOR ->
      advance st;
      let ordered =
        if peek_tok st = Lexer.KW_ORDERED then (
          advance st;
          true)
        else false
      in
      if peek_tok st <> Lexer.KW_FOR then
        error st "expected 'for' after @parallel_for"
      else parse_for st ~pos ~parallel:(Some { ordered })
  | Lexer.KW_BREAK ->
      advance st;
      mk ~pos Break
  | Lexer.KW_CONTINUE ->
      advance st;
      mk ~pos Continue
  | _ -> (
      let e = parse_expr st in
      match peek_tok st with
      | Lexer.EQ ->
          advance st;
          skip_newlines st;
          mk ~pos (Assign (lvalue_of_expr st e, parse_expr st))
      | Lexer.PLUS_EQ ->
          advance st;
          mk ~pos (Op_assign (Add, lvalue_of_expr st e, parse_expr st))
      | Lexer.MINUS_EQ ->
          advance st;
          mk ~pos (Op_assign (Sub, lvalue_of_expr st e, parse_expr st))
      | Lexer.STAR_EQ ->
          advance st;
          mk ~pos (Op_assign (Mul, lvalue_of_expr st e, parse_expr st))
      | Lexer.SLASH_EQ ->
          advance st;
          mk ~pos (Op_assign (Div, lvalue_of_expr st e, parse_expr st))
      | _ -> mk ~pos (Expr_stmt e))

and parse_if st ~pos =
  (* [if] and [elseif] share the same structure, so [elseif] re-enters
     here as a nested If in the else branch. *)
  advance st;
  let cond = parse_expr st in
  let then_b =
    parse_block st ~stop:[ Lexer.KW_END; Lexer.KW_ELSE; Lexer.KW_ELSEIF ]
  in
  match peek_tok st with
  | Lexer.KW_END ->
      advance st;
      mk ~pos (If (cond, then_b, []))
  | Lexer.KW_ELSE ->
      advance st;
      let else_b = parse_block st ~stop:[ Lexer.KW_END ] in
      expect st Lexer.KW_END;
      mk ~pos (If (cond, then_b, else_b))
  | Lexer.KW_ELSEIF ->
      let nested = parse_if_as_elseif st ~pos:(here st) in
      mk ~pos (If (cond, then_b, [ nested ]))
  | other ->
      error st
        (Printf.sprintf "expected end/else/elseif, found %s"
           (Lexer.token_name other))

and parse_if_as_elseif st ~pos =
  (* Current token is ELSEIF; treat it exactly like IF.  The chain
     shares the final single [end]. *)
  advance st;
  let cond = parse_expr st in
  let then_b =
    parse_block st ~stop:[ Lexer.KW_END; Lexer.KW_ELSE; Lexer.KW_ELSEIF ]
  in
  match peek_tok st with
  | Lexer.KW_END ->
      advance st;
      mk ~pos (If (cond, then_b, []))
  | Lexer.KW_ELSE ->
      advance st;
      let else_b = parse_block st ~stop:[ Lexer.KW_END ] in
      expect st Lexer.KW_END;
      mk ~pos (If (cond, then_b, else_b))
  | Lexer.KW_ELSEIF ->
      let nested = parse_if_as_elseif st ~pos:(here st) in
      mk ~pos (If (cond, then_b, [ nested ]))
  | other ->
      error st
        (Printf.sprintf "expected end/else/elseif, found %s"
           (Lexer.token_name other))

and parse_for st ~pos ~parallel =
  expect st Lexer.KW_FOR;
  let kind =
    match (peek_tok st, peek2_tok st) with
    | Lexer.LPAREN, _ ->
        (* for (key, v) in arr *)
        advance st;
        let key =
          match peek_tok st with
          | Lexer.IDENT k ->
              advance st;
              k
          | _ -> error st "expected identifier in loop pattern"
        in
        expect st Lexer.COMMA;
        let value =
          match peek_tok st with
          | Lexer.IDENT v ->
              advance st;
              v
          | _ -> error st "expected identifier in loop pattern"
        in
        expect st Lexer.RPAREN;
        expect st Lexer.KW_IN;
        let arr =
          match peek_tok st with
          | Lexer.IDENT a ->
              advance st;
              a
          | _ -> error st "expected array name after 'in'"
        in
        Each_loop { key; value; arr }
    | Lexer.IDENT var, Lexer.EQ ->
        advance st;
        advance st;
        let lo = parse_expr st in
        expect st Lexer.COLON;
        let hi = parse_expr st in
        Range_loop { var; lo; hi }
    | _ -> error st "expected 'for i = lo:hi' or 'for (key, v) in arr'"
  in
  let body = parse_block st ~stop:[ Lexer.KW_END ] in
  expect st Lexer.KW_END;
  mk ~pos (For { kind; body; parallel })

(** Parse a whole program.  Raises {!Parse_error} or {!Lexer.Lex_error}. *)
let parse_program src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; idx = 0 } in
  let block = parse_block st ~stop:[ Lexer.EOF ] in
  block

(** Parse a single expression (used by tests and the REPL-style tools). *)
let parse_expression src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; idx = 0 } in
  skip_newlines st;
  let e = parse_expr st in
  skip_newlines st;
  if peek_tok st <> Lexer.EOF then error st "trailing tokens after expression"
  else e
