(** Static semantic checks for OrionScript programs: use before
    definition, [break]/[continue] placement, builtin arity, nested
    [@parallel_for], assignment to a parallel loop's index variable. *)

type severity = Error | Warning

type diagnostic = {
  severity : severity;
  pos : Ast.pos option;
      (** statement the diagnostic is attributed to; [None] for
          synthesized code with no source position *)
  message : string;
}

(** ["LINE:COL: severity: message"] ([LINE:COL:] omitted without a
    position). *)
val diagnostic_to_string : diagnostic -> string

(** The subset of [diags] that are errors. *)
val errors : diagnostic list -> diagnostic list

(** Check a program.  [globals] are names defined by the host
    (registered DistArrays, CLI bindings, driver constants). *)
val check_program : ?globals:string list -> Ast.block -> diagnostic list
