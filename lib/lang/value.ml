(** Runtime values for the OrionScript interpreter.

    Distributed arrays appear to interpreted code as {!extern} handles:
    opaque objects with get/set/iterate callbacks supplied by the host
    (the DSM layer).  This keeps the language library free of any
    dependency on the runtime. *)

type concrete_sub =
  | Cpoint of int  (** a single (0-based) position *)
  | Crange of int * int  (** inclusive 0-based range *)
  | Call_dim  (** the whole dimension, [:] *)

type t =
  | Vunit
  | Vint of int
  | Vfloat of float
  | Vbool of bool
  | Vstring of string
  | Vvec of float array  (** result of a set query on one dimension *)
  | Vtuple of t list
  | Vindex of int array  (** a loop-iteration index vector (0-based) *)
  | Vextern of extern

and extern = {
  ex_name : string;
  ex_dims : int array;
  ex_get : concrete_sub array -> t;
  ex_set : concrete_sub array -> t -> unit;
  ex_iter : (int array -> t -> unit) -> unit;
      (** iterate over stored entries with their (0-based) index vectors *)
  ex_count : unit -> int;  (** number of stored entries *)
  ex_fast : fast_access option;
      (** unboxed point-element accessors for float arrays — present
          only when no host hook needs to observe individual accesses,
          so compiled loop bodies (see [Compile]) may use them freely *)
}

(** Scalar fast path into a float-element array: point keys are passed
    as 0-based per-dimension indices (the callee linearizes against its
    strides and bounds-checks exactly like the boxed path, so the two
    paths raise identical exceptions). *)
and fast_access = {
  fa_get : int array -> float;
  fa_set : int array -> float -> unit;
}

exception Type_error of string

let type_name = function
  | Vunit -> "unit"
  | Vint _ -> "int"
  | Vfloat _ -> "float"
  | Vbool _ -> "bool"
  | Vstring _ -> "string"
  | Vvec _ -> "vector"
  | Vtuple _ -> "tuple"
  | Vindex _ -> "index"
  | Vextern _ -> "distarray"

let to_float = function
  | Vint n -> float_of_int n
  | Vfloat f -> f
  | v -> raise (Type_error (Printf.sprintf "expected a number, got %s" (type_name v)))

let to_int = function
  | Vint n -> n
  | Vfloat f when Float.is_integer f -> int_of_float f
  | v -> raise (Type_error (Printf.sprintf "expected an int, got %s" (type_name v)))

let to_bool = function
  | Vbool b -> b
  | v -> raise (Type_error (Printf.sprintf "expected a bool, got %s" (type_name v)))

let to_vec = function
  | Vvec v -> v
  | Vfloat f -> [| f |]
  | Vint n -> [| float_of_int n |]
  | v -> raise (Type_error (Printf.sprintf "expected a vector, got %s" (type_name v)))

let rec pp fmt = function
  | Vunit -> Fmt.string fmt "()"
  | Vint n -> Fmt.int fmt n
  | Vfloat f -> Fmt.pf fmt "%g" f
  | Vbool b -> Fmt.bool fmt b
  | Vstring s -> Fmt.pf fmt "%S" s
  | Vvec v ->
      Fmt.pf fmt "[%a]"
        Fmt.(array ~sep:(any ", ") (fmt "%g"))
        v
  | Vtuple vs -> Fmt.pf fmt "(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp) vs
  | Vindex idx ->
      Fmt.pf fmt "#[%a]" Fmt.(array ~sep:(any ", ") int) idx
  | Vextern ex -> Fmt.pf fmt "<distarray %s>" ex.ex_name

let to_string v = Fmt.str "%a" pp v
