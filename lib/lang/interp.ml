(** Tree-walking interpreter for OrionScript.

    This plays the role of Julia's JIT in the paper's prototype: the
    analysis operates on the AST, and the same AST is then *executed* —
    either serially by the driver, or iteration-by-iteration by the
    distributed executor via {!eval_body_for}.

    Distributed arrays are visible only through {!Value.extern} handles
    installed in the environment by the host. *)

open Ast
open Value

exception Runtime_error of string

exception Break_exc
exception Continue_exc

(** A deterministic splitmix64 generator so interpreted programs are
    reproducible across runs and platforms. *)
module Rng = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }
  let state t = t.state
  let set_state t s = t.state <- s

  let next t =
    let open Int64 in
    t.state <- add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let float t =
    (* uniform in [0, 1) from the top 53 bits *)
    let bits = Int64.shift_right_logical (next t) 11 in
    Int64.to_float bits /. 9007199254740992.0

  let gaussian t =
    (* Box–Muller; one value per call is fine at our scale *)
    let u1 = max (float t) 1e-300 in
    let u2 = float t in
    sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
end

type env = {
  vars : (string, Value.t) Hashtbl.t;
  rng : Rng.t;
  host_call : string -> Value.t list -> Value.t option;
      (** extra builtins supplied by the host; returns [None] if the
          name is not a host builtin *)
  mutable on_parallel_for : (env -> Ast.stmt -> unit) option;
      (** when set, @parallel_for statements are routed here (the
          distributed runtime) instead of executing serially *)
  mutable profile : Profile.t option;
      (** when set, statement execution and DistArray accesses are
          recorded (see {!Profile}) *)
  mutable on_array_access :
    (Value.extern -> write:bool -> Value.concrete_sub array -> unit) option;
      (** when set, called after every successful DistArray element
          access with the concrete (0-based) subscripts — the hook the
          dynamic dependence validator uses to build its access log *)
}

let create_env ?(seed = 42) ?(host_call = fun _ _ -> None) ?profile () =
  {
    vars = Hashtbl.create 64;
    rng = Rng.create seed;
    host_call;
    on_parallel_for = None;
    profile;
    on_array_access = None;
  }

let set_var env name v = Hashtbl.replace env.vars name v

let get_var env name =
  match Hashtbl.find_opt env.vars name with
  | Some v -> v
  | None -> raise (Runtime_error (Printf.sprintf "undefined variable %s" name))

let var_opt env name = Hashtbl.find_opt env.vars name

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)
(* ------------------------------------------------------------------ *)

let vec_map2 op a b =
  if Array.length a <> Array.length b then
    raise
      (Runtime_error
         (Printf.sprintf "vector length mismatch: %d vs %d" (Array.length a)
            (Array.length b)))
  else Array.init (Array.length a) (fun i -> op a.(i) b.(i))

let num_binop op_int op_float a b =
  match (a, b) with
  | Vint x, Vint y -> Vint (op_int x y)
  | (Vint _ | Vfloat _), (Vint _ | Vfloat _) ->
      Vfloat (op_float (to_float a) (to_float b))
  | Vvec x, Vvec y -> Vvec (vec_map2 op_float x y)
  | Vvec x, (Vint _ | Vfloat _) ->
      let s = to_float b in
      Vvec (Array.map (fun v -> op_float v s) x)
  | (Vint _ | Vfloat _), Vvec y ->
      let s = to_float a in
      Vvec (Array.map (fun v -> op_float s v) y)
  | _ ->
      raise
        (Type_error
           (Printf.sprintf "cannot apply arithmetic to %s and %s" (type_name a)
              (type_name b)))

let compare_values op a b =
  match (a, b) with
  | (Vint _ | Vfloat _), (Vint _ | Vfloat _) ->
      Vbool (op (compare (to_float a) (to_float b)) 0)
  | Vstring x, Vstring y -> Vbool (op (String.compare x y) 0)
  | Vbool x, Vbool y -> Vbool (op (compare x y) 0)
  | _ ->
      raise
        (Type_error
           (Printf.sprintf "cannot compare %s and %s" (type_name a)
              (type_name b)))

let eval_binop op a b =
  match op with
  | Add -> num_binop ( + ) ( +. ) a b
  | Sub -> num_binop ( - ) ( -. ) a b
  | Mul -> num_binop ( * ) ( *. ) a b
  | Div -> (
      match (a, b) with
      | Vint x, Vint y ->
          if y = 0 then raise (Runtime_error "division by zero")
          else Vint (x / y)
      | _ -> num_binop ( / ) ( /. ) a b)
  | Mod -> (
      match (a, b) with
      | Vint x, Vint y ->
          if y = 0 then raise (Runtime_error "mod by zero")
          else Vint (((x mod y) + y) mod y)
      | _ -> Vfloat (Float.rem (to_float a) (to_float b)))
  | Pow -> (
      match (a, b) with
      | Vint x, Vint y when y >= 0 ->
          let rec go acc n = if n = 0 then acc else go (acc * x) (n - 1) in
          Vint (go 1 y)
      | _ -> Vfloat (Float.pow (to_float a) (to_float b)))
  | Eq -> compare_values ( = ) a b
  | Ne -> compare_values ( <> ) a b
  | Lt -> compare_values ( < ) a b
  | Le -> compare_values ( <= ) a b
  | Gt -> compare_values ( > ) a b
  | Ge -> compare_values ( >= ) a b
  | And -> Vbool (to_bool a && to_bool b)
  | Or -> Vbool (to_bool a || to_bool b)

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)
(* ------------------------------------------------------------------ *)

let float_fun1 name f args =
  match args with
  | [ v ] -> Vfloat (f (to_float v))
  | _ -> raise (Runtime_error (name ^ " expects 1 argument"))

let eval_builtin env name args =
  match (name, args) with
  (* conversions are sequenced left-to-right explicitly wherever a
     builtin takes several arguments: {!Compile}'s devirtualized
     closures replicate the order, so both paths raise the same error
     first when several arguments are invalid *)
  | "dot", [ a; b ] ->
      let x = to_vec a in
      let y = to_vec b in
      let acc = ref 0.0 in
      Array.iteri (fun i v -> acc := !acc +. (v *. y.(i))) x;
      Vfloat !acc
  | "norm", [ a ] ->
      let x = to_vec a in
      Vfloat (sqrt (Array.fold_left (fun s v -> s +. (v *. v)) 0.0 x))
  | "zeros", [ n ] -> Vvec (Array.make (to_int n) 0.0)
  | "fill", [ v; n ] -> Vvec (Array.make (to_int n) (to_float v))
  | "length", [ Vvec v ] -> Vint (Array.length v)
  | "length", [ Vextern ex ] -> Vint (ex.ex_count ())
  | "length", [ Vtuple vs ] -> Vint (List.length vs)
  | "length", [ Vindex idx ] -> Vint (Array.length idx)
  | "size", [ Vextern ex ] ->
      Vtuple (Array.to_list (Array.map (fun d -> Vint d) ex.ex_dims))
  | "size", [ Vextern ex; d ] -> Vint ex.ex_dims.(to_int d - 1)
  | "sum", [ Vvec v ] -> Vfloat (Array.fold_left ( +. ) 0.0 v)
  | "abs", [ Vint n ] -> Vint (abs n)
  | "abs", [ v ] -> Vfloat (Float.abs (to_float v))
  | "abs2", [ v ] ->
      let f = to_float v in
      Vfloat (f *. f)
  | "exp", args -> float_fun1 "exp" exp args
  | "log", args -> float_fun1 "log" log args
  | "sqrt", args -> float_fun1 "sqrt" sqrt args
  | "sigmoid", [ v ] ->
      let x = to_float v in
      Vfloat (1.0 /. (1.0 +. exp (-.x)))
  | "floor", [ v ] -> Vint (int_of_float (Float.floor (to_float v)))
  | "ceil", [ v ] -> Vint (int_of_float (Float.ceil (to_float v)))
  | "round", [ v ] -> Vint (int_of_float (Float.round (to_float v)))
  | "float", [ v ] -> Vfloat (to_float v)
  | "int", [ v ] -> Vint (to_int v)
  (* two ints stay an int: [A[min(i, j)]] must not become a float
     subscript by silent coercion *)
  | "min", [ Vint a; Vint b ] -> Vint (min a b)
  | "min", [ a; b ] ->
      let x = to_float a in
      let y = to_float b in
      Vfloat (Float.min x y)
  | "max", [ Vint a; Vint b ] -> Vint (max a b)
  | "max", [ a; b ] ->
      let x = to_float a in
      let y = to_float b in
      Vfloat (Float.max x y)
  | "rand", [] -> Vfloat (Rng.float env.rng)
  | "randn", [] -> Vfloat (Rng.gaussian env.rng)
  | "randn", [ n ] ->
      Vvec (Array.init (to_int n) (fun _ -> Rng.gaussian env.rng))
  | "rand_int", [ n ] ->
      (* uniform in [0, n) *)
      let n = to_int n in
      if n <= 0 then raise (Runtime_error "rand_int expects a positive bound")
      else Vint (int_of_float (Rng.float env.rng *. float_of_int n))
  | "println", args ->
      List.iter (fun v -> print_string (Value.to_string v)) args;
      print_newline ();
      Vunit
  | _, _ -> (
      match env.host_call name args with
      | Some v -> v
      | None ->
          raise (Runtime_error (Printf.sprintf "unknown function %s/%d" name
                                   (List.length args))))

(* ------------------------------------------------------------------ *)
(* Subscript evaluation                                                *)
(* ------------------------------------------------------------------ *)

(** Validate a 0-based inclusive vector range before slicing: reversed
    (empty) ranges and out-of-bounds ends surface as {!Runtime_error}s
    (positioned by the enclosing statement) rather than a raw
    [Invalid_argument] escaping from [Array.sub]/[Array.blit].
    Messages quote the 1-based surface subscripts. *)
let checked_vec_range ~len ~lo ~hi =
  if lo > hi then
    raise
      (Runtime_error
         (Printf.sprintf "empty vector range %d:%d (lo > hi)" (lo + 1)
            (hi + 1)))
  else if lo < 0 || hi >= len then
    raise
      (Runtime_error
         (Printf.sprintf "vector range %d:%d out of bounds (length %d)"
            (lo + 1) (hi + 1) len))

(* Surface subscripts are 1-based (Julia); concrete subscripts are
   0-based. *)

let rec eval_concrete_sub env = function
  | Sub_all -> Call_dim
  | Sub_expr e -> Cpoint (to_int (eval_expr env e) - 1)
  | Sub_range (lo, hi) ->
      (* lo before hi, explicitly — compiled subscripts keep this order *)
      let l = to_int (eval_expr env lo) - 1 in
      let h = to_int (eval_expr env hi) - 1 in
      Crange (l, h)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

and eval_expr env e =
  match e with
  | Int_lit n -> Vint n
  | Float_lit f -> Vfloat f
  | Bool_lit b -> Vbool b
  | String_lit s -> Vstring s
  | Var v -> get_var env v
  | Binop (And, a, b) ->
      (* short-circuit *)
      if to_bool (eval_expr env a) then Vbool (to_bool (eval_expr env b))
      else Vbool false
  | Binop (Or, a, b) ->
      if to_bool (eval_expr env a) then Vbool true
      else Vbool (to_bool (eval_expr env b))
  | Binop (op, a, b) ->
      (* left operand first, explicitly — OCaml's argument order is
         unspecified, and compiled kernels evaluate left-to-right *)
      let va = eval_expr env a in
      let vb = eval_expr env b in
      eval_binop op va vb
  | Unop (Neg, a) -> (
      match eval_expr env a with
      | Vint n -> Vint (-n)
      | Vfloat f -> Vfloat (-.f)
      | Vvec v -> Vvec (Array.map Float.neg v)
      | v -> raise (Type_error ("cannot negate " ^ type_name v)))
  | Unop (Not, a) -> Vbool (not (to_bool (eval_expr env a)))
  | Call (f, args) ->
      (* explicit left-to-right argument evaluation (matched by the
         compiled kernels) *)
      let rec eval_args = function
        | [] -> []
        | e :: tl ->
            let v = eval_expr env e in
            v :: eval_args tl
      in
      let args = eval_args args in
      eval_builtin env f args
  | Tuple es ->
      let rec eval_args = function
        | [] -> []
        | e :: tl ->
            let v = eval_expr env e in
            v :: eval_args tl
      in
      Vtuple (eval_args es)
  | Index (base, subs) -> (
      match eval_expr env base with
      | Vextern ex ->
          (match env.profile with
          | Some p -> Profile.record_array_read p ex.ex_name
          | None -> ());
          let csubs = Array.of_list (List.map (eval_concrete_sub env) subs) in
          let v = ex.ex_get csubs in
          (match env.on_array_access with
          | Some f -> f ex ~write:false csubs
          | None -> ());
          v
      | Vvec v -> (
          match subs with
          | [ Sub_expr e ] -> Vfloat v.(to_int (eval_expr env e) - 1)
          | [ Sub_all ] -> Vvec (Array.copy v)
          | [ Sub_range (lo, hi) ] ->
              let lo = to_int (eval_expr env lo) - 1 in
              let hi = to_int (eval_expr env hi) - 1 in
              checked_vec_range ~len:(Array.length v) ~lo ~hi;
              Vvec (Array.sub v lo (hi - lo + 1))
          | _ -> raise (Runtime_error "vectors take exactly one subscript"))
      | Vindex idx -> (
          match subs with
          | [ Sub_expr e ] -> Vint (idx.(to_int (eval_expr env e) - 1) + 1)
          | _ -> raise (Runtime_error "index vectors take one point subscript"))
      | Vtuple vs -> (
          match subs with
          | [ Sub_expr e ] -> List.nth vs (to_int (eval_expr env e) - 1)
          | _ -> raise (Runtime_error "tuples take one point subscript"))
      | v -> raise (Type_error ("cannot index a " ^ type_name v)))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let assign_lvalue env lhs v =
  match lhs with
  | Lvar name -> set_var env name v
  | Lindex (name, subs) -> (
      match get_var env name with
      | Vextern ex ->
          (match env.profile with
          | Some p -> Profile.record_array_write p ex.ex_name
          | None -> ());
          let csubs = Array.of_list (List.map (eval_concrete_sub env) subs) in
          ex.ex_set csubs v;
          (match env.on_array_access with
          | Some f -> f ex ~write:true csubs
          | None -> ())
      | Vvec arr -> (
          match subs with
          | [ Sub_expr e ] ->
              let i = to_int (eval_expr env e) - 1 in
              arr.(i) <- to_float v
          | [ Sub_all ] ->
              let src = to_vec v in
              if Array.length src <> Array.length arr then
                raise (Runtime_error "vector length mismatch in assignment")
              else Array.blit src 0 arr 0 (Array.length arr)
          | [ Sub_range (lo, hi) ] ->
              let lo = to_int (eval_expr env lo) - 1 in
              let hi = to_int (eval_expr env hi) - 1 in
              checked_vec_range ~len:(Array.length arr) ~lo ~hi;
              let src = to_vec v in
              if Array.length src <> hi - lo + 1 then
                raise (Runtime_error "vector length mismatch in assignment")
              else Array.blit src 0 arr lo (hi - lo + 1)
          | _ -> raise (Runtime_error "unsupported vector assignment"))
      | other ->
          raise (Type_error ("cannot assign into a " ^ type_name other)))

let read_lvalue env = function
  | Lvar name -> get_var env name
  | Lindex (name, subs) -> eval_expr env (Index (Var name, subs))

(* Is [msg] already prefixed with a "line:col: " position (added by a
   nested statement)?  Innermost statements win, so errors carry the
   most precise position available. *)
let has_pos_prefix msg =
  let n = String.length msg in
  let is_digit c = c >= '0' && c <= '9' in
  let rec digits i = if i < n && is_digit msg.[i] then digits (i + 1) else i in
  let i = digits 0 in
  if i = 0 || i >= n || msg.[i] <> ':' then false
  else
    let j = digits (i + 1) in
    j > i + 1 && j < n && msg.[j] = ':'

let rec exec_stmt env stmt =
  try
    match env.profile with
    | None -> exec_stmt_kind env stmt
    | Some p ->
        (* [Fun.protect] so break/continue exceptions still record *)
        let t0 = Unix.gettimeofday () in
        Fun.protect
          ~finally:(fun () ->
            Profile.record_line p ~line:stmt.spos.line
              ~seconds:(Unix.gettimeofday () -. t0))
          (fun () -> exec_stmt_kind env stmt)
  with
  | Runtime_error msg when stmt.spos.line > 0 && not (has_pos_prefix msg) ->
      raise
        (Runtime_error
           (Printf.sprintf "%d:%d: %s" stmt.spos.line stmt.spos.col msg))
  | Type_error msg when stmt.spos.line > 0 && not (has_pos_prefix msg) ->
      raise
        (Type_error
           (Printf.sprintf "%d:%d: %s" stmt.spos.line stmt.spos.col msg))

and exec_stmt_kind env stmt =
  match stmt.sk with
  | Assign (lhs, e) -> assign_lvalue env lhs (eval_expr env e)
  | Op_assign (op, lhs, e) ->
      let cur = read_lvalue env lhs in
      let rhs = eval_expr env e in
      assign_lvalue env lhs (eval_binop op cur rhs)
  | If (cond, then_b, else_b) ->
      if to_bool (eval_expr env cond) then exec_block env then_b
      else exec_block env else_b
  | While (cond, body) ->
      (try
         while to_bool (eval_expr env cond) do
           try exec_block env body with Continue_exc -> ()
         done
       with Break_exc -> ())
  | For { kind; body; parallel } -> (
      match (parallel, env.on_parallel_for) with
      | Some _, Some handler -> handler env stmt
      | (Some _ | None), _ ->
          (* without a runtime handler the driver executes a parallel
             for-loop serially *)
          exec_loop env kind body)
  | Expr_stmt e -> ignore (eval_expr env e)
  | Break -> raise Break_exc
  | Continue -> raise Continue_exc

and exec_loop env kind body =
  match kind with
  | Range_loop { var; lo; hi } -> (
      let lo = to_int (eval_expr env lo) in
      let hi = to_int (eval_expr env hi) in
      try
        for i = lo to hi do
          set_var env var (Vint i);
          try exec_block env body with Continue_exc -> ()
        done
      with Break_exc -> ())
  | Each_loop { key; value; arr } -> (
      match get_var env arr with
      | Vextern ex -> (
          try
            ex.ex_iter (fun idx v ->
                (match env.profile with
                | Some p -> Profile.record_array_read p ex.ex_name
                | None -> ());
                (match env.on_array_access with
                | Some f ->
                    f ex ~write:false (Array.map (fun i -> Cpoint i) idx)
                | None -> ());
                set_var env key (Vindex idx);
                set_var env value v;
                try exec_block env body with Continue_exc -> ())
          with Break_exc -> ())
      | v ->
          raise
            (Type_error
               (Printf.sprintf "cannot iterate over %s (variable %s)"
                  (type_name v) arr)))

and exec_block env block = List.iter (exec_stmt env) block

(** Run a whole program in [env]. *)
let run_program env program = exec_block env program

(** Execute the body of a parallel for-loop for a single iteration:
    binds the loop's key and value variables, then runs the body.
    This is the unit of work the distributed executor schedules. *)
let eval_body_for env ~key_var ~value_var ~key ~value body =
  set_var env key_var (Vindex key);
  set_var env value_var value;
  try exec_block env body with Continue_exc -> ()
