(** Unified benchmark front door, behind [orion bench].

    All three suites — multicore speedup ({!Speedup}), distributed
    speedup with communication policies ({!Dist_bench}), and
    loss-vs-wall-time convergence ({!Convergence}) — run through one
    {!run} call.  Each keeps its suite-specific payload, but every
    written envelope also carries a uniform ["rows"] list with the
    same columns (app, mode, workers, comms policy, wall seconds,
    bytes shipped vs full-policy bytes), so tooling can read any
    [BENCH_*.json] without knowing which suite produced it. *)

type mode = [ `Speedup | `Speedup_distributed | `Convergence ]

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

(** ["BENCH_parallel.json"], ["BENCH_distributed.json"], or
    ["BENCH_convergence.json"]. *)
val default_out : mode -> string

(** One benchmark measurement in the shared shape. *)
type row = {
  row_app : string;
  row_mode : string;  (** engine mode: ["sim"], ["parallel"], ["distributed"] *)
  row_workers : int;  (** domains or worker processes *)
  row_comms : string;  (** communication policy ([local] off the wire) *)
  row_wall_seconds : float;
  row_speedup : float option;
  row_loss : float option;  (** final training loss, when measured *)
  row_bytes_shipped : float;
  row_bytes_full : float;
  row_bytes_saved_fraction : float;
  row_policy_by_array : (string * string) list;
  row_ok : bool option;
      (** matched the suite's reference run, where one exists *)
}

val row_json : row -> Orion.Report.json

(** Append the uniform ["rows"] section to a suite payload — shared
    with out-of-tree suites (e.g. [lib/tune]'s [bench-tune]) so every
    BENCH_*.json stays uniformly readable. *)
val with_rows : Orion.Report.json -> row list -> Orion.Report.json

(** Write an enveloped report (plus trailing newline) to a path. *)
val write_file : string -> string -> unit

(** Run one benchmark suite and write its enveloped JSON (with the
    uniform ["rows"] section appended) to [out] (see {!default_out}
    for the conventional paths).  [domains_list] drives [`Speedup] and
    [`Convergence]; [procs_list], [comms], and [transport] drive
    [`Speedup_distributed].  [print] (default true) emits the
    human-readable tables on stdout.  Returns the rows.
    @raise Orion.Engine.Distributed_error when a distributed run fails
    @raise Invalid_argument on a malformed [comms] policy spec *)
val run :
  mode:mode ->
  scale:float ->
  out:string ->
  ?apps:string list ->
  ?domains_list:int list ->
  ?procs_list:int list ->
  ?comms:string list ->
  ?passes:int ->
  ?transport:Orion.Engine.transport ->
  ?num_machines:int ->
  ?workers_per_machine:int ->
  ?print:bool ->
  unit ->
  row list
