(** Populates {!Orion.App} with the four built-in applications
    (mf, slr, lda, gbt): small deterministic instances for execution and
    verification, plus paper-scale (Table 2) metadata for analysis-only
    workflows.  Registration happens at module initialization. *)

(** Force this module's initializer (and thus app registration) to run.
    Call before the first {!Orion.App.find} in any executable that only
    links [orion_apps]. *)
val ensure : unit -> unit
