(** Populates {!Orion.App} with the four built-in applications
    (mf, slr, lda, gbt): small deterministic instances for execution and
    verification, plus paper-scale (Table 2) metadata for analysis-only
    workflows.  Registration happens at module initialization, which
    also installs [lib/net]'s distributed master as
    [Orion.Engine]'s [`Distributed] runner. *)

(** When these environment variables name a sharded dataset directory
    ({!Orion_store.Gen}), [app_make] streams the dataset from the shards
    instead of generating it in memory — environment (not parameters) so
    forked/exec'd distributed workers rebuild identical instances. *)

val ratings_dir_env : string
(** ["ORION_DATA_RATINGS"] — mf *)

val features_dir_env : string
(** ["ORION_DATA_FEATURES"] — slr *)

val corpus_dir_env : string
(** ["ORION_DATA_CORPUS"] — lda *)

(** Build a fresh deterministic instance of app [name] ([None] if
    unknown).  Distributed workers rebuild the master's instance through
    this — every [app_make] is deterministic, so master and workers
    materialize identical initial state and host builtins. *)
val materialize :
  string ->
  scale:float ->
  num_machines:int ->
  workers_per_machine:int ->
  Orion.App.instance option

(** Force this module's initializer (and thus app registration and the
    distributed-runner installation) to run.  Call before the first
    {!Orion.App.find} in any executable that only links [orion_apps]. *)
val ensure : unit -> unit
