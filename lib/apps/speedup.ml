(** Self-relative multicore speedup benchmark: run each registered app's
    parallel loop on the {!Orion.Engine} domain pool at increasing
    domain counts, record wall-clock time and the speedup relative to
    the 1-domain run, and check the results element-wise against a
    simulated ([`Sim]) execution of the same schedule.

    [`Sim] always runs through the tree-walking interpreter while the
    domain pool runs {!Orion.Compile} kernels (unless
    [ORION_NO_COMPILE] is set), so every [equal_vs_sim] check here is
    also a compiled-vs-interpreted differential test.

    Used by both [orion bench --mode speedup] and [bench/main.ml
    speedup]; the JSON (kind ["bench-speedup"]) lands in
    [BENCH_parallel.json].  Speedups are only meaningful on a machine
    with enough cores: runs where [domains] exceeds [available_cores]
    are flagged [oversubscribed] and excluded from each app's headline
    [best_speedup], so a single-core CI shard's flat numbers read as
    what they are. *)

module Report = Orion.Report
module App = Orion.App

type run = {
  run_domains : int;
  run_comms : string;
      (** communication policy — always ["local"]: the domain pool
          shares memory, nothing crosses a wire *)
  run_wall_seconds : float;
  run_entries : int;
  run_steals : int;
  run_bytes_shipped : float;  (** 0 for in-process runs *)
  run_bytes_full : float;  (** 0 for in-process runs *)
  run_speedup : float;  (** wall(1 domain) / wall(n domains) *)
  run_oversubscribed : bool;
      (** more domains than available cores — wall time measures
          scheduler thrash, not parallel speedup *)
  run_compiled : bool;  (** bodies ran as {!Orion.Compile} kernels *)
  run_straggler_ratio : float option;
      (** max/mean busy time over domains, from wall-clock telemetry
          ([None] when telemetry was disabled) *)
  run_barrier_wait_fraction : float option;
      (** fraction of domain time spent waiting, from telemetry *)
  run_max_abs_vs_sim : float;
  run_max_rel_vs_sim : float;
  run_equal_vs_sim : bool;  (** within the app's tolerance *)
}

type app_result = {
  res_app : string;
  res_strategy : string;
  res_model : string;
  res_runs : run list;
  res_best_speedup : float option;
      (** best speedup over the non-oversubscribed multi-domain runs;
          [None] when every multi-domain run was oversubscribed *)
  res_best_speedup_reason : string option;
      (** why [res_best_speedup] is [None], naming the core count *)
}

(* element-wise max |a-b| / max rel over an output array pair *)
let diff_outputs (a : (string * float Orion_dsm.Dist_array.t) list)
    (b : (string * float Orion_dsm.Dist_array.t) list) =
  let max_abs = ref 0.0 and max_rel = ref 0.0 in
  List.iter2
    (fun (_, arr_a) (_, arr_b) ->
      Orion_dsm.Dist_array.iter
        (fun key va ->
          let vb = Orion_dsm.Dist_array.get arr_b key in
          let abs = Float.abs (va -. vb) in
          let rel =
            abs /. Float.max (Float.max (Float.abs va) (Float.abs vb)) 1e-12
          in
          if abs > !max_abs then max_abs := abs;
          if rel > !max_rel then max_rel := rel)
        arr_a)
    a b;
  (!max_abs, !max_rel)

let bench_app (app : App.t) ~domains_list ~passes ~scale ~available_cores
    ~num_machines ~workers_per_machine : app_result =
  (* reference: the same schedule executed on the simulated cluster,
     always interpreted *)
  let ref_inst =
    app.App.app_make ~scale ~num_machines ~workers_per_machine ()
  in
  let ref_report =
    Orion.Engine.run ref_inst.App.inst_session ref_inst ~mode:`Sim ~passes ()
  in
  let base_wall = ref None in
  let runs =
    List.map
      (fun domains ->
        let inst =
          app.App.app_make ~scale ~num_machines ~workers_per_machine ()
        in
        let r =
          Orion.Engine.run inst.App.inst_session inst
            ~mode:(`Parallel domains) ~passes ()
        in
        let max_abs, max_rel =
          diff_outputs inst.App.inst_outputs ref_inst.App.inst_outputs
        in
        let equal =
          match app.App.app_tolerance with
          | None -> max_abs = 0.0
          | Some tol -> max_rel <= tol
        in
        let base =
          match !base_wall with
          | Some b -> b
          | None ->
              base_wall := Some r.Orion.Engine.ep_wall_seconds;
              r.Orion.Engine.ep_wall_seconds
        in
        let overall =
          Option.map
            (fun sm -> sm.Orion.Telemetry.sm_overall)
            r.Orion.Engine.ep_telemetry
        in
        {
          run_domains = domains;
          run_comms = r.Orion.Engine.ep_comms;
          run_wall_seconds = r.Orion.Engine.ep_wall_seconds;
          run_entries = r.Orion.Engine.ep_entries;
          run_steals = r.Orion.Engine.ep_steals;
          run_bytes_shipped = r.Orion.Engine.ep_bytes_shipped;
          run_bytes_full = r.Orion.Engine.ep_bytes_full;
          run_speedup = base /. Float.max r.Orion.Engine.ep_wall_seconds 1e-12;
          run_oversubscribed = domains > available_cores;
          run_compiled = r.Orion.Engine.ep_compiled;
          run_straggler_ratio =
            Option.map (fun m -> m.Orion.Metrics.straggler_ratio) overall;
          run_barrier_wait_fraction =
            Option.map (fun m -> m.Orion.Metrics.barrier_wait_fraction) overall;
          run_max_abs_vs_sim = max_abs;
          run_max_rel_vs_sim = max_rel;
          run_equal_vs_sim = equal;
        })
      domains_list
  in
  let best_speedup =
    List.fold_left
      (fun acc r ->
        if r.run_domains > 1 && not r.run_oversubscribed then
          Some (Float.max r.run_speedup (Option.value acc ~default:0.0))
        else acc)
      None runs
  in
  let best_speedup_reason =
    match best_speedup with
    | Some _ -> None
    | None ->
        Some
          (Printf.sprintf
             "all multi-domain runs oversubscribed (available_cores=%d)"
             available_cores)
  in
  {
    res_app = app.App.app_name;
    res_strategy = ref_report.Orion.Engine.ep_strategy;
    res_model = ref_report.Orion.Engine.ep_model;
    res_runs = runs;
    res_best_speedup = best_speedup;
    res_best_speedup_reason = best_speedup_reason;
  }

let run_json (r : run) : Report.json =
  Report.Obj
    [
      ("domains", Report.Int r.run_domains);
      ("comms", Report.Str r.run_comms);
      ("wall_seconds", Report.Float r.run_wall_seconds);
      ("entries", Report.Int r.run_entries);
      ("steals", Report.Int r.run_steals);
      ("bytes_shipped", Report.Float r.run_bytes_shipped);
      ("bytes_full", Report.Float r.run_bytes_full);
      ("speedup", Report.Float r.run_speedup);
      ("oversubscribed", Report.Bool r.run_oversubscribed);
      ("compiled", Report.Bool r.run_compiled);
      ( "straggler_ratio",
        match r.run_straggler_ratio with
        | Some v -> Report.Float v
        | None -> Report.Null );
      ( "barrier_wait_fraction",
        match r.run_barrier_wait_fraction with
        | Some v -> Report.Float v
        | None -> Report.Null );
      ("max_abs_vs_sim", Report.Float r.run_max_abs_vs_sim);
      ("max_rel_vs_sim", Report.Float r.run_max_rel_vs_sim);
      ("equal_vs_sim", Report.Bool r.run_equal_vs_sim);
    ]

let app_result_json (a : app_result) : Report.json =
  Report.Obj
    [
      ("app", Report.Str a.res_app);
      ("strategy", Report.Str a.res_strategy);
      ("model", Report.Str a.res_model);
      ( "best_speedup",
        match a.res_best_speedup with
        | Some s -> Report.Float s
        | None -> Report.Null );
      ( "best_speedup_reason",
        match a.res_best_speedup_reason with
        | Some reason -> Report.Str reason
        | None -> Report.Null );
      ("runs", Report.List (List.map run_json a.res_runs));
    ]

(** Run the speedup benchmark over [apps] (default: every registered
    app) at each domain count of [domains_list], [passes] passes per
    measurement, datasets enlarged by [scale].  Returns the results
    plus the un-enveloped ["bench-speedup"] payload ({!Bench.run}
    envelopes and writes it). *)
let run ?apps ?(domains_list = [ 1; 2; 4; 8 ]) ?(passes = 3) ?(scale = 1.0)
    ?(num_machines = 2) ?(workers_per_machine = 2) () :
    app_result list * Report.json =
  Registry.ensure ();
  let available_cores = Domain.recommended_domain_count () in
  let selected =
    match apps with
    | None -> App.all ()
    | Some names ->
        List.filter_map
          (fun n ->
            match App.find n with
            | Some a -> Some a
            | None ->
                Printf.eprintf "bench speedup: unknown app %S (skipped)\n" n;
                None)
          names
  in
  let results =
    List.map
      (fun app ->
        bench_app app ~domains_list ~passes ~scale ~available_cores
          ~num_machines ~workers_per_machine)
      selected
  in
  let payload =
    Report.Obj
      [
        ("available_cores", Report.Int available_cores);
        ("num_machines", Report.Int num_machines);
        ("workers_per_machine", Report.Int workers_per_machine);
        ("passes", Report.Int passes);
        ("scale", Report.Float scale);
        ("apps", Report.List (List.map app_result_json results));
      ]
  in
  (results, payload)

let print_results (results : app_result list) =
  List.iter
    (fun a ->
      Printf.printf "%s (%s, %s):\n" a.res_app a.res_strategy a.res_model;
      List.iter
        (fun r ->
          let tel =
            match (r.run_straggler_ratio, r.run_barrier_wait_fraction) with
            | Some s, Some b ->
                Printf.sprintf "  straggler %.2f  barrier %4.1f%%" s
                  (100.0 *. b)
            | _ -> ""
          in
          Printf.printf
            "  %d domain(s): %8.4fs  speedup %5.2fx%s  steals %4d  %s  %s%s\n"
            r.run_domains r.run_wall_seconds r.run_speedup
            (if r.run_oversubscribed then " (oversubscribed)" else "")
            r.run_steals
            (if r.run_compiled then "compiled" else "interpreted")
            (if r.run_equal_vs_sim then "results match sim"
             else
               Printf.sprintf "MISMATCH vs sim (max abs %.3e rel %.3e)"
                 r.run_max_abs_vs_sim r.run_max_rel_vs_sim)
            tel)
        a.res_runs;
      match (a.res_best_speedup, a.res_best_speedup_reason) with
      | Some s, _ -> Printf.printf "  best speedup (within cores): %.2fx\n" s
      | None, reason ->
          let reason =
            Option.value reason ~default:"all multi-domain runs oversubscribed"
          in
          Printf.printf "  best speedup: n/a (%s)\n" reason;
          Printf.eprintf "warning: %s: no meaningful speedup — %s\n" a.res_app
            reason)
    results
