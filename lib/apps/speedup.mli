(** Self-relative multicore speedup benchmark over the registered apps,
    shared by [orion bench --mode speedup] and the bench harness.
    Results are checked element-wise against a simulated execution of
    the same schedule — which always interprets, so with compilation
    enabled each check doubles as a compiled-vs-interpreted
    differential test.  JSON output uses the versioned report envelope
    (kind ["bench-speedup"]). *)

type run = {
  run_domains : int;
  run_comms : string;
      (** communication policy — always ["local"]: the domain pool
          shares memory, nothing crosses a wire *)
  run_wall_seconds : float;
  run_entries : int;
  run_steals : int;
  run_bytes_shipped : float;  (** 0 for in-process runs *)
  run_bytes_full : float;  (** 0 for in-process runs *)
  run_speedup : float;  (** wall(1 domain) / wall(n domains) *)
  run_oversubscribed : bool;
      (** more domains than available cores — wall time measures
          scheduler thrash, not parallel speedup *)
  run_compiled : bool;  (** bodies ran as {!Orion.Compile} kernels *)
  run_straggler_ratio : float option;
      (** max/mean busy time over domains, from wall-clock telemetry
          ([None] when telemetry was disabled) *)
  run_barrier_wait_fraction : float option;
      (** fraction of domain time spent waiting, from telemetry *)
  run_max_abs_vs_sim : float;
  run_max_rel_vs_sim : float;
  run_equal_vs_sim : bool;  (** within the app's tolerance *)
}

type app_result = {
  res_app : string;
  res_strategy : string;
  res_model : string;
  res_runs : run list;
  res_best_speedup : float option;
      (** best speedup over the non-oversubscribed multi-domain runs;
          [None] when every multi-domain run was oversubscribed *)
  res_best_speedup_reason : string option;
      (** why [res_best_speedup] is [None], naming the core count *)
}

(** Element-wise (max |a-b|, max relative) difference over two output
    lists of the same shape (also used by {!Dist_bench}). *)
val diff_outputs :
  (string * float Orion_dsm.Dist_array.t) list ->
  (string * float Orion_dsm.Dist_array.t) list ->
  float * float

(** Run the benchmark over [apps] (default: every registered app) at
    each domain count of [domains_list] (default [1; 2; 4; 8]),
    [passes] passes per measurement, datasets enlarged by [scale]
    (default 1).  Returns the results and the un-enveloped
    ["bench-speedup"] payload ({!Bench.run} envelopes and writes it
    to [BENCH_parallel.json]). *)
val run :
  ?apps:string list ->
  ?domains_list:int list ->
  ?passes:int ->
  ?scale:float ->
  ?num_machines:int ->
  ?workers_per_machine:int ->
  unit ->
  app_result list * Orion.Report.json

(** Human-readable per-app/per-domain-count table on stdout. *)
val print_results : app_result list -> unit
