(** Convergence benchmarking: loss versus monotonic wall time.

    Drives an app pass-at-a-time through {!Orion.Engine.run}, recording
    the training objective ({!Orion.App.t.app_loss}) and the cumulative
    monotonic wall clock after every pass — the measurement behind the
    paper's loss-over-time comparisons (Fig. 9/10).  Between passes the
    app's [app_prepare_pass] (if any) folds buffered accumulators into
    the model, so buffer-trained apps (SLR) actually descend.

    Straggler ratio and barrier-wait fraction come from the engine's
    wall-clock telemetry when the mode records it. *)

type point = {
  pt_pass : int;  (** 0 is the initial state, before any training *)
  pt_wall : float;  (** cumulative monotonic seconds since the run began *)
  pt_loss : float;
  pt_straggler : float option;  (** max/mean busy over workers *)
  pt_barrier : float option;  (** barrier-wait fraction *)
}

type result = {
  cv_app : string;
  cv_mode : string;
  cv_domains : int;
  cv_passes : int;
  cv_scale : float;
  cv_comms : string;
      (** communication policy in effect (["local"] off the wire) *)
  cv_bytes_shipped : float;  (** summed over all measured passes *)
  cv_bytes_full : float;
  cv_points : point list;  (** pass order, starting at pass 0 *)
}

(** Run [app] for [passes] passes under [mode], measuring after each;
    [comms] selects the distributed communication policy.
    @raise Invalid_argument when the app declares no [app_loss] *)
val run :
  Orion.App.t ->
  mode:Orion.Engine.mode ->
  passes:int ->
  ?scale:float ->
  ?num_machines:int ->
  ?workers_per_machine:int ->
  ?pipeline_depth:int ->
  ?comms:string ->
  unit ->
  result

val result_payload : result -> Orion_report.json

(** All results as one un-enveloped ["bench-convergence"] payload. *)
val payload : result list -> Orion_report.json

(** All results as one ["bench-convergence"] envelope (the
    [BENCH_convergence.json] contents). *)
val emit : result list -> string
