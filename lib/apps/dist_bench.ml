(** Distributed speedup benchmark: run each registered app's loop on
    the multi-process socket runtime ({!Orion_net.Dist_master}) at
    increasing worker counts and under each requested communication
    policy, record wall-clock time and the bytes each DistArray shipped
    over the wire, and check the results element-wise against a
    simulated ([`Sim]) execution of the same schedule.

    Every [procs] count first runs the [full] policy as a baseline row;
    the other requested policies are then measured against it:
    bytes-saved fraction, bitwise equality ([delta] must match), and
    relative final-loss drift (lossy policies trade accuracy for
    bytes).

    Used by [orion bench --mode speedup-distributed]; the JSON (kind
    ["bench-speedup-distributed"]) lands in [BENCH_distributed.json].
    Every [procs] count gets its own simulated reference built with the
    same cluster shape ([num_machines = procs], one worker per
    machine): schedule shape determines entry execution order, which
    order-sensitive apps are bitwise sensitive to. *)

module Report = Orion.Report
module App = Orion.App
module Policy = Orion_net.Policy

type run = {
  run_procs : int;  (** worker processes requested *)
  run_comms : string;  (** normalized communication policy spec *)
  run_wall_seconds : float;
  run_entries : int;
  run_bytes_shipped : float;  (** actual wire bytes of DistArray state *)
  run_bytes_full : float;  (** [full]-policy equivalent of the same traffic *)
  run_bytes_saved_fraction : float;
      (** 1 - shipped/full-baseline-shipped for the same procs count *)
  run_bytes_by_array : (string * float) list;
  run_policy_by_array : (string * string) list;
  run_speedup : float;  (** wall(1 proc, full) / wall(n procs) *)
  run_straggler_ratio : float option;
      (** max/mean busy time over workers, from the merged wall-clock
          telemetry ([None] when telemetry was disabled) *)
  run_barrier_wait_fraction : float option;
      (** fraction of worker time spent in pass barriers, from
          telemetry *)
  run_max_abs_vs_sim : float;
  run_max_rel_vs_sim : float;
  run_equal_vs_sim : bool;  (** within the app's tolerance *)
  run_max_abs_vs_full : float;
      (** element-wise drift vs the full-policy run at the same procs *)
  run_equal_vs_full : bool;  (** bitwise *)
  run_loss : float option;  (** final training loss, when the app has one *)
  run_loss_drift_vs_full : float option;
      (** |loss - full_loss| / max(|full_loss|, 1e-12) *)
}

type app_result = {
  res_app : string;
  res_strategy : string;
  res_model : string;
  res_runs : run list;
}

(* normalize a --comms spec ("" -> "auto", "topk:08" -> "topk:8"); an
   invalid spec is a caller error worth failing loudly on *)
let normalize_spec s =
  Policy.spec_to_string (Policy.spec_of_string_exn s)

let bench_app (app : App.t) ~procs_list ~comms_list ~passes ~scale ~transport :
    app_result =
  let strategy = ref "" and model = ref "" in
  let base_wall = ref None in
  let runs =
    List.concat_map
      (fun procs ->
        let ref_inst =
          app.App.app_make ~scale ~num_machines:procs ~workers_per_machine:1 ()
        in
        ignore
          (Orion.Engine.run ref_inst.App.inst_session ref_inst ~mode:`Sim
             ~passes ());
        (* one distributed run under [comms]; the full-policy baseline
           comes first so every other policy can be measured against
           its outputs, loss, and bytes *)
        let measure ~comms ~full =
          let inst =
            app.App.app_make ~scale ~num_machines:procs ~workers_per_machine:1
              ()
          in
          let r =
            (* ~scale travels in the plan so workers rematerialize the
               same-size instance (a missing ~scale shows up as a
               schedule fingerprint mismatch at any scale <> 1) *)
            Orion.Engine.run inst.App.inst_session inst
              ~mode:(`Distributed { Orion.Engine.procs; transport })
              ~passes ~scale ~comms ()
          in
          strategy := r.Orion.Engine.ep_strategy;
          model := r.Orion.Engine.ep_model;
          let max_abs, max_rel =
            Speedup.diff_outputs inst.App.inst_outputs
              ref_inst.App.inst_outputs
          in
          let equal =
            match app.App.app_tolerance with
            | None -> max_abs = 0.0
            | Some tol -> max_rel <= tol
          in
          let base =
            match !base_wall with
            | Some b -> b
            | None ->
                base_wall := Some r.Orion.Engine.ep_wall_seconds;
                r.Orion.Engine.ep_wall_seconds
          in
          let overall =
            Option.map
              (fun sm -> sm.Orion.Telemetry.sm_overall)
              r.Orion.Engine.ep_telemetry
          in
          let loss = Option.map (fun f -> f inst) app.App.app_loss in
          let max_abs_vs_full, full_bytes_baseline, loss_drift =
            match full with
            | None -> (0.0, r.Orion.Engine.ep_bytes_shipped, Some 0.0)
            | Some (full_inst, full_run, full_loss) ->
                let abs_f, _ =
                  Speedup.diff_outputs inst.App.inst_outputs
                    full_inst.App.inst_outputs
                in
                let drift =
                  match (loss, full_loss) with
                  | Some l, Some fl ->
                      Some
                        (Float.abs (l -. fl)
                        /. Float.max (Float.abs fl) 1e-12)
                  | _ -> None
                in
                (abs_f, full_run.Orion.Engine.ep_bytes_shipped, drift)
          in
          let saved =
            if full_bytes_baseline > 0.0 then
              1.0 -. (r.Orion.Engine.ep_bytes_shipped /. full_bytes_baseline)
            else 0.0
          in
          ( inst,
            r,
            loss,
            {
              run_procs = procs;
              run_comms = r.Orion.Engine.ep_comms;
              run_wall_seconds = r.Orion.Engine.ep_wall_seconds;
              run_entries = r.Orion.Engine.ep_entries;
              run_bytes_shipped = r.Orion.Engine.ep_bytes_shipped;
              run_bytes_full = r.Orion.Engine.ep_bytes_full;
              run_bytes_saved_fraction = saved;
              run_bytes_by_array = r.Orion.Engine.ep_bytes_by_array;
              run_policy_by_array = r.Orion.Engine.ep_policy_by_array;
              run_speedup =
                base /. Float.max r.Orion.Engine.ep_wall_seconds 1e-12;
              run_straggler_ratio =
                Option.map (fun m -> m.Orion.Metrics.straggler_ratio) overall;
              run_barrier_wait_fraction =
                Option.map
                  (fun m -> m.Orion.Metrics.barrier_wait_fraction)
                  overall;
              run_max_abs_vs_sim = max_abs;
              run_max_rel_vs_sim = max_rel;
              run_equal_vs_sim = equal;
              run_max_abs_vs_full = max_abs_vs_full;
              run_equal_vs_full = max_abs_vs_full = 0.0;
              run_loss = loss;
              run_loss_drift_vs_full = loss_drift;
            } )
        in
        let full_inst, full_run, full_loss, full_row =
          measure ~comms:"full" ~full:None
        in
        let policy_rows =
          List.filter_map
            (fun comms ->
              if comms = "full" then None
              else
                let _, _, _, row =
                  measure ~comms ~full:(Some (full_inst, full_run, full_loss))
                in
                Some row)
            comms_list
        in
        full_row :: policy_rows)
      procs_list
  in
  {
    res_app = app.App.app_name;
    res_strategy = !strategy;
    res_model = !model;
    res_runs = runs;
  }

let opt_float = function Some v -> Report.Float v | None -> Report.Null

let run_json (r : run) : Report.json =
  Report.Obj
    [
      ("procs", Report.Int r.run_procs);
      ("comms", Report.Str r.run_comms);
      ("wall_seconds", Report.Float r.run_wall_seconds);
      ("entries", Report.Int r.run_entries);
      ("bytes_shipped", Report.Float r.run_bytes_shipped);
      ("bytes_full", Report.Float r.run_bytes_full);
      ("bytes_saved_fraction", Report.Float r.run_bytes_saved_fraction);
      ( "bytes_by_array",
        Report.Obj
          (List.map (fun (n, b) -> (n, Report.Float b)) r.run_bytes_by_array)
      );
      ( "policy_by_array",
        Report.Obj
          (List.map (fun (n, p) -> (n, Report.Str p)) r.run_policy_by_array)
      );
      ("speedup", Report.Float r.run_speedup);
      ("straggler_ratio", opt_float r.run_straggler_ratio);
      ("barrier_wait_fraction", opt_float r.run_barrier_wait_fraction);
      ("max_abs_vs_sim", Report.Float r.run_max_abs_vs_sim);
      ("max_rel_vs_sim", Report.Float r.run_max_rel_vs_sim);
      ("equal_vs_sim", Report.Bool r.run_equal_vs_sim);
      ("max_abs_vs_full", Report.Float r.run_max_abs_vs_full);
      ("equal_vs_full", Report.Bool r.run_equal_vs_full);
      ("loss", opt_float r.run_loss);
      ("loss_drift_vs_full", opt_float r.run_loss_drift_vs_full);
    ]

let app_result_json (a : app_result) : Report.json =
  Report.Obj
    [
      ("app", Report.Str a.res_app);
      ("strategy", Report.Str a.res_strategy);
      ("model", Report.Str a.res_model);
      ("runs", Report.List (List.map run_json a.res_runs));
    ]

let run ?apps ?(procs_list = [ 1; 2; 4 ]) ?(comms = [ "auto" ]) ?(passes = 3)
    ?(scale = 1.0) ?(transport = `Unix) () : app_result list * Report.json =
  Registry.ensure ();
  let comms_list =
    (* normalized and deduplicated; the full baseline always runs *)
    List.fold_left
      (fun acc c ->
        let c = normalize_spec c in
        if List.mem c acc then acc else acc @ [ c ])
      [] comms
  in
  let selected =
    match apps with
    | None -> App.all ()
    | Some names ->
        List.filter_map
          (fun n ->
            match App.find n with
            | Some a -> Some a
            | None ->
                Printf.eprintf
                  "bench speedup-distributed: unknown app %S (skipped)\n" n;
                None)
          names
  in
  let results =
    List.map
      (fun app -> bench_app app ~procs_list ~comms_list ~passes ~scale
                    ~transport)
      selected
  in
  let payload =
    Report.Obj
      [
        ("available_cores", Report.Int (Domain.recommended_domain_count ()));
        ( "transport",
          Report.Str (Orion.Engine.transport_to_string transport) );
        ("passes", Report.Int passes);
        ("scale", Report.Float scale);
        ( "comms",
          Report.List (List.map (fun c -> Report.Str c) comms_list) );
        ("apps", Report.List (List.map app_result_json results));
      ]
  in
  (results, payload)

let print_results (results : app_result list) =
  List.iter
    (fun a ->
      Printf.printf "%s (%s, %s):\n" a.res_app a.res_strategy a.res_model;
      List.iter
        (fun r ->
          let tel =
            match (r.run_straggler_ratio, r.run_barrier_wait_fraction) with
            | Some s, Some b ->
                Printf.sprintf "  straggler %.2f  barrier %4.1f%%" s
                  (100.0 *. b)
            | _ -> ""
          in
          let vs_full =
            if r.run_comms = "full" then ""
            else if r.run_equal_vs_full then "  == full"
            else
              Printf.sprintf "  drift vs full %.3e%s" r.run_max_abs_vs_full
                (match r.run_loss_drift_vs_full with
                | Some d -> Printf.sprintf " (loss %.3e)" d
                | None -> "")
          in
          Printf.printf
            "  %d proc(s) %-12s: %8.4fs  speedup %5.2fx  shipped %9.0f B \
             (saved %4.1f%%)  %s%s%s\n"
            r.run_procs r.run_comms r.run_wall_seconds r.run_speedup
            r.run_bytes_shipped
            (100.0 *. r.run_bytes_saved_fraction)
            (if r.run_equal_vs_sim then "results match sim"
             else
               Printf.sprintf "MISMATCH vs sim (max abs %.3e rel %.3e)"
                 r.run_max_abs_vs_sim r.run_max_rel_vs_sim)
            vs_full tel)
        a.res_runs)
    results
