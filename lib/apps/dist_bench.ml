(** Distributed speedup benchmark: run each registered app's loop on
    the multi-process socket runtime ({!Orion_net.Dist_master}) at
    increasing worker counts, record wall-clock time and the bytes each
    DistArray shipped over the wire, and check the results element-wise
    against a simulated ([`Sim]) execution of the same schedule.

    Used by [orion bench --mode speedup-distributed]; the JSON (kind
    ["bench-speedup-distributed"]) lands in [BENCH_distributed.json].
    Every [procs] count gets its own simulated reference built with the
    same cluster shape ([num_machines = procs], one worker per
    machine): schedule shape determines entry execution order, which
    order-sensitive apps are bitwise sensitive to. *)

module Report = Orion.Report
module App = Orion.App

type run = {
  run_procs : int;  (** worker processes requested *)
  run_wall_seconds : float;
  run_entries : int;
  run_bytes_shipped : float;  (** total wire bytes of DistArray state *)
  run_bytes_by_array : (string * float) list;
  run_speedup : float;  (** wall(1 proc) / wall(n procs) *)
  run_straggler_ratio : float option;
      (** max/mean busy time over workers, from the merged wall-clock
          telemetry ([None] when telemetry was disabled) *)
  run_barrier_wait_fraction : float option;
      (** fraction of worker time spent in pass barriers, from
          telemetry *)
  run_max_abs_vs_sim : float;
  run_max_rel_vs_sim : float;
  run_equal_vs_sim : bool;  (** within the app's tolerance *)
}

type app_result = {
  res_app : string;
  res_strategy : string;
  res_model : string;
  res_runs : run list;
}

let bench_app (app : App.t) ~procs_list ~passes ~scale ~transport : app_result =
  let strategy = ref "" and model = ref "" in
  let base_wall = ref None in
  let runs =
    List.map
      (fun procs ->
        let ref_inst =
          app.App.app_make ~scale ~num_machines:procs ~workers_per_machine:1 ()
        in
        ignore
          (Orion.Engine.run ref_inst.App.inst_session ref_inst ~mode:`Sim
             ~passes ());
        let inst =
          app.App.app_make ~scale ~num_machines:procs ~workers_per_machine:1 ()
        in
        let r =
          Orion.Engine.run inst.App.inst_session inst
            ~mode:(`Distributed { Orion.Engine.procs; transport })
            ~passes ()
        in
        strategy := r.Orion.Engine.ep_strategy;
        model := r.Orion.Engine.ep_model;
        let max_abs, max_rel =
          Speedup.diff_outputs inst.App.inst_outputs
            ref_inst.App.inst_outputs
        in
        let equal =
          match app.App.app_tolerance with
          | None -> max_abs = 0.0
          | Some tol -> max_rel <= tol
        in
        let base =
          match !base_wall with
          | Some b -> b
          | None ->
              base_wall := Some r.Orion.Engine.ep_wall_seconds;
              r.Orion.Engine.ep_wall_seconds
        in
        let overall =
          Option.map
            (fun sm -> sm.Orion.Telemetry.sm_overall)
            r.Orion.Engine.ep_telemetry
        in
        {
          run_procs = procs;
          run_wall_seconds = r.Orion.Engine.ep_wall_seconds;
          run_entries = r.Orion.Engine.ep_entries;
          run_bytes_shipped = r.Orion.Engine.ep_bytes_shipped;
          run_bytes_by_array = r.Orion.Engine.ep_bytes_by_array;
          run_speedup = base /. Float.max r.Orion.Engine.ep_wall_seconds 1e-12;
          run_straggler_ratio =
            Option.map (fun m -> m.Orion.Metrics.straggler_ratio) overall;
          run_barrier_wait_fraction =
            Option.map (fun m -> m.Orion.Metrics.barrier_wait_fraction) overall;
          run_max_abs_vs_sim = max_abs;
          run_max_rel_vs_sim = max_rel;
          run_equal_vs_sim = equal;
        })
      procs_list
  in
  {
    res_app = app.App.app_name;
    res_strategy = !strategy;
    res_model = !model;
    res_runs = runs;
  }

let run_json (r : run) : Report.json =
  Report.Obj
    [
      ("procs", Report.Int r.run_procs);
      ("wall_seconds", Report.Float r.run_wall_seconds);
      ("entries", Report.Int r.run_entries);
      ("bytes_shipped", Report.Float r.run_bytes_shipped);
      ( "bytes_by_array",
        Report.Obj
          (List.map (fun (n, b) -> (n, Report.Float b)) r.run_bytes_by_array)
      );
      ("speedup", Report.Float r.run_speedup);
      ( "straggler_ratio",
        match r.run_straggler_ratio with
        | Some v -> Report.Float v
        | None -> Report.Null );
      ( "barrier_wait_fraction",
        match r.run_barrier_wait_fraction with
        | Some v -> Report.Float v
        | None -> Report.Null );
      ("max_abs_vs_sim", Report.Float r.run_max_abs_vs_sim);
      ("max_rel_vs_sim", Report.Float r.run_max_rel_vs_sim);
      ("equal_vs_sim", Report.Bool r.run_equal_vs_sim);
    ]

let app_result_json (a : app_result) : Report.json =
  Report.Obj
    [
      ("app", Report.Str a.res_app);
      ("strategy", Report.Str a.res_strategy);
      ("model", Report.Str a.res_model);
      ("runs", Report.List (List.map run_json a.res_runs));
    ]

let run ?apps ?(procs_list = [ 1; 2; 4 ]) ?(passes = 3) ?(scale = 1.0)
    ?(transport = `Unix) () : app_result list * string =
  Registry.ensure ();
  let selected =
    match apps with
    | None -> App.all ()
    | Some names ->
        List.filter_map
          (fun n ->
            match App.find n with
            | Some a -> Some a
            | None ->
                Printf.eprintf
                  "bench speedup-distributed: unknown app %S (skipped)\n" n;
                None)
          names
  in
  let results =
    List.map
      (fun app -> bench_app app ~procs_list ~passes ~scale ~transport)
      selected
  in
  let payload =
    Report.Obj
      [
        ("available_cores", Report.Int (Domain.recommended_domain_count ()));
        ( "transport",
          Report.Str (Orion.Engine.transport_to_string transport) );
        ("passes", Report.Int passes);
        ("scale", Report.Float scale);
        ("apps", Report.List (List.map app_result_json results));
      ]
  in
  (results, Report.emit ~kind:"bench-speedup-distributed" payload)

let print_results (results : app_result list) =
  List.iter
    (fun a ->
      Printf.printf "%s (%s, %s):\n" a.res_app a.res_strategy a.res_model;
      List.iter
        (fun r ->
          let tel =
            match (r.run_straggler_ratio, r.run_barrier_wait_fraction) with
            | Some s, Some b ->
                Printf.sprintf "  straggler %.2f  barrier %4.1f%%" s
                  (100.0 *. b)
            | _ -> ""
          in
          Printf.printf
            "  %d proc(s): %8.4fs  speedup %5.2fx  shipped %9.0f B  %s%s\n"
            r.run_procs r.run_wall_seconds r.run_speedup r.run_bytes_shipped
            (if r.run_equal_vs_sim then "results match sim"
             else
               Printf.sprintf "MISMATCH vs sim (max abs %.3e rel %.3e)"
                 r.run_max_abs_vs_sim r.run_max_rel_vs_sim)
            tel)
        a.res_runs)
    results
