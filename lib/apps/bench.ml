(* One front door for the three benchmark suites.  Each suite keeps
   its own result types and payload shape (CI asserts on them), but
   every envelope written here also carries a uniform "rows" list with
   the same columns — app, mode, workers, comms policy, wall seconds,
   bytes shipped/full — so downstream tooling can read any
   BENCH_*.json without knowing which suite produced it. *)

module Report = Orion.Report
module App = Orion.App

type mode = [ `Speedup | `Speedup_distributed | `Convergence ]

let mode_to_string = function
  | `Speedup -> "speedup"
  | `Speedup_distributed -> "speedup-distributed"
  | `Convergence -> "convergence"

let mode_of_string = function
  | "speedup" -> Some `Speedup
  | "speedup-distributed" -> Some `Speedup_distributed
  | "convergence" -> Some `Convergence
  | _ -> None

let kind_of_mode = function
  | `Speedup -> "bench-speedup"
  | `Speedup_distributed -> "bench-speedup-distributed"
  | `Convergence -> "bench-convergence"

let default_out = function
  | `Speedup -> "BENCH_parallel.json"
  | `Speedup_distributed -> "BENCH_distributed.json"
  | `Convergence -> "BENCH_convergence.json"

type row = {
  row_app : string;
  row_mode : string;  (** engine mode: ["sim"], ["parallel"], ["distributed"] *)
  row_workers : int;  (** domains or worker processes *)
  row_comms : string;  (** communication policy ([local] off the wire) *)
  row_wall_seconds : float;
  row_speedup : float option;
  row_loss : float option;  (** final training loss, when measured *)
  row_bytes_shipped : float;
  row_bytes_full : float;
  row_bytes_saved_fraction : float;
  row_policy_by_array : (string * string) list;
  row_ok : bool option;
      (** matched the suite's reference run, where one exists *)
}

let opt_float = function Some v -> Report.Float v | None -> Report.Null

let row_json (r : row) : Report.json =
  Report.Obj
    [
      ("app", Report.Str r.row_app);
      ("mode", Report.Str r.row_mode);
      ("workers", Report.Int r.row_workers);
      ("comms", Report.Str r.row_comms);
      ("wall_seconds", Report.Float r.row_wall_seconds);
      ("speedup", opt_float r.row_speedup);
      ("loss", opt_float r.row_loss);
      ("bytes_shipped", Report.Float r.row_bytes_shipped);
      ("bytes_full", Report.Float r.row_bytes_full);
      ("bytes_saved_fraction", Report.Float r.row_bytes_saved_fraction);
      ( "policy_by_array",
        Report.Obj
          (List.map (fun (n, p) -> (n, Report.Str p)) r.row_policy_by_array)
      );
      ( "ok",
        match r.row_ok with Some b -> Report.Bool b | None -> Report.Null );
    ]

let speedup_rows (results : Speedup.app_result list) : row list =
  List.concat_map
    (fun (a : Speedup.app_result) ->
      List.map
        (fun (r : Speedup.run) ->
          {
            row_app = a.Speedup.res_app;
            row_mode = "parallel";
            row_workers = r.Speedup.run_domains;
            row_comms = r.Speedup.run_comms;
            row_wall_seconds = r.Speedup.run_wall_seconds;
            row_speedup = Some r.Speedup.run_speedup;
            row_loss = None;
            row_bytes_shipped = r.Speedup.run_bytes_shipped;
            row_bytes_full = r.Speedup.run_bytes_full;
            row_bytes_saved_fraction = 0.0;
            row_policy_by_array = [];
            row_ok = Some r.Speedup.run_equal_vs_sim;
          })
        a.Speedup.res_runs)
    results

let dist_rows (results : Dist_bench.app_result list) : row list =
  List.concat_map
    (fun (a : Dist_bench.app_result) ->
      List.map
        (fun (r : Dist_bench.run) ->
          {
            row_app = a.Dist_bench.res_app;
            row_mode = "distributed";
            row_workers = r.Dist_bench.run_procs;
            row_comms = r.Dist_bench.run_comms;
            row_wall_seconds = r.Dist_bench.run_wall_seconds;
            row_speedup = Some r.Dist_bench.run_speedup;
            row_loss = r.Dist_bench.run_loss;
            row_bytes_shipped = r.Dist_bench.run_bytes_shipped;
            row_bytes_full = r.Dist_bench.run_bytes_full;
            row_bytes_saved_fraction = r.Dist_bench.run_bytes_saved_fraction;
            row_policy_by_array = r.Dist_bench.run_policy_by_array;
            row_ok = Some r.Dist_bench.run_equal_vs_sim;
          })
        a.Dist_bench.res_runs)
    results

let convergence_rows (results : Convergence.result list) : row list =
  List.map
    (fun (r : Convergence.result) ->
      let final =
        match List.rev r.Convergence.cv_points with
        | p :: _ -> Some p
        | [] -> None
      in
      {
        row_app = r.Convergence.cv_app;
        row_mode = r.Convergence.cv_mode;
        row_workers = r.Convergence.cv_domains;
        row_comms = r.Convergence.cv_comms;
        row_wall_seconds =
          (match final with
          | Some p -> p.Convergence.pt_wall
          | None -> 0.0);
        row_speedup = None;
        row_loss = Option.map (fun p -> p.Convergence.pt_loss) final;
        row_bytes_shipped = r.Convergence.cv_bytes_shipped;
        row_bytes_full = r.Convergence.cv_bytes_full;
        row_bytes_saved_fraction =
          (if r.Convergence.cv_bytes_full > 0.0 then
             1.0
             -. (r.Convergence.cv_bytes_shipped /. r.Convergence.cv_bytes_full)
           else 0.0);
        row_policy_by_array = [];
        row_ok = None;
      })
    results

(* append the uniform rows to a suite's payload object *)
let with_rows (payload : Report.json) (rows : row list) : Report.json =
  let rows_field = ("rows", Report.List (List.map row_json rows)) in
  match payload with
  | Report.Obj fields -> Report.Obj (fields @ [ rows_field ])
  | other -> Report.Obj [ ("payload", other); rows_field ]

let write_file out contents =
  let oc = open_out out in
  output_string oc contents;
  output_char oc '\n';
  close_out oc

let run_convergence ?apps ~domains_list ~passes ~scale ~num_machines
    ~workers_per_machine ~print () : Convergence.result list =
  Registry.ensure ();
  let names = match apps with Some l -> l | None -> App.names () in
  let selected =
    List.filter_map
      (fun n ->
        match App.find n with
        | Some a when Option.is_some a.App.app_loss -> Some a
        | Some a ->
            Printf.eprintf
              "bench convergence: app %s declares no loss (skipped)\n"
              a.App.app_name;
            None
        | None ->
            Printf.eprintf "bench convergence: unknown app %S (skipped)\n" n;
            None)
      names
  in
  List.concat_map
    (fun a ->
      List.map
        (fun d ->
          (* domain count 1 measures the simulated cluster *)
          let mode = if d <= 1 then `Sim else `Parallel d in
          let r =
            Convergence.run a ~mode ~passes ~scale ~num_machines
              ~workers_per_machine ()
          in
          if print then
            List.iter
              (fun (p : Convergence.point) ->
                Printf.printf "%-4s %-10s pass %2d | loss %14.6f | %8.4f s\n"
                  r.Convergence.cv_app r.Convergence.cv_mode
                  p.Convergence.pt_pass p.Convergence.pt_loss
                  p.Convergence.pt_wall)
              r.Convergence.cv_points;
          r)
        domains_list)
    selected

let run ~(mode : mode) ~scale ~out ?apps ?(domains_list = [ 1; 2; 4; 8 ])
    ?(procs_list = [ 1; 2; 4 ]) ?(comms = [ "auto" ]) ?(passes = 3)
    ?(transport = `Unix) ?(num_machines = 2) ?(workers_per_machine = 2)
    ?(print = true) () : row list =
  let payload, rows =
    match mode with
    | `Speedup ->
        let results, payload =
          Speedup.run ?apps ~domains_list ~passes ~scale ~num_machines
            ~workers_per_machine ()
        in
        if print then Speedup.print_results results;
        (payload, speedup_rows results)
    | `Speedup_distributed ->
        let results, payload =
          Dist_bench.run ?apps ~procs_list ~comms ~passes ~scale ~transport ()
        in
        if print then Dist_bench.print_results results;
        (payload, dist_rows results)
    | `Convergence ->
        let results =
          run_convergence ?apps ~domains_list ~passes ~scale ~num_machines
            ~workers_per_machine ~print ()
        in
        (Convergence.payload results, convergence_rows results)
  in
  write_file out
    (Report.emit ~kind:(kind_of_mode mode) (with_rows payload rows));
  if print then Printf.printf "wrote %s\n" out;
  rows
