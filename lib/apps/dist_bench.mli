(** Distributed (multi-process, socket) speedup benchmark over the
    registered apps, behind [orion bench --mode speedup-distributed].
    Results are checked element-wise against a simulated execution of
    the same schedule; JSON output uses the versioned report envelope
    (kind ["bench-speedup-distributed"]). *)

type run = {
  run_procs : int;  (** worker processes requested *)
  run_wall_seconds : float;
  run_entries : int;
  run_bytes_shipped : float;  (** total wire bytes of DistArray state *)
  run_bytes_by_array : (string * float) list;
  run_speedup : float;  (** wall(1 proc) / wall(n procs) *)
  run_straggler_ratio : float option;
      (** max/mean busy time over workers, from the merged wall-clock
          telemetry ([None] when telemetry was disabled) *)
  run_barrier_wait_fraction : float option;
      (** fraction of worker time spent in pass barriers, from
          telemetry *)
  run_max_abs_vs_sim : float;
  run_max_rel_vs_sim : float;
  run_equal_vs_sim : bool;  (** within the app's tolerance *)
}

type app_result = {
  res_app : string;
  res_strategy : string;
  res_model : string;
  res_runs : run list;
}

(** Run the benchmark over [apps] (default: every registered app) at
    each worker count of [procs_list] (default [1; 2; 4]), [passes]
    passes per measurement, over [transport] (default [`Unix]).
    Returns the results and the ["bench-speedup-distributed"] JSON
    envelope for [BENCH_distributed.json]. *)
val run :
  ?apps:string list ->
  ?procs_list:int list ->
  ?passes:int ->
  ?scale:float ->
  ?transport:Orion.Engine.transport ->
  unit ->
  app_result list * string

(** Human-readable per-app/per-proc-count table on stdout. *)
val print_results : app_result list -> unit
