(** Distributed (multi-process, socket) speedup benchmark over the
    registered apps, behind [orion bench --mode speedup-distributed].
    Each worker count runs once per requested communication policy,
    always starting with a [full] baseline row that the other policies
    are measured against (bytes saved, bitwise equality, final-loss
    drift).  Results are also checked element-wise against a simulated
    execution of the same schedule; the payload is enveloped by
    {!Bench.run} (kind ["bench-speedup-distributed"]). *)

type run = {
  run_procs : int;  (** worker processes requested *)
  run_comms : string;  (** normalized communication policy spec *)
  run_wall_seconds : float;
  run_entries : int;
  run_bytes_shipped : float;  (** actual wire bytes of DistArray state *)
  run_bytes_full : float;  (** [full]-policy equivalent of the same traffic *)
  run_bytes_saved_fraction : float;
      (** 1 - shipped/full-baseline-shipped for the same procs count *)
  run_bytes_by_array : (string * float) list;
  run_policy_by_array : (string * string) list;
  run_speedup : float;  (** wall(1 proc, full) / wall(n procs) *)
  run_straggler_ratio : float option;
      (** max/mean busy time over workers, from the merged wall-clock
          telemetry ([None] when telemetry was disabled) *)
  run_barrier_wait_fraction : float option;
      (** fraction of worker time spent in pass barriers, from
          telemetry *)
  run_max_abs_vs_sim : float;
  run_max_rel_vs_sim : float;
  run_equal_vs_sim : bool;  (** within the app's tolerance *)
  run_max_abs_vs_full : float;
      (** element-wise drift vs the full-policy run at the same procs *)
  run_equal_vs_full : bool;  (** bitwise *)
  run_loss : float option;  (** final training loss, when the app has one *)
  run_loss_drift_vs_full : float option;
      (** |loss - full_loss| / max(|full_loss|, 1e-12) *)
}

type app_result = {
  res_app : string;
  res_strategy : string;
  res_model : string;
  res_runs : run list;
}

(** Run the benchmark over [apps] (default: every registered app) at
    each worker count of [procs_list] (default [1; 2; 4]) under each
    policy of [comms] (default [["auto"]]; a [full] baseline row is
    always measured first), [passes] passes per measurement, over
    [transport] (default [`Unix]).  Returns the results and the
    un-enveloped ["bench-speedup-distributed"] payload.
    @raise Invalid_argument on a malformed policy spec in [comms] *)
val run :
  ?apps:string list ->
  ?procs_list:int list ->
  ?comms:string list ->
  ?passes:int ->
  ?scale:float ->
  ?transport:Orion.Engine.transport ->
  unit ->
  app_result list * Orion.Report.json

(** Human-readable per-app/per-proc-count/per-policy table on stdout. *)
val print_results : app_result list -> unit
