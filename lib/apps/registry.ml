(** The one registry of built-in applications (mf, slr, lda, gbt),
    populating {!Orion.App}.  Each app provides:

    - [app_make]: a small deterministic instance — every DistArray the
      loop touches is a real {!Orion_dsm.Dist_array} registered with the
      session, the loop body runs fully interpreted, and host builtins
      are written to be order-independent across dependence-respecting
      serializations (so two such runs must agree, exactly or to the
      declared tolerance).  [?scale] grows the dataset for benchmarking.
    - [app_register_meta]: the paper-scale (Table 2) array shapes, so
      the analysis pipeline can run without materializing data.

    Registration happens at module initialization; consumers that only
    link this library call {!ensure} to force the initializer to run. *)

open Orion_lang
open Orion_dsm

let parse_loop script =
  let program = Parser.parse_program script in
  match Orion_analysis.Refs.find_parallel_loops program with
  | stmt :: _ -> stmt
  | [] -> invalid_arg "app script has no @parallel_for loop"

let loop_parts (stmt : Ast.stmt) =
  match stmt.Ast.sk with
  | Ast.For { kind = Ast.Each_loop { key; value; arr }; body; _ } ->
      (key, value, arr, body)
  | _ -> invalid_arg "app loop is not a parallel each-loop"

let bind_extern env (arr : float Dist_array.t) =
  Interp.set_var env (Dist_array.name arr)
    (Value.Vextern (Dist_array.to_extern arr))

(* order-independent integer hash (initial topics, sampling draws) *)
let mix x =
  let x = (x + 0x7ED55D16 + (x lsl 12)) land 0x3FFFFFFF in
  let x = (x lxor 0xC761C23C lxor (x lsr 19)) land 0x3FFFFFFF in
  let x = (x + 0x165667B1 + (x lsl 5)) land 0x3FFFFFFF in
  ((x * 1103515245) + 12345) land 0x3FFFFFFF

let scaled scale n = max 2 (int_of_float (Float.round (float_of_int n *. scale)))

(* ------------------------------------------------------------------ *)
(* Out-of-core datasets                                                *)
(* ------------------------------------------------------------------ *)

(* When set, [app_make] loads the dataset from a sharded directory
   ([lib/store]) instead of generating it in memory.  Environment
   variables — not parameters — so forked/exec'd distributed workers
   rebuild bit-identical instances from the same shards. *)
let ratings_dir_env = "ORION_DATA_RATINGS"
let features_dir_env = "ORION_DATA_FEATURES"
let corpus_dir_env = "ORION_DATA_CORPUS"

let data_dir env_var =
  match Sys.getenv_opt env_var with
  | Some dir when dir <> "" -> Some dir
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Training losses (convergence benchmarking)                          *)
(* ------------------------------------------------------------------ *)

let arr inst name = List.assoc name inst.Orion.App.inst_arrays

(* mean squared error over the observed ratings, V ~ Wᵀ H *)
let mf_loss inst =
  let w = arr inst "W" and h = arr inst "H" in
  let rank = (Dist_array.dims w).(0) in
  let n = ref 0 and acc = ref 0.0 in
  Dist_array.iter
    (fun key v ->
      match v with
      | Value.Vfloat r ->
          let u = key.(0) and i = key.(1) in
          let pred = ref 0.0 in
          for k = 0 to rank - 1 do
            pred :=
              !pred +. (Dist_array.get w [| k; u |] *. Dist_array.get h [| k; i |])
          done;
          let e = r -. !pred in
          acc := !acc +. (e *. e);
          incr n
      | _ -> ())
    inst.Orion.App.inst_iter;
  !acc /. float_of_int (max 1 !n)

(* mean binary cross-entropy under the current weights *)
let slr_loss inst =
  let w = arr inst "w" in
  let n = ref 0 and acc = ref 0.0 in
  Dist_array.iter
    (fun _ v ->
      match v with
      | Value.Vtuple
          [ Value.Vfloat label; Value.Vvec features; Value.Vvec values ] ->
          let margin = ref 0.0 in
          Array.iteri
            (fun k f ->
              (* the script subscripts w 1-based: w[int(idx[k])] *)
              margin :=
                !margin +. (values.(k) *. Dist_array.get w [| int_of_float f - 1 |]))
            features;
          let p = Losses.sigmoid !margin in
          acc := !acc +. Losses.log_loss ~label ~p;
          incr n
      | _ -> ())
    inst.Orion.App.inst_iter;
  !acc /. float_of_int (max 1 !n)

(* negative collapsed joint log-likelihood of the topic assignment
   counts (standard LDA Gibbs diagnostic, constants dropped) *)
let lda_loss inst =
  let doc_topic = arr inst "doc_topic" and word_topic = arr inst "word_topic" in
  let num_docs = (Dist_array.dims doc_topic).(0) in
  let k = (Dist_array.dims doc_topic).(1) in
  let vocab = (Dist_array.dims word_topic).(0) in
  let alpha = 50.0 /. float_of_int k and beta = 0.01 in
  let lg = Losses.lgamma in
  let ll = ref 0.0 in
  for z = 0 to k - 1 do
    let nz = ref 0.0 in
    for w = 0 to vocab - 1 do
      let c = Dist_array.get word_topic [| w; z |] in
      nz := !nz +. c;
      ll := !ll +. lg (c +. beta) -. lg beta
    done;
    ll :=
      !ll
      -. (lg (!nz +. (float_of_int vocab *. beta))
         -. lg (float_of_int vocab *. beta))
  done;
  for d = 0 to num_docs - 1 do
    let nd = ref 0.0 in
    for z = 0 to k - 1 do
      let c = Dist_array.get doc_topic [| d; z |] in
      nd := !nd +. c;
      ll := !ll +. lg (c +. alpha) -. lg alpha
    done;
    ll :=
      !ll
      -. (lg (!nd +. (float_of_int k *. alpha)) -. lg (float_of_int k *. alpha))
  done;
  -. !ll

(* negated total split gain: more gain found = lower loss *)
let gbt_loss inst =
  let split_gain = arr inst "split_gain" in
  let acc = ref 0.0 in
  Dist_array.iter (fun _ v -> acc := !acc -. v) split_gain;
  !acc

(* SLR trains through the w_buf gradient buffer; between passes the
   buffer is applied to w and cleared, turning pass-at-a-time driving
   into batch gradient descent.  (Never called inside a single
   Engine.run, so the equivalence paths are untouched.) *)
let slr_prepare_pass inst =
  let w = arr inst "w" and w_buf = arr inst "w_buf" in
  Dist_array.iter
    (fun key v ->
      if v <> 0.0 then begin
        Dist_array.update w key (fun x -> x +. v);
        Dist_array.set w_buf key 0.0
      end)
    w_buf

(* ------------------------------------------------------------------ *)
(* SGD matrix factorization                                            *)
(* ------------------------------------------------------------------ *)

let mf_make ?(scale = 1.0) ~num_machines ~workers_per_machine () =
  let session =
    Orion.create_session ~num_machines ~workers_per_machine ()
  in
  let data =
    match data_dir ratings_dir_env with
    | Some dir -> Orion_store.Loader.ratings dir
    | None ->
        Orion_data.Ratings.generate ~seed:3
          ~num_users:(scaled scale 24)
          ~num_items:(scaled scale 20)
          ~num_ratings:(scaled scale 240) ()
  in
  let rank = 4 in
  let cell k =
    (0.05 *. float_of_int ((((k.(0) + 1) * 31) + (k.(1) * 7)) mod 11)) -. 0.2
  in
  let w =
    Dist_array.init_dense ~name:"W" ~dims:[| rank; data.num_users |] ~f:cell
  in
  let h =
    Dist_array.init_dense ~name:"H" ~dims:[| rank; data.num_items |] ~f:cell
  in
  Orion.register session data.ratings;
  Orion.register session w;
  Orion.register session h;
  let loop_stmt = parse_loop Sgd_mf.script in
  let key_var, value_var, iter_name, body = loop_parts loop_stmt in
  let make_env () =
    let env = Interp.create_env ~seed:1 () in
    Interp.set_var env "step_size" (Value.Vfloat 0.01);
    bind_extern env w;
    bind_extern env h;
    env
  in
  {
    Orion.App.inst_name = "mf";
    inst_session = session;
    inst_env = make_env ();
    inst_make_env = make_env;
    inst_loop = loop_stmt;
    inst_key_var = key_var;
    inst_value_var = value_var;
    inst_body = body;
    inst_iter =
      Dist_array.map ~name:iter_name ~f:(fun v -> Value.Vfloat v) data.ratings;
    inst_iter_name = iter_name;
    inst_outputs = [ ("W", w); ("H", h) ];
    inst_arrays = [ ("W", w); ("H", h) ];
    inst_buffered = [];
  }

let mf_register_meta session =
  Orion.register_meta session ~name:"ratings"
    ~dims:[| 480_189; 17_770 |]
    ~count:100_480_507 ();
  Orion.register_meta session ~name:"W" ~dims:[| 40; 480_189 |] ();
  Orion.register_meta session ~name:"H" ~dims:[| 40; 17_770 |] ()

(* ------------------------------------------------------------------ *)
(* Sparse logistic regression                                          *)
(* ------------------------------------------------------------------ *)

let slr_make ?(scale = 1.0) ~num_machines ~workers_per_machine () =
  let session =
    Orion.create_session ~num_machines ~workers_per_machine ()
  in
  let data =
    match data_dir features_dir_env with
    | Some dir -> Orion_store.Loader.features dir
    | None ->
        Orion_data.Sparse_features.generate ~seed:7
          ~num_samples:(scaled scale 120)
          ~num_features:30 ~nnz_per_sample:6 ()
  in
  let w =
    Dist_array.init_dense ~name:"w"
      ~dims:[| data.num_features |]
      ~f:(fun k -> 0.01 *. float_of_int ((k.(0) mod 7) - 3))
  in
  let w_buf =
    Dist_array.fill_dense ~name:"w_buf" ~dims:[| data.num_features |] 0.0
  in
  Orion.register_iterable session data.samples
    ~to_value:Orion_data.Sparse_features.sample_to_value;
  Orion.register session w;
  Orion.register session ~buffered:true w_buf;
  let loop_stmt = parse_loop Slr.script in
  let key_var, value_var, iter_name, body = loop_parts loop_stmt in
  let make_env () =
    let env = Interp.create_env ~seed:1 () in
    Interp.set_var env "step_size" (Value.Vfloat 0.1);
    bind_extern env w;
    bind_extern env w_buf;
    env
  in
  {
    Orion.App.inst_name = "slr";
    inst_session = session;
    inst_env = make_env ();
    inst_make_env = make_env;
    inst_loop = loop_stmt;
    inst_key_var = key_var;
    inst_value_var = value_var;
    inst_body = body;
    inst_iter =
      Dist_array.map ~name:iter_name
        ~f:Orion_data.Sparse_features.sample_to_value data.samples;
    inst_iter_name = iter_name;
    inst_outputs = [ ("w_buf", w_buf) ];
    inst_arrays = [ ("w", w); ("w_buf", w_buf) ];
    inst_buffered = [ "w_buf" ];
  }

(* SLR over length-skewed data: identical script, losses, and array
   shapes to "slr", but per-sample nnz follows a front-loaded power law
   — so the histogram-balanced (count-even) space partition is badly
   work-imbalanced and profile-guided re-planning has real skew to
   correct.  A separate registered app (not a flag on "slr") so
   distributed workers materialize the identical dataset by name. *)
let slrskew_make ?(scale = 1.0) ~num_machines ~workers_per_machine () =
  let session =
    Orion.create_session ~num_machines ~workers_per_machine ()
  in
  let data =
    (* max_nnz well above the floor so per-sample compute is dominated
       by the nnz-proportional part, not fixed dispatch overhead —
       otherwise the head:tail work ratio flattens and a measured
       re-balance has nothing to win *)
    Orion_data.Sparse_features.generate_skewed ~seed:7
      ~num_samples:(scaled scale 120)
      ~num_features:96 ~max_nnz:80 ()
  in
  let w =
    Dist_array.init_dense ~name:"w"
      ~dims:[| data.num_features |]
      ~f:(fun k -> 0.01 *. float_of_int ((k.(0) mod 7) - 3))
  in
  let w_buf =
    Dist_array.fill_dense ~name:"w_buf" ~dims:[| data.num_features |] 0.0
  in
  Orion.register_iterable session data.samples
    ~to_value:Orion_data.Sparse_features.sample_to_value;
  Orion.register session w;
  Orion.register session ~buffered:true w_buf;
  let loop_stmt = parse_loop Slr.script in
  let key_var, value_var, iter_name, body = loop_parts loop_stmt in
  let make_env () =
    let env = Interp.create_env ~seed:1 () in
    Interp.set_var env "step_size" (Value.Vfloat 0.1);
    bind_extern env w;
    bind_extern env w_buf;
    env
  in
  {
    Orion.App.inst_name = "slrskew";
    inst_session = session;
    inst_env = make_env ();
    inst_make_env = make_env;
    inst_loop = loop_stmt;
    inst_key_var = key_var;
    inst_value_var = value_var;
    inst_body = body;
    inst_iter =
      Dist_array.map ~name:iter_name
        ~f:Orion_data.Sparse_features.sample_to_value data.samples;
    inst_iter_name = iter_name;
    inst_outputs = [ ("w_buf", w_buf) ];
    inst_arrays = [ ("w", w); ("w_buf", w_buf) ];
    inst_buffered = [ "w_buf" ];
  }

let slr_register_meta session =
  Orion.register_meta session ~name:"samples"
    ~dims:[| 20_000_000 |]
    ~count:20_000_000 ();
  Orion.register_meta session ~name:"w" ~dims:[| 20_216_830 |] ();
  Orion.register_meta session ~name:"w_buf"
    ~dims:[| 20_216_830 |]
    ~buffered:true ()

(* ------------------------------------------------------------------ *)
(* LDA Gibbs sampling                                                  *)
(* ------------------------------------------------------------------ *)

(* The [sample_topic] host builtin is deterministic and
   order-independent across dependence-respecting serializations: the
   live doc/word count rows it reads are each written only by same-doc /
   same-word iterations (which every valid serialization orders
   identically), the topic totals come from a pass-start snapshot, and
   the uniform draw is a hash of the token key — never the shared RNG,
   whose state would depend on execution order. *)
let lda_make ?(scale = 1.0) ~num_machines ~workers_per_machine () =
  let session =
    Orion.create_session ~num_machines ~workers_per_machine ()
  in
  let corpus =
    match data_dir corpus_dir_env with
    | Some dir -> Orion_store.Loader.corpus dir
    | None ->
        Orion_data.Corpus.generate ~seed:5
          ~num_docs:(scaled scale 18)
          ~vocab_size:15 ~avg_doc_len:20 ()
  in
  let k = 5 in
  let alpha = 50.0 /. float_of_int k and beta = 0.01 in
  let doc_topic =
    Dist_array.fill_dense ~name:"doc_topic" ~dims:[| corpus.num_docs; k |] 0.0
  in
  let word_topic =
    Dist_array.fill_dense ~name:"word_topic"
      ~dims:[| corpus.vocab_size; k |]
      0.0
  in
  let totals_buf = Dist_array.fill_dense ~name:"totals_buf" ~dims:[| k |] 0.0 in
  (* every token's key is pre-populated here, so parallel execution only
     ever replaces existing sparse keys (see Dist_array.enter_parallel) *)
  let token_topic =
    Dist_array.create_sparse ~name:"token_topic"
      ~dims:[| corpus.num_docs; corpus.vocab_size |]
      ~default:0.0
  in
  let totals0 = Array.make k 0.0 in
  Dist_array.iter
    (fun key cnt ->
      let d = key.(0) and w = key.(1) in
      let z = mix ((d * corpus.vocab_size) + w) mod k in
      (* token_topic stores the 1-based topic, matching the script's
         1-based subscripting of doc_topic / word_topic columns *)
      Dist_array.set token_topic key (float_of_int (z + 1));
      Dist_array.update doc_topic [| d; z |] (fun v -> v +. cnt);
      Dist_array.update word_topic [| w; z |] (fun v -> v +. cnt);
      totals0.(z) <- totals0.(z) +. cnt)
    corpus.tokens;
  Orion.register session corpus.tokens;
  Orion.register session doc_topic;
  Orion.register session word_topic;
  Orion.register session token_topic;
  Orion.register session ~buffered:true totals_buf;
  let vbeta = float_of_int corpus.vocab_size *. beta in
  let sample_topic name (args : Value.t list) =
    match (name, args) with
    | "sample_topic", [ dv; wv ] ->
        (* 1-based doc / word indices, as [key[...]] evaluates *)
        let d = Value.to_int dv - 1 and w = Value.to_int wv - 1 in
        let cumulative = Array.make k 0.0 in
        let acc = ref 0.0 in
        for z = 0 to k - 1 do
          let dt = Dist_array.get doc_topic [| d; z |] in
          let wt = Dist_array.get word_topic [| w; z |] in
          let p = (dt +. alpha) *. (wt +. beta) /. (totals0.(z) +. vbeta) in
          acc := !acc +. p;
          cumulative.(z) <- !acc
        done;
        let u =
          float_of_int
            (mix (((d * corpus.vocab_size) + w) lxor 0x2545F49) mod 0x10000)
          /. 65536.0 *. !acc
        in
        let z = ref 0 in
        while !z < k - 1 && cumulative.(!z) < u do
          incr z
        done;
        Some (Value.Vint (!z + 1))
    | _ -> None
  in
  let loop_stmt = parse_loop Lda.script in
  let key_var, value_var, iter_name, body = loop_parts loop_stmt in
  let make_env () =
    let env = Interp.create_env ~seed:1 ~host_call:sample_topic () in
    bind_extern env doc_topic;
    bind_extern env word_topic;
    bind_extern env token_topic;
    bind_extern env totals_buf;
    env
  in
  {
    Orion.App.inst_name = "lda";
    inst_session = session;
    inst_env = make_env ();
    inst_make_env = make_env;
    inst_loop = loop_stmt;
    inst_key_var = key_var;
    inst_value_var = value_var;
    inst_body = body;
    inst_iter =
      Dist_array.map ~name:iter_name ~f:(fun v -> Value.Vfloat v) corpus.tokens;
    inst_iter_name = iter_name;
    inst_outputs =
      [
        ("doc_topic", doc_topic);
        ("word_topic", word_topic);
        ("token_topic", token_topic);
        ("totals_buf", totals_buf);
      ];
    inst_arrays =
      [
        ("doc_topic", doc_topic);
        ("word_topic", word_topic);
        ("token_topic", token_topic);
        ("totals_buf", totals_buf);
      ];
    inst_buffered = [ "totals_buf" ];
  }

let lda_register_meta session =
  Orion.register_meta session ~name:"tokens"
    ~dims:[| 299_752; 101_636 |]
    ~count:99_542_125 ();
  Orion.register_meta session ~name:"doc_topic" ~dims:[| 299_752; 1000 |] ();
  Orion.register_meta session ~name:"word_topic" ~dims:[| 101_636; 1000 |] ();
  Orion.register_meta session ~name:"token_topic"
    ~dims:[| 299_752; 101_636 |]
    ();
  Orion.register_meta session ~name:"totals_buf" ~dims:[| 1000 |]
    ~buffered:true ()

(* ------------------------------------------------------------------ *)
(* GBT split finding                                                   *)
(* ------------------------------------------------------------------ *)

let gbt_make ?(scale = 1.0) ~num_machines ~workers_per_machine () =
  let session =
    Orion.create_session ~num_machines ~workers_per_machine ()
  in
  let num_features = 10 in
  let data =
    Gbt.synthetic ~seed:31 ~num_samples:(scaled scale 80) ~num_features ()
  in
  let n = Array.length data.Gbt.labels in
  let pos = Array.fold_left ( +. ) 0.0 data.Gbt.labels in
  let p0 = Float.max 1e-6 (Float.min (1.0 -. 1e-6) (pos /. float_of_int n)) in
  let grads = Array.map (fun label -> p0 -. label) data.Gbt.labels in
  let hess = Array.make n (Float.max 1e-9 (p0 *. (1.0 -. p0))) in
  let edges = Gbt.feature_edges data ~num_bins:8 in
  let members = List.init n Fun.id in
  let feature_index =
    Dist_array.fill_dense ~name:"feature_index" ~dims:[| num_features |] 0.0
  in
  let split_gain =
    Dist_array.fill_dense ~name:"split_gain" ~dims:[| num_features |] 0.0
  in
  Orion.register session feature_index;
  Orion.register session split_gain;
  let find_best_split name (args : Value.t list) =
    match (name, args) with
    | "find_best_split", [ fv ] ->
        let f = Value.to_int fv - 1 in
        let gain =
          match
            Gbt.best_split_for_feature data ~edges ~grads ~hess ~members ~f
              ~lambda:1.0 ~min_child_weight:1.0
          with
          | Some c -> c.Gbt.gain
          | None -> 0.0
        in
        Some (Value.Vfloat gain)
    | _ -> None
  in
  let loop_stmt = parse_loop Gbt.script in
  let key_var, value_var, iter_name, body = loop_parts loop_stmt in
  let make_env () =
    let env = Interp.create_env ~seed:1 ~host_call:find_best_split () in
    bind_extern env split_gain;
    env
  in
  {
    Orion.App.inst_name = "gbt";
    inst_session = session;
    inst_env = make_env ();
    inst_make_env = make_env;
    inst_loop = loop_stmt;
    inst_key_var = key_var;
    inst_value_var = value_var;
    inst_body = body;
    inst_iter =
      Dist_array.map ~name:iter_name
        ~f:(fun v -> Value.Vfloat v)
        feature_index;
    inst_iter_name = iter_name;
    inst_outputs = [ ("split_gain", split_gain) ];
    inst_arrays = [ ("feature_index", feature_index); ("split_gain", split_gain) ];
    inst_buffered = [];
  }

let gbt_register_meta session =
  Orion.register_meta session ~name:"feature_index" ~dims:[| 90 |] ~count:90 ();
  Orion.register_meta session ~name:"split_gain" ~dims:[| 90 |] ()

(* ------------------------------------------------------------------ *)

let () =
  List.iter Orion.App.register
    [
      {
        Orion.App.app_name = "mf";
        app_description = "SGD matrix factorization (2D unordered)";
        app_script = Sgd_mf.script;
        app_tolerance = None;
        app_make = mf_make;
        app_register_meta = mf_register_meta;
        app_loss = Some mf_loss;
        app_prepare_pass = None;
      };
      {
        Orion.App.app_name = "slr";
        app_description =
          "Sparse logistic regression (1D + buffers + prefetch)";
        app_script = Slr.script;
        (* buffered FP accumulation is order-sensitive in the last bits *)
        app_tolerance = Some 1e-9;
        app_make = slr_make;
        app_register_meta = slr_register_meta;
        app_loss = Some slr_loss;
        app_prepare_pass = Some slr_prepare_pass;
      };
      {
        Orion.App.app_name = "slrskew";
        app_description =
          "Sparse logistic regression, length-skewed samples (re-planning \
           target)";
        app_script = Slr.script;
        app_tolerance = Some 1e-9;
        app_make = slrskew_make;
        app_register_meta = slr_register_meta;
        app_loss = Some slr_loss;
        app_prepare_pass = Some slr_prepare_pass;
      };
      {
        Orion.App.app_name = "lda";
        app_description =
          "Topic modeling, collapsed Gibbs (2D unordered + buffer)";
        app_script = Lda.script;
        (* Gibbs counts are integer-valued floats: addition is exact *)
        app_tolerance = None;
        app_make = lda_make;
        app_register_meta = lda_register_meta;
        app_loss = Some lda_loss;
        app_prepare_pass = None;
      };
      {
        Orion.App.app_name = "gbt";
        app_description = "Gradient boosted trees (1D over features)";
        app_script = Gbt.script;
        app_tolerance = None;
        app_make = gbt_make;
        app_register_meta = gbt_register_meta;
        app_loss = Some gbt_loss;
        app_prepare_pass = None;
      };
    ]

(** Build a fresh deterministic instance of app [name], or [None] if no
    such app is registered.  Distributed workers call this to rebuild
    the master's instance from the app name alone — every [app_make] is
    deterministic (fixed seeds), so master and all ranks materialize
    identical initial DistArray state and host builtins (which are
    closures and cannot travel over the wire). *)
let materialize name ~scale ~num_machines ~workers_per_machine =
  match Orion.App.find name with
  | None -> None
  | Some app ->
      Some (app.Orion.App.app_make ~scale ~num_machines ~workers_per_machine ())

(* Installing the distributed master here ties the knot: Orion.Engine
   dispatches [`Distributed] through a hook so the core library stays
   free of socket/process dependencies, and any program that links the
   apps (CLI, worker, tests, benches) gets the runner for free. *)
let () = Orion_net.Dist_master.install ~materialize

(** Force this module's initializer (and thus app registration and the
    distributed-runner installation) to run.  Call before the first
    {!Orion.App.find} in any executable that only links [orion_apps]. *)
let ensure () = ()
