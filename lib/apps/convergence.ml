(* Loss-vs-wall-time measurement: drive Engine.run one pass at a time,
   sampling the app's objective at every boundary on the monotonic
   clock. *)

module Clock = Orion_obs.Clock
module Metrics = Orion_obs.Metrics
module Telemetry = Orion_obs.Telemetry
module R = Orion_report

type point = {
  pt_pass : int;
  pt_wall : float;
  pt_loss : float;
  pt_straggler : float option;
  pt_barrier : float option;
}

type result = {
  cv_app : string;
  cv_mode : string;
  cv_domains : int;
  cv_passes : int;
  cv_scale : float;
  cv_comms : string;
  cv_bytes_shipped : float;
  cv_bytes_full : float;
  cv_points : point list;
}

let run (app : Orion.App.t) ~(mode : Orion.Engine.mode) ~passes
    ?(scale = 1.0) ?(num_machines = 2) ?(workers_per_machine = 2)
    ?pipeline_depth ?comms () : result =
  let loss_of =
    match app.Orion.App.app_loss with
    | Some f -> f
    | None ->
        invalid_arg
          (Printf.sprintf "app %s declares no training loss"
             app.Orion.App.app_name)
  in
  let inst =
    match mode with
    | `Distributed { Orion.Engine.procs; _ } ->
        (* one worker process per simulated machine *)
        app.Orion.App.app_make ~scale ~num_machines:procs
          ~workers_per_machine:1 ()
    | `Sim | `Parallel _ ->
        app.Orion.App.app_make ~scale ~num_machines ~workers_per_machine ()
  in
  let t0 = Clock.now () in
  let points = ref [] in
  let record ~pass ~report =
    let straggler, barrier =
      match report with
      | Some r -> (
          match r.Orion.Engine.ep_telemetry with
          | Some sm ->
              let m = sm.Telemetry.sm_overall in
              ( Some m.Metrics.straggler_ratio,
                Some m.Metrics.barrier_wait_fraction )
          | None -> (None, None))
      | None -> (None, None)
    in
    points :=
      {
        pt_pass = pass;
        (* measured after the loss evaluation so the curve's x axis is
           honest about when the y value existed *)
        pt_loss = loss_of inst;
        pt_wall = Clock.elapsed t0;
        pt_straggler = straggler;
        pt_barrier = barrier;
      }
      :: !points
  in
  record ~pass:0 ~report:None;
  let comms_used = ref "local" in
  let bytes_shipped = ref 0.0 and bytes_full = ref 0.0 in
  for pass = 1 to passes do
    let r =
      Orion.Engine.run inst.Orion.App.inst_session inst ~mode ~passes:1
        ?pipeline_depth ~scale ~telemetry:true ?comms ()
    in
    comms_used := r.Orion.Engine.ep_comms;
    bytes_shipped := !bytes_shipped +. r.Orion.Engine.ep_bytes_shipped;
    bytes_full := !bytes_full +. r.Orion.Engine.ep_bytes_full;
    (* fold buffered accumulators into the model (e.g. SLR's gradient
       buffer) before measuring, so the objective can actually move *)
    Option.iter (fun f -> f inst) app.Orion.App.app_prepare_pass;
    record ~pass ~report:(Some r)
  done;
  let domains =
    match mode with
    | `Sim -> 1
    | `Parallel d -> d
    | `Distributed { Orion.Engine.procs; _ } -> procs
  in
  {
    cv_app = app.Orion.App.app_name;
    cv_mode = Orion.Engine.mode_to_string mode;
    cv_domains = domains;
    cv_passes = passes;
    cv_scale = scale;
    cv_comms = !comms_used;
    cv_bytes_shipped = !bytes_shipped;
    cv_bytes_full = !bytes_full;
    cv_points = List.rev !points;
  }

let opt_float = function Some f -> R.Float f | None -> R.Null

let result_payload r =
  R.Obj
    [
      ("app", R.Str r.cv_app);
      ("mode", R.Str r.cv_mode);
      ("domains", R.Int r.cv_domains);
      ("passes", R.Int r.cv_passes);
      ("scale", R.Float r.cv_scale);
      ("comms", R.Str r.cv_comms);
      ("bytes_shipped", R.Float r.cv_bytes_shipped);
      ("bytes_full", R.Float r.cv_bytes_full);
      ( "points",
        R.List
          (List.map
             (fun p ->
               R.Obj
                 [
                   ("pass", R.Int p.pt_pass);
                   ("wall_seconds", R.Float p.pt_wall);
                   ("loss", R.Float p.pt_loss);
                   ("straggler_ratio", opt_float p.pt_straggler);
                   ("barrier_wait_fraction", opt_float p.pt_barrier);
                 ])
             r.cv_points) );
    ]

let payload results =
  R.Obj [ ("results", R.List (List.map result_payload results)) ]

let emit results = R.emit ~kind:"bench-convergence" (payload results)
