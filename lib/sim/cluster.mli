(** The simulated distributed cluster: per-worker virtual clocks with
    computation and communication charging.  Numeric work executes
    in-process; the cluster only accounts for *when* it would have
    happened on the paper's testbed.  Every charge also emits a
    categorized span on the cluster's {!Trace}; the optional [label]
    arguments name what the time was spent on. *)

type t = {
  num_machines : int;
  workers_per_machine : int;
  cost : Cost_model.t;
  clocks : float array;
  recorder : Recorder.t;
  trace : Trace.t;
  mutable bytes_sent : float;
  mutable messages_sent : int;
}

val create :
  ?recorder:Recorder.t ->
  ?trace:Trace.t ->
  num_machines:int ->
  workers_per_machine:int ->
  cost:Cost_model.t ->
  unit ->
  t

val num_workers : t -> int
val machine_of : t -> int -> int
val clock : t -> int -> float

(** The latest clock — "cluster time". *)
val now : t -> float

(** Advance every clock to at least [time]; the wait is traced as idle
    time. *)
val advance_all : ?label:string -> t -> float -> unit

(** Charge computation to one worker, scaled by the cost model's
    language factor. *)
val compute : ?label:string -> t -> worker:int -> float -> unit

(** Charge unscaled (system) time to one worker.  [category] refines
    the traced span (default [Compute]); [bytes] attributes
    communication volume to it. *)
val compute_raw :
  ?category:Trace.category ->
  ?label:string ->
  ?bytes:float ->
  t ->
  worker:int ->
  float ->
  unit

(** Start a transfer; returns the arrival time.  Same-machine transfers
    are memory copies charged to the sender. *)
val send : ?label:string -> t -> src:int -> dst:int -> bytes:float -> float

(** Block [dst] until [arrival] (plus unmarshalling for cross-machine
    transfers). *)
val recv :
  ?label:string ->
  t ->
  dst:int ->
  arrival:float ->
  bytes:float ->
  cross_machine:bool ->
  unit

(** Synchronous point-to-point transfer. *)
val send_recv : ?label:string -> t -> src:int -> dst:int -> bytes:float -> unit

(** Global barrier: align all clocks on the slowest worker. *)
val barrier : ?label:string -> t -> unit

(** Reduce-and-broadcast of [bytes_per_worker] (accumulators,
    data-parallel parameter syncs). *)
val all_reduce : ?label:string -> t -> bytes_per_worker:float -> unit

(** Per-pass metrics over this cluster's trace (spans starting at or
    after [since]; default the whole run). *)
val metrics : ?since:float -> t -> Metrics.t

(** Reset clocks and counters (keeps the recorder and the trace). *)
val reset : t -> unit
