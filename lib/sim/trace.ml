(** The tracer lives in [Orion_obs] since it became backend-neutral
    (the real runtimes record wall-clock spans into the same store the
    simulator fills with virtual-time spans).  This alias keeps every
    [Orion_sim.Trace] path — and its type equalities — valid. *)

include Orion_obs.Trace
