(** Bandwidth-usage recorder (paper Fig. 12): communication events are
    spread proportionally over fixed-width time bins. *)

type t = {
  bin_width_sec : float;
  mutable bins : float array;
}

val create : ?bin_width_sec:float -> unit -> t

(** Record [bytes] transferred over
    [start_sec, start_sec + duration_sec).
    @raise Invalid_argument if [start_sec] is negative (virtual clocks
    start at 0, so a negative start is an accounting bug upstream). *)
val record : t -> start_sec:float -> duration_sec:float -> bytes:float -> unit

(** Bytes per bin, up to the last nonzero bin. *)
val series : t -> float array

(** Average megabits per second within each bin. *)
val mbps_series : t -> float array

val total_bytes : t -> float
val reset : t -> unit
