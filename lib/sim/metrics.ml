(** Alias of the backend-neutral metrics in [Orion_obs] (see
    {!Trace} for why they moved); keeps [Orion_sim.Metrics] paths and
    type equalities valid. *)

include Orion_obs.Metrics
