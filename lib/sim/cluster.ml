(** The simulated distributed cluster.

    Workers are arranged on machines; each worker advances a private
    virtual clock.  Computation charges time to one worker's clock;
    communication charges marshalling CPU to the sender, transfer time
    over the (shared per-machine) network, and synchronizes the
    receiver's clock with the arrival time.  Barriers align all clocks.

    Every charge also emits a categorized span on the cluster's
    {!Trace}, so per-worker timelines (compute vs. marshal vs. transfer
    vs. waiting) can be exported and aggregated after a run.  The
    optional [label] arguments name what the time was spent on (a
    schedule block, a rotated DistArray, a parameter server).

    The real numeric work is executed in-process by the caller; the
    cluster only accounts for *when* each piece would have happened on
    the paper's testbed. *)

type t = {
  num_machines : int;
  workers_per_machine : int;
  cost : Cost_model.t;
  clocks : float array;  (** per-worker virtual time *)
  recorder : Recorder.t;
  trace : Trace.t;
  mutable bytes_sent : float;
  mutable messages_sent : int;
}

let create ?(recorder = Recorder.create ()) ?(trace = Trace.create ())
    ~num_machines ~workers_per_machine ~cost () =
  Log.info ~src:"cluster"
    ~kv:
      [
        ("machines", Log.int num_machines);
        ("workers_per_machine", Log.int workers_per_machine);
      ]
    "cluster created";
  {
    num_machines;
    workers_per_machine;
    cost;
    clocks = Array.make (num_machines * workers_per_machine) 0.0;
    recorder;
    trace;
    bytes_sent = 0.0;
    messages_sent = 0;
  }

let num_workers t = t.num_machines * t.workers_per_machine
let machine_of t w = w / t.workers_per_machine
let clock t w = t.clocks.(w)
let now t = Array.fold_left max 0.0 t.clocks

(** Advance all clocks to at least [time] (e.g. after driver-side
    work); the wait is traced as idle time. *)
let advance_all ?label t time =
  Array.iteri
    (fun i c ->
      if c < time then begin
        Trace.add t.trace ?label ~worker:i ~category:Trace.Idle ~start_sec:c
          ~duration_sec:(time -. c);
        t.clocks.(i) <- time
      end)
    t.clocks

(** Charge [seconds] of computation (already scaled by the caller if
    it was measured rather than modeled) to worker [w]. *)
let compute ?label t ~worker seconds =
  let d = seconds *. t.cost.language_overhead in
  Trace.add t.trace ?label ~worker ~category:Trace.Compute
    ~start_sec:t.clocks.(worker) ~duration_sec:d;
  t.clocks.(worker) <- t.clocks.(worker) +. d

(** Charge unscaled time (system work such as hash-table maintenance
    that is not application-language code).  [category] refines what
    the time was (e.g. [Trace.Transfer] for a blocking rotation). *)
let compute_raw ?(category = Trace.Compute) ?label ?bytes t ~worker seconds =
  Trace.add t.trace ?label ?bytes ~worker ~category
    ~start_sec:t.clocks.(worker) ~duration_sec:seconds;
  t.clocks.(worker) <- t.clocks.(worker) +. seconds

(** Transfer [bytes] from [src] to [dst]; returns the arrival time but
    does not block the receiver (use [recv] or [send_recv]). *)
let send ?label t ~src ~dst ~bytes =
  t.bytes_sent <- t.bytes_sent +. bytes;
  t.messages_sent <- t.messages_sent + 1;
  let same_machine = machine_of t src = machine_of t dst in
  if same_machine then begin
    let d = Cost_model.intra_transfer_time t.cost bytes in
    Trace.add t.trace ?label ~bytes ~worker:src ~category:Trace.Transfer
      ~start_sec:t.clocks.(src) ~duration_sec:d;
    t.clocks.(src) <- t.clocks.(src) +. d;
    t.clocks.(src)
  end
  else begin
    let m = Cost_model.marshal_time t.cost bytes in
    Trace.add t.trace ?label ~worker:src ~category:Trace.Marshal
      ~start_sec:t.clocks.(src) ~duration_sec:m;
    t.clocks.(src) <- t.clocks.(src) +. m;
    let start = t.clocks.(src) in
    let d = Cost_model.transfer_time t.cost bytes in
    Trace.add t.trace ?label ~bytes ~worker:src ~category:Trace.Transfer
      ~start_sec:start ~duration_sec:d;
    Recorder.record t.recorder ~start_sec:start ~duration_sec:d ~bytes;
    start +. t.cost.network_latency_sec +. d
  end

(** Block worker [dst] until [arrival] (plus unmarshalling cost for
    cross-machine transfers, charged as marshalling again). *)
let recv ?label t ~dst ~arrival ~bytes ~cross_machine =
  if arrival > t.clocks.(dst) then begin
    Trace.add t.trace ?label ~worker:dst ~category:Trace.Idle
      ~start_sec:t.clocks.(dst)
      ~duration_sec:(arrival -. t.clocks.(dst));
    t.clocks.(dst) <- arrival
  end;
  if cross_machine then begin
    let m = Cost_model.marshal_time t.cost bytes in
    Trace.add t.trace ?label ~worker:dst ~category:Trace.Marshal
      ~start_sec:t.clocks.(dst) ~duration_sec:m;
    t.clocks.(dst) <- t.clocks.(dst) +. m
  end

(** Synchronous point-to-point transfer. *)
let send_recv ?label t ~src ~dst ~bytes =
  let arrival = send ?label t ~src ~dst ~bytes in
  recv ?label t ~dst ~arrival ~bytes
    ~cross_machine:(machine_of t src <> machine_of t dst)

(** Global barrier: all workers wait for the slowest. *)
let barrier ?label t =
  let m = now t +. t.cost.barrier_cost_sec in
  Array.iteri
    (fun w c ->
      Trace.add t.trace ?label ~worker:w ~category:Trace.Barrier_wait
        ~start_sec:c ~duration_sec:(m -. c))
    t.clocks;
  Array.fill t.clocks 0 (Array.length t.clocks) m

(** Reduce-and-broadcast of [bytes_per_worker] (e.g. accumulators or a
    data-parallel parameter sync): a simple flat aggregation model —
    every machine sends its workers' data to a coordinator and receives
    the merged result. *)
let all_reduce ?label t ~bytes_per_worker =
  barrier ?label t;
  let per_machine = bytes_per_worker *. float_of_int t.workers_per_machine in
  let total_in = per_machine *. float_of_int (max 0 (t.num_machines - 1)) in
  (* inbound to the coordinator is serialized on its NIC; outbound
     broadcast likewise *)
  let d = 2.0 *. Cost_model.transfer_time t.cost total_in in
  let m =
    2.0 *. Cost_model.marshal_time t.cost per_machine
    +. t.cost.network_latency_sec *. 2.0
  in
  t.bytes_sent <- t.bytes_sent +. (2.0 *. total_in);
  let start = now t in
  if Log.enabled Log.Debug then
    Log.debug ~src:"cluster"
      ~kv:
        [
          ("start", Log.float start);
          ("bytes", Log.float (2.0 *. total_in));
          ("duration", Log.float (d +. m));
        ]
      "all_reduce";
  Recorder.record t.recorder ~start_sec:start ~duration_sec:d
    ~bytes:(2.0 *. total_in);
  let share = 2.0 *. total_in /. float_of_int (max 1 (num_workers t)) in
  Array.iteri
    (fun w _ ->
      Trace.add t.trace ?label ~bytes:share ~worker:w ~category:Trace.Transfer
        ~start_sec:start ~duration_sec:d;
      Trace.add t.trace ?label ~worker:w ~category:Trace.Marshal
        ~start_sec:(start +. d) ~duration_sec:m)
    t.clocks;
  let finish = start +. d +. m in
  Array.fill t.clocks 0 (Array.length t.clocks) finish

(** Per-pass metrics over this cluster's trace (spans from [since],
    default the whole run). *)
let metrics ?since t =
  Metrics.of_trace ?since ~num_workers:(num_workers t) t.trace

(** Reset clocks (new experiment) without discarding the recorder or
    the trace. *)
let reset t =
  Array.fill t.clocks 0 (Array.length t.clocks) 0.0;
  t.bytes_sent <- 0.0;
  t.messages_sent <- 0
