(** Bandwidth-usage recorder (for the paper's Fig. 12).

    Communication events are binned into fixed-width time windows; the
    result is a cluster-aggregate bytes-per-window series that the
    bench harness converts to Mbps. *)

type t = {
  bin_width_sec : float;
  mutable bins : float array;  (** bytes transferred per bin *)
}

let create ?(bin_width_sec = 1.0) () = { bin_width_sec; bins = Array.make 64 0.0 }

let ensure t idx =
  if idx >= Array.length t.bins then begin
    let bins = Array.make (max (idx + 1) (2 * Array.length t.bins)) 0.0 in
    Array.blit t.bins 0 bins 0 (Array.length t.bins);
    t.bins <- bins
  end

(** Record [bytes] transferred over [start_sec, start_sec + duration_sec),
    spread proportionally over the covered bins.  A negative [start_sec]
    is always an accounting bug upstream (virtual clocks start at 0), so
    it raises rather than being dropped silently. *)
let record t ~start_sec ~duration_sec ~bytes =
  if start_sec < 0.0 then
    invalid_arg
      (Printf.sprintf "Recorder.record: negative start_sec %g" start_sec);
  if bytes > 0.0 then
    if duration_sec <= 0.0 then begin
      let idx = int_of_float (start_sec /. t.bin_width_sec) in
      ensure t idx;
      t.bins.(idx) <- t.bins.(idx) +. bytes
    end
    else begin
      let finish = start_sec +. duration_sec in
      let first = int_of_float (start_sec /. t.bin_width_sec) in
      let last = int_of_float (finish /. t.bin_width_sec) in
      ensure t last;
      for idx = first to last do
        let bin_lo = float_of_int idx *. t.bin_width_sec in
        let bin_hi = bin_lo +. t.bin_width_sec in
        let overlap = min finish bin_hi -. max start_sec bin_lo in
        if overlap > 0.0 then
          t.bins.(idx) <- t.bins.(idx) +. (bytes *. overlap /. duration_sec)
      done
    end

(** Bytes per bin up to the last nonzero bin. *)
let series t =
  let last = ref (-1) in
  Array.iteri (fun i b -> if b > 0.0 then last := i) t.bins;
  Array.init (!last + 1) (fun i -> t.bins.(i))

(** Average megabits per second within each bin. *)
let mbps_series t =
  Array.map (fun bytes -> bytes *. 8.0 /. 1e6 /. t.bin_width_sec) (series t)

let total_bytes t = Array.fold_left ( +. ) 0.0 t.bins

let reset t = Array.fill t.bins 0 (Array.length t.bins) 0.0
