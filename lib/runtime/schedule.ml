(** Iteration-space partitioning into schedulable blocks (paper §4.3,
    Fig. 7).

    A 2D-parallelized loop's iteration space is cut into
    [space_parts × time_parts] blocks using histogram-balanced range
    partitions along the chosen dimensions; a 1D loop into
    [space_parts] blocks.  Unimodular plans partition the *transformed*
    coordinates. *)

open Orion_dsm

type 'v block = {
  space_idx : int;
  time_idx : int;  (** -1 for 1D blocks *)
  entries : (int array * 'v) array;  (** ascending key order *)
}

type 'v t = {
  space_parts : int;
  time_parts : int;  (** 1 for 1D *)
  blocks : 'v block array array;  (** indexed [space][time] *)
  space_boundaries : Partitioner.boundaries;
  time_boundaries : Partitioner.boundaries option;
}

let block t ~space ~time = t.blocks.(space).(time)

(* Deterministic Fisher–Yates over a block's entries.  SGD convergence
   depends on sample order: stratified SGD (Gemulla et al.) shuffles
   entries within blocks, and serial SGD shuffles the dataset; a
   [shuffle_seed] reproduces that here while keeping runs replayable. *)
let shuffle_in_place ~seed (a : 'a array) =
  let state = ref (Int64.of_int (seed lxor 0x5DEECE66)) in
  let next bound =
    state :=
      Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
    Int64.to_int (Int64.shift_right_logical !state 33) mod bound
  in
  for i = Array.length a - 1 downto 1 do
    let j = next (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(** Reshuffle every block's entries in place (SGD implementations
    shuffle their local data each pass; vary [seed] per epoch). *)
let reshuffle t ~seed =
  Array.iteri
    (fun s row ->
      Array.iteri
        (fun ti b -> shuffle_in_place ~seed:(seed + (s * 7919) + ti) b.entries)
        row)
    t.blocks

let total_entries t =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun acc b -> acc + Array.length b.entries) acc row)
    0 t.blocks

(** A structural fingerprint of the schedule: FNV-1a over the partition
    counts and every block's entry keys in scheduled order.  Master and
    workers compile their schedules independently from the same plan and
    data; comparing fingerprints catches any nondeterminism before a
    distributed pass executes divergent slices. *)
let fingerprint t =
  (* FNV-1a-style; offset basis truncated to OCaml's 63-bit int *)
  let h = ref 0x4BF29CE484222325 in
  let mix x =
    (* fold the int in byte-wise so key order matters *)
    for shift = 0 to 7 do
      let byte = (x lsr (shift * 8)) land 0xFF in
      h := (!h lxor byte) * 0x100000001B3
    done
  in
  mix t.space_parts;
  mix t.time_parts;
  Array.iter
    (fun row ->
      Array.iter
        (fun b ->
          mix (Array.length b.entries);
          Array.iter (fun (key, _) -> Array.iter mix key) b.entries)
        row)
    t.blocks;
  !h land max_int

(* build blocks from entry classification functions *)
let build ?shuffle_seed ~space_parts ~time_parts ~space_boundaries
    ~time_boundaries ~classify entries =
  let buckets =
    Array.init space_parts (fun _ -> Array.init time_parts (fun _ -> ref []))
  in
  Array.iter
    (fun ((key, _) as e) ->
      let s, t = classify key in
      buckets.(s).(t) := e :: !(buckets.(s).(t)))
    entries;
  let blocks =
    Array.init space_parts (fun s ->
        Array.init time_parts (fun t ->
            (* entries arrive in ascending key order and were consed,
               so reverse restores the deterministic order *)
            let entries = Array.of_list (List.rev !(buckets.(s).(t))) in
            (match shuffle_seed with
            | Some seed ->
                shuffle_in_place ~seed:(seed + (s * 7919) + t) entries
            | None -> ());
            {
              space_idx = s;
              time_idx = (if time_parts = 1 then -1 else t);
              entries;
            }))
  in
  { space_parts; time_parts; blocks; space_boundaries; time_boundaries }

(** Histogram-balanced 1D partitioning along [space_dim]. *)
let partition_1d ?shuffle_seed iter ~space_dim ~space_parts =
  let counts = Partitioner.histogram iter ~dim:space_dim in
  let sb = Partitioner.balanced_ranges ~counts ~parts:space_parts in
  let space_parts = Partitioner.num_parts sb in
  build ?shuffle_seed ~space_parts ~time_parts:1 ~space_boundaries:sb
    ~time_boundaries:None
    ~classify:(fun key ->
      (Partitioner.part_of ~boundaries:sb key.(space_dim), 0))
    (Dist_array.entries iter)

(** Histogram-balanced 2D partitioning along [space_dim] / [time_dim]. *)
let partition_2d ?shuffle_seed iter ~space_dim ~time_dim ~space_parts
    ~time_parts =
  let s_counts = Partitioner.histogram iter ~dim:space_dim in
  let t_counts = Partitioner.histogram iter ~dim:time_dim in
  let sb = Partitioner.balanced_ranges ~counts:s_counts ~parts:space_parts in
  let tb = Partitioner.balanced_ranges ~counts:t_counts ~parts:time_parts in
  let space_parts = Partitioner.num_parts sb in
  let time_parts = Partitioner.num_parts tb in
  build ?shuffle_seed ~space_parts ~time_parts ~space_boundaries:sb
    ~time_boundaries:(Some tb)
    ~classify:(fun key ->
      ( Partitioner.part_of ~boundaries:sb key.(space_dim),
        Partitioner.part_of ~boundaries:tb key.(time_dim) ))
    (Dist_array.entries iter)

(** 1D partitioning with caller-supplied boundaries (adaptive
    re-planning: the boundaries come from measured block costs instead
    of the entry histogram).  Master and workers rebuild re-balanced
    schedules through this entry point with the same shuffle seed, so
    fingerprints still agree. *)
let partition_1d_with ?shuffle_seed iter ~space_dim ~space_boundaries:sb =
  let space_parts = Partitioner.num_parts sb in
  build ?shuffle_seed ~space_parts ~time_parts:1 ~space_boundaries:sb
    ~time_boundaries:None
    ~classify:(fun key ->
      (Partitioner.part_of ~boundaries:sb key.(space_dim), 0))
    (Dist_array.entries iter)

(** 2D partitioning with caller-supplied space boundaries; time
    boundaries stay histogram-balanced (the distributed runtime keeps
    [time_parts] and the model fixed across a re-plan, so only the
    space cut moves). *)
let partition_2d_with ?shuffle_seed iter ~space_dim ~time_dim
    ~space_boundaries:sb ~time_parts =
  let t_counts = Partitioner.histogram iter ~dim:time_dim in
  let tb = Partitioner.balanced_ranges ~counts:t_counts ~parts:time_parts in
  let space_parts = Partitioner.num_parts sb in
  let time_parts = Partitioner.num_parts tb in
  build ?shuffle_seed ~space_parts ~time_parts ~space_boundaries:sb
    ~time_boundaries:(Some tb)
    ~classify:(fun key ->
      ( Partitioner.part_of ~boundaries:sb key.(space_dim),
        Partitioner.part_of ~boundaries:tb key.(time_dim) ))
    (Dist_array.entries iter)

(** Partition the image of the iteration space under a unimodular
    transformation [matrix]: transformed dim 0 is time, dim 1 is
    space.  Transformed coordinates may be negative; boundaries are
    computed over the shifted coordinate range.

    All dependences are carried by the outer (time) dimension, which
    means they may connect *consecutive* time values across arbitrary
    space partitions: time partitions must therefore be exact
    wavefronts (one partition per distinct transformed-time value) —
    grouping several values into one partition would let a block on one
    worker race with its same-range dependents on another.
    [time_parts] is accordingly ignored beyond sanity-capping. *)
let partition_unimodular ?shuffle_seed iter ~matrix ~space_parts
    ~time_parts =
  ignore time_parts;
  let entries = Dist_array.entries iter in
  let tcoords =
    Array.map
      (fun (key, _) -> Orion_analysis.Unimodular.mat_vec matrix key)
      entries
  in
  let extent dim =
    Array.fold_left
      (fun (lo, hi) c -> (min lo c.(dim), max hi c.(dim)))
      (max_int, min_int) tcoords
  in
  let t_lo, t_hi = extent 0 in
  let s_lo, s_hi = extent 1 in
  let count_along dim lo hi =
    let counts = Array.make (hi - lo + 1) 0 in
    Array.iter (fun c -> counts.(c.(dim) - lo) <- counts.(c.(dim) - lo) + 1) tcoords;
    counts
  in
  let sb =
    Partitioner.balanced_ranges
      ~counts:(count_along 1 s_lo s_hi)
      ~parts:space_parts
  in
  (* one time partition per distinct transformed-time value *)
  let tb = Array.init (t_hi - t_lo + 2) Fun.id in
  let space_parts = Partitioner.num_parts sb in
  let time_parts = Partitioner.num_parts tb in
  let idx = ref (-1) in
  build ?shuffle_seed ~space_parts ~time_parts ~space_boundaries:sb
    ~time_boundaries:(Some tb)
    ~classify:(fun _key ->
      incr idx;
      let c = tcoords.(!idx) in
      ( Partitioner.part_of ~boundaries:sb (c.(1) - s_lo),
        Partitioner.part_of ~boundaries:tb (c.(0) - t_lo) ))
    entries
