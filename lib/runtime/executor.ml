(** Distributed execution of scheduled loops (paper §4.3–4.4, Figs. 7–8).

    The executor really runs the loop body (so numeric results are
    exact for serializable schedules — the executed order is itself a
    valid serial order), while charging computation and communication
    to the simulated cluster's virtual clocks:

    - {b 1D}: each worker runs its space partition; global barrier.
    - {b ordered 2D}: wavefront over (space, time); a global step per
      anti-diagonal with a synchronization barrier (Fig. 7e).
    - {b unordered 2D}: workers start from different time indices and
      rotate partitions (Fig. 7f); with [pipeline_depth] > 1 each
      worker holds several time partitions and overlaps communication
      with computation (Fig. 8).

    Computation cost per block is *measured* (wall-clock of the real
    OCaml execution) and scaled by the cost model's language factor. *)

open Orion_sim

type 'v body = worker:int -> key:int array -> value:'v -> unit

type pass_stats = {
  sim_time : float;  (** cluster time consumed by this pass *)
  compute_seconds : float;  (** sum of per-block measured compute *)
  bytes_sent : float;
  entries_executed : int;
  steps : int;
}

let now_wall () = Unix.gettimeofday ()

(* Structured-log one completed pass; returns [st] so call sites can
   wrap their result expression. *)
let log_pass strategy (st : pass_stats) =
  if Log.enabled Log.Debug then
    Log.debug ~src:"executor"
      ~kv:
        [
          ("strategy", strategy);
          ("sim_time", Log.float st.sim_time);
          ("bytes", Log.float st.bytes_sent);
          ("entries", Log.int st.entries_executed);
          ("steps", Log.int st.steps);
        ]
      "pass complete";
  st


(* Execute one block, measuring real compute time; returns seconds. *)
let run_block (body : 'v body) ~worker (b : 'v Schedule.block) =
  let t0 = now_wall () in
  Array.iter (fun (key, v) -> body ~worker ~key ~value:v) b.Schedule.entries;
  now_wall () -. t0

(** Override for modeled (rather than measured) compute cost: seconds
    charged per entry.  Benchmarks that must mirror the paper's
    testbed speed use this; tests use measurement. *)
type compute_cost = Measured | Per_entry of float

let block_cost cost measured_seconds n_entries =
  match cost with
  | Measured -> measured_seconds
  | Per_entry c -> c *. float_of_int n_entries

(* ------------------------------------------------------------------ *)
(* 1D                                                                  *)
(* ------------------------------------------------------------------ *)

let run_1d cluster ?(compute = Measured) (sched : 'v Schedule.t) (body : 'v body)
    =
  let t_start = Cluster.now cluster in
  let bytes0 = cluster.Cluster.bytes_sent in
  let workers = Cluster.num_workers cluster in
  let compute_total = ref 0.0 in
  let executed = ref 0 in
  for s = 0 to sched.Schedule.space_parts - 1 do
    let w = s mod workers in
    let b = Schedule.block sched ~space:s ~time:0 in
    let measured = run_block body ~worker:w b in
    let secs = block_cost compute measured (Array.length b.Schedule.entries) in
    compute_total := !compute_total +. secs;
    executed := !executed + Array.length b.Schedule.entries;
    Cluster.compute cluster ~worker:w ~label:(Printf.sprintf "1d s%d" s) secs
  done;
  Cluster.barrier cluster ~label:"1d";
  log_pass "1d"
    {
      sim_time = Cluster.now cluster -. t_start;
      compute_seconds = !compute_total;
      bytes_sent = cluster.Cluster.bytes_sent -. bytes0;
      entries_executed = !executed;
      steps = 1;
    }

(* ------------------------------------------------------------------ *)
(* Ordered 2D (wavefront)                                              *)
(* ------------------------------------------------------------------ *)

let run_2d_ordered cluster ?(compute = Measured) ?(rotated_label = "rotated")
    ~rotated_bytes_per_partition (sched : 'v Schedule.t) (body : 'v body) =
  let t_start = Cluster.now cluster in
  let bytes0 = cluster.Cluster.bytes_sent in
  let workers = Cluster.num_workers cluster in
  let sp = sched.Schedule.space_parts and tp = sched.Schedule.time_parts in
  let compute_total = ref 0.0 in
  let executed = ref 0 in
  (* one global step per anti-diagonal; lexicographic order of the
     original iteration space is preserved because block (s, t) runs
     only after (s, t-1) and (s-1, t) *)
  for g = 0 to sp + tp - 2 do
    for s = 0 to sp - 1 do
      let t = g - s in
      if t >= 0 && t < tp then begin
        let w = s mod workers in
        (* the time partition's data arrives from the worker that used
           it in the previous step; the previous step ended with a
           global barrier, so the transfer starts from aligned clocks
           and sits on this step's critical path (no overlap with
           computation — the ordering constraint forbids proceeding) *)
        if s > 0 && rotated_bytes_per_partition > 0.0 then begin
          let bytes = rotated_bytes_per_partition in
          let cost = cluster.Cluster.cost in
          cluster.Cluster.bytes_sent <- cluster.Cluster.bytes_sent +. bytes;
          (* marshal + unmarshal, then the wire transfer; the transfer
             is recorded at its start (the clock *before* the charge —
             recording after the charge used to shift the Fig.-12-style
             bandwidth series one transfer-window late) *)
          Cluster.compute_raw cluster ~worker:w ~category:Orion_sim.Trace.Marshal
            ~label:rotated_label
            (2.0 *. Orion_sim.Cost_model.marshal_time cost bytes);
          let start = Cluster.clock cluster w in
          Cluster.compute_raw cluster ~worker:w
            ~category:Orion_sim.Trace.Transfer ~label:rotated_label ~bytes
            (Orion_sim.Cost_model.transfer_time cost bytes
            +. cost.network_latency_sec);
          Orion_sim.Recorder.record cluster.Cluster.recorder ~start_sec:start
            ~duration_sec:(Orion_sim.Cost_model.transfer_time cost bytes)
            ~bytes
        end;
        let b = Schedule.block sched ~space:s ~time:t in
        let measured = run_block body ~worker:w b in
        let secs =
          block_cost compute measured (Array.length b.Schedule.entries)
        in
        compute_total := !compute_total +. secs;
        executed := !executed + Array.length b.Schedule.entries;
        Cluster.compute cluster ~worker:w
          ~label:(Printf.sprintf "2d-ordered s%d.t%d" s t)
          secs
      end
    done;
    Cluster.barrier cluster ~label:"2d-ordered"
  done;
  log_pass "2d-ordered"
    {
      sim_time = Cluster.now cluster -. t_start;
      compute_seconds = !compute_total;
      bytes_sent = cluster.Cluster.bytes_sent -. bytes0;
      entries_executed = !executed;
      steps = sp + tp - 1;
    }

(* ------------------------------------------------------------------ *)
(* Unordered 2D with pipelined rotation                                *)
(* ------------------------------------------------------------------ *)

(* Workers own [pipeline_depth] time partitions at a time; worker [w]
   executes time index (w * depth + step) mod time_parts at each step,
   then ships that partition's rotated data to its predecessor, who
   will need it [depth] steps later. *)
let run_2d_unordered cluster ?(compute = Measured) ?(pipeline_depth = 2)
    ?(rotated_label = "rotated") ~rotated_bytes_per_partition
    (sched : 'v Schedule.t) (body : 'v body) =
  let t_start = Cluster.now cluster in
  let bytes0 = cluster.Cluster.bytes_sent in
  let workers = Cluster.num_workers cluster in
  let sp = sched.Schedule.space_parts and tp = sched.Schedule.time_parts in
  (* space partitions are assigned round-robin; with sp = workers this
     is the 1:1 assignment of Fig. 8 *)
  let depth = max 1 (min pipeline_depth (tp / max sp 1)) in
  let arrivals = Array.make tp 0.0 (* partition ready time at new owner *) in
  let compute_total = ref 0.0 in
  let executed = ref 0 in
  (* serializable order: steps outer, space partitions inner — blocks
     within a step differ in both space and time index *)
  for step = 0 to tp - 1 do
    for s = 0 to sp - 1 do
      let w = s mod workers in
      let t = ((s * depth) + step) mod tp in
      (* the first [depth] partitions each worker touches are assigned
         to it up front; later ones must have arrived from the
         successor worker *)
      if step >= depth && rotated_bytes_per_partition > 0.0 then
        Cluster.recv cluster ~dst:w ~arrival:arrivals.(t)
          ~label:rotated_label ~bytes:rotated_bytes_per_partition
          ~cross_machine:
            (Cluster.machine_of cluster w
            <> Cluster.machine_of cluster ((s + 1) mod sp mod workers));
      let b = Schedule.block sched ~space:s ~time:t in
      let measured = run_block body ~worker:w b in
      let secs =
        block_cost compute measured (Array.length b.Schedule.entries)
      in
      compute_total := !compute_total +. secs;
      executed := !executed + Array.length b.Schedule.entries;
      Cluster.compute cluster ~worker:w
        ~label:(Printf.sprintf "2d-unordered s%d.t%d" s t)
        secs;
      (* ship the just-used partition to the predecessor worker *)
      if rotated_bytes_per_partition > 0.0 then begin
        let pred = (s - 1 + sp) mod sp mod workers in
        arrivals.(t) <-
          Cluster.send cluster ~src:w ~dst:pred ~label:rotated_label
            ~bytes:rotated_bytes_per_partition
      end
    done
  done;
  Cluster.barrier cluster ~label:"2d-unordered";
  log_pass "2d-unordered"
    {
      sim_time = Cluster.now cluster -. t_start;
      compute_seconds = !compute_total;
      bytes_sent = cluster.Cluster.bytes_sent -. bytes0;
      entries_executed = !executed;
      steps = tp;
    }

(* ------------------------------------------------------------------ *)
(* Time-major (for unimodular transforms)                              *)
(* ------------------------------------------------------------------ *)

(** After a unimodular transformation, all dependences are carried by
    the outermost (time) transformed dimension: time partitions run
    sequentially with a barrier, space partitions within one time
    partition run in parallel. *)
let run_time_major cluster ?(compute = Measured) ?(comm_label = "shifted")
    ~comm_bytes_per_step (sched : 'v Schedule.t) (body : 'v body) =
  let t_start = Cluster.now cluster in
  let bytes0 = cluster.Cluster.bytes_sent in
  let workers = Cluster.num_workers cluster in
  let compute_total = ref 0.0 in
  let executed = ref 0 in
  for t = 0 to sched.Schedule.time_parts - 1 do
    for s = 0 to sched.Schedule.space_parts - 1 do
      let w = s mod workers in
      let b = Schedule.block sched ~space:s ~time:t in
      let measured = run_block body ~worker:w b in
      let secs =
        block_cost compute measured (Array.length b.Schedule.entries)
      in
      compute_total := !compute_total +. secs;
      executed := !executed + Array.length b.Schedule.entries;
      Cluster.compute cluster ~worker:w
        ~label:(Printf.sprintf "time-major s%d.t%d" s t)
        secs;
      if comm_bytes_per_step > 0.0 then
        ignore
          (Cluster.send cluster ~src:w ~dst:((s + 1) mod workers)
             ~label:comm_label ~bytes:comm_bytes_per_step)
    done;
    Cluster.barrier cluster ~label:"time-major"
  done;
  log_pass "time-major"
    {
      sim_time = Cluster.now cluster -. t_start;
      compute_seconds = !compute_total;
      bytes_sent = cluster.Cluster.bytes_sent -. bytes0;
      entries_executed = !executed;
      steps = sched.Schedule.time_parts;
    }

(* ------------------------------------------------------------------ *)
(* Serial reference                                                    *)
(* ------------------------------------------------------------------ *)

(** Run all entries on worker 0 (the serial baseline).  [shuffle_seed]
    randomizes the sample order as serial SGD training would. *)
let run_serial cluster ?(compute = Measured) ?shuffle_seed
    (iter : 'v Orion_dsm.Dist_array.t) (body : 'v body) =
  let t_start = Cluster.now cluster in
  let t0 = now_wall () in
  let n = ref 0 in
  (match shuffle_seed with
  | Some seed ->
      let entries = Orion_dsm.Dist_array.entries iter in
      Schedule.shuffle_in_place ~seed entries;
      Array.iter
        (fun (key, v) ->
          incr n;
          body ~worker:0 ~key ~value:v)
        entries
  | None ->
      Orion_dsm.Dist_array.iter
        (fun key v ->
          incr n;
          body ~worker:0 ~key ~value:v)
        iter);
  let measured = now_wall () -. t0 in
  let secs = block_cost compute measured !n in
  Cluster.compute cluster ~worker:0 ~label:"serial" secs;
  Cluster.advance_all cluster ~label:"serial" (Cluster.clock cluster 0);
  log_pass "serial"
    {
      sim_time = Cluster.now cluster -. t_start;
      compute_seconds = secs;
      bytes_sent = 0.0;
      entries_executed = !n;
      steps = 1;
    }
