(** Real multicore execution of a schedule on a pool of OCaml 5
    {!Domain}s.

    The simulated executors in {!Executor} walk a schedule's blocks
    sequentially and charge virtual time; this module executes the same
    blocks with *actual* parallelism while enforcing the same
    happens-before order that {!module:Executor} (and the race checker
    in [lib/verify]) model for each strategy:

    - {b 1D}: space partitions carry no cross-block dependences — every
      block is immediately ready; the pass ends with an implicit join.
    - {b ordered 2D}: block [(s, t)] waits for [(s-1, t)] and
      [(s, t-1)] — the dataflow form of the wavefront.  A 2D plan only
      exists when every dependence is carried within one space
      partition (same [s]) or one time partition (same [t]), and the
      two edges transitively order all same-[s] and all same-[t] pairs
      in lexicographic order, so serial (ordered-loop) semantics are
      preserved.
    - {b unordered 2D}: per-space-partition chains in pipeline-step
      order, plus the partition-rotation edge [(s, t) -> (s-1 mod sp,
      t)] that hands time partition [t] to the worker that uses it
      [depth] steps later — exactly the edges of
      [Race.M_2d_unordered].
    - {b time-major} (unimodular): dependences may connect consecutive
      transformed-time values across arbitrary space partitions, so
      every block of time partition [t] waits on all blocks of [t-1]
      (the barrier, as a dependence counter).

    Readiness is tracked with one {!Atomic} pending-predecessor counter
    per block (the "Atomic epoch counter per partition-window" design);
    a completed block batch-decrements its successors and {e chains
    directly into the first one it made ready} — only surplus ready
    blocks reach the shared pool, so a dependence chain costs no lock
    traffic at all.  Per-entry and steal accounting live in per-domain
    shards summed after the join; the hot loop touches no shared
    counter.  Work distribution is a small work-stealing pool: each
    domain owns a LIFO stack of ready blocks, pushes work it unlocks
    onto its own stack (locality), and steals from the other domains
    when its stack drains.  Idle domains block on a condition variable
    rather than spinning, so the pool degrades gracefully on machines
    with fewer cores than domains.

    The caller provides one loop-body closure {e per domain}: bodies
    typically close over a per-domain interpreter environment (see
    [Orion.Engine]), because {!Orion_lang.Interp.env} is single-writer
    by design. *)

type model =
  | M_1d
  | M_2d_ordered
  | M_2d_unordered of { depth : int }
  | M_time_major

let model_to_string = function
  | M_1d -> "1d"
  | M_2d_ordered -> "2d-ordered"
  | M_2d_unordered { depth } -> Printf.sprintf "2d-unordered(depth=%d)" depth
  | M_time_major -> "time-major"

(** The executor's effective pipeline depth for an unordered-2D pass
    (mirrors {!Executor.run_2d_unordered}). *)
let effective_depth ~pipeline_depth ~sp ~tp =
  max 1 (min pipeline_depth (tp / max sp 1))

(** The execution model [Orion.execute] uses for a plan's schedule. *)
let model_of_plan (plan : Orion_analysis.Plan.t) ~pipeline_depth ~sp ~tp =
  match plan.Orion_analysis.Plan.strategy with
  | Orion_analysis.Plan.One_d _ | Orion_analysis.Plan.Data_parallel -> M_1d
  | Orion_analysis.Plan.Two_d _ ->
      if plan.Orion_analysis.Plan.ordered then M_2d_ordered
      else M_2d_unordered { depth = effective_depth ~pipeline_depth ~sp ~tp }
  | Orion_analysis.Plan.Two_d_unimodular _ -> M_time_major

(** The sequential order in which the simulated executor visits blocks
    (one dependence-respecting linearization of the model). *)
let natural_order model ~sp ~tp =
  let out = ref [] in
  (match model with
  | M_1d ->
      for s = 0 to sp - 1 do
        out := (s, 0) :: !out
      done
  | M_2d_ordered ->
      for g = 0 to sp + tp - 2 do
        for s = 0 to sp - 1 do
          let time = g - s in
          if time >= 0 && time < tp then out := (s, time) :: !out
        done
      done
  | M_2d_unordered { depth } ->
      for step = 0 to tp - 1 do
        for s = 0 to sp - 1 do
          out := (s, ((s * depth) + step) mod tp) :: !out
        done
      done
  | M_time_major ->
      for time = 0 to tp - 1 do
        for s = 0 to sp - 1 do
          out := (s, time) :: !out
        done
      done);
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Dependence graph (immediate edges only; counters do the rest)       *)
(* ------------------------------------------------------------------ *)

(* Blocks are numbered s * tp + t.  [block_edges] enumerates every
   immediate happens-before edge of the model; the pool and the
   distributed runtime both consume exactly this list, so a schedule
   slice executed by a remote worker waits on the same predecessors a
   domain would. *)
let block_edges model ~sp ~tp : (int * int) list =
  let id s t = (s * tp) + t in
  let edges = ref [] in
  let edge src dst = edges := (src, dst) :: !edges in
  (match model with
  | M_1d -> ()
  | M_2d_ordered ->
      for s = 0 to sp - 1 do
        for t = 0 to tp - 1 do
          if s > 0 then edge (id (s - 1) t) (id s t);
          if t > 0 then edge (id s (t - 1)) (id s t)
        done
      done
  | M_2d_unordered { depth } ->
      (* per-space-partition chain in pipeline-step order *)
      for s = 0 to sp - 1 do
        for step = 0 to tp - 2 do
          edge
            (id s (((s * depth) + step) mod tp))
            (id s (((s * depth) + step + 1) mod tp))
        done
      done;
      (* rotation: after (s, t) runs at step k, time partition t is
         shipped onward and next used at step k+depth.  Chaining each
         time partition's blocks in (step, s) order yields exactly the
         rotation edges (s, t) -> (s-1 mod sp, t) in the canonical
         tp = sp*depth layout, and stays acyclic (steps never decrease
         along an edge) when the iteration space yields fewer time
         partitions than sp*depth — where the naive mod-sp rotation
         would wrap into an earlier step and deadlock the pool. *)
      let step_of s t = (((t - (s * depth)) mod tp) + tp) mod tp in
      for t = 0 to tp - 1 do
        let blocks = Array.init sp (fun s -> (step_of s t, s)) in
        Array.sort compare blocks;
        for i = 0 to sp - 2 do
          let _, s1 = blocks.(i) and _, s2 = blocks.(i + 1) in
          edge (id s1 t) (id s2 t)
        done
      done
  | M_time_major ->
      (* barrier between consecutive time partitions *)
      for t = 1 to tp - 1 do
        for s1 = 0 to sp - 1 do
          for s2 = 0 to sp - 1 do
            edge (id s1 (t - 1)) (id s2 t)
          done
        done
      done);
  List.rev !edges

let build_graph model ~sp ~tp =
  let n = sp * tp in
  let succs = Array.make n [] in
  let pending = Array.make n 0 in
  List.iter
    (fun (src, dst) ->
      succs.(src) <- dst :: succs.(src);
      pending.(dst) <- pending.(dst) + 1)
    (block_edges model ~sp ~tp);
  (succs, pending)

(* ------------------------------------------------------------------ *)
(* The pool                                                            *)
(* ------------------------------------------------------------------ *)

type stats = {
  domains : int;
  blocks_run : int;
  entries_run : int;
  steals : int;  (** ready blocks taken from another domain's stack *)
  wall_seconds : float;  (** real elapsed time of the parallel section *)
}

(** Execute [sched] under [model] on [domains] domains.  [bodies] must
    have at least [domains] elements; [bodies.(d)] is the loop body run
    by domain [d] (give each domain its own closure/state — see the
    module comment).  Blocks execute their entries in scheduled order;
    the pass returns only when every block has completed.  An exception
    raised by any body cancels the pass and is re-raised here.

    When [telemetry] is enabled (and sized for at least [domains]
    shards), each domain records into its own shard: a Compute span
    plus a measured-cost entry per block (tagged with [pass] and the
    block's space/time indices), an Idle span for each wait on the pool
    (labeled ["steal"] when it ended by taking another domain's work),
    and a Barrier_wait span labeled ["join"] for the final wait until
    the pass completes.  Disabled telemetry costs nothing — the hot
    path never reads the clock. *)
let run_schedule ?(telemetry = Orion_obs.Telemetry.disabled) ?(pass = 0)
    ~domains ~model (sched : 'v Schedule.t)
    ~(bodies : (key:int array -> value:'v -> unit) array) : stats =
  let sp = sched.Schedule.space_parts and tp = sched.Schedule.time_parts in
  let n = sp * tp in
  let domains = max 1 (min domains (Array.length bodies)) in
  let tel_on =
    Orion_obs.Telemetry.enabled telemetry
    && Orion_obs.Telemetry.workers telemetry >= domains
  in
  let tel_now () =
    if tel_on then Orion_obs.Telemetry.now telemetry else 0.0
  in
  let succs, pending0 = build_graph model ~sp ~tp in
  let pending = Array.map Atomic.make pending0 in
  let remaining = Atomic.make n in
  (* per-domain shards: each slot is written only by its own domain and
     summed after the join, so the per-entry hot loop touches no shared
     counter at all *)
  let entries_run = Array.make domains 0 in
  let steals = ref 0 (* only touched under [m] *) in
  (* shared pool state: per-domain LIFO stacks of ready block ids, all
     guarded by one mutex (blocks are coarse, contention is negligible
     at this granularity) *)
  let m = Mutex.create () in
  let cv = Condition.create () in
  let stacks = Array.make domains [] in
  let failed : exn option ref = ref None in
  let push_ready ~who ids =
    if ids <> [] then begin
      Mutex.lock m;
      stacks.(who) <- ids @ stacks.(who);
      Condition.broadcast cv;
      Mutex.unlock m
    end
  in
  let finished () = Atomic.get remaining = 0 in
  (* take own work first (LIFO), then steal from the other stacks; the
     flag says whether the block was stolen (for the wait-span label) *)
  let take who =
    match stacks.(who) with
    | id :: rest ->
        stacks.(who) <- rest;
        Some (id, false)
    | [] ->
        let found = ref None in
        let d = ref 1 in
        while !found = None && !d < domains do
          let v = (who + !d) mod domains in
          (match stacks.(v) with
          | id :: rest ->
              stacks.(v) <- rest;
              incr steals;
              found := Some (id, true)
          | [] -> ());
          incr d
        done;
        !found
  in
  (* Pop or steal the next ready block, blocking on the pool while
     empty.  The whole acquisition is one telemetry wait span on the
     calling domain's shard: Idle (labeled "steal" when it ended by
     taking another domain's work) when a block arrives, Barrier_wait
     "join" when the pass is over and the domain just waited for the
     stragglers. *)
  let next who =
    let wait_start = tel_now () in
    Mutex.lock m;
    let rec loop () =
      if !failed <> None || finished () then None
      else
        match take who with
        | Some r -> Some r
        | None ->
            Condition.wait cv m;
            loop ()
    in
    let r = loop () in
    Mutex.unlock m;
    if tel_on then begin
      let finish = tel_now () in
      match r with
      | Some (_, stolen) ->
          Orion_obs.Telemetry.span telemetry ~shard:who ~worker:who
            ~category:Orion_obs.Trace.Idle
            ?label:(if stolen then Some "steal" else None)
            ~start:wait_start ~finish
      | None ->
          Orion_obs.Telemetry.span telemetry ~shard:who ~worker:who
            ~category:Orion_obs.Trace.Barrier_wait ~label:"join"
            ~start:wait_start ~finish
    end;
    Option.map fst r
  in
  let fail e =
    Mutex.lock m;
    if !failed = None then failed := Some e;
    Condition.broadcast cv;
    Mutex.unlock m
  in
  (* Run one block and return the successors it made ready.  The
     entry loop accounts into the domain's private shard (one add per
     block, no shared counter), and the successor decrements are
     batched into a single filter pass over the edge list. *)
  let run_block who id =
    let space = id / tp and time = id mod tp in
    let b = Schedule.block sched ~space ~time in
    let body = bodies.(who) in
    let entries = b.Schedule.entries in
    let block_start = tel_now () in
    Array.iter (fun (key, value) -> body ~key ~value) entries;
    if tel_on then
      Orion_obs.Telemetry.block telemetry ~shard:who ~worker:who ~pass ~space
        ~time ~start:block_start ~finish:(tel_now ())
        ~entries:(Array.length entries);
    entries_run.(who) <- entries_run.(who) + Array.length entries;
    let ready =
      List.filter
        (fun succ -> Atomic.fetch_and_add pending.(succ) (-1) = 1)
        succs.(id)
    in
    if Atomic.fetch_and_add remaining (-1) = 1 then begin
      (* last block: wake everyone up to exit *)
      Mutex.lock m;
      Condition.broadcast cv;
      Mutex.unlock m
    end;
    ready
  in
  let worker who =
    (* Chain directly into the first successor each block unlocks —
       the common case in 2D schedules, where a block's completion
       readies exactly its chain successor — and publish only the
       surplus to the shared pool.  A long chain then costs zero
       mutex round-trips instead of one per block. *)
    let rec drain id =
      match run_block who id with
      | [] -> ()
      | next_id :: rest ->
          push_ready ~who rest;
          drain next_id
    in
    let rec loop () =
      match next who with
      | None -> ()
      | Some id ->
          (match drain id with () -> () | exception e -> fail e);
          loop ()
    in
    loop ()
  in
  (* seed the pool with every block that has no predecessors,
     round-robin across domains *)
  let seeds = Array.make domains [] in
  for id = n - 1 downto 0 do
    if Atomic.get pending.(id) = 0 then
      seeds.(id mod domains) <- id :: seeds.(id mod domains)
  done;
  Array.iteri (fun d ids -> stacks.(d) <- ids) seeds;
  let t0 = Orion_obs.Clock.now () in
  let spawned =
    Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  (* the calling domain is worker 0 *)
  worker 0;
  Array.iter Domain.join spawned;
  let wall = Orion_obs.Clock.elapsed t0 in
  (match !failed with Some e -> raise e | None -> ());
  {
    domains;
    blocks_run = n;
    entries_run = Array.fold_left ( + ) 0 entries_run;
    steals = !steals;
    wall_seconds = wall;
  }
