(** Distributed execution of scheduled loops (paper §4.3–4.4,
    Figs. 7–8).  The loop body really runs (serializable schedules
    execute in a dependence-respecting order, so numerics are exact);
    computation and communication are charged to the simulated
    cluster's virtual clocks. *)

type 'v body = worker:int -> key:int array -> value:'v -> unit

type pass_stats = {
  sim_time : float;
  compute_seconds : float;
  bytes_sent : float;
  entries_executed : int;
  steps : int;
}

(** [Measured] charges real wall-clock per block (scaled by the cost
    model's language factor); [Per_entry c] charges [c] seconds per
    iteration (calibrated benchmark mode). *)
type compute_cost = Measured | Per_entry of float

(** 1D: each worker runs its space partition; one global barrier. *)
val run_1d :
  Orion_sim.Cluster.t ->
  ?compute:compute_cost ->
  'v Schedule.t ->
  'v body ->
  pass_stats

(** Ordered 2D: wavefront over anti-diagonals with a barrier per step;
    rotated-partition transfers sit on the critical path (Fig. 7e).
    [rotated_label] names the rotated data in trace spans (e.g. the
    DistArray being shipped). *)
val run_2d_ordered :
  Orion_sim.Cluster.t ->
  ?compute:compute_cost ->
  ?rotated_label:string ->
  rotated_bytes_per_partition:float ->
  'v Schedule.t ->
  'v body ->
  pass_stats

(** Unordered 2D: workers start at different time indices and rotate
    partitions; [pipeline_depth] time partitions per worker overlap
    communication with computation (Figs. 7f and 8).  [rotated_label]
    names the rotated data in trace spans. *)
val run_2d_unordered :
  Orion_sim.Cluster.t ->
  ?compute:compute_cost ->
  ?pipeline_depth:int ->
  ?rotated_label:string ->
  rotated_bytes_per_partition:float ->
  'v Schedule.t ->
  'v body ->
  pass_stats

(** Sequential over time partitions (all dependences carried by the
    transformed outer dimension), parallel across space partitions. *)
val run_time_major :
  Orion_sim.Cluster.t ->
  ?compute:compute_cost ->
  ?comm_label:string ->
  comm_bytes_per_step:float ->
  'v Schedule.t ->
  'v body ->
  pass_stats

(** All entries on worker 0; [shuffle_seed] randomizes the sample order
    as serial SGD training would. *)
val run_serial :
  Orion_sim.Cluster.t ->
  ?compute:compute_cost ->
  ?shuffle_seed:int ->
  'v Orion_dsm.Dist_array.t ->
  'v body ->
  pass_stats
