(** Real multicore execution of a {!Schedule.t} on a work-stealing pool
    of OCaml 5 domains, enforcing each strategy's happens-before order
    with per-block atomic dependence counters.  See the implementation
    header for the per-model edge sets. *)

(** The happens-before model a strategy induces over schedule blocks
    (shared with the race checker in [lib/verify]). *)
type model =
  | M_1d  (** space partitions, one barrier at the end *)
  | M_2d_ordered  (** anti-diagonal wavefront, dataflow form *)
  | M_2d_unordered of { depth : int }  (** pipelined partition rotation *)
  | M_time_major  (** unimodular time loop, barrier per time step *)

val model_to_string : model -> string

(** The executor's effective pipeline depth for an unordered-2D pass. *)
val effective_depth : pipeline_depth:int -> sp:int -> tp:int -> int

(** The execution model [Orion.execute] uses for a plan's schedule. *)
val model_of_plan :
  Orion_analysis.Plan.t -> pipeline_depth:int -> sp:int -> tp:int -> model

(** The sequential order in which the simulated executor visits blocks
    (one dependence-respecting linearization of the model). *)
val natural_order : model -> sp:int -> tp:int -> (int * int) array

(** Every immediate happens-before edge [(src, dst)] between block ids
    (id = s * tp + t) under [model] — the exact edge set the domain
    pool's dependence counters and the distributed workers' rotation
    tokens enforce.  Acyclic for every model and shape. *)
val block_edges : model -> sp:int -> tp:int -> (int * int) list

type stats = {
  domains : int;
  blocks_run : int;
  entries_run : int;
  steals : int;  (** ready blocks taken from another domain's stack *)
  wall_seconds : float;  (** real elapsed time of the parallel section *)
}

(** [run_schedule ~domains ~model sched ~bodies] executes every block
    of [sched] with real parallelism under [model]'s happens-before
    order.  [bodies] needs at least [domains] elements; [bodies.(d)]
    runs on domain [d] (one closure per domain — interpreter
    environments are single-writer).  Returns after all blocks
    complete; an exception from any body cancels the pass and is
    re-raised.

    With [telemetry] enabled (sized for ≥ [domains] shards), each
    domain records into its own shard: a Compute span + measured-cost
    entry per block (tagged [pass] and the block's space/time indices),
    Idle spans for pool waits (labeled ["steal"] when resolved by
    stealing) and a Barrier_wait ["join"] span for the final wait.
    Disabled telemetry costs nothing on the hot path. *)
val run_schedule :
  ?telemetry:Orion_obs.Telemetry.t ->
  ?pass:int ->
  domains:int ->
  model:model ->
  'v Schedule.t ->
  bodies:(key:int array -> value:'v -> unit) array ->
  stats
