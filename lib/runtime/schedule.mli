(** Iteration-space partitioning into schedulable blocks (paper §4.3,
    Fig. 7): histogram-balanced range partitions along the plan's
    dimensions; unimodular plans partition the transformed coordinates
    with exact per-wavefront time partitions. *)

type 'v block = {
  space_idx : int;
  time_idx : int;  (** -1 for 1D blocks *)
  entries : (int array * 'v) array;
}

type 'v t = {
  space_parts : int;
  time_parts : int;  (** 1 for 1D *)
  blocks : 'v block array array;  (** indexed [space][time] *)
  space_boundaries : Orion_dsm.Partitioner.boundaries;
  time_boundaries : Orion_dsm.Partitioner.boundaries option;
}

val block : 'v t -> space:int -> time:int -> 'v block

(** Deterministic Fisher–Yates (SGD sample-order shuffling). *)
val shuffle_in_place : seed:int -> 'a array -> unit

(** Reshuffle every block's entries (per-epoch local shuffling). *)
val reshuffle : 'v t -> seed:int -> unit

val total_entries : 'v t -> int

(** Structural fingerprint (partition counts + every block's entry keys
    in scheduled order).  The distributed runtime compares the master's
    and each worker's independently compiled schedules before
    executing. *)
val fingerprint : 'v t -> int

val partition_1d :
  ?shuffle_seed:int ->
  'v Orion_dsm.Dist_array.t ->
  space_dim:int ->
  space_parts:int ->
  'v t

val partition_2d :
  ?shuffle_seed:int ->
  'v Orion_dsm.Dist_array.t ->
  space_dim:int ->
  time_dim:int ->
  space_parts:int ->
  time_parts:int ->
  'v t

(** 1D partitioning with caller-supplied space boundaries (adaptive
    re-planning).  Pass the same [shuffle_seed] the original compile
    used so fingerprints of independently rebuilt schedules agree. *)
val partition_1d_with :
  ?shuffle_seed:int ->
  'v Orion_dsm.Dist_array.t ->
  space_dim:int ->
  space_boundaries:Orion_dsm.Partitioner.boundaries ->
  'v t

(** 2D partitioning with caller-supplied space boundaries; time
    boundaries stay histogram-balanced over [time_parts]. *)
val partition_2d_with :
  ?shuffle_seed:int ->
  'v Orion_dsm.Dist_array.t ->
  space_dim:int ->
  time_dim:int ->
  space_boundaries:Orion_dsm.Partitioner.boundaries ->
  time_parts:int ->
  'v t

(** Partition the transformed iteration space: time = transformed dim
    0 with one partition per distinct value (dependences may connect
    consecutive values across space partitions), space = transformed
    dim 1.  [time_parts] is ignored. *)
val partition_unimodular :
  ?shuffle_seed:int ->
  'v Orion_dsm.Dist_array.t ->
  matrix:Orion_analysis.Unimodular.matrix ->
  space_parts:int ->
  time_parts:int ->
  'v t
