(* Tests for schedules and the executor: partition correctness,
   serializability invariants, and the time-accounting shapes the paper
   reports (unordered 2D beats ordered 2D; speedup with workers). *)

open Orion_dsm
open Orion_runtime
module Cluster = Orion_sim.Cluster
module Cost_model = Orion_sim.Cost_model

let mk_cluster ?(machines = 2) ?(wpm = 2) () =
  Cluster.create ~num_machines:machines ~workers_per_machine:wpm
    ~cost:Cost_model.default ()

(* a deterministic pseudo-random sparse iteration space *)
let mk_iter ?(rows = 40) ?(cols = 30) ?(n = 400) () =
  let n = min n (rows * cols / 2) in
  let entries = ref [] in
  let rng = Orion_data.Rng.create 123456789 in
  let rand bound = Orion_data.Rng.int rng bound in
  let seen = Hashtbl.create 64 in
  let added = ref 0 in
  while !added < n do
    let i = rand rows and j = rand cols in
    if not (Hashtbl.mem seen (i, j)) then begin
      Hashtbl.add seen (i, j) ();
      entries := ([| i; j |], float_of_int ((i * cols) + j)) :: !entries;
      incr added
    end
  done;
  Dist_array.of_entries ~name:"iter" ~dims:[| rows; cols |] ~default:0.0
    !entries

(* ------------------------------------------------------------------ *)
(* Schedule                                                            *)
(* ------------------------------------------------------------------ *)

let test_partition_2d_covers_all () =
  let iter = mk_iter () in
  let s =
    Schedule.partition_2d iter ~space_dim:0 ~time_dim:1 ~space_parts:4
      ~time_parts:8
  in
  Alcotest.(check int) "all entries partitioned" (Dist_array.count iter)
    (Schedule.total_entries s)

let test_partition_2d_respects_boundaries () =
  let iter = mk_iter () in
  let s =
    Schedule.partition_2d iter ~space_dim:0 ~time_dim:1 ~space_parts:4
      ~time_parts:4
  in
  let sb = s.Schedule.space_boundaries in
  let tb = Option.get s.Schedule.time_boundaries in
  Array.iteri
    (fun si row ->
      Array.iteri
        (fun ti b ->
          Array.iter
            (fun (key, _) ->
              Alcotest.(check bool) "row in space range" true
                (key.(0) >= sb.(si) && key.(0) < sb.(si + 1));
              Alcotest.(check bool) "col in time range" true
                (key.(1) >= tb.(ti) && key.(1) < tb.(ti + 1)))
            b.Schedule.entries)
        row)
    s.Schedule.blocks

let test_partition_1d_balanced_under_skew () =
  (* all entries in few rows: histogram partitioning must still spread
     entries across partitions reasonably *)
  let entries =
    List.concat_map
      (fun i -> List.init 50 (fun j -> ([| i; j |], 1.0)))
      [ 0; 1; 2; 3 ]
  in
  let iter =
    Dist_array.of_entries ~name:"skew" ~dims:[| 100; 50 |] ~default:0.0
      entries
  in
  let s = Schedule.partition_1d iter ~space_dim:0 ~space_parts:4 in
  let sizes =
    Array.map
      (fun row -> Array.length row.(0).Schedule.entries)
      s.Schedule.blocks
  in
  Alcotest.(check int) "covers all" 200 (Array.fold_left ( + ) 0 sizes);
  Alcotest.(check bool) "no partition empty" true
    (Array.for_all (fun n -> n > 0) sizes)

let test_partition_unimodular_covers_all () =
  let iter = mk_iter ~rows:20 ~cols:20 ~n:150 () in
  (* wavefront matrix for deps {(1,-1),(0,1)} *)
  let matrix =
    match
      Orion_analysis.Unimodular.find_transform ~ndims:2
        [
          [| Orion_analysis.Depvec.Fin 1; Orion_analysis.Depvec.Fin (-1) |];
          [| Orion_analysis.Depvec.Fin 0; Orion_analysis.Depvec.Fin 1 |];
        ]
    with
    | Some m -> m
    | None -> Alcotest.fail "no transform"
  in
  let s =
    Schedule.partition_unimodular iter ~matrix ~space_parts:4 ~time_parts:6
  in
  Alcotest.(check int) "all entries" (Dist_array.count iter)
    (Schedule.total_entries s)

(* ------------------------------------------------------------------ *)
(* Executor: correctness                                               *)
(* ------------------------------------------------------------------ *)

let run_and_collect run =
  let seen : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let body ~worker:_ ~key ~value:_ =
    let k = (key.(0), key.(1)) in
    Hashtbl.replace seen k (1 + Option.value ~default:0 (Hashtbl.find_opt seen k))
  in
  let stats = run body in
  (seen, stats)

let test_executor_runs_each_entry_once () =
  let iter = mk_iter () in
  let cluster = mk_cluster () in
  let sched =
    Schedule.partition_2d iter ~space_dim:0 ~time_dim:1 ~space_parts:4
      ~time_parts:8
  in
  let seen, stats =
    run_and_collect (fun body ->
        Executor.run_2d_unordered cluster ~rotated_bytes_per_partition:100.0
          sched body)
  in
  Alcotest.(check int) "entries executed" (Dist_array.count iter)
    stats.Executor.entries_executed;
  Hashtbl.iter
    (fun _ n -> Alcotest.(check int) "exactly once" 1 n)
    seen;
  Alcotest.(check int) "all keys seen" (Dist_array.count iter)
    (Hashtbl.length seen)

let test_executor_1d_and_ordered_run_all () =
  let iter = mk_iter () in
  let n = Dist_array.count iter in
  let c1 = mk_cluster () in
  let s1 = Schedule.partition_1d iter ~space_dim:0 ~space_parts:4 in
  let _, st1 = run_and_collect (fun b -> Executor.run_1d c1 s1 b) in
  Alcotest.(check int) "1d all" n st1.Executor.entries_executed;
  let c2 = mk_cluster () in
  let s2 =
    Schedule.partition_2d iter ~space_dim:0 ~time_dim:1 ~space_parts:4
      ~time_parts:4
  in
  let _, st2 =
    run_and_collect (fun b ->
        Executor.run_2d_ordered c2 ~rotated_bytes_per_partition:10.0 s2 b)
  in
  Alcotest.(check int) "ordered all" n st2.Executor.entries_executed;
  let c3 = mk_cluster () in
  let _, st3 =
    run_and_collect (fun b ->
        Executor.run_time_major c3 ~comm_bytes_per_step:10.0 s2 b)
  in
  Alcotest.(check int) "time-major all" n st3.Executor.entries_executed

(* serializability invariant of the unordered rotation: within one
   step, concurrently-executing blocks touch disjoint space AND time
   partitions *)
let test_unordered_step_blocks_disjoint () =
  let sp = 6 and tp = 12 and depth = 2 in
  for step = 0 to tp - 1 do
    let times = List.init sp (fun s -> ((s * depth) + step) mod tp) in
    let distinct = List.sort_uniq compare times in
    Alcotest.(check int)
      (Printf.sprintf "step %d time indices distinct" step)
      sp (List.length distinct)
  done

(* running SGD-MF via the unordered 2D schedule must produce the same
   quality as a serial pass: the schedule is serializable, so the loss
   after training must be as low as the serial one's *)
let mf_loss ratings w h rank =
  Dist_array.fold
    (fun acc key v ->
      let pred = ref 0.0 in
      for k = 0 to rank - 1 do
        pred := !pred +. (w.(k).(key.(0)) *. h.(k).(key.(1)))
      done;
      acc +. ((v -. !pred) ** 2.0))
    0.0 ratings

let mf_body ~rank ~step_size w h ~worker:_ ~key ~value =
  let i = key.(0) and j = key.(1) in
  let pred = ref 0.0 in
  for k = 0 to rank - 1 do
    pred := !pred +. (w.(k).(i) *. h.(k).(j))
  done;
  let diff = value -. !pred in
  for k = 0 to rank - 1 do
    let wk = w.(k).(i) and hk = h.(k).(j) in
    w.(k).(i) <- wk +. (2.0 *. step_size *. diff *. hk);
    h.(k).(j) <- hk +. (2.0 *. step_size *. diff *. wk)
  done

let mk_ratings rows cols rank =
  (* planted low-rank matrix *)
  let state = ref 42 in
  let randf () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int (!state mod 1000) /. 1000.0
  in
  let wt = Array.init rank (fun _ -> Array.init rows (fun _ -> randf ())) in
  let ht = Array.init rank (fun _ -> Array.init cols (fun _ -> randf ())) in
  let entries = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if (i + j) mod 3 = 0 then begin
        let v = ref 0.0 in
        for k = 0 to rank - 1 do
          v := !v +. (wt.(k).(i) *. ht.(k).(j))
        done;
        entries := ([| i; j |], !v) :: !entries
      end
    done
  done;
  Dist_array.of_entries ~name:"ratings" ~dims:[| rows; cols |] ~default:0.0
    !entries

let test_scheduled_mf_matches_serial_quality () =
  let rows = 30 and cols = 24 and rank = 4 in
  let ratings = mk_ratings rows cols rank in
  let train run_pass =
    let w = Array.init rank (fun _ -> Array.make rows 0.1) in
    let h = Array.init rank (fun _ -> Array.make cols 0.1) in
    for _ = 1 to 15 do
      run_pass (mf_body ~rank ~step_size:0.05 w h)
    done;
    mf_loss ratings w h rank
  in
  let serial_loss =
    train (fun body ->
        Dist_array.iter (fun key v -> body ~worker:0 ~key ~value:v) ratings)
  in
  let cluster = mk_cluster () in
  let sched =
    Schedule.partition_2d ratings ~space_dim:0 ~time_dim:1 ~space_parts:4
      ~time_parts:8
  in
  let sched_loss =
    train (fun body ->
        ignore
          (Executor.run_2d_unordered cluster ~rotated_bytes_per_partition:0.0
             sched body))
  in
  let initial =
    let w = Array.init rank (fun _ -> Array.make rows 0.1) in
    let h = Array.init rank (fun _ -> Array.make cols 0.1) in
    mf_loss ratings w h rank
  in
  Alcotest.(check bool)
    (Printf.sprintf "scheduled (%.4f) within 10%% of serial (%.4f), initial %.4f"
       sched_loss serial_loss initial)
    true
    (sched_loss < serial_loss *. 1.1 +. 1e-9 && sched_loss < initial /. 5.0)

(* ------------------------------------------------------------------ *)
(* Executor: time accounting shapes                                    *)
(* ------------------------------------------------------------------ *)

let test_unordered_faster_than_ordered () =
  (* Table 3's shape: with modeled per-entry cost and rotated data,
     relaxing the ordering wins by ~2x *)
  let iter = mk_iter ~rows:64 ~cols:64 ~n:2000 () in
  let body ~worker:_ ~key:_ ~value:_ = () in
  let per_entry = Executor.Per_entry 1e-4 in
  let rot = 1e6 in
  let c_ord = mk_cluster ~machines:4 ~wpm:1 () in
  let s_ord =
    Schedule.partition_2d iter ~space_dim:0 ~time_dim:1 ~space_parts:4
      ~time_parts:4
  in
  let st_ord =
    Executor.run_2d_ordered c_ord ~compute:per_entry
      ~rotated_bytes_per_partition:rot s_ord body
  in
  let c_un = mk_cluster ~machines:4 ~wpm:1 () in
  let s_un =
    Schedule.partition_2d iter ~space_dim:0 ~time_dim:1 ~space_parts:4
      ~time_parts:8
  in
  let st_un =
    Executor.run_2d_unordered c_un ~compute:per_entry ~pipeline_depth:2
      ~rotated_bytes_per_partition:(rot /. 2.0) s_un body
  in
  Alcotest.(check bool)
    (Printf.sprintf "unordered (%.4fs) beats ordered (%.4fs)"
       st_un.Executor.sim_time st_ord.Executor.sim_time)
    true
    (st_un.Executor.sim_time < st_ord.Executor.sim_time)

let test_more_workers_faster () =
  (* Fig 9a's shape: scaling workers reduces time per pass *)
  let iter = mk_iter ~rows:128 ~cols:128 ~n:4000 () in
  let body ~worker:_ ~key:_ ~value:_ = () in
  let per_entry = Executor.Per_entry 1e-4 in
  let time_for workers =
    let c = mk_cluster ~machines:workers ~wpm:1 () in
    let s =
      Schedule.partition_2d iter ~space_dim:0 ~time_dim:1 ~space_parts:workers
        ~time_parts:(workers * 2)
    in
    (Executor.run_2d_unordered c ~compute:per_entry
       ~rotated_bytes_per_partition:1000.0 s body)
      .Executor.sim_time
  in
  let t2 = time_for 2 and t8 = time_for 8 in
  Alcotest.(check bool)
    (Printf.sprintf "8 workers (%.4fs) faster than 2 (%.4fs)" t8 t2)
    true (t8 < t2)

let test_serial_runs_on_worker_zero () =
  let iter = mk_iter ~n:100 () in
  let c = mk_cluster () in
  let st =
    Executor.run_serial c ~compute:(Executor.Per_entry 1e-3) iter
      (fun ~worker ~key:_ ~value:_ ->
        Alcotest.(check int) "worker 0" 0 worker)
  in
  Alcotest.(check int) "all entries" 100 st.Executor.entries_executed;
  Alcotest.(check (float 1e-9)) "time = n*cost" 0.1 st.Executor.sim_time

let test_measured_compute_positive () =
  let iter = mk_iter ~n:200 () in
  let c = mk_cluster () in
  let s = Schedule.partition_1d iter ~space_dim:0 ~space_parts:4 in
  let st =
    Executor.run_1d c s (fun ~worker:_ ~key:_ ~value:_ -> ignore (sin 1.0))
  in
  Alcotest.(check bool) "measured compute > 0" true
    (st.Executor.compute_seconds > 0.0)

(* ------------------------------------------------------------------ *)
(* More schedule properties                                            *)
(* ------------------------------------------------------------------ *)

let test_shuffle_preserves_entries_qcheck () =
  QCheck.Test.make ~count:200 ~name:"shuffle is a permutation"
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      let b = Array.copy a in
      Schedule.shuffle_in_place ~seed b;
      List.sort compare (Array.to_list a)
      = List.sort compare (Array.to_list b))

let test_reshuffle_preserves_blocks () =
  let iter = mk_iter () in
  let s =
    Schedule.partition_2d ~shuffle_seed:1 iter ~space_dim:0 ~time_dim:1
      ~space_parts:4 ~time_parts:8
  in
  let sorted_block b =
    List.sort compare (Array.to_list b.Schedule.entries)
  in
  let before =
    Array.map (fun row -> Array.map sorted_block row) s.Schedule.blocks
  in
  Schedule.reshuffle s ~seed:99;
  let after =
    Array.map (fun row -> Array.map sorted_block row) s.Schedule.blocks
  in
  Alcotest.(check bool) "same entries per block" true (before = after);
  Alcotest.(check int) "total unchanged" (Dist_array.count iter)
    (Schedule.total_entries s)

let test_shuffled_schedule_covers_all () =
  let iter = mk_iter () in
  let with_shuffle =
    Schedule.partition_2d ~shuffle_seed:5 iter ~space_dim:0 ~time_dim:1
      ~space_parts:3 ~time_parts:6
  in
  let without =
    Schedule.partition_2d iter ~space_dim:0 ~time_dim:1 ~space_parts:3
      ~time_parts:6
  in
  Alcotest.(check int) "same totals" (Schedule.total_entries without)
    (Schedule.total_entries with_shuffle)

let test_unimodular_time_partitions_are_exact () =
  (* each time partition must contain exactly one transformed-time
     value — grouping would allow intra-partition cross-space deps *)
  let iter = mk_iter ~rows:15 ~cols:15 ~n:100 () in
  let matrix = [| [| 2; 1 |]; [| -1; 0 |] |] in
  let s = Schedule.partition_unimodular iter ~matrix ~space_parts:4 ~time_parts:3 in
  Array.iter
    (fun row ->
      Array.iter
        (fun b ->
          let tvals =
            Array.to_list b.Schedule.entries
            |> List.map (fun (key, _) ->
                   (Orion_analysis.Unimodular.mat_vec matrix key).(0))
            |> List.sort_uniq compare
          in
          Alcotest.(check bool) "at most one t value per block" true
            (List.length tvals <= 1))
        row)
    s.Schedule.blocks

let test_pipeline_depth_reduces_wait () =
  (* deeper pipelining hides more of the rotation latency *)
  let iter = mk_iter ~rows:64 ~cols:64 ~n:2000 () in
  let body ~worker:_ ~key:_ ~value:_ = () in
  let time_for depth =
    let c = mk_cluster ~machines:4 ~wpm:1 () in
    let s =
      Schedule.partition_2d iter ~space_dim:0 ~time_dim:1 ~space_parts:4
        ~time_parts:(4 * depth)
    in
    (Executor.run_2d_unordered c ~compute:(Executor.Per_entry 5e-6)
       ~pipeline_depth:depth ~rotated_bytes_per_partition:2e5 s body)
      .Executor.sim_time
  in
  let t1 = time_for 1 and t2 = time_for 2 in
  Alcotest.(check bool)
    (Printf.sprintf "depth 2 (%.5f) <= depth 1 (%.5f)" t2 t1)
    true (t2 <= t1 +. 1e-12)

let test_empty_blocks_are_fine () =
  (* an iteration space much smaller than the partition grid leaves
     many empty blocks; execution must still cover everything *)
  let iter =
    Dist_array.of_entries ~name:"tiny" ~dims:[| 100; 100 |] ~default:0.0
      [ ([| 3; 7 |], 1.0); ([| 90; 90 |], 2.0) ]
  in
  let c = mk_cluster () in
  let s =
    Schedule.partition_2d iter ~space_dim:0 ~time_dim:1 ~space_parts:4
      ~time_parts:8
  in
  let n = ref 0 in
  let stats =
    Executor.run_2d_unordered c ~rotated_bytes_per_partition:10.0 s
      (fun ~worker:_ ~key:_ ~value:_ -> incr n)
  in
  Alcotest.(check int) "both entries" 2 !n;
  Alcotest.(check int) "stats agree" 2 stats.Executor.entries_executed

let test_single_worker_cluster () =
  (* degenerate cluster: everything runs on worker 0, still correct *)
  let iter = mk_iter ~n:50 () in
  let c = mk_cluster ~machines:1 ~wpm:1 () in
  let s =
    Schedule.partition_2d iter ~space_dim:0 ~time_dim:1 ~space_parts:1
      ~time_parts:2
  in
  let stats =
    Executor.run_2d_unordered c ~rotated_bytes_per_partition:10.0 s
      (fun ~worker ~key:_ ~value:_ ->
        Alcotest.(check int) "worker 0" 0 worker)
  in
  Alcotest.(check int) "covers all" 50 stats.Executor.entries_executed

let test_ordered_transfer_recorded_at_start () =
  (* regression: the rotated-partition transfer used to be recorded
     *after* Cluster.compute_raw had advanced the worker's clock past
     it, binning the bytes one transfer-window late in the Fig.-12
     bandwidth series *)
  let cost =
    {
      Cost_model.default with
      network_bandwidth_bytes_per_sec = 1.0;
      network_latency_sec = 0.0;
      marshal_cost_sec_per_byte = 0.0;
      barrier_cost_sec = 0.0;
    }
  in
  let recorder = Orion_sim.Recorder.create ~bin_width_sec:1.0 () in
  let cluster =
    Cluster.create ~recorder ~num_machines:2 ~workers_per_machine:1 ~cost ()
  in
  let iter =
    Dist_array.of_entries ~name:"iter" ~dims:[| 2; 2 |] ~default:0.0
      [ ([| 0; 0 |], 1.0); ([| 1; 1 |], 2.0) ]
  in
  let s =
    Schedule.partition_2d iter ~space_dim:0 ~time_dim:1 ~space_parts:2
      ~time_parts:1
  in
  ignore
    (Executor.run_2d_ordered cluster ~compute:(Executor.Per_entry 0.0)
       ~rotated_bytes_per_partition:1.5 s
       (fun ~worker:_ ~key:_ ~value:_ -> ()));
  (* exactly one 1.5-byte rotation (space partition 1), at 1 B/s,
     starting from an aligned clock of 0: 1 byte lands in bin [0,1) and
     0.5 in bin [1,2).  The pre-fix code recorded the whole transfer at
     its *end* (t = 1.5), leaving bin 0 empty. *)
  let series = Orion_sim.Recorder.series recorder in
  Alcotest.(check (float 1e-9)) "bin 0 has the start" 1.0 series.(0);
  Alcotest.(check (float 1e-9)) "bin 1 has the tail" 0.5 series.(1);
  (* the trace span agrees with the recorder *)
  let transfers =
    Array.to_list (Orion_sim.Trace.spans cluster.Cluster.trace)
    |> List.filter (fun sp ->
           sp.Orion_sim.Trace.category = Orion_sim.Trace.Transfer)
  in
  match transfers with
  | [ sp ] ->
      Alcotest.(check (float 1e-9)) "span starts pre-advance" 0.0
        sp.Orion_sim.Trace.start_sec;
      Alcotest.(check (float 1e-9)) "span duration" 1.5
        sp.Orion_sim.Trace.duration_sec;
      Alcotest.(check (float 1e-9)) "span bytes" 1.5 sp.Orion_sim.Trace.bytes
  | l ->
      Alcotest.failf "expected exactly one transfer span, got %d"
        (List.length l)

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "runtime"
    [
      ( "schedule",
        [
          tc "2d covers all" `Quick test_partition_2d_covers_all;
          tc "2d respects boundaries" `Quick test_partition_2d_respects_boundaries;
          tc "1d balanced under skew" `Quick test_partition_1d_balanced_under_skew;
          tc "unimodular covers all" `Quick test_partition_unimodular_covers_all;
        ] );
      ( "executor",
        [
          tc "each entry once" `Quick test_executor_runs_each_entry_once;
          tc "1d/ordered/time-major all" `Quick test_executor_1d_and_ordered_run_all;
          tc "step blocks disjoint" `Quick test_unordered_step_blocks_disjoint;
          tc "scheduled MF quality" `Quick test_scheduled_mf_matches_serial_quality;
        ] );
      ( "timing",
        [
          tc "unordered beats ordered" `Quick test_unordered_faster_than_ordered;
          tc "more workers faster" `Quick test_more_workers_faster;
          tc "serial on worker 0" `Quick test_serial_runs_on_worker_zero;
          tc "measured compute" `Quick test_measured_compute_positive;
          tc "ordered transfer recorded at start" `Quick
            test_ordered_transfer_recorded_at_start;
        ] );
      ( "properties",
        [
          qc (test_shuffle_preserves_entries_qcheck ());
          tc "reshuffle preserves blocks" `Quick test_reshuffle_preserves_blocks;
          tc "shuffled covers all" `Quick test_shuffled_schedule_covers_all;
          tc "unimodular exact time parts" `Quick
            test_unimodular_time_partitions_are_exact;
          tc "pipeline depth reduces wait" `Quick test_pipeline_depth_reduces_wait;
          tc "empty blocks" `Quick test_empty_blocks_are_fine;
          tc "single worker" `Quick test_single_worker_cluster;
        ] );
    ]
