(* Tests for analysis explainability: the golden Plan.explain panels,
   the recorded provenance (dependence trace + strategy decision tree),
   and the Explain text/JSON renderings across all four strategies. *)

open Orion_analysis

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_contains what report sub =
  Alcotest.(check bool)
    (Printf.sprintf "%s contains %S" what sub)
    true
    (contains ~sub report)

let parse_loop src =
  match Orion_lang.Parser.parse_program src with
  | [ ({ Orion_lang.Ast.sk = Orion_lang.Ast.For _; _ } as stmt) ] -> stmt
  | _ -> Alcotest.fail "expected a single for-loop"

let loop_of_body ?(ordered = false) ?(arr_dims = 2) body_src ~dist_vars
    ~buffered =
  let ann = if ordered then "@parallel_for ordered" else "@parallel_for" in
  let src = Printf.sprintf "%s for (key, v) in data\n%s\nend" ann body_src in
  Refs.analyze_loop ~dist_vars:("data" :: dist_vars) ~buffered_arrays:buffered
    ~iter_space_ndims:arr_dims (parse_loop src)

(* --- the four strategy fixtures ----------------------------------- *)

let plan_1d () =
  let info =
    loop_of_body "A[key[1]] = A[key[1]] + v" ~dist_vars:[ "A" ] ~buffered:[]
  in
  let dims = function
    | "data" -> Some [| 100; 80 |]
    | "A" -> Some [| 100 |]
    | _ -> None
  in
  Plan.decide info ~array_dims:dims ~iter_count:8000.0

let mf_loop_src =
  {|
@parallel_for for (key, rv) in ratings
  W_row = W[:, key[1]]
  H_row = H[:, key[2]]
  pred = dot(W_row, H_row)
  diff = rv - pred
  W_grad = -2.0 * diff * H_row
  H_grad = -2.0 * diff * W_row
  W[:, key[1]] = W_row - W_grad * step_size
  H[:, key[2]] = H_row - H_grad * step_size
end
|}

let plan_2d () =
  let info =
    Refs.analyze_loop
      ~dist_vars:[ "ratings"; "W"; "H" ]
      ~buffered_arrays:[] ~iter_space_ndims:2 (parse_loop mf_loop_src)
  in
  let dims = function
    | "W" -> Some [| 100; 4000 |]
    | "H" -> Some [| 100; 3000 |]
    | "ratings" -> Some [| 4000; 3000 |]
    | _ -> None
  in
  Plan.decide info ~array_dims:dims ~iter_count:100000.0

let plan_unimodular () =
  let info =
    loop_of_body ~ordered:true
      "A[key[1], key[2]] = A[key[1] - 1, key[2] + 1] + A[key[1], key[2] - 1]"
      ~dist_vars:[ "A" ] ~buffered:[]
  in
  let dims = function
    | "data" | "A" -> Some [| 60; 60 |]
    | _ -> None
  in
  Plan.decide info ~array_dims:dims ~iter_count:3600.0

let plan_data_parallel () =
  let info =
    loop_of_body ~arr_dims:1 "i = int(v)\nw[i] = w[i] + 1.0"
      ~dist_vars:[ "w" ] ~buffered:[]
  in
  let dims = function
    | "data" -> Some [| 5000 |]
    | "w" -> Some [| 300 |]
    | _ -> None
  in
  Plan.decide info ~array_dims:dims ~iter_count:5000.0

(* --- golden Plan.explain panels ----------------------------------- *)

let golden_1d =
  String.concat "\n"
    [
      "Loop information";
      "  Iteration space: data (2 dims)";
      "  Loop index vector: key";
      "  Iteration ordering: unordered";
      "  DistArray write A[key[1]]";
      "  DistArray read A[key[1]]";
      "  Inherited variables: ";
      "Dependence vectors";
      "  (0, inf)";
      "Strategy: 1D (space dim 0)";
      "Placements";
      "  A: local, range-partitioned by dim 0";
      "";
    ]

let golden_2d =
  String.concat "\n"
    [
      "Loop information";
      "  Iteration space: ratings (2 dims)";
      "  Loop index vector: key";
      "  Iteration ordering: unordered";
      "  DistArray read W[:, key[1]]";
      "  DistArray read H[:, key[2]]";
      "  DistArray write W[:, key[1]]";
      "  DistArray write H[:, key[2]]";
      "  Inherited variables: step_size";
      "Dependence vectors";
      "  (inf, 0)";
      "  (0, inf)";
      "Strategy: 2D (space dim 0, time dim 1)";
      "Placements";
      "  H: rotated, range-partitioned by dim 1";
      "  W: local, range-partitioned by dim 1";
      "";
    ]

let golden_unimodular =
  String.concat "\n"
    [
      "Loop information";
      "  Iteration space: data (2 dims)";
      "  Loop index vector: key";
      "  Iteration ordering: ordered";
      "  DistArray write A[key[1], key[2]]";
      "  DistArray read A[key[1]-1, key[2]+1]";
      "  DistArray read A[key[1], key[2]-1]";
      "  Inherited variables: ";
      "Dependence vectors";
      "  (1, -1)";
      "  (0, 1)";
      "Strategy: 2D w/ unimodular T=[[2, 1]; [-1, 0]] (space dim 1, time dim 0)";
      "Placements";
      "  A: server-hosted";
      "";
    ]

let golden_data_parallel =
  String.concat "\n"
    [
      "Loop information";
      "  Iteration space: data (1 dims)";
      "  Loop index vector: key";
      "  Iteration ordering: unordered";
      "  DistArray write w[?]";
      "  DistArray read w[?]";
      "  Inherited variables: ";
      "Dependence vectors";
      "  (inf)";
      "Strategy: data parallelism (DistArray buffers)";
      "Placements";
      "  w: server-hosted";
      "Bulk prefetch: w";
      "Warning: writes to w cannot be captured statically; declare DistArray Buffers to run data-parallel";
      "";
    ]

(* --- golden checks ------------------------------------------------ *)

let test_golden_1d () =
  Alcotest.(check string) "1d panel" golden_1d
    (Plan.explain_to_string (plan_1d ()))

let test_golden_2d () =
  Alcotest.(check string) "2d panel" golden_2d
    (Plan.explain_to_string (plan_2d ()))

let test_golden_unimodular () =
  Alcotest.(check string) "unimodular panel" golden_unimodular
    (Plan.explain_to_string (plan_unimodular ()))

let test_golden_data_parallel () =
  Alcotest.(check string) "data-parallel panel" golden_data_parallel
    (Plan.explain_to_string (plan_data_parallel ()))

(* --- recorded provenance ------------------------------------------ *)

let test_provenance_2d () =
  let plan = plan_2d () in
  let prov = plan.Plan.provenance in
  (* both 1D candidates are killed, two 2D candidates are costed and
     the cheaper one is marked chosen *)
  Alcotest.(check int) "both 1D dims rejected" 2
    (List.length prov.Plan.rejected_1d);
  Alcotest.(check int) "no 2D pair rejected" 0
    (List.length prov.Plan.rejected_2d);
  Alcotest.(check int) "two candidates costed" 2
    (List.length prov.Plan.considered);
  let chosen =
    List.filter (fun c -> c.Plan.cand_chosen) prov.Plan.considered
  in
  (match chosen with
  | [ c ] ->
      Alcotest.(check bool) "chosen has min cost" true
        (List.for_all
           (fun c' -> c.Plan.cand_cost <= c'.Plan.cand_cost)
           prov.Plan.considered)
  | _ -> Alcotest.fail "expected exactly one chosen candidate");
  (match prov.Plan.unimodular with
  | Plan.Uni_not_attempted -> ()
  | _ -> Alcotest.fail "unimodular should not be attempted for MF");
  (* every 1D rejection names a killer vector that is nonzero in that
     dim *)
  List.iter
    (fun (dim, killer) ->
      Alcotest.(check bool) "killer nonzero in dim" false
        (Depvec.is_zero_elt killer.(dim)))
    prov.Plan.rejected_1d

let test_provenance_unimodular_applied () =
  let plan = plan_unimodular () in
  match plan.Plan.provenance.Plan.unimodular with
  | Plan.Uni_applied { matrix } ->
      Alcotest.(check bool) "matrix is unimodular" true
        (Unimodular.is_unimodular matrix)
  | _ -> Alcotest.fail "expected Uni_applied"

let test_provenance_data_parallel_inapplicable () =
  let plan = plan_data_parallel () in
  match plan.Plan.provenance.Plan.unimodular with
  | Plan.Uni_inapplicable { blocker = Some v } ->
      Alcotest.(check bool) "blocker has inf" true
        (Array.exists (fun e -> e = Depvec.Pos_inf || e = Depvec.Any) v)
  | _ -> Alcotest.fail "expected Uni_inapplicable with a blocker"

let test_dep_trace_pairs_2d () =
  let plan = plan_2d () in
  let pairs = plan.Plan.dep_trace.Depanalysis.pairs in
  (* W and H each contribute read/write, write/write pairs *)
  let skipped, kept =
    List.partition
      (fun p ->
        match p.Depanalysis.pt_outcome with
        | Depanalysis.Skipped _ -> true
        | _ -> false)
      pairs
  in
  Alcotest.(check int) "write/write pairs skipped" 2 (List.length skipped);
  Alcotest.(check int) "read/write pairs traced" 2 (List.length kept);
  List.iter
    (fun p ->
      match p.Depanalysis.pt_outcome with
      | Depanalysis.Dependence { vec; _ } ->
          Alcotest.(check bool) "vec in plan result" true
            (List.exists (fun v -> v = vec) plan.Plan.dep_vectors)
      | _ -> Alcotest.fail "expected a dependence outcome")
    kept

let test_dep_trace_buffered_writes_counted () =
  let info =
    loop_of_body ~arr_dims:1 "i = int(v)\nw_buf[i] = w_buf[i] + 1.0"
      ~dist_vars:[ "w_buf" ] ~buffered:[ "w_buf" ]
  in
  let _, trace = Depanalysis.analyze_traced info in
  Alcotest.(check (list (pair string int)))
    "dropped buffered writes" [ ("w_buf", 1) ]
    trace.Depanalysis.dropped_writes

(* --- Explain text report ------------------------------------------ *)

let test_report_sections () =
  let r = Explain.report_to_string (plan_2d ()) in
  check_contains "report" r "Dependence provenance (Algorithm 2)";
  check_contains "report" r "Strategy decision tree";
  (* the Fig. 6 panel leads the report *)
  Alcotest.(check bool) "starts with the explain panel" true
    (String.length r >= String.length golden_2d
    && String.sub r 0 (String.length golden_2d) = golden_2d)

let test_report_pair_lines () =
  let r = Explain.report_to_string (plan_2d ()) in
  check_contains "report" r
    "write W[:, key[1]]  vs  write W[:, key[1]]";
  check_contains "report" r
    "=> skipped: write/write pairs are commutative in an unordered loop";
  check_contains "report" r "matching loop index constrains dim 0 to 0";
  check_contains "report" r "=> dependence (0, inf)";
  check_contains "report" r "1D over dim 0 rejected by (inf, 0)";
  check_contains "report" r "<= chosen (min cost, earliest wins ties)"

let test_report_unimodular_lines () =
  let r = Explain.report_to_string (plan_unimodular ()) in
  check_contains "report" r "=> same-iteration only";
  check_contains "report" r "=> skipped: read/read pairs carry no dependence";
  check_contains "report" r "no 1D/2D candidate survives";
  check_contains "report" r "unimodular transform [[2, 1]; [-1, 0]] applied"

let test_report_data_parallel_lines () =
  let r = Explain.report_to_string (plan_data_parallel ()) in
  check_contains "report" r "no constraint (range or runtime subscript)";
  check_contains "report" r "=> dependence (inf)";
  check_contains "report" r "unimodular transform inapplicable"

(* --- Explain JSON -------------------------------------------------- *)

(* a tiny structural check: braces/brackets balance outside strings *)
let json_balanced s =
  let depth = ref 0 and in_str = ref false and esc = ref false in
  let ok = ref true in
  String.iter
    (fun c ->
      if !esc then esc := false
      else if !in_str then begin
        if c = '\\' then esc := true else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

let test_json_shape () =
  List.iter
    (fun (name, plan) ->
      let j = Explain.to_json (plan ()) in
      Alcotest.(check bool) (name ^ " json balanced") true (json_balanced j);
      Alcotest.(check bool) (name ^ " single line") false
        (String.contains j '\n');
      check_contains (name ^ " json") j "\"loop\"";
      check_contains (name ^ " json") j "\"dependence\"";
      check_contains (name ^ " json") j "\"decision\"";
      check_contains (name ^ " json") j "\"plan\"")
    [
      ("1d", plan_1d);
      ("2d", plan_2d);
      ("unimodular", plan_unimodular);
      ("data_parallel", plan_data_parallel);
    ]

let test_json_strategy_kinds () =
  let kind plan = Explain.to_json (plan ()) in
  check_contains "1d json" (kind plan_1d) "\"kind\":\"1d\"";
  check_contains "2d json" (kind plan_2d) "\"kind\":\"2d\"";
  check_contains "unimodular json" (kind plan_unimodular)
    "\"kind\":\"2d_unimodular\"";
  check_contains "data-parallel json" (kind plan_data_parallel)
    "\"kind\":\"data_parallel\""

let test_json_provenance_content () =
  let j = Explain.to_json (plan_2d ()) in
  check_contains "2d json" j "\"outcome\":{\"kind\":\"dependence\"";
  check_contains "2d json" j
    "\"outcome\":{\"kind\":\"skipped\",\"reason\":\"write_write_unordered\"";
  check_contains "2d json" j "\"rejected_1d\":[{\"dim\":0";
  check_contains "2d json" j "\"chosen\":true";
  let ju = Explain.to_json (plan_unimodular ()) in
  check_contains "unimodular json" ju
    "\"unimodular\":{\"kind\":\"applied\",\"matrix\":[[2,1],[-1,0]]}";
  check_contains "unimodular json" ju "\"kind\":\"refine\""

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "explain"
    [
      ( "golden",
        [
          tc "1d" `Quick test_golden_1d;
          tc "2d" `Quick test_golden_2d;
          tc "unimodular" `Quick test_golden_unimodular;
          tc "data parallel" `Quick test_golden_data_parallel;
        ] );
      ( "provenance",
        [
          tc "2d decision" `Quick test_provenance_2d;
          tc "unimodular applied" `Quick test_provenance_unimodular_applied;
          tc "data-parallel blocker" `Quick
            test_provenance_data_parallel_inapplicable;
          tc "2d pair trace" `Quick test_dep_trace_pairs_2d;
          tc "buffered writes counted" `Quick
            test_dep_trace_buffered_writes_counted;
        ] );
      ( "report",
        [
          tc "sections" `Quick test_report_sections;
          tc "pair lines" `Quick test_report_pair_lines;
          tc "unimodular lines" `Quick test_report_unimodular_lines;
          tc "data-parallel lines" `Quick test_report_data_parallel_lines;
        ] );
      ( "json",
        [
          tc "shape" `Quick test_json_shape;
          tc "strategy kinds" `Quick test_json_strategy_kinds;
          tc "provenance content" `Quick test_json_provenance_content;
        ] );
    ]
