(* Tests for the OrionScript language: lexer, parser, pretty-printer
   round-trips, and the interpreter. *)

open Orion_lang

let parse = Parser.parse_program
let parse_e = Parser.parse_expression

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let toks src = List.map (fun (t : Lexer.located) -> t.tok) (Lexer.tokenize src)

let test_lex_basic () =
  Alcotest.(check int) "token count" 6
    (List.length (toks "x = 1 + 2"));
  (* x = 1 + 2 -> IDENT EQ INT PLUS INT EOF *)
  match toks "x = 1 + 2" with
  | [ IDENT "x"; EQ; INT 1; PLUS; INT 2; EOF ] -> ()
  | _ -> Alcotest.fail "unexpected tokens"

let test_lex_floats () =
  (match toks "1.5 2e3 0.25" with
  | [ FLOAT a; FLOAT b; FLOAT c; EOF ] ->
      Alcotest.(check (float 0.0)) "1.5" 1.5 a;
      Alcotest.(check (float 0.0)) "2e3" 2000.0 b;
      Alcotest.(check (float 0.0)) "0.25" 0.25 c
  | _ -> Alcotest.fail "floats");
  match toks "1:3" with
  | [ INT 1; COLON; INT 3; EOF ] -> ()
  | _ -> Alcotest.fail "range is not a float"

let test_lex_comments () =
  match toks "x = 1 # a comment\ny = 2" with
  | [ IDENT "x"; EQ; INT 1; NEWLINE; IDENT "y"; EQ; INT 2; EOF ] -> ()
  | _ -> Alcotest.fail "comments"

let test_lex_operators () =
  match toks "a += b .* c .= d" with
  | [ IDENT "a"; PLUS_EQ; IDENT "b"; STAR; IDENT "c"; EQ; IDENT "d"; EOF ] ->
      ()
  | _ -> Alcotest.fail "operators"

let test_lex_macro () =
  match toks "@parallel_for ordered for" with
  | [ KW_PARALLEL_FOR; KW_ORDERED; KW_FOR; EOF ] -> ()
  | _ -> Alcotest.fail "macro"

let test_lex_string_escapes () =
  match toks {|"a\nb"|} with
  | [ STRING "a\nb"; EOF ] -> ()
  | _ -> Alcotest.fail "string escapes"

let test_lex_error_pos () =
  try
    ignore (Lexer.tokenize "x = $");
    Alcotest.fail "expected lex error"
  with Lexer.Lex_error (_, pos) ->
    Alcotest.(check int) "line" 1 pos.line;
    Alcotest.(check int) "col" 5 pos.col

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_precedence () =
  let e = parse_e "1 + 2 * 3" in
  Alcotest.(check bool) "mul binds tighter" true
    (e = Ast.(Binop (Add, Int_lit 1, Binop (Mul, Int_lit 2, Int_lit 3))))

let test_parse_power_right_assoc () =
  let e = parse_e "2 ^ 3 ^ 2" in
  Alcotest.(check bool) "right assoc" true
    (e
    = Ast.(
        Binop (Pow, Int_lit 2, Binop (Pow, Int_lit 3, Int_lit 2))))

let test_parse_unary_precedence () =
  let e = parse_e "-x + y" in
  Alcotest.(check bool) "neg binds tighter than +" true
    (e = Ast.(Binop (Add, Unop (Neg, Var "x"), Var "y")))

let test_parse_comparison_chain () =
  let e = parse_e "a + 1 < b * 2 && c > 3" in
  match e with
  | Ast.Binop (And, Binop (Lt, _, _), Binop (Gt, _, _)) -> ()
  | _ -> Alcotest.fail "precedence of comparisons and &&"

let test_parse_subscripts () =
  let e = parse_e "W[:, key[1], 2:5]" in
  match e with
  | Ast.Index
      ( Var "W",
        [
          Sub_all;
          Sub_expr (Index (Var "key", [ Sub_expr (Int_lit 1) ]));
          Sub_range (Int_lit 2, Int_lit 5);
        ] ) ->
      ()
  | _ -> Alcotest.fail "subscripts"

let test_parse_call_and_tuple () =
  (match parse_e "dot(a, b)" with
  | Ast.Call ("dot", [ Var "a"; Var "b" ]) -> ()
  | _ -> Alcotest.fail "call");
  match parse_e "(a, b, 3)" with
  | Ast.Tuple [ Var "a"; Var "b"; Int_lit 3 ] -> ()
  | _ -> Alcotest.fail "tuple"

let test_parse_if_elseif () =
  let p =
    parse
      "if a > 0\n  x = 1\nelseif a < 0\n  x = 2\nelse\n  x = 3\nend"
  in
  match p with
  | [ { Ast.sk = Ast.If (_, [ _ ], [ { Ast.sk = Ast.If (_, [ _ ], [ _ ]); _ } ]); _ } ]
    ->
      ()
  | _ -> Alcotest.fail "elseif chain"

let test_parse_for_range () =
  match parse "for i = 1:10\n  s += i\nend" with
  | [
   { Ast.sk = Ast.For { kind = Range_loop { var = "i"; _ }; parallel = None; _ }; _ };
  ] ->
      ()
  | _ -> Alcotest.fail "range loop"

let test_parse_parallel_for () =
  match parse "@parallel_for for (k, v) in data\n  x = v\nend" with
  | [
   {
     Ast.sk =
       Ast.For
         {
           kind = Each_loop { key = "k"; value = "v"; arr = "data" };
           parallel = Some { ordered = false };
           _;
         };
     _;
   };
  ] ->
      ()
  | _ -> Alcotest.fail "parallel for"

let test_parse_parallel_for_ordered () =
  match parse "@parallel_for ordered for (k, v) in data\nend" with
  | [ { Ast.sk = Ast.For { parallel = Some { ordered = true }; _ }; _ } ] -> ()
  | _ -> Alcotest.fail "ordered"

let test_parse_op_assign_index () =
  match parse "A[i] += 1" with
  | [
   {
     Ast.sk = Ast.Op_assign (Add, Lindex ("A", [ Sub_expr (Var "i") ]), Int_lit 1);
     _;
   };
  ] ->
      ()
  | _ -> Alcotest.fail "op-assign on index"

let test_parse_error_missing_end () =
  try
    ignore (parse "for i = 1:3\n x = i\n");
    Alcotest.fail "expected parse error"
  with Parser.Parse_error (_, _) -> ()

let test_parse_broadcast_assign () =
  (* Julia's .= is accepted as plain assignment *)
  match parse "W[:, k] .= W_row - g * s" with
  | [ { Ast.sk = Ast.Assign (Lindex ("W", _), _); _ } ] -> ()
  | _ -> Alcotest.fail "broadcast assign"

(* ------------------------------------------------------------------ *)
(* Pretty-printer round-trip                                           *)
(* ------------------------------------------------------------------ *)

let roundtrip_program src =
  let p1 = parse src in
  let printed = Pretty.program_to_string p1 in
  let p2 = parse printed in
  Alcotest.(check bool)
    (Printf.sprintf "roundtrip of %S via %S" src printed)
    true (Ast.equal_program p1 p2)

let test_pretty_roundtrip_samples () =
  List.iter roundtrip_program
    [
      "x = 1 + 2 * 3";
      "y = -x ^ 2";
      "if a > 0\n  b = 1\nelse\n  b = 2\nend";
      "for i = 1:10\n  s += i * i\nend";
      "@parallel_for for (key, rv) in ratings\n\
       W_row = W[:, key[1]]\n\
       W[:, key[1]] = W_row - g * s\n\
       end";
      "while x < 10\n  x = x + 1\n  if x == 5\n    break\n  end\nend";
      "z = dot(a[1:3], b[2:4]) + abs2(c)";
      "t = (a, b, a + b)";
    ]

(* random expression generator for the qcheck round-trip *)
let gen_expr =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun i -> Ast.Int_lit i) (int_range 0 100);
                map (fun f -> Ast.Float_lit (float_of_int f /. 4.0))
                  (int_range 0 100);
                oneofl [ Ast.Var "x"; Ast.Var "y"; Ast.Var "key" ];
                return (Ast.Bool_lit true);
              ]
          else
            oneof
              [
                map3
                  (fun op a b -> Ast.Binop (op, a, b))
                  (oneofl
                     Ast.[ Add; Sub; Mul; Div; Pow; Lt; Le; Eq; And; Or ])
                  (self (n / 2))
                  (self (n / 2));
                map (fun a -> Ast.Unop (Ast.Neg, a)) (self (n - 1));
                map
                  (fun a -> Ast.Index (Ast.Var "A", [ Ast.Sub_expr a ]))
                  (self (n - 1));
                map2
                  (fun a b -> Ast.Call ("f", [ a; b ]))
                  (self (n / 2))
                  (self (n / 2));
              ])
        n)

let arb_expr = QCheck.make ~print:Pretty.expr_to_string gen_expr

let test_expr_roundtrip_qcheck () =
  QCheck.Test.make ~count:500 ~name:"pretty-print/parse expr roundtrip"
    arb_expr (fun e ->
      let printed = Pretty.expr_to_string e in
      Ast.equal_expr e (Parser.parse_expression printed))

(* random whole-program generator: statements over the constructs the
   pretty-printer and parser both support, with loop-only statements
   (break/continue) confined to loop bodies *)
let gen_program : Ast.program QCheck.Gen.t =
  let open QCheck.Gen in
  let mk sk = Ast.mk sk in
  let var = oneofl [ "x"; "y"; "z"; "acc" ] in
  let lvalue =
    oneof
      [
        map (fun v -> Ast.Lvar v) var;
        map (fun e -> Ast.Lindex ("A", [ Ast.Sub_expr e ])) gen_expr;
      ]
  in
  let bound =
    oneof
      [
        map (fun i -> Ast.Int_lit i) (int_range 1 20);
        map (fun v -> Ast.Var v) var;
      ]
  in
  let rec stmt ~in_loop depth =
    let leaf =
      [
        map2 (fun l e -> mk (Ast.Assign (l, e))) lvalue gen_expr;
        map3
          (fun op l e -> mk (Ast.Op_assign (op, l, e)))
          (oneofl Ast.[ Add; Sub; Mul; Div ])
          lvalue gen_expr;
      ]
    in
    let leaf = if in_loop then return (mk Ast.Break) :: return (mk Ast.Continue) :: leaf else leaf in
    if depth <= 0 then oneof leaf
    else
      let block ~in_loop = list_size (int_range 1 3) (stmt ~in_loop (depth - 1)) in
      oneof
        (leaf
        @ [
            map3
              (fun c t e -> mk (Ast.If (c, t, e)))
              gen_expr (block ~in_loop)
              (oneof [ return []; block ~in_loop ]);
            map3
              (fun lo hi body ->
                mk
                  (Ast.For
                     {
                       kind = Ast.Range_loop { var = "i"; lo; hi };
                       body;
                       parallel = None;
                     }))
              bound bound (block ~in_loop:true);
            map2
              (fun c body -> mk (Ast.While (c, body)))
              gen_expr (block ~in_loop:true);
            map2
              (fun ordered body ->
                mk
                  (Ast.For
                     {
                       kind =
                         Ast.Each_loop
                           { key = "key"; value = "v"; arr = "ratings" };
                       body;
                       parallel = Some { Ast.ordered };
                     }))
              bool (block ~in_loop:true);
          ])
  in
  list_size (int_range 1 5) (stmt ~in_loop:false 2)

(* lexer -> parser -> pretty-printer -> parser round-trip over seeded
   random programs: the printed form must re-parse to an equal AST *)
let test_program_roundtrip_seeded () =
  let rand = Random.State.make [| 0xC0FFEE |] in
  for _ = 1 to 200 do
    let p = QCheck.Gen.generate1 ~rand gen_program in
    let printed = Pretty.program_to_string p in
    match parse printed with
    | p2 ->
        if not (Ast.equal_program p p2) then
          Alcotest.failf "program roundtrip changed the AST for:\n%s" printed
    | exception exn ->
        Alcotest.failf "printed program failed to parse (%s):\n%s"
          (Printexc.to_string exn) printed
  done

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

let run ?host_call ?(bindings = []) src =
  let env = Interp.create_env ?host_call () in
  List.iter (fun (k, v) -> Interp.set_var env k v) bindings;
  Interp.run_program env (parse src);
  env

let check_float env name expected =
  match Interp.get_var env name with
  | Value.Vfloat f -> Alcotest.(check (float 1e-9)) name expected f
  | Value.Vint n -> Alcotest.(check (float 1e-9)) name expected (float_of_int n)
  | v -> Alcotest.fail (name ^ " has type " ^ Value.type_name v)

let test_interp_arith () =
  let env = run "x = 1 + 2 * 3\ny = x / 2\nz = 2.0 ^ 3 + float(x % 5)" in
  check_float env "x" 7.0;
  check_float env "y" 3.0;
  (* int division *)
  check_float env "z" 10.0

let test_interp_loops () =
  let env = run "s = 0\nfor i = 1:10\n  s += i\nend" in
  check_float env "s" 55.0

let test_interp_while_break () =
  let env =
    run "x = 0\nwhile true\n  x += 1\n  if x >= 7\n    break\n  end\nend"
  in
  check_float env "x" 7.0

let test_interp_continue () =
  let env =
    run "s = 0\nfor i = 1:10\n  if i % 2 == 0\n    continue\n  end\n  s += i\nend"
  in
  check_float env "s" 25.0

let test_interp_vectors () =
  let env =
    run
      "v = zeros(3)\nv[1] = 1.0\nv[2] = 2.0\nv[3] = 3.0\n\
       w = v * 2.0\nd = dot(v, w)\ns = sum(v[1:2])"
  in
  check_float env "d" 28.0;
  check_float env "s" 3.0

let test_interp_vector_ops () =
  let env = run "a = fill(2.0, 4)\nb = fill(3.0, 4)\nc = a * b + a\nn = norm(fill(3.0, 1))" in
  (match Interp.get_var env "c" with
  | Value.Vvec v ->
      Alcotest.(check (float 1e-9)) "elementwise" 8.0 v.(0)
  | _ -> Alcotest.fail "c not vec");
  check_float env "n" 3.0

let test_interp_builtins () =
  let env =
    run "a = abs(-3)\nb = abs2(2.0)\nc = sigmoid(0.0)\nd = max(1.0, 2.0)\ne = exp(0.0)"
  in
  check_float env "a" 3.0;
  check_float env "b" 4.0;
  check_float env "c" 0.5;
  check_float env "d" 2.0;
  check_float env "e" 1.0

let test_interp_rng_deterministic () =
  let env1 = run "x = rand()\ny = randn()" in
  let env2 = run "x = rand()\ny = randn()" in
  let get e n = Value.to_float (Interp.get_var e n) in
  Alcotest.(check (float 0.0)) "rand deterministic" (get env1 "x") (get env2 "x");
  Alcotest.(check (float 0.0))
    "randn deterministic" (get env1 "y") (get env2 "y");
  let x = get env1 "x" in
  Alcotest.(check bool) "in range" true (x >= 0.0 && x < 1.0)

let test_interp_host_call () =
  let calls = ref [] in
  let host_call name args =
    if name = "observe" then (
      calls := args :: !calls;
      Some Value.Vunit)
    else None
  in
  let _ = run ~host_call "observe(1, 2.0)" in
  Alcotest.(check int) "host called" 1 (List.length !calls)

let test_interp_extern () =
  (* a tiny dense 2x2 "distarray" backed by a float array *)
  let data = [| 1.0; 2.0; 3.0; 4.0 |] in
  let get subs =
    match subs with
    | [| Value.Cpoint i; Value.Cpoint j |] -> Value.Vfloat data.((i * 2) + j)
    | _ -> Alcotest.fail "bad subs"
  in
  let set subs v =
    match subs with
    | [| Value.Cpoint i; Value.Cpoint j |] ->
        data.((i * 2) + j) <- Value.to_float v
    | _ -> Alcotest.fail "bad subs"
  in
  let iter f =
    for i = 0 to 1 do
      for j = 0 to 1 do
        f [| i; j |] (Value.Vfloat data.((i * 2) + j))
      done
    done
  in
  let ex =
    Value.
      {
        ex_name = "A";
        ex_dims = [| 2; 2 |];
        ex_get = get;
        ex_set = set;
        ex_iter = iter;
        ex_count = (fun () -> 4);
        ex_fast = None;
      }
  in
  let env =
    run
      ~bindings:[ ("A", Value.Vextern ex) ]
      "s = 0.0\nfor (k, v) in A\n  s += v\n  A[k[1], k[2]] = v * 10.0\nend"
  in
  check_float env "s" 10.0;
  Alcotest.(check (float 0.0)) "written back" 40.0 data.(3)

let test_interp_error_undefined () =
  try
    ignore (run "x = undefined_var + 1");
    Alcotest.fail "expected runtime error"
  with Interp.Runtime_error _ -> ()

let test_interp_division_by_zero () =
  try
    ignore (run "x = 1 / 0");
    Alcotest.fail "expected error"
  with Interp.Runtime_error _ -> ()

let test_interp_short_circuit () =
  (* the right operand must not be evaluated: 1/0 would raise *)
  let env = run "ok = false && 1 / 0 == 0\nok2 = true || 1 / 0 == 0" in
  (match Interp.get_var env "ok" with
  | Value.Vbool false -> ()
  | _ -> Alcotest.fail "&& short circuit");
  match Interp.get_var env "ok2" with
  | Value.Vbool true -> ()
  | _ -> Alcotest.fail "|| short circuit"

(* the full SGD MF body interpreted over a toy problem: the training
   loss must decrease *)
let test_interp_mf_epoch () =
  (* 2x2 ratings, rank 2 *)
  let ratings = [| [| 5.0; 1.0 |]; [| 1.0; 5.0 |] |] in
  let w = Array.make_matrix 2 2 0.1 in
  let h = Array.make_matrix 2 2 0.1 in
  w.(0).(0) <- 0.3;
  h.(1).(1) <- 0.2;
  let vec_of col m = Array.init 2 (fun r -> m.(r).(col)) in
  let set_col col m v = Array.iteri (fun r x -> m.(r).(col) <- x) v in
  let mk_extern name arr2 =
    Value.
      {
        ex_name = name;
        ex_dims = [| 2; 2 |];
        ex_get =
          (fun subs ->
            match subs with
            | [| Call_dim; Cpoint j |] -> Vvec (vec_of j arr2)
            | [| Cpoint i; Cpoint j |] -> Vfloat arr2.(i).(j)
            | _ -> Alcotest.fail "subs");
        ex_set =
          (fun subs v ->
            match subs with
            | [| Call_dim; Cpoint j |] -> set_col j arr2 (Value.to_vec v)
            | _ -> Alcotest.fail "subs");
        ex_iter =
          (fun f ->
            for i = 0 to 1 do
              for j = 0 to 1 do
                f [| i; j |] (Vfloat arr2.(i).(j))
              done
            done);
        ex_count = (fun () -> 4);
        ex_fast = None;
      }
  in
  let ratings_ex =
    Value.
      {
        ex_name = "ratings";
        ex_dims = [| 2; 2 |];
        ex_get = (fun _ -> Alcotest.fail "no get");
        ex_set = (fun _ _ -> Alcotest.fail "no set");
        ex_iter =
          (fun f ->
            for i = 0 to 1 do
              for j = 0 to 1 do
                f [| i; j |] (Vfloat ratings.(i).(j))
              done
            done);
        ex_count = (fun () -> 4);
        ex_fast = None;
      }
  in
  let loss () =
    let total = ref 0.0 in
    for i = 0 to 1 do
      for j = 0 to 1 do
        let pred = ref 0.0 in
        for k = 0 to 1 do
          pred := !pred +. (w.(k).(i) *. h.(k).(j))
        done;
        total := !total +. ((ratings.(i).(j) -. !pred) ** 2.0)
      done
    done;
    !total
  in
  let before = loss () in
  let body =
    "for iter = 1:30\n\
     for (key, rv) in ratings\n\
     W_row = W[:, key[1]]\n\
     H_row = H[:, key[2]]\n\
     pred = dot(W_row, H_row)\n\
     diff = rv - pred\n\
     W_grad = -2.0 * diff * H_row\n\
     H_grad = -2.0 * diff * W_row\n\
     W[:, key[1]] = W_row - W_grad * step_size\n\
     H[:, key[2]] = H_row - H_grad * step_size\n\
     end\n\
     end"
  in
  let _ =
    run
      ~bindings:
        [
          ("ratings", Value.Vextern ratings_ex);
          ("W", Value.Vextern (mk_extern "W" w));
          ("H", Value.Vextern (mk_extern "H" h));
          ("step_size", Value.Vfloat 0.05);
        ]
      body
  in
  let after = loss () in
  Alcotest.(check bool)
    (Printf.sprintf "loss decreased (%g -> %g)" before after)
    true
    (after < before /. 4.0)

(* more interpreter edge cases *)

let test_interp_tuple_and_index_values () =
  let env =
    run
      ~bindings:[ ("k", Value.Vindex [| 4; 9 |]) ]
      "t = (1, 2.5, true)\na = t[2]\ni = k[1]\nj = k[2]"
  in
  check_float env "a" 2.5;
  (* Vindex subscripts are 1-based on the surface *)
  check_float env "i" 5.0;
  check_float env "j" 10.0

let test_interp_mod_semantics () =
  (* mathematical (non-negative) modulo on ints *)
  let env = run "a = -7 % 3\nb = 7 % 3\nc = 7.5 % 2.0" in
  check_float env "a" 2.0;
  check_float env "b" 1.0;
  check_float env "c" 1.5

let test_interp_int_pow () =
  let env = run "a = 2 ^ 10\nb = 2.0 ^ -1.0" in
  check_float env "a" 1024.0;
  check_float env "b" 0.5

let test_interp_string_compare () =
  let env = run {|eq = "abc" == "abc"
ne = "a" != "b"
lt = "a" < "b"|} in
  List.iter
    (fun v ->
      match Interp.get_var env v with
      | Value.Vbool true -> ()
      | _ -> Alcotest.fail (v ^ " not true"))
    [ "eq"; "ne"; "lt" ]

let test_interp_vector_length_mismatch () =
  try
    ignore (run "a = zeros(3) + zeros(4)");
    Alcotest.fail "expected error"
  with Interp.Runtime_error _ -> ()

let test_interp_index_non_indexable () =
  try
    ignore (run "x = 5\ny = x[1]");
    Alcotest.fail "expected type error"
  with Value.Type_error _ -> ()

let test_interp_op_assign_vector_element () =
  let env = run "v = zeros(3)\nv[2] += 1.5\nv[2] *= 2.0\nx = v[2]" in
  check_float env "x" 3.0

let test_interp_vector_range_assign () =
  let env =
    run "v = zeros(5)\nw = fill(7.0, 3)\nv[2:4] = w\ns = sum(v)\nx = v[1]"
  in
  check_float env "s" 21.0;
  check_float env "x" 0.0

let test_interp_nested_loops () =
  let env =
    run "s = 0\nfor i = 1:4\n  for j = 1:4\n    if j > i\n      continue\n    end\n    s += 1\n  end\nend"
  in
  (* sum over i of i = 10 *)
  check_float env "s" 10.0

let test_interp_elseif_execution () =
  let prog v =
    Printf.sprintf
      "x = %d\nif x > 10\n  r = 1\nelseif x > 5\n  r = 2\nelseif x > 0\n  r = 3\nelse\n  r = 4\nend"
      v
  in
  List.iter
    (fun (v, expect) ->
      let env = run (prog v) in
      check_float env "r" expect)
    [ (20, 1.0); (7, 2.0); (3, 3.0); (-1, 4.0) ]

let test_interp_unknown_function_error () =
  try
    ignore (run "x = frobnicate(1)");
    Alcotest.fail "expected error"
  with Interp.Runtime_error msg ->
    Alcotest.(check bool) "mentions name" true
      (String.length msg > 0)

(* runtime errors carry the source position of the failing statement *)
let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let test_interp_error_position () =
  try
    ignore (run "x = 1\ny = undefined_var + 1");
    Alcotest.fail "expected error"
  with Interp.Runtime_error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "message %S starts with \"2:\"" msg)
      true
      (starts_with ~prefix:"2:" msg)

let test_interp_error_position_nested () =
  let src = "acc = 0\nfor i = 1:3\n  acc = acc + 1\n  z = frobnicate(i)\nend" in
  try
    ignore (run src);
    Alcotest.fail "expected error"
  with Interp.Runtime_error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "message %S starts with \"4:\"" msg)
      true
      (starts_with ~prefix:"4:" msg)

(* ------------------------------------------------------------------ *)
(* Semantic checker                                                    *)
(* ------------------------------------------------------------------ *)

let diags ?globals src =
  Check.check_program ?globals (Parser.parse_program src)

let has_error ds sub =
  List.exists
    (fun d ->
      d.Check.severity = Check.Error
      &&
      let m = d.Check.message and n = String.length sub in
      let rec go i =
        i + n <= String.length m && (String.sub m i n = sub || go (i + 1))
      in
      go 0)
    ds

let has_warning ds sub =
  List.exists
    (fun d ->
      d.Check.severity = Check.Warning
      &&
      let m = d.Check.message and n = String.length sub in
      let rec go i =
        i + n <= String.length m && (String.sub m i n = sub || go (i + 1))
      in
      go 0)
    ds

let test_check_clean_program () =
  let ds =
    diags ~globals:[ "data" ]
      "x = 1\ny = x + 2\nfor i = 1:10\n  y += i\nend"
  in
  Alcotest.(check int) "no diagnostics" 0 (List.length ds)

let test_check_undefined_variable () =
  let ds = diags "x = y + 1" in
  Alcotest.(check bool) "undefined y" true (has_error ds "y is used before")

let test_check_maybe_undefined () =
  let ds = diags "a = 1\nif a > 0\n  b = 2\nend\nc = b" in
  Alcotest.(check bool) "maybe undefined b" true
    (has_warning ds "b may be undefined")

let test_check_defined_in_both_branches () =
  let ds = diags "a = 1\nif a > 0\n  b = 2\nelse\n  b = 3\nend\nc = b" in
  Alcotest.(check int) "no diagnostics" 0 (List.length ds)

let test_check_break_outside_loop () =
  let ds = diags "x = 1\nbreak" in
  Alcotest.(check bool) "break error" true (has_error ds "break outside");
  let ok = diags "while true\n  break\nend" in
  Alcotest.(check int) "break in loop ok" 0 (List.length ok)

let test_check_builtin_arity () =
  let ds = diags "x = dot(zeros(3))" in
  Alcotest.(check bool) "dot arity" true (has_error ds "dot expects 2");
  let ok = diags "x = dot(zeros(3), zeros(3))" in
  Alcotest.(check int) "correct arity ok" 0 (List.length ok)

let test_check_nested_parallel_for () =
  let ds =
    diags ~globals:[ "a"; "b" ]
      "@parallel_for for (k, v) in a\n\
       @parallel_for for (k2, v2) in b\n\
       x = v2\n\
       end\n\
       end"
  in
  Alcotest.(check bool) "nested error" true (has_error ds "cannot be nested")

let test_check_assign_loop_key () =
  let ds =
    diags ~globals:[ "a" ]
      "@parallel_for for (k, v) in a\n  k = (1, 2)\nend"
  in
  Alcotest.(check bool) "key assignment warning" true
    (has_warning ds "loop index variable k")

let test_check_loop_body_definitions_are_maybe () =
  (* a for-loop body may run zero times *)
  let ds = diags "for i = 1:0\n  x = i\nend\ny = x" in
  Alcotest.(check bool) "x maybe undefined" true
    (has_warning ds "x may be undefined")

let test_check_mf_script_clean () =
  let ds =
    diags
      ~globals:[ "ratings"; "W"; "H"; "num_iterations" ]
      Orion_apps.Sgd_mf.script
  in
  Alcotest.(check (list string)) "mf script clean" []
    (List.map Check.diagnostic_to_string ds)

let test_check_diagnostic_positions () =
  let ds = diags "x = 1\nbreak" in
  match List.filter (fun d -> d.Check.severity = Check.Error) ds with
  | [ d ] ->
      (match d.Check.pos with
      | Some p ->
          Alcotest.(check int) "line" 2 p.Ast.line;
          Alcotest.(check int) "col" 1 p.Ast.col
      | None -> Alcotest.fail "diagnostic carries no position");
      let s = Check.diagnostic_to_string d in
      Alcotest.(check bool) "rendered with line:col prefix" true
        (String.length s >= 5 && String.sub s 0 5 = "2:1: ")
  | ds' ->
      Alcotest.failf "expected exactly one error, got %d" (List.length ds')

let test_check_position_inside_block () =
  let ds = diags "a = 1\nif a > 0\n  x = y + 1\nend" in
  match List.filter (fun d -> d.Check.severity = Check.Error) ds with
  | [ d ] -> (
      match d.Check.pos with
      | Some p -> Alcotest.(check int) "line of nested stmt" 3 p.Ast.line
      | None -> Alcotest.fail "diagnostic carries no position")
  | ds' ->
      Alcotest.failf "expected exactly one error, got %d" (List.length ds')

(* ------------------------------------------------------------------ *)
(* Profiler                                                            *)
(* ------------------------------------------------------------------ *)

let test_profile_record_and_hot_lines () =
  let p = Profile.create () in
  Profile.record_line p ~line:3 ~seconds:0.5;
  Profile.record_line p ~line:3 ~seconds:0.25;
  Profile.record_line p ~line:7 ~seconds:0.1;
  (match Profile.hot_lines p with
  | [ (l1, h1, s1); (l2, h2, s2) ] ->
      Alcotest.(check int) "hottest line" 3 l1;
      Alcotest.(check int) "hottest hits" 2 h1;
      Alcotest.(check (float 1e-9)) "hottest seconds" 0.75 s1;
      Alcotest.(check int) "second line" 7 l2;
      Alcotest.(check int) "second hits" 1 h2;
      Alcotest.(check (float 1e-9)) "second seconds" 0.1 s2
  | l -> Alcotest.failf "expected two lines, got %d" (List.length l));
  Alcotest.(check (float 1e-9)) "total" 0.85 (Profile.total_seconds p);
  Profile.reset p;
  Alcotest.(check int) "reset clears" 0 (List.length (Profile.line_stats p))

let test_profile_interp_line_hits () =
  let p = Profile.create () in
  let env = Interp.create_env ~profile:p () in
  Interp.run_program env (parse "t = 0\nfor i = 1:10\n  t += i\nend");
  let hits line =
    match List.find_opt (fun (l, _, _) -> l = line) (Profile.line_stats p) with
    | Some (_, h, _) -> h
    | None -> 0
  in
  Alcotest.(check int) "assignment once" 1 (hits 1);
  Alcotest.(check int) "loop header once" 1 (hits 2);
  Alcotest.(check int) "body per iteration" 10 (hits 3)

let test_profile_array_counters () =
  let data = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ex =
    Value.
      {
        ex_name = "A";
        ex_dims = [| 2; 2 |];
        ex_get =
          (fun subs ->
            match subs with
            | [| Cpoint i; Cpoint j |] -> Vfloat data.((i * 2) + j)
            | _ -> Alcotest.fail "bad subs");
        ex_set =
          (fun subs v ->
            match subs with
            | [| Cpoint i; Cpoint j |] -> data.((i * 2) + j) <- Value.to_float v
            | _ -> Alcotest.fail "bad subs");
        ex_iter = (fun _ -> ());
        ex_count = (fun () -> 4);
        ex_fast = None;
      }
  in
  let p = Profile.create () in
  let env = Interp.create_env ~profile:p () in
  Interp.set_var env "A" (Value.Vextern ex);
  Interp.run_program env
    (parse "x = A[1, 1]\nA[2, 2] = x + 1.0\ny = A[2, 2]");
  match Profile.array_stats p with
  | [ ("A", reads, writes) ] ->
      Alcotest.(check int) "reads" 2 reads;
      Alcotest.(check int) "writes" 1 writes
  | l -> Alcotest.failf "expected stats for A only, got %d" (List.length l)

let test_profile_report_renders () =
  let p = Profile.create () in
  let src = "t = 0\nfor i = 1:3\n  t += i\nend" in
  let env = Interp.create_env ~profile:p () in
  Interp.run_program env (parse src);
  let r = Profile.report ~src p in
  let contains sub =
    let n = String.length sub and m = String.length r in
    let rec go i = i + n <= m && (String.sub r i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has header" true (contains "Hot lines");
  Alcotest.(check bool) "shows source text" true (contains "t += i")

(* ------------------------------------------------------------------ *)
(* Interpreter bugfix regressions                                      *)
(* ------------------------------------------------------------------ *)

let check_value name expected actual =
  Alcotest.(check string)
    name (Value.to_string expected) (Value.to_string actual)

let test_min_max_preserve_int () =
  let env =
    run "a = min(3, 5)\nb = max(2, 7)\nc = min(3, 5.0)\nd = max(2.5, 1)"
  in
  check_value "min(3,5) stays int" (Value.Vint 3) (Interp.get_var env "a");
  check_value "max(2,7) stays int" (Value.Vint 7) (Interp.get_var env "b");
  check_value "min(3,5.0) is float" (Value.Vfloat 3.0) (Interp.get_var env "c");
  check_value "max(2.5,1) is float" (Value.Vfloat 2.5)
    (Interp.get_var env "d")

let expect_error ~sub src =
  match run src with
  | exception Interp.Runtime_error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%S appears in %S" sub msg)
        true
        (let n = String.length sub and m = String.length msg in
         let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
         go 0);
      msg
  | exception e -> Alcotest.failf "expected Runtime_error, got %s" (Printexc.to_string e)
  | _ -> Alcotest.failf "expected Runtime_error from %S" src

let test_reversed_range_read_positioned () =
  let msg =
    expect_error ~sub:"empty vector range 3:2 (lo > hi)"
      "v = zeros(4)\nw = v[3:2]"
  in
  Alcotest.(check bool)
    (Printf.sprintf "positioned at line 2: %S" msg)
    true
    (starts_with ~prefix:"2:" msg)

let test_reversed_range_assign_positioned () =
  let msg =
    expect_error ~sub:"empty vector range 4:1 (lo > hi)"
      "v = zeros(4)\nv[4:1] = zeros(2)"
  in
  Alcotest.(check bool)
    (Printf.sprintf "positioned at line 2: %S" msg)
    true
    (starts_with ~prefix:"2:" msg)

let test_out_of_bounds_range_positioned () =
  let msg =
    expect_error ~sub:"vector range 2:9 out of bounds (length 4)"
      "v = zeros(4)\nw = v[2:9]"
  in
  Alcotest.(check bool)
    (Printf.sprintf "positioned at line 2: %S" msg)
    true
    (starts_with ~prefix:"2:" msg)

let test_type_error_positioned () =
  (* a Type_error escaping a statement carries the statement position,
     exactly like a Runtime_error *)
  match run "x = zeros(2)\nif x\n  y = 1\nend" with
  | exception Value.Type_error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "positioned at line 2: %S" msg)
        true
        (starts_with ~prefix:"2:" msg)
  | exception e ->
      Alcotest.failf "expected Type_error, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected Type_error"

(* ------------------------------------------------------------------ *)
(* Profile shard merging                                               *)
(* ------------------------------------------------------------------ *)

let test_profile_merge () =
  let a = Profile.create () and b = Profile.create () in
  Profile.record_line a ~line:3 ~seconds:0.5;
  Profile.record_line b ~line:3 ~seconds:0.25;
  Profile.record_line b ~line:7 ~seconds:0.1;
  Profile.record_array_read a "W";
  Profile.record_array_write b "W";
  Profile.record_array_read b "W";
  Profile.merge ~into:a b;
  (match Profile.line_stats a with
  | [ (3, h3, s3); (7, h7, s7) ] ->
      Alcotest.(check int) "line 3 hits summed" 2 h3;
      Alcotest.(check (float 1e-9)) "line 3 seconds summed" 0.75 s3;
      Alcotest.(check int) "line 7 hits" 1 h7;
      Alcotest.(check (float 1e-9)) "line 7 seconds" 0.1 s7
  | l -> Alcotest.failf "expected lines 3 and 7, got %d entries" (List.length l));
  (match Profile.array_stats a with
  | [ ("W", reads, writes) ] ->
      Alcotest.(check int) "reads summed" 2 reads;
      Alcotest.(check int) "writes summed" 1 writes
  | l -> Alcotest.failf "expected stats for W only, got %d" (List.length l));
  (* merging is deterministic: same shards in the same order give the
     same totals *)
  Alcotest.(check (float 1e-9)) "total" 0.85 (Profile.total_seconds a)

(* ------------------------------------------------------------------ *)
(* Compiled kernels match the interpreter                              *)
(* ------------------------------------------------------------------ *)

(* A kernel environment: one 8-element float array [W] exposed as an
   extern with a fast accessor (mirroring [Dist_array.to_extern]), a
   seeded RNG, and nothing else. *)
let kernel_len = 8

let make_kernel_env ~seed () =
  let data = Array.init kernel_len (fun i -> 0.25 *. float_of_int (i + 1)) in
  let get_f key =
    match key with
    | [| i |] when i >= 0 && i < kernel_len -> data.(i)
    | [| i |] ->
        raise
          (Interp.Runtime_error
             (Printf.sprintf "W[%d] out of bounds (length %d)" (i + 1)
                kernel_len))
    | _ -> raise (Interp.Runtime_error "W: rank mismatch")
  in
  let set_f key v =
    match key with
    | [| i |] when i >= 0 && i < kernel_len -> data.(i) <- v
    | [| i |] ->
        raise
          (Interp.Runtime_error
             (Printf.sprintf "W[%d] out of bounds (length %d)" (i + 1)
                kernel_len))
    | _ -> raise (Interp.Runtime_error "W: rank mismatch")
  in
  let point = function
    | Value.Cpoint i -> i
    | _ -> raise (Interp.Runtime_error "W: range subscripts unsupported")
  in
  let ex =
    Value.
      {
        ex_name = "W";
        ex_dims = [| kernel_len |];
        ex_get = (fun subs -> Vfloat (get_f (Array.map point subs)));
        ex_set = (fun subs v -> set_f (Array.map point subs) (to_float v));
        ex_iter =
          (fun f ->
            Array.iteri (fun i x -> f [| i |] (Value.Vfloat x)) data);
        ex_count = (fun () -> kernel_len);
        ex_fast = Some { fa_get = get_f; fa_set = set_f };
      }
  in
  let env = Interp.create_env ~seed () in
  Interp.set_var env "W" (Value.Vextern ex);
  (env, data)

(* bitwise float equality (also distinguishes -0. from 0. and compares
   NaNs equal) *)
let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let outcome_to_string = function
  | Ok () -> "ok"
  | Error msg -> "error: " ^ msg

(* Run [body] over keys 1..kernel_len interpreted and compiled, and
   demand identical observable behavior: same exception (or none), same
   final array contents bitwise, same leaked locals, same RNG state. *)
let check_compiled_matches_interpreted body_src =
  let body = parse body_src in
  let keys = Array.init kernel_len (fun i -> [| i + 1 |]) in
  let value_of i = Value.Vfloat (0.5 +. (0.125 *. float_of_int i)) in
  let env_i, data_i = make_kernel_env ~seed:42 () in
  let outcome_i =
    try
      Array.iteri
        (fun i key ->
          Interp.eval_body_for env_i ~key_var:"key" ~value_var:"v" ~key
            ~value:(value_of i) body)
        keys;
      Ok ()
    with
    | Interp.Runtime_error m -> Error ("runtime: " ^ m)
    | Value.Type_error m -> Error ("type: " ^ m)
  in
  let env_c, data_c = make_kernel_env ~seed:42 () in
  let kernel =
    match
      Compile.compile_body env_c ~value_float:true ~key_var:"key"
        ~value_var:"v" body
    with
    | Some k -> k
    | None -> Alcotest.failf "body did not compile:\n%s" body_src
  in
  let outcome_c =
    try
      Array.iteri
        (fun i key -> Compile.run kernel ~key ~value:(value_of i))
        keys;
      Ok ()
    with
    | Interp.Runtime_error m -> Error ("runtime: " ^ m)
    | Value.Type_error m -> Error ("type: " ^ m)
  in
  Compile.flush_locals kernel;
  Alcotest.(check string)
    (Printf.sprintf "same outcome for:\n%s" body_src)
    (outcome_to_string outcome_i)
    (outcome_to_string outcome_c);
  Array.iteri
    (fun i x ->
      if not (bits_eq x data_c.(i)) then
        Alcotest.failf "W[%d]: interpreted %h <> compiled %h for:\n%s" (i + 1)
          x data_c.(i) body_src)
    data_i;
  (* locals the loop leaks into the environment *)
  List.iter
    (fun name ->
      let s v = match v with Some x -> Value.to_string x | None -> "<unset>" in
      let vi = Interp.var_opt env_i name and vc = Interp.var_opt env_c name in
      Alcotest.(check string)
        (Printf.sprintf "leaked %s for:\n%s" name body_src)
        (s vi) (s vc))
    [ "t"; "n"; "u" ];
  (* both sides consumed the same randomness *)
  if outcome_i = Ok () then
    let draw env = Value.to_float (Interp.eval_builtin env "rand" []) in
    Alcotest.(check bool)
      (Printf.sprintf "same RNG state for:\n%s" body_src)
      true
      (bits_eq (draw env_i) (draw env_c))

let test_compile_handwritten_bodies () =
  List.iter check_compiled_matches_interpreted
    [
      (* scalar arithmetic, int/float mixing, key access *)
      "k = key[1]\nt = v * 2.0 + float(k)\nW[k] += t / 3.0";
      (* control flow: if/elseif/else, while with break/continue *)
      "k = key[1]\n\
       if W[k] > 1.0\n\
      \  W[k] = W[k] - 0.5\n\
       elseif W[k] > 0.5\n\
      \  W[k] = W[k] * 2.0\n\
       else\n\
      \  W[k] = W[k] + 0.25\n\
       end";
      "k = key[1]\n\
       n = 0\n\
       while true\n\
      \  n += 1\n\
      \  if n % 2 == 0\n\
      \    continue\n\
      \  end\n\
      \  if n > 5\n\
      \    break\n\
      \  end\n\
       end\n\
       W[k] = float(n)";
      (* nested range loops and vectors *)
      "k = key[1]\n\
       u = zeros(3)\n\
       for j = 1:3\n\
      \  u[j] = float(j) * v\n\
       end\n\
       t = dot(u, u) + norm(u)\n\
       W[k] = t";
      (* vector slices (checked ranges) *)
      "k = key[1]\nu = zeros(4)\nu[2] = v\ns = u[2:3]\nW[k] = s[1]";
      (* builtins: exp/log/sqrt/sigmoid/abs/min/max, int preservation *)
      "k = key[1]\n\
       a = min(k, 3)\n\
       b = max(a, 2)\n\
       t = exp(min(v, 1.0)) + log(v + 1.0) + sqrt(abs(v)) + sigmoid(v)\n\
       W[b] += t * 0.001";
      (* RNG consumption *)
      "k = key[1]\nt = rand() + randn() * 0.1\nW[k] = t";
      (* op-assign on array elements, euclidean mod, integer division *)
      "k = key[1]\nn = (0 - k) % 3 + 1\nW[n] += v\nm = 7 / 2\nW[m] -= v";
      (* error path: division by zero, same message and position *)
      "k = key[1]\nz = 0\nt = 1 / z\nW[k] = float(t)";
      (* error path: undefined variable *)
      "k = key[1]\nW[k] = undefined_thing + 1.0";
      (* error path: reversed vector range *)
      "k = key[1]\nu = zeros(3)\ns = u[3:1]\nW[k] = s[1]";
    ]

(* random bodies from a tiny grammar: scalar float/int expressions over
   the key, value, W, a float accumulator and an int counter, under
   if/for control flow — enough to cover the compiler's fast and
   generic paths *)
let gen_kernel_body : string QCheck.Gen.t =
  let open QCheck.Gen in
  let int_atom =
    oneof
      [ map string_of_int (int_range 1 5); return "k"; return "n" ]
  in
  let int_expr =
    oneof
      [
        int_atom;
        map2 (fun a b -> "(" ^ a ^ " + " ^ b ^ ")") int_atom int_atom;
        map2 (fun a b -> "(" ^ a ^ " * " ^ b ^ ")") int_atom int_atom;
        map2 (fun a b -> "(" ^ a ^ " % " ^ b ^ ")") int_atom
          (map string_of_int (int_range 2 5));
      ]
  in
  let idx = map (fun e -> "((" ^ e ^ " % 8) + 1)") int_expr in
  let float_atom =
    oneof
      [
        map (Printf.sprintf "%.3f") (float_bound_inclusive 2.0);
        return "v";
        return "t";
        return "rand()";
        map (fun i -> "W[" ^ i ^ "]") idx;
      ]
  in
  let float_expr =
    oneof
      [
        float_atom;
        map2 (fun a b -> "(" ^ a ^ " + " ^ b ^ ")") float_atom float_atom;
        map2 (fun a b -> "(" ^ a ^ " - " ^ b ^ ")") float_atom float_atom;
        map2 (fun a b -> "(" ^ a ^ " * " ^ b ^ ")") float_atom float_atom;
        map (fun a -> "exp(min(" ^ a ^ ", 1.0))") float_atom;
        map (fun a -> "sigmoid(" ^ a ^ ")") float_atom;
        map (fun a -> "sqrt(abs(" ^ a ^ "))") float_atom;
        map2 (fun a b -> "min(" ^ a ^ ", " ^ b ^ ")") float_atom float_atom;
      ]
  in
  let cmp =
    oneof
      [
        map2 (fun a b -> a ^ " < " ^ b) float_atom float_atom;
        map2 (fun a b -> a ^ " >= " ^ b) float_atom float_atom;
        map2 (fun a b -> a ^ " == " ^ b) int_atom int_atom;
      ]
  in
  let simple_stmt =
    oneof
      [
        map (fun e -> "t = " ^ e) float_expr;
        map (fun e -> "t += " ^ e) float_expr;
        map (fun e -> "t *= " ^ e) float_atom;
        map (fun e -> "n = " ^ e) int_expr;
        map2 (fun i e -> "W[" ^ i ^ "] = " ^ e) idx float_expr;
        map2 (fun i e -> "W[" ^ i ^ "] += " ^ e) idx float_expr;
        map2 (fun i e -> "W[" ^ i ^ "] -= " ^ e) idx float_atom;
      ]
  in
  let stmt =
    oneof
      [
        simple_stmt;
        map3
          (fun c a b -> "if " ^ c ^ "\n  " ^ a ^ "\nelse\n  " ^ b ^ "\nend")
          cmp simple_stmt simple_stmt;
        map2
          (fun hi body -> "for j = 1:" ^ string_of_int hi ^ "\n  " ^ body
                          ^ "\n  t += float(j)\nend")
          (int_range 1 3) simple_stmt;
      ]
  in
  let* n_stmts = int_range 1 6 in
  let+ stmts = list_repeat n_stmts stmt in
  String.concat "\n" ("k = key[1]" :: "t = v" :: "n = k" :: stmts)

let test_compile_random_bodies_qcheck () =
  QCheck.Test.make ~count:300
    ~name:"compiled kernel bitwise-matches interpreter on random bodies"
    (QCheck.make ~print:(fun s -> s) gen_kernel_body)
    (fun body_src ->
      check_compiled_matches_interpreted body_src;
      true)

let test_compile_disabled_env_var () =
  (* ORION_NO_COMPILE turns the compiler off; unsetting turns it on *)
  let with_env v f =
    let old = try Unix.getenv "ORION_NO_COMPILE" with Not_found -> "" in
    Unix.putenv "ORION_NO_COMPILE" v;
    Fun.protect ~finally:(fun () -> Unix.putenv "ORION_NO_COMPILE" old) f
  in
  with_env "1" (fun () ->
      Alcotest.(check bool) "disabled" false (Compile.enabled ()));
  with_env "0" (fun () ->
      Alcotest.(check bool) "0 means enabled" true (Compile.enabled ()));
  with_env "" (fun () ->
      Alcotest.(check bool) "empty means enabled" true (Compile.enabled ()))

let test_compile_rejects_nested_parallel_for () =
  let body =
    parse "k = key[1]\n@parallel_for for i = 1:3\n  W[i] = 0.0\nend"
  in
  let env, _ = make_kernel_env ~seed:1 () in
  match
    Compile.compile_body env ~value_float:true ~key_var:"key" ~value_var:"v"
      body
  with
  | None -> ()
  | Some _ -> Alcotest.fail "nested @parallel_for should not compile"

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          tc "basic" `Quick test_lex_basic;
          tc "floats" `Quick test_lex_floats;
          tc "comments" `Quick test_lex_comments;
          tc "operators" `Quick test_lex_operators;
          tc "macro" `Quick test_lex_macro;
          tc "string escapes" `Quick test_lex_string_escapes;
          tc "error position" `Quick test_lex_error_pos;
        ] );
      ( "parser",
        [
          tc "precedence" `Quick test_parse_precedence;
          tc "power right assoc" `Quick test_parse_power_right_assoc;
          tc "unary precedence" `Quick test_parse_unary_precedence;
          tc "comparisons" `Quick test_parse_comparison_chain;
          tc "subscripts" `Quick test_parse_subscripts;
          tc "call and tuple" `Quick test_parse_call_and_tuple;
          tc "if/elseif" `Quick test_parse_if_elseif;
          tc "for range" `Quick test_parse_for_range;
          tc "parallel for" `Quick test_parse_parallel_for;
          tc "parallel for ordered" `Quick test_parse_parallel_for_ordered;
          tc "op-assign index" `Quick test_parse_op_assign_index;
          tc "missing end" `Quick test_parse_error_missing_end;
          tc "broadcast assign" `Quick test_parse_broadcast_assign;
        ] );
      ( "pretty",
        [
          tc "roundtrip samples" `Quick test_pretty_roundtrip_samples;
          qc (test_expr_roundtrip_qcheck ());
          tc "seeded program roundtrip" `Quick test_program_roundtrip_seeded;
        ] );
      ( "interp",
        [
          tc "arith" `Quick test_interp_arith;
          tc "loops" `Quick test_interp_loops;
          tc "while/break" `Quick test_interp_while_break;
          tc "continue" `Quick test_interp_continue;
          tc "vectors" `Quick test_interp_vectors;
          tc "vector ops" `Quick test_interp_vector_ops;
          tc "builtins" `Quick test_interp_builtins;
          tc "rng deterministic" `Quick test_interp_rng_deterministic;
          tc "host call" `Quick test_interp_host_call;
          tc "extern arrays" `Quick test_interp_extern;
          tc "undefined var" `Quick test_interp_error_undefined;
          tc "division by zero" `Quick test_interp_division_by_zero;
          tc "short circuit" `Quick test_interp_short_circuit;
          tc "mf epoch converges" `Quick test_interp_mf_epoch;
          tc "tuples and index values" `Quick test_interp_tuple_and_index_values;
          tc "mod semantics" `Quick test_interp_mod_semantics;
          tc "int pow" `Quick test_interp_int_pow;
          tc "string compare" `Quick test_interp_string_compare;
          tc "vector length mismatch" `Quick test_interp_vector_length_mismatch;
          tc "index non-indexable" `Quick test_interp_index_non_indexable;
          tc "op-assign vector elt" `Quick test_interp_op_assign_vector_element;
          tc "vector range assign" `Quick test_interp_vector_range_assign;
          tc "nested loops" `Quick test_interp_nested_loops;
          tc "elseif execution" `Quick test_interp_elseif_execution;
          tc "unknown function" `Quick test_interp_unknown_function_error;
          tc "error position" `Quick test_interp_error_position;
          tc "error position nested" `Quick test_interp_error_position_nested;
          tc "min/max preserve int" `Quick test_min_max_preserve_int;
          tc "reversed range read positioned" `Quick
            test_reversed_range_read_positioned;
          tc "reversed range assign positioned" `Quick
            test_reversed_range_assign_positioned;
          tc "out-of-bounds range positioned" `Quick
            test_out_of_bounds_range_positioned;
          tc "type error positioned" `Quick test_type_error_positioned;
        ] );
      ( "compile",
        [
          tc "handwritten bodies" `Quick test_compile_handwritten_bodies;
          qc (test_compile_random_bodies_qcheck ());
          tc "ORION_NO_COMPILE" `Quick test_compile_disabled_env_var;
          tc "rejects nested parallel_for" `Quick
            test_compile_rejects_nested_parallel_for;
        ] );
      ( "check",
        [
          tc "clean program" `Quick test_check_clean_program;
          tc "undefined variable" `Quick test_check_undefined_variable;
          tc "maybe undefined" `Quick test_check_maybe_undefined;
          tc "both branches define" `Quick test_check_defined_in_both_branches;
          tc "break outside loop" `Quick test_check_break_outside_loop;
          tc "builtin arity" `Quick test_check_builtin_arity;
          tc "nested parallel_for" `Quick test_check_nested_parallel_for;
          tc "assign loop key" `Quick test_check_assign_loop_key;
          tc "loop body maybe" `Quick test_check_loop_body_definitions_are_maybe;
          tc "mf script clean" `Quick test_check_mf_script_clean;
          tc "diagnostic positions" `Quick test_check_diagnostic_positions;
          tc "position inside block" `Quick test_check_position_inside_block;
        ] );
      ( "profile",
        [
          tc "record and hot lines" `Quick test_profile_record_and_hot_lines;
          tc "interp line hits" `Quick test_profile_interp_line_hits;
          tc "array counters" `Quick test_profile_array_counters;
          tc "report renders" `Quick test_profile_report_renders;
          tc "shard merge" `Quick test_profile_merge;
        ] );
    ]
