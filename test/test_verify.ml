(* Tests for lib/verify: soundness checking of static dependence
   vectors against observed dependences, schedule race detection, and
   the end-to-end differential runner behind [orion verify]. *)

open Orion_verify
module Depvec = Orion_analysis.Depvec

let tc = Alcotest.test_case

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Coverage of observed distances by static vectors                    *)
(* ------------------------------------------------------------------ *)

let test_covers_elt () =
  let check name expect elt d =
    Alcotest.(check bool) name expect (Verify.covers_elt elt d)
  in
  check "Fin matches equal" true (Depvec.Fin 2) 2;
  check "Fin rejects other" false (Depvec.Fin 2) 3;
  check "Pos_inf needs >= 1" true Depvec.Pos_inf 5;
  check "Pos_inf rejects 0" false Depvec.Pos_inf 0;
  check "Neg_inf needs <= -1" true Depvec.Neg_inf (-1);
  check "Neg_inf rejects 0" false Depvec.Neg_inf 0;
  check "Any matches anything" true Depvec.Any (-7)

let test_covers_vector () =
  let v = [| Depvec.Fin 1; Depvec.Any |] in
  Alcotest.(check bool) "covered" true (Verify.covers v [| 1; -3 |]);
  Alcotest.(check bool) "first elt off" false (Verify.covers v [| 2; 0 |]);
  Alcotest.(check bool) "rank mismatch" false (Verify.covers v [| 1 |])

(* ------------------------------------------------------------------ *)
(* Soundness: a deliberately weakened static vector must be caught     *)
(* ------------------------------------------------------------------ *)

(* Observe mf serially, then check its edges against a static set where
   W's true vector (0, +inf) has been weakened to the single fixed
   distance (0, 1).  Every observed W dependence at time distance > 1
   must surface as a miss naming the exact offending iteration pair. *)
let test_weakened_vector_reports_pair () =
  Orion_apps.Registry.ensure ();
  let app =
    match Orion.App.find "mf" with
    | Some a -> a
    | None -> Alcotest.fail "mf app missing from registry"
  in
  let inst =
    app.Orion.App.app_make ~num_machines:2 ~workers_per_machine:2 ()
  in
  let log = Verify.observe inst in
  let edges =
    Depobserve.edges ~ordered:false
      ~skip_arrays:inst.Orion.App.inst_buffered log
  in
  Alcotest.(check bool) "mf has observed edges" true (edges <> []);
  let weakened =
    [
      ("W", [ [| Depvec.Fin 0; Depvec.Fin 1 |] ]);
      ("H", [ [| Depvec.Any; Depvec.Fin 0 |] ]);
    ]
  in
  let misses = Verify.soundness_misses ~static:weakened edges in
  Alcotest.(check bool) "weakening W is detected" true (misses <> []);
  List.iter
    (fun m ->
      Alcotest.(check string) "all misses are on W" "W" m.Verify.m_array;
      let d = m.Verify.m_distance in
      Alcotest.(check int) "same user (distance 0 in dim 0)" 0 d.(0);
      Alcotest.(check bool) "time distance not the weakened 1" true
        (d.(1) <> 1);
      (* the reported pair is the actual offending iterations: the
         distance is exactly dst - src *)
      let e = m.Verify.m_edge in
      Array.iteri
        (fun i s ->
          Alcotest.(check int) "src + distance = dst"
            e.Depobserve.e_dst.(i) (s + d.(i)))
        e.Depobserve.e_src)
    misses;
  (* the correct static set has no misses *)
  let sound =
    [
      ("W", [ [| Depvec.Fin 0; Depvec.Pos_inf |] ]);
      ("H", [ [| Depvec.Any; Depvec.Fin 0 |] ]);
    ]
  in
  Alcotest.(check int) "true vectors have no misses" 0
    (List.length (Verify.soundness_misses ~static:sound edges))

(* ------------------------------------------------------------------ *)
(* End-to-end: each built-in app verifies under its planned schedule   *)
(* ------------------------------------------------------------------ *)

let verify_passes app () =
  match Verify.verify_app app with
  | Error e -> Alcotest.failf "verify %s errored: %s" app e
  | Ok r ->
      Alcotest.(check int) "no soundness misses" 0
        (List.length r.Verify.r_misses);
      Alcotest.(check int) "no race violations" 0
        (List.length r.Verify.r_violations);
      Alcotest.(check bool)
        (Printf.sprintf "%s passes:\n%s" app (Verify.report_to_string r))
        true r.Verify.r_passed

(* ------------------------------------------------------------------ *)
(* A wrong schedule is flagged: mf forced onto a 1-D schedule races    *)
(* ------------------------------------------------------------------ *)

let test_forced_1d_mf_races () =
  match Verify.verify_app ~schedule_override:Verify.Force_1d "mf" with
  | Error e -> Alcotest.failf "forced-1d verify errored: %s" e
  | Ok r ->
      Alcotest.(check bool) "does not pass" false r.Verify.r_passed;
      Alcotest.(check bool) "violations reported" true
        (r.Verify.r_violations <> []);
      List.iter
        (fun v ->
          let e = v.Race.v_edge in
          Alcotest.(check string) "race is on H" "H"
            e.Depobserve.e_array;
          (match v.Race.v_why with
          | `Concurrent -> ()
          | `Reversed | `Unscheduled ->
              Alcotest.failf "expected a concurrent-pair violation, got: %s"
                (Race.violation_to_string v));
          (* a 1-D (user) split leaves same-item updates concurrent *)
          Alcotest.(check int) "endpoints share the item dimension"
            e.Depobserve.e_src.(1) e.Depobserve.e_dst.(1))
        r.Verify.r_violations

let test_forced_2d_mf_passes () =
  List.iter
    (fun ov ->
      match Verify.verify_app ~schedule_override:ov "mf" with
      | Error e ->
          Alcotest.failf "forced %s errored: %s"
            (Verify.override_to_string ov) e
      | Ok r ->
          Alcotest.(check bool)
            (Printf.sprintf "mf under %s passes"
               (Verify.override_to_string ov))
            true r.Verify.r_passed)
    [ Verify.Force_2d_ordered; Verify.Force_2d_unordered ]

let test_forced_2d_on_1d_space_errors () =
  match Verify.verify_app ~schedule_override:Verify.Force_2d_ordered "slr" with
  | Ok _ -> Alcotest.fail "expected an error for a 1-D iteration space"
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions dimensionality: %s" msg)
        true
        (contains ~sub:"2-D" msg || contains ~sub:"1-D" msg)

(* ------------------------------------------------------------------ *)
(* Report rendering                                                    *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Access-log shard merging                                            *)
(* ------------------------------------------------------------------ *)

let test_access_log_merge () =
  let a = Access_log.create () and b = Access_log.create () in
  Access_log.set_iter a [| 0 |];
  Access_log.record_key a ~array:"W" ~write:false [| 3 |];
  Access_log.record_key a ~array:"W" ~write:true [| 3 |];
  Access_log.set_iter b [| 1 |];
  Access_log.record_key b ~array:"W" ~write:false [| 4 |];
  Access_log.merge ~into:a b;
  let evs = Access_log.events a in
  Alcotest.(check int) "merged length" 3 (Array.length evs);
  Array.iteri
    (fun i (e : Access_log.event) ->
      Alcotest.(check int) "seq re-stamped contiguously" i e.Access_log.ev_seq)
    evs;
  Alcotest.(check (array int)) "src events keep their iter" [| 1 |]
    evs.(2).Access_log.ev_iter;
  Alcotest.(check bool) "order preserved" true
    (evs.(0).Access_log.ev_write = false
    && evs.(1).Access_log.ev_write = true
    && evs.(2).Access_log.ev_key = [| 4 |])

let test_json_report () =
  match Verify.verify_app "gbt" with
  | Error e -> Alcotest.failf "verify gbt errored: %s" e
  | Ok r ->
      let j = Verify.report_to_json r in
      let has sub = contains ~sub j in
      Alcotest.(check bool) "names the app" true (has {|"app":"gbt"|});
      Alcotest.(check bool) "has passed flag" true (has {|"passed":true|});
      Alcotest.(check bool) "has violations field" true (has {|"violations"|});
      let t = Verify.report_to_string r in
      Alcotest.(check bool) "text verdict" true (contains ~sub:"PASS" t)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "verify"
    [
      ( "covers",
        [
          tc "elements" `Quick test_covers_elt;
          tc "vectors" `Quick test_covers_vector;
        ] );
      ( "soundness",
        [ tc "weakened vector reports pair" `Quick
            test_weakened_vector_reports_pair ] );
      ("access_log", [ tc "shard merge" `Quick test_access_log_merge ]);
      ( "apps",
        [
          tc "mf" `Slow (verify_passes "mf");
          tc "slr" `Slow (verify_passes "slr");
          tc "lda" `Slow (verify_passes "lda");
          tc "gbt" `Quick (verify_passes "gbt");
        ] );
      ( "races",
        [
          tc "forced 1d mf races" `Slow test_forced_1d_mf_races;
          tc "forced 2d mf passes" `Slow test_forced_2d_mf_passes;
          tc "forced 2d on 1-D space errors" `Quick
            test_forced_2d_on_1d_space_errors;
        ] );
      ("report", [ tc "json and text" `Quick test_json_report ]);
    ]
