(* Tests for the DSM layer: DistArrays, partitioner, buffers,
   accumulators, parameter server. *)

open Orion_dsm
module V = Orion_lang.Value

(* ------------------------------------------------------------------ *)
(* DistArray                                                           *)
(* ------------------------------------------------------------------ *)

let test_dense_roundtrip () =
  let a =
    Dist_array.init_dense ~name:"a" ~dims:[| 3; 4 |]
      ~f:(fun k -> float_of_int ((k.(0) * 10) + k.(1)))
  in
  Alcotest.(check (float 0.0)) "get" 23.0 (Dist_array.get a [| 2; 3 |]);
  Dist_array.set a [| 1; 2 |] 99.0;
  Alcotest.(check (float 0.0)) "set" 99.0 (Dist_array.get a [| 1; 2 |]);
  Alcotest.(check int) "count" 12 (Dist_array.count a)

let test_sparse_roundtrip () =
  let a = Dist_array.create_sparse ~name:"s" ~dims:[| 100; 100 |] ~default:0.0 in
  Dist_array.set a [| 5; 7 |] 1.5;
  Dist_array.set a [| 99; 0 |] 2.5;
  Alcotest.(check (float 0.0)) "stored" 1.5 (Dist_array.get a [| 5; 7 |]);
  Alcotest.(check (float 0.0)) "default" 0.0 (Dist_array.get a [| 0; 0 |]);
  Alcotest.(check int) "count" 2 (Dist_array.count a);
  Alcotest.(check bool) "get_opt none" true
    (Dist_array.get_opt a [| 1; 1 |] = None)

let test_bounds_checking () =
  let a = Dist_array.fill_dense ~name:"b" ~dims:[| 2; 2 |] 0.0 in
  (try
     ignore (Dist_array.get a [| 2; 0 |]);
     Alcotest.fail "expected bounds error"
   with Dist_array.Out_of_bounds _ -> ());
  try
    ignore (Dist_array.get a [| 0 |]);
    Alcotest.fail "expected dim mismatch"
  with Dist_array.Dimension_mismatch _ -> ()

let test_iteration_deterministic_sorted () =
  let a = Dist_array.create_sparse ~name:"s" ~dims:[| 10; 10 |] ~default:0.0 in
  (* insert in scrambled order *)
  List.iter
    (fun (i, j) -> Dist_array.set a [| i; j |] (float_of_int ((i * 10) + j)))
    [ (5, 5); (0, 3); (9, 9); (2, 1); (0, 1) ];
  let keys = ref [] in
  Dist_array.iter (fun k _ -> keys := Array.to_list k :: !keys) a;
  Alcotest.(check (list (list int)))
    "ascending key order"
    [ [ 0; 1 ]; [ 0; 3 ]; [ 2; 1 ]; [ 5; 5 ]; [ 9; 9 ] ]
    (List.rev !keys)

let test_update_and_fold () =
  let a = Dist_array.create_sparse ~name:"s" ~dims:[| 4 |] ~default:0.0 in
  Dist_array.update a [| 2 |] (fun v -> v +. 1.0);
  Dist_array.update a [| 2 |] (fun v -> v +. 1.0);
  let sum = Dist_array.fold (fun acc _ v -> acc +. v) 0.0 a in
  Alcotest.(check (float 0.0)) "fold" 2.0 sum

let test_map_and_group_by () =
  let a =
    Dist_array.of_entries ~name:"e" ~dims:[| 3; 3 |] ~default:0.0
      [ ([| 0; 0 |], 1.0); ([| 0; 2 |], 2.0); ([| 2; 1 |], 3.0) ]
  in
  let b = Dist_array.map ~name:"b" ~f:(fun v -> v *. 2.0) a in
  Alcotest.(check (float 0.0)) "mapped" 4.0 (Dist_array.get b [| 0; 2 |]);
  let groups = Dist_array.group_by ~dim:0 a in
  Alcotest.(check int) "two groups" 2 (List.length groups);
  let g0 = List.assoc 0 groups in
  Alcotest.(check int) "group 0 size" 2 (List.length g0)

let test_slice_vec () =
  let a =
    Dist_array.init_dense ~name:"m" ~dims:[| 3; 4 |]
      ~f:(fun k -> float_of_int ((k.(0) * 10) + k.(1)))
  in
  let col = Dist_array.slice_vec a [| V.Call_dim; V.Cpoint 2 |] in
  Alcotest.(check (array (float 0.0))) "column" [| 2.0; 12.0; 22.0 |] col;
  let row_part = Dist_array.slice_vec a [| V.Cpoint 1; V.Crange (1, 3) |] in
  Alcotest.(check (array (float 0.0))) "row range" [| 11.0; 12.0; 13.0 |]
    row_part;
  Dist_array.set_slice_vec a [| V.Call_dim; V.Cpoint 0 |] [| 7.0; 8.0; 9.0 |];
  Alcotest.(check (float 0.0)) "set slice" 8.0 (Dist_array.get a [| 1; 0 |])

let test_extern_bridge () =
  let a = Dist_array.fill_dense ~name:"x" ~dims:[| 2; 2 |] 1.0 in
  let gets = ref 0 in
  let ex = Dist_array.to_extern ~on_get:(fun _ -> incr gets) a in
  (match ex.V.ex_get [| V.Cpoint 0; V.Cpoint 1 |] with
  | V.Vfloat 1.0 -> ()
  | _ -> Alcotest.fail "extern get");
  ex.V.ex_set [| V.Cpoint 1; V.Cpoint 1 |] (V.Vfloat 5.0);
  Alcotest.(check (float 0.0)) "extern set" 5.0 (Dist_array.get a [| 1; 1 |]);
  Alcotest.(check int) "on_get hook" 1 !gets

let test_text_file_and_checkpoint () =
  let path = Filename.temp_file "orion" ".txt" in
  let oc = open_out path in
  output_string oc "0 1 4.5\n2 2 1.5\n# comment-free format\n";
  close_out oc;
  let parse_line line =
    match String.split_on_char ' ' (String.trim line) with
    | [ i; j; v ] -> (
        try Some ([| int_of_string i; int_of_string j |], float_of_string v)
        with Failure _ -> None)
    | _ -> None
  in
  let a =
    Dist_array.text_file ~name:"t" ~dims:[| 3; 3 |] ~default:0.0 ~parse_line
      path
  in
  Alcotest.(check int) "loaded entries" 2 (Dist_array.count a);
  Alcotest.(check (float 0.0)) "value" 4.5 (Dist_array.get a [| 0; 1 |]);
  let ckpt = Filename.temp_file "orion" ".ckpt" in
  Dist_array.checkpoint a ckpt;
  let b : float Dist_array.t = Dist_array.restore ~name:"t2" ckpt in
  Alcotest.(check (float 0.0)) "restored" 1.5 (Dist_array.get b [| 2; 2 |]);
  Sys.remove path;
  Sys.remove ckpt

let test_qcheck_linearize_roundtrip () =
  QCheck.Test.make ~count:300 ~name:"linearize/delinearize roundtrip"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 4) (int_range 1 12))
        (list_of_size (Gen.int_range 1 4) (int_range 0 1000)))
    (fun (dims_l, key_seed) ->
      let dims = Array.of_list dims_l in
      QCheck.assume (List.length key_seed = Array.length dims);
      let key =
        Array.of_list (List.mapi (fun i s -> s mod dims.(i)) key_seed)
      in
      let a = Dist_array.create_sparse ~name:"q" ~dims ~default:0.0 in
      let lin = Dist_array.linearize a key in
      Dist_array.delinearize a lin = key)

(* ------------------------------------------------------------------ *)
(* Lazy pipelines                                                      *)
(* ------------------------------------------------------------------ *)

let test_pipeline_laziness () =
  (* the map function must not run until materialize *)
  let runs = ref 0 in
  let p =
    Pipeline.of_entries ~name:"p" ~dims:[| 4 |]
      [ ([| 0 |], 1.0); ([| 2 |], 2.0) ]
    |> Pipeline.map ~f:(fun _ v ->
           incr runs;
           v *. 10.0)
  in
  Alcotest.(check int) "not evaluated yet" 0 !runs;
  Alcotest.(check int) "one recorded op" 1 (Pipeline.recorded_ops p);
  let a = Pipeline.materialize ~default:0.0 p in
  Alcotest.(check int) "evaluated once per entry" 2 !runs;
  Alcotest.(check (float 0.0)) "mapped" 20.0 (Dist_array.get a [| 2 |])

let test_pipeline_fusion_single_pass () =
  (* chained maps fuse: each entry visits the chain exactly once *)
  let first = ref 0 and second = ref 0 in
  let p =
    Pipeline.of_entries ~name:"p" ~dims:[| 3 |]
      [ ([| 0 |], 1.0); ([| 1 |], 2.0); ([| 2 |], 3.0) ]
    |> Pipeline.map ~f:(fun _ v ->
           incr first;
           v +. 1.0)
    |> Pipeline.map ~f:(fun _ v ->
           incr second;
           v *. 2.0)
  in
  let a = Pipeline.materialize ~default:0.0 p in
  Alcotest.(check int) "first ran 3x" 3 !first;
  Alcotest.(check int) "second ran 3x" 3 !second;
  Alcotest.(check (float 0.0)) "composed" 8.0 (Dist_array.get a [| 2 |])

let test_pipeline_filter () =
  let p =
    Pipeline.of_entries ~name:"p" ~dims:[| 10 |]
      (List.init 10 (fun i -> ([| i |], float_of_int i)))
    |> Pipeline.filter ~f:(fun _ v -> v >= 5.0)
    |> Pipeline.map ~f:(fun _ v -> v *. 2.0)
  in
  let a = Pipeline.materialize ~default:0.0 p in
  Alcotest.(check int) "filtered count" 5 (Dist_array.count a);
  Alcotest.(check (float 0.0)) "kept and mapped" 18.0 (Dist_array.get a [| 9 |])

let test_pipeline_text_file () =
  let path = Filename.temp_file "orion" ".txt" in
  let oc = open_out path in
  output_string oc "0 1.5
1 -2.0
2 3.0
";
  close_out oc;
  let parse_line line =
    match String.split_on_char ' ' (String.trim line) with
    | [ i; v ] -> Some ([| int_of_string i |], float_of_string v)
    | _ -> None
  in
  let a =
    Pipeline.text_file ~name:"t" ~dims:[| 3 |] ~parse_line path
    |> Pipeline.filter ~f:(fun _ v -> v > 0.0)
    |> Pipeline.map ~f:(fun key v -> v +. float_of_int key.(0))
    |> Pipeline.materialize ~default:0.0
  in
  Sys.remove path;
  Alcotest.(check int) "two survive" 2 (Dist_array.count a);
  Alcotest.(check (float 0.0)) "keyed map" 5.0 (Dist_array.get a [| 2 |])

let test_pipeline_of_dist_array () =
  let base = Dist_array.fill_dense ~name:"b" ~dims:[| 2; 2 |] 3.0 in
  let a =
    Pipeline.of_dist_array base
    |> Pipeline.map ~f:(fun _ v -> v *. v)
    |> Pipeline.materialize ~default:0.0
  in
  Alcotest.(check (float 0.0)) "squared" 9.0 (Dist_array.get a [| 1; 1 |])

let test_pipeline_fusion_law_qcheck () =
  (* materialize (map f (map g p)) = materialize (map (f . g) p) *)
  QCheck.Test.make ~count:200 ~name:"pipeline map fusion law"
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range (-100.0) 100.0))
    (fun values ->
      let entries = List.mapi (fun i v -> ([| i |], v)) values in
      let dims = [| List.length values |] in
      let f _ v = (v *. 2.0) +. 1.0 and g _ v = v -. 3.0 in
      let chained =
        Pipeline.of_entries ~name:"p" ~dims entries
        |> Pipeline.map ~f:g |> Pipeline.map ~f
        |> Pipeline.materialize ~default:0.0
      in
      let composed =
        Pipeline.of_entries ~name:"p" ~dims entries
        |> Pipeline.map ~f:(fun k v -> f k (g k v))
        |> Pipeline.materialize ~default:0.0
      in
      Dist_array.entries chained = Dist_array.entries composed)

let test_group_by_partitions_entries_qcheck () =
  QCheck.Test.make ~count:200 ~name:"group_by partitions the entries"
    QCheck.(
      list_of_size (Gen.int_range 1 30) (pair (int_range 0 5) (int_range 0 5)))
    (fun pairs ->
      let entries =
        List.sort_uniq compare pairs
        |> List.map (fun (i, j) -> ([| i; j |], float_of_int ((i * 7) + j)))
      in
      QCheck.assume (entries <> []);
      let a =
        Dist_array.of_entries ~name:"g" ~dims:[| 6; 6 |] ~default:0.0 entries
      in
      let groups = Dist_array.group_by ~dim:0 a in
      let total =
        List.fold_left (fun acc (_, l) -> acc + List.length l) 0 groups
      in
      total = Dist_array.count a
      && List.for_all
           (fun (g, l) -> List.for_all (fun (key, _) -> key.(0) = g) l)
           groups)

(* ------------------------------------------------------------------ *)
(* Partitioner                                                         *)
(* ------------------------------------------------------------------ *)

let test_equal_ranges () =
  let b = Partitioner.equal_ranges ~dim_size:10 ~parts:3 in
  Alcotest.(check (array int)) "boundaries" [| 0; 3; 6; 10 |] b;
  Alcotest.(check int) "part of 0" 0 (Partitioner.part_of ~boundaries:b 0);
  Alcotest.(check int) "part of 5" 1 (Partitioner.part_of ~boundaries:b 5);
  Alcotest.(check int) "part of 9" 2 (Partitioner.part_of ~boundaries:b 9)

let test_balanced_ranges_skewed () =
  (* 80% of entries in the first index: balanced partitioning must not
     put everything in partition 0 *)
  let counts = [| 800; 25; 25; 25; 25; 25; 25; 25; 25 |] in
  let b = Partitioner.balanced_ranges ~counts ~parts:4 in
  Alcotest.(check int) "4 parts" 4 (Partitioner.num_parts b);
  let sizes = Partitioner.part_sizes ~boundaries:b ~counts in
  (* the skewed index dominates its partition but the rest spread out *)
  Alcotest.(check bool) "first cut right after hot index" true (b.(1) = 1);
  Alcotest.(check bool) "all partitions nonempty" true
    (Array.for_all (fun s -> s > 0) sizes)

let test_balanced_ranges_total_preserved () =
  QCheck.Test.make ~count:200 ~name:"balanced ranges cover everything"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 40) (int_range 0 50))
        (int_range 1 8))
    (fun (counts_l, parts) ->
      let counts = Array.of_list counts_l in
      let b = Partitioner.balanced_ranges ~counts ~parts in
      let sizes = Partitioner.part_sizes ~boundaries:b ~counts in
      b.(0) = 0
      && b.(Partitioner.num_parts b) = Array.length counts
      && Array.fold_left ( + ) 0 sizes = Array.fold_left ( + ) 0 counts
      && Array.for_all2 ( <= ) (Array.sub b 0 (Partitioner.num_parts b))
           (Array.sub b 1 (Partitioner.num_parts b)))

let test_part_of_boundaries_qcheck () =
  QCheck.Test.make ~count:200 ~name:"part_of respects boundaries"
    QCheck.(
      pair (list_of_size (Gen.int_range 1 30) (int_range 0 20)) (int_range 1 6))
    (fun (counts_l, parts) ->
      let counts = Array.of_list counts_l in
      QCheck.assume (Array.length counts >= parts);
      let b = Partitioner.balanced_ranges ~counts ~parts in
      let ok = ref true in
      for i = 0 to Array.length counts - 1 do
        let p = Partitioner.part_of ~boundaries:b i in
        if not (b.(p) <= i && i < b.(p + 1)) then ok := false
      done;
      !ok)

let test_histogram () =
  let a =
    Dist_array.of_entries ~name:"h" ~dims:[| 4; 2 |] ~default:0.0
      [ ([| 0; 0 |], 1.0); ([| 0; 1 |], 1.0); ([| 3; 0 |], 1.0) ]
  in
  Alcotest.(check (array int)) "histogram dim0" [| 2; 0; 0; 1 |]
    (Partitioner.histogram a ~dim:0)

let test_randomize_preserves_entries () =
  let entries =
    List.init 20 (fun i -> ([| i mod 10; i / 10 |], float_of_int i))
  in
  let a = Dist_array.of_entries ~name:"r" ~dims:[| 10; 2 |] ~default:0.0 entries in
  let b, perms = Partitioner.randomize a ~dims_to_shuffle:[ 0 ] in
  Alcotest.(check int) "count preserved" (Dist_array.count a)
    (Dist_array.count b);
  (* values follow their permuted keys *)
  List.iter
    (fun (key, v) ->
      let key' = [| perms.(0).(key.(0)); key.(1) |] in
      Alcotest.(check (float 0.0)) "moved value" v (Dist_array.get b key'))
    entries;
  (* dim 1 untouched *)
  Alcotest.(check (array int)) "dim1 identity" [| 0; 1 |] perms.(1)

(* ------------------------------------------------------------------ *)
(* Buffers and accumulators                                            *)
(* ------------------------------------------------------------------ *)

let test_buffer_combine_and_flush () =
  let b = Buffer.create ~name:"buf" ~num_workers:2 ~combine:( +. ) in
  Buffer.update b ~worker:0 ~key:5 1.0;
  Buffer.update b ~worker:0 ~key:5 2.0;
  Buffer.update b ~worker:0 ~key:3 10.0;
  Buffer.update b ~worker:1 ~key:5 100.0;
  Alcotest.(check int) "pending w0" 2 (Buffer.pending_count b ~worker:0);
  let items = Buffer.flush b ~worker:0 in
  Alcotest.(check bool) "sorted and combined" true
    (items = [ (3, 10.0); (5, 3.0) ]);
  Alcotest.(check int) "drained" 0 (Buffer.pending_count b ~worker:0);
  Alcotest.(check int) "w1 untouched" 1 (Buffer.pending_count b ~worker:1)

let test_buffer_flush_apply_udf () =
  let target = Array.make 10 1.0 in
  let b = Buffer.create ~name:"buf" ~num_workers:1 ~combine:( +. ) in
  Buffer.update b ~worker:0 ~key:2 0.5;
  Buffer.update b ~worker:0 ~key:7 (-0.25);
  let applied =
    Buffer.flush_apply b ~worker:0 ~udf:(fun k u ->
        target.(k) <- target.(k) +. u)
  in
  Alcotest.(check int) "two applied" 2 applied;
  Alcotest.(check (float 0.0)) "applied value" 1.5 target.(2);
  Alcotest.(check (float 0.0)) "applied value 2" 0.75 target.(7)

let test_accumulator () =
  let acc = Accumulator.create ~name:"err" ~num_workers:3 ~init:0.0 in
  Accumulator.add acc ~worker:0 ~op:( +. ) 1.0;
  Accumulator.add acc ~worker:1 ~op:( +. ) 2.0;
  Accumulator.add acc ~worker:1 ~op:( +. ) 3.0;
  Alcotest.(check (float 0.0)) "aggregate" 6.0
    (Accumulator.aggregated acc ~op:( +. ));
  Accumulator.reset acc;
  Alcotest.(check (float 0.0)) "reset" 0.0
    (Accumulator.aggregated acc ~op:( +. ))

let test_accumulator_nonneutral_init () =
  (* regression: [aggregated] used to seed the fold with [init] on top
     of the per-worker instances (which already start at [init]),
     counting a non-neutral init num_workers + 1 times *)
  let acc = Accumulator.create ~name:"count" ~num_workers:4 ~init:1.0 in
  Alcotest.(check (float 0.0)) "init counted once per worker" 4.0
    (Accumulator.aggregated acc ~op:( +. ));
  Accumulator.add acc ~worker:2 ~op:( +. ) 10.0;
  Alcotest.(check (float 0.0)) "adds on top" 14.0
    (Accumulator.aggregated acc ~op:( +. ));
  (* max with a floor init: the floor must not dominate real values *)
  let m = Accumulator.create ~name:"peak" ~num_workers:2 ~init:(-1e30) in
  Accumulator.add m ~worker:0 ~op:max 3.0;
  Accumulator.add m ~worker:1 ~op:max 7.0;
  Alcotest.(check (float 0.0)) "max aggregate" 7.0
    (Accumulator.aggregated m ~op:max)

let test_pipeline_rejects_bad_keys () =
  (* a malformed source entry fails at materialize with a message
     naming the pipeline, key and dims — not later inside the
     partitioner *)
  let expect_invalid msg p =
    Alcotest.check_raises "materialize rejects" (Invalid_argument msg)
      (fun () -> ignore (Pipeline.materialize ~default:0.0 p))
  in
  expect_invalid
    "Pipeline.materialize(oob): key (3, 99) out of bounds for declared dims \
     10x5"
    (Pipeline.of_entries ~name:"oob" ~dims:[| 10; 5 |]
       [ ([| 0; 0 |], 1.0); ([| 3; 99 |], 2.0) ]);
  expect_invalid
    "Pipeline.materialize(neg): key (-1) out of bounds for declared dims 4"
    (Pipeline.of_entries ~name:"neg" ~dims:[| 4 |] [ ([| -1 |], 1.0) ]);
  expect_invalid
    "Pipeline.materialize(arity): key (1, 2) out of bounds for declared dims 4"
    (Pipeline.of_entries ~name:"arity" ~dims:[| 4 |] [ ([| 1; 2 |], 1.0) ]);
  (* a parser emitting out-of-range keys is caught too *)
  let path = Filename.temp_file "orion_pipe" ".txt" in
  let oc = open_out path in
  output_string oc "0 1.0\n9 2.0\n";
  close_out oc;
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      expect_invalid
        "Pipeline.materialize(t): key (9) out of bounds for declared dims 3"
        (Pipeline.text_file ~name:"t" ~dims:[| 3 |]
           ~parse_line:(fun line ->
             match String.split_on_char ' ' line with
             | [ k; v ] -> Some ([| int_of_string k |], float_of_string v)
             | _ -> None)
           path))

(* ------------------------------------------------------------------ *)
(* Parameter server                                                    *)
(* ------------------------------------------------------------------ *)

let mk_cluster () =
  Orion_sim.Cluster.create ~num_machines:2 ~workers_per_machine:2
    ~cost:Orion_sim.Cost_model.default ()

let test_ps_local_visibility () =
  let c = mk_cluster () in
  let ps =
    Param_server.create ~cluster:c ~name:"w" ~size:10 ~init:(fun _ -> 0.0)
  in
  Param_server.update ps ~worker:0 3 1.5;
  Alcotest.(check (float 0.0)) "own update visible" 1.5
    (Param_server.read ps ~worker:0 3);
  Alcotest.(check (float 0.0)) "other worker does not see it" 0.0
    (Param_server.read ps ~worker:1 3);
  Alcotest.(check (float 0.0)) "master unchanged" 0.0 (Param_server.master ps).(3)

let test_ps_sync_aggregates () =
  let c = mk_cluster () in
  let ps =
    Param_server.create ~cluster:c ~name:"w" ~size:4 ~init:(fun _ -> 0.0)
  in
  Param_server.update ps ~worker:0 0 1.0;
  Param_server.update ps ~worker:1 0 2.0;
  Param_server.update ps ~worker:2 1 5.0;
  let t0 = Orion_sim.Cluster.now c in
  Param_server.sync ps;
  Alcotest.(check (float 0.0)) "summed" 3.0 (Param_server.master ps).(0);
  Alcotest.(check (float 0.0)) "other key" 5.0 (Param_server.master ps).(1);
  (* all caches refreshed *)
  Alcotest.(check (float 0.0)) "cache refreshed" 3.0
    (Param_server.read ps ~worker:3 0);
  Alcotest.(check bool) "sync costs time" true (Orion_sim.Cluster.now c > t0)

let test_ps_managed_comm_topk () =
  let c = mk_cluster () in
  let ps =
    Param_server.create ~cluster:c ~name:"w" ~size:8 ~init:(fun _ -> 0.0)
  in
  (* worker 0 has a big and a small pending delta; budget allows 1 *)
  Param_server.update ps ~worker:0 1 10.0;
  Param_server.update ps ~worker:0 2 0.1;
  let bytes = Param_server.communicate_round ps ~budget_bytes_per_worker:24.0 in
  Alcotest.(check bool) "sent something" true (bytes > 0.0);
  Alcotest.(check (float 0.0)) "large delta communicated" 10.0
    (Param_server.master ps).(1);
  Alcotest.(check (float 0.0)) "small delta still pending" 0.0
    (Param_server.master ps).(2);
  (* other workers' caches refreshed with the fresh value *)
  Alcotest.(check (float 0.0)) "fresh value propagated" 10.0
    (Param_server.read ps ~worker:3 1);
  (* worker 0 keeps seeing its pending small delta *)
  Alcotest.(check (float 0.0)) "pending visible locally" 0.1
    (Param_server.read ps ~worker:0 2)

let test_ps_random_access_charges_latency () =
  let c = mk_cluster () in
  let ps =
    Param_server.create ~cluster:c ~name:"w" ~size:4 ~init:float_of_int
  in
  let t0 = Orion_sim.Cluster.clock c 1 in
  let v = Param_server.random_access_read ps ~worker:1 2 in
  Alcotest.(check (float 0.0)) "value" 2.0 v;
  Alcotest.(check bool) "latency charged" true
    (Orion_sim.Cluster.clock c 1 -. t0 >= 2.0 *. 1e-4)

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "dsm"
    [
      ( "dist_array",
        [
          tc "dense roundtrip" `Quick test_dense_roundtrip;
          tc "sparse roundtrip" `Quick test_sparse_roundtrip;
          tc "bounds" `Quick test_bounds_checking;
          tc "sorted iteration" `Quick test_iteration_deterministic_sorted;
          tc "update/fold" `Quick test_update_and_fold;
          tc "map/group_by" `Quick test_map_and_group_by;
          tc "slice vec" `Quick test_slice_vec;
          tc "extern bridge" `Quick test_extern_bridge;
          tc "text file + checkpoint" `Quick test_text_file_and_checkpoint;
          qc (test_qcheck_linearize_roundtrip ());
        ] );
      ( "pipeline",
        [
          tc "laziness" `Quick test_pipeline_laziness;
          tc "fusion single pass" `Quick test_pipeline_fusion_single_pass;
          tc "filter" `Quick test_pipeline_filter;
          tc "text file" `Quick test_pipeline_text_file;
          tc "of dist array" `Quick test_pipeline_of_dist_array;
          tc "rejects bad keys" `Quick test_pipeline_rejects_bad_keys;
          qc (test_pipeline_fusion_law_qcheck ());
          qc (test_group_by_partitions_entries_qcheck ());
        ] );
      ( "partitioner",
        [
          tc "equal ranges" `Quick test_equal_ranges;
          tc "balanced skewed" `Quick test_balanced_ranges_skewed;
          qc (test_balanced_ranges_total_preserved ());
          qc (test_part_of_boundaries_qcheck ());
          tc "histogram" `Quick test_histogram;
          tc "randomize" `Quick test_randomize_preserves_entries;
        ] );
      ( "buffer",
        [
          tc "combine/flush" `Quick test_buffer_combine_and_flush;
          tc "flush apply udf" `Quick test_buffer_flush_apply_udf;
          tc "accumulator" `Quick test_accumulator;
          tc "accumulator non-neutral init" `Quick
            test_accumulator_nonneutral_init;
        ] );
      ( "param_server",
        [
          tc "local visibility" `Quick test_ps_local_visibility;
          tc "sync aggregates" `Quick test_ps_sync_aggregates;
          tc "managed comm topk" `Quick test_ps_managed_comm_topk;
          tc "random access latency" `Quick test_ps_random_access_charges_latency;
        ] );
    ]
