(* Tests for the worker-timeline tracer and the per-pass metrics
   derived from it: span bookkeeping, the exporters, and the aggregate
   definitions (straggler ratio, barrier-wait fraction, comm/compute
   overlap, bytes by DistArray). *)

module Trace = Orion_sim.Trace
module Metrics = Orion_sim.Metrics
module Cluster = Orion_sim.Cluster
module Cost_model = Orion_sim.Cost_model
open Orion_runtime

(* ------------------------------------------------------------------ *)
(* Tracer                                                              *)
(* ------------------------------------------------------------------ *)

let test_add_and_read_back () =
  let t = Trace.create () in
  Trace.add t ~worker:1 ~category:Trace.Compute ~label:"blk" ~start_sec:0.5
    ~duration_sec:2.0;
  Trace.add t ~worker:0 ~category:Trace.Transfer ~bytes:64.0 ~start_sec:1.0
    ~duration_sec:0.25;
  Alcotest.(check int) "two spans" 2 (Trace.length t);
  let s = (Trace.spans t).(0) in
  Alcotest.(check int) "worker" 1 s.Trace.worker;
  Alcotest.(check string) "label" "blk" s.Trace.label;
  Alcotest.(check (float 0.0)) "start" 0.5 s.Trace.start_sec;
  Alcotest.(check (float 0.0)) "duration" 2.0 s.Trace.duration_sec;
  Trace.reset t;
  Alcotest.(check int) "reset empties" 0 (Trace.length t)

let test_elides_empty_and_disabled () =
  let t = Trace.create () in
  (* zero-duration, zero-byte spans are noise and are elided *)
  Trace.add t ~worker:0 ~category:Trace.Compute ~start_sec:1.0
    ~duration_sec:0.0;
  Alcotest.(check int) "zero span elided" 0 (Trace.length t);
  (* ... but an instantaneous transfer carrying bytes is kept *)
  Trace.add t ~worker:0 ~category:Trace.Transfer ~bytes:8.0 ~start_sec:1.0
    ~duration_sec:0.0;
  Alcotest.(check int) "bytes-carrying span kept" 1 (Trace.length t);
  Trace.set_enabled t false;
  Trace.add t ~worker:0 ~category:Trace.Compute ~start_sec:2.0
    ~duration_sec:5.0;
  Alcotest.(check int) "disabled drops" 1 (Trace.length t)

let test_cap_counts_dropped () =
  let t = Trace.create ~max_spans:3 () in
  for i = 0 to 9 do
    Trace.add t ~worker:0 ~category:Trace.Compute
      ~start_sec:(float_of_int i) ~duration_sec:1.0
  done;
  Alcotest.(check int) "capped" 3 (Trace.length t);
  Alcotest.(check int) "dropped counted" 7 (Trace.dropped t)

let test_chrome_json_shape () =
  let t = Trace.create () in
  Trace.add t ~worker:1 ~category:Trace.Transfer ~label:"H \"q\""
    ~bytes:1920.0 ~start_sec:0.001 ~duration_sec:0.002;
  let json = Trace.to_chrome_json ~pid_of_worker:(fun _ -> 7) t in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true (go 0)
  in
  contains "\"schema_version\":";
  contains "\"kind\":\"trace\"";
  contains "\"traceEvents\":[";
  contains "\"ph\":\"X\"";
  contains "\"cat\":\"transfer\"";
  (* seconds exported as microseconds *)
  contains "\"ts\":1000.000";
  contains "\"dur\":2000.000";
  contains "\"pid\":7,\"tid\":1";
  contains "\"args\":{\"bytes\":1920}";
  (* label quotes are escaped *)
  contains "H \\\"q\\\""

let test_csv_shape () =
  let t = Trace.create () in
  Trace.add t ~worker:2 ~category:Trace.Marshal ~label:"a,b" ~start_sec:1.0
    ~duration_sec:0.5;
  let csv = Trace.to_csv t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int)
    "version + dropped + header + one row" 4 (List.length lines);
  Alcotest.(check string) "schema comment"
    (Printf.sprintf "# schema_version %d" Orion_report.schema_version)
    (List.hd lines);
  Alcotest.(check string) "dropped comment" "# dropped 0" (List.nth lines 1);
  Alcotest.(check string) "header" Trace.csv_header (List.nth lines 2);
  (* commas in labels must not break the column structure *)
  Alcotest.(check string) "row" "2,marshal,a;b,1.000000000,0.500000000,0"
    (List.nth lines 3)

(* ------------------------------------------------------------------ *)
(* Metrics over hand-built spans                                       *)
(* ------------------------------------------------------------------ *)

let test_metrics_overlap_and_bytes () =
  let t = Trace.create () in
  (* worker 0 computes over [0, 10]; worker 1 transfers over [5, 15]:
     half the transfer union is covered by compute *)
  Trace.add t ~worker:0 ~category:Trace.Compute ~start_sec:0.0
    ~duration_sec:10.0;
  Trace.add t ~worker:1 ~category:Trace.Transfer ~label:"H" ~bytes:100.0
    ~start_sec:5.0 ~duration_sec:10.0;
  Trace.add t ~worker:1 ~category:Trace.Transfer ~label:"W" ~bytes:40.0
    ~start_sec:5.0 ~duration_sec:1.0;
  let m = Metrics.of_trace ~num_workers:2 t in
  Alcotest.(check (float 1e-9)) "overlap" 0.5 m.Metrics.comm_compute_overlap;
  Alcotest.(check (float 1e-9)) "total bytes" 140.0 m.Metrics.total_bytes;
  Alcotest.(check (list (pair string (float 1e-9))))
    "bytes by label, largest first"
    [ ("H", 100.0); ("W", 40.0) ]
    m.Metrics.bytes_by_label;
  Alcotest.(check (float 1e-9)) "busy w0" 10.0 m.Metrics.busy_per_worker.(0);
  Alcotest.(check (float 1e-9)) "busy w1" 11.0 m.Metrics.busy_per_worker.(1);
  Alcotest.(check (float 1e-9)) "window end" 15.0 m.Metrics.window_end

let test_metrics_barrier_fraction_and_since () =
  let t = Trace.create () in
  Trace.add t ~worker:0 ~category:Trace.Compute ~start_sec:0.0
    ~duration_sec:3.0;
  Trace.add t ~worker:0 ~category:Trace.Barrier_wait ~start_sec:3.0
    ~duration_sec:1.0;
  let m = Metrics.of_trace ~num_workers:1 t in
  Alcotest.(check (float 1e-9)) "barrier fraction" 0.25
    m.Metrics.barrier_wait_fraction;
  (* scoping: only spans starting at or after [since] count *)
  let m2 = Metrics.of_trace ~since:2.5 ~num_workers:1 t in
  Alcotest.(check (float 1e-9)) "since drops earlier compute" 0.0
    m2.Metrics.compute_sec;
  Alcotest.(check (float 1e-9)) "since keeps the barrier" 1.0
    m2.Metrics.barrier_wait_sec

let test_metrics_empty_trace () =
  let m = Metrics.of_trace ~num_workers:4 (Trace.create ()) in
  Alcotest.(check (float 0.0)) "straggler defaults to 1" 1.0
    m.Metrics.straggler_ratio;
  Alcotest.(check (float 0.0)) "no overlap" 0.0 m.Metrics.comm_compute_overlap;
  Alcotest.(check (float 0.0)) "no barrier" 0.0 m.Metrics.barrier_wait_fraction

(* ------------------------------------------------------------------ *)
(* Metrics over executor runs                                          *)
(* ------------------------------------------------------------------ *)

let simple_cost =
  {
    Cost_model.default with
    language_overhead = 1.0;
    marshal_cost_sec_per_byte = 0.0;
  }

(* a dense 4-row iteration space: every row has [cols] entries, so a
   4-way 1D partition is exactly balanced *)
let balanced_iter ~cols =
  let entries = ref [] in
  for i = 0 to 3 do
    for j = 0 to cols - 1 do
      entries := ([| i; j |], 1.0) :: !entries
    done
  done;
  Orion_dsm.Dist_array.of_entries ~name:"iter" ~dims:[| 4; cols |] ~default:0.0
    !entries

let test_1d_spans_sum_to_busy () =
  let cluster =
    Cluster.create ~num_machines:2 ~workers_per_machine:2 ~cost:simple_cost ()
  in
  let iter = balanced_iter ~cols:25 in
  let s = Schedule.partition_1d iter ~space_dim:0 ~space_parts:4 in
  let per_entry = 1e-3 in
  ignore
    (Executor.run_1d cluster ~compute:(Executor.Per_entry per_entry) s
       (fun ~worker:_ ~key:_ ~value:_ -> ()));
  let m = Cluster.metrics cluster in
  (* each worker's compute spans must add up to exactly its charged
     busy time: entries x per-entry cost *)
  Array.iteri
    (fun w busy ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "worker %d busy" w)
        (25.0 *. per_entry) busy)
    m.Metrics.busy_per_worker;
  Alcotest.(check (float 1e-9)) "total compute" (100.0 *. per_entry)
    m.Metrics.compute_sec

let test_1d_balanced_straggler_is_one () =
  let cluster =
    Cluster.create ~num_machines:2 ~workers_per_machine:2 ~cost:simple_cost ()
  in
  let iter = balanced_iter ~cols:10 in
  let s = Schedule.partition_1d iter ~space_dim:0 ~space_parts:4 in
  ignore
    (Executor.run_1d cluster ~compute:(Executor.Per_entry 1e-3) s
       (fun ~worker:_ ~key:_ ~value:_ -> ()));
  let m = Cluster.metrics cluster in
  Alcotest.(check (float 1e-9)) "straggler" 1.0 m.Metrics.straggler_ratio

let test_pass_scoping_with_since () =
  (* two passes on one cluster: metrics scoped with [since] must only
     see the second pass *)
  let cluster =
    Cluster.create ~num_machines:2 ~workers_per_machine:2 ~cost:simple_cost ()
  in
  let iter = balanced_iter ~cols:10 in
  let s = Schedule.partition_1d iter ~space_dim:0 ~space_parts:4 in
  let body ~worker:_ ~key:_ ~value:_ = () in
  ignore (Executor.run_1d cluster ~compute:(Executor.Per_entry 1e-3) s body);
  let since = Cluster.now cluster in
  ignore (Executor.run_1d cluster ~compute:(Executor.Per_entry 1e-3) s body);
  let whole = Cluster.metrics cluster in
  let second = Cluster.metrics ~since cluster in
  Alcotest.(check (float 1e-9)) "whole run sees both passes"
    (2.0 *. second.Metrics.compute_sec)
    whole.Metrics.compute_sec;
  Alcotest.(check bool) "window starts at the pass" true
    (second.Metrics.window_start >= since)

let test_unordered_2d_emits_transfer_spans () =
  let cluster =
    Cluster.create ~num_machines:2 ~workers_per_machine:2 ~cost:simple_cost ()
  in
  let iter = balanced_iter ~cols:16 in
  let s =
    Schedule.partition_2d iter ~space_dim:0 ~time_dim:1 ~space_parts:4
      ~time_parts:4
  in
  ignore
    (Executor.run_2d_unordered cluster ~compute:(Executor.Per_entry 1e-4)
       ~rotated_label:"H" ~rotated_bytes_per_partition:1000.0 s
       (fun ~worker:_ ~key:_ ~value:_ -> ()));
  let m = Cluster.metrics cluster in
  let h_bytes = List.assoc_opt "H" m.Metrics.bytes_by_label in
  Alcotest.(check bool) "rotation bytes attributed to H" true
    (match h_bytes with Some b -> b > 0.0 | None -> false);
  (* every byte the cluster counted is attributed to some label *)
  Alcotest.(check (float 1e-6)) "bytes reconcile"
    cluster.Cluster.bytes_sent m.Metrics.total_bytes

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "trace"
    [
      ( "tracer",
        [
          tc "add/read back" `Quick test_add_and_read_back;
          tc "elides empty + disabled" `Quick test_elides_empty_and_disabled;
          tc "cap counts dropped" `Quick test_cap_counts_dropped;
          tc "chrome json shape" `Quick test_chrome_json_shape;
          tc "csv shape" `Quick test_csv_shape;
        ] );
      ( "metrics",
        [
          tc "overlap + bytes by label" `Quick test_metrics_overlap_and_bytes;
          tc "barrier fraction + since" `Quick
            test_metrics_barrier_fraction_and_since;
          tc "empty trace" `Quick test_metrics_empty_trace;
        ] );
      ( "executor metrics",
        [
          tc "1d spans sum to busy" `Quick test_1d_spans_sum_to_busy;
          tc "balanced 1d straggler is 1" `Quick
            test_1d_balanced_straggler_is_one;
          tc "pass scoping with since" `Quick test_pass_scoping_with_since;
          tc "unordered 2d transfer spans" `Quick
            test_unordered_2d_emits_transfer_spans;
        ] );
    ]
