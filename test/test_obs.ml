(* Tests for the backend-neutral observability layer (lib/obs): metrics
   derived from synthetic span sets with known answers, pass-window
   filtering, deterministic shard merging in {!Telemetry}, the measured
   per-block cost table, drain/import clock alignment for distributed
   shipping, monotonic-clock sanity, and drop-count surfacing in every
   export format. *)

module Clock = Orion_obs.Clock
module Trace = Orion_obs.Trace
module Metrics = Orion_obs.Metrics
module Telemetry = Orion_obs.Telemetry

let tc = Alcotest.test_case
let feq what expected got = Alcotest.(check (float 1e-9)) what expected got

(* ------------------------------------------------------------------ *)
(* Metrics from synthetic spans                                        *)
(* ------------------------------------------------------------------ *)

(* worker 0 computes for 3s; worker 1 computes for 1s then waits 2s at
   a barrier: straggler ratio 3/mean(3,1) = 1.5, barrier fraction
   2/(3+1+2) = 1/3 *)
let test_known_straggler_and_barrier () =
  let tr = Trace.create () in
  Trace.add tr ~worker:0 ~category:Trace.Compute ~start_sec:0.0
    ~duration_sec:3.0;
  Trace.add tr ~worker:1 ~category:Trace.Compute ~start_sec:0.0
    ~duration_sec:1.0;
  Trace.add tr ~worker:1 ~category:Trace.Barrier_wait ~start_sec:1.0
    ~duration_sec:2.0;
  let m = Metrics.of_trace ~num_workers:2 tr in
  feq "compute seconds" 4.0 m.Metrics.compute_sec;
  feq "barrier seconds" 2.0 m.Metrics.barrier_wait_sec;
  feq "worker 0 busy" 3.0 m.Metrics.busy_per_worker.(0);
  feq "worker 1 busy" 1.0 m.Metrics.busy_per_worker.(1);
  feq "straggler ratio" 1.5 m.Metrics.straggler_ratio;
  feq "barrier-wait fraction" (2.0 /. 6.0) m.Metrics.barrier_wait_fraction

(* transfer union [1,3) against compute [0,2): half the transfer time
   is overlapped by compute *)
let test_overlap_and_bytes () =
  let tr = Trace.create () in
  Trace.add tr ~worker:0 ~category:Trace.Compute ~start_sec:0.0
    ~duration_sec:2.0;
  Trace.add tr ~label:"H" ~bytes:100.0 ~worker:1 ~category:Trace.Transfer
    ~start_sec:1.0 ~duration_sec:2.0;
  let m = Metrics.of_trace ~num_workers:2 tr in
  feq "overlap" 0.5 m.Metrics.comm_compute_overlap;
  feq "total bytes" 100.0 m.Metrics.total_bytes;
  Alcotest.(check (list (pair string (float 1e-9))))
    "bytes by label"
    [ ("H", 100.0) ]
    m.Metrics.bytes_by_label

(* [since, until) scopes metrics to one pass window *)
let test_pass_window_filter () =
  let tr = Trace.create () in
  Trace.add tr ~worker:0 ~category:Trace.Compute ~start_sec:0.5
    ~duration_sec:1.0;
  Trace.add tr ~worker:0 ~category:Trace.Compute ~start_sec:1.5
    ~duration_sec:2.0;
  let first = Metrics.of_trace ~since:0.0 ~until:1.0 ~num_workers:1 tr in
  let second = Metrics.of_trace ~since:1.0 ~num_workers:1 tr in
  feq "first window sees only the first span" 1.0 first.Metrics.compute_sec;
  feq "second window sees only the second span" 2.0
    second.Metrics.compute_sec;
  feq "empty window has balanced straggler ratio" 1.0
    (Metrics.of_trace ~since:10.0 ~num_workers:1 tr).Metrics.straggler_ratio

(* ------------------------------------------------------------------ *)
(* Telemetry: shard merging, block costs, drain/import                 *)
(* ------------------------------------------------------------------ *)

(* the same per-shard spans recorded under different cross-shard
   interleavings merge to the same timeline (shard order) *)
let test_shard_merge_deterministic () =
  let record order =
    let t = Telemetry.create ~enabled:true ~workers:3 () in
    List.iter
      (fun shard ->
        Telemetry.span t ~shard ~worker:shard ~category:Trace.Compute
          ~label:(Printf.sprintf "w%d" shard)
          ~start:(float_of_int shard) ~finish:(float_of_int shard +. 1.0))
      order;
    Trace.spans (Telemetry.merged_trace t)
  in
  let a = record [ 0; 1; 2 ] and b = record [ 2; 0; 1 ] in
  Alcotest.(check int) "same span count" (Array.length a) (Array.length b);
  Array.iteri
    (fun i sa ->
      Alcotest.(check bool)
        (Printf.sprintf "span %d identical" i)
        true (sa = b.(i)))
    a

let test_block_costs_summed_and_sorted () =
  let t = Telemetry.create ~enabled:true ~workers:2 () in
  Telemetry.block t ~shard:0 ~worker:0 ~pass:0 ~space:1 ~time:0 ~start:0.0
    ~finish:0.5 ~entries:10;
  Telemetry.block t ~shard:1 ~worker:1 ~pass:0 ~space:0 ~time:1 ~start:0.0
    ~finish:0.25 ~entries:5;
  (* same (pass, space, time) key again, from the other shard *)
  Telemetry.block t ~shard:1 ~worker:1 ~pass:0 ~space:1 ~time:0 ~start:1.0
    ~finish:1.5 ~entries:10;
  match Telemetry.block_costs t with
  | [ a; b ] ->
      Alcotest.(check (list int))
        "sorted by (pass, space, time)"
        [ 0; 0; 1; 0; 1; 0 ]
        [
          a.Telemetry.bc_pass;
          a.Telemetry.bc_space;
          a.Telemetry.bc_time;
          b.Telemetry.bc_pass;
          b.Telemetry.bc_space;
          b.Telemetry.bc_time;
        ];
      feq "cost (0,0,1)" 0.25 a.Telemetry.bc_seconds;
      Alcotest.(check int) "entries (0,0,1)" 5 a.Telemetry.bc_entries;
      feq "cost (0,1,0) summed across shards" 1.0 b.Telemetry.bc_seconds;
      Alcotest.(check int) "entries (0,1,0) summed" 20 b.Telemetry.bc_entries
  | l -> Alcotest.failf "expected 2 cost rows, got %d" (List.length l)

(* the block span carries the (pass, time, space) label the cost table
   is keyed by *)
let test_block_span_label () =
  let t = Telemetry.create ~enabled:true ~workers:1 () in
  Telemetry.block t ~shard:0 ~worker:0 ~pass:2 ~space:3 ~time:1 ~start:0.0
    ~finish:0.5 ~entries:1;
  match Trace.spans (Telemetry.merged_trace t) with
  | [| s |] ->
      Alcotest.(check string) "block label" "p2/t1/sp3" s.Trace.label;
      Alcotest.(check bool) "compute category" true
        (s.Trace.category = Trace.Compute)
  | spans -> Alcotest.failf "expected 1 span, got %d" (Array.length spans)

(* worker-side drain hands spans over exactly once; master-side import
   shifts starts by the epoch offset (clock alignment) *)
let test_drain_then_import_aligns () =
  let worker = Telemetry.create ~enabled:true ~workers:1 () in
  Telemetry.span worker ~shard:0 ~worker:7 ~category:Trace.Compute
    ~start:1.0 ~finish:2.5;
  Telemetry.block worker ~shard:0 ~worker:7 ~pass:0 ~space:0 ~time:0
    ~start:2.5 ~finish:3.0 ~entries:4;
  let spans, costs, dropped = Telemetry.drain worker ~shard:0 in
  Alcotest.(check int) "drained both spans" 2 (Array.length spans);
  Alcotest.(check int) "drained the cost row" 1 (List.length costs);
  Alcotest.(check int) "no drops" 0 dropped;
  let again, costs2, _ = Telemetry.drain worker ~shard:0 in
  Alcotest.(check int) "second drain is empty" 0 (Array.length again);
  Alcotest.(check int) "costs drained once" 0 (List.length costs2);
  let master = Telemetry.create ~enabled:true ~workers:2 () in
  Telemetry.import_spans master ~shard:1 ~offset:10.0 spans;
  Telemetry.import_costs master ~shard:1 costs;
  Telemetry.note_dropped master ~shard:1 dropped;
  let merged = Trace.spans (Telemetry.merged_trace master) in
  Alcotest.(check int) "both spans imported" 2 (Array.length merged);
  feq "start shifted by the epoch offset" 11.0 merged.(0).Trace.start_sec;
  feq "duration preserved" 1.5 merged.(0).Trace.duration_sec;
  Alcotest.(check int) "worker id preserved" 7 merged.(0).Trace.worker;
  feq "cost preserved" 0.5
    (List.hd (Telemetry.block_costs master)).Telemetry.bc_seconds

(* disabled telemetry records nothing and never advances *)
let test_disabled_records_nothing () =
  let t = Telemetry.disabled in
  Telemetry.span t ~shard:0 ~worker:0 ~category:Trace.Compute ~start:0.0
    ~finish:1.0;
  Telemetry.block t ~shard:0 ~worker:0 ~pass:0 ~space:0 ~time:0 ~start:0.0
    ~finish:1.0 ~entries:3;
  Alcotest.(check bool) "disabled" false (Telemetry.enabled t);
  Alcotest.(check int) "no spans" 0
    (Trace.length (Telemetry.merged_trace t));
  Alcotest.(check int) "no costs" 0 (List.length (Telemetry.block_costs t));
  feq "clock reads as zero" 0.0 (Telemetry.now t)

let test_summarize_windows () =
  let t = Telemetry.create ~enabled:true ~workers:2 () in
  Telemetry.block t ~shard:0 ~worker:0 ~pass:0 ~space:0 ~time:0 ~start:0.0
    ~finish:1.0 ~entries:1;
  Telemetry.block t ~shard:0 ~worker:0 ~pass:1 ~space:0 ~time:0 ~start:2.0
    ~finish:2.5 ~entries:1;
  let sm =
    Telemetry.summarize t ~mode:"parallel"
      ~windows:[ (0, 0.0, 1.5); (1, 1.5, 3.0) ]
      ()
  in
  Alcotest.(check string) "mode" "parallel" sm.Telemetry.sm_mode;
  Alcotest.(check int) "one metrics row per pass" 2
    (List.length sm.Telemetry.sm_pass_metrics);
  (match sm.Telemetry.sm_pass_metrics with
  | [ (0, m0); (1, m1) ] ->
      feq "pass 0 compute" 1.0 m0.Metrics.compute_sec;
      feq "pass 1 compute" 0.5 m1.Metrics.compute_sec
  | _ -> Alcotest.fail "unexpected pass metrics shape");
  feq "overall compute spans both passes" 1.5
    sm.Telemetry.sm_overall.Metrics.compute_sec;
  Alcotest.(check int) "cost table in summary" 2
    (List.length sm.Telemetry.sm_block_costs)

(* ------------------------------------------------------------------ *)
(* Monotonic clock                                                     *)
(* ------------------------------------------------------------------ *)

let test_clock_monotone () =
  let t0 = Clock.now () in
  let samples = Array.init 1000 (fun _ -> Clock.now ()) in
  Alcotest.(check bool) "positive" true (t0 > 0.0);
  let prev = ref t0 in
  Array.iter
    (fun t ->
      Alcotest.(check bool) "non-decreasing" true (t >= !prev);
      prev := t)
    samples;
  Alcotest.(check bool) "elapsed is non-negative" true (Clock.elapsed t0 >= 0.0)

(* ------------------------------------------------------------------ *)
(* Drop counts surface in every export                                 *)
(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_dropped_surfaces_in_exports () =
  let tr = Trace.create ~max_spans:2 () in
  for i = 0 to 4 do
    Trace.add tr ~worker:0 ~category:Trace.Compute
      ~start_sec:(float_of_int i) ~duration_sec:1.0
  done;
  Alcotest.(check int) "capped at max_spans" 2 (Trace.length tr);
  Alcotest.(check int) "overflow counted" 3 (Trace.dropped tr);
  let chrome = Trace.to_chrome_json tr in
  Alcotest.(check bool) "chrome metadata carries dropped" true
    (contains ~needle:"\"dropped\":3" chrome);
  Alcotest.(check bool) "chrome metadata carries schema_version" true
    (contains
       ~needle:
         (Printf.sprintf "\"schema_version\":%d"
            Orion_report.schema_version)
       chrome);
  let csv = Trace.to_csv tr in
  Alcotest.(check bool) "csv comment carries dropped" true
    (contains ~needle:"# dropped 3" csv)

let test_merged_trace_inherits_shard_drops () =
  let t = Telemetry.create ~enabled:true ~workers:1 () in
  Telemetry.note_dropped t ~shard:0 5;
  Alcotest.(check int) "telemetry drop count" 5 (Telemetry.dropped t);
  Alcotest.(check int) "merged trace re-reports shard drops" 5
    (Trace.dropped (Telemetry.merged_trace t))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          tc "known straggler and barrier values" `Quick
            test_known_straggler_and_barrier;
          tc "overlap and bytes" `Quick test_overlap_and_bytes;
          tc "pass-window filtering" `Quick test_pass_window_filter;
        ] );
      ( "telemetry",
        [
          tc "shard merge is deterministic" `Quick
            test_shard_merge_deterministic;
          tc "block costs summed and sorted" `Quick
            test_block_costs_summed_and_sorted;
          tc "block span label" `Quick test_block_span_label;
          tc "drain/import clock alignment" `Quick
            test_drain_then_import_aligns;
          tc "disabled records nothing" `Quick test_disabled_records_nothing;
          tc "summarize pass windows" `Quick test_summarize_windows;
        ] );
      ("clock", [ tc "monotone" `Quick test_clock_monotone ]);
      ( "drops",
        [
          tc "surfaced in chrome and csv exports" `Quick
            test_dropped_surfaces_in_exports;
          tc "merged trace inherits shard drops" `Quick
            test_merged_trace_inherits_shard_drops;
        ] );
    ]
