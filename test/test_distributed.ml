(* Tests for the multi-process distributed runtime (lib/net): partition
   serialization, wire framing, happens-before acyclicity, end-to-end
   equivalence of [`Distributed] runs against the simulated executor
   for every registered app, transport/spawn variants, determinism, and
   the structured failure path under fault injection. *)

open Orion_dsm
open Orion_runtime
module Verify = Orion_verify.Verify

let tc = Alcotest.test_case
let qc = QCheck_alcotest.to_alcotest
let () = Orion_apps.Registry.ensure ()

(* keep the suite hermetic: in-process fork workers, bounded waits *)
let () = Unix.putenv Orion_net.Dist_master.spawn_env "fork"
let () = Unix.putenv Orion_net.Dist_worker.timeout_env "60"

(* ------------------------------------------------------------------ *)
(* Partition serialization round-trip (shared by lib/net and           *)
(* checkpointing)                                                      *)
(* ------------------------------------------------------------------ *)

let bits = Int64.bits_of_float

let qcheck_partition_roundtrip =
  QCheck.Test.make ~count:200 ~name:"partition marshal round-trip"
    QCheck.(
      triple bool
        (list_of_size (Gen.int_range 1 3) (int_range 1 5))
        (small_list (pair small_nat (float_range (-1e6) 1e6))))
    (fun (sparse, dims_l, seeds) ->
      let dims = Array.of_list dims_l in
      let a =
        if sparse then Dist_array.create_sparse ~name:"rt" ~dims ~default:0.0
        else Dist_array.fill_dense ~name:"rt" ~dims 0.0
      in
      List.iter
        (fun (kseed, v) ->
          let key = Array.mapi (fun i d -> (kseed + (i * 7)) mod d) dims in
          Dist_array.set a key v)
        seeds;
      let part = Dist_array.to_partition a in
      let part' =
        Dist_array.partition_of_bytes (Dist_array.partition_to_bytes part)
      in
      (* bitwise equality of the wire image *)
      part'.Dist_array.pt_array = part.Dist_array.pt_array
      && part'.Dist_array.pt_dims = part.Dist_array.pt_dims
      && part'.Dist_array.pt_sparse = part.Dist_array.pt_sparse
      && bits part'.Dist_array.pt_default = bits part.Dist_array.pt_default
      && Array.length part'.Dist_array.pt_entries
         = Array.length part.Dist_array.pt_entries
      && Array.for_all2
           (fun (k, v) (k', v') -> k = k' && bits v = bits v')
           part.Dist_array.pt_entries part'.Dist_array.pt_entries
      &&
      (* and of the rebuilt array *)
      let b = Dist_array.of_partition part' in
      Dist_array.is_sparse b = sparse
      && Dist_array.fold
           (fun ok key v -> ok && bits (Dist_array.get b key) = bits v)
           true a)

let qcheck_partition_select =
  QCheck.Test.make ~count:100 ~name:"partition select filters entries"
    QCheck.(small_list (pair (int_range 0 11) (float_range (-10.0) 10.0)))
    (fun seeds ->
      let a = Dist_array.fill_dense ~name:"sel" ~dims:[| 12 |] 0.0 in
      List.iter (fun (k, v) -> Dist_array.set a [| k |] v) seeds;
      let part =
        Dist_array.to_partition ~select:(fun key _ -> key.(0) < 6) a
      in
      Array.for_all (fun (lin, _) -> lin < 6) part.Dist_array.pt_entries
      &&
      (* applying onto zeros reproduces exactly the selected half *)
      let b = Dist_array.fill_dense ~name:"sel" ~dims:[| 12 |] 0.0 in
      Dist_array.apply_partition b part;
      Dist_array.fold
        (fun ok key v ->
          ok
          && bits (Dist_array.get b key)
             = bits (if key.(0) < 6 then v else 0.0))
        true a)

(* ------------------------------------------------------------------ *)
(* Happens-before edge sets are acyclic for every model and shape      *)
(* ------------------------------------------------------------------ *)

let gen_model =
  QCheck.Gen.(
    oneof
      [
        return Domain_exec.M_1d;
        return Domain_exec.M_2d_ordered;
        map (fun d -> Domain_exec.M_2d_unordered { depth = d }) (int_range 1 3);
        return Domain_exec.M_time_major;
      ])

let arb_model =
  QCheck.make gen_model ~print:(fun m -> Domain_exec.model_to_string m)

let qcheck_block_edges_acyclic =
  QCheck.Test.make ~count:300 ~name:"block_edges acyclic (toposort completes)"
    QCheck.(triple arb_model (int_range 1 6) (int_range 1 8))
    (fun (model, sp, tp) ->
      let n = sp * tp in
      let edges = Domain_exec.block_edges model ~sp ~tp in
      List.for_all (fun (s, d) -> s >= 0 && s < n && d >= 0 && d < n) edges
      &&
      (* Kahn's algorithm must consume every block *)
      let succs = Array.make n [] and pending = Array.make n 0 in
      List.iter
        (fun (s, d) ->
          succs.(s) <- d :: succs.(s);
          pending.(d) <- pending.(d) + 1)
        edges;
      let ready = ref [] in
      for b = n - 1 downto 0 do
        if pending.(b) = 0 then ready := b :: !ready
      done;
      let visited = ref 0 in
      let rec drain () =
        match !ready with
        | [] -> ()
        | b :: rest ->
            ready := rest;
            incr visited;
            List.iter
              (fun d ->
                pending.(d) <- pending.(d) - 1;
                if pending.(d) = 0 then ready := d :: !ready)
              succs.(b);
            drain ()
      in
      drain ();
      !visited = n)

(* natural_order is one valid linearization of the edge set *)
let qcheck_natural_order_linearizes =
  QCheck.Test.make ~count:300 ~name:"natural_order respects block_edges"
    QCheck.(triple arb_model (int_range 1 6) (int_range 1 8))
    (fun (model, sp, tp) ->
      let pos = Hashtbl.create 16 in
      Array.iteri
        (fun i (s, t) -> Hashtbl.replace pos ((s * tp) + t) i)
        (Domain_exec.natural_order model ~sp ~tp);
      List.for_all
        (fun (src, dst) -> Hashtbl.find pos src < Hashtbl.find pos dst)
        (Domain_exec.block_edges model ~sp ~tp))

(* ------------------------------------------------------------------ *)
(* Frame + wire round-trip over a real socketpair                      *)
(* ------------------------------------------------------------------ *)

let test_wire_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let ca = Orion_net.Transport.wrap a and cb = Orion_net.Transport.wrap b in
  let msgs =
    [
      Orion_net.Wire.Hello
        { h_rank = 3; h_pid = 42; h_version = Orion_net.Wire.version };
      Orion_net.Wire.Peers [| "unix:/tmp/w0"; "tcp:127.0.0.1:9999" |];
      Orion_net.Wire.Peer_hello
        { ph_rank = 1; ph_version = Orion_net.Wire.version };
      Orion_net.Wire.Rotation_token
        {
          rt_pass = 1;
          rt_src = 5;
          rt_dst = 6;
          rt_entries =
            Orion_net.Wire.Entries
              [
                {
                  bw_pass = 1;
                  bw_block = 5;
                  bw_writes =
                    [|
                      { w_array = "H"; w_key = [| 2; 3 |]; w_value = -0.125 };
                    |];
                };
              ];
        };
      Orion_net.Wire.Pass_sync
        {
          ps_pass = 0;
          ps_rank = 1;
          ps_entries = Orion_net.Wire.Packed_entries (Bytes.of_string "xyz");
        };
      Orion_net.Wire.Shutdown;
    ]
  in
  List.iter (fun m -> Orion_net.Transport.send ca m) msgs;
  List.iter
    (fun sent ->
      match Orion_net.Transport.recv cb with
      | Some got ->
          Alcotest.(check string)
            "same message kind" (Orion_net.Wire.tag sent)
            (Orion_net.Wire.tag got);
          Alcotest.(check bool) "same payload" true (got = sent)
      | None -> Alcotest.fail "unexpected EOF")
    msgs;
  Unix.close a;
  (match Orion_net.Transport.recv cb with
  | None -> ()
  | Some _ -> Alcotest.fail "expected EOF after close");
  Unix.close b

let test_addr_roundtrip () =
  List.iter
    (fun addr ->
      Alcotest.(check string)
        "addr round-trips"
        (Orion_net.Transport.addr_to_string addr)
        (Orion_net.Transport.addr_to_string
           (Orion_net.Transport.addr_of_string
              (Orion_net.Transport.addr_to_string addr))))
    [ `Unix "/tmp/x.sock"; `Tcp ("127.0.0.1", 8080) ]

(* ------------------------------------------------------------------ *)
(* Communication policies: codec round-trips and filter semantics      *)
(* ------------------------------------------------------------------ *)

module Policy = Orion_net.Policy

(* a fixed two-array model for the sender/receiver properties *)
let pol_dims = [ ("W", [| 4; 5 |]); ("h", [| 16 |]) ]

let pol_lin name (key : int array) =
  let dims = List.assoc name pol_dims in
  let lin = ref 0 in
  Array.iteri (fun i _ -> lin := (!lin * dims.(i)) + key.(i)) dims;
  !lin

let pol_delin name lin =
  let dims = List.assoc name pol_dims in
  let n = Array.length dims in
  let key = Array.make n 0 in
  let rem = ref lin in
  for i = n - 1 downto 0 do
    key.(i) <- !rem mod dims.(i);
    rem := !rem / dims.(i)
  done;
  key

let pol_stats =
  (* one dense-ish and one sparse array, so [auto] exercises both key
     modes (the records are plain data — no need to build arrays) *)
  [
    ( "W",
      {
        Dist_array.st_cells = 20;
        st_stored = 20;
        st_nnz = 16;
        st_density = 0.8;
        st_sparse = false;
      } );
    ( "h",
      {
        Dist_array.st_cells = 16;
        st_stored = 2;
        st_nnz = 2;
        st_density = 0.125;
        st_sparse = true;
      } );
  ]

(* random journal: writes chunked into blocks 0, 1, ... of pass 0 *)
let mk_entries seeds : Orion_net.Wire.block_writes list =
  let writes =
    List.map
      (fun (w, kseed, v) ->
        let name = if w then "W" else "h" in
        let key = pol_delin name (kseed mod 20) in
        { Orion_net.Wire.w_array = name; w_key = key; w_value = v })
      seeds
  in
  let rec chunk b = function
    | [] -> []
    | ws ->
        let n = min 3 (List.length ws) in
        let head = List.filteri (fun i _ -> i < n) ws
        and tail = List.filteri (fun i _ -> i >= n) ws in
        { Orion_net.Wire.bw_pass = 0; bw_block = b; bw_writes = Array.of_list head }
        :: chunk (b + 1) tail
  in
  chunk 0 writes

(* last-writer-wins state of a journal, keyed (array, key) *)
let lww_state (entries : Orion_net.Wire.block_writes list) =
  let st = Hashtbl.create 32 in
  List.iter
    (fun (bw : Orion_net.Wire.block_writes) ->
      Array.iter
        (fun (w : Orion_net.Wire.write) ->
          Hashtbl.replace st (w.w_array, Array.to_list w.w_key) (bits w.w_value))
        bw.bw_writes)
    entries;
  st

let same_state a b =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold (fun k v ok -> ok && Hashtbl.find_opt b k = Some v) a true

(* every decoded write is some journaled write, bitwise, in its own
   (pass, block) group *)
let subset_of entries decoded =
  List.for_all
    (fun (bw : Orion_net.Wire.block_writes) ->
      Array.for_all
        (fun (w : Orion_net.Wire.write) ->
          List.exists
            (fun (bw' : Orion_net.Wire.block_writes) ->
              bw'.bw_pass = bw.bw_pass
              && bw'.bw_block = bw.bw_block
              && Array.exists
                   (fun (w' : Orion_net.Wire.write) ->
                     w'.w_array = w.w_array && w'.w_key = w.w_key
                     && bits w'.w_value = bits w.w_value)
                   bw'.bw_writes)
            entries)
        bw.bw_writes)
    decoded

let pol_specs =
  [ Policy.Auto; Policy.Full; Policy.Delta; Policy.Topk 2; Policy.Budget 64.0 ]

let gen_seeds =
  QCheck.(
    small_list (triple bool small_nat (float_range (-1e3) 1e3)))

(* decode ∘ encode round-trips exactly the writes the policy chose to
   send, and a pass-sync flush is state-complete under every policy *)
let qcheck_policy_sync_roundtrip =
  QCheck.Test.make ~count:200 ~name:"policy sync flush round-trips LWW state"
    gen_seeds
    (fun seeds ->
      let entries = mk_entries seeds in
      List.for_all
        (fun spec ->
          let sender =
            Policy.sender spec ~peers:1 ~linearize:pol_lin ~pos:(fun b -> b)
          in
          Policy.note_pass sender pol_stats;
          let payload, accounts =
            Policy.prepare sender ~peer:0 ~sync:true entries
          in
          let decoded = Policy.decode_entries ~delinearize:pol_delin payload in
          subset_of entries decoded
          && same_state (lww_state entries) (lww_state decoded)
          && List.for_all (fun (_, b, f) -> b >= 0.0 && f >= 0.0) accounts)
        pol_specs)

(* mid-pass, a lossy policy sends a bounded subset; the suppressed
   residuals complete the state at the next sync flush *)
let qcheck_policy_residual_flush =
  QCheck.Test.make ~count:200 ~name:"suppressed residuals flush at pass sync"
    gen_seeds
    (fun seeds ->
      let entries = mk_entries seeds in
      List.for_all
        (fun (spec, cap) ->
          let sender =
            Policy.sender spec ~peers:1 ~linearize:pol_lin ~pos:(fun b -> b)
          in
          Policy.note_pass sender pol_stats;
          let mid, _ = Policy.prepare sender ~peer:0 ~sync:false entries in
          let flush, _ = Policy.prepare sender ~peer:0 ~sync:true [] in
          let dm = Policy.decode_entries ~delinearize:pol_delin mid in
          let df = Policy.decode_entries ~delinearize:pol_delin flush in
          let sent =
            List.fold_left
              (fun acc (bw : Orion_net.Wire.block_writes) ->
                acc + Array.length bw.bw_writes)
              0 dm
          in
          (match cap with Some k -> sent <= k | None -> true)
          && subset_of entries dm
          && subset_of entries df
          (* kept and residual element sets are disjoint, so applying
             the two payloads in order reconstructs the LWW state *)
          && same_state (lww_state entries) (lww_state (dm @ df)))
        [ (Policy.Topk 2, Some 2); (Policy.Budget 64.0, None) ])

let qcheck_packed_partition_roundtrip =
  QCheck.Test.make ~count:200 ~name:"packed partition codec round-trip"
    QCheck.(
      triple bool
        (list_of_size (Gen.int_range 1 3) (int_range 1 5))
        (small_list (pair small_nat (float_range (-1e6) 1e6))))
    (fun (sparse, dims_l, seeds) ->
      let dims = Array.of_list dims_l in
      let a =
        if sparse then Dist_array.create_sparse ~name:"pk" ~dims ~default:0.0
        else Dist_array.fill_dense ~name:"pk" ~dims 0.0
      in
      List.iter
        (fun (kseed, v) ->
          let key = Array.mapi (fun i d -> (kseed + (i * 7)) mod d) dims in
          Dist_array.set a key v)
        seeds;
      let part = Dist_array.to_partition a in
      List.for_all
        (fun mode ->
          let part' = Policy.decode_part (Policy.encode_part ~mode part) in
          part'.Dist_array.pt_array = part.Dist_array.pt_array
          && part'.Dist_array.pt_dims = part.Dist_array.pt_dims
          && part'.Dist_array.pt_sparse = part.Dist_array.pt_sparse
          && bits part'.Dist_array.pt_default = bits part.Dist_array.pt_default
          && Array.length part'.Dist_array.pt_entries
             = Array.length part.Dist_array.pt_entries
          && Array.for_all2
               (fun (k, v) (k', v') -> k = k' && bits v = bits v')
               part.Dist_array.pt_entries part'.Dist_array.pt_entries)
        [ `Sparse; `Dense ])

let test_policy_spec_strings () =
  List.iter
    (fun (s, expect) ->
      match Policy.spec_of_string s with
      | Ok spec ->
          Alcotest.(check string)
            (Printf.sprintf "%S parses" s)
            expect (Policy.spec_to_string spec)
      | Error e -> Alcotest.failf "%S should parse, got: %s" s e)
    [
      ("auto", "auto");
      ("", "auto");
      ("full", "full");
      ("delta", "delta");
      ("topk:16", "topk:16");
      ("budget:65536", "budget:65536");
    ];
  List.iter
    (fun s ->
      match Policy.spec_of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ "bogus"; "topk:"; "topk:0"; "topk:x"; "budget:-1"; "budget:" ]

(* ------------------------------------------------------------------ *)
(* End-to-end: distributed runs match the simulated executor           *)
(* ------------------------------------------------------------------ *)

let find_app name =
  match Orion.App.find name with
  | Some a -> a
  | None -> Alcotest.failf "app %s missing from registry" name

(* the reference instance must have the same cluster shape as the
   distributed one: schedule shape determines entry execution order,
   which order-sensitive apps (sgd mf, lda) are bitwise sensitive to *)
let run_sim (app : Orion.App.t) ~procs ~passes =
  let inst =
    app.Orion.App.app_make ~num_machines:procs ~workers_per_machine:1 ()
  in
  ignore (Orion.Engine.run inst.Orion.App.inst_session inst ~mode:`Sim ~passes ());
  inst.Orion.App.inst_outputs

let run_dist ?(transport = `Unix) ?comms (app : Orion.App.t) ~procs ~passes =
  let inst =
    app.Orion.App.app_make ~num_machines:procs ~workers_per_machine:1 ()
  in
  let report =
    Orion.Engine.run inst.Orion.App.inst_session inst
      ~mode:(`Distributed { Orion.Engine.procs; transport })
      ~passes ?comms ()
  in
  (inst.Orion.App.inst_outputs, report)

let run_dist_loss ?comms (app : Orion.App.t) ~procs ~passes =
  let inst =
    app.Orion.App.app_make ~num_machines:procs ~workers_per_machine:1 ()
  in
  let report =
    Orion.Engine.run inst.Orion.App.inst_session inst
      ~mode:(`Distributed { Orion.Engine.procs; transport = `Unix })
      ~passes ?comms ()
  in
  let loss =
    match app.Orion.App.app_loss with
    | Some f -> f inst
    | None -> Alcotest.failf "%s has no loss" app.Orion.App.app_name
  in
  (loss, report)

let check_outputs ~what ~tolerance a b =
  List.iter2
    (fun (name_a, arr_a) (_, arr_b) ->
      let d = Verify.diff_arrays name_a arr_a arr_b in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s equal (max abs %.3e, max rel %.3e)" what
           name_a d.Verify.d_max_abs d.Verify.d_max_rel)
        true
        (Verify.diff_ok ~tolerance d))
    a b

let distributed_matches_sim name procs () =
  let app = find_app name in
  let sim = run_sim app ~procs ~passes:2 in
  let dist, report = run_dist app ~procs ~passes:2 in
  check_outputs
    ~what:(Printf.sprintf "%s distributed(%d) vs sim" name procs)
    ~tolerance:app.Orion.App.app_tolerance sim dist;
  Alcotest.(check bool)
    "workers executed every entry twice" true
    (report.Orion.Engine.ep_entries > 0
    && report.Orion.Engine.ep_entries mod 2 = 0);
  Alcotest.(check bool)
    "some DistArray state travelled the wire" true
    (report.Orion.Engine.ep_bytes_shipped > 0.0
    && report.Orion.Engine.ep_bytes_by_array <> [])

(* rank-order accumulator merge makes even buffered apps bitwise
   deterministic across distributed runs *)
let distributed_deterministic name () =
  let app = find_app name in
  let r1, _ = run_dist app ~procs:2 ~passes:2 in
  let r2, _ = run_dist app ~procs:2 ~passes:2 in
  check_outputs ~what:(name ^ " run1 vs run2") ~tolerance:None r1 r2

(* [delta] only drops writes that a newer write in the same payload
   supersedes; under last-writer-wins receivers that is invisible, so
   the run must be bitwise-equal to [full] *)
let delta_matches_full name () =
  let app = find_app name in
  let full, rf = run_dist ~comms:"full" app ~procs:2 ~passes:2 in
  let delta, rd = run_dist ~comms:"delta" app ~procs:2 ~passes:2 in
  check_outputs
    ~what:(name ^ " delta vs full")
    ~tolerance:None full delta;
  Alcotest.(check string) "report names the policy" "delta"
    rd.Orion.Engine.ep_comms;
  Alcotest.(check string) "full report names the policy" "full"
    rf.Orion.Engine.ep_comms;
  Alcotest.(check bool) "delta reports per-array decisions" true
    (rd.Orion.Engine.ep_policy_by_array <> []);
  Alcotest.(check bool)
    (Printf.sprintf "delta ships fewer bytes (%.0f vs full %.0f)"
       rd.Orion.Engine.ep_bytes_shipped rf.Orion.Engine.ep_bytes_shipped)
    true
    (rd.Orion.Engine.ep_bytes_shipped < rf.Orion.Engine.ep_bytes_shipped)

(* the lossy policies trade mid-pass staleness for bandwidth: strictly
   fewer bytes on the wire, final loss within a small relative drift *)
let lossy_policy_drift name spec () =
  let app = find_app name in
  let procs = 2 and passes = 2 in
  let loss_full, rf = run_dist_loss ~comms:"full" app ~procs ~passes in
  let loss, r = run_dist_loss ~comms:spec app ~procs ~passes in
  Alcotest.(check bool)
    (Printf.sprintf "%s %s ships fewer bytes (%.0f vs full %.0f)" name spec
       r.Orion.Engine.ep_bytes_shipped rf.Orion.Engine.ep_bytes_shipped)
    true
    (r.Orion.Engine.ep_bytes_shipped < rf.Orion.Engine.ep_bytes_shipped);
  let drift =
    Float.abs (loss -. loss_full) /. Float.max 1e-12 (Float.abs loss_full)
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s %s final-loss drift %.2e <= 1e-3 (loss %.6f vs %.6f)"
       name spec drift loss loss_full)
    true (drift <= 1e-3)

let tcp_smoke () =
  let app = find_app "mf" in
  let sim = run_sim app ~procs:2 ~passes:1 in
  let dist, _ = run_dist ~transport:`Tcp app ~procs:2 ~passes:1 in
  check_outputs ~what:"mf over tcp vs sim" ~tolerance:None sim dist

(* spawn through the real orion_worker executable (exec path) *)
let exec_spawn_smoke () =
  let exe =
    (* the test binary lives in _build/default/test; the worker is a
       declared dep one directory over *)
    let candidates =
      [
        Filename.concat
          (Filename.dirname Sys.executable_name)
          "../bin/orion_worker.exe";
        Filename.concat (Sys.getcwd ()) "../bin/orion_worker.exe";
        Filename.concat (Sys.getcwd ())
          "_build/default/bin/orion_worker.exe";
      ]
    in
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None ->
        Alcotest.failf "orion_worker.exe not found near %s"
          Sys.executable_name
  in
  Unix.putenv Orion_net.Dist_master.spawn_env ("exec:" ^ exe);
  Fun.protect
    ~finally:(fun () -> Unix.putenv Orion_net.Dist_master.spawn_env "fork")
    (fun () ->
      let app = find_app "mf" in
      let sim = run_sim app ~procs:2 ~passes:1 in
      let dist, _ = run_dist app ~procs:2 ~passes:1 in
      check_outputs ~what:"mf via exec'd workers vs sim" ~tolerance:None sim
        dist)

(* ------------------------------------------------------------------ *)
(* Telemetry: worker spans shipped over the wire merge into one        *)
(* clock-aligned multi-process timeline                                *)
(* ------------------------------------------------------------------ *)

let distributed_telemetry_merged_timeline () =
  let app = find_app "mf" in
  let inst =
    app.Orion.App.app_make ~num_machines:2 ~workers_per_machine:1 ()
  in
  let passes = 2 in
  let r =
    Orion.Engine.run inst.Orion.App.inst_session inst
      ~mode:(`Distributed { Orion.Engine.procs = 2; transport = `Unix })
      ~passes ~telemetry:true ()
  in
  match r.Orion.Engine.ep_telemetry with
  | None -> Alcotest.fail "distributed run produced no telemetry"
  | Some sm ->
      Alcotest.(check string) "mode" "distributed" sm.Orion.Telemetry.sm_mode;
      Alcotest.(check int) "one shard per worker" 2
        sm.Orion.Telemetry.sm_workers;
      let spans = Orion.Trace.spans sm.Orion.Telemetry.sm_trace in
      Alcotest.(check bool) "merged timeline is non-empty" true
        (Array.length spans > 0);
      (* each worker's spans are recorded sequentially, so after the
         master shifts them by the epoch offset they must still read as
         a monotone per-worker timeline on the master clock *)
      let last = Hashtbl.create 4 in
      let workers_seen = Hashtbl.create 4 in
      Array.iter
        (fun s ->
          Hashtbl.replace workers_seen s.Orion.Trace.worker ();
          Alcotest.(check bool) "span start is on the master timeline" true
            (s.Orion.Trace.start_sec >= 0.0);
          (match Hashtbl.find_opt last s.Orion.Trace.worker with
          | Some prev ->
              Alcotest.(check bool)
                (Printf.sprintf "worker %d timeline is monotone"
                   s.Orion.Trace.worker)
                true
                (s.Orion.Trace.start_sec >= prev)
          | None -> ());
          Hashtbl.replace last s.Orion.Trace.worker
            s.Orion.Trace.start_sec)
        spans;
      Alcotest.(check int) "both workers contributed spans" 2
        (Hashtbl.length workers_seen);
      Alcotest.(check int) "one metrics row per pass" passes
        (List.length sm.Orion.Telemetry.sm_pass_metrics);
      let overall = sm.Orion.Telemetry.sm_overall in
      Alcotest.(check bool) "nonzero compute time" true
        (overall.Orion.Metrics.compute_sec > 0.0);
      Alcotest.(check bool) "finite straggler ratio" true
        (Float.is_finite overall.Orion.Metrics.straggler_ratio);
      Alcotest.(check bool) "rotation traffic carries bytes" true
        (overall.Orion.Metrics.total_bytes > 0.0);
      Alcotest.(check bool) "per-block cost table is non-empty" true
        (sm.Orion.Telemetry.sm_block_costs <> [])

(* ------------------------------------------------------------------ *)
(* Failure path: a worker aborting mid-pass surfaces as a structured   *)
(* error within a bounded time, with no leftover workers               *)
(* ------------------------------------------------------------------ *)

let fault_injection () =
  Unix.putenv Orion_net.Dist_worker.abort_rank_env "1";
  Unix.putenv Orion_net.Dist_worker.timeout_env "30";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv Orion_net.Dist_worker.abort_rank_env "";
      Unix.putenv Orion_net.Dist_worker.timeout_env "60")
    (fun () ->
      let app = find_app "mf" in
      let t0 = Unix.gettimeofday () in
      (match run_dist app ~procs:2 ~passes:2 with
      | _ -> Alcotest.fail "aborting worker did not fail the run"
      | exception Orion.Engine.Distributed_error { de_rank; de_reason } ->
          Alcotest.(check (option int)) "failing rank identified" (Some 1)
            de_rank;
          Alcotest.(check bool)
            (Printf.sprintf "reason names the abort: %S" de_reason)
            true
            (de_reason <> ""));
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "failed fast (%.1fs)" elapsed)
        true (elapsed < 25.0))

(* ------------------------------------------------------------------ *)
(* Kill-and-resume: a run checkpointed every pass and killed mid-pass  *)
(* by fault injection resumes from the newest checkpoint to the same   *)
(* final state as the uninterrupted run                                *)
(* ------------------------------------------------------------------ *)

module Checkpoint = Orion_store.Checkpoint

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let dist_kill_and_resume name ~tolerance () =
  let app = find_app name in
  let procs = 2 and passes = 3 in
  let mode = `Distributed { Orion.Engine.procs; transport = `Unix } in
  let make () =
    app.Orion.App.app_make ~num_machines:procs ~workers_per_machine:1 ()
  in
  (* truth: uninterrupted run; its report also tells us how many blocks
     one rank executes per pass (ep_time_parts), which positions the
     fault injection at the start of pass 2 *)
  let truth = make () in
  let report =
    Orion.Engine.run truth.Orion.App.inst_session truth ~mode ~passes ()
  in
  let blocks_per_pass = report.Orion.Engine.ep_time_parts in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "orion-dist-resume-%d-%s" (Unix.getpid ()) name)
  in
  rm_rf dir;
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      Unix.putenv Orion_net.Dist_worker.abort_rank_env "";
      Unix.putenv Orion_net.Dist_worker.abort_after_env "")
    (fun () ->
      (* killed run: rank 1 exits just before its first block of pass 2,
         after its pass-0 and pass-1 reports reached the master *)
      Unix.putenv Orion_net.Dist_worker.abort_rank_env "1";
      Unix.putenv Orion_net.Dist_worker.abort_after_env
        (string_of_int (2 * blocks_per_pass));
      let inst1 = make () in
      let sink ~pass_done arrays =
        ignore
          (Checkpoint.save ~dir
             (Checkpoint.snapshot ~app:name ~scale:1.0 ~pass:pass_done
                ~total_passes:passes
                ~rng:
                  (Orion.Interp.Rng.state
                     inst1.Orion.App.inst_env.Orion.Interp.rng)
                arrays))
      in
      (match
         Orion.Engine.run inst1.Orion.App.inst_session inst1 ~mode ~passes
           ~checkpoint:(1, sink) ()
       with
      | _ -> Alcotest.fail "aborting worker did not fail the run"
      | exception Orion.Engine.Distributed_error _ -> ());
      Unix.putenv Orion_net.Dist_worker.abort_rank_env "";
      Unix.putenv Orion_net.Dist_worker.abort_after_env "";
      (* resume from whatever the master managed to checkpoint before
         the crash surfaced (at least pass 1) *)
      match Checkpoint.latest dir with
      | None -> Alcotest.fail "killed run left no checkpoint"
      | Some (_, s) ->
          Alcotest.(check bool)
            (Printf.sprintf "checkpoint is mid-run (pass %d)"
               s.Checkpoint.ck_pass)
            true
            (s.Checkpoint.ck_pass >= 1 && s.Checkpoint.ck_pass < passes);
          let inst2 = make () in
          Checkpoint.restore s inst2.Orion.App.inst_arrays;
          Orion.Interp.Rng.set_state
            inst2.Orion.App.inst_env.Orion.Interp.rng s.Checkpoint.ck_rng;
          ignore
            (Orion.Engine.run inst2.Orion.App.inst_session inst2 ~mode
               ~passes:(passes - s.Checkpoint.ck_pass) ());
          check_outputs
            ~what:(Printf.sprintf "%s killed-and-resumed vs uninterrupted"
                     name)
            ~tolerance truth.Orion.App.inst_outputs
            inst2.Orion.App.inst_outputs)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "distributed"
    [
      ( "serialization",
        [
          qc qcheck_partition_roundtrip;
          qc qcheck_partition_select;
          tc "wire round-trip over socketpair" `Quick test_wire_roundtrip;
          tc "address strings round-trip" `Quick test_addr_roundtrip;
        ] );
      ( "happens_before",
        [ qc qcheck_block_edges_acyclic; qc qcheck_natural_order_linearizes ]
      );
      ( "comms_policies",
        [
          tc "spec strings parse and print" `Quick test_policy_spec_strings;
          qc qcheck_policy_sync_roundtrip;
          qc qcheck_policy_residual_flush;
          qc qcheck_packed_partition_roundtrip;
          tc "mf delta == full" `Slow (delta_matches_full "mf");
          tc "slr delta == full" `Slow (delta_matches_full "slr");
          tc "lda delta == full" `Slow (delta_matches_full "lda");
          tc "gbt delta == full" `Slow (delta_matches_full "gbt");
          tc "mf topk drift" `Slow (lossy_policy_drift "mf" "topk:256");
          tc "mf budget drift" `Slow (lossy_policy_drift "mf" "budget:65536");
          tc "lda budget drift" `Slow
            (lossy_policy_drift "lda" "budget:65536");
        ] );
      ( "equivalence",
        [
          tc "mf procs=2" `Slow (distributed_matches_sim "mf" 2);
          tc "mf procs=4" `Slow (distributed_matches_sim "mf" 4);
          tc "slr procs=2" `Slow (distributed_matches_sim "slr" 2);
          tc "slr procs=4" `Slow (distributed_matches_sim "slr" 4);
          tc "lda procs=2" `Slow (distributed_matches_sim "lda" 2);
          tc "lda procs=4" `Slow (distributed_matches_sim "lda" 4);
          tc "gbt procs=2" `Quick (distributed_matches_sim "gbt" 2);
          tc "gbt procs=4" `Slow (distributed_matches_sim "gbt" 4);
        ] );
      ( "determinism",
        [
          tc "mf" `Slow (distributed_deterministic "mf");
          tc "slr" `Slow (distributed_deterministic "slr");
        ] );
      ( "transports",
        [
          tc "mf over tcp" `Slow tcp_smoke;
          tc "mf via exec'd workers" `Slow exec_spawn_smoke;
        ] );
      ( "telemetry",
        [
          tc "2-proc merged timeline is clock-aligned" `Quick
            distributed_telemetry_merged_timeline;
        ] );
      ("failure", [ tc "worker abort mid-pass" `Quick fault_injection ]);
      ( "kill_and_resume",
        [
          tc "mf" `Quick (dist_kill_and_resume "mf" ~tolerance:None);
          tc "lda" `Quick (dist_kill_and_resume "lda" ~tolerance:None);
        ] );
    ]
