(* Tests for the static dependence analysis: subscript abstraction,
   Algorithm 2, strategy decision, unimodular transforms, prefetch
   synthesis. *)

open Orion_analysis

let dv l = Array.of_list l

(* substring containment without extra deps *)
let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let replace_first s ~sub ~by =
  let n = String.length s and m = String.length sub in
  let rec find i = if i + m > n then None else if String.sub s i m = sub then Some i else find (i + 1) in
  match find 0 with
  | None -> s
  | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)

let check_dvecs msg expected actual =
  let to_s ds = String.concat " " (List.map Depvec.to_string ds) in
  let sort = List.sort compare in
  Alcotest.(check string) msg (to_s (sort expected)) (to_s (sort actual))

(* The paper's running example (Fig. 5 / Fig. 6): SGD matrix
   factorization. *)
let sgd_mf_loop_src =
  {|
@parallel_for for (key, rv) in ratings
  W_row = W[:, key[1]]
  H_row = H[:, key[2]]
  pred = dot(W_row, H_row)
  diff = rv - pred
  W_grad = -2.0 * diff * H_row
  H_grad = -2.0 * diff * W_row
  W[:, key[1]] = W_row - W_grad * step_size
  H[:, key[2]] = H_row - H_grad * step_size
end
|}

let parse_loop src =
  match Orion_lang.Parser.parse_program src with
  | [ ({ Orion_lang.Ast.sk = Orion_lang.Ast.For _; _ } as stmt) ] -> stmt
  | _ -> Alcotest.fail "expected a single for-loop"

let analyze_mf ?(ordered = false) () =
  let src =
    if ordered then
      replace_first sgd_mf_loop_src ~sub:"@parallel_for"
        ~by:"@parallel_for ordered"
    else sgd_mf_loop_src
  in
  let stmt = parse_loop src in
  Refs.analyze_loop
    ~dist_vars:[ "ratings"; "W"; "H" ]
    ~buffered_arrays:[] ~iter_space_ndims:2 stmt

(* ------------------------------------------------------------------ *)
(* Reference extraction                                                *)
(* ------------------------------------------------------------------ *)

let test_mf_refs () =
  let info = analyze_mf () in
  Alcotest.(check string) "iteration space" "ratings" info.iter_space;
  Alcotest.(check int) "ndims" 2 info.ndims;
  let reads =
    List.filter (fun (r : Refs.ref_info) -> not r.is_write) info.refs
  in
  let writes = List.filter (fun (r : Refs.ref_info) -> r.is_write) info.refs in
  Alcotest.(check int) "2 reads" 2 (List.length reads);
  Alcotest.(check int) "2 writes" 2 (List.length writes);
  let w_read = List.find (fun (r : Refs.ref_info) -> r.array = "W") reads in
  Alcotest.(check bool) "W read static" true w_read.all_static;
  (match w_read.subs with
  | [| Subscript.Range_all; Subscript.Loop_index { dim = 0; offset = 0 } |] ->
      ()
  | _ -> Alcotest.fail "W read subscripts wrong");
  let h_write = List.find (fun (r : Refs.ref_info) -> r.array = "H") writes in
  match h_write.subs with
  | [| Subscript.Range_all; Subscript.Loop_index { dim = 1; offset = 0 } |] ->
      ()
  | _ -> Alcotest.fail "H write subscripts wrong"

let test_mf_inherited () =
  let info = analyze_mf () in
  Alcotest.(check bool)
    "step_size inherited" true
    (List.mem "step_size" info.inherited);
  Alcotest.(check bool)
    "W_row not inherited (assigned in body)" false
    (List.mem "W_row" info.inherited)

let test_mf_runtime_vars () =
  let info = analyze_mf () in
  (* rv is the loop value; pred and diff derive from it / from reads *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (v ^ " runtime-tainted") true
        (List.mem v info.runtime_vars))
    [ "rv"; "pred"; "diff"; "W_row"; "H_row" ]

(* ------------------------------------------------------------------ *)
(* Dependence vectors (Alg. 2)                                         *)
(* ------------------------------------------------------------------ *)

let test_mf_dvecs () =
  let info = analyze_mf () in
  let result = Depanalysis.analyze info in
  (* Paper Fig. 6: dependence vectors are (0, inf) and (inf, 0). *)
  check_dvecs "MF dependence vectors"
    [ dv [ Depvec.Fin 0; Depvec.Any ]; dv [ Depvec.Any; Depvec.Fin 0 ] ]
    result.all;
  let w_deps = List.assoc "W" result.per_array in
  check_dvecs "W deps" [ dv [ Depvec.Fin 0; Depvec.Any ] ] w_deps;
  let h_deps = List.assoc "H" result.per_array in
  check_dvecs "H deps" [ dv [ Depvec.Any; Depvec.Fin 0 ] ] h_deps

let test_mf_ordered_same_dvecs () =
  (* write-write pairs are skipped for unordered loops, but here the
     read-write pairs already produce the same vectors, so ordered
     analysis yields the same set *)
  let info = analyze_mf ~ordered:true () in
  let result = Depanalysis.analyze info in
  check_dvecs "MF ordered dvecs"
    [ dv [ Depvec.Fin 0; Depvec.Any ]; dv [ Depvec.Any; Depvec.Fin 0 ] ]
    result.all

let loop_of_body ?(arr_dims = 2) body_src ~dist_vars ~buffered =
  let src =
    Printf.sprintf "@parallel_for for (key, v) in data\n%s\nend" body_src
  in
  let stmt = parse_loop src in
  Refs.analyze_loop ~dist_vars:("data" :: dist_vars)
    ~buffered_arrays:buffered ~iter_space_ndims:arr_dims stmt

let test_offset_dvec () =
  (* A[key[1]] and A[key[1] - 1]: classic distance-1 dependence *)
  let info =
    loop_of_body ~arr_dims:1 "A[key[1]] = A[key[1] - 1] + v"
      ~dist_vars:[ "A" ] ~buffered:[]
  in
  let result = Depanalysis.analyze info in
  check_dvecs "distance-1" [ dv [ Depvec.Fin 1 ] ] result.all

let test_lex_correction () =
  (* A[key[1]] read, A[key[1] + 1] written: raw distance is -1, must be
     corrected to +1 *)
  let info =
    loop_of_body ~arr_dims:1 "x = A[key[1]]\nA[key[1] + 1] = x + v"
      ~dist_vars:[ "A" ] ~buffered:[]
  in
  let result = Depanalysis.analyze info in
  check_dvecs "lex-corrected" [ dv [ Depvec.Fin 1 ] ] result.all

let test_const_subscripts_independent () =
  (* writes to two different constant positions never conflict *)
  let info =
    loop_of_body ~arr_dims:1 "A[1] = v\nx = A[2]" ~dist_vars:[ "A" ]
      ~buffered:[]
  in
  let result = Depanalysis.analyze info in
  (* the write-write self pair is skipped (unordered); A[1] vs A[2] are
     proven independent *)
  check_dvecs "const positions independent" [] result.all

let test_const_subscript_write_write_ordered () =
  let src =
    "@parallel_for ordered for (key, v) in data\nA[1] = v\nend"
  in
  let stmt = parse_loop src in
  let info =
    Refs.analyze_loop ~dist_vars:[ "data"; "A" ] ~buffered_arrays:[]
      ~iter_space_ndims:1 stmt
  in
  let result = Depanalysis.analyze info in
  (* every iteration writes A[1]: all-Any dependence in an ordered loop *)
  check_dvecs "ww const" [ dv [ Depvec.Any ] ] result.all

let test_conflicting_distance_independent () =
  (* A[key[1], key[1]] vs A[key[1]+1, key[1]]: position 1 forces
     distance 1, position 2 forces 0 — contradictory, so independent *)
  let info =
    loop_of_body ~arr_dims:1 "A[key[1], key[1]] = A[key[1] + 1, key[1]] + v"
      ~dist_vars:[ "A" ] ~buffered:[]
  in
  let result = Depanalysis.analyze info in
  check_dvecs "contradictory distances" [] result.all

let test_unknown_subscript_conservative () =
  (* subscript depends on the loop value: conservatively Any *)
  let info =
    loop_of_body ~arr_dims:1 "i = int(v)\nw[i] = w[i] + 1.0"
      ~dist_vars:[ "w" ] ~buffered:[]
  in
  let result = Depanalysis.analyze info in
  check_dvecs "runtime subscript" [ dv [ Depvec.Any ] ] result.all;
  let r = List.hd info.refs in
  Alcotest.(check bool) "not static" false r.all_static

let test_buffered_writes_exempt () =
  let info =
    loop_of_body ~arr_dims:1 "i = int(v)\nw_buf[i] = w_buf[i] + 1.0"
      ~dist_vars:[ "w_buf" ] ~buffered:[ "w_buf" ]
  in
  let result = Depanalysis.analyze info in
  check_dvecs "buffered exempt" [] result.all

(* ------------------------------------------------------------------ *)
(* Strategy decision                                                   *)
(* ------------------------------------------------------------------ *)

let mf_dims = function
  | "W" -> Some [| 100; 4000 |]
  | "H" -> Some [| 100; 3000 |]
  | "ratings" -> Some [| 4000; 3000 |]
  | _ -> None

let test_mf_strategy_2d () =
  let info = analyze_mf () in
  let plan = Plan.decide info ~array_dims:mf_dims ~iter_count:100000.0 in
  (match plan.strategy with
  | Plan.Two_d { space_dim; time_dim } ->
      (* W (keyed by dim 0) is larger than H, so dim 0 should be the
         space dimension and H the rotated array *)
      Alcotest.(check int) "space dim" 0 space_dim;
      Alcotest.(check int) "time dim" 1 time_dim
  | s -> Alcotest.fail ("expected 2D, got " ^ Plan.strategy_to_string s));
  Alcotest.(check bool) "unordered" false plan.ordered;
  (match List.assoc "W" plan.placements with
  | Plan.Local_partitioned { array_dim = 1 } -> ()
  | p -> Alcotest.fail ("W placement: " ^ Plan.placement_to_string p));
  match List.assoc "H" plan.placements with
  | Plan.Rotated { array_dim = 1 } -> ()
  | p -> Alcotest.fail ("H placement: " ^ Plan.placement_to_string p)

let test_mf_strategy_rotates_smaller () =
  (* swap sizes: H now bigger, so space dim should flip to 1 *)
  let dims = function
    | "W" -> Some [| 100; 3000 |]
    | "H" -> Some [| 100; 90000 |]
    | "ratings" -> Some [| 3000; 90000 |]
    | _ -> None
  in
  let info = analyze_mf () in
  let plan = Plan.decide info ~array_dims:dims ~iter_count:100000.0 in
  match plan.strategy with
  | Plan.Two_d { space_dim = 1; time_dim = 0 } -> ()
  | s -> Alcotest.fail ("expected space=1: " ^ Plan.strategy_to_string s)

let test_slr_strategy_data_parallel_1d () =
  (* sparse logistic regression: runtime subscripts on w, buffered *)
  let body =
    {|
idx = v[2]
val = v[3]
margin = 0.0
for k = 1:length(idx)
  margin += w[int(idx[k])] * val[k]
end
p = sigmoid(margin)
g = p - v[1]
for k = 1:length(idx)
  w_buf[int(idx[k])] += -1.0 * step_size * g * val[k]
end
|}
  in
  let info =
    loop_of_body ~arr_dims:1 body ~dist_vars:[ "w"; "w_buf" ]
      ~buffered:[ "w_buf" ]
  in
  let plan =
    Plan.decide info
      ~array_dims:(function
        | "w" | "w_buf" -> Some [| 1000000 |]
        | "data" -> Some [| 50000 |]
        | _ -> None)
      ~iter_count:50000.0
  in
  (match plan.strategy with
  | Plan.One_d { space_dim = 0 } -> ()
  | s -> Alcotest.fail ("expected 1D: " ^ Plan.strategy_to_string s));
  (match List.assoc "w" plan.placements with
  | Plan.Server -> ()
  | p -> Alcotest.fail ("w placement: " ^ Plan.placement_to_string p));
  Alcotest.(check (list string)) "prefetch w" [ "w" ] plan.prefetch_arrays

let test_unbuffered_conflicts_fall_back () =
  let info =
    loop_of_body ~arr_dims:1 "i = int(v)\nw[i] = w[i] + 1.0"
      ~dist_vars:[ "w" ] ~buffered:[]
  in
  let plan =
    Plan.decide info
      ~array_dims:(function "w" -> Some [| 1000 |] | _ -> None)
      ~iter_count:1000.0
  in
  (match plan.strategy with
  | Plan.Data_parallel -> ()
  | s ->
      Alcotest.fail ("expected data parallel: " ^ Plan.strategy_to_string s));
  Alcotest.(check (list string)) "requires buffers" [ "w" ]
    plan.requires_buffers

let test_lda_strategy () =
  (* LDA: doc-topic keyed by doc, word-topic keyed by word, totals
     buffered *)
  let body =
    {|
old_t = int(v)
doc_topic[key[1], old_t] = doc_topic[key[1], old_t] - 1.0
word_topic[key[2], old_t] = word_topic[key[2], old_t] - 1.0
new_t = old_t
doc_topic[key[1], new_t] = doc_topic[key[1], new_t] + 1.0
word_topic[key[2], new_t] = word_topic[key[2], new_t] + 1.0
totals_buf[old_t] += -1.0
totals_buf[new_t] += 1.0
|}
  in
  let info =
    loop_of_body ~arr_dims:2 body
      ~dist_vars:[ "doc_topic"; "word_topic"; "totals"; "totals_buf" ]
      ~buffered:[ "totals_buf" ]
  in
  let plan =
    Plan.decide info
      ~array_dims:(function
        | "doc_topic" -> Some [| 30000; 100 |]
        | "word_topic" -> Some [| 10000; 100 |]
        | "totals" | "totals_buf" -> Some [| 100 |]
        | "data" -> Some [| 30000; 10000 |]
        | _ -> None)
      ~iter_count:1000000.0
  in
  match plan.strategy with
  | Plan.Two_d { space_dim = 0; time_dim = 1 } ->
      (* word_topic is smaller than doc_topic: rotated *)
      (match List.assoc "word_topic" plan.placements with
      | Plan.Rotated _ -> ()
      | p ->
          Alcotest.fail ("word_topic placement: " ^ Plan.placement_to_string p))
  | s -> Alcotest.fail ("expected 2D: " ^ Plan.strategy_to_string s)

let test_one_d_preferred_over_two_d_on_tie () =
  (* refs constrain only dimension 0: both 1D (dim 0) and 2D apply;
     the decision must take the cheaper/earlier 1D candidate *)
  let info =
    loop_of_body ~arr_dims:2 "A[key[1]] = A[key[1]] + v" ~dist_vars:[ "A" ]
      ~buffered:[]
  in
  let plan =
    Plan.decide info
      ~array_dims:(function
        | "A" -> Some [| 100 |] | "data" -> Some [| 100; 80 |] | _ -> None)
      ~iter_count:1000.0
  in
  match plan.strategy with
  | Plan.One_d { space_dim = 0 } -> ()
  | s -> Alcotest.fail (Plan.strategy_to_string s)

let test_explain_data_parallel_warning () =
  let info =
    loop_of_body ~arr_dims:1 "i = int(v)\nw[i] = w[i] + 1.0"
      ~dist_vars:[ "w" ] ~buffered:[]
  in
  let plan =
    Plan.decide info
      ~array_dims:(function "w" -> Some [| 50 |] | _ -> None)
      ~iter_count:100.0
  in
  let text = Plan.explain_to_string plan in
  Alcotest.(check bool) "warns about buffers" true
    (contains ~sub:"DistArray Buffers" text);
  Alcotest.(check bool) "names the array" true (contains ~sub:"w" text)

let test_summarize_arrays () =
  let info = analyze_mf () in
  let summaries =
    Plan.summarize_arrays info
      ~array_dims:(function
        | "W" -> Some [| 8; 40 |]
        | "H" -> Some [| 8; 30 |]
        | _ -> None)
  in
  let w = List.find (fun s -> s.Plan.name = "W") summaries in
  Alcotest.(check bool) "W not read-only" false w.Plan.read_only;
  Alcotest.(check bool) "W keyed by iter dim 0 at pos 1" true
    (List.mem (0, 1) w.Plan.keyed_by);
  Alcotest.(check (float 0.0)) "W size" 320.0 w.Plan.size

let test_read_only_array_replicated () =
  (* a small array only read with static subscripts gets replicated *)
  let info =
    loop_of_body ~arr_dims:2
      "x = bias[1]\nA[key[1], key[2]] = v + x"
      ~dist_vars:[ "A"; "bias" ] ~buffered:[]
  in
  let plan =
    Plan.decide info
      ~array_dims:(function
        | "A" -> Some [| 40; 30 |]
        | "bias" -> Some [| 4 |]
        | "data" -> Some [| 40; 30 |]
        | _ -> None)
      ~iter_count:500.0
  in
  match List.assoc "bias" plan.placements with
  | Plan.Replicated -> ()
  | p -> Alcotest.fail (Plan.placement_to_string p)

let test_correct_positive_involution_qcheck () =
  QCheck.Test.make ~count:300 ~name:"correct_positive is idempotent"
    QCheck.(
      list_of_size (Gen.int_range 1 4)
        (oneof
           [
             map (fun v -> Depvec.Fin v) (int_range (-5) 5);
             oneofl Depvec.[ Pos_inf; Neg_inf; Any ];
           ]))
    (fun l ->
      let d = Array.of_list l in
      match Depvec.correct_positive d with
      | None -> Depvec.is_all_zero d
      | Some d' -> (
          Depvec.lex_status d' = `Positive
          &&
          match Depvec.correct_positive d' with
          | Some d'' -> Depvec.equal d' d''
          | None -> false))

(* ------------------------------------------------------------------ *)
(* Soundness of Algorithm 2 against a brute-force oracle               *)
(* ------------------------------------------------------------------ *)

(* Enumerate a small concrete iteration space and check that every
   actually-conflicting pair of iterations is covered by some computed
   dependence vector.  Subscripts are drawn from the analyzable forms
   plus Range_all (conservative). *)

type concrete_pos = Wild | At of int

let concrete_sub (p : int array) = function
  | Subscript.Loop_index { dim; offset } -> At (p.(dim) + offset)
  | Subscript.Const c -> At c
  | Subscript.Range_all | Subscript.Unknown -> Wild

let positions_alias a b =
  match (a, b) with Wild, _ | _, Wild -> true | At x, At y -> x = y

let refs_conflict (a : Refs.ref_info) (b : Refs.ref_info) p q =
  Array.length a.subs = Array.length b.subs
  && Array.for_all2 positions_alias
       (Array.map (concrete_sub p) a.subs)
       (Array.map (concrete_sub q) b.subs)

(* does [d] (or its negation) match dependence vector [dv]? *)
let distance_covered (d : int array) (dv : Depvec.t) =
  let matches sign =
    Array.for_all2
      (fun di e ->
        match e with
        | Depvec.Fin v -> sign * di = v
        | Depvec.Any -> true
        | Depvec.Pos_inf -> sign * di >= 1
        | Depvec.Neg_inf -> sign * di <= -1)
      d dv
  in
  matches 1 || matches (-1)

let gen_subscript =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun dim offset -> Subscript.Loop_index { dim; offset })
              (int_range 0 1) (int_range (-1) 1));
        (1, map (fun c -> Subscript.Const c) (int_range 0 2));
        (1, return Subscript.Range_all);
      ])

let gen_ref =
  QCheck.Gen.(
    map2
      (fun subs is_write ->
        {
          Refs.array = "D";
          subs = Array.of_list subs;
          is_write;
          all_static = true;
        })
      (list_size (return 2) gen_subscript)
      bool)

let gen_loop_refs = QCheck.Gen.(list_size (int_range 2 4) gen_ref)

let alg2_soundness ~ordered =
  QCheck.Test.make ~count:300
    ~name:
      (Printf.sprintf "Alg 2 covers all concrete dependences (%s)"
         (if ordered then "ordered" else "unordered"))
    (QCheck.make gen_loop_refs)
    (fun refs ->
      QCheck.assume
        (List.exists (fun (r : Refs.ref_info) -> r.is_write) refs);
      let info =
        {
          Refs.iter_space = "data";
          key_var = "key";
          value_var = "v";
          ordered;
          ndims = 2;
          refs;
          inherited = [];
          runtime_vars = [];
          buffered_arrays = [];
        }
      in
      let dvecs = (Depanalysis.analyze info).Depanalysis.all in
      (* brute force over a 4x4 iteration space *)
      let ok = ref true in
      let size = 4 in
      for p0 = 0 to size - 1 do
        for p1 = 0 to size - 1 do
          for q0 = 0 to size - 1 do
            for q1 = 0 to size - 1 do
              if (p0, p1) <> (q0, q1) then
                let p = [| p0; p1 |] and q = [| q0; q1 |] in
                List.iter
                  (fun (a : Refs.ref_info) ->
                    List.iter
                      (fun (b : Refs.ref_info) ->
                        let relevant =
                          (a.is_write || b.is_write)
                          && not
                               ((not ordered) && a.is_write && b.is_write)
                        in
                        if relevant && refs_conflict a b p q then begin
                          let d = [| p0 - q0; p1 - q1 |] in
                          if
                            not
                              (List.exists (distance_covered d) dvecs)
                          then ok := false
                        end)
                      refs)
                  refs
            done
          done
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Unimodular transformations                                          *)
(* ------------------------------------------------------------------ *)

let test_unimodular_identity () =
  (* all deps already carried by outermost loop *)
  let dvecs = [ dv [ Depvec.Fin 1; Depvec.Fin 0 ] ] in
  match Unimodular.find_transform ~ndims:2 dvecs with
  | Some t ->
      Alcotest.(check bool) "identity works" true
        (t = Unimodular.identity 2)
  | None -> Alcotest.fail "no transform"

let test_unimodular_interchange () =
  let dvecs = [ dv [ Depvec.Fin 0; Depvec.Fin 1 ] ] in
  match Unimodular.find_transform ~ndims:2 dvecs with
  | Some t ->
      let d' = Unimodular.transform_dvec t (dv [ Depvec.Fin 0; Depvec.Fin 1 ]) in
      (match d'.(0) with
      | Depvec.Fin v -> Alcotest.(check bool) "carried" true (v >= 1)
      | Depvec.Pos_inf -> ()
      | _ -> Alcotest.fail "not carried")
  | None -> Alcotest.fail "no transform"

let test_unimodular_skew () =
  (* the classic wavefront case: {(1, -1), (0, 1)} needs skewing *)
  let dvecs =
    [ dv [ Depvec.Fin 1; Depvec.Fin (-1) ]; dv [ Depvec.Fin 0; Depvec.Fin 1 ] ]
  in
  match Unimodular.find_transform ~ndims:2 dvecs with
  | Some t ->
      Alcotest.(check bool) "unimodular" true (Unimodular.is_unimodular t);
      List.iter
        (fun d ->
          let d' = Unimodular.transform_dvec t d in
          match d'.(0) with
          | Depvec.Fin v when v >= 1 -> ()
          | Depvec.Pos_inf -> ()
          | e ->
              Alcotest.fail
                ("dep not carried by outer loop: " ^ Depvec.elt_to_string e))
        dvecs
  | None -> Alcotest.fail "no transform found"

let test_unimodular_not_applicable_any () =
  let dvecs = [ dv [ Depvec.Any; Depvec.Fin 0 ] ] in
  Alcotest.(check bool) "Any blocks unimodular" true
    (Unimodular.find_transform ~ndims:2 dvecs = None)

let test_complete_to_unimodular_qcheck () =
  QCheck.Test.make ~count:200 ~name:"complete_to_unimodular det = +/-1"
    QCheck.(
      list_of_size (Gen.int_range 1 4) (int_range (-20) 20))
    (fun l ->
      let w = Array.of_list l in
      let g = Unimodular.gcd_list l in
      QCheck.assume (g = 1);
      let t = Unimodular.complete_to_unimodular w in
      Unimodular.is_unimodular t && t.(0) = w)

let test_inverse_qcheck () =
  QCheck.Test.make ~count:100 ~name:"inverse of unimodular is inverse"
    QCheck.(list_of_size (Gen.int_range 2 4) (int_range (-9) 9))
    (fun l ->
      let w = Array.of_list l in
      QCheck.assume (Unimodular.gcd_list l = 1);
      let t = Unimodular.complete_to_unimodular w in
      let ti = Unimodular.inverse t in
      let n = Array.length t in
      Unimodular.mat_mul t ti = Unimodular.identity n)

(* ------------------------------------------------------------------ *)
(* Prefetch synthesis                                                  *)
(* ------------------------------------------------------------------ *)

let test_prefetch_slr () =
  let body_src =
    {|
idx = v[2]
vals = v[3]
margin = 0.0
for k = 1:length(idx)
  margin += w[int(idx[k])] * vals[k]
end
|}
  in
  let body = Orion_lang.Parser.parse_program body_src in
  let gen, stats =
    Prefetch.synthesize ~dist_vars:[ "w" ] ~targets:[ "w" ] body
  in
  Alcotest.(check int) "one recordable read" 1 stats.recorded;
  Alcotest.(check int) "no skipped reads" 0 stats.skipped;
  let text = Prefetch.to_string gen in
  Alcotest.(check bool) "records w" true (contains ~sub:"__record(\"w\"" text);
  Alcotest.(check bool) "keeps the feature loop" true
    (contains ~sub:"for k = 1:length(idx)" text)

let test_prefetch_skips_distarray_dependent () =
  (* the subscript of B depends on a value read from A: not recorded *)
  let body =
    Orion_lang.Parser.parse_program "i = int(A[key[1]])\nx = B[i]"
  in
  let gen, stats =
    Prefetch.synthesize ~dist_vars:[ "A"; "B" ] ~targets:[ "A"; "B" ] body
  in
  Alcotest.(check int) "A recorded" 1 stats.recorded;
  Alcotest.(check int) "B skipped" 1 stats.skipped;
  let text = Prefetch.to_string gen in
  Alcotest.(check bool) "records A" true (contains ~sub:"__record(\"A\"" text);
  Alcotest.(check bool) "does not record B" false
    (contains ~sub:"__record(\"B\"" text)

let test_prefetch_nested_read_skipped () =
  (* the backward slice of w's first subscript reaches a read of the
     dist-array q, so that read cannot be prefetched and is skipped;
     q's own read and w's clean second read are still recorded *)
  let body =
    Orion_lang.Parser.parse_program
      "x = w[int(q[key[1]])]\ny = w[key[1]]"
  in
  let gen, stats =
    Prefetch.synthesize ~dist_vars:[ "w"; "q" ] ~targets:[ "w"; "q" ] body
  in
  Alcotest.(check int) "q and clean w read recorded" 2 stats.recorded;
  Alcotest.(check int) "nested w read skipped" 1 stats.skipped;
  let text = Prefetch.to_string gen in
  Alcotest.(check bool) "records q" true (contains ~sub:"__record(\"q\"" text);
  Alcotest.(check bool) "records w at key[1]" true
    (contains ~sub:"__record(\"w\", key[1])" text)

let test_prefetch_tainted_condition_over_records () =
  let body =
    Orion_lang.Parser.parse_program
      "if A[key[1]] > 0.0\n  x = B[key[1]]\nelse\n  x = C[key[1]]\nend"
  in
  let _, stats =
    Prefetch.synthesize ~dist_vars:[ "A"; "B"; "C" ]
      ~targets:[ "A"; "B"; "C" ] body
  in
  (* A's read recorded; both branches' reads recorded (over-approx) *)
  Alcotest.(check int) "three records" 3 stats.recorded

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "analysis"
    [
      ( "refs",
        [
          tc "mf refs" `Quick test_mf_refs;
          tc "mf inherited" `Quick test_mf_inherited;
          tc "mf runtime vars" `Quick test_mf_runtime_vars;
        ] );
      ( "depvecs",
        [
          tc "mf dvecs" `Quick test_mf_dvecs;
          tc "mf ordered dvecs" `Quick test_mf_ordered_same_dvecs;
          tc "offset distance" `Quick test_offset_dvec;
          tc "lex correction" `Quick test_lex_correction;
          tc "const independent" `Quick test_const_subscripts_independent;
          tc "ww const ordered" `Quick test_const_subscript_write_write_ordered;
          tc "contradictory" `Quick test_conflicting_distance_independent;
          tc "unknown conservative" `Quick test_unknown_subscript_conservative;
          tc "buffered exempt" `Quick test_buffered_writes_exempt;
          qc (alg2_soundness ~ordered:false);
          qc (alg2_soundness ~ordered:true);
        ] );
      ( "strategy",
        [
          tc "mf 2d" `Quick test_mf_strategy_2d;
          tc "mf rotates smaller" `Quick test_mf_strategy_rotates_smaller;
          tc "slr 1d data parallel" `Quick test_slr_strategy_data_parallel_1d;
          tc "unbuffered fallback" `Quick test_unbuffered_conflicts_fall_back;
          tc "lda 2d" `Quick test_lda_strategy;
          tc "1d preferred on tie" `Quick test_one_d_preferred_over_two_d_on_tie;
          tc "explain dp warning" `Quick test_explain_data_parallel_warning;
          tc "summarize arrays" `Quick test_summarize_arrays;
          tc "read-only replicated" `Quick test_read_only_array_replicated;
          qc (test_correct_positive_involution_qcheck ());
        ] );
      ( "unimodular",
        [
          tc "identity" `Quick test_unimodular_identity;
          tc "interchange" `Quick test_unimodular_interchange;
          tc "skew" `Quick test_unimodular_skew;
          tc "any blocks" `Quick test_unimodular_not_applicable_any;
          qc (test_complete_to_unimodular_qcheck ());
          qc (test_inverse_qcheck ());
        ] );
      ( "prefetch",
        [
          tc "slr prefetch" `Quick test_prefetch_slr;
          tc "skips distarray-dependent" `Quick
            test_prefetch_skips_distarray_dependent;
          tc "nested read skipped" `Quick test_prefetch_nested_read_skipped;
          tc "tainted condition" `Quick
            test_prefetch_tainted_condition_over_records;
        ] );
    ]
