(* Tests for the simulated cluster: clocks, communication accounting,
   barriers, bandwidth recorder. *)

open Orion_sim

let cost = Cost_model.default

let mk ?(machines = 2) ?(wpm = 2) ?recorder () =
  Cluster.create ?recorder ~num_machines:machines ~workers_per_machine:wpm
    ~cost ()

let test_compute_advances_one_clock () =
  let c = mk () in
  Cluster.compute c ~worker:1 2.0;
  Alcotest.(check (float 1e-12)) "worker 1" 2.0 (Cluster.clock c 1);
  Alcotest.(check (float 1e-12)) "worker 0 untouched" 0.0 (Cluster.clock c 0);
  Alcotest.(check (float 1e-12)) "now = max" 2.0 (Cluster.now c)

let test_language_overhead_scales_compute () =
  let c =
    Cluster.create ~num_machines:1 ~workers_per_machine:1
      ~cost:{ cost with language_overhead = 3.0 }
      ()
  in
  Cluster.compute c ~worker:0 1.0;
  Alcotest.(check (float 1e-12)) "scaled" 3.0 (Cluster.clock c 0);
  Cluster.compute_raw c ~worker:0 1.0;
  Alcotest.(check (float 1e-12)) "raw unscaled" 4.0 (Cluster.clock c 0)

let test_send_cross_machine () =
  let c = mk () in
  (* workers 0,1 on machine 0; worker 2 on machine 1 *)
  let bytes = 1e6 in
  let arrival = Cluster.send c ~src:0 ~dst:2 ~bytes in
  let expect_min =
    Cost_model.marshal_time cost bytes
    +. cost.network_latency_sec
    +. Cost_model.transfer_time cost bytes
  in
  Alcotest.(check bool) "arrival after costs" true (arrival >= expect_min);
  Alcotest.(check bool) "sender charged marshal" true
    (Cluster.clock c 0 >= Cost_model.marshal_time cost bytes);
  Cluster.recv c ~dst:2 ~arrival ~bytes ~cross_machine:true;
  Alcotest.(check bool) "receiver waits" true (Cluster.clock c 2 >= arrival)

let test_send_same_machine_cheaper () =
  let c1 = mk () in
  let c2 = mk () in
  let bytes = 1e7 in
  Cluster.send_recv c1 ~src:0 ~dst:1 ~bytes;
  (* same machine *)
  Cluster.send_recv c2 ~src:0 ~dst:2 ~bytes;
  (* cross machine *)
  Alcotest.(check bool) "intra-machine faster" true
    (Cluster.now c1 < Cluster.now c2)

let test_barrier_aligns_clocks () =
  let c = mk () in
  Cluster.compute c ~worker:0 5.0;
  Cluster.compute c ~worker:3 1.0;
  Cluster.barrier c;
  let expected = 5.0 +. cost.barrier_cost_sec in
  for w = 0 to 3 do
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "worker %d aligned" w)
      expected (Cluster.clock c w)
  done

let test_all_reduce_costs_grow_with_bytes () =
  let c1 = mk () in
  let c2 = mk () in
  Cluster.all_reduce c1 ~bytes_per_worker:1e3;
  Cluster.all_reduce c2 ~bytes_per_worker:1e8;
  Alcotest.(check bool) "bigger payload slower" true
    (Cluster.now c2 > Cluster.now c1)

let test_bytes_accounting () =
  let c = mk () in
  ignore (Cluster.send c ~src:0 ~dst:2 ~bytes:123.0);
  ignore (Cluster.send c ~src:2 ~dst:0 ~bytes:77.0);
  Alcotest.(check (float 1e-9)) "bytes summed" 200.0 c.Cluster.bytes_sent;
  Alcotest.(check int) "messages" 2 c.Cluster.messages_sent

let test_reset () =
  let c = mk () in
  Cluster.compute c ~worker:0 1.0;
  ignore (Cluster.send c ~src:0 ~dst:2 ~bytes:10.0);
  Cluster.reset c;
  Alcotest.(check (float 0.0)) "clock reset" 0.0 (Cluster.now c);
  Alcotest.(check (float 0.0)) "bytes reset" 0.0 c.Cluster.bytes_sent

(* ------------------------------------------------------------------ *)
(* Recorder                                                            *)
(* ------------------------------------------------------------------ *)

let test_recorder_single_bin () =
  let r = Recorder.create ~bin_width_sec:1.0 () in
  Recorder.record r ~start_sec:0.2 ~duration_sec:0.1 ~bytes:1000.0;
  let s = Recorder.series r in
  Alcotest.(check int) "one bin" 1 (Array.length s);
  Alcotest.(check (float 1e-9)) "bytes in bin" 1000.0 s.(0)

let test_recorder_spreads_across_bins () =
  let r = Recorder.create ~bin_width_sec:1.0 () in
  (* 2 seconds of transfer starting at t=0.5: bins 0,1,2 get 25%,50%,25% *)
  Recorder.record r ~start_sec:0.5 ~duration_sec:2.0 ~bytes:4000.0;
  let s = Recorder.series r in
  Alcotest.(check int) "three bins" 3 (Array.length s);
  Alcotest.(check (float 1e-6)) "bin0" 1000.0 s.(0);
  Alcotest.(check (float 1e-6)) "bin1" 2000.0 s.(1);
  Alcotest.(check (float 1e-6)) "bin2" 1000.0 s.(2)

let test_recorder_total_preserved_qcheck () =
  QCheck.Test.make ~count:200 ~name:"recorder preserves total bytes"
    QCheck.(
      list_of_size (Gen.int_range 1 20)
        (triple (float_range 0.0 50.0) (float_range 0.0 10.0)
           (float_range 1.0 1e6)))
    (fun events ->
      let r = Recorder.create ~bin_width_sec:1.0 () in
      List.iter
        (fun (start_sec, duration_sec, bytes) ->
          Recorder.record r ~start_sec ~duration_sec ~bytes)
        events;
      let expected = List.fold_left (fun a (_, _, b) -> a +. b) 0.0 events in
      abs_float (Recorder.total_bytes r -. expected) < 1e-6 *. expected +. 1e-6)

let test_recorder_negative_start_raises () =
  let r = Recorder.create ~bin_width_sec:1.0 () in
  Alcotest.check_raises "negative start"
    (Invalid_argument "Recorder.record: negative start_sec -0.5") (fun () ->
      Recorder.record r ~start_sec:(-0.5) ~duration_sec:1.0 ~bytes:100.0);
  (* instantaneous events are validated too *)
  Alcotest.check_raises "negative instantaneous"
    (Invalid_argument "Recorder.record: negative start_sec -2") (fun () ->
      Recorder.record r ~start_sec:(-2.0) ~duration_sec:0.0 ~bytes:100.0);
  Alcotest.(check (float 0.0)) "nothing recorded" 0.0 (Recorder.total_bytes r)

let test_recorder_exact_bin_boundary () =
  (* an event spanning exactly [1.0, 2.0) lands entirely in bin 1 and
     must not leak a zero-width sliver into bin 2 *)
  let r = Recorder.create ~bin_width_sec:1.0 () in
  Recorder.record r ~start_sec:1.0 ~duration_sec:1.0 ~bytes:800.0;
  let s = Recorder.series r in
  Alcotest.(check int) "series stops at bin 1" 2 (Array.length s);
  Alcotest.(check (float 1e-9)) "bin0 empty" 0.0 s.(0);
  Alcotest.(check (float 1e-9)) "bin1 full" 800.0 s.(1)

let test_recorder_five_bin_spread () =
  (* 5 s event over bins 0..4 at width 1: uniform 20% per bin *)
  let r = Recorder.create ~bin_width_sec:1.0 () in
  Recorder.record r ~start_sec:0.0 ~duration_sec:5.0 ~bytes:5000.0;
  let s = Recorder.series r in
  Alcotest.(check int) "five bins" 5 (Array.length s);
  Array.iter (fun b -> Alcotest.(check (float 1e-6)) "uniform bin" 1000.0 b) s

let test_recorder_mbps () =
  let r = Recorder.create ~bin_width_sec:1.0 () in
  Recorder.record r ~start_sec:0.0 ~duration_sec:1.0 ~bytes:(1e6 /. 8.0);
  let mbps = Recorder.mbps_series r in
  Alcotest.(check (float 1e-6)) "1 Mbps" 1.0 mbps.(0)

let test_recorder_integrates_with_cluster () =
  let r = Recorder.create ~bin_width_sec:1.0 () in
  let c = mk ~recorder:r () in
  ignore (Cluster.send c ~src:0 ~dst:2 ~bytes:5e6);
  Alcotest.(check bool) "recorded" true (Recorder.total_bytes r > 0.0)

(* ------------------------------------------------------------------ *)
(* Cost-model presets                                                  *)
(* ------------------------------------------------------------------ *)

let test_cost_model_presets () =
  Alcotest.(check (float 0.0)) "orion julia overhead" 1.0
    Cost_model.julia_orion.language_overhead;
  Alcotest.(check bool) "lda overhead > 1" true
    (Cost_model.julia_orion_lda.language_overhead > 1.0);
  Alcotest.(check (float 0.0)) "strads no marshalling" 0.0
    Cost_model.strads_cpp.marshal_cost_sec_per_byte;
  Alcotest.(check bool) "strads pointer swap" true
    (Cost_model.strads_cpp.intra_machine_bytes_per_sec = infinity)

let test_cost_model_times () =
  let c = Cost_model.default in
  Alcotest.(check (float 1e-12)) "transfer of 5GB/s link" 1.0
    (Cost_model.transfer_time c c.network_bandwidth_bytes_per_sec);
  Alcotest.(check bool) "marshal linear" true
    (Cost_model.marshal_time c 2e6 = 2.0 *. Cost_model.marshal_time c 1e6);
  Alcotest.(check (float 0.0)) "strads intra free" 0.0
    (Cost_model.intra_transfer_time Cost_model.strads_cpp 1e9)

let test_clock_monotonicity_qcheck () =
  QCheck.Test.make ~count:200 ~name:"cluster clocks are monotone"
    QCheck.(
      list_of_size (Gen.int_range 1 30)
        (triple (int_range 0 3) (int_range 0 3) (float_range 0.0 1e6)))
    (fun ops ->
      let c = mk () in
      let prev = Array.make 4 0.0 in
      List.for_all
        (fun (src, dst, bytes) ->
          (if src = dst then Cluster.compute c ~worker:src (bytes *. 1e-9)
           else Cluster.send_recv c ~src ~dst ~bytes);
          let ok = ref true in
          for w = 0 to 3 do
            if Cluster.clock c w < prev.(w) then ok := false;
            prev.(w) <- Cluster.clock c w
          done;
          !ok)
        ops)

let test_machine_of () =
  let c = mk ~machines:3 ~wpm:4 () in
  Alcotest.(check int) "w0 on m0" 0 (Cluster.machine_of c 0);
  Alcotest.(check int) "w3 on m0" 0 (Cluster.machine_of c 3);
  Alcotest.(check int) "w4 on m1" 1 (Cluster.machine_of c 4);
  Alcotest.(check int) "w11 on m2" 2 (Cluster.machine_of c 11);
  Alcotest.(check int) "12 workers" 12 (Cluster.num_workers c)

let test_advance_all () =
  let c = mk () in
  Cluster.compute c ~worker:2 5.0;
  Cluster.advance_all c 3.0;
  Alcotest.(check (float 0.0)) "w0 advanced" 3.0 (Cluster.clock c 0);
  Alcotest.(check (float 0.0)) "w2 not rolled back" 5.0 (Cluster.clock c 2)

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "cluster",
        [
          tc "compute one clock" `Quick test_compute_advances_one_clock;
          tc "language overhead" `Quick test_language_overhead_scales_compute;
          tc "send cross machine" `Quick test_send_cross_machine;
          tc "same machine cheaper" `Quick test_send_same_machine_cheaper;
          tc "barrier" `Quick test_barrier_aligns_clocks;
          tc "all_reduce scales" `Quick test_all_reduce_costs_grow_with_bytes;
          tc "bytes accounting" `Quick test_bytes_accounting;
          tc "reset" `Quick test_reset;
        ] );
      ( "cost_model",
        [
          tc "presets" `Quick test_cost_model_presets;
          tc "times" `Quick test_cost_model_times;
          qc (test_clock_monotonicity_qcheck ());
          tc "machine mapping" `Quick test_machine_of;
          tc "advance all" `Quick test_advance_all;
        ] );
      ( "recorder",
        [
          tc "single bin" `Quick test_recorder_single_bin;
          tc "spread bins" `Quick test_recorder_spreads_across_bins;
          tc "negative start raises" `Quick test_recorder_negative_start_raises;
          tc "exact bin boundary" `Quick test_recorder_exact_bin_boundary;
          tc "five-bin uniform spread" `Quick test_recorder_five_bin_spread;
          qc (test_recorder_total_preserved_qcheck ());
          tc "mbps" `Quick test_recorder_mbps;
          tc "cluster integration" `Quick test_recorder_integrates_with_cluster;
        ] );
    ]
