(* Tests for the OCaml 5 domain-pool executor ({!Domain_exec}) and the
   [`Parallel] mode of {!Orion.Engine}: happens-before enforcement,
   exception propagation, the non-canonical-layout deadlock regression,
   and element-wise equivalence + determinism of parallel app runs
   against the simulated executor. *)

open Orion_dsm
open Orion_runtime
module Verify = Orion_verify.Verify

let tc = Alcotest.test_case
let () = Orion_apps.Registry.ensure ()

(* a deterministic pseudo-random sparse iteration space *)
let mk_iter ?(rows = 16) ?(cols = 15) ?(n = 200) () =
  let n = min n (rows * cols / 2) in
  let entries = ref [] in
  let rng = Orion_data.Rng.create 987654321 in
  let seen = Hashtbl.create 64 in
  let added = ref 0 in
  while !added < n do
    let i = Orion_data.Rng.int rng rows and j = Orion_data.Rng.int rng cols in
    if not (Hashtbl.mem seen (i, j)) then begin
      Hashtbl.add seen (i, j) ();
      entries := ([| i; j |], float_of_int ((i * cols) + j)) :: !entries;
      incr added
    end
  done;
  Dist_array.of_entries ~name:"iter" ~dims:[| rows; cols |] ~default:0.0
    !entries

(* bodies that append every executed key to one mutex-guarded log; the
   log order is a real-time interleaving of the pool's execution *)
let logging_bodies n =
  let m = Mutex.create () in
  let log = ref [] in
  let body ~key ~value:_ =
    Mutex.lock m;
    log := Array.copy key :: !log;
    Mutex.unlock m
  in
  (Array.make n body, fun () -> Array.of_list (List.rev !log))

(* map each key of [sched] to its (space, time) block, plus block sizes *)
let block_index (sched : float Schedule.t) =
  let tbl = Hashtbl.create 256 in
  let sizes = Hashtbl.create 64 in
  for s = 0 to sched.Schedule.space_parts - 1 do
    for t = 0 to sched.Schedule.time_parts - 1 do
      let b = Schedule.block sched ~space:s ~time:t in
      Hashtbl.replace sizes (s, t) (Array.length b.Schedule.entries);
      Array.iter
        (fun (key, _) -> Hashtbl.replace tbl (Array.to_list key) (s, t))
        b.Schedule.entries
    done
  done;
  (tbl, sizes)

(* ------------------------------------------------------------------ *)
(* Domain_exec: happens-before enforcement                             *)
(* ------------------------------------------------------------------ *)

(* ordered 2D: when the first entry of block (s, t) executes, blocks
   (s-1, t) and (s, t-1) must already be complete *)
let test_2d_ordered_happens_before () =
  let iter = mk_iter () in
  let sched =
    Schedule.partition_2d iter ~space_dim:0 ~time_dim:1 ~space_parts:4
      ~time_parts:4
  in
  let bodies, get_log = logging_bodies 4 in
  let stats =
    Domain_exec.run_schedule ~domains:4 ~model:Domain_exec.M_2d_ordered sched
      ~bodies
  in
  Alcotest.(check int) "every entry ran" (Dist_array.count iter)
    stats.Domain_exec.entries_run;
  let tbl, sizes = block_index sched in
  let completed = Hashtbl.create 64 in
  let count bt = try Hashtbl.find completed bt with Not_found -> 0 in
  let size bt = try Hashtbl.find sizes bt with Not_found -> 0 in
  Array.iter
    (fun key ->
      let s, t = Hashtbl.find tbl (Array.to_list key) in
      if count (s, t) = 0 then begin
        if s > 0 then
          Alcotest.(check int)
            (Printf.sprintf "(%d,%d) started only after (%d,%d) done" s t
               (s - 1) t)
            (size (s - 1, t))
            (count (s - 1, t));
        if t > 0 then
          Alcotest.(check int)
            (Printf.sprintf "(%d,%d) started only after (%d,%d) done" s t s
               (t - 1))
            (size (s, t - 1))
            (count (s, t - 1))
      end;
      Hashtbl.replace completed (s, t) (count (s, t) + 1))
    (get_log ())

(* 1D: no cross-block order; the pass still runs everything exactly once *)
let test_1d_runs_everything_once () =
  let iter = mk_iter () in
  let sched = Schedule.partition_1d iter ~space_dim:0 ~space_parts:5 in
  let bodies, get_log = logging_bodies 3 in
  let stats =
    Domain_exec.run_schedule ~domains:3 ~model:Domain_exec.M_1d sched ~bodies
  in
  Alcotest.(check int) "all entries ran" (Dist_array.count iter)
    stats.Domain_exec.entries_run;
  Alcotest.(check int) "all blocks ran" 5 stats.Domain_exec.blocks_run;
  let seen = Hashtbl.create 256 in
  Array.iter
    (fun key ->
      let k = Array.to_list key in
      Alcotest.(check bool) "key not executed twice" false (Hashtbl.mem seen k);
      Hashtbl.add seen k ())
    (get_log ())

(* regression: lda at 8 workers yields tp = 15 < sp * depth; the naive
   mod-sp rotation edge formed a cycle there and deadlocked the pool *)
let test_2d_unordered_non_canonical_layout_terminates () =
  let iter = mk_iter ~rows:16 ~cols:15 ~n:110 () in
  let sched =
    Schedule.partition_2d iter ~space_dim:0 ~time_dim:1 ~space_parts:8
      ~time_parts:15
  in
  let bodies, _ = logging_bodies 4 in
  let stats =
    Domain_exec.run_schedule ~domains:4
      ~model:(Domain_exec.M_2d_unordered { depth = 1 })
      sched ~bodies
  in
  Alcotest.(check int) "pass terminated with every entry run"
    (Dist_array.count iter) stats.Domain_exec.entries_run

(* unordered 2D, canonical layout: same-time-partition blocks never
   overlap — partition rotation serializes them *)
let test_2d_unordered_serializes_time_partitions () =
  let iter = mk_iter ~rows:16 ~cols:16 ~n:110 () in
  let sched =
    Schedule.partition_2d iter ~space_dim:0 ~time_dim:1 ~space_parts:4
      ~time_parts:8
  in
  let bodies, get_log = logging_bodies 4 in
  ignore
    (Domain_exec.run_schedule ~domains:4
       ~model:(Domain_exec.M_2d_unordered { depth = 2 })
       sched ~bodies);
  let tbl, sizes = block_index sched in
  (* per time partition, the log must show each block's entries as a
     contiguous run: a block only starts after its predecessor (in
     rotation order) has completed *)
  let open_block = Hashtbl.create 16 in
  let done_in = Hashtbl.create 16 in
  Array.iter
    (fun key ->
      let s, t = Hashtbl.find tbl (Array.to_list key) in
      (match Hashtbl.find_opt open_block t with
      | Some (s', n) when s' = s -> Hashtbl.replace open_block t (s, n + 1)
      | Some (s', n) ->
          Alcotest.(check int)
            (Printf.sprintf "block (%d,%d) complete before (%d,%d) starts" s' t
               s t)
            (try Hashtbl.find sizes (s', t) with Not_found -> 0)
            n;
          Hashtbl.replace done_in t ((s', n) :: (try Hashtbl.find done_in t with Not_found -> []));
          Hashtbl.replace open_block t (s, 1)
      | None -> Hashtbl.replace open_block t (s, 1)))
    (get_log ())

(* an exception in any body cancels the pass and re-raises *)
exception Boom

let test_exception_propagates () =
  let iter = mk_iter () in
  let sched = Schedule.partition_1d iter ~space_dim:0 ~space_parts:4 in
  let body ~key:_ ~value = if value > 100.0 then raise Boom in
  Alcotest.check_raises "body exception reaches the caller" Boom (fun () ->
      ignore
        (Domain_exec.run_schedule ~domains:4 ~model:Domain_exec.M_1d sched
           ~bodies:(Array.make 4 body)))

(* domain count is clamped to the number of bodies provided *)
let test_domains_clamped_to_bodies () =
  let iter = mk_iter () in
  let sched = Schedule.partition_1d iter ~space_dim:0 ~space_parts:4 in
  let bodies, _ = logging_bodies 3 in
  let stats =
    Domain_exec.run_schedule ~domains:8 ~model:Domain_exec.M_1d sched ~bodies
  in
  Alcotest.(check int) "clamped to 3 domains" 3 stats.Domain_exec.domains;
  Alcotest.(check bool) "steal counter is sane" true
    (stats.Domain_exec.steals >= 0)

(* ------------------------------------------------------------------ *)
(* Engine: parallel runs match the simulated executor element-wise     *)
(* ------------------------------------------------------------------ *)

let find_app name =
  match Orion.App.find name with
  | Some a -> a
  | None -> Alcotest.failf "app %s missing from registry" name

let run_app (app : Orion.App.t) ~mode ~passes =
  let inst = app.Orion.App.app_make ~num_machines:2 ~workers_per_machine:2 () in
  ignore (Orion.Engine.run inst.Orion.App.inst_session inst ~mode ~passes ());
  inst.Orion.App.inst_outputs

let run_app_report (app : Orion.App.t) ~mode ~passes =
  let inst = app.Orion.App.app_make ~num_machines:2 ~workers_per_machine:2 () in
  let r = Orion.Engine.run inst.Orion.App.inst_session inst ~mode ~passes () in
  (inst.Orion.App.inst_outputs, r)

let check_outputs ~what ~tolerance a b =
  List.iter2
    (fun (name_a, arr_a) (_, arr_b) ->
      let d = Verify.diff_arrays name_a arr_a arr_b in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s equal (max abs %.3e, max rel %.3e)" what
           name_a d.Verify.d_max_abs d.Verify.d_max_rel)
        true
        (Verify.diff_ok ~tolerance d))
    a b

let parallel_matches_sim name () =
  let app = find_app name in
  let sim = run_app app ~mode:`Sim ~passes:2 in
  let par = run_app app ~mode:(`Parallel 4) ~passes:2 in
  check_outputs
    ~what:(name ^ " parallel(4) vs sim")
    ~tolerance:app.Orion.App.app_tolerance sim par

(* the domain pool runs compiled kernels by default; with
   ORION_NO_COMPILE it falls back to the interpreter and must produce
   the same results — so compilation is a pure performance change *)
let compiled_matches_interpreted name () =
  let app = find_app name in
  let outs_c, rep_c = run_app_report app ~mode:(`Parallel 4) ~passes:2 in
  Alcotest.(check bool) "kernels compiled" true rep_c.Orion.Engine.ep_compiled;
  let old = try Unix.getenv "ORION_NO_COMPILE" with Not_found -> "" in
  Unix.putenv "ORION_NO_COMPILE" "1";
  let outs_i, rep_i =
    Fun.protect
      ~finally:(fun () -> Unix.putenv "ORION_NO_COMPILE" old)
      (fun () -> run_app_report app ~mode:(`Parallel 4) ~passes:2)
  in
  Alcotest.(check bool)
    "kernels interpreted" false rep_i.Orion.Engine.ep_compiled;
  check_outputs
    ~what:(name ^ " compiled vs interpreted")
    ~tolerance:app.Orion.App.app_tolerance outs_c outs_i

(* three parallel runs of the same app are deterministic: bitwise for
   direct-update apps; buffered slr merges per-domain shadows whose
   accumulation order follows the (nondeterministic) block-to-domain
   assignment, so its tolerance applies *)
let parallel_deterministic name () =
  let app = find_app name in
  let r1 = run_app app ~mode:(`Parallel 4) ~passes:2 in
  let r2 = run_app app ~mode:(`Parallel 4) ~passes:2 in
  let r3 = run_app app ~mode:(`Parallel 4) ~passes:2 in
  let tolerance = app.Orion.App.app_tolerance in
  check_outputs ~what:(name ^ " run1 vs run2") ~tolerance r1 r2;
  check_outputs ~what:(name ^ " run1 vs run3") ~tolerance r1 r3

(* ------------------------------------------------------------------ *)
(* Telemetry: real runs yield wall-clock timelines and metrics         *)
(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* a real domain-pool run produces a merged timeline with nonzero
   compute time, finite per-pass metrics, and a measured cost entry per
   (pass, t, sp) block *)
let test_parallel_telemetry () =
  let app = find_app "gbt" in
  let inst =
    app.Orion.App.app_make ~num_machines:2 ~workers_per_machine:2 ()
  in
  let passes = 2 in
  let r =
    Orion.Engine.run inst.Orion.App.inst_session inst ~mode:(`Parallel 2)
      ~passes ~telemetry:true ()
  in
  match r.Orion.Engine.ep_telemetry with
  | None -> Alcotest.fail "parallel run produced no telemetry"
  | Some sm ->
      Alcotest.(check string) "mode" "parallel" sm.Orion.Telemetry.sm_mode;
      Alcotest.(check int) "workers" 2 sm.Orion.Telemetry.sm_workers;
      Alcotest.(check int) "no drops" 0 sm.Orion.Telemetry.sm_dropped;
      Alcotest.(check bool) "timeline is non-empty" true
        (Orion.Trace.length sm.Orion.Telemetry.sm_trace > 0);
      Alcotest.(check int) "one metrics row per pass" passes
        (List.length sm.Orion.Telemetry.sm_pass_metrics);
      let overall = sm.Orion.Telemetry.sm_overall in
      Alcotest.(check bool) "nonzero compute time" true
        (overall.Orion.Metrics.compute_sec > 0.0);
      Alcotest.(check bool) "finite straggler ratio" true
        (Float.is_finite overall.Orion.Metrics.straggler_ratio
        && overall.Orion.Metrics.straggler_ratio >= 1.0);
      let costs = sm.Orion.Telemetry.sm_block_costs in
      Alcotest.(check bool) "cost table is non-empty" true (costs <> []);
      List.iter
        (fun c ->
          Alcotest.(check bool) "cost pass within run" true
            (c.Orion.Telemetry.bc_pass >= 0
            && c.Orion.Telemetry.bc_pass < passes);
          Alcotest.(check bool) "cost is positive" true
            (c.Orion.Telemetry.bc_seconds > 0.0))
        costs;
      Alcotest.(check int) "cost entries account for every entry run"
        r.Orion.Engine.ep_entries
        (List.fold_left
           (fun acc c -> acc + c.Orion.Telemetry.bc_entries)
           0 costs)

(* telemetry off: no summary, and nothing recorded *)
let test_parallel_telemetry_disabled () =
  let app = find_app "gbt" in
  let inst =
    app.Orion.App.app_make ~num_machines:2 ~workers_per_machine:2 ()
  in
  let r =
    Orion.Engine.run inst.Orion.App.inst_session inst ~mode:(`Parallel 2)
      ~passes:1 ~telemetry:false ()
  in
  Alcotest.(check bool) "no telemetry summary" true
    (r.Orion.Engine.ep_telemetry = None)

(* golden for the `orion trace --mode parallel` envelope: versioned
   metadata before the events, drop count surfaced *)
let test_trace_envelope_golden () =
  let app = find_app "gbt" in
  let inst =
    app.Orion.App.app_make ~num_machines:2 ~workers_per_machine:2 ()
  in
  let r =
    Orion.Engine.run inst.Orion.App.inst_session inst ~mode:(`Parallel 2)
      ~passes:1 ~telemetry:true ()
  in
  let sm = Option.get r.Orion.Engine.ep_telemetry in
  let chrome = Orion.Telemetry.to_chrome_json sm in
  let expected_prefix =
    Printf.sprintf
      "{\"schema_version\":%d,\"kind\":\"trace\",\"dropped\":0,\"displayTimeUnit\":\"ms\",\"mode\":\"parallel\",\"workers\":2,"
      Orion.Report.schema_version
  in
  Alcotest.(check string) "envelope prefix" expected_prefix
    (String.sub chrome 0 (String.length expected_prefix));
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (contains ~needle chrome))
    [
      "\"overall\":"; "\"per_pass\":"; "\"block_costs\":"; "\"traceEvents\":[";
    ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [
      ( "domain_exec",
        [
          tc "2d-ordered happens-before" `Quick test_2d_ordered_happens_before;
          tc "1d runs everything once" `Quick test_1d_runs_everything_once;
          tc "non-canonical unordered layout terminates" `Quick
            test_2d_unordered_non_canonical_layout_terminates;
          tc "unordered serializes time partitions" `Quick
            test_2d_unordered_serializes_time_partitions;
          tc "exception propagates" `Quick test_exception_propagates;
          tc "domains clamped to bodies" `Quick test_domains_clamped_to_bodies;
        ] );
      ( "engine_equivalence",
        [
          tc "mf" `Slow (parallel_matches_sim "mf");
          tc "slr" `Slow (parallel_matches_sim "slr");
          tc "lda" `Slow (parallel_matches_sim "lda");
          tc "gbt" `Quick (parallel_matches_sim "gbt");
        ] );
      ( "no_compile_fallback",
        [
          tc "mf" `Slow (compiled_matches_interpreted "mf");
          tc "gbt" `Quick (compiled_matches_interpreted "gbt");
        ] );
      ( "determinism",
        [
          tc "mf" `Slow (parallel_deterministic "mf");
          tc "slr" `Slow (parallel_deterministic "slr");
          tc "lda" `Slow (parallel_deterministic "lda");
          tc "gbt" `Quick (parallel_deterministic "gbt");
        ] );
      ( "telemetry",
        [
          tc "real run yields metrics and block costs" `Quick
            test_parallel_telemetry;
          tc "disabled leaves no summary" `Quick
            test_parallel_telemetry_disabled;
          tc "chrome envelope golden" `Quick test_trace_envelope_golden;
        ] );
    ]
